package cyclecover

import (
	"context"
	"reflect"
	"testing"
)

// TestPlannerSimulatePlanOnce pins the "plan once, sweep many" contract:
// repeated simulations of one instance — any k, sample or seed — cost a
// single network construction, and each sweep matches what a direct
// Simulator run over the same network reports.
func TestPlannerSimulatePlanOnce(t *testing.T) {
	p := NewPlanner()
	in := AllToAll(9)
	sweeps := []SweepOptions{
		{K: 1},
		{K: 2},
		{K: 3, Sample: 15, Seed: 4},
	}
	var nw *Network
	for _, opts := range sweeps {
		sim, err := p.Simulate(in, opts)
		if err != nil {
			t.Fatal(err)
		}
		if nw == nil {
			nw = sim.Network
		} else if sim.Network != nw {
			t.Fatal("simulations of one signature must share the cached network")
		}
		want, err := NewSimulator(nw).Sweep(opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, sim.Sweep) {
			t.Fatalf("k=%d: Simulate diverges from a direct sweep:\n%+v\n%+v", opts.K, want, sim.Sweep)
		}
	}
	st := p.CacheStats()
	if st.Networks.Misses != 1 {
		t.Fatalf("%d network constructions for %d simulations, want 1", st.Networks.Misses, len(sweeps))
	}
	if st.Networks.Hits != uint64(len(sweeps)-1) {
		t.Fatalf("network hits = %d, want %d", st.Networks.Hits, len(sweeps)-1)
	}
}

// TestPlannerSimulateHardening: zero-value instances and bad sweep
// parameters answer errors, never panics, and never poison the cache.
func TestPlannerSimulateHardening(t *testing.T) {
	p := NewPlanner()
	var zero Instance
	if _, err := p.Simulate(zero, SweepOptions{}); err == nil {
		t.Error("Simulate(zero): want error")
	}
	if st := p.CacheStats(); st.Coverings.Entries != 0 {
		t.Errorf("zero-value instance left cache entries: %+v", st)
	}
	// A bad sweep parameter fails after planning: the (valid) plan stays
	// cached, so a corrected retry sweeps without re-constructing.
	if _, err := p.Simulate(AllToAll(6), SweepOptions{K: 99}); err == nil {
		t.Error("k beyond the link count: want error")
	}
	if _, err := p.Simulate(AllToAll(6), SweepOptions{K: 2}); err != nil {
		t.Fatal(err)
	}
	if st := p.CacheStats(); st.Networks.Hits != 1 {
		t.Errorf("corrected retry must hit the cached plan: %+v", st)
	}
}

// TestPlannerSimulateCtx: a dead context aborts the simulation with its
// error — planning stage and sweep stage alike.
func TestPlannerSimulateCtx(t *testing.T) {
	p := NewPlanner()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.SimulateCtx(ctx, AllToAll(9), SweepOptions{K: 2}); err == nil {
		t.Fatal("cancelled simulate: want error")
	}
	// The cancelled attempt must not have cached anything unverified; a
	// fresh call succeeds.
	if _, err := p.Simulate(AllToAll(9), SweepOptions{K: 2}); err != nil {
		t.Fatal(err)
	}
}

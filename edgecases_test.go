package cyclecover

import (
	"fmt"
	"testing"
)

// TestEveryDemandFamilyEndToEnd is the table-driven edge-case sweep: for
// every ring size the service accepts down at the small end, every demand
// spec family runs the full pipeline — parse, construct, independently
// verify, and plan the WDM layer — and the layers must agree with each
// other (subnetwork per cycle, every demand pair assigned).
func TestEveryDemandFamilyEndToEnd(t *testing.T) {
	specs := func(n int) []string {
		return []string{
			"alltoall",
			"lambda:2",
			"lambda:3",
			"hub:0",
			fmt.Sprintf("hub:%d", n-1),
			"neighbors",
			"random:0.3:5",
			"random:0.8:11",
			"random:0:1", // empty demand: still a valid (empty) plan
			"random:1:2", // clamp-saturated density: full K_n
		}
	}
	for n := 3; n <= 16; n++ {
		for _, spec := range specs(n) {
			t.Run(fmt.Sprintf("n=%d/%s", n, spec), func(t *testing.T) {
				in, err := ParseInstance(n, spec)
				if err != nil {
					t.Fatalf("parse: %v", err)
				}
				cv, err := CoverInstance(in)
				if err != nil {
					t.Fatalf("cover: %v", err)
				}
				if err := Verify(cv, in); err != nil {
					t.Fatalf("verify: %v", err)
				}
				nw, err := PlanWDM(cv, in)
				if err != nil {
					t.Fatalf("plan: %v", err)
				}
				if len(nw.Subnets) != cv.Size() {
					t.Fatalf("%d subnets for %d cycles", len(nw.Subnets), cv.Size())
				}
				if got, want := len(nw.Assignment), in.Demand.DistinctEdges(); got != want {
					t.Fatalf("%d demand pairs assigned, want %d", got, want)
				}
			})
		}
	}
}

// TestNilInputsReturnErrors pins the hardening contract at the facade:
// zero-value instances and nil coverings — what error paths hand you —
// answer with errors, never panics.
func TestNilInputsReturnErrors(t *testing.T) {
	var zero Instance
	if zero.N() != 0 || zero.Requests() != 0 {
		t.Errorf("zero instance: N=%d requests=%d, want 0/0", zero.N(), zero.Requests())
	}
	if _, err := CoverInstance(zero); err == nil {
		t.Error("CoverInstance(zero): want error")
	}
	cv, _, err := CoverAllToAll(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(cv, zero); err == nil {
		t.Error("Verify against zero instance: want error")
	}
	if err := Verify(nil, AllToAll(5)); err == nil {
		t.Error("Verify(nil covering): want error")
	}
	if _, err := PlanWDM(nil, AllToAll(5)); err == nil {
		t.Error("PlanWDM(nil covering): want error")
	}
	if _, err := PlanWDM(cv, zero); err == nil {
		t.Error("PlanWDM against zero instance: want error")
	}

	// The cached facade must harden the same way — the cycled service
	// feeds it whatever the parser handed back next to an error.
	p := NewPlanner()
	if _, err := p.CoverInstance(zero); err == nil {
		t.Error("Planner.CoverInstance(zero): want error")
	}
	if _, err := p.PlanWDM(zero); err == nil {
		t.Error("Planner.PlanWDM(zero): want error")
	}
	// And the error path must not poison the cache.
	if st := p.CacheStats(); st.Coverings.Entries != 0 || st.Networks.Entries != 0 {
		t.Errorf("zero-value instance left cache entries: %+v", st)
	}
}

// TestParseInstanceErrorPathIsUsable: the Instance returned beside a
// parse error is a zero value; every facade entry point must reject it
// gracefully, mirroring how a careless HTTP caller would misuse it.
func TestParseInstanceErrorPathIsUsable(t *testing.T) {
	in, err := ParseInstance(9, "random:NaN:1")
	if err == nil {
		t.Fatal("NaN density must not parse")
	}
	if _, cerr := CoverInstance(in); cerr == nil {
		t.Error("covering the error-path instance: want error")
	}
	p := NewPlanner()
	if _, perr := p.PlanWDM(in); perr == nil {
		t.Error("planning the error-path instance: want error")
	}
}

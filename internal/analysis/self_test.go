package analysis_test

import (
	"testing"

	"github.com/cyclecover/cyclecover/internal/analysis"
)

// TestRepoIsLintClean runs the full analyzer suite over the whole
// module, mirroring the CI `cyclelint ./...` gate. The repository must
// stay finding-free at head: a regression here means either a new
// violation slipped in or an analyzer started misfiring — both block.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is too slow for -short")
	}
	loader, err := analysis.NewLoader("../..")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded zero packages")
	}
	diags := analysis.Run(pkgs, analysis.Analyzers())
	for _, d := range diags {
		t.Errorf("finding at head: %s", d)
	}
}

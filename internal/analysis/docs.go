package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Docs enforces the repository's documentation contract, migrated from
// the former cmd/doccheck so the whole lint surface has one entry
// point:
//
//   - every package carries a package-level godoc comment;
//   - every exported identifier of the module's root package (the
//     public API surface) carries a doc comment — a group doc on a
//     declaration block covers its specs, and a trailing line comment
//     also counts.
//
// A comment consisting solely of //cyclecover: directives does not
// count as documentation. Opt out with `//cyclecover:nodoc <reason>`
// inside the (otherwise empty) doc comment.
var Docs = &Analyzer{
	Name: "docs",
	Doc: "every package needs a package godoc comment and every root-package export a doc comment; " +
		"opt out with //cyclecover:nodoc <reason>",
	Run: runDocs,
}

func runDocs(pass *Pass) {
	if !packageDocumented(pass) {
		pass.Reportf(pass.Files[0].Package, "package %s has no package-level godoc comment", pass.Pkg.Name())
	}
	if !pass.ModuleRoot {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && !docOK(pass, d.Pos(), d.Doc) {
					pass.Reportf(d.Pos(), "exported function %s is undocumented", d.Name.Name)
				}
			case *ast.GenDecl:
				groupDoc := hasRealDoc(d.Doc)
				groupNodoc := nodocIn(d.Doc)
				// A trailing line comment documents a spec only inside a
				// grouped declaration (the enum style); a standalone decl
				// needs a real doc comment above it.
				grouped := d.Lparen.IsValid()
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if sp.Name.IsExported() && !groupDoc && !groupNodoc &&
							!hasRealDoc(sp.Doc) && !(grouped && hasRealDoc(sp.Comment)) && !docOK(pass, sp.Pos(), sp.Doc) {
							pass.Reportf(sp.Pos(), "exported type %s is undocumented", sp.Name.Name)
						}
					case *ast.ValueSpec:
						if groupDoc || groupNodoc || hasRealDoc(sp.Doc) || (grouped && hasRealDoc(sp.Comment)) {
							continue
						}
						for _, name := range sp.Names {
							if name.IsExported() && !docOK(pass, sp.Pos(), sp.Doc) {
								pass.Reportf(sp.Pos(), "exported value %s is undocumented", name.Name)
							}
						}
					}
				}
			}
		}
	}
}

// docOK reports whether a declaration is properly documented or
// explicitly opted out.
func docOK(pass *Pass, pos token.Pos, doc *ast.CommentGroup) bool {
	if hasRealDoc(doc) {
		return true
	}
	if nodocIn(doc) {
		return true
	}
	return pass.Exempt(pos, "nodoc")
}

// packageDocumented reports whether any file carries a real package doc
// comment, or a nodoc opt-out.
func packageDocumented(pass *Pass) bool {
	for _, f := range pass.Files {
		if hasRealDoc(f.Doc) || nodocIn(f.Doc) {
			return true
		}
	}
	return false
}

// hasRealDoc reports whether the comment group has documentation
// content beyond cyclecover directives.
func hasRealDoc(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.HasPrefix(c.Text, directivePrefix) {
			continue
		}
		t := strings.TrimLeft(c.Text, "/* \t")
		if strings.TrimSpace(strings.TrimSuffix(t, "*/")) != "" {
			return true
		}
	}
	return false
}

// nodocIn reports a justified nodoc directive inside the comment group.
func nodocIn(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		rest, ok := strings.CutPrefix(c.Text, directivePrefix)
		if !ok {
			continue
		}
		verb, reason, _ := strings.Cut(rest, " ")
		if strings.TrimSpace(verb) == "nodoc" && strings.TrimSpace(reason) != "" {
			return true
		}
	}
	return false
}

package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Faultpoint requires every fault-injection call site to justify its
// existence: a call to faultinject.Inject compiles to a no-op in
// production builds, but each site is still a place where the chaos
// suite may throw errors, latency, or panics into the pipeline, and an
// unexplained one is impossible to review. The annotation
//
//	//cyclecover:faultpoint <reason>
//
// on the call's line (or the line above) must say what failure mode the
// site models and which chaos test exercises it. Harness management —
// Configure, Reset, Fired — is not an injection site and is never
// flagged.
var Faultpoint = &Analyzer{
	Name: "faultpoint",
	Doc: "requires //cyclecover:faultpoint <reason> on every faultinject.Inject call site " +
		"so each chaos hook documents the failure mode it models",
	Run: runFaultpoint,
}

func runFaultpoint(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			path := pkgName.Imported().Path()
			if path != "faultinject" && !strings.HasSuffix(path, "/faultinject") {
				return true
			}
			if sel.Sel.Name != "Inject" {
				return true
			}
			if !pass.Exempt(call.Pos(), "faultpoint") {
				pass.Reportf(call.Pos(), "faultinject.Inject call site must carry //cyclecover:faultpoint <reason> naming the failure mode it models")
			}
			return true
		})
	}
}

// Package fixture exercises the detiter analyzer: raw map ranges and
// stdlib nondeterministic iterators are findings; annotated sites and
// slice ranges are not.
package fixture

import (
	"maps"
	"sync"
)

// Flagged: a raw range over a map.
func rangeMap(m map[string]int) int {
	total := 0
	for _, v := range m { // want "range over map is order-nondeterministic"
		total += v
	}
	return total
}

// Not flagged: ranging over a slice is deterministic.
func rangeSlice(s []int) int {
	total := 0
	for _, v := range s {
		total += v
	}
	return total
}

// Not flagged: the opt-out annotation with a reason sanctions the site.
func rangeMapSanctioned(m map[string]int) int {
	total := 0
	//cyclecover:nondet order-free fold: commutative sum
	for _, v := range m {
		total += v
	}
	return total
}

// A bare opt-out is a grammar violation and does not exempt the range.
func rangeMapBareDirective(m map[string]int) int {
	total := 0
	//cyclecover:nondet  // want "requires a reason"
	for _, v := range m { // want "range over map is order-nondeterministic"
		total += v
	}
	return total
}

// Flagged: stdlib map iterators are just as nondeterministic.
func mapsKeys(m map[string]int) []string {
	var out []string
	for k := range maps.Keys(m) { // want "maps.Keys iterates in nondeterministic order"
		out = append(out, k)
	}
	return out
}

// Flagged: sync.Map.Range has no order guarantee either.
func syncMapRange(m *sync.Map) int {
	n := 0
	m.Range(func(_, _ any) bool { // want "sync.Map.Range iterates in nondeterministic order"
		n++
		return true
	})
	return n
}

// Package fixture exercises the rngdiscipline analyzer: wall-clock
// reads, global math/rand draws, and crypto/rand are findings;
// seed-derived construction and annotated sites are not.
package fixture

import (
	crand "crypto/rand"
	"math/rand"
	"time"
)

// Flagged: the clock is not seed-derived.
func clock() int64 {
	return time.Now().UnixNano() // want "time.Now in a deterministic package"
}

// Flagged: the process-global source is seeded nondeterministically.
func globalDraw() int {
	return rand.Intn(10) // want "rand.Intn draws from the process-global RNG"
}

// Not flagged: an explicitly seeded generator is reproducible.
func seededDraw(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// Not flagged: referring to math/rand types is not a draw.
func typeUse(rng *rand.Rand) *rand.Source { return nil }

// Flagged: entropy can never replay.
func entropy(buf []byte) {
	crand.Read(buf) // want "crypto/rand is never seed-reproducible"
}

// Not flagged: the opt-out annotation with a reason sanctions the site.
func sanctionedClock() int64 {
	//cyclecover:rngok coarse uptime metric, never feeds a signature
	return time.Now().UnixNano()
}

// Package fixture exercises the faultpoint analyzer: every
// faultinject.Inject call site must carry a justified
// //cyclecover:faultpoint annotation; harness-management calls and
// same-named functions from unrelated packages are not flagged.
package fixture

import (
	"fixture/faultpoint/faultinject"
)

// Flagged: an injection site with no annotation explains nothing.
func bare() error {
	return faultinject.Inject("pool.dispatch") // want "faultinject.Inject call site must carry"
}

// Not flagged: the line-above annotation names the modeled failure.
func annotatedAbove() error {
	//cyclecover:faultpoint models a dispatch error; exercised by the fixture
	return faultinject.Inject("pool.dispatch")
}

// Not flagged: a same-line annotation also sanctions the site.
func annotatedInline() error {
	return faultinject.Inject("cache.snapshot.save") //cyclecover:faultpoint models a failed save
}

// Flagged: an annotation two lines up is out of directive range.
func annotationTooFar() error {
	//cyclecover:faultpoint too far away to attach

	return faultinject.Inject("strategy.solve") // want "faultinject.Inject call site must carry"
}

// Not flagged: harness management is not an injection site.
func harness() uint64 {
	faultinject.Reset()
	return faultinject.Fired("pool.dispatch")
}

// Inject shadows the policed name locally; a plain call to it is not a
// selector on the faultinject package and is never flagged.
func Inject(site string) error { return nil }

// Not flagged: a same-named local function is unrelated.
func localCall() error {
	return Inject("pool.dispatch")
}

// Package faultinject is a fixture-local stub of the real
// fault-injection package: the faultpoint analyzer matches any imported
// package whose path ends in "faultinject", so the fixture supplies its
// own rather than importing outside the fixture module.
package faultinject

// Inject is the injection entry point the analyzer polices.
func Inject(site string) error { return nil }

// Fired is harness management, never flagged.
func Fired(site string) uint64 { return 0 }

// Reset is harness management, never flagged.
func Reset() {}

// Package fixture exercises the docs analyzer's module-root mode:
// every exported identifier of the public API needs a doc comment.
package fixture

// Documented carries a doc comment and is fine.
func Documented() {}

func Undocumented() {} // want "exported function Undocumented is undocumented"

// DocumentedType is fine.
type DocumentedType struct{}

type UndocumentedType struct{} // want "exported type UndocumentedType is undocumented"

// Grouped docs cover every spec in the block.
var (
	GroupedA = 1
	GroupedB = 2
)

var Bare = 3 // want "exported value Bare is undocumented"

var (
	TrailingOK = 4 // a trailing comment documents a spec inside a group
)

//cyclecover:nodoc mirrors an upstream constant name verbatim
var OptedOut = 5

func unexported() {}

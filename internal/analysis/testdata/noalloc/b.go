package fixture

// The shapes the exact solver's residual transposition table leans on:
// fixed-size open-addressing probes and epoch-stamped resets must pass
// the warm-path rule untouched, while regrowing the table inline on the
// warm path stays a finding.

type probeKey [4]uint64

type probeEntry struct {
	key   probeKey
	left  int32
	epoch uint32
}

type table struct {
	slots []probeEntry
	mask  uint32
	epoch uint32
	key   probeKey
}

// hash mixes the packed key words; pure arithmetic, nothing to flag.
//
//cyclecover:noalloc
func (t *table) hash() uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, w := range t.key {
		h ^= w
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
	}
	return h
}

// probe is the fixed-size collision-checked lookup: index masking,
// pointer into backing storage, comparable-array equality. No findings.
//
//cyclecover:noalloc
func (t *table) probe(left int32) bool {
	i := uint32(t.hash()) & t.mask
	for p := uint32(0); p < 4; p++ {
		e := &t.slots[(i+p)&t.mask]
		if e.epoch == t.epoch && e.left >= left && e.key == t.key {
			return true
		}
	}
	return false
}

// store writes through a victim pointer chosen deterministically; still
// allocation-free.
//
//cyclecover:noalloc
func (t *table) store(left int32) {
	i := uint32(t.hash()) & t.mask
	victim := &t.slots[i&t.mask]
	for p := uint32(0); p < 4; p++ {
		e := &t.slots[(i+p)&t.mask]
		if e.left < victim.left {
			victim = e
		}
	}
	victim.key = t.key
	victim.left = left
	victim.epoch = t.epoch
}

// epochReset is the O(1) invalidation: bump the stamp, and only on
// wrap-around pay for a real clear. clear() mutates in place — not an
// allocation — so the only finding is regrowing the table inline.
//
//cyclecover:noalloc
func (t *table) epochReset(size int) {
	if len(t.slots) != size {
		t.slots = make([]probeEntry, size) // want "make allocates"
		t.mask = uint32(size - 1)
		t.epoch = 0
	}
	t.epoch++
	if t.epoch == 0 {
		clear(t.slots)
		t.epoch = 1
	}
}

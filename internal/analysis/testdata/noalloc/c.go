package fixture

// The shapes the general-topology walk verifier leans on: the pooled
// verifier's warm path must scan the host's dense pair array with an
// open-coded triangular loop (no findings), because handing a captured
// closure to an iterator method escapes the receiver and allocates.

type pairGrid struct {
	n    int
	mult []int32
	cov  []int32
}

func (g *pairGrid) at(u, v int) int32 { return g.mult[u*g.n+v] }

// coverageScan is the admissible form: plain nested loops, index
// arithmetic, early return on the first uncovered edge. No findings.
//
//cyclecover:noalloc
func (g *pairGrid) coverageScan() bool {
	for u := 0; u < g.n; u++ {
		for v := u + 1; v < g.n; v++ {
			if g.at(u, v) > 0 && g.cov[u*g.n+v] == 0 {
				return false
			}
		}
	}
	return true
}

// coverageClosure is the rejected form: the callback captures the grid,
// so building it allocates on every warm call.
//
//cyclecover:noalloc
func (g *pairGrid) coverageClosure(forEach func(func(u, v int) bool)) bool {
	ok := true
	forEach(func(u, v int) bool { // want "closure captures"
		if g.at(u, v) > 0 && g.cov[u*g.n+v] == 0 {
			ok = false
			return false
		}
		return true
	})
	return ok
}

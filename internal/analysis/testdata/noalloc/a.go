// Package fixture exercises the noalloc analyzer: allocation-introducing
// constructs on the warm path of annotated functions are findings; cold
// (terminating) branches, self-appends, and annotated sites are not.
// Unannotated functions are never checked.
package fixture

import (
	"errors"
	"fmt"
)

type scratch struct {
	buf  []int
	name string
}

//cyclecover:noalloc
func warmMake(n int) []int {
	s := make([]int, n) // want "make allocates"
	return s
}

//cyclecover:noalloc
func warmLiterals(s *scratch) interface{} {
	m := map[int]int{} // want "map literal allocates"
	sl := []int{1, 2}  // want "slice literal allocates"
	p := &scratch{}    // want "composite literal allocates"
	_ = m
	_ = sl
	return p
}

//cyclecover:noalloc
func warmAppend(s *scratch, fresh []int) []int {
	out := fresh
	out = append(out, 1) // self-append into caller-owned storage: not flagged
	s.buf = append(s.buf[:0], out...)
	other := append(out, 2) // want "append to a fresh slice allocates"
	return other
}

//cyclecover:noalloc
func warmClosure(s *scratch) func() int {
	n := 0
	f := func() int { // want "closure captures n"
		n++
		return n
	}
	g := func() int { return 42 } // capture-free literal: not flagged
	_ = g
	return f
}

//cyclecover:noalloc
func warmBoxing(s *scratch, sink func(any)) {
	sink(*s)     // want "boxes a non-pointer"
	sink(s)      // pointer: fits an interface word, not flagged
	sink("lit")  // constant: static interface data, not flagged
	sink(s.name) // want "boxes a non-pointer"
}

//cyclecover:noalloc
func warmStrings(a, b string) string {
	msg := a + b             // want "string concatenation allocates"
	_ = fmt.Sprintf("%s", a) // want "fmt.Sprintf allocates"
	bs := []byte(a)          // want "conversion copies"
	_ = bs
	return msg
}

//cyclecover:noalloc
func coldBranches(ok bool, a string) error {
	if !ok {
		// Terminating branch: error construction is the cold path.
		return fmt.Errorf("bad input %q", a+a)
	}
	return nil
}

//cyclecover:noalloc
func sanctioned(n int) []int {
	s := make([]int, n) //cyclecover:allocok grow-on-miss; amortised by the pool
	return s
}

// Unannotated: the analyzer does not look inside.
func unannotated(n int) []int {
	s := make([]int, n)
	_ = errors.New("fine " + "here")
	return s
}

//cyclecover:nodoc generated shim package, documented at its source of truth
package fixture

func helper() {}

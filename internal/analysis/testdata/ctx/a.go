// Package fixture exercises the ctxdiscipline analyzer: exported
// context-taking functions must thread or poll their context, and
// exported wrappers hardcoding context.Background need a Ctx sibling.
package fixture

import "context"

func workCtx(ctx context.Context) error { return ctx.Err() }

// Flagged: the context is accepted and ignored.
func IgnoresCtx(ctx context.Context) error { // want "never uses its context"
	return nil
}

// Flagged: the context is discarded at the signature.
func BlankCtx(_ context.Context) error { // want "discards its context parameter"
	return nil
}

// Flagged: the context is touched but neither threaded nor polled.
func DanglingCtx(ctx context.Context) error { // want "never threads it into a callee or polls it"
	c := ctx
	_ = c
	return nil
}

// Not flagged: the context reaches a callee.
func ThreadsCtx(ctx context.Context) error {
	return workCtx(ctx)
}

// Not flagged: the context is polled inside the loop.
func PollsCtx(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
	return nil
}

// Not flagged: a derived context is threaded.
func DerivesCtx(ctx context.Context) error {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	return workCtx(sub)
}

// Flagged: an exported wrapper that pins Background with no Ctx sibling.
func Blocking() error { // want "no exported BlockingCtx sibling"
	return workCtx(context.Background())
}

// Not flagged: the wrapper pattern with its exported Ctx sibling.
func Covered() error {
	return CoveredCtx(context.Background())
}

// CoveredCtx is the sibling that makes Covered acceptable.
func CoveredCtx(ctx context.Context) error { return workCtx(ctx) }

// Not flagged: explicitly opted out.
//
//cyclecover:ctxfree startup-only helper, completes in microseconds
func Bootstrap() error {
	return workCtx(context.Background())
}

package fixture // want "no package-level godoc comment"

// Exported is documented, but this is not the module root package, so
// only the package comment is checked — and it is missing.
func Exported() {}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc checks functions whose doc comment carries
// `//cyclecover:noalloc` for allocation-introducing constructs. The
// annotated functions are the pipeline's pinned hot paths (Verifier
// warm path, exact inner branch, sweep evaluate, delta repair), whose
// 0 allocs/op contract the benchmark gate enforces at runtime; this
// analyzer catches the regression classes a benchmark may not exercise.
//
// Flagged in warm code:
//   - map/slice composite literals and address-taken composite
//     literals (&T{...});
//   - make and new;
//   - append, unless it is a self-append (x = append(x, ...) or
//     x = append(x[:k], ...)) growing caller-owned scratch;
//   - closures capturing outer variables, and method values;
//   - interface boxing at call sites and conversions (a non-pointer
//     concrete value passed to an interface parameter escapes);
//   - any call into fmt, non-constant string concatenation, and
//     string<->[]byte/[]rune conversions.
//
// The contract covers the function's steady path: any branch that ends
// by returning (or panicking) is cold — error construction and
// grow-on-miss paths live there — and is skipped. Residual sanctioned
// sites opt out with `//cyclecover:allocok <reason>`.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc: "flags allocation-introducing constructs on the warm path of //cyclecover:noalloc functions; " +
		"opt out per line with //cyclecover:allocok <reason>",
	Run: runNoAlloc,
}

func runNoAlloc(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !FuncDirective(fd, "noalloc") {
				continue
			}
			nc := &noallocCheck{pass: pass, fn: fd, handled: map[ast.Node]bool{}}
			nc.block(fd.Body, false)
		}
	}
}

// noallocCheck walks one annotated function, tracking whether the
// current statement is on a cold (terminating-branch) path.
type noallocCheck struct {
	pass *Pass
	fn   *ast.FuncDecl
	// handled marks nodes a parent already adjudicated (sanctioned
	// self-appends, composite literals reported once under &).
	handled map[ast.Node]bool
}

// terminates reports whether a block's last statement unconditionally
// leaves the function (return or panic) — the marker of a cold branch.
func terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// block walks a statement list at the given coldness.
func (nc *noallocCheck) block(b *ast.BlockStmt, cold bool) {
	if b == nil {
		return
	}
	for _, s := range b.List {
		nc.stmt(s, cold)
	}
}

// stmt dispatches one statement, descending into branch bodies with
// their own coldness.
func (nc *noallocCheck) stmt(s ast.Stmt, cold bool) {
	switch s := s.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			nc.stmt(s.Init, cold)
		}
		nc.expr(s.Cond, cold)
		nc.block(s.Body, cold || terminates(s.Body))
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			nc.block(e, cold || terminates(e))
		case *ast.IfStmt:
			nc.stmt(e, cold)
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			nc.stmt(s.Init, cold)
		}
		if s.Tag != nil {
			nc.expr(s.Tag, cold)
		}
		nc.caseBodies(s.Body, cold)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			nc.stmt(s.Init, cold)
		}
		nc.caseBodies(s.Body, cold)
	case *ast.SelectStmt:
		nc.caseBodies(s.Body, cold)
	case *ast.ForStmt:
		if s.Init != nil {
			nc.stmt(s.Init, cold)
		}
		if s.Cond != nil {
			nc.expr(s.Cond, cold)
		}
		if s.Post != nil {
			nc.stmt(s.Post, cold)
		}
		nc.block(s.Body, cold)
	case *ast.RangeStmt:
		nc.expr(s.X, cold)
		nc.block(s.Body, cold)
	case *ast.BlockStmt:
		nc.block(s, cold)
	case *ast.AssignStmt:
		nc.sanctionSelfAppends(s)
		for _, e := range s.Rhs {
			nc.expr(e, cold)
		}
		for _, e := range s.Lhs {
			nc.expr(e, cold)
		}
	case *ast.ExprStmt:
		nc.expr(s.X, cold)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			nc.expr(e, cold)
		}
	case *ast.DeferStmt:
		nc.expr(s.Call, cold)
	case *ast.GoStmt:
		nc.expr(s.Call, cold)
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.LabeledStmt, *ast.BranchStmt, *ast.EmptyStmt:
		if ls, ok := s.(*ast.LabeledStmt); ok {
			nc.stmt(ls.Stmt, cold)
		}
		if ds, ok := s.(*ast.DeclStmt); ok {
			ast.Inspect(ds, func(n ast.Node) bool {
				if e, ok := n.(ast.Expr); ok {
					nc.expr(e, cold)
					return false
				}
				return true
			})
		}
		if sd, ok := s.(*ast.SendStmt); ok {
			nc.expr(sd.Chan, cold)
			nc.expr(sd.Value, cold)
		}
	}
}

// caseBodies walks each case clause body with per-clause coldness.
func (nc *noallocCheck) caseBodies(b *ast.BlockStmt, cold bool) {
	for _, cs := range b.List {
		var body []ast.Stmt
		switch cs := cs.(type) {
		case *ast.CaseClause:
			body = cs.Body
		case *ast.CommClause:
			body = cs.Body
		}
		clause := &ast.BlockStmt{List: body}
		c := cold || terminates(clause)
		for _, s := range body {
			nc.stmt(s, c)
		}
	}
}

// sanctionSelfAppends marks `x = append(x, ...)` and
// `x = append(x[:k], ...)` right-hand sides as allowed: they grow
// caller-owned scratch in place rather than minting a fresh slice.
func (nc *noallocCheck) sanctionSelfAppends(s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, rhs := range s.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" || nc.pass.Info.Uses[id] != types.Universe.Lookup("append") {
			continue
		}
		base := call.Args[0]
		if sl, ok := base.(*ast.SliceExpr); ok {
			base = sl.X
		}
		if types.ExprString(s.Lhs[i]) == types.ExprString(base) {
			nc.handled[call] = true
		}
	}
}

// expr scans one expression tree for allocating constructs; cold
// expressions are skipped wholesale.
func (nc *noallocCheck) expr(e ast.Expr, cold bool) {
	if e == nil || cold {
		return
	}
	pass := nc.pass
	ast.Inspect(e, func(n ast.Node) bool {
		if nc.handled[n] {
			nc.handled[n] = false
			if _, ok := n.(*ast.CallExpr); ok {
				// Sanctioned self-append: still scan its arguments.
				return true
			}
			return true
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			if capt := nc.captures(n); capt != "" {
				nc.report(n.Pos(), "closure captures %s and escapes; hoist the state into scratch", capt)
			}
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := n.X.(*ast.CompositeLit); ok {
					nc.handled[cl] = true
					nc.report(n.Pos(), "&composite literal allocates; reuse scratch storage")
				}
			}
		case *ast.CompositeLit:
			t := pass.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				nc.report(n.Pos(), "map literal allocates; reuse scratch storage")
			case *types.Slice:
				nc.report(n.Pos(), "slice literal allocates; reuse scratch storage")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := pass.TypeOf(n); t != nil && isString(t) && !isConst(pass, n) {
					nc.report(n.Pos(), "string concatenation allocates")
				}
			}
		case *ast.SelectorExpr:
			if sel, ok := pass.Info.Selections[n]; ok && sel.Kind() == types.MethodVal && !nc.handled[n] {
				nc.report(n.Pos(), "method value allocates a bound-method closure")
			}
		case *ast.CallExpr:
			nc.call(n)
		}
		return true
	})
}

// call adjudicates one warm call expression: builtins, fmt, interface
// boxing, and alloc-introducing conversions.
func (nc *noallocCheck) call(call *ast.CallExpr) {
	pass := nc.pass
	// The function position is a call, not a method value.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		nc.handled[sel] = true
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if pass.Info.Uses[id] == types.Universe.Lookup("make") {
			nc.report(call.Pos(), "make allocates; hoist into scratch setup")
			return
		}
		if pass.Info.Uses[id] == types.Universe.Lookup("new") {
			nc.report(call.Pos(), "new allocates; hoist into scratch setup")
			return
		}
		if pass.Info.Uses[id] == types.Universe.Lookup("append") {
			nc.report(call.Pos(), "append to a fresh slice allocates; append in place to caller-owned scratch (x = append(x, ...))")
			return
		}
	}
	// fmt anywhere on the warm path (Sprintf, Errorf, Fprintf, ...).
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				nc.report(call.Pos(), "fmt.%s allocates (formatting + interface boxing)", sel.Sel.Name)
				return
			}
		}
	}
	tv, ok := pass.Info.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Conversion: string <-> []byte/[]rune copies; conversion to
		// interface boxes.
		to := tv.Type
		if len(call.Args) == 1 {
			from := pass.TypeOf(call.Args[0])
			if from != nil {
				if stringByteConv(from, to) {
					nc.report(call.Pos(), "string/byte-slice conversion copies its data")
				}
				if types.IsInterface(to.Underlying()) && boxes(pass, call.Args[0], from) {
					nc.report(call.Pos(), "conversion to interface boxes a non-pointer value")
				}
			}
		}
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue
			}
			pt = params.At(params.Len() - 1).Type()
			if sl, ok := pt.(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := pass.TypeOf(arg)
		if at == nil {
			continue
		}
		if boxes(pass, arg, at) {
			nc.report(arg.Pos(), "argument boxes a non-pointer %s into an interface parameter", at.String())
		}
	}
}

// boxes reports whether passing a value of type at as an interface
// allocates: concrete non-pointer, non-interface, non-constant values
// escape to the heap when boxed.
func boxes(pass *Pass, arg ast.Expr, at types.Type) bool {
	if isConst(pass, arg) {
		return false
	}
	switch at.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Signature, *types.Chan, *types.Map:
		return false
	}
	if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return true
}

// stringByteConv reports a string <-> []byte/[]rune conversion.
func stringByteConv(from, to types.Type) bool {
	return (isString(from) && isByteOrRuneSlice(to)) || (isByteOrRuneSlice(from) && isString(to))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// isConst reports whether the expression has a compile-time constant
// value (constants box to static interface data, not heap allocations).
func isConst(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.Value != nil
}

// captures names one variable a func literal captures from its
// enclosing function, or returns "" for a capture-free literal (which
// compiles to a static function and does not allocate).
func (nc *noallocCheck) captures(fl *ast.FuncLit) string {
	var name string
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := nc.pass.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		// Captured: declared inside the enclosing function but outside
		// the literal.
		if obj.Pos() >= nc.fn.Pos() && obj.Pos() < nc.fn.End() && (obj.Pos() < fl.Pos() || obj.Pos() >= fl.End()) {
			name = obj.Name()
		}
		return true
	})
	return name
}

// report emits a finding unless the site is annotated
// //cyclecover:allocok.
func (nc *noallocCheck) report(pos token.Pos, format string, args ...any) {
	if nc.pass.Exempt(pos, "allocok") {
		return
	}
	nc.pass.Reportf(pos, format, args...)
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked module package plus everything a
// Pass needs: syntax, type facts, and parsed directives.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the package's directory on disk.
	Dir string
	// Fset is the loader's shared file set.
	Fset *token.FileSet
	// Files holds the parsed non-test files in sorted filename order.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's fact tables.
	Info *types.Info
	// ModuleRoot marks the module's root (public API) package.
	ModuleRoot bool
	// Directives collects every //cyclecover: annotation in the package.
	Directives []Directive
}

// Loader type-checks module packages from source with no external
// dependencies: module-internal imports resolve against the module
// directory, everything else through the toolchain's source-mode
// importer (GOROOT). One Loader must be used per module; packages are
// cached by import path so every reference shares one type identity.
type Loader struct {
	// ModulePath is the module's path from go.mod.
	ModulePath string
	// ModuleDir is the module root directory.
	ModuleDir string

	fset *token.FileSet
	std  types.ImporterFrom
	pkgs map[string]*Package
	deps map[string]*types.Package
}

// cgoOff forces pure-Go stdlib builds once per process: the source
// importer cannot run cgo, and every package the module touches has a
// pure-Go fallback.
var cgoOff sync.Once

// NewLoader returns a Loader for the module rooted at dir, reading the
// module path from go.mod.
func NewLoader(dir string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, err
	}
	cgoOff.Do(func() { build.Default.CgoEnabled = false })
	fset := token.NewFileSet()
	l := &Loader{
		ModulePath: modPath,
		ModuleDir:  dir,
		fset:       fset,
		pkgs:       map[string]*Package{},
		deps:       map[string]*types.Package{},
	}
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer does not implement ImporterFrom")
	}
	l.std = std
	return l, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) { return l.ImportFrom(path, "", 0) }

// ImportFrom implements types.ImporterFrom, routing module-internal
// paths to the module tree and the rest to the GOROOT source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.loadDir(path, filepath.Join(l.ModuleDir, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if p, ok := l.deps[path]; ok {
		return p, nil
	}
	p, err := l.std.ImportFrom(path, dir, mode)
	if err == nil {
		l.deps[path] = p
	}
	return p, err
}

// loadDir parses and type-checks one module package directory, cached
// by import path so dependents share the same type identities.
func (l *Loader) loadDir(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	names := append([]string{}, bp.GoFiles...)
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l, FakeImportC: true}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	pkg := &Package{
		Path:       path,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		ModuleRoot: path == l.ModulePath,
	}
	for _, f := range files {
		pkg.Directives = append(pkg.Directives, parseDirectives(l.fset, f)...)
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// LoadAll loads every package in the module (the ./... pattern):
// each directory under the module root holding non-test Go files,
// skipping hidden directories, testdata, and underscore-prefixed paths.
// Packages are returned in sorted import-path order.
func (l *Loader) LoadAll() ([]*Package, error) {
	dirs, err := packageDirs(l.ModuleDir)
	if err != nil {
		return nil, err
	}
	return l.loadDirs(dirs)
}

// Load resolves the given patterns relative to the module root: the
// literal "./..." loads the whole module, anything else must be a
// package directory path like "./internal/graph".
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	var dirs []string
	for _, pat := range patterns {
		if pat == "./..." || pat == "..." {
			all, err := packageDirs(l.ModuleDir)
			if err != nil {
				return nil, err
			}
			dirs = append(dirs, all...)
			continue
		}
		dirs = append(dirs, filepath.Join(l.ModuleDir, filepath.FromSlash(strings.TrimPrefix(pat, "./"))))
	}
	return l.loadDirs(dirs)
}

// loadDirs maps package directories to import paths and loads each one
// once, in deterministic order.
func (l *Loader) loadDirs(dirs []string) ([]*Package, error) {
	seen := map[string]bool{}
	var pkgs []*Package
	sort.Strings(dirs)
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModuleDir, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModulePath
		if rel != "." {
			path = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		if seen[path] {
			continue
		}
		seen[path] = true
		pkg, err := l.loadDir(path, dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// packageDirs lists the module's package directories: every directory
// holding at least one non-test .go file, skipping hidden, underscore,
// and testdata trees.
func packageDirs(root string) ([]string, error) {
	// WalkDir visits lexically, so appending on the first .go file per
	// directory yields a deterministic, already-sorted list without
	// ranging over a map.
	var dirs []string
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			if dir := filepath.Dir(path); !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// LoadFixture type-checks a single standalone directory (an
// analysistest fixture under testdata) as the synthetic import path
// "fixture/<basename>". Fixtures may import the standard library only.
// moduleRoot marks the resulting package as the module's root package
// for analyzers that treat the public API specially.
func LoadFixture(dir string, moduleRoot bool) (*Package, error) {
	cgoOff.Do(func() { build.Default.CgoEnabled = false })
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer does not implement ImporterFrom")
	}
	l := &Loader{
		ModulePath: "fixture/" + filepath.Base(dir),
		ModuleDir:  dir,
		fset:       fset,
		std:        std,
		pkgs:       map[string]*Package{},
		deps:       map[string]*types.Package{},
	}
	pkg, err := l.loadDir(l.ModulePath, dir)
	if err != nil {
		return nil, err
	}
	pkg.ModuleRoot = moduleRoot
	return pkg, nil
}

// Package analysis is the repository's static-analysis framework: a
// deliberately small, stdlib-only re-creation of the
// golang.org/x/tools/go/analysis API shape (Analyzer, Pass, Diagnostic)
// plus a whole-module loader built on go/parser + go/types with a
// source-mode importer.
//
// The real x/tools module is the natural host for these checkers, but
// this repository builds in hermetic environments with no module proxy,
// so the framework is vendored down to the ~300 lines the cyclelint
// analyzers actually need. The API mirrors x/tools closely enough that
// porting the analyzers onto the real multichecker is a mechanical
// search-and-replace once the dependency is allowed.
//
// The six analyzers (see Analyzers) enforce the invariants the paper
// reproduction's tests only pin at runtime: deterministic iteration
// (detiter), seed-derived randomness (rngdiscipline), allocation-free
// annotated hot paths (noalloc), context propagation (ctxdiscipline),
// the documentation contract (docs), and justified fault-injection
// sites (faultpoint). DESIGN.md §9 documents the contract and the
// //cyclecover:* annotation grammar.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check: a name, a short contract, and a
// Run function applied to every loaded package. It mirrors
// x/tools/go/analysis.Analyzer minus the dependency graph (the five
// cyclelint analyzers are independent).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command
	// line; it is a lowercase single word.
	Name string
	// Doc is the one-paragraph contract shown by `cyclelint -help`.
	Doc string
	// Run applies the check to one package, reporting findings through
	// pass.Reportf.
	Run func(pass *Pass)
}

// Pass carries one analyzed package — syntax, type information, and the
// parsed //cyclecover: directives — to an Analyzer's Run function, and
// collects its diagnostics.
type Pass struct {
	// Fset maps token positions of every file in the package.
	Fset *token.FileSet
	// Files holds the package's parsed non-test files in deterministic
	// (sorted filename) order.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's fact tables for the package.
	Info *types.Info
	// ModuleRoot reports whether this package is the module's root
	// (public API) package; the docs analyzer checks exported-identifier
	// docs only there.
	ModuleRoot bool

	analyzer   *Analyzer
	directives []Directive
	diags      *[]Diagnostic
}

// Diagnostic is one finding: a position, the analyzer that produced it,
// and a message.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Analyzer names the originating analyzer.
	Analyzer string
	// Message describes the violation.
	Message string
}

// String formats the diagnostic in the conventional
// file:line:col: [analyzer] message shape.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of e, or nil if the type checker did
// not record one.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// Run applies each analyzer to each package and returns every finding,
// deterministically ordered by file, line, column, analyzer, message.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		validateDirectives(pkg, &diags)
		for _, az := range analyzers {
			pass := &Pass{
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				Info:       pkg.Info,
				ModuleRoot: pkg.ModuleRoot,
				analyzer:   az,
				directives: pkg.Directives,
				diags:      &diags,
			}
			az.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}

// Analyzers returns the full cyclelint suite in its canonical order.
func Analyzers() []*Analyzer {
	return []*Analyzer{DetIter, RNGDiscipline, NoAlloc, CtxDiscipline, Docs, Faultpoint}
}

package analysis

import (
	"go/ast"
	"go/types"
)

// DetIter flags order-nondeterministic iteration — `range` over a map,
// the stdlib maps.Keys/Values/All iterators, and sync.Map.Range — in
// every package of the module. The covering pipeline's outputs are
// pinned bit-identical across runs, worker counts, and serial/parallel
// execution, so any map-order dependence that feeds a canonical
// signature, a merge, or a result is a latent nondeterminism bug.
// Sanctioned sites (e.g. keys collected into a slice and sorted before
// use) opt out with `//cyclecover:nondet <reason>` on the same line or
// the line above.
var DetIter = &Analyzer{
	Name: "detiter",
	Doc: "flags range-over-map and other order-nondeterministic iteration; " +
		"opt out with //cyclecover:nondet <reason>",
	Run: runDetIter,
}

// nondetIterFuncs are stdlib functions whose iteration order is
// deliberately unspecified.
var nondetIterFuncs = map[string]map[string]bool{
	"maps": {"Keys": true, "Values": true, "All": true},
}

func runDetIter(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				t := pass.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, ok := t.Underlying().(*types.Map); ok && !pass.Exempt(n.Pos(), "nondet") {
					pass.Reportf(n.Pos(), "range over map is order-nondeterministic; sort keys first or annotate //cyclecover:nondet <reason>")
				}
			case *ast.CallExpr:
				switch fn := n.Fun.(type) {
				case *ast.SelectorExpr:
					// Package-level iterator helpers: maps.Keys etc.
					if id, ok := fn.X.(*ast.Ident); ok {
						if obj, ok := pass.Info.Uses[id].(*types.PkgName); ok {
							if set, ok := nondetIterFuncs[obj.Imported().Path()]; ok && set[fn.Sel.Name] {
								if !pass.Exempt(n.Pos(), "nondet") {
									pass.Reportf(n.Pos(), "%s.%s iterates in nondeterministic order; annotate //cyclecover:nondet <reason> if sanctioned", obj.Imported().Path(), fn.Sel.Name)
								}
							}
							return true
						}
					}
					// sync.Map.Range method calls.
					if sel, ok := pass.Info.Selections[fn]; ok && fn.Sel.Name == "Range" {
						if named, ok := derefNamed(sel.Recv()); ok && isType(named, "sync", "Map") {
							if !pass.Exempt(n.Pos(), "nondet") {
								pass.Reportf(n.Pos(), "sync.Map.Range iterates in nondeterministic order; annotate //cyclecover:nondet <reason> if sanctioned")
							}
						}
					}
				}
			}
			return true
		})
	}
}

// derefNamed unwraps pointers and reports the named type underneath.
func derefNamed(t types.Type) (*types.Named, bool) {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return n, ok
}

// isType reports whether n is the named type pkgPath.name.
func isType(n *types.Named, pkgPath, name string) bool {
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

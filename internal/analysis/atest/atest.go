// Package atest is the fixture harness for the cyclelint analyzers —
// the stdlib-only counterpart of golang.org/x/tools/go/analysis/
// analysistest. A fixture is a directory of Go files under testdata/
// annotated with `// want "regexp"` comments: Run type-checks the
// directory as a standalone package, applies one analyzer, and fails
// the test on any finding without a matching want, or any want without
// a matching finding. Lines carrying the analyzer's documented opt-out
// annotation therefore double as regression tests for the opt-out path:
// a finding there would be an unexpected diagnostic.
package atest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"github.com/cyclecover/cyclecover/internal/analysis"
)

// want is one expectation: a compiled pattern at a file line.
type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// wantRE extracts the quoted patterns of a `// want "..." "..."` comment.
var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// Run applies one analyzer to the fixture directory and checks its
// findings against the fixture's want comments. moduleRoot marks the
// fixture as the module's root package (the docs analyzer checks
// exported-identifier documentation only there).
func Run(t *testing.T, az *analysis.Analyzer, dir string, moduleRoot bool) {
	t.Helper()
	pkg, err := analysis.LoadFixture(dir, moduleRoot)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	wants, err := parseWants(dir)
	if err != nil {
		t.Fatalf("parse wants in %s: %v", dir, err)
	}
	diags := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{az})
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.pattern)
		}
	}
}

// claim marks the first unmatched want on the diagnostic's line whose
// pattern matches, reporting whether one was found.
func claim(wants []*want, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.pattern.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// parseWants scans every fixture file for want comments. The scan is
// textual (line-oriented) so wants can annotate any line, including
// ones inside comments the parser would fold away.
func parseWants(dir string) ([]*want, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var wants []*want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, expect, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			ms := wantRE.FindAllStringSubmatch(expect, -1)
			if len(ms) == 0 {
				return nil, fmt.Errorf("%s:%d: malformed want comment %q", path, i+1, expect)
			}
			for _, m := range ms {
				re, err := regexp.Compile(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern: %v", path, i+1, err)
				}
				wants = append(wants, &want{file: path, line: i + 1, pattern: re})
			}
		}
	}
	return wants, nil
}

package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// Directive is one parsed //cyclecover:<verb> [reason] comment. The
// grammar (DESIGN.md §9) is:
//
//	//cyclecover:<verb> <reason...>
//
// with no space before the verb. Opt-out verbs (nondet, rngok, allocok,
// ctxfree, nodoc) suppress a finding on the same line or the line
// directly below the comment, and require a non-empty reason; a bare
// opt-out is itself a finding. The opt-in verb noalloc appears in a
// function's doc comment and carries no reason.
type Directive struct {
	// Verb is the directive keyword: nondet, rngok, allocok, ctxfree,
	// nodoc, or noalloc.
	Verb string
	// Reason is the free-text justification after the verb.
	Reason string
	// Pos is the comment's position.
	Pos token.Position
}

// directivePrefix introduces every annotation the suite understands.
const directivePrefix = "//cyclecover:"

// knownVerbs lists the grammar's vocabulary; anything else after the
// prefix is reported as a typo by the runner.
var knownVerbs = map[string]bool{
	"nondet":  true, // detiter: sanctioned order-nondeterministic iteration
	"rngok":   true, // rngdiscipline: sanctioned wall-clock/global-RNG use
	"allocok": true, // noalloc: sanctioned allocation inside a noalloc function
	"ctxfree": true, // ctxdiscipline: sanctioned ctx-less exported wrapper
	"nodoc":   true, // docs: sanctioned undocumented identifier/package
	"noalloc": true, // noalloc: opt-in marking a function's warm path

	// faultpoint is inverted relative to the opt-outs above: it is the
	// *required* annotation on fault-injection call sites, and its absence
	// (not its presence) is the finding.
	"faultpoint": true, // faultpoint: documents a faultinject.Inject chaos hook
}

// parseDirectives extracts every //cyclecover: comment from a file.
func parseDirectives(fset *token.FileSet, f *ast.File) []Directive {
	var ds []Directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, directivePrefix)
			verb, reason, _ := strings.Cut(rest, " ")
			// A reason ends at an embedded comment marker, so fixture
			// `// want` annotations (and stray trailing comments) are
			// never mistaken for justifications. Reasons therefore must
			// not contain "//" (DESIGN.md §9).
			if i := strings.Index(reason, "//"); i >= 0 {
				reason = reason[:i]
			}
			ds = append(ds, Directive{
				Verb:   strings.TrimSpace(verb),
				Reason: strings.TrimSpace(reason),
				Pos:    fset.Position(c.Pos()),
			})
		}
	}
	return ds
}

// Exempt reports whether a justified directive with the given verb is
// attached to pos: on the same source line, or alone on the line above.
// A directive without a reason never exempts (the runner flags it).
func (p *Pass) Exempt(pos token.Pos, verb string) bool {
	line := p.Fset.Position(pos)
	for _, d := range p.directives {
		if d.Verb != verb || d.Reason == "" || d.Pos.Filename != line.Filename {
			continue
		}
		if d.Pos.Line == line.Line || d.Pos.Line == line.Line-1 {
			return true
		}
	}
	return false
}

// FuncDirective reports whether fn's doc comment carries the given
// opt-in verb (e.g. noalloc).
func FuncDirective(fn *ast.FuncDecl, verb string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(c.Text, directivePrefix) {
			rest := strings.TrimPrefix(c.Text, directivePrefix)
			v, _, _ := strings.Cut(rest, " ")
			if strings.TrimSpace(v) == verb {
				return true
			}
		}
	}
	return false
}

// validateDirectives reports grammar violations — unknown verbs and
// reason-less opt-outs — as findings of the pseudo-analyzer "directive".
func validateDirectives(pkg *Package, diags *[]Diagnostic) {
	for _, d := range pkg.Directives {
		switch {
		case !knownVerbs[d.Verb]:
			*diags = append(*diags, Diagnostic{
				Pos:      d.Pos,
				Analyzer: "directive",
				Message:  "unknown cyclecover directive verb " + strconv.Quote(d.Verb),
			})
		case d.Verb != "noalloc" && d.Reason == "":
			*diags = append(*diags, Diagnostic{
				Pos:      d.Pos,
				Analyzer: "directive",
				Message:  "cyclecover:" + d.Verb + " requires a reason",
			})
		}
	}
}

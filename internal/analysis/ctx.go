package analysis

import (
	"go/ast"
	"go/types"
)

// CtxDiscipline enforces the repository's context-propagation contract
// (DESIGN.md §5.5): cancellation must reach every layer, so
//
//  1. every exported function taking a context.Context must actually
//     use it — thread it (or a context derived from it) into a callee,
//     or poll Done/Err/Deadline/Value — and must not bind it to the
//     blank identifier; a `...Ctx` variant that ignores its context
//     silently un-cancels every caller above it;
//  2. every exported non-context function that papers over the gap by
//     calling a callee with context.Background() or context.TODO()
//     must have an exported `<Name>Ctx` sibling (same receiver), so
//     callers always have a cancellable path. Genuinely non-blocking
//     wrappers opt out with `//cyclecover:ctxfree <reason>` in the doc
//     comment.
var CtxDiscipline = &Analyzer{
	Name: "ctxdiscipline",
	Doc: "exported ctx-taking functions must thread or poll their context; exported wrappers " +
		"hardcoding context.Background() need an exported Ctx sibling or //cyclecover:ctxfree <reason>",
	Run: runCtx,
}

func runCtx(pass *Pass) {
	siblings := exportedFuncKeys(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if obj := ctxParam(pass, fd); obj != nil || ctxParamBlank(pass, fd) {
				if obj == nil {
					pass.Reportf(fd.Pos(), "exported %s discards its context parameter (_); name it and thread it", fd.Name.Name)
					continue
				}
				checkCtxUse(pass, fd, obj)
				continue
			}
			checkCtxSibling(pass, fd, siblings)
		}
	}
}

// exportedFuncKeys collects "recv.Name" keys for every exported
// function and method in the package, for sibling lookups.
func exportedFuncKeys(pass *Pass) map[string]bool {
	keys := map[string]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() {
				continue
			}
			keys[funcKey(fd)] = true
		}
	}
	return keys
}

// funcKey is "ReceiverType.Name" for methods, "Name" for functions.
func funcKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// ctxParam returns the object of a leading named context.Context
// parameter, or nil.
func ctxParam(pass *Pass, fd *ast.FuncDecl) *types.Var {
	params := fd.Type.Params
	if params == nil || len(params.List) == 0 {
		return nil
	}
	first := params.List[0]
	if !isContextType(pass.TypeOf(first.Type)) || len(first.Names) == 0 {
		return nil
	}
	name := first.Names[0]
	if name.Name == "_" {
		return nil
	}
	obj, _ := pass.Info.Defs[name].(*types.Var)
	return obj
}

// ctxParamBlank reports a leading context parameter bound to the blank
// identifier (or unnamed).
func ctxParamBlank(pass *Pass, fd *ast.FuncDecl) bool {
	params := fd.Type.Params
	if params == nil || len(params.List) == 0 {
		return false
	}
	first := params.List[0]
	if !isContextType(pass.TypeOf(first.Type)) {
		return false
	}
	return len(first.Names) == 0 || first.Names[0].Name == "_"
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	return ok && isType(n, "context", "Context")
}

// checkCtxUse verifies that the context parameter is threaded into a
// callee or polled.
func checkCtxUse(pass *Pass, fd *ast.FuncDecl, obj *types.Var) {
	used, threaded := false, false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if usesObj(pass, arg, obj) {
					threaded = true
				}
			}
		case *ast.SelectorExpr:
			if id, ok := n.X.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
				switch n.Sel.Name {
				case "Done", "Err", "Deadline", "Value":
					threaded = true
				}
			}
		case *ast.Ident:
			if pass.Info.Uses[n] == obj {
				used = true
			}
		}
		return true
	})
	switch {
	case !used:
		pass.Reportf(fd.Pos(), "exported %s never uses its context; thread it into callees or poll ctx.Done/Err", fd.Name.Name)
	case !threaded:
		pass.Reportf(fd.Pos(), "exported %s uses its context but never threads it into a callee or polls it", fd.Name.Name)
	}
}

// usesObj reports whether the expression tree mentions obj.
func usesObj(pass *Pass, e ast.Expr, obj *types.Var) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// checkCtxSibling flags exported non-context functions that hardcode
// context.Background()/TODO() into a callee without an exported Ctx
// sibling.
func checkCtxSibling(pass *Pass, fd *ast.FuncDecl, siblings map[string]bool) {
	var bg ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if bg != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.Info.Uses[id].(*types.PkgName)
		if !ok || pn.Imported().Path() != "context" {
			return true
		}
		if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
			bg = n
		}
		return true
	})
	if bg == nil {
		return
	}
	if siblings[funcKey(fd)+"Ctx"] {
		return
	}
	if pass.Exempt(fd.Pos(), "ctxfree") {
		return
	}
	pass.Reportf(fd.Pos(), "exported %s hardcodes context.Background/TODO but has no exported %sCtx sibling; add one or annotate //cyclecover:ctxfree <reason>", fd.Name.Name, fd.Name.Name)
}

package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// RNGDiscipline enforces that every random draw and every wall-clock
// read in the module is explicit about its provenance: the paper
// pipeline's determinism pins (parallel-vs-serial exact search,
// portfolio-vs-pipeline, sampled failure sweeps) are only meaningful if
// all randomness is derived from a caller-supplied seed and no result
// depends on the clock.
//
// Flagged:
//   - time.Now (schedules, seeds, and tie-breaks must not read the
//     clock in deterministic packages);
//   - every package-level function of math/rand and math/rand/v2 except
//     the New* constructors (the process-global source is seeded
//     nondeterministically and shared);
//   - any use of crypto/rand (entropy is never reproducible).
//
// Sanctioned sites opt out either via `//cyclecover:rngok <reason>` on
// the line (or the line above), or wholesale for packages listed in
// RNGAllowTimeNow — the serving layer legitimately reads the clock for
// timeouts and uptime metrics.
var RNGDiscipline = &Analyzer{
	Name: "rngdiscipline",
	Doc: "forbids time.Now, global math/rand draws, and crypto/rand outside the allowlist; " +
		"opt out with //cyclecover:rngok <reason>",
	Run: runRNG,
}

// RNGAllowTimeNow lists import paths where time.Now is sanctioned
// wholesale (server timeouts, uptime metrics). Extend it when a new
// serving-layer package appears; deterministic pipeline packages must
// never be listed (annotate individual lines instead).
var RNGAllowTimeNow = map[string]bool{
	"github.com/cyclecover/cyclecover/internal/server": true,
}

func runRNG(pass *Pass) {
	timeNowAllowed := RNGAllowTimeNow[pass.Pkg.Path()]
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			path, name := pkgName.Imported().Path(), sel.Sel.Name
			switch {
			case path == "time" && name == "Now":
				if !timeNowAllowed && !pass.Exempt(sel.Pos(), "rngok") {
					pass.Reportf(sel.Pos(), "time.Now in a deterministic package; derive from the instance seed or annotate //cyclecover:rngok <reason>")
				}
			case (path == "math/rand" || path == "math/rand/v2") && !strings.HasPrefix(name, "New"):
				if isFunc(pkgName.Imported(), name) && !pass.Exempt(sel.Pos(), "rngok") {
					pass.Reportf(sel.Pos(), "%s.%s draws from the process-global RNG; construct a seeded *rand.Rand or annotate //cyclecover:rngok <reason>", path, name)
				}
			case path == "crypto/rand":
				if !pass.Exempt(sel.Pos(), "rngok") {
					pass.Reportf(sel.Pos(), "crypto/rand is never seed-reproducible; use a seeded math/rand source or annotate //cyclecover:rngok <reason>")
				}
			}
			return true
		})
	}
}

// isFunc reports whether name is a package-level function of pkg (not a
// type or constant — rand.Rand, rand.Source must stay usable).
func isFunc(pkg *types.Package, name string) bool {
	obj := pkg.Scope().Lookup(name)
	if obj == nil {
		return false
	}
	_, ok := obj.(*types.Func)
	return ok
}

package analysis_test

import (
	"testing"

	"github.com/cyclecover/cyclecover/internal/analysis"
	"github.com/cyclecover/cyclecover/internal/analysis/atest"
)

// TestDetIterFixture checks the raw-map-range and stdlib-iterator
// findings, the annotated opt-out, and the bare-directive violation.
func TestDetIterFixture(t *testing.T) {
	atest.Run(t, analysis.DetIter, "testdata/detiter", false)
}

// TestRNGDisciplineFixture checks wall-clock, global-RNG, and
// crypto/rand findings against seeded construction and the opt-out.
func TestRNGDisciplineFixture(t *testing.T) {
	atest.Run(t, analysis.RNGDiscipline, "testdata/rng", false)
}

// TestNoAllocFixture checks every allocation class the analyzer knows,
// the cold-branch and self-append carve-outs, and the allocok opt-out.
func TestNoAllocFixture(t *testing.T) {
	atest.Run(t, analysis.NoAlloc, "testdata/noalloc", false)
}

// TestCtxDisciplineFixture checks ignored/discarded/dangling contexts,
// the threaded and polled happy paths, and the Ctx-sibling rule.
func TestCtxDisciplineFixture(t *testing.T) {
	atest.Run(t, analysis.CtxDiscipline, "testdata/ctx", false)
}

// TestFaultpointFixture checks that unannotated faultinject.Inject
// sites are findings, annotated and same-line-annotated sites are not,
// and harness-management calls (Fired, Reset) never are.
func TestFaultpointFixture(t *testing.T) {
	atest.Run(t, analysis.Faultpoint, "testdata/faultpoint", false)
}

// TestDocsFixtures checks the package-doc rule, its nodoc opt-out, and
// the module-root exported-identifier rule.
func TestDocsFixtures(t *testing.T) {
	t.Run("missing", func(t *testing.T) {
		atest.Run(t, analysis.Docs, "testdata/docsmissing", false)
	})
	t.Run("optout", func(t *testing.T) {
		atest.Run(t, analysis.Docs, "testdata/docsoptout", false)
	})
	t.Run("root", func(t *testing.T) {
		atest.Run(t, analysis.Docs, "testdata/docsroot", true)
	})
}

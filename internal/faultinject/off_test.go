//go:build !faultinject

package faultinject

import "testing"

// TestCompiledOut pins the production contract: failpoints cannot be
// armed, Inject is a guaranteed no-op, and nothing ever fires.
func TestCompiledOut(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled = true in a !faultinject build")
	}
	if err := Configure("pool.dispatch=err", 1); err == nil {
		t.Fatal("Configure armed failpoints in a production build")
	}
	if err := Inject(SitePoolDispatch); err != nil {
		t.Fatalf("Inject = %v, want nil", err)
	}
	if Fired(SitePoolDispatch) != 0 {
		t.Fatal("Fired > 0 in a production build")
	}
	Reset() // must be callable
}

//go:build faultinject

package faultinject

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Enabled reports whether this binary was built with failpoints
// compiled in (`-tags faultinject`).
const Enabled = true

// verbs of the failpoint grammar.
const (
	verbErr   = "err"
	verbDelay = "delay"
	verbPanic = "panic"
)

// action is one parsed failpoint behaviour.
type action struct {
	verb  string
	arg   string        // err/panic message
	delay time.Duration // delay verb only
	prob  float64       // (0,1]; 1 fires on every hit
	limit uint64        // 0 = unlimited; else fire on the first limit eligible hits
}

// site is one armed failpoint: its action plus hit bookkeeping.
type site struct {
	act      action
	hits     atomic.Uint64 // arrivals at this site since Configure
	eligible atomic.Uint64 // arrivals that passed the probability gate
	fired    atomic.Uint64 // actions actually taken
}

// config is one immutable armed configuration; Configure swaps the
// whole pointer so Inject reads a consistent view without locking.
type config struct {
	seed  int64
	sites map[string]*site
}

var current atomic.Pointer[config]

// Configure parses spec (see the package comment for the grammar) and
// arms the failpoints, replacing any previous configuration. The seed
// keys every probabilistic decision: identical (spec, seed) pairs
// replay the identical fault schedule.
func Configure(spec string, seed int64) error {
	cfg := &config{seed: seed, sites: make(map[string]*site)}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, rest, ok := strings.Cut(clause, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return fmt.Errorf("faultinject: clause %q: want site=action", clause)
		}
		act, err := parseAction(strings.TrimSpace(rest))
		if err != nil {
			return fmt.Errorf("faultinject: site %s: %w", name, err)
		}
		if _, dup := cfg.sites[name]; dup {
			return fmt.Errorf("faultinject: site %s configured twice", name)
		}
		cfg.sites[name] = &site{act: act}
	}
	current.Store(cfg)
	return nil
}

// Reset disarms every failpoint.
func Reset() { current.Store(nil) }

// Fired reports how many times the site's action has fired since the
// last Configure.
func Fired(name string) uint64 {
	cfg := current.Load()
	if cfg == nil {
		return 0
	}
	st := cfg.sites[name]
	if st == nil {
		return 0
	}
	return st.fired.Load()
}

// Inject is the failpoint hook: a no-op unless Configure armed this
// site, otherwise the site's action — an error wrapping ErrInjected, a
// sleep, or a panic. Probabilistic sites decide deterministically from
// (seed, site, hit index), so schedules replay exactly under -race and
// arbitrary goroutine interleavings (the hit index a goroutine draws
// may vary with scheduling, but the set of fired hits for a given
// arrival order does not).
func Inject(name string) error {
	cfg := current.Load()
	if cfg == nil {
		return nil
	}
	st := cfg.sites[name]
	if st == nil {
		return nil
	}
	n := st.hits.Add(1) - 1 // zero-based arrival index
	if st.act.prob < 1 && !decide(cfg.seed, name, n, st.act.prob) {
		return nil
	}
	if st.act.limit > 0 && st.eligible.Add(1) > st.act.limit {
		return nil
	}
	st.fired.Add(1)
	switch st.act.verb {
	case verbDelay:
		time.Sleep(st.act.delay)
		return nil
	case verbPanic:
		panic(fmt.Sprintf("faultinject: site %s: %s", name, st.act.arg))
	default: // verbErr
		return fmt.Errorf("%w: site %s: %s", ErrInjected, name, st.act.arg)
	}
}

// parseAction parses verb[(arg)][@prob][#limit].
func parseAction(s string) (action, error) {
	act := action{prob: 1}
	if i := strings.LastIndexByte(s, '#'); i >= 0 {
		lim, err := strconv.ParseUint(strings.TrimSpace(s[i+1:]), 10, 64)
		if err != nil || lim == 0 {
			return action{}, fmt.Errorf("bad #limit in %q", s)
		}
		act.limit = lim
		s = s[:i]
	}
	if i := strings.LastIndexByte(s, '@'); i >= 0 {
		p, err := strconv.ParseFloat(strings.TrimSpace(s[i+1:]), 64)
		if err != nil || p <= 0 || p > 1 {
			return action{}, fmt.Errorf("bad @probability in %q (want 0 < p ≤ 1)", s)
		}
		act.prob = p
		s = s[:i]
	}
	s = strings.TrimSpace(s)
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return action{}, fmt.Errorf("unclosed argument in %q", s)
		}
		act.arg = s[i+1 : len(s)-1]
		s = s[:i]
	}
	act.verb = strings.TrimSpace(s)
	switch act.verb {
	case verbErr, verbPanic:
		if act.arg == "" {
			act.arg = "injected"
		}
	case verbDelay:
		d, err := time.ParseDuration(act.arg)
		if err != nil || d < 0 {
			return action{}, fmt.Errorf("delay needs a duration argument, got %q", act.arg)
		}
		act.delay = d
	default:
		return action{}, fmt.Errorf("unknown verb %q (want err, delay, or panic)", act.verb)
	}
	return act, nil
}

// decide is the deterministic coin flip for probabilistic sites: a
// splitmix64 finalizer over (seed, site hash, hit index) mapped to
// [0,1). Pure, so a schedule is a function of the configuration alone.
func decide(seed int64, name string, n uint64, prob float64) bool {
	h := fnv.New64a()
	h.Write([]byte(name))
	x := uint64(seed) ^ h.Sum64() ^ (n * 0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11)/float64(1<<53) < prob
}

// Package faultinject provides deterministic, seed-keyed failpoints for
// chaos rehearsal: named sites threaded through the serving path (cache
// snapshot I/O, pool dispatch, strategy entry) where tests inject
// errors, latency spikes, or panics and prove the daemon sheds,
// degrades, and recovers instead of collapsing.
//
// The package has two builds. Without the `faultinject` build tag —
// every production build — Inject is a constant-returning no-op the
// compiler inlines away, and Configure refuses to arm anything, so a
// stray spec in a config file can never rehearse faults in production.
// With `-tags faultinject` the failpoints are live: Configure parses a
// spec, and every Inject call consults it.
//
// Spec grammar (DESIGN.md §12):
//
//	spec    = site "=" action *( ";" site "=" action )
//	action  = verb [ "(" arg ")" ] [ "@" probability ] [ "#" limit ]
//	verb    = "err" | "delay" | "panic"
//
// `err` makes Inject return an error wrapping ErrInjected (arg is the
// message), `delay(50ms)` sleeps for the parsed duration, and `panic`
// panics with the arg. `@0.25` fires the action on a deterministic
// quarter of the site's hits — the decision for hit k is a pure
// function of (seed, site, k), so a given seed replays the identical
// fault schedule on every run regardless of goroutine interleaving.
// `#2` fires the action on the first two eligible hits only. Example:
//
//	pool.dispatch=delay(50ms)@0.5;strategy.solve=panic(chaos)#1
//
// Fault-injection call sites are load-bearing chaos surface: cyclelint
// requires each one to carry a `//cyclecover:faultpoint <reason>`
// annotation, so the set of rehearsable failure points stays auditable.
package faultinject

import "errors"

// ErrInjected is the sentinel wrapped by every error the `err` verb
// returns; tests distinguish injected faults from real ones with
// errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Canonical site names. A site constant exists for every failpoint
// threaded into the serving path; Configure accepts arbitrary site
// strings, so ad-hoc test-local sites need no registration.
const (
	// SiteSnapshotSave guards the cache snapshot write path
	// (Plans.SaveSnapshotFile).
	SiteSnapshotSave = "cache.snapshot.save"
	// SiteSnapshotLoad guards the cache snapshot read path
	// (Plans.LoadSnapshotFile).
	SiteSnapshotLoad = "cache.snapshot.load"
	// SitePoolDispatch guards worker-pool job dispatch, immediately
	// before a job's run function executes.
	SitePoolDispatch = "pool.dispatch"
	// SiteStrategySolve guards every strategy invocation that runs
	// behind the construct.SafeSolve panic boundary.
	SiteStrategySolve = "strategy.solve"
)

//go:build !faultinject

package faultinject

import "errors"

// Enabled reports whether this binary was built with failpoints
// compiled in (`-tags faultinject`).
const Enabled = false

// Inject is the failpoint hook. In this build it is a no-op that the
// compiler inlines to nothing: production binaries carry the call
// sites but none of the machinery.
func Inject(site string) error { return nil }

// Configure refuses to arm failpoints in a production build, so specs
// can only ever take effect in binaries built for chaos rehearsal.
func Configure(spec string, seed int64) error {
	return errors.New("faultinject: failpoints compiled out (build with -tags faultinject)")
}

// Reset clears the active configuration; a no-op in this build.
func Reset() {}

// Fired reports how many times the site's action has fired; always zero
// in this build.
func Fired(site string) uint64 { return 0 }

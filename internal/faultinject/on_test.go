//go:build faultinject

package faultinject

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// TestInjectErr checks the err verb fires, wraps ErrInjected, and names
// the site and message.
func TestInjectErr(t *testing.T) {
	defer Reset()
	if err := Configure("a.site=err(disk full)", 1); err != nil {
		t.Fatal(err)
	}
	err := Inject("a.site")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Inject = %v, want ErrInjected", err)
	}
	if !strings.Contains(err.Error(), "a.site") || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("error %q does not name site and message", err)
	}
	if err := Inject("other.site"); err != nil {
		t.Fatalf("unconfigured site injected %v", err)
	}
}

// TestInjectDisarmed checks Inject is a no-op before Configure and
// after Reset.
func TestInjectDisarmed(t *testing.T) {
	Reset()
	if err := Inject("a.site"); err != nil {
		t.Fatalf("disarmed Inject = %v, want nil", err)
	}
	if err := Configure("a.site=err", 1); err != nil {
		t.Fatal(err)
	}
	Reset()
	if err := Inject("a.site"); err != nil {
		t.Fatalf("Inject after Reset = %v, want nil", err)
	}
}

// TestInjectLimit checks #N fires on exactly the first N hits.
func TestInjectLimit(t *testing.T) {
	defer Reset()
	if err := Configure("a.site=err#2", 1); err != nil {
		t.Fatal(err)
	}
	got := 0
	for i := 0; i < 10; i++ {
		if Inject("a.site") != nil {
			got++
		}
	}
	if got != 2 {
		t.Fatalf("limit #2 fired %d times, want 2", got)
	}
	if Fired("a.site") != 2 {
		t.Fatalf("Fired = %d, want 2", Fired("a.site"))
	}
}

// TestInjectPanic checks the panic verb panics with the site name.
func TestInjectPanic(t *testing.T) {
	defer Reset()
	if err := Configure("a.site=panic(chaos)", 1); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Inject did not panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "a.site") {
			t.Fatalf("panic value %v does not name the site", r)
		}
	}()
	Inject("a.site")
}

// TestInjectDelay checks the delay verb sleeps at least the configured
// duration.
func TestInjectDelay(t *testing.T) {
	defer Reset()
	if err := Configure("a.site=delay(30ms)", 1); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Inject("a.site"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("delay slept %v, want ≥ 30ms", d)
	}
}

// TestProbabilityDeterminism checks the @p gate is a pure function of
// (seed, site, hit index): two runs with one seed agree hit-for-hit,
// and the overall rate is in a sane band.
func TestProbabilityDeterminism(t *testing.T) {
	defer Reset()
	schedule := func(seed int64) []bool {
		if err := Configure("a.site=err@0.25", seed); err != nil {
			t.Fatal(err)
		}
		fired := make([]bool, 400)
		for i := range fired {
			fired[i] = Inject("a.site") != nil
		}
		return fired
	}
	a, b := schedule(7), schedule(7)
	n := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d differs between identical (spec, seed) runs", i)
		}
		if a[i] {
			n++
		}
	}
	if n < 50 || n > 150 {
		t.Fatalf("@0.25 fired %d/400 times, want roughly 100", n)
	}
	c := schedule(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical schedules")
	}
}

// TestConfigureRejects checks the grammar's error paths.
func TestConfigureRejects(t *testing.T) {
	defer Reset()
	for _, spec := range []string{
		"noequals",
		"a.site=frobnicate",
		"a.site=delay",
		"a.site=delay(nope)",
		"a.site=err@2",
		"a.site=err@0",
		"a.site=err#0",
		"a.site=err(unclosed",
		"a.site=err;a.site=panic",
	} {
		if err := Configure(spec, 1); err == nil {
			t.Errorf("Configure(%q) accepted, want error", spec)
		}
	}
	// Reconfiguring after a rejected spec must still work.
	if err := Configure("a.site=err", 1); err != nil {
		t.Fatal(err)
	}
	if Inject("a.site") == nil {
		t.Fatal("site not armed after valid Configure")
	}
}

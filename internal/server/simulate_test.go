package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

// simBody is the response shape the tests decode; it mirrors
// simulateResponse with the sweep fields the assertions need.
type simBody struct {
	Signature   string `json:"signature"`
	N           int    `json:"n"`
	Strategy    string `json:"strategy"`
	Subnets     int    `json:"subnets"`
	Wavelengths int    `json:"wavelengths"`
	CacheHit    bool   `json:"cacheHit"`
	Sweep       struct {
		K                int     `json:"k"`
		Scenarios        int64   `json:"scenarios"`
		Planned          int     `json:"planned"`
		Evaluated        int     `json:"evaluated"`
		Sampled          bool    `json:"sampled"`
		Complete         bool    `json:"complete"`
		AllRestored      bool    `json:"allRestored"`
		LossyScenarios   int     `json:"lossyScenarios"`
		MeanRestoration  float64 `json:"meanRestoration"`
		WorstRestoration float64 `json:"worstRestoration"`
		Critical         []struct {
			Link        int `json:"link"`
			Scenarios   int `json:"scenarios"`
			LostDemands int `json:"lostDemands"`
		} `json:"critical"`
	} `json:"sweep"`
}

// TestSimulateSingleFailure: the design's core guarantee over HTTP — a
// k = 1 sweep of an all-to-all plan restores everything, exhaustively.
func TestSimulateSingleFailure(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := get(t, ts.URL+"/simulate?n=11")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sb simBody
	if err := json.Unmarshal(body, &sb); err != nil {
		t.Fatalf("bad JSON: %v (%s)", err, body)
	}
	sw := sb.Sweep
	if sw.K != 1 || sw.Scenarios != 11 || sw.Evaluated != 11 || !sw.Complete || sw.Sampled {
		t.Fatalf("k=1 sweep bookkeeping: %+v", sw)
	}
	if !sw.AllRestored || sw.MeanRestoration != 1 || sw.WorstRestoration != 1 {
		t.Fatalf("single failures must restore everything: %+v", sw)
	}
	if sb.Subnets == 0 || sb.Wavelengths != 2*sb.Subnets {
		t.Fatalf("plan facts missing: %+v", sb)
	}
	if sb.Signature == "" {
		t.Fatal("response must carry the plan signature")
	}
}

// TestSimulateDoubleFailurePlanReuse: k = 2 finds loss and attributes
// it, and a second simulation of the same instance reuses the cached
// plan (plan once, sweep many).
func TestSimulateDoubleFailurePlanReuse(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := get(t, ts.URL+"/simulate?n=8&k=2")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sb simBody
	if err := json.Unmarshal(body, &sb); err != nil {
		t.Fatal(err)
	}
	sw := sb.Sweep
	if sw.K != 2 || sw.Scenarios != 28 || !sw.Complete {
		t.Fatalf("k=2 bookkeeping: %+v", sw)
	}
	if sw.AllRestored || sw.LossyScenarios == 0 || len(sw.Critical) == 0 {
		t.Fatalf("double failures on a ring must lose something: %+v", sw)
	}
	if sw.WorstRestoration >= sw.MeanRestoration && sw.WorstRestoration != sw.MeanRestoration {
		t.Fatalf("worst %f above mean %f", sw.WorstRestoration, sw.MeanRestoration)
	}
	if sb.CacheHit {
		t.Fatal("first simulation cannot be a cache hit")
	}

	// Different k, same instance: the plan must come from the cache.
	resp, body = get(t, ts.URL+"/simulate?n=8&k=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sb2 simBody
	if err := json.Unmarshal(body, &sb2); err != nil {
		t.Fatal(err)
	}
	if !sb2.CacheHit {
		t.Fatal("second simulation of the signature must reuse the cached plan")
	}
	if resp.Header.Get("X-Cache") != "HIT" {
		t.Fatalf("X-Cache = %q, want HIT", resp.Header.Get("X-Cache"))
	}
	if sb2.Signature != sb.Signature {
		t.Fatalf("plan signatures diverged: %q vs %q", sb.Signature, sb2.Signature)
	}
}

// TestSimulateSampledSweep: k = 3 on a space beyond the sample bound is
// sampled, honest about it, and reproducible per seed.
func TestSimulateSampledSweep(t *testing.T) {
	_, ts := newTestServer(t)
	url := ts.URL + "/simulate?n=14&k=3&sample=25&seed=9"
	resp, body := get(t, url)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var a simBody
	if err := json.Unmarshal(body, &a); err != nil {
		t.Fatal(err)
	}
	if !a.Sweep.Sampled || a.Sweep.Complete || a.Sweep.Planned != 25 || a.Sweep.Scenarios != 364 {
		t.Fatalf("sampled sweep bookkeeping: %+v", a.Sweep)
	}
	_, body2 := get(t, url)
	var b simBody
	if err := json.Unmarshal(body2, &b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Sweep, b.Sweep) {
		t.Fatalf("same seed must reproduce the sweep:\n%+v\n%+v", a.Sweep, b.Sweep)
	}
}

// TestSimulateStrategyParam: a forced strategy is accepted, echoed, and
// keyed into the plan signature.
func TestSimulateStrategyParam(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := get(t, ts.URL+"/simulate?n=9&strategy=greedy")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sb simBody
	if err := json.Unmarshal(body, &sb); err != nil {
		t.Fatal(err)
	}
	if sb.Strategy != "greedy" || !strings.Contains(sb.Signature, ";s=greedy") {
		t.Fatalf("strategy not keyed: %+v", sb)
	}
	if !sb.Sweep.AllRestored {
		t.Fatal("greedy plans must also be single-failure survivable")
	}
}

// TestSimulateErrorTable drives every input-validation path of
// /simulate.
func TestSimulateErrorTable(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name  string
		query string
		want  int
		msg   string // substring the error body must carry
	}{
		{"missing n", "/simulate", http.StatusBadRequest, "missing required parameter n"},
		{"bad n", "/simulate?n=abc", http.StatusBadRequest, "bad n"},
		{"tiny n", "/simulate?n=2", http.StatusBadRequest, "below minimum"},
		{"oversized n", "/simulate?n=2000", http.StatusBadRequest, "exceeds limit"},
		{"bad k", "/simulate?n=9&k=x", http.StatusBadRequest, "bad k"},
		{"zero k", "/simulate?n=9&k=0", http.StatusBadRequest, "outside [1,"},
		{"negative k", "/simulate?n=9&k=-2", http.StatusBadRequest, "outside [1,"},
		{"k beyond cap", "/simulate?n=9&k=7", http.StatusBadRequest, "at most 6"},
		{"k beyond links", "/simulate?n=4&k=5", http.StatusBadRequest, "outside [1, 4]"},
		{"bad sample", "/simulate?n=9&sample=x", http.StatusBadRequest, "bad sample"},
		{"zero sample", "/simulate?n=9&sample=0", http.StatusBadRequest, "sample = 0"},
		{"oversized sample", "/simulate?n=9&sample=100000", http.StatusBadRequest, "sample = 100000"},
		{"bad seed", "/simulate?n=9&seed=x", http.StatusBadRequest, "bad seed"},
		{"unknown strategy", "/simulate?n=9&strategy=quantum", http.StatusBadRequest, "unknown strategy"},
		{"bad demand", "/simulate?n=9&demand=nope", http.StatusBadRequest, "demand"},
		{"inapplicable strategy", "/simulate?n=9&demand=hub:0&strategy=closed-form", http.StatusBadRequest, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, body := get(t, ts.URL+c.query)
			if resp.StatusCode != c.want {
				t.Fatalf("status = %d, want %d (%s)", resp.StatusCode, c.want, body)
			}
			if c.msg != "" && !strings.Contains(string(body), c.msg) {
				t.Fatalf("body %q missing %q", body, c.msg)
			}
		})
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/simulate?n=9", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE: status %d, want 405", resp.StatusCode)
	}
}

// TestSimulateTimeout504 pins the deadline contract on /simulate: when
// the planning stage out-runs the configured plan timeout, the request
// answers 504 with the structured timeout body — and the service stays
// healthy for a fast simulation afterwards.
func TestSimulateTimeout504(t *testing.T) {
	s := New(Config{CacheSize: 32, Workers: 2, Queue: 8, PlanTimeout: 100 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	start := time.Now()
	resp, body := get(t, ts.URL+"/simulate?n=24&strategy=exact")
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (%s)", resp.StatusCode, body)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("504 took %v — the deadline did not cut the work", elapsed)
	}
	var tb struct {
		Error   string `json:"error"`
		Timeout string `json:"timeout"`
	}
	if err := json.Unmarshal(body, &tb); err != nil {
		t.Fatalf("504 body is not JSON: %v (%s)", err, body)
	}
	if tb.Timeout != "100ms" || tb.Error == "" {
		t.Fatalf("504 body incomplete: %+v", tb)
	}

	resp, body = get(t, ts.URL+"/simulate?n=9&k=2")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fast simulate after timeout: %d (%s)", resp.StatusCode, body)
	}
}

// TestParseSweepOptionsNormalization is the table over the /simulate
// sweep parameters: defaults, bounds, and the k ≤ 2 rule that resets the
// sampler fields (sample, seed) — exhaustive sweeps ignore the sampler,
// so its parameters must not differentiate otherwise-identical requests.
func TestParseSweepOptionsNormalization(t *testing.T) {
	const links = 11
	cases := []struct {
		name  string
		query string
		want  struct {
			k      int
			sample int
			seed   int64
		}
		wantErr string
	}{
		{name: "defaults", query: "",
			want: struct {
				k      int
				sample int
				seed   int64
			}{1, DefaultSweepSample, 0}},
		{name: "k1 sampler params normalized away", query: "k=1&sample=99&seed=7",
			want: struct {
				k      int
				sample int
				seed   int64
			}{1, DefaultSweepSample, 0}},
		{name: "k2 sampler params normalized away", query: "k=2&sample=8192&seed=-3",
			want: struct {
				k      int
				sample int
				seed   int64
			}{2, DefaultSweepSample, 0}},
		{name: "k3 defaults", query: "k=3",
			want: struct {
				k      int
				sample int
				seed   int64
			}{3, DefaultSweepSample, 0}},
		{name: "k3 sampler params preserved", query: "k=3&sample=99&seed=7",
			want: struct {
				k      int
				sample int
				seed   int64
			}{3, 99, 7}},
		{name: "k zero", query: "k=0", wantErr: "outside"},
		{name: "k above service cap", query: "k=7", wantErr: "outside"},
		{name: "k not a number", query: "k=two", wantErr: "bad k"},
		{name: "sample zero", query: "k=3&sample=0", wantErr: "outside"},
		{name: "sample above cap", query: "k=3&sample=8193", wantErr: "outside"},
		{name: "sample not a number", query: "k=3&sample=lots", wantErr: "bad sample"},
		{name: "seed not a number", query: "k=3&seed=x", wantErr: "bad seed"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := httptest.NewRequest(http.MethodGet, "/simulate?n=11&"+c.query, nil)
			opts, err := parseSweepOptions(r, links)
			if c.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), c.wantErr) {
					t.Fatalf("err = %v, want containing %q", err, c.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if opts.K != c.want.k || opts.Sample != c.want.sample || opts.Seed != c.want.seed {
				t.Fatalf("normalized to k=%d sample=%d seed=%d, want k=%d sample=%d seed=%d",
					opts.K, opts.Sample, opts.Seed, c.want.k, c.want.sample, c.want.seed)
			}
			if opts.MaxScenarios != MaxSweepScenarios {
				t.Fatalf("MaxScenarios = %d, want service cap %d", opts.MaxScenarios, MaxSweepScenarios)
			}
		})
	}

	// k is also bounded by the link count, below the service cap.
	r := httptest.NewRequest(http.MethodGet, "/simulate?n=4&k=5", nil)
	if _, err := parseSweepOptions(r, 4); err == nil {
		t.Fatal("k above the link count must be rejected")
	}
}

// TestSimulateJobSigCoalescing pins the coalescing contract: the pool
// key is built from the *normalized* options, so two exhaustive (k ≤ 2)
// requests that differ only in sampler parameters provably share one
// pool job, while k ≥ 3 requests with different seeds provably do not.
func TestSimulateJobSigCoalescing(t *testing.T) {
	const planSig = "n=11;d=k1"
	sigFor := func(query string) string {
		t.Helper()
		r := httptest.NewRequest(http.MethodGet, "/simulate?n=11&"+query, nil)
		opts, err := parseSweepOptions(r, 11)
		if err != nil {
			t.Fatal(err)
		}
		return simulateJobSig(planSig, opts)
	}
	if a, b := sigFor("k=2&seed=1"), sigFor("k=2&seed=2&sample=99"); a != b {
		t.Fatalf("exhaustive sweeps with different sampler params must coalesce: %q != %q", a, b)
	}
	if a, b := sigFor("k=3&seed=1"), sigFor("k=3&seed=2"); a == b {
		t.Fatalf("sampled sweeps with different seeds must not coalesce: both %q", a)
	}
	if a, b := sigFor("k=3&sample=64"), sigFor("k=3&sample=128"); a == b {
		t.Fatalf("sampled sweeps with different sample sizes must not coalesce: both %q", a)
	}
}

// TestSimulateEchoesNormalizedSeed drives the normalization through the
// HTTP surface: a k = 2 request carrying a seed gets the seed echoed as
// 0 in the report — proof the handler swept with the normalized options,
// not the raw request's.
func TestSimulateEchoesNormalizedSeed(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := get(t, ts.URL+"/simulate?n=9&k=2&seed=99&sample=77")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sb struct {
		Sweep struct {
			K       int   `json:"k"`
			Seed    int64 `json:"seed"`
			Sampled bool  `json:"sampled"`
		} `json:"sweep"`
	}
	if err := json.Unmarshal(body, &sb); err != nil {
		t.Fatalf("bad JSON: %v (%s)", err, body)
	}
	if sb.Sweep.K != 2 || sb.Sweep.Seed != 0 || sb.Sweep.Sampled {
		t.Fatalf("k=2 report must echo the normalized sampler (seed 0, not sampled): %+v", sb.Sweep)
	}
}

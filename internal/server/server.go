package server

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/cyclecover/cyclecover/internal/cache"
	"github.com/cyclecover/cyclecover/internal/construct"
	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/instance"
	"github.com/cyclecover/cyclecover/internal/ring"
	"github.com/cyclecover/cyclecover/internal/scratch"
	"github.com/cyclecover/cyclecover/internal/wdm"
)

// defaultCost prices a network with the package-default cost model.
func defaultCost(nw *wdm.Network) float64 { return wdm.DefaultCostModel.Cost(nw) }

// MaxRingSize bounds the ring sizes the service accepts. The demand
// graph and covering are Θ(n²), so n must be validated before any
// instance is materialized — and building K_n for an attacker-chosen n
// would otherwise happen on the handler goroutine, outside the pool's
// admission control.
const MaxRingSize = 1024

// MaxRequests bounds a demand's request count (with multiplicity):
// covering size and response size scale with it, so an in-range n
// combined with a huge λ (demand=lambda:<big>) must still be rejected
// before construction. K_MaxRingSize fits; λ ≥ 2 at the largest rings
// does not.
const MaxRequests = 1 << 20

// maxVerifyBody bounds the /verify request body; a valid covering for
// MaxRingSize fits comfortably.
const maxVerifyBody = 8 << 20

// checkRingSize validates n before anything Θ(n²) is built from it.
func checkRingSize(n int) error {
	if _, err := ring.New(n); err != nil {
		return err
	}
	if n > MaxRingSize {
		return fmt.Errorf("server: ring size %d exceeds limit %d", n, MaxRingSize)
	}
	return nil
}

// checkDemandSize validates a parsed instance's total workload. A
// negative count means the multiplicity sum overflowed, which is as
// oversized as it gets.
func checkDemandSize(in instance.Instance) error {
	if m := in.Requests(); m > MaxRequests || m < 0 {
		return fmt.Errorf("server: demand has %d requests, limit %d", m, MaxRequests)
	}
	return nil
}

// isAllToAll reports whether the demand is K_n with multiplicity one —
// the class ρ(n) speaks about. Keyed on the demand itself, not on the
// spec string, so demand=lambda:1 and demand=alltoall answer alike (they
// share a cache entry too). A general-topology instance whose host
// happens to be complete is NOT all-to-all: its objective is
// shortest cycle cover, and ρ(n) says nothing about it.
func isAllToAll(in instance.Instance) bool {
	if in.IsGeneral() {
		return false
	}
	n := in.N()
	pairs := n * (n - 1) / 2
	return in.Demand.DistinctEdges() == pairs && in.Demand.M() == pairs
}

// Config sizes a Server. Zero values select sensible defaults.
type Config struct {
	// CacheSize bounds each store of the covering cache (0 →
	// cache.DefaultCapacity).
	CacheSize int
	// Workers bounds concurrent plan computations (0 → GOMAXPROCS).
	Workers int
	// Queue bounds plan computations waiting for a worker (0 → 64,
	// negative → unbuffered).
	Queue int
	// PlanTimeout bounds each plan request (for /plan/batch: the whole
	// request — all its items share the deadline). On expiry the caller
	// gets 504 with a structured body, the waiter detaches, and the
	// underlying construction is cancelled mid-search once no other
	// caller wants it. 0 disables the deadline.
	PlanTimeout time.Duration
}

// Server is the planner service: HTTP handlers over a covering cache and
// a bounded worker pool. Create with New, expose with Handler, stop with
// Close (after draining HTTP traffic).
type Server struct {
	plans       *cache.Plans
	pool        *Pool
	mux         *http.ServeMux
	start       time.Time
	planTimeout time.Duration

	mu       sync.Mutex
	requests map[string]uint64 // per-endpoint served count
}

// New builds a ready-to-serve planner service.
func New(cfg Config) *Server {
	s := &Server{
		plans:       cache.New(cfg.CacheSize),
		pool:        NewPool(cfg.Workers, cfg.Queue),
		mux:         http.NewServeMux(),
		start:       time.Now(),
		planTimeout: cfg.PlanTimeout,
		requests:    make(map[string]uint64),
	}
	s.mux.HandleFunc("/plan", s.handlePlan)
	s.mux.HandleFunc("/plan/batch", s.handlePlanBatch)
	s.mux.HandleFunc("/plan/delta", s.handlePlanDelta)
	s.mux.HandleFunc("/simulate", s.handleSimulate)
	s.mux.HandleFunc("/verify", s.handleVerify)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Plans exposes the covering cache (shared with any embedding process).
func (s *Server) Plans() *cache.Plans { return s.plans }

// Close stops the worker pool. Drain HTTP traffic first.
func (s *Server) Close() { s.pool.Close() }

func (s *Server) count(path string) {
	s.mu.Lock()
	s.requests[path]++
	s.mu.Unlock()
}

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

// timeoutBody is the JSON shape of a 504: the error plus the deadline
// that expired, so clients can distinguish a configured plan timeout
// from other unavailability and size their retry accordingly.
type timeoutBody struct {
	Error   string `json:"error"`
	Timeout string `json:"timeout"`
}

// planContext derives the execution context for a plan request: the
// request's own context (fires on client disconnect) bounded by the
// configured plan timeout, when one is set.
func (s *Server) planContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.planTimeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.planTimeout)
}

// respBufs recycles response encode buffers (the same scratch-pool type
// the sweep engine and the verifier use for their hot-path state), so a
// response costs one buffered encode and one Write instead of per-call
// encoder allocations and chunked writes.
var respBufs = scratch.NewPool(func() *bytes.Buffer { return &bytes.Buffer{} })

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := respBufs.Get()
	buf.Reset()
	enc := json.NewEncoder(buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Encoding failed before anything was written: the error is still
		// reportable as a clean 500.
		respBufs.Put(buf)
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(buf.Bytes())
	respBufs.Put(buf)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// jobStatus maps a failed pool job's error to the HTTP status it
// answers with: 400 for client-side input problems, 504 when the plan
// deadline expired, 503 while shutting down or when the caller gave up,
// 500 otherwise. Shared by /plan, /plan/batch and /simulate.
func jobStatus(ctx context.Context, err error) int {
	switch {
	case errors.Is(err, construct.ErrNotApplicable):
		// A known strategy that does not address this demand class is
		// a client-side input problem, not a server failure.
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(ctx.Err(), context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrPoolClosed) || errors.Is(err, ErrNotScheduled) || ctx.Err() != nil:
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// planResponse is the JSON shape of a successful /plan.
type planResponse struct {
	Signature   string  `json:"signature"`
	N           int     `json:"n"`
	Demand      string  `json:"demand"`
	Strategy    string  `json:"strategy,omitempty"` // non-default only
	Size        int     `json:"size"`
	Rho         int     `json:"rho,omitempty"` // all-to-all demands only
	// Length and SCCLowerBound report the shortest-cycle-cover objective
	// for general-topology instances: total edge count of the cover and
	// the provable lower bound max(m, Σ_v ⌈deg(v)/2⌉). Zero for ring
	// instances, whose objective is the cycle count (Size).
	Length        int     `json:"length,omitempty"`
	SCCLowerBound int     `json:"sccLowerBound,omitempty"`
	Optimal       bool    `json:"optimal"`
	Method        string  `json:"method"`
	Cycles        [][]int `json:"cycles"`
	Wavelengths   int     `json:"wavelengths"`
	ADMs          int     `json:"adms"`
	MaxTransit    int     `json:"maxTransit"`
	Cost          float64 `json:"cost"`
	CacheHit      bool    `json:"cacheHit"`
}

// planned bundles what one pool job computes.
type planned struct {
	res cache.CoverResult
	nw  *wdmNetwork
	hit bool
}

// wdmNetwork is the slice of network facts the response needs; computed
// inside the job so handlers never touch the shared *wdm.Network
// concurrently with encoding.
type wdmNetwork struct {
	wavelengths int
	adms        int
	maxTransit  int
	cost        float64
}

// planOne validates one (n, demand-spec, strategy) request and computes
// its plan through the worker pool and covering cache. On failure it
// returns the HTTP status the error maps to (400 for malformed input,
// 504 when the plan deadline expired, 503 while shutting down or when
// the caller gave up, 500 otherwise). It is the shared execution path of
// /plan and /plan/batch: identical requests in flight — whether from
// single or batch callers — coalesce on the pool's same-signature
// batching and the cache's single flight. ctx cancellation propagates
// all the way into the construction searches: a request that times out
// detaches immediately, and the search itself is aborted once no other
// request wants its result.
func (s *Server) planOne(ctx context.Context, n int, spec, strategy string) (planResponse, int, error) {
	if err := checkRingSize(n); err != nil {
		return planResponse{}, http.StatusBadRequest, err
	}
	if spec == "" {
		spec = "alltoall"
	}
	if strategy != "" {
		if _, ok := construct.LookupStrategy(strategy); !ok {
			return planResponse{}, http.StatusBadRequest,
				fmt.Errorf("unknown strategy %q (have %s, or omit for the default pipeline)", strategy, strings.Join(construct.Strategies(), ", "))
		}
	}
	in, err := instance.Parse(n, spec)
	if err != nil {
		return planResponse{}, http.StatusBadRequest, err
	}
	if err := checkDemandSize(in); err != nil {
		return planResponse{}, http.StatusBadRequest, err
	}

	opts := cache.Options{Strategy: strategy}
	sig := cache.Signature(in, opts)
	v, err := s.pool.Submit(ctx, sig, func(jctx context.Context) (any, error) {
		res, coverHit, err := s.plans.CoverCtx(jctx, in, opts)
		if err != nil {
			return nil, err
		}
		if in.IsGeneral() {
			// No WDM layer over a general host: the plan is the cover
			// itself, judged by the shortest-cycle-cover objective.
			return planned{res: res, hit: coverHit}, nil
		}
		nw, netHit, err := s.plans.NetworkCtx(jctx, in, opts)
		if err != nil {
			return nil, err
		}
		return planned{
			res: res,
			nw: &wdmNetwork{
				wavelengths: nw.Wavelengths(),
				adms:        nw.ADMCount(),
				maxTransit:  nw.MaxTransit(),
				cost:        defaultCost(nw),
			},
			hit: coverHit && netHit,
		}, nil
	})
	if err != nil {
		return planResponse{}, jobStatus(ctx, err), fmt.Errorf("plan failed: %w", err)
	}
	pl := v.(planned)

	resp := planResponse{
		Signature: sig,
		N:         n,
		Demand:    in.Name,
		Strategy:  strategy,
		Size:      pl.res.Covering.Size(),
		Optimal:   pl.res.Optimal,
		Method:    string(pl.res.Method),
		CacheHit:  pl.hit,
	}
	if pl.nw != nil {
		resp.Wavelengths = pl.nw.wavelengths
		resp.ADMs = pl.nw.adms
		resp.MaxTransit = pl.nw.maxTransit
		resp.Cost = pl.nw.cost
	}
	if in.IsGeneral() {
		resp.Length = pl.res.Covering.TotalLength()
		resp.SCCLowerBound = cover.SCCLowerBound(in.Host)
	} else if isAllToAll(in) {
		resp.Rho = cover.Rho(n)
	}
	for _, c := range pl.res.Covering.Cycles {
		resp.Cycles = append(resp.Cycles, c.Vertices())
	}
	return resp, http.StatusOK, nil
}

// handlePlan serves GET/POST /plan?n=<int>&demand=<spec>[&strategy=<name>].
// The covering and its WDM plan are computed through the worker pool and
// covering cache; the X-Cache header reports HIT when the plan came from
// memory. With a configured plan timeout, an expired deadline answers
// 504 with a structured body naming the timeout.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	s.count("/plan")
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		w.Header().Set("Allow", "GET, POST")
		writeError(w, http.StatusMethodNotAllowed, "use GET or POST")
		return
	}
	nStr := r.FormValue("n")
	if nStr == "" {
		writeError(w, http.StatusBadRequest, "missing required parameter n")
		return
	}
	n, err := strconv.Atoi(nStr)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad n %q: %v", nStr, err)
		return
	}
	ctx, cancel := s.planContext(r)
	defer cancel()
	resp, status, err := s.planOne(ctx, n, r.FormValue("demand"), r.FormValue("strategy"))
	if err != nil {
		if status == http.StatusGatewayTimeout {
			writeJSON(w, status, timeoutBody{Error: err.Error(), Timeout: s.planTimeout.String()})
			return
		}
		writeError(w, status, "%v", err)
		return
	}
	if resp.CacheHit {
		w.Header().Set("X-Cache", "HIT")
	} else {
		w.Header().Set("X-Cache", "MISS")
	}
	writeJSON(w, http.StatusOK, resp)
}

// MaxBatchItems bounds how many plan requests one /plan/batch call may
// carry. Each item costs a goroutine and a pool submission; a bulk
// caller with more work splits it across requests.
const MaxBatchItems = 1024

// maxBatchBody bounds the /plan/batch request body.
const maxBatchBody = 8 << 20

// maxBatchLine bounds one NDJSON line of a batch; any well-formed plan
// request is a few dozen bytes, so this is pure headroom.
const maxBatchLine = 1 << 20

// batchPlanRequest is one NDJSON line of a POST /plan/batch body.
type batchPlanRequest struct {
	N        int    `json:"n"`
	Demand   string `json:"demand"`   // spec; empty means alltoall
	Strategy string `json:"strategy"` // registry name; empty means the default pipeline
}

// batchPlanLine is one NDJSON line of the /plan/batch response: the
// zero-based index of the request line it answers, plus either the plan
// or that item's error. Lines stream in completion order, not input
// order — the index is the join key.
type batchPlanLine struct {
	Index int           `json:"index"`
	Plan  *planResponse `json:"plan,omitempty"`
	Error string        `json:"error,omitempty"`
}

// handlePlanBatch serves POST /plan/batch: a newline-delimited JSON
// stream of plan requests, answered by a newline-delimited JSON stream
// of results written as they complete. All items run concurrently
// through the same bounded worker pool as /plan — same-signature items
// (within the batch or against live /plan traffic) attach to one job —
// and per-item failures are reported in-line without failing the batch.
func (s *Server) handlePlanBatch(w http.ResponseWriter, r *http.Request) {
	s.count("/plan/batch")
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBatchBody)
	type batchItem struct {
		req batchPlanRequest
		err error // line-level parse failure, reported in that slot
	}
	var items []batchItem
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64<<10), maxBatchLine)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if len(items) == MaxBatchItems {
			writeError(w, http.StatusRequestEntityTooLarge, "batch exceeds %d items", MaxBatchItems)
			return
		}
		var req batchPlanRequest
		if err := json.Unmarshal(line, &req); err != nil {
			items = append(items, batchItem{err: fmt.Errorf("bad batch line: %v", err)})
			continue
		}
		items = append(items, batchItem{req: req})
	}
	if err := sc.Err(); err != nil {
		var tooBig *http.MaxBytesError
		switch {
		case errors.As(err, &tooBig):
			writeError(w, http.StatusRequestEntityTooLarge, "batch body exceeds %d bytes", tooBig.Limit)
		case errors.Is(err, bufio.ErrTooLong):
			// The scanner cannot resync past an over-long line, so this is
			// a whole-request failure, not a per-item error line.
			writeError(w, http.StatusRequestEntityTooLarge, "batch line exceeds %d bytes", maxBatchLine)
		default:
			writeError(w, http.StatusBadRequest, "reading batch: %v", err)
		}
		return
	}
	if len(items) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch: want one JSON plan request per line")
		return
	}

	// One deadline bounds the whole batch: items share the request's
	// plan-timeout budget. When it (or the client's disconnect) fires,
	// in-flight items detach from their constructions — each search is
	// aborted once no other request wants it — and not-yet-scheduled
	// items fail fast with the context error in their slot.
	ctx, cancel := s.planContext(r)
	defer cancel()
	results := make(chan batchPlanLine)
	var wg sync.WaitGroup
	for i, it := range items {
		wg.Add(1)
		go func(i int, it batchItem) {
			defer wg.Done()
			if it.err != nil {
				results <- batchPlanLine{Index: i, Error: it.err.Error()}
				return
			}
			resp, _, err := s.planOne(ctx, it.req.N, it.req.Demand, it.req.Strategy)
			if err != nil {
				results <- batchPlanLine{Index: i, Error: err.Error()}
				return
			}
			results <- batchPlanLine{Index: i, Plan: &resp}
		}(i, it)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Stream each result the moment it lands; the client correlates lines
	// by index. Headers are committed before the first line, so per-item
	// errors ride inside the stream rather than as an HTTP status.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for line := range results {
		enc.Encode(line)
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// verifyRequest is the JSON body of POST /verify: a covering in the
// interchange form of internal/cover plus a demand spec.
type verifyRequest struct {
	N      int     `json:"n"`
	Cycles [][]int `json:"cycles"`
	Demand string  `json:"demand"` // spec; empty means alltoall
}

// verifyResponse reports the verdict. Invalid coverings answer 422 with
// Valid=false and the verifier's reason; malformed requests answer 400.
// For general-topology demands, Length and SCCLowerBound report the
// shortest-cycle-cover objective and Optimal means the cover meets the
// provable lower bound.
type verifyResponse struct {
	Valid         bool   `json:"valid"`
	Size          int    `json:"size"`
	Rho           int    `json:"rho,omitempty"`
	Length        int    `json:"length,omitempty"`
	SCCLowerBound int    `json:"sccLowerBound,omitempty"`
	Optimal       bool   `json:"optimal"`
	Error         string `json:"error,omitempty"`
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	s.count("/verify")
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req verifyRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxVerifyBody)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "verify body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "reading verify request: %v", err)
		return
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad verify request: %v", err)
		return
	}
	if err := checkRingSize(req.N); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	spec := req.Demand
	if spec == "" {
		spec = "alltoall"
	}
	in, err := instance.Parse(req.N, spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := checkDemandSize(in); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rg, err := ring.New(req.N)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Verification is Θ(n²)-ish work, so it runs through the same pool
	// admission control as /plan. The signature hashes the request body:
	// identical concurrent verifications coalesce, distinct ones just
	// queue for a worker slot. The hash must be collision-resistant —
	// coalescing hands one caller another's verdict, so a forgeable hash
	// would let a crafted body inherit a different covering's result.
	sig := fmt.Sprintf("verify:%x", sha256.Sum256(body))
	v, err := s.pool.Submit(r.Context(), sig, func(context.Context) (any, error) {
		resp := verifyResponse{Size: len(req.Cycles)}
		if in.IsGeneral() {
			// General-topology verification: cycles are explicit closed
			// walks over host edges (order matters), not ring vertex sets.
			cv := cover.NewGeneralCovering(req.N)
			for _, verts := range req.Cycles {
				c, err := cover.WalkCycle(verts)
				if err != nil {
					resp.Error = err.Error()
					return resp, nil
				}
				cv.Cycles = append(cv.Cycles, c)
			}
			resp.SCCLowerBound = cover.SCCLowerBound(in.Host)
			if err := cover.VerifyGeneral(cv, in.Host); err != nil {
				resp.Error = err.Error()
				return resp, nil
			}
			resp.Valid = true
			resp.Length = cv.TotalLength()
			resp.Optimal = resp.Length == resp.SCCLowerBound
			return resp, nil
		}
		if isAllToAll(in) {
			resp.Rho = cover.Rho(req.N)
		}
		cv, err := cover.FromVertexSets(rg, req.Cycles)
		if err != nil {
			resp.Error = err.Error()
			return resp, nil
		}
		if err := cover.Verify(cv, in.Demand); err != nil {
			resp.Error = err.Error()
			return resp, nil
		}
		resp.Valid = true
		resp.Optimal = resp.Rho > 0 && cv.Size() == resp.Rho
		return resp, nil
	})
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrPoolClosed) || errors.Is(err, ErrNotScheduled) || r.Context().Err() != nil {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "verify failed: %v", err)
		return
	}
	resp := v.(verifyResponse)
	if !resp.Valid {
		writeJSON(w, http.StatusUnprocessableEntity, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// healthResponse is the JSON shape of /healthz.
type healthResponse struct {
	Status        string           `json:"status"`
	UptimeSeconds float64          `json:"uptimeSeconds"`
	Cache         cache.PlansStats `json:"cache"`
	Pool          PoolStats        `json:"pool"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.count("/healthz")
	writeJSON(w, http.StatusOK, healthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Cache:         s.plans.Stats(),
		Pool:          s.pool.Stats(),
	})
}

// handleMetrics emits the counters in the Prometheus text exposition
// format, without taking a dependency on a metrics library.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.count("/metrics")
	st := s.plans.Stats()
	ps := s.pool.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	emit := func(name string, labels string, v uint64) {
		if labels != "" {
			fmt.Fprintf(w, "%s{%s} %d\n", name, labels, v)
		} else {
			fmt.Fprintf(w, "%s %d\n", name, v)
		}
	}
	for _, store := range []struct {
		label string
		s     cache.Stats
	}{{"coverings", st.Coverings}, {"networks", st.Networks}} {
		l := fmt.Sprintf("store=%q", store.label)
		emit("cycled_cache_hits_total", l, store.s.Hits)
		emit("cycled_cache_misses_total", l, store.s.Misses)
		emit("cycled_cache_coalesced_total", l, store.s.Coalesced)
		emit("cycled_cache_abandoned_total", l, store.s.Abandoned)
		emit("cycled_cache_cancelled_total", l, store.s.Cancelled)
		emit("cycled_cache_evictions_total", l, store.s.Evictions)
		emit("cycled_cache_entries", l, uint64(store.s.Entries))
	}
	emit("cycled_pool_executed_total", "", ps.Executed)
	emit("cycled_pool_coalesced_total", "", ps.Coalesced)
	// Snapshot the counters before emitting: writing to a slow client
	// under s.mu would block every other handler's count().
	s.mu.Lock()
	counts := make(map[string]uint64, len(s.requests))
	//cyclecover:nondet map-to-map copy; emission order fixed by the sorted key pass below
	for p, c := range s.requests {
		counts[p] = c
	}
	s.mu.Unlock()
	paths := make([]string, 0, len(counts))
	//cyclecover:nondet keys are sorted immediately below before emission
	for p := range counts {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		emit("cycled_http_requests_total", fmt.Sprintf("path=%q", p), counts[p])
	}
	fmt.Fprintf(w, "cycled_uptime_seconds %d\n", int64(time.Since(s.start).Seconds()))
}

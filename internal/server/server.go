package server

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cyclecover/cyclecover/internal/cache"
	"github.com/cyclecover/cyclecover/internal/construct"
	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/instance"
	"github.com/cyclecover/cyclecover/internal/ring"
	"github.com/cyclecover/cyclecover/internal/scratch"
	"github.com/cyclecover/cyclecover/internal/wdm"
)

// defaultCost prices a network with the package-default cost model.
func defaultCost(nw *wdm.Network) float64 { return wdm.DefaultCostModel.Cost(nw) }

// MaxRingSize bounds the ring sizes the service accepts. The demand
// graph and covering are Θ(n²), so n must be validated before any
// instance is materialized — and building K_n for an attacker-chosen n
// would otherwise happen on the handler goroutine, outside the pool's
// admission control.
const MaxRingSize = 1024

// MaxRequests bounds a demand's request count (with multiplicity):
// covering size and response size scale with it, so an in-range n
// combined with a huge λ (demand=lambda:<big>) must still be rejected
// before construction. K_MaxRingSize fits; λ ≥ 2 at the largest rings
// does not.
const MaxRequests = 1 << 20

// maxVerifyBody bounds the /verify request body; a valid covering for
// MaxRingSize fits comfortably.
const maxVerifyBody = 8 << 20

// checkRingSize validates n before anything Θ(n²) is built from it.
func checkRingSize(n int) error {
	if _, err := ring.New(n); err != nil {
		return err
	}
	if n > MaxRingSize {
		return fmt.Errorf("server: ring size %d exceeds limit %d", n, MaxRingSize)
	}
	return nil
}

// checkDemandSize validates a parsed instance's total workload. A
// negative count means the multiplicity sum overflowed, which is as
// oversized as it gets.
func checkDemandSize(in instance.Instance) error {
	if m := in.Requests(); m > MaxRequests || m < 0 {
		return fmt.Errorf("server: demand has %d requests, limit %d", m, MaxRequests)
	}
	return nil
}

// isAllToAll reports whether the demand is K_n with multiplicity one —
// the class ρ(n) speaks about. Keyed on the demand itself, not on the
// spec string, so demand=lambda:1 and demand=alltoall answer alike (they
// share a cache entry too). A general-topology instance whose host
// happens to be complete is NOT all-to-all: its objective is
// shortest cycle cover, and ρ(n) says nothing about it.
func isAllToAll(in instance.Instance) bool {
	if in.IsGeneral() {
		return false
	}
	n := in.N()
	pairs := n * (n - 1) / 2
	return in.Demand.DistinctEdges() == pairs && in.Demand.M() == pairs
}

// Config sizes a Server. Zero values select sensible defaults.
type Config struct {
	// CacheSize bounds each store of the covering cache (0 →
	// cache.DefaultCapacity).
	CacheSize int
	// Workers bounds concurrent plan computations (0 → GOMAXPROCS).
	Workers int
	// Queue bounds plan computations waiting for a worker (0 → 64,
	// negative → unbuffered).
	Queue int
	// PlanTimeout bounds each plan request (for /plan/batch: the whole
	// request — all its items share the deadline). On expiry the caller
	// gets 504 with a structured body, the waiter detaches, and the
	// underlying construction is cancelled mid-search once no other
	// caller wants it. 0 disables the deadline.
	PlanTimeout time.Duration
	// MaxInflight caps concurrently admitted requests per work endpoint
	// (/plan, /plan/batch, /plan/delta, /simulate, /verify). Past the
	// cap the endpoint sheds with a structured 429 and a Retry-After
	// hint derived from observed job latency. 0 disables the cap.
	MaxInflight int
	// MaxQueue sheds new work while the pool's pending queue is at least
	// this deep, bounding how much latency the queue can accumulate
	// ahead of an admitted request. 0 disables the check.
	MaxQueue int
	// Degrade enables deadline-aware graceful degradation: when a
	// request's remaining context budget is smaller than the measured
	// cost estimate of the full pipeline, the plan is built by the
	// anytime portfolio instead (marked degraded:true, cached under its
	// own signature dimension); when even that estimate does not fit, a
	// verified stale cache hit is served with X-Degraded: stale.
	Degrade bool
}

// Server is the planner service: HTTP handlers over a covering cache and
// a bounded worker pool. Create with New, expose with Handler, stop with
// Close (after draining HTTP traffic).
type Server struct {
	plans       *cache.Plans
	pool        *Pool
	mux         *http.ServeMux
	start       time.Time
	planTimeout time.Duration
	adm         *admission
	costs       *costModel
	degrade     bool

	// ready and draining drive /readyz: ready flips false until the
	// embedding process finishes startup work (SetReady), draining flips
	// true when graceful shutdown begins (StartDrain) so load balancers
	// stop routing here while in-flight requests finish.
	ready    atomic.Bool
	draining atomic.Bool

	// degraded counts degrade decisions; degradedStale the subset
	// answered from a verified stale cache entry.
	degraded      atomic.Uint64
	degradedStale atomic.Uint64

	mu       sync.Mutex
	requests map[string]uint64 // per-endpoint served count
}

// New builds a ready-to-serve planner service.
func New(cfg Config) *Server {
	s := &Server{
		plans:       cache.New(cfg.CacheSize),
		pool:        NewPool(cfg.Workers, cfg.Queue),
		mux:         http.NewServeMux(),
		start:       time.Now(),
		planTimeout: cfg.PlanTimeout,
		degrade:     cfg.Degrade,
		costs:       newCostModel(),
		requests:    make(map[string]uint64),
	}
	s.adm = newAdmission(cfg.MaxInflight, cfg.MaxQueue, s.pool)
	s.ready.Store(true)
	s.mux.HandleFunc("/plan", s.handlePlan)
	s.mux.HandleFunc("/plan/batch", s.handlePlanBatch)
	s.mux.HandleFunc("/plan/delta", s.handlePlanDelta)
	s.mux.HandleFunc("/simulate", s.handleSimulate)
	s.mux.HandleFunc("/verify", s.handleVerify)
	s.mux.HandleFunc("/healthz", s.handleLivez) // alias: /healthz is the historical liveness path
	s.mux.HandleFunc("/livez", s.handleLivez)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// SetReady flips the /readyz verdict. The embedding process calls
// SetReady(false) before long startup work (snapshot warming) and
// SetReady(true) once the service should receive traffic. Servers start
// ready, so embedded and test uses need no ceremony.
func (s *Server) SetReady(ok bool) { s.ready.Store(ok) }

// StartDrain marks the server as draining: /readyz answers 503 so load
// balancers route away, while in-flight and even new requests still
// complete. Call it before http.Server.Shutdown.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Plans exposes the covering cache (shared with any embedding process).
func (s *Server) Plans() *cache.Plans { return s.plans }

// Close stops the worker pool. Drain HTTP traffic first.
func (s *Server) Close() { s.pool.Close() }

func (s *Server) count(path string) {
	s.mu.Lock()
	s.requests[path]++
	s.mu.Unlock()
}

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

// timeoutBody is the JSON shape of a 504: the error plus the deadline
// that expired, so clients can distinguish a configured plan timeout
// from other unavailability and size their retry accordingly.
type timeoutBody struct {
	Error   string `json:"error"`
	Timeout string `json:"timeout"`
}

// planContext derives the execution context for a plan request: the
// request's own context (fires on client disconnect) bounded by the
// configured plan timeout, when one is set.
func (s *Server) planContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.planTimeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.planTimeout)
}

// respBufs recycles response encode buffers (the same scratch-pool type
// the sweep engine and the verifier use for their hot-path state), so a
// response costs one buffered encode and one Write instead of per-call
// encoder allocations and chunked writes.
var respBufs = scratch.NewPool(func() *bytes.Buffer { return &bytes.Buffer{} })

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := respBufs.Get()
	buf.Reset()
	enc := json.NewEncoder(buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Encoding failed before anything was written: the error is still
		// reportable as a clean 500.
		respBufs.Put(buf)
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(buf.Bytes())
	respBufs.Put(buf)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// jobStatus maps a failed pool job's error to the HTTP status it
// answers with: 400 for client-side input problems, 504 when the plan
// deadline expired, 503 while shutting down or when the caller gave up,
// 500 otherwise. Shared by /plan, /plan/batch and /simulate.
func jobStatus(ctx context.Context, err error) int {
	switch {
	case errors.Is(err, construct.ErrNotApplicable):
		// A known strategy that does not address this demand class is
		// a client-side input problem, not a server failure.
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(ctx.Err(), context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrPoolClosed) || errors.Is(err, ErrNotScheduled) || ctx.Err() != nil:
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// planResponse is the JSON shape of a successful /plan.
type planResponse struct {
	Signature   string  `json:"signature"`
	N           int     `json:"n"`
	Demand      string  `json:"demand"`
	Strategy    string  `json:"strategy,omitempty"` // non-default only
	Size        int     `json:"size"`
	Rho         int     `json:"rho,omitempty"` // all-to-all demands only
	// Length and SCCLowerBound report the shortest-cycle-cover objective
	// for general-topology instances: total edge count of the cover and
	// the provable lower bound max(m, Σ_v ⌈deg(v)/2⌉). Zero for ring
	// instances, whose objective is the cycle count (Size).
	Length        int     `json:"length,omitempty"`
	SCCLowerBound int     `json:"sccLowerBound,omitempty"`
	Optimal       bool    `json:"optimal"`
	// Degraded marks a plan built (or served) under deadline pressure by
	// the anytime portfolio rather than the full pipeline: verified, but
	// with no optimality claim. Stale additionally marks a degraded
	// answer served from a previously cached entry without any new
	// construction (the X-Degraded: stale response).
	Degraded    bool    `json:"degraded,omitempty"`
	Stale       bool    `json:"stale,omitempty"`
	Method      string  `json:"method"`
	Cycles      [][]int `json:"cycles"`
	Wavelengths int     `json:"wavelengths"`
	ADMs        int     `json:"adms"`
	MaxTransit  int     `json:"maxTransit"`
	Cost        float64 `json:"cost"`
	CacheHit    bool    `json:"cacheHit"`
}

// planned bundles what one pool job computes.
type planned struct {
	res cache.CoverResult
	nw  *wdmNetwork
	hit bool
}

// wdmNetwork is the slice of network facts the response needs; computed
// inside the job so handlers never touch the shared *wdm.Network
// concurrently with encoding.
type wdmNetwork struct {
	wavelengths int
	adms        int
	maxTransit  int
	cost        float64
}

// planOne validates one (n, demand-spec, strategy) request and computes
// its plan through the worker pool and covering cache. On failure it
// returns the HTTP status the error maps to (400 for malformed input,
// 504 when the plan deadline expired, 503 while shutting down or when
// the caller gave up, 500 otherwise). It is the shared execution path of
// /plan and /plan/batch: identical requests in flight — whether from
// single or batch callers — coalesce on the pool's same-signature
// batching and the cache's single flight. ctx cancellation propagates
// all the way into the construction searches: a request that times out
// detaches immediately, and the search itself is aborted once no other
// request wants its result.
func (s *Server) planOne(ctx context.Context, n int, spec, strategy string) (planResponse, int, error) {
	if err := checkRingSize(n); err != nil {
		return planResponse{}, http.StatusBadRequest, err
	}
	if spec == "" {
		spec = "alltoall"
	}
	if strategy != "" {
		if _, ok := construct.LookupStrategy(strategy); !ok {
			return planResponse{}, http.StatusBadRequest,
				fmt.Errorf("unknown strategy %q (have %s, or omit for the default pipeline)", strategy, strings.Join(construct.Strategies(), ", "))
		}
	}
	in, err := instance.Parse(n, spec)
	if err != nil {
		return planResponse{}, http.StatusBadRequest, err
	}
	if err := checkDemandSize(in); err != nil {
		return planResponse{}, http.StatusBadRequest, err
	}

	opts := cache.Options{Strategy: strategy}
	// Deadline-aware degradation: when the measured full-pipeline cost
	// does not fit the remaining context budget, demote to the anytime
	// portfolio under the degraded signature dimension; when even that
	// does not fit, serve a verified stale cache entry if one exists.
	// Named strategies are an explicit caller choice and never demoted,
	// and an unknown cost (cold bucket) is assumed to fit, so a fresh
	// server behaves exactly as with Degrade off.
	if s.degrade && strategy == "" {
		if dl, hasDeadline := ctx.Deadline(); hasDeadline {
			if est, known := s.costs.estimate(modeFull, in); known && time.Until(dl) < est {
				if dEst, dKnown := s.costs.estimate(modeDegraded, in); dKnown && time.Until(dl) < dEst {
					if resp, ok := s.stalePlan(in, strategy); ok {
						s.degraded.Add(1)
						s.degradedStale.Add(1)
						return resp, http.StatusOK, nil
					}
					// Nothing cached to fall back on: attempt the degraded
					// build anyway — a late answer beats none.
				}
				opts.Degrade = true
				s.degraded.Add(1)
			}
		}
	}
	sig := cache.Signature(in, opts)
	jobStart := time.Now()
	v, err := s.pool.Submit(ctx, sig, func(jctx context.Context) (any, error) {
		res, coverHit, err := s.plans.CoverCtx(jctx, in, opts)
		if err != nil {
			return nil, err
		}
		if in.IsGeneral() {
			// No WDM layer over a general host: the plan is the cover
			// itself, judged by the shortest-cycle-cover objective.
			return planned{res: res, hit: coverHit}, nil
		}
		nw, netHit, err := s.plans.NetworkCtx(jctx, in, opts)
		if err != nil {
			return nil, err
		}
		return planned{
			res: res,
			nw: &wdmNetwork{
				wavelengths: nw.Wavelengths(),
				adms:        nw.ADMCount(),
				maxTransit:  nw.MaxTransit(),
				cost:        defaultCost(nw),
			},
			hit: coverHit && netHit,
		}, nil
	})
	if err != nil {
		return planResponse{}, jobStatus(ctx, err), fmt.Errorf("plan failed: %w", err)
	}
	pl := v.(planned)
	if !pl.hit {
		// Feed the admission and cost models from real constructions only:
		// cache hits say nothing about what building a plan costs.
		elapsed := time.Since(jobStart)
		s.adm.observe(elapsed)
		mode := modeFull
		if opts.Degrade {
			mode = modeDegraded
		}
		s.costs.observe(mode, in, elapsed)
	}
	return buildPlanResponse(sig, in, strategy, pl.res, pl.nw, pl.hit), http.StatusOK, nil
}

// buildPlanResponse assembles the /plan JSON from a covering result and
// (for ring instances) its WDM network facts. Shared by the normal
// planOne path and the stale-serve path.
func buildPlanResponse(sig string, in instance.Instance, strategy string, res cache.CoverResult, nw *wdmNetwork, hit bool) planResponse {
	resp := planResponse{
		Signature: sig,
		N:         in.N(),
		Demand:    in.Name,
		Strategy:  strategy,
		Size:      res.Covering.Size(),
		Optimal:   res.Optimal,
		Degraded:  res.Degraded,
		Method:    string(res.Method),
		CacheHit:  hit,
	}
	if nw != nil {
		resp.Wavelengths = nw.wavelengths
		resp.ADMs = nw.adms
		resp.MaxTransit = nw.maxTransit
		resp.Cost = nw.cost
	}
	if in.IsGeneral() {
		resp.Length = res.Covering.TotalLength()
		resp.SCCLowerBound = cover.SCCLowerBound(in.Host)
	} else if isAllToAll(in) {
		resp.Rho = cover.Rho(in.N())
	}
	for _, c := range res.Covering.Cycles {
		resp.Cycles = append(resp.Cycles, c.Vertices())
	}
	return resp
}

// stalePlan probes the cache — full-budget entry first, then the
// degraded dimension — for a verified previous answer to serve without
// any construction when even the anytime portfolio is predicted to blow
// the deadline. Ring instances additionally need their WDM network
// cached; a covering without one falls through (the response could not
// be completed without doing work).
func (s *Server) stalePlan(in instance.Instance, strategy string) (planResponse, bool) {
	for _, o := range []cache.Options{{Strategy: strategy}, {Strategy: strategy, Degrade: true}} {
		res, ok := s.plans.Lookup(in, o)
		if !ok {
			continue
		}
		var nw *wdmNetwork
		if !in.IsGeneral() {
			n, ok := s.plans.LookupNetwork(in, o)
			if !ok {
				continue
			}
			nw = &wdmNetwork{
				wavelengths: n.Wavelengths(),
				adms:        n.ADMCount(),
				maxTransit:  n.MaxTransit(),
				cost:        defaultCost(n),
			}
		}
		resp := buildPlanResponse(cache.Signature(in, o), in, strategy, res, nw, true)
		resp.Degraded = true
		resp.Stale = true
		return resp, true
	}
	return planResponse{}, false
}

// handlePlan serves GET/POST /plan?n=<int>&demand=<spec>[&strategy=<name>].
// The covering and its WDM plan are computed through the worker pool and
// covering cache; the X-Cache header reports HIT when the plan came from
// memory. With a configured plan timeout, an expired deadline answers
// 504 with a structured body naming the timeout.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	s.count("/plan")
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		w.Header().Set("Allow", "GET, POST")
		writeError(w, http.StatusMethodNotAllowed, "use GET or POST")
		return
	}
	release, retry, ok := s.adm.acquire("/plan")
	if !ok {
		writeShed(w, "/plan", retry)
		return
	}
	defer release()
	nStr := r.FormValue("n")
	if nStr == "" {
		writeError(w, http.StatusBadRequest, "missing required parameter n")
		return
	}
	n, err := strconv.Atoi(nStr)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad n %q: %v", nStr, err)
		return
	}
	ctx, cancel := s.planContext(r)
	defer cancel()
	resp, status, err := s.planOne(ctx, n, r.FormValue("demand"), r.FormValue("strategy"))
	if err != nil {
		if status == http.StatusGatewayTimeout {
			writeJSON(w, status, timeoutBody{Error: err.Error(), Timeout: s.planTimeout.String()})
			return
		}
		writeError(w, status, "%v", err)
		return
	}
	if resp.CacheHit {
		w.Header().Set("X-Cache", "HIT")
	} else {
		w.Header().Set("X-Cache", "MISS")
	}
	if resp.Stale {
		w.Header().Set("X-Degraded", "stale")
	} else if resp.Degraded {
		w.Header().Set("X-Degraded", "true")
	}
	writeJSON(w, http.StatusOK, resp)
}

// MaxBatchItems bounds how many plan requests one /plan/batch call may
// carry. Each item costs a goroutine and a pool submission; a bulk
// caller with more work splits it across requests.
const MaxBatchItems = 1024

// maxBatchBody bounds the /plan/batch request body.
const maxBatchBody = 8 << 20

// maxBatchLine bounds one NDJSON line of a batch; any well-formed plan
// request is a few dozen bytes, so this is pure headroom.
const maxBatchLine = 1 << 20

// batchPlanRequest is one NDJSON line of a POST /plan/batch body.
type batchPlanRequest struct {
	N        int    `json:"n"`
	Demand   string `json:"demand"`   // spec; empty means alltoall
	Strategy string `json:"strategy"` // registry name; empty means the default pipeline
}

// batchPlanLine is one NDJSON line of the /plan/batch response: the
// zero-based index of the request line it answers, plus either the plan
// or that item's error. Lines stream in completion order, not input
// order — the index is the join key.
type batchPlanLine struct {
	Index int           `json:"index"`
	Plan  *planResponse `json:"plan,omitempty"`
	Error string        `json:"error,omitempty"`
}

// handlePlanBatch serves POST /plan/batch: a newline-delimited JSON
// stream of plan requests, answered by a newline-delimited JSON stream
// of results written as they complete. Items run concurrently through
// the same bounded worker pool as /plan — same-signature items (within
// the batch or against live /plan traffic) attach to one job — and
// per-item failures are reported in-line without failing the batch.
// Batch fan-out is bounded to the pool's worker count, and every slot
// re-checks the request context before touching the pool: when the
// client disconnects mid-batch, not-yet-started slots fail in place
// without spawning constructions.
func (s *Server) handlePlanBatch(w http.ResponseWriter, r *http.Request) {
	s.count("/plan/batch")
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	release, retry, ok := s.adm.acquire("/plan/batch")
	if !ok {
		writeShed(w, "/plan/batch", retry)
		return
	}
	defer release()
	r.Body = http.MaxBytesReader(w, r.Body, maxBatchBody)
	type batchItem struct {
		req batchPlanRequest
		err error // line-level parse failure, reported in that slot
	}
	var items []batchItem
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64<<10), maxBatchLine)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if len(items) == MaxBatchItems {
			writeError(w, http.StatusRequestEntityTooLarge, "batch exceeds %d items", MaxBatchItems)
			return
		}
		var req batchPlanRequest
		if err := json.Unmarshal(line, &req); err != nil {
			items = append(items, batchItem{err: fmt.Errorf("bad batch line: %v", err)})
			continue
		}
		items = append(items, batchItem{req: req})
	}
	if err := sc.Err(); err != nil {
		var tooBig *http.MaxBytesError
		switch {
		case errors.As(err, &tooBig):
			writeError(w, http.StatusRequestEntityTooLarge, "batch body exceeds %d bytes", tooBig.Limit)
		case errors.Is(err, bufio.ErrTooLong):
			// The scanner cannot resync past an over-long line, so this is
			// a whole-request failure, not a per-item error line.
			writeError(w, http.StatusRequestEntityTooLarge, "batch line exceeds %d bytes", maxBatchLine)
		default:
			writeError(w, http.StatusBadRequest, "reading batch: %v", err)
		}
		return
	}
	if len(items) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch: want one JSON plan request per line")
		return
	}

	// One deadline bounds the whole batch: items share the request's
	// plan-timeout budget. When it (or the client's disconnect) fires,
	// in-flight items detach from their constructions — each search is
	// aborted once no other request wants it — and not-yet-scheduled
	// items fail fast with the context error in their slot.
	ctx, cancel := s.planContext(r)
	defer cancel()
	// Fan out over at most the pool's worker count: more handler
	// goroutines could only park in the pool queue, and an unbounded
	// spawn would keep stuffing that queue after the client is gone.
	// Each slot gates on the context before submitting, so a dropped
	// reader stops spawning constructions at the next slot boundary.
	workers := s.pool.Workers()
	if workers > len(items) {
		workers = len(items)
	}
	results := make(chan batchPlanLine)
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				it := items[i]
				switch {
				case it.err != nil:
					results <- batchPlanLine{Index: i, Error: it.err.Error()}
				case ctx.Err() != nil:
					results <- batchPlanLine{Index: i, Error: "batch cancelled: " + ctx.Err().Error()}
				default:
					if retry, ok := s.adm.checkQueue("/plan/batch"); !ok {
						results <- batchPlanLine{Index: i, Error: fmt.Sprintf("shed: pool queue full, retry after %ds", retry)}
						continue
					}
					resp, _, err := s.planOne(ctx, it.req.N, it.req.Demand, it.req.Strategy)
					if err != nil {
						results <- batchPlanLine{Index: i, Error: err.Error()}
						continue
					}
					results <- batchPlanLine{Index: i, Plan: &resp}
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Stream each result the moment it lands; the client correlates lines
	// by index. Headers are committed before the first line, so per-item
	// errors ride inside the stream rather than as an HTTP status.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for line := range results {
		enc.Encode(line)
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// verifyRequest is the JSON body of POST /verify: a covering in the
// interchange form of internal/cover plus a demand spec.
type verifyRequest struct {
	N      int     `json:"n"`
	Cycles [][]int `json:"cycles"`
	Demand string  `json:"demand"` // spec; empty means alltoall
}

// verifyResponse reports the verdict. Invalid coverings answer 422 with
// Valid=false and the verifier's reason; malformed requests answer 400.
// For general-topology demands, Length and SCCLowerBound report the
// shortest-cycle-cover objective and Optimal means the cover meets the
// provable lower bound.
type verifyResponse struct {
	Valid         bool   `json:"valid"`
	Size          int    `json:"size"`
	Rho           int    `json:"rho,omitempty"`
	Length        int    `json:"length,omitempty"`
	SCCLowerBound int    `json:"sccLowerBound,omitempty"`
	Optimal       bool   `json:"optimal"`
	Error         string `json:"error,omitempty"`
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	s.count("/verify")
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	release, retry, ok := s.adm.acquire("/verify")
	if !ok {
		writeShed(w, "/verify", retry)
		return
	}
	defer release()
	var req verifyRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxVerifyBody)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "verify body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "reading verify request: %v", err)
		return
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad verify request: %v", err)
		return
	}
	if err := checkRingSize(req.N); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	spec := req.Demand
	if spec == "" {
		spec = "alltoall"
	}
	in, err := instance.Parse(req.N, spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := checkDemandSize(in); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rg, err := ring.New(req.N)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Verification is Θ(n²)-ish work, so it runs through the same pool
	// admission control as /plan. The signature hashes the request body:
	// identical concurrent verifications coalesce, distinct ones just
	// queue for a worker slot. The hash must be collision-resistant —
	// coalescing hands one caller another's verdict, so a forgeable hash
	// would let a crafted body inherit a different covering's result.
	sig := fmt.Sprintf("verify:%x", sha256.Sum256(body))
	v, err := s.pool.Submit(r.Context(), sig, func(context.Context) (any, error) {
		resp := verifyResponse{Size: len(req.Cycles)}
		if in.IsGeneral() {
			// General-topology verification: cycles are explicit closed
			// walks over host edges (order matters), not ring vertex sets.
			cv := cover.NewGeneralCovering(req.N)
			for _, verts := range req.Cycles {
				c, err := cover.WalkCycle(verts)
				if err != nil {
					resp.Error = err.Error()
					return resp, nil
				}
				cv.Cycles = append(cv.Cycles, c)
			}
			resp.SCCLowerBound = cover.SCCLowerBound(in.Host)
			if err := cover.VerifyGeneral(cv, in.Host); err != nil {
				resp.Error = err.Error()
				return resp, nil
			}
			resp.Valid = true
			resp.Length = cv.TotalLength()
			resp.Optimal = resp.Length == resp.SCCLowerBound
			return resp, nil
		}
		if isAllToAll(in) {
			resp.Rho = cover.Rho(req.N)
		}
		cv, err := cover.FromVertexSets(rg, req.Cycles)
		if err != nil {
			resp.Error = err.Error()
			return resp, nil
		}
		if err := cover.Verify(cv, in.Demand); err != nil {
			resp.Error = err.Error()
			return resp, nil
		}
		resp.Valid = true
		resp.Optimal = resp.Rho > 0 && cv.Size() == resp.Rho
		return resp, nil
	})
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrPoolClosed) || errors.Is(err, ErrNotScheduled) || r.Context().Err() != nil {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "verify failed: %v", err)
		return
	}
	resp := v.(verifyResponse)
	if !resp.Valid {
		writeJSON(w, http.StatusUnprocessableEntity, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// healthResponse is the JSON shape of /livez (and its /healthz alias).
type healthResponse struct {
	Status        string           `json:"status"`
	UptimeSeconds float64          `json:"uptimeSeconds"`
	Cache         cache.PlansStats `json:"cache"`
	Pool          PoolStats        `json:"pool"`
}

// handleLivez answers liveness: the process is up and the handler loop
// responsive. It stays 200 through startup and drain — restarting a
// draining daemon would be exactly wrong — and carries the cache/pool
// counters for humans. Readiness lives on /readyz.
func (s *Server) handleLivez(w http.ResponseWriter, r *http.Request) {
	s.count(r.URL.Path)
	writeJSON(w, http.StatusOK, healthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Cache:         s.plans.Stats(),
		Pool:          s.pool.Stats(),
	})
}

// readyResponse is the JSON shape of /readyz.
type readyResponse struct {
	Status string `json:"status"`
	Ready  bool   `json:"ready"`
}

// handleReadyz answers readiness: whether this instance should receive
// new traffic. 503 while startup work is pending (SetReady), while the
// graceful-shutdown drain runs (StartDrain), or once the pool has
// stopped accepting work.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.count("/readyz")
	switch {
	case s.draining.Load():
		writeJSON(w, http.StatusServiceUnavailable, readyResponse{Status: "draining"})
	case !s.ready.Load():
		writeJSON(w, http.StatusServiceUnavailable, readyResponse{Status: "starting"})
	case s.pool.Closed():
		writeJSON(w, http.StatusServiceUnavailable, readyResponse{Status: "stopped"})
	default:
		writeJSON(w, http.StatusOK, readyResponse{Status: "ready", Ready: true})
	}
}

// handleMetrics emits the counters in the Prometheus text exposition
// format, without taking a dependency on a metrics library.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.count("/metrics")
	st := s.plans.Stats()
	ps := s.pool.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	emit := func(name string, labels string, v uint64) {
		if labels != "" {
			fmt.Fprintf(w, "%s{%s} %d\n", name, labels, v)
		} else {
			fmt.Fprintf(w, "%s %d\n", name, v)
		}
	}
	for _, store := range []struct {
		label string
		s     cache.Stats
	}{{"coverings", st.Coverings}, {"networks", st.Networks}} {
		l := fmt.Sprintf("store=%q", store.label)
		emit("cycled_cache_hits_total", l, store.s.Hits)
		emit("cycled_cache_misses_total", l, store.s.Misses)
		emit("cycled_cache_coalesced_total", l, store.s.Coalesced)
		emit("cycled_cache_abandoned_total", l, store.s.Abandoned)
		emit("cycled_cache_cancelled_total", l, store.s.Cancelled)
		emit("cycled_cache_evictions_total", l, store.s.Evictions)
		emit("cycled_cache_entries", l, uint64(store.s.Entries))
	}
	emit("cycled_pool_executed_total", "", ps.Executed)
	emit("cycled_pool_coalesced_total", "", ps.Coalesced)
	emit("cycled_pool_running", "", uint64(ps.Running))
	emit("cycled_queue_depth", "", uint64(ps.QueueDepth))
	// Resilience counters: shed requests (total and per endpoint),
	// degrade decisions, and recovered panics (total and per
	// fingerprint). All label sets are sorted for byte-stable scrapes.
	shedByPath, shedTotal := s.adm.snapshot()
	emit("cycled_shed_total", "", shedTotal)
	shedPaths := make([]string, 0, len(shedByPath))
	//cyclecover:nondet keys are sorted immediately below before emission
	for p := range shedByPath {
		shedPaths = append(shedPaths, p)
	}
	sort.Strings(shedPaths)
	for _, p := range shedPaths {
		emit("cycled_shed_path_total", fmt.Sprintf("path=%q", p), shedByPath[p])
	}
	emit("cycled_degraded_total", "", s.degraded.Load())
	emit("cycled_degraded_stale_total", "", s.degradedStale.Load())
	emit("cycled_panics_recovered_total", "", ps.PanicsRecovered)
	panics := s.pool.Panics()
	fps := make([]string, 0, len(panics))
	//cyclecover:nondet keys are sorted immediately below before emission
	for fp := range panics {
		fps = append(fps, fp)
	}
	sort.Strings(fps)
	for _, fp := range fps {
		emit("cycled_panics_recovered_fingerprint_total", fmt.Sprintf("fingerprint=%q", fp), panics[fp])
	}
	// Snapshot the counters before emitting: writing to a slow client
	// under s.mu would block every other handler's count().
	s.mu.Lock()
	counts := make(map[string]uint64, len(s.requests))
	//cyclecover:nondet map-to-map copy; emission order fixed by the sorted key pass below
	for p, c := range s.requests {
		counts[p] = c
	}
	s.mu.Unlock()
	paths := make([]string, 0, len(counts))
	//cyclecover:nondet keys are sorted immediately below before emission
	for p := range counts {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		emit("cycled_http_requests_total", fmt.Sprintf("path=%q", p), counts[p])
	}
	fmt.Fprintf(w, "cycled_uptime_seconds %d\n", int64(time.Since(s.start).Seconds()))
}

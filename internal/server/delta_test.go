package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// deltaBody is the response shape the tests decode.
type deltaBody struct {
	Signature string  `json:"signature"`
	N         int     `json:"n"`
	Demand    string  `json:"demand"`
	Size      int     `json:"size"`
	Method    string  `json:"method"`
	Cycles    [][]int `json:"cycles"`
	Parent    string  `json:"parent"`
	Delta     string  `json:"delta"`
	Repaired  bool    `json:"repaired"`
	CacheHit  bool    `json:"cacheHit"`
	Error     string  `json:"error"`
}

// planSignature plans n all-to-all through the HTTP surface and returns
// the signature the response echoed — the handle /plan/delta accepts.
func planSignature(t *testing.T, base string, n int) string {
	t.Helper()
	resp, body := get(t, base+"/plan?n="+strconv.Itoa(n))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/plan?n=%d status %d: %s", n, resp.StatusCode, body)
	}
	var plan struct {
		Signature string `json:"signature"`
	}
	if err := json.Unmarshal(body, &plan); err != nil {
		t.Fatal(err)
	}
	if plan.Signature == "" {
		t.Fatal("/plan response carried no signature")
	}
	return plan.Signature
}

// TestPlanDeltaRepairsAndAdmitsChild drives the happy path end to end:
// plan a parent, POST a delta, get back a verified child plan produced by
// warm repair, and observe the child admitted under its own signature —
// a second identical delta answers from cache, as does a cold /plan of
// the same child signature's instance.
func TestPlanDeltaRepairsAndAdmitsChild(t *testing.T) {
	_, ts := newTestServer(t)
	parent := planSignature(t, ts.URL, 11)

	resp, body := postJSON(t, ts.URL+"/plan/delta", map[string]string{
		"parent": parent, "delta": "fail:2:7",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var db deltaBody
	if err := json.Unmarshal(body, &db); err != nil {
		t.Fatalf("bad JSON: %v (%s)", err, body)
	}
	if db.Parent != parent || db.Delta != "fail:2:7" {
		t.Fatalf("provenance mismatch: %+v", db)
	}
	if db.N != 11 || db.Signature == "" || db.Signature == parent {
		t.Fatalf("child identity bogus: %+v", db)
	}
	if !db.Repaired || db.Method != "delta-repair" {
		t.Fatalf("single-link delta on K_11 should warm-repair: method=%q repaired=%v", db.Method, db.Repaired)
	}
	if db.Size == 0 || len(db.Cycles) != db.Size {
		t.Fatalf("plan body inconsistent: size=%d cycles=%d", db.Size, len(db.Cycles))
	}
	if db.CacheHit {
		t.Fatal("first delta cannot be a cache hit")
	}

	// Same delta again: the child is now cached under its own signature.
	resp, body = postJSON(t, ts.URL+"/plan/delta", map[string]string{
		"parent": parent, "delta": "fail:2:7",
	})
	var again deltaBody
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !again.CacheHit || resp.Header.Get("X-Cache") != "HIT" {
		t.Fatalf("repeat delta should hit the cache: status=%d cacheHit=%v x-cache=%q",
			resp.StatusCode, again.CacheHit, resp.Header.Get("X-Cache"))
	}
	if again.Size != db.Size || again.Signature != db.Signature {
		t.Fatalf("cached child differs from first answer: %+v vs %+v", again, db)
	}
}

// TestPlanDeltaErrorTable is the 400 table pinned by the issue: method,
// body, field, spec, unknown-parent and invalid-delta failures all answer
// structured client errors, never 500.
func TestPlanDeltaErrorTable(t *testing.T) {
	_, ts := newTestServer(t)
	parent := planSignature(t, ts.URL, 9)

	t.Run("method not allowed", func(t *testing.T) {
		resp, _ := get(t, ts.URL+"/plan/delta")
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET status = %d, want 405", resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != "POST" {
			t.Fatalf("Allow = %q, want POST", allow)
		}
	})

	cases := []struct {
		name    string
		body    any
		wantErr string
	}{
		{"malformed JSON", "{not json", "bad delta request"},
		{"missing parent", map[string]string{"delta": "add:0:1"}, "missing required field parent"},
		{"missing delta", map[string]string{"parent": parent}, "missing required field delta"},
		{"unparseable delta", map[string]string{"parent": parent, "delta": "tweak:1:2"}, "delta"},
		{"delta endpoint out of range", map[string]string{"parent": parent, "delta": "add:0:99"}, "delta"},
		{"removing an absent pair", map[string]string{"parent": parent, "delta": "remove:0:0"}, ""},
		{"unknown parent", map[string]string{"parent": "n=99;d=k1", "delta": "add:0:1"}, "unknown parent"},
		{"garbage parent", map[string]string{"parent": "what", "delta": "add:0:1"}, "unknown parent"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var resp *http.Response
			var body []byte
			if s, ok := c.body.(string); ok {
				r, err := http.Post(ts.URL+"/plan/delta", "application/json", strings.NewReader(s))
				if err != nil {
					t.Fatal(err)
				}
				b, rerr := io.ReadAll(r.Body)
				r.Body.Close()
				if rerr != nil {
					t.Fatal(rerr)
				}
				resp, body = r, b
			} else {
				resp, body = postJSON(t, ts.URL+"/plan/delta", c.body)
			}
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d (%s), want 400", resp.StatusCode, body)
			}
			var eb struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
				t.Fatalf("400 body not a structured error: %s", body)
			}
			if c.wantErr != "" && !strings.Contains(eb.Error, c.wantErr) {
				t.Fatalf("error %q does not mention %q", eb.Error, c.wantErr)
			}
		})
	}

	// A delta that empties the demand entirely is still plannable (the
	// empty covering), not an error — pin that it answers 200.
	t.Run("delta to near-empty demand ok", func(t *testing.T) {
		resp, body := postJSON(t, ts.URL+"/plan/delta", map[string]string{
			"parent": parent, "delta": "set:0:1:0",
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("set:0:1:0 status = %d (%s), want 200", resp.StatusCode, body)
		}
	})
}

package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// slowPlanURL is a plan request guaranteed to out-run any test deadline:
// exact branch-and-bound at ρ(24) explores an enormous tree (the
// strategy is forced, so neither the closed forms nor the even-n memo
// short-circuit it), and it polls its context at every branch boundary.
const slowPlanQuery = "/plan?n=24&strategy=exact"

// TestPlanTimeout504 pins the deadline contract: a request that exceeds
// the configured plan timeout answers 504 with the structured timeout
// body, the connection is not left hanging for the full search, and the
// cache is not poisoned — a fast request afterwards succeeds.
func TestPlanTimeout504(t *testing.T) {
	s := New(Config{CacheSize: 32, Workers: 2, Queue: 8, PlanTimeout: 100 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	start := time.Now()
	resp, body := get(t, ts.URL+slowPlanQuery)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", resp.StatusCode, body)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("504 took %v — the deadline did not cut the search", elapsed)
	}
	var tb struct {
		Error   string `json:"error"`
		Timeout string `json:"timeout"`
	}
	if err := json.Unmarshal(body, &tb); err != nil {
		t.Fatalf("504 body is not JSON: %v (%s)", err, body)
	}
	if tb.Timeout != "100ms" {
		t.Fatalf("timeout field = %q, want %q", tb.Timeout, "100ms")
	}
	if tb.Error == "" {
		t.Fatal("504 body has no error message")
	}

	// Fast request on the same server under the same deadline: 200.
	resp, body = get(t, ts.URL+"/plan?n=9")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fast plan after timeout: status %d (%s)", resp.StatusCode, body)
	}
}

// TestPlanStrategyParam: ?strategy= selects a registry strategy, the
// response names it, distinct strategies occupy distinct cache entries,
// and unknown names answer 400 listing the registry.
func TestPlanStrategyParam(t *testing.T) {
	_, ts := newTestServer(t)

	resp, body := get(t, ts.URL+"/plan?n=9&strategy=exact")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("strategy=exact: status %d (%s)", resp.StatusCode, body)
	}
	var plan struct {
		Strategy  string `json:"strategy"`
		Signature string `json:"signature"`
		Method    string `json:"method"`
		Size      int    `json:"size"`
		Rho       int    `json:"rho"`
	}
	if err := json.Unmarshal(body, &plan); err != nil {
		t.Fatal(err)
	}
	if plan.Strategy != "exact" || plan.Method != "exact-search" {
		t.Fatalf("strategy/method = %q/%q", plan.Strategy, plan.Method)
	}
	if plan.Size != plan.Rho {
		t.Fatalf("exact strategy: %d cycles, want ρ = %d", plan.Size, plan.Rho)
	}
	if !strings.Contains(plan.Signature, ";s=exact") {
		t.Fatalf("signature %q does not key the strategy", plan.Signature)
	}

	// Portfolio answers identically-sized plans to the default pipeline.
	respA, bodyA := get(t, ts.URL+"/plan?n=12")
	respB, bodyB := get(t, ts.URL+"/plan?n=12&strategy=portfolio")
	if respA.StatusCode != 200 || respB.StatusCode != 200 {
		t.Fatalf("statuses %d/%d", respA.StatusCode, respB.StatusCode)
	}
	var a, b struct {
		Size   int     `json:"size"`
		Cycles [][]int `json:"cycles"`
	}
	if err := json.Unmarshal(bodyA, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(bodyB, &b); err != nil {
		t.Fatal(err)
	}
	if a.Size != b.Size {
		t.Fatalf("portfolio %d cycles, pipeline %d", b.Size, a.Size)
	}

	resp, body = get(t, ts.URL+"/plan?n=9&strategy=quantum")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown strategy: status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "portfolio") {
		t.Fatalf("400 body does not list valid strategies: %s", body)
	}

	// A known strategy that does not address the demand class is also a
	// client error, not a 500.
	resp, body = get(t, ts.URL+"/plan?n=9&strategy=repair") // repair needs even n
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("inapplicable strategy: status %d (%s)", resp.StatusCode, body)
	}
}

// TestBatchSharedDeadline: a batch runs under one plan-timeout budget —
// fast items complete, the item that cannot finish reports the expiry in
// its own stream line, and the batch still answers 200.
func TestBatchSharedDeadline(t *testing.T) {
	s := New(Config{CacheSize: 32, Workers: 2, Queue: 8, PlanTimeout: 300 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	bodyIn := `{"n": 9}
{"n": 24, "strategy": "exact"}
`
	resp, err := http.Post(ts.URL+"/plan/batch", "application/x-ndjson", strings.NewReader(bodyIn))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	type line struct {
		Index int             `json:"index"`
		Plan  json.RawMessage `json:"plan"`
		Error string          `json:"error"`
	}
	got := map[int]line{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		got[l.Index] = l
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("%d stream lines, want 2", len(got))
	}
	if got[0].Error != "" || got[0].Plan == nil {
		t.Fatalf("fast item failed: %+v", got[0])
	}
	if got[1].Error == "" {
		t.Fatalf("slow item did not report the deadline: %+v", got[1])
	}
}

package server

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"github.com/cyclecover/cyclecover/internal/cache"
	"github.com/cyclecover/cyclecover/internal/construct"
	"github.com/cyclecover/cyclecover/internal/instance"
	"github.com/cyclecover/cyclecover/internal/survive"
)

// MaxSweepK bounds the failure multiplicity the service sweeps. Each
// scenario costs O(demands·k) work, and the structured failure model the
// design targets is small simultaneous failure sets; bigger k belongs in
// an offline study with the library API.
const MaxSweepK = 6

// MaxSweepSample bounds the sampled scenario set a request may demand.
const MaxSweepSample = 8192

// DefaultSweepSample is the /simulate sample size when the request does
// not name one — smaller than the library default because a service
// answer should be interactive.
const DefaultSweepSample = 512

// MaxSweepScenarios caps the scenarios one /simulate request evaluates,
// whatever k and n it asked for. The cap truncates the deterministic
// scenario sequence (the response reports complete=false), bounding
// worst-case handler work the way MaxRingSize bounds construction.
const MaxSweepScenarios = 1 << 15

// simulateResponse is the JSON shape of a successful /simulate: the
// identity of the plan that was swept plus the aggregated sweep report.
type simulateResponse struct {
	Signature   string              `json:"signature"`
	N           int                 `json:"n"`
	Demand      string              `json:"demand"`
	Strategy    string              `json:"strategy,omitempty"` // non-default only
	Subnets     int                 `json:"subnets"`
	Wavelengths int                 `json:"wavelengths"`
	CacheHit    bool                `json:"cacheHit"` // plan served from cache
	Sweep       survive.SweepResult `json:"sweep"`
}

// parseSweepOptions validates the sweep parameters of a /simulate
// request. Absent k selects 1; absent sample selects DefaultSweepSample.
func parseSweepOptions(r *http.Request, links int) (survive.SweepOptions, error) {
	opts := survive.SweepOptions{
		K:            1,
		Sample:       DefaultSweepSample,
		MaxScenarios: MaxSweepScenarios,
	}
	if kStr := r.FormValue("k"); kStr != "" {
		k, err := strconv.Atoi(kStr)
		if err != nil {
			return opts, fmt.Errorf("bad k %q: %v", kStr, err)
		}
		if k < 1 || k > MaxSweepK || k > links {
			return opts, fmt.Errorf("k = %d outside [1, %d] (service sweeps at most %d simultaneous failures)",
				k, min(MaxSweepK, links), MaxSweepK)
		}
		opts.K = k
	}
	if sStr := r.FormValue("sample"); sStr != "" {
		s, err := strconv.Atoi(sStr)
		if err != nil {
			return opts, fmt.Errorf("bad sample %q: %v", sStr, err)
		}
		if s < 1 || s > MaxSweepSample {
			return opts, fmt.Errorf("sample = %d outside [1, %d]", s, MaxSweepSample)
		}
		opts.Sample = s
	}
	if seedStr := r.FormValue("seed"); seedStr != "" {
		seed, err := strconv.ParseInt(seedStr, 10, 64)
		if err != nil {
			return opts, fmt.Errorf("bad seed %q: %v", seedStr, err)
		}
		opts.Seed = seed
	}
	if opts.K <= 2 {
		// Exhaustive sweeps ignore the sampler: normalize its parameters
		// out of the pool-job key (so identical sweeps coalesce whatever
		// sample/seed the caller sent) and out of the echoed report.
		opts.Sample = DefaultSweepSample
		opts.Seed = 0
	}
	return opts, nil
}

// simulateJobSig keys a /simulate pool job: the plan's cache signature
// plus the normalized sweep parameters. Because parseSweepOptions resets
// the sampler fields for exhaustive (k ≤ 2) sweeps, two k ≤ 2 requests
// that differ only in sample/seed produce the same key and coalesce onto
// one job; for k ≥ 3 the sampler parameters are part of the scenario set
// and therefore of the key.
func simulateJobSig(planSig string, opts survive.SweepOptions) string {
	return fmt.Sprintf("%s;sim:k=%d,sample=%d,seed=%d", planSig, opts.K, opts.Sample, opts.Seed)
}

// simulated bundles what one /simulate pool job computes.
type simulated struct {
	resp simulateResponse
	hit  bool
}

// handleSimulate serves GET/POST
// /simulate?n=<int>[&demand=<spec>][&strategy=<name>][&k=<int>][&sample=<int>][&seed=<int64>].
//
// The instance is planned through the same worker pool and covering
// cache as /plan (the strategy, when given, is keyed into the plan's
// cache signature), then the planned network is swept with k-failure
// scenarios — plan once, sweep many: repeated simulations of one
// signature under different k/sample/seed reuse the cached plan. The
// pool job is keyed by plan signature plus sweep parameters, so
// identical concurrent simulations coalesce onto one sweep. With a
// configured plan timeout an expired deadline answers 504 with a
// structured body, and the sweep (or the underlying construction) is
// cancelled once no request wants it, exactly like /plan.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	s.count("/simulate")
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		w.Header().Set("Allow", "GET, POST")
		writeError(w, http.StatusMethodNotAllowed, "use GET or POST")
		return
	}
	release, retry, ok := s.adm.acquire("/simulate")
	if !ok {
		writeShed(w, "/simulate", retry)
		return
	}
	defer release()
	nStr := r.FormValue("n")
	if nStr == "" {
		writeError(w, http.StatusBadRequest, "missing required parameter n")
		return
	}
	n, err := strconv.Atoi(nStr)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad n %q: %v", nStr, err)
		return
	}
	if err := checkRingSize(n); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	spec := r.FormValue("demand")
	if spec == "" {
		spec = "alltoall"
	}
	strategy := r.FormValue("strategy")
	if strategy != "" {
		if _, ok := construct.LookupStrategy(strategy); !ok {
			writeError(w, http.StatusBadRequest,
				"unknown strategy %q (have %s, or omit for the default pipeline)",
				strategy, strings.Join(construct.Strategies(), ", "))
			return
		}
	}
	in, err := instance.Parse(n, spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if in.IsGeneral() {
		// Failure simulation drills the WDM layer; a general host has no
		// ring links or wavelengths to fail.
		writeError(w, http.StatusBadRequest,
			"simulation requires a ring instance: %q is general-topology", in.Name)
		return
	}
	if err := checkDemandSize(in); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sweepOpts, err := parseSweepOptions(r, n)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	ctx, cancel := s.planContext(r)
	defer cancel()
	opts := cache.Options{Strategy: strategy}
	planSig := cache.Signature(in, opts)
	sig := simulateJobSig(planSig, sweepOpts)
	v, err := s.pool.Submit(ctx, sig, func(jctx context.Context) (any, error) {
		nw, hit, err := s.plans.NetworkCtx(jctx, in, opts)
		if err != nil {
			return nil, err
		}
		sweep, err := survive.NewSimulator(nw).SweepCtx(jctx, sweepOpts)
		if err != nil {
			return nil, err
		}
		return simulated{
			resp: simulateResponse{
				Signature:   planSig,
				N:           n,
				Demand:      in.Name,
				Strategy:    strategy,
				Subnets:     len(nw.Subnets),
				Wavelengths: nw.Wavelengths(),
				Sweep:       sweep,
			},
			hit: hit,
		}, nil
	})
	if err != nil {
		status := jobStatus(ctx, err)
		if status == http.StatusGatewayTimeout {
			writeJSON(w, status, timeoutBody{Error: fmt.Sprintf("simulate failed: %v", err), Timeout: s.planTimeout.String()})
			return
		}
		writeError(w, status, "simulate failed: %v", err)
		return
	}
	sm := v.(simulated)
	sm.resp.CacheHit = sm.hit
	if sm.hit {
		w.Header().Set("X-Cache", "HIT")
	} else {
		w.Header().Set("X-Cache", "MISS")
	}
	writeJSON(w, http.StatusOK, sm.resp)
}

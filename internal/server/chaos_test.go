//go:build faultinject

package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/cyclecover/cyclecover/internal/faultinject"
	"github.com/cyclecover/cyclecover/internal/instance"
)

// arm configures a failpoint spec for one test and disarms it after.
func arm(t *testing.T, spec string, seed int64) {
	t.Helper()
	if err := faultinject.Configure(spec, seed); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.Reset)
}

// TestChaosShedUnderInjectedLatency drives the admission acceptance
// case: with every pool dispatch slowed by an injected delay, a burst
// of 4× pool capacity sheds the excess with structured 429s while the
// admitted requests still answer 200 — the daemon never collapses into
// queueing without bound.
func TestChaosShedUnderInjectedLatency(t *testing.T) {
	arm(t, "pool.dispatch=delay(150ms)", 1)
	s := New(Config{CacheSize: 64, Workers: 2, Queue: 8, MaxInflight: 2})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	// 4× the admitted capacity, all distinct instances so nothing
	// coalesces.
	const burst = 8
	codes := make(chan int, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(fmt.Sprintf("%s/plan?n=%d", ts.URL, 5+i))
			if err != nil {
				t.Error(err)
				return
			}
			if resp.StatusCode == http.StatusTooManyRequests {
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 lacks Retry-After")
				}
				var shed struct {
					Error string `json:"error"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&shed); err != nil || shed.Error == "" {
					t.Errorf("429 body is not the structured shed shape: %v", err)
				}
			}
			resp.Body.Close()
			codes <- resp.StatusCode
		}(i)
	}
	wg.Wait()
	close(codes)
	counts := map[int]int{}
	for c := range codes {
		counts[c]++
	}
	if counts[http.StatusOK] == 0 || counts[http.StatusTooManyRequests] == 0 {
		t.Fatalf("burst of %d answered %v, want both 200s and 429s", burst, counts)
	}
	if counts[http.StatusOK]+counts[http.StatusTooManyRequests] != burst {
		t.Fatalf("burst leaked unexpected statuses: %v", counts)
	}
	if faultinject.Fired(faultinject.SitePoolDispatch) == 0 {
		t.Fatal("the dispatch delay failpoint never fired")
	}
}

// TestChaosInjectedPanicFailsOneRequest drives the containment
// acceptance case: a panic injected into the first strategy invocation
// fails exactly that request with a fingerprinted 500; concurrent
// default-pipeline traffic and a retry of the same request both answer
// 200, and exactly one recovered panic is counted.
func TestChaosInjectedPanicFailsOneRequest(t *testing.T) {
	arm(t, "strategy.solve=panic(chaos)#1", 7)
	s := New(Config{CacheSize: 64, Workers: 2, Queue: 8})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	resp, body := get(t, ts.URL+"/plan?n=9&strategy=greedy")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panic-injected request = %d (%s), want 500", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "panic recovered") || !strings.Contains(string(body), "chaos") {
		t.Fatalf("500 body %s does not name the injected panic", body)
	}

	// Only the owning request failed: the default pipeline is untouched,
	// and the #1 limit means the retry succeeds.
	for _, q := range []string{"/plan?n=11", "/plan?n=13", "/plan?n=9&strategy=greedy"} {
		if resp, body := get(t, ts.URL+q); resp.StatusCode != http.StatusOK {
			t.Fatalf("%s after injected panic = %d (%s), want 200", q, resp.StatusCode, body)
		}
	}

	_, metrics := get(t, ts.URL+"/metrics")
	if !strings.Contains(string(metrics), "cycled_panics_recovered_total 1") {
		t.Fatalf("metrics should count exactly one recovered panic:\n%s", metrics)
	}
	if got := faultinject.Fired(faultinject.SiteStrategySolve); got != 1 {
		t.Fatalf("panic failpoint fired %d times, want 1 (#1 limit)", got)
	}
}

// TestChaosDegradeNotTimeout drives the degradation acceptance case: a
// request whose budget the measured full-pipeline cost cannot fit gets
// a verified degraded cover (degraded:true), not a 504 — even while an
// injected dispatch delay eats into the budget.
func TestChaosDegradeNotTimeout(t *testing.T) {
	arm(t, "pool.dispatch=delay(20ms)", 3)
	s := New(Config{CacheSize: 64, Workers: 2, Queue: 8, PlanTimeout: 2 * time.Second, Degrade: true})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()
	s.costs.observe(modeFull, instance.AllToAll(9), time.Hour)

	resp, body := get(t, ts.URL+"/plan?n=9")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degradable /plan = %d (%s), want 200 not a timeout", resp.StatusCode, body)
	}
	var plan planResponse
	if err := json.Unmarshal(body, &plan); err != nil {
		t.Fatal(err)
	}
	if !plan.Degraded || plan.Optimal {
		t.Fatalf("plan = (degraded=%v, optimal=%v), want (true, false)", plan.Degraded, plan.Optimal)
	}
	if plan.Size == 0 || len(plan.Cycles) != plan.Size {
		t.Fatalf("degraded plan is not a real covering: size=%d cycles=%d", plan.Size, len(plan.Cycles))
	}
}

// TestChaosInjectedDispatchErrorRecovers: an err-verb failpoint at pool
// dispatch fails a deterministic fraction of jobs with a 500 carrying
// the injected error; the daemon keeps serving and untouched requests
// succeed.
func TestChaosInjectedDispatchErrorRecovers(t *testing.T) {
	arm(t, "pool.dispatch=err(disk on fire)#1", 11)
	s := New(Config{CacheSize: 64, Workers: 2, Queue: 8})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	resp, body := get(t, ts.URL+"/plan?n=9")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("err-injected request = %d (%s), want 500", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "disk on fire") {
		t.Fatalf("500 body %s does not carry the injected error", body)
	}
	if resp, body := get(t, ts.URL+"/plan?n=9"); resp.StatusCode != http.StatusOK {
		t.Fatalf("retry after injected error = %d (%s), want 200 (error was not cached)", resp.StatusCode, body)
	}
}

package server

import (
	"context"
	"runtime"
	"sync"
	"testing"

	"github.com/cyclecover/cyclecover/internal/fanout"
)

// TestPoolStampsFanOutShare verifies that every pool job runs under a
// context stamped with its fair share of the cores, and that the share
// shrinks with pool occupancy: of two jobs verified to run concurrently,
// the one stamped second saw occupancy 2 and got at most half the
// machine. On a single-core host both shares are 1, which the bounds
// below still pin.
func TestPoolStampsFanOutShare(t *testing.T) {
	cores := runtime.GOMAXPROCS(0)
	p := NewPool(2, 4)
	defer p.Close()

	// Both jobs hold at a barrier until the other has started, so the
	// later-stamped one is guaranteed to have observed occupancy 2.
	var started sync.WaitGroup
	started.Add(2)
	release := make(chan struct{})
	shares := make(chan int, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		sig := string(rune('a' + i))
		go func() {
			defer wg.Done()
			_, err := p.Submit(context.Background(), sig, func(jctx context.Context) (any, error) {
				shares <- fanout.Limit(jctx)
				started.Done()
				<-release
				return nil, nil
			})
			if err != nil {
				t.Errorf("Submit(%s): %v", sig, err)
			}
		}()
	}
	started.Wait()
	close(release)
	wg.Wait()
	close(shares)

	var got []int
	min := cores + 1
	for s := range shares {
		got = append(got, s)
		if s < 1 || s > cores {
			t.Fatalf("job stamped with share %d, want within [1, %d]", s, cores)
		}
		if s < min {
			min = s
		}
	}
	if len(got) != 2 {
		t.Fatalf("saw %d stamped jobs, want 2", len(got))
	}
	if want := fanout.Share(cores, 2); min > want {
		t.Fatalf("concurrent jobs stamped %v; the later one should get ≤ %d", got, want)
	}
}

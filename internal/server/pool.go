// Package server exposes the planner over HTTP/JSON: /plan, /plan/batch,
// /plan/delta, /simulate and /verify for the work itself, /healthz and
// /metrics for operations.
// Requests are executed by a bounded worker pool that batches same-signature requests
// — while a signature is queued or running, later requests for it attach
// to the existing job instead of occupying another worker — and results
// are memoized by the covering cache, so a burst of identical traffic
// costs one construction. See DESIGN.md §5.
package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"github.com/cyclecover/cyclecover/internal/construct"
	"github.com/cyclecover/cyclecover/internal/fanout"
	"github.com/cyclecover/cyclecover/internal/faultinject"
)

// ErrPoolClosed is returned by Submit after Close.
var ErrPoolClosed = errors.New("server: worker pool closed")

// ErrNotScheduled is what coalesced waiters receive when the submitter
// that owned their job gave up (its context fired) before the job
// reached a worker. It is retryable: the waiter's own context is intact.
var ErrNotScheduled = errors.New("server: job abandoned before reaching a worker")

// Pool is a bounded worker pool with same-signature batching. At most
// `workers` jobs run at once and at most `queue` more wait; every
// additional submission either attaches to a pending job with the same
// signature or blocks until queue space frees.
type Pool struct {
	jobs    chan *poolJob
	quit    chan struct{}
	wg      sync.WaitGroup
	workers int

	mu        sync.Mutex
	pending   map[string]*poolJob // queued or running, by signature
	closed    bool
	executed  uint64
	coalesced uint64
	// panics counts recovered panics per fingerprint (construct.PanicError
	// from any containment layer — the pool's own boundary, the cache's
	// compute goroutine, or a strategy guard), counted once per failed
	// job. panicsTotal is their sum; both feed /metrics.
	panics      map[string]uint64
	panicsTotal uint64
	// running counts jobs currently executing on a worker. It drives the
	// per-job fan-out stamp: each job gets its fair share of the cores
	// (fanout.Share), so nested parallel stages — the exact search, the
	// failure sweeps — stop multiplying by GOMAXPROCS under a busy pool.
	running int
}

type poolJob struct {
	sig  string
	run  func(context.Context) (any, error)
	done chan struct{}
	val  any
	err  error
	// ctx is the job's execution context, handed to run. It is cancelled
	// when the last attached waiter departs (every interested caller's
	// own context fired), so an abandoned computation stops burning a
	// worker instead of running to completion. Waiter bookkeeping is
	// guarded by Pool.mu.
	ctx     context.Context
	cancel  context.CancelFunc
	waiters int
	// finalized guards done against double close when a submitter's
	// failure path races Close's orphan sweep. Guarded by Pool.mu.
	finalized bool
}

// NewPool starts a pool with the given worker count and queue bound.
// workers ≤ 0 selects GOMAXPROCS; queue 0 selects 64, negative selects
// an unbuffered queue.
func NewPool(workers, queue int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case queue == 0:
		queue = 64
	case queue < 0:
		queue = 0
	}
	p := &Pool{
		jobs:    make(chan *poolJob, queue),
		quit:    make(chan struct{}),
		workers: workers,
		pending: make(map[string]*poolJob),
		panics:  make(map[string]uint64),
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// Submit runs fn on the pool and returns its result, attaching to an
// already-pending job when one with the same signature exists. It blocks
// until the result is ready, ctx is done, or the pool closes. fn
// receives the job's context, which is cancelled only when every waiter
// attached to the job has departed: a job with surviving waiters keeps
// running even if its original submitter gives up, while a job nobody
// wants any more is aborted mid-computation. A job abandoned before
// reaching a worker fails its waiters with ErrNotScheduled (never with
// the submitter's context error, which is not theirs).
func (p *Pool) Submit(ctx context.Context, sig string, fn func(context.Context) (any, error)) (any, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	// Attach only to a live job: one whose waiters all departed is
	// already cancelled (the worker will skip it), so a fresh caller
	// must replace it rather than inherit its doom.
	if j, ok := p.pending[sig]; ok && j.waiters > 0 {
		j.waiters++
		p.coalesced++
		p.mu.Unlock()
		return p.await(ctx, j)
	}
	jctx, cancel := context.WithCancel(context.Background())
	j := &poolJob{sig: sig, run: fn, done: make(chan struct{}), ctx: jctx, cancel: cancel, waiters: 1}
	p.pending[sig] = j
	p.mu.Unlock()

	select {
	case p.jobs <- j:
		return p.await(ctx, j)
	case <-ctx.Done():
		p.fail(j, ErrNotScheduled)
		return nil, ctx.Err()
	case <-p.quit:
		p.fail(j, ErrPoolClosed)
		return nil, ErrPoolClosed
	}
}

// await waits for j to finish or for the caller to give up. A departing
// waiter detaches from the job; the last one out cancels the job's
// context so an unwanted computation stops instead of running to
// completion.
func (p *Pool) await(ctx context.Context, j *poolJob) (any, error) {
	select {
	case <-j.done:
		return j.val, j.err
	case <-ctx.Done():
		p.mu.Lock()
		if !j.finalized {
			j.waiters--
			if j.waiters == 0 {
				j.cancel()
			}
		}
		p.mu.Unlock()
		return nil, ctx.Err()
	}
}

// fail finalises a job that never reached a worker, releasing any waiters
// that attached while it sat in pending. Idempotent: a submitter's quit/
// cancel path and Close's orphan sweep may both reach the same job.
func (p *Pool) fail(j *poolJob, err error) {
	p.mu.Lock()
	if j.finalized {
		p.mu.Unlock()
		return
	}
	j.finalized = true
	if p.pending[j.sig] == j {
		delete(p.pending, j.sig)
	}
	p.mu.Unlock()
	j.cancel()
	j.err = err
	close(j.done)
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		select {
		case j := <-p.jobs:
			// A job whose waiters all departed while it sat in the queue
			// (its context is already cancelled) is skipped outright:
			// nobody will read the result, so running it would only burn
			// the worker.
			if j.ctx.Err() != nil {
				j.err = j.ctx.Err()
			} else {
				// Stamp the job's context with its fair share of the cores
				// given current pool occupancy: a lone job may fan out over
				// the whole machine, jobs on a saturated pool run serially.
				p.mu.Lock()
				p.running++
				share := fanout.Share(runtime.GOMAXPROCS(0), p.running)
				p.mu.Unlock()
				j.val, j.err = p.runJob(j, share)
				p.mu.Lock()
				p.running--
				p.mu.Unlock()
			}
			j.cancel()
			p.mu.Lock()
			j.finalized = true
			if p.pending[j.sig] == j {
				delete(p.pending, j.sig)
			}
			p.executed++
			// Count recovered panics once per failed job, wherever the
			// containment boundary that caught them lives.
			var pe *construct.PanicError
			if errors.As(j.err, &pe) {
				p.panics[pe.Fingerprint]++
				p.panicsTotal++
			}
			p.mu.Unlock()
			close(j.done)
		case <-p.quit:
			return
		}
	}
}

// runJob executes one job on a worker behind the pool's containment
// boundary: a panic escaping the computation is recovered into a
// fingerprinted *construct.PanicError that fails only this job's
// waiters — the worker survives, every other queued job still runs, and
// the daemon keeps serving. (Goroutines a job spawns internally are out
// of this recover's reach; the portfolio runner guards its members with
// construct.SafeSolve for exactly that reason.)
func (p *Pool) runJob(j *poolJob, share int) (val any, err error) {
	defer func() {
		if r := recover(); r != nil {
			val, err = nil, construct.Recovered("pool", r)
		}
	}()
	//cyclecover:faultpoint pool dispatch: chaos suite injects worker-side latency and errors here
	if err := faultinject.Inject(faultinject.SitePoolDispatch); err != nil {
		return nil, fmt.Errorf("server: pool dispatch: %w", err)
	}
	return j.run(fanout.With(j.ctx, share))
}

// Close stops the workers and fails every unfinished job. Callers should
// drain in-flight HTTP traffic (http.Server.Shutdown) before closing the
// pool so no handler is left waiting.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.quit)
	p.wg.Wait()
	// Every job that never ran — queued in the channel, or inserted by a
	// Submit racing this Close and possibly stranded mid-send — is still
	// in pending (workers remove jobs only when they finish them, and all
	// workers have exited). Fail them all; fail is idempotent against the
	// racing submitter's own quit path.
	p.mu.Lock()
	orphanKeys := make([]string, 0, len(p.pending))
	//cyclecover:nondet keys are sorted immediately below; orphans fail in key order
	for key := range p.pending {
		orphanKeys = append(orphanKeys, key)
	}
	sort.Strings(orphanKeys)
	orphans := make([]*poolJob, 0, len(orphanKeys))
	for _, key := range orphanKeys {
		orphans = append(orphans, p.pending[key])
	}
	p.mu.Unlock()
	// Failing in sorted key order keeps shutdown behaviour reproducible:
	// waiters observe ErrPoolClosed in a deterministic sequence.
	for _, j := range orphans {
		p.fail(j, ErrPoolClosed)
	}
}

// PoolStats reports pool traffic: jobs executed by workers, submissions
// batched onto an existing job, current occupancy (running jobs and
// queued depth — the admission layer's shed signal), and panics
// recovered at any containment boundary.
type PoolStats struct {
	Executed        uint64 `json:"executed"`
	Coalesced       uint64 `json:"coalesced"`
	Running         int    `json:"running"`
	QueueDepth      int    `json:"queueDepth"`
	PanicsRecovered uint64 `json:"panicsRecovered"`
}

// Stats returns a snapshot of the counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		Executed:        p.executed,
		Coalesced:       p.coalesced,
		Running:         p.running,
		QueueDepth:      len(p.jobs),
		PanicsRecovered: p.panicsTotal,
	}
}

// QueueDepth reports how many jobs are waiting for a worker right now —
// the signal the admission layer sheds on.
func (p *Pool) QueueDepth() int { return len(p.jobs) }

// Workers reports the worker count. /plan/batch bounds its own fan-out
// to it: handler goroutines beyond the worker count could only park in
// the queue, which is exactly the buildup admission control exists to
// prevent.
func (p *Pool) Workers() int { return p.workers }

// Closed reports whether the pool has stopped accepting work (/readyz).
func (p *Pool) Closed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// Panics returns a copy of the per-fingerprint recovered-panic counters.
func (p *Pool) Panics() map[string]uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	m := make(map[string]uint64, len(p.panics))
	//cyclecover:nondet map copy; consumers sort the keys before emission
	for k, v := range p.panics {
		m[k] = v
	}
	return m
}

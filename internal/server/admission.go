package server

import (
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/cyclecover/cyclecover/internal/instance"
)

// ewmaAlpha weights the newest latency sample in the moving averages the
// admission and degradation layers keep. 0.3 reacts to a load shift
// within a few requests without letting one outlier dominate.
const ewmaAlpha = 0.3

// ewma is an exponentially weighted moving average of durations, held in
// seconds. The zero value means "no samples yet". Not self-locking:
// callers guard it with their own mutex.
type ewma struct {
	v float64 // seconds; 0 = no samples
}

func (e *ewma) observe(d time.Duration) {
	s := d.Seconds()
	if e.v == 0 {
		e.v = s
		return
	}
	e.v = ewmaAlpha*s + (1-ewmaAlpha)*e.v
}

func (e *ewma) value() (time.Duration, bool) {
	if e.v == 0 {
		return 0, false
	}
	return time.Duration(e.v * float64(time.Second)), true
}

// retryAfterBounds clamp the Retry-After hint a shed response carries:
// at least one second (the header's resolution), at most a minute so a
// transient spike never parks clients for longer than the overload
// plausibly lasts.
const (
	minRetryAfter = 1
	maxRetryAfter = 60
)

// admission is the server's load-shedding front door. Each work endpoint
// admits at most maxInflight concurrent requests, and nothing is
// admitted while the pool's pending queue is maxQueue deep or more; past
// either limit the request is shed with a structured 429 whose
// Retry-After hint derives from the EWMA of observed job latency. A zero
// limit disables that check, so the zero-value Config keeps admission
// off entirely and embedded users see no behaviour change.
type admission struct {
	maxInflight int
	maxQueue    int
	pool        *Pool

	mu        sync.Mutex
	inflight  map[string]int    // per-endpoint admitted requests
	shed      map[string]uint64 // per-endpoint shed counters
	shedTotal uint64
	latency   ewma // full job latency (queue wait + construction)
}

func newAdmission(maxInflight, maxQueue int, pool *Pool) *admission {
	return &admission{
		maxInflight: maxInflight,
		maxQueue:    maxQueue,
		pool:        pool,
		inflight:    make(map[string]int),
		shed:        make(map[string]uint64),
	}
}

// acquire admits one request on endpoint or sheds it. Admitted requests
// get a release func the handler must defer; shed requests get ok=false
// and the Retry-After seconds to hint.
func (a *admission) acquire(endpoint string) (release func(), retryAfter int, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.maxInflight > 0 && a.inflight[endpoint] >= a.maxInflight {
		a.shed[endpoint]++
		a.shedTotal++
		return nil, a.retryAfterLocked(), false
	}
	if a.maxQueue > 0 && a.pool.QueueDepth() >= a.maxQueue {
		a.shed[endpoint]++
		a.shedTotal++
		return nil, a.retryAfterLocked(), false
	}
	a.inflight[endpoint]++
	return func() {
		a.mu.Lock()
		a.inflight[endpoint]--
		a.mu.Unlock()
	}, 0, true
}

// checkQueue is the queue-depth half of acquire alone, used per batch
// item: a batch already holds its endpoint's in-flight slot, but each
// item is a separate pool submission that must not pile onto a saturated
// queue.
func (a *admission) checkQueue(endpoint string) (retryAfter int, ok bool) {
	if a.maxQueue <= 0 || a.pool.QueueDepth() < a.maxQueue {
		return 0, true
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.shed[endpoint]++
	a.shedTotal++
	return a.retryAfterLocked(), false
}

// observe feeds one completed job's latency into the Retry-After
// estimate.
func (a *admission) observe(d time.Duration) {
	a.mu.Lock()
	a.latency.observe(d)
	a.mu.Unlock()
}

// retryAfterLocked derives the Retry-After hint from observed job
// latency: one latency's worth of backoff, clamped to
// [minRetryAfter, maxRetryAfter]. With no samples yet it hints the
// minimum. Caller holds a.mu.
func (a *admission) retryAfterLocked() int {
	lat, ok := a.latency.value()
	if !ok {
		return minRetryAfter
	}
	sec := int(math.Ceil(lat.Seconds()))
	if sec < minRetryAfter {
		return minRetryAfter
	}
	if sec > maxRetryAfter {
		return maxRetryAfter
	}
	return sec
}

// snapshot copies the shed counters for /metrics.
func (a *admission) snapshot() (byEndpoint map[string]uint64, total uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	byEndpoint = make(map[string]uint64, len(a.shed))
	//cyclecover:nondet map copy; the metrics emitter sorts the keys
	for k, v := range a.shed {
		byEndpoint[k] = v
	}
	return byEndpoint, a.shedTotal
}

// shedBody is the JSON shape of a 429: the service is past an admission
// limit and the client should retry after the hinted delay (also in the
// Retry-After header).
type shedBody struct {
	Error      string `json:"error"`
	RetryAfter string `json:"retryAfter"`
}

func writeShed(w http.ResponseWriter, endpoint string, retryAfter int) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	writeJSON(w, http.StatusTooManyRequests, shedBody{
		Error:      fmt.Sprintf("%s over admission limit: request shed", endpoint),
		RetryAfter: fmt.Sprintf("%ds", retryAfter),
	})
}

// Cost-model modes: what kind of construction a measured duration
// belongs to. The degrade decision compares the remaining deadline
// budget against the full-pipeline estimate, and falls through to
// stale serving when even the degraded estimate does not fit.
const (
	modeFull     = "full"
	modeDegraded = "degraded"
)

// costModel remembers how long constructions take, as an EWMA per
// (mode, host kind, n) bucket. Buckets deliberately ignore the demand
// spec: the model only has to predict "will this blow the deadline",
// and keying by ring size keeps the map bounded by MaxRingSize instead
// of growing with every distinct demand string an attacker sends.
type costModel struct {
	mu      sync.Mutex
	buckets map[string]*ewma
}

func newCostModel() *costModel {
	return &costModel{buckets: make(map[string]*ewma)}
}

func costBucket(mode string, in instance.Instance) string {
	kind := "ring"
	if in.IsGeneral() {
		kind = "general"
	}
	return fmt.Sprintf("%s:%s:%d", mode, kind, in.N())
}

// observe feeds one measured construction duration into its bucket.
func (c *costModel) observe(mode string, in instance.Instance, d time.Duration) {
	key := costBucket(mode, in)
	c.mu.Lock()
	e := c.buckets[key]
	if e == nil {
		e = &ewma{}
		c.buckets[key] = e
	}
	e.observe(d)
	c.mu.Unlock()
}

// estimate predicts the construction cost for in under mode. ok=false
// means no sample has been observed for the bucket yet — callers treat
// an unknown cost as "assume it fits" so a cold server never degrades
// speculatively.
func (c *costModel) estimate(mode string, in instance.Instance) (time.Duration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.buckets[costBucket(mode, in)]
	if e == nil {
		return 0, false
	}
	return e.value()
}

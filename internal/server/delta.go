package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"github.com/cyclecover/cyclecover/internal/cache"
	"github.com/cyclecover/cyclecover/internal/construct"
	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/instance"
)

// maxDeltaBody bounds the /plan/delta request body; a parent signature
// plus a delta spec is a few dozen bytes, so this is pure headroom.
const maxDeltaBody = 1 << 16

// deltaRequest is the JSON body of POST /plan/delta: the parent plan's
// canonical signature (echoed by /plan as "signature") and a delta spec.
type deltaRequest struct {
	Parent string `json:"parent"`
	Delta  string `json:"delta"`
}

// deltaResponse is a full plan response for the child instance plus the
// delta provenance: which parent it replanned from, the applied delta,
// and whether the covering came from warm repair (vs cold fallback or a
// cached child).
type deltaResponse struct {
	planResponse
	Parent   string `json:"parent"`
	Delta    string `json:"delta"`
	Repaired bool   `json:"repaired"`
}

// handlePlanDelta serves POST /plan/delta: incremental replanning after a
// bounded instance change. The parent plan is fetched from the covering
// cache by signature, the delta applied to its demand, and the child
// planned by warm-starting the repair search from the parent covering —
// falling back to cold construction when repair exhausts its budget. The
// repaired plan verifies and costs no more cycles than a cold replan,
// and is admitted under the child instance's own signature, so identical
// concurrent requests — delta or cold — coalesce on the pool and the
// cache's single flight.
//
// 400 table: malformed JSON body, missing parent, missing delta, an
// unparseable delta spec, an unknown (never planned or evicted) parent
// signature, and a delta invalid against the parent's demand (endpoints
// out of range, removing an absent pair). An expired plan timeout
// answers 504 with the structured timeout body.
func (s *Server) handlePlanDelta(w http.ResponseWriter, r *http.Request) {
	s.count("/plan/delta")
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	release, retry, ok := s.adm.acquire("/plan/delta")
	if !ok {
		writeShed(w, "/plan/delta", retry)
		return
	}
	defer release()
	r.Body = http.MaxBytesReader(w, r.Body, maxDeltaBody)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "delta body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "reading delta request: %v", err)
		return
	}
	var req deltaRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad delta request: %v", err)
		return
	}
	if req.Parent == "" {
		writeError(w, http.StatusBadRequest, "missing required field parent (a plan signature, as echoed by /plan)")
		return
	}
	if req.Delta == "" {
		writeError(w, http.StatusBadRequest, "missing required field delta (add:<u>:<v>, remove:<u>:<v>, fail:<u>:<v>, or set:<u>:<v>:<m>)")
		return
	}
	d, err := instance.ParseDelta(req.Delta)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	dp, err := s.plans.ResolveDelta(req.Parent, d)
	if err != nil {
		// Unknown parents and invalid deltas are client-side input
		// problems; anything else from resolution would be a server bug.
		if errors.Is(err, cache.ErrUnknownParent) || errors.Is(err, cache.ErrBadDelta) {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	// The child inherits the parent's ring but is re-checked against the
	// service limits: an embedding process may have warmed the cache with
	// plans the HTTP limits would have rejected.
	if err := checkRingSize(dp.Child.N()); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := checkDemandSize(dp.Child); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	ctx, cancel := s.planContext(r)
	defer cancel()
	// The pool signature carries the delta shape, not just the child
	// signature: a /plan job for the same child returns a different
	// payload type, so the two must never coalesce at the pool layer.
	// They still share one construction via the cache's single flight.
	sig := "delta:" + dp.ParentSig + "->" + dp.ChildSig
	v, err := s.pool.Submit(ctx, sig, func(jctx context.Context) (any, error) {
		res, coverHit, err := s.plans.CoverDeltaCtx(jctx, dp)
		if err != nil {
			return nil, err
		}
		nw, netHit, err := s.plans.NetworkCtx(jctx, dp.Child, dp.Opts)
		if err != nil {
			return nil, err
		}
		return planned{
			res: res,
			nw: &wdmNetwork{
				wavelengths: nw.Wavelengths(),
				adms:        nw.ADMCount(),
				maxTransit:  nw.MaxTransit(),
				cost:        defaultCost(nw),
			},
			hit: coverHit && netHit,
		}, nil
	})
	if err != nil {
		status := jobStatus(ctx, err)
		if status == http.StatusGatewayTimeout {
			writeJSON(w, status, timeoutBody{Error: "delta plan failed: " + err.Error(), Timeout: s.planTimeout.String()})
			return
		}
		writeError(w, status, "delta plan failed: %v", err)
		return
	}
	pl := v.(planned)

	resp := deltaResponse{
		planResponse: planResponse{
			Signature:   dp.ChildSig,
			N:           dp.Child.N(),
			Demand:      dp.Child.Name,
			Strategy:    dp.Opts.Strategy,
			Size:        pl.res.Covering.Size(),
			Optimal:     pl.res.Optimal,
			Method:      string(pl.res.Method),
			Wavelengths: pl.nw.wavelengths,
			ADMs:        pl.nw.adms,
			MaxTransit:  pl.nw.maxTransit,
			Cost:        pl.nw.cost,
			CacheHit:    pl.hit,
		},
		Parent:   dp.ParentSig,
		Delta:    d.String(),
		Repaired: pl.res.Method == construct.MethodDelta,
	}
	if isAllToAll(dp.Child) {
		resp.Rho = cover.Rho(dp.Child.N())
	}
	for _, c := range pl.res.Covering.Cycles {
		resp.Cycles = append(resp.Cycles, c.Vertices())
	}
	if resp.CacheHit {
		w.Header().Set("X-Cache", "HIT")
	} else {
		w.Header().Set("X-Cache", "MISS")
	}
	writeJSON(w, http.StatusOK, resp)
}

package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolBoundedConcurrency proves no more than `workers` jobs ever run
// at once.
func TestPoolBoundedConcurrency(t *testing.T) {
	const workers = 2
	p := NewPool(workers, 64)
	defer p.Close()

	var running, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := p.Submit(context.Background(), fmt.Sprintf("job-%d", i), func(context.Context) (any, error) {
				now := running.Add(1)
				for {
					old := peak.Load()
					if now <= old || peak.CompareAndSwap(old, now) {
						break
					}
				}
				time.Sleep(2 * time.Millisecond)
				running.Add(-1)
				return i, nil
			})
			if err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if got := peak.Load(); got > workers {
		t.Fatalf("observed %d concurrent jobs, pool bound is %d", got, workers)
	}
	if st := p.Stats(); st.Executed != 20 {
		t.Fatalf("executed = %d, want 20", st.Executed)
	}
}

// TestPoolCoalescesSameSignature holds one job open and floods its
// signature: exactly one execution, everyone gets its result.
func TestPoolCoalescesSameSignature(t *testing.T) {
	p := NewPool(4, 64)
	defer p.Close()

	const waiters = 32
	gate := make(chan struct{})
	var executions atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := p.Submit(context.Background(), "same", func(context.Context) (any, error) {
				executions.Add(1)
				<-gate
				return "result", nil
			})
			if err != nil {
				errs <- err
				return
			}
			if v.(string) != "result" {
				errs <- fmt.Errorf("got %v", v)
			}
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for p.Stats().Coalesced < waiters-1 {
		if time.Now().After(deadline) {
			t.Fatalf("stampede never coalesced: %+v", p.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := executions.Load(); got != 1 {
		t.Fatalf("job ran %d times, want 1", got)
	}
}

func TestPoolSubmitHonorsContext(t *testing.T) {
	p := NewPool(1, -1) // unbuffered: the second submit must queue behind the blocker
	defer p.Close()

	block := make(chan struct{})
	started := make(chan struct{})
	go p.Submit(context.Background(), "blocker", func(context.Context) (any, error) {
		close(started)
		<-block
		return nil, nil
	})
	<-started // the only worker is now occupied
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := p.Submit(ctx, "waits-forever", func(context.Context) (any, error) { return nil, nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	close(block)
}

// TestPoolAbandonedJobFailsWaitersWithErrNotScheduled: when the
// submitter that owns a never-scheduled job cancels, coalesced waiters
// must not inherit its context error.
func TestPoolAbandonedJobFailsWaitersWithErrNotScheduled(t *testing.T) {
	p := NewPool(1, -1) // one worker, unbuffered queue
	defer p.Close()

	block := make(chan struct{})
	started := make(chan struct{})
	go p.Submit(context.Background(), "blocker", func(context.Context) (any, error) {
		close(started)
		<-block
		return nil, nil
	})
	<-started
	defer close(block)

	// A: owns job "x", stuck sending to the full queue.
	actx, acancel := context.WithCancel(context.Background())
	aErr := make(chan error, 1)
	go func() {
		_, err := p.Submit(actx, "x", func(context.Context) (any, error) { return nil, nil })
		aErr <- err
	}()
	// B: coalesces onto A's pending job.
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Coalesced == 0 {
		bReady := func() bool { p.mu.Lock(); defer p.mu.Unlock(); _, ok := p.pending["x"]; return ok }()
		if bReady {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job x never became pending")
		}
		time.Sleep(time.Millisecond)
	}
	bErr := make(chan error, 1)
	go func() {
		_, err := p.Submit(context.Background(), "x", func(context.Context) (any, error) { return nil, nil })
		bErr <- err
	}()
	for p.Stats().Coalesced == 0 {
		if time.Now().After(deadline) {
			t.Fatal("B never coalesced")
		}
		time.Sleep(time.Millisecond)
	}

	acancel()
	if err := <-aErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("submitter err = %v, want its own context.Canceled", err)
	}
	if err := <-bErr; !errors.Is(err, ErrNotScheduled) {
		t.Fatalf("waiter err = %v, want ErrNotScheduled", err)
	}
}

func TestPoolCloseFailsPending(t *testing.T) {
	p := NewPool(1, 8)
	release := make(chan struct{})
	go p.Submit(context.Background(), "running", func(context.Context) (any, error) {
		<-release
		return nil, nil
	})
	time.Sleep(5 * time.Millisecond)
	close(release)
	p.Close()
	if _, err := p.Submit(context.Background(), "late", func(context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("submit after close = %v, want ErrPoolClosed", err)
	}
	p.Close() // idempotent
}

package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{CacheSize: 32, Workers: 4, Queue: 16})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func postJSON(t *testing.T, url string, v any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestPlanHandlerTable drives /plan through its status codes and JSON
// shape.
func TestPlanHandlerTable(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name   string
		query  string
		status int
		// wantFields must appear as top-level JSON keys on 200s.
		wantFields []string
	}{
		{"odd all-to-all", "n=9", http.StatusOK,
			[]string{"signature", "n", "demand", "size", "rho", "optimal", "method", "cycles", "wavelengths", "adms", "maxTransit", "cost", "cacheHit"}},
		{"even all-to-all", "n=8", http.StatusOK, nil},
		{"hub demand", "n=10&demand=hub:3", http.StatusOK, nil},
		{"lambda demand", "n=7&demand=lambda:2", http.StatusOK, nil},
		{"neighbors demand", "n=9&demand=neighbors", http.StatusOK, nil},
		{"missing n", "", http.StatusBadRequest, nil},
		{"non-numeric n", "n=abc", http.StatusBadRequest, nil},
		{"ring too small", "n=2", http.StatusBadRequest, nil},
		{"negative n", "n=-5", http.StatusBadRequest, nil},
		{"n beyond service limit", "n=99999", http.StatusBadRequest, nil},
		{"unknown demand", "n=9&demand=bogus", http.StatusBadRequest, nil},
		{"bad hub", "n=9&demand=hub:99", http.StatusBadRequest, nil},
		{"oversized lambda workload", "n=1000&demand=lambda:100", http.StatusBadRequest, nil},
		{"overflowing lambda", "n=5&demand=lambda:1152921504606846976", http.StatusBadRequest, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := get(t, ts.URL+"/plan?"+tc.query)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, tc.status, body)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Fatalf("content-type = %q", ct)
			}
			var m map[string]any
			if err := json.Unmarshal(body, &m); err != nil {
				t.Fatalf("non-JSON body %s: %v", body, err)
			}
			if tc.status != http.StatusOK {
				if _, ok := m["error"]; !ok {
					t.Fatalf("error body missing error field: %s", body)
				}
				return
			}
			for _, f := range tc.wantFields {
				if _, ok := m[f]; !ok {
					t.Errorf("response missing field %q: %s", f, body)
				}
			}
		})
	}

	t.Run("method not allowed", func(t *testing.T) {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/plan?n=9", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("status = %d, want 405", resp.StatusCode)
		}
	})
}

// TestPlanCacheHitHeader asserts the golden MISS→HIT transition and the
// cacheHit body flag.
func TestPlanCacheHitHeader(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := get(t, ts.URL+"/plan?n=13")
	if h := resp.Header.Get("X-Cache"); h != "MISS" {
		t.Fatalf("first X-Cache = %q, want MISS (body %s)", h, body)
	}
	var first planResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("first response claims cacheHit")
	}
	if first.Rho == 0 || first.Size != first.Rho || !first.Optimal {
		t.Fatalf("K_13 plan not optimal: %+v", first)
	}

	resp, body = get(t, ts.URL+"/plan?n=13")
	if h := resp.Header.Get("X-Cache"); h != "HIT" {
		t.Fatalf("second X-Cache = %q, want HIT", h)
	}
	var second planResponse
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit || second.Size != first.Size || second.Signature != first.Signature {
		t.Fatalf("cached response drifted: %+v vs %+v", second, first)
	}
}

// TestVerifyHandlerTable drives /verify through its verdicts.
func TestVerifyHandlerTable(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name   string
		req    verifyRequest
		status int
		valid  bool
	}{
		{"valid K_4 covering from the paper",
			verifyRequest{N: 4, Cycles: [][]int{{0, 1, 2, 3}, {0, 1, 3}, {0, 2, 3}}},
			http.StatusOK, true},
		{"missing demand edge",
			verifyRequest{N: 5, Cycles: [][]int{{0, 1, 2}}},
			http.StatusUnprocessableEntity, false},
		{"malformed cycle",
			verifyRequest{N: 5, Cycles: [][]int{{0, 0, 1}}},
			http.StatusUnprocessableEntity, false},
		{"cycle too short",
			verifyRequest{N: 5, Cycles: [][]int{{0, 1}}},
			http.StatusUnprocessableEntity, false},
		{"hub demand satisfied",
			verifyRequest{N: 5, Cycles: [][]int{{0, 1, 2}, {0, 2, 3}, {0, 3, 4}}, Demand: "hub:0"},
			http.StatusOK, true},
		{"ring too small", verifyRequest{N: 2}, http.StatusBadRequest, false},
		{"negative n", verifyRequest{N: -7}, http.StatusBadRequest, false},
		{"n beyond service limit", verifyRequest{N: MaxRingSize + 1}, http.StatusBadRequest, false},
		{"bad demand spec", verifyRequest{N: 5, Demand: "bogus"}, http.StatusBadRequest, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/verify", tc.req)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, tc.status, body)
			}
			if tc.status == http.StatusBadRequest {
				return
			}
			var vr verifyResponse
			if err := json.Unmarshal(body, &vr); err != nil {
				t.Fatal(err)
			}
			if vr.Valid != tc.valid {
				t.Fatalf("valid = %v, want %v (%s)", vr.Valid, tc.valid, body)
			}
			if !vr.Valid && vr.Error == "" {
				t.Fatal("invalid verdict carries no reason")
			}
		})
	}

	t.Run("oversized body rejected", func(t *testing.T) {
		blob := append([]byte(`{"n":5,"cycles":[[0,1,2]],"demand":"`), bytes.Repeat([]byte("x"), 9<<20)...)
		blob = append(blob, '"', '}')
		resp, err := http.Post(ts.URL+"/verify", "application/json", bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("status = %d, want 413", resp.StatusCode)
		}
	})
	t.Run("malformed JSON", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/verify", "application/json", strings.NewReader("{"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
	})
	t.Run("GET not allowed", func(t *testing.T) {
		resp, _ := get(t, ts.URL+"/verify")
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("status = %d, want 405", resp.StatusCode)
		}
	})
}

// TestPlanVerifyRoundTrip is the end-to-end flow: plan a covering over
// HTTP, feed the returned cycles back through /verify, and expect a
// valid, optimal verdict.
func TestPlanVerifyRoundTrip(t *testing.T) {
	_, ts := newTestServer(t)
	for _, q := range []string{"n=11", "n=8", "n=10&demand=hub:2"} {
		resp, body := get(t, ts.URL+"/plan?"+q)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("plan %s: status %d (%s)", q, resp.StatusCode, body)
		}
		var plan planResponse
		if err := json.Unmarshal(body, &plan); err != nil {
			t.Fatal(err)
		}
		demand := "alltoall"
		if strings.Contains(q, "hub") {
			demand = "hub:2"
		}
		resp, body = postJSON(t, ts.URL+"/verify", verifyRequest{N: plan.N, Cycles: plan.Cycles, Demand: demand})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("verify of planned %s: status %d (%s)", q, resp.StatusCode, body)
		}
		var vr verifyResponse
		if err := json.Unmarshal(body, &vr); err != nil {
			t.Fatal(err)
		}
		if !vr.Valid {
			t.Fatalf("planned covering rejected by its own verifier: %s", body)
		}
		if q == "n=11" && !vr.Optimal {
			t.Fatalf("K_11 round trip lost optimality: %s", body)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var h healthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("status = %q", h.Status)
	}
}

func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t)
	get(t, ts.URL+"/plan?n=9")
	get(t, ts.URL+"/plan?n=9")
	resp, body := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	text := string(body)
	for _, metric := range []string{
		`cycled_cache_hits_total{store="coverings"}`,
		`cycled_cache_misses_total{store="networks"}`,
		"cycled_pool_executed_total",
		`cycled_http_requests_total{path="/plan"} 2`,
		"cycled_uptime_seconds",
	} {
		if !strings.Contains(text, metric) {
			t.Errorf("metrics missing %q:\n%s", metric, text)
		}
	}
}

// TestConcurrentPlans hammers /plan from many goroutines across a few
// signatures; under -race this is the service's concurrency test, and the
// cache must still have computed each signature exactly once.
func TestConcurrentPlans(t *testing.T) {
	s, ts := newTestServer(t)
	ns := []int{9, 10, 11, 12}
	var wg sync.WaitGroup
	for w := 0; w < 24; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				n := ns[(w+i)%len(ns)]
				resp, err := http.Get(fmt.Sprintf("%s/plan?n=%d", ts.URL, n))
				if err != nil {
					t.Error(err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("n=%d: status %d (%s)", n, resp.StatusCode, body)
					return
				}
				var plan planResponse
				if err := json.Unmarshal(body, &plan); err != nil {
					t.Error(err)
					return
				}
				if plan.N != n || plan.Size == 0 {
					t.Errorf("n=%d: bogus plan %+v", n, plan)
				}
			}
		}(w)
	}
	wg.Wait()
	if st := s.Plans().Stats(); st.Coverings.Misses > uint64(len(ns)) {
		t.Fatalf("constructions exceeded distinct signatures: %+v", st)
	}
}

// postNDJSON posts raw NDJSON to url and returns the parsed response
// lines.
func postNDJSON(t *testing.T, url, body string) (*http.Response, []batchPlanLine) {
	t.Helper()
	resp, err := http.Post(url, "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		return resp, nil
	}
	var lines []batchPlanLine
	for _, ln := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		if ln == "" {
			continue
		}
		var l batchPlanLine
		if err := json.Unmarshal([]byte(ln), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", ln, err)
		}
		lines = append(lines, l)
	}
	return resp, lines
}

// TestPlanBatchMixedItems drives /plan/batch with valid, invalid and
// malformed lines at once: every line gets exactly one answer, failures
// stay in their slot, and the batch itself still succeeds.
func TestPlanBatchMixedItems(t *testing.T) {
	_, ts := newTestServer(t)
	body := strings.Join([]string{
		`{"n": 9}`,                           // 0: odd all-to-all
		`{"n": 8, "demand": "alltoall"}`,     // 1: even all-to-all
		`{"n": 10, "demand": "hub:3"}`,       // 2: hub
		`{"n": 9, "demand": "hub:99"}`,       // 3: out-of-range hub → error
		`{"n": 2}`,                           // 4: ring too small → error
		`not json at all`,                    // 5: malformed line → error
		`{"n": 9, "demand": "random:NaN:1"}`, // 6: non-finite density → error
		`{"n": 7, "demand": "lambda:2"}`,     // 7: λK_n
	}, "\n")
	resp, lines := postNDJSON(t, ts.URL+"/plan/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/x-ndjson") {
		t.Fatalf("content-type = %q", ct)
	}
	if len(lines) != 8 {
		t.Fatalf("got %d result lines, want 8", len(lines))
	}
	byIndex := map[int]batchPlanLine{}
	for _, l := range lines {
		if _, dup := byIndex[l.Index]; dup {
			t.Fatalf("index %d answered twice", l.Index)
		}
		byIndex[l.Index] = l
	}
	wantErr := map[int]string{
		3: "[0, 9)", // hub range must be named
		4: "",       // ring too small
		5: "bad batch line",
		6: "finite", // non-finite density must be named
	}
	for i := 0; i < 8; i++ {
		l, ok := byIndex[i]
		if !ok {
			t.Fatalf("no answer for index %d", i)
		}
		if substr, bad := wantErr[i]; bad {
			if l.Error == "" || l.Plan != nil {
				t.Fatalf("index %d: want error line, got %+v", i, l)
			}
			if !strings.Contains(l.Error, substr) {
				t.Fatalf("index %d: error %q does not mention %q", i, l.Error, substr)
			}
			continue
		}
		if l.Error != "" || l.Plan == nil {
			t.Fatalf("index %d: want plan, got error %q", i, l.Error)
		}
		if l.Plan.Size == 0 || len(l.Plan.Cycles) != l.Plan.Size {
			t.Fatalf("index %d: inconsistent plan %+v", i, l.Plan)
		}
	}
	if byIndex[0].Plan.Rho != 10 || byIndex[0].Plan.N != 9 {
		t.Fatalf("index 0: rho/n = %d/%d, want 10/9", byIndex[0].Plan.Rho, byIndex[0].Plan.N)
	}
}

// TestPlanBatchCoalescesDuplicates: a batch of identical requests must
// cost one construction — the pool's same-signature batching and the
// cache's single flight both serve the batch path.
func TestPlanBatchCoalescesDuplicates(t *testing.T) {
	s, ts := newTestServer(t)
	var b strings.Builder
	const items = 24
	for i := 0; i < items; i++ {
		b.WriteString(`{"n": 13}` + "\n")
	}
	resp, lines := postNDJSON(t, ts.URL+"/plan/batch", b.String())
	if resp.StatusCode != http.StatusOK || len(lines) != items {
		t.Fatalf("status %d, %d lines", resp.StatusCode, len(lines))
	}
	for _, l := range lines {
		if l.Error != "" || l.Plan == nil || l.Plan.Size != 21 {
			t.Fatalf("line %+v: want a 21-cycle K_13 plan", l)
		}
	}
	if st := s.Plans().Stats(); st.Coverings.Misses != 1 {
		t.Fatalf("%d constructions for %d identical batch items, want 1", st.Coverings.Misses, items)
	}
}

// TestPlanBatchRequestValidation covers the whole-request failures.
func TestPlanBatchRequestValidation(t *testing.T) {
	_, ts := newTestServer(t)

	resp, body := get(t, ts.URL+"/plan/batch")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d, want 405 (%s)", resp.StatusCode, body)
	}

	resp, _ = postNDJSON(t, ts.URL+"/plan/batch", "\n\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", resp.StatusCode)
	}

	var big strings.Builder
	for i := 0; i <= MaxBatchItems; i++ {
		big.WriteString(`{"n": 9}` + "\n")
	}
	resp, _ = postNDJSON(t, ts.URL+"/plan/batch", big.String())
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: status %d, want 413", resp.StatusCode)
	}
}

// TestPlanRejectsNonFiniteDensity pins the HTTP mapping of the NaN
// density bug: strconv parses "NaN", the demand parser must refuse it,
// and the handler must answer 400 — not 200 with an empty demand.
func TestPlanRejectsNonFiniteDensity(t *testing.T) {
	_, ts := newTestServer(t)
	// %2B is "+": unescaped it would decode to a space and fail parsing
	// for the wrong reason.
	for _, spec := range []string{"random:NaN:1", "random:Inf:1", "random:-Inf:2", "random:%2BInf:3"} {
		resp, body := get(t, ts.URL+"/plan?n=9&demand="+spec)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status = %d, want 400 (body %s)", spec, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), "finite") {
			t.Fatalf("%s: error %s does not name the finite-density requirement", spec, body)
		}
	}
}

// BenchmarkPlanBatchWarm measures the NDJSON batch path against a warm
// cache: per-item cost is validation + pool round-trip + clone/encode.
func BenchmarkPlanBatchWarm(b *testing.B) {
	s := New(Config{CacheSize: 64, Workers: 4, Queue: 32})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var body strings.Builder
	for _, n := range []int{9, 10, 11, 12, 13, 9, 11, 13} {
		fmt.Fprintf(&body, "{\"n\": %d}\n", n)
	}
	warm, err := http.Post(ts.URL+"/plan/batch", "application/x-ndjson", strings.NewReader(body.String()))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, warm.Body)
	warm.Body.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/plan/batch", "application/x-ndjson", strings.NewReader(body.String()))
		if err != nil {
			b.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || strings.Count(string(out), "\n") != 8 {
			b.Fatalf("status %d, %d lines", resp.StatusCode, strings.Count(string(out), "\n"))
		}
	}
}

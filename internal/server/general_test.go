package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/instance"
)

// TestPlanGeneralEndToEnd is the committed HTTP acceptance path: POST
// /plan for the Petersen graph and the flower snarks plans a shortest
// cycle cover end to end, the response reports the scc objective, the
// length meets the literature bound 4/3·m + c, and the returned cycles
// round-trip through /verify.
func TestPlanGeneralEndToEnd(t *testing.T) {
	_, ts := newTestServer(t)
	for _, tc := range []struct {
		spec string
		n    int
		want int // provably optimal scc length
	}{
		{"petersen", 10, 21},
		{"flower:5", 20, 40},
		{"flower:7", 28, 56},
	} {
		resp, body := get(t, fmt.Sprintf("%s/plan?n=%d&demand=%s", ts.URL, tc.n, tc.spec))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", tc.spec, resp.StatusCode, body)
		}
		var plan planResponse
		if err := json.Unmarshal(body, &plan); err != nil {
			t.Fatalf("%s: %v", tc.spec, err)
		}
		in, err := instance.Parse(tc.n, tc.spec)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Length != tc.want {
			t.Fatalf("%s: length %d, want the optimum %d", tc.spec, plan.Length, tc.want)
		}
		if ub := cover.SnarkSCCUpperBound(in.Host.M()); plan.Length > ub {
			t.Fatalf("%s: length %d exceeds 4/3·m + c = %d", tc.spec, plan.Length, ub)
		}
		if plan.SCCLowerBound != cover.SCCLowerBound(in.Host) {
			t.Fatalf("%s: sccLowerBound %d, want %d", tc.spec, plan.SCCLowerBound, cover.SCCLowerBound(in.Host))
		}
		if plan.Rho != 0 {
			t.Fatalf("%s: rho %d reported for a general-topology plan", tc.spec, plan.Rho)
		}
		if plan.Wavelengths != 0 || plan.Cost != 0 {
			t.Fatalf("%s: WDM facts reported for a general-topology plan", tc.spec)
		}
		if !plan.Optimal {
			t.Fatalf("%s: optimal scc length reached but not claimed", tc.spec)
		}

		// Round-trip: the planned cycles must verify over the same demand.
		vresp, vbody := postJSON(t, ts.URL+"/verify", map[string]any{
			"n": tc.n, "demand": tc.spec, "cycles": plan.Cycles,
		})
		if vresp.StatusCode != http.StatusOK {
			t.Fatalf("%s: verify status %d: %s", tc.spec, vresp.StatusCode, vbody)
		}
		var verdict verifyResponse
		if err := json.Unmarshal(vbody, &verdict); err != nil {
			t.Fatal(err)
		}
		if !verdict.Valid || verdict.Length != plan.Length {
			t.Fatalf("%s: verify verdict %+v does not match the plan", tc.spec, verdict)
		}

		// Warm request: same signature, served from memory.
		warm, _ := get(t, fmt.Sprintf("%s/plan?n=%d&demand=%s", ts.URL, tc.n, tc.spec))
		if warm.Header.Get("X-Cache") != "HIT" {
			t.Fatalf("%s: second plan request was not a cache hit", tc.spec)
		}
	}
}

// TestVerifyGeneralRejectsBadCover: a cover that skips a host edge (or
// walks a non-edge) must answer 422 with the verifier's reason, never
// 500.
func TestVerifyGeneralRejectsBadCover(t *testing.T) {
	_, ts := newTestServer(t)
	for name, cycles := range map[string][][]int{
		// Outer pentagon only: spokes and pentagram uncovered.
		"uncovered edges": {{0, 1, 2, 3, 4}},
		// {0,2} is not a Petersen edge.
		"non-edge walk": {{0, 1, 2}},
		// Too short.
		"two vertices": {{0, 1}},
	} {
		resp, body := postJSON(t, ts.URL+"/verify", map[string]any{
			"n": 10, "demand": "petersen", "cycles": cycles,
		})
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("%s: status %d, want 422: %s", name, resp.StatusCode, body)
		}
		var verdict verifyResponse
		if err := json.Unmarshal(body, &verdict); err != nil {
			t.Fatal(err)
		}
		if verdict.Valid || verdict.Error == "" {
			t.Fatalf("%s: verdict %+v, want invalid with a reason", name, verdict)
		}
	}
}

// TestSimulateRejectsGeneral: failure simulation drills the WDM layer,
// which general-topology instances do not have — 400, not 500.
func TestSimulateRejectsGeneral(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := get(t, ts.URL+"/simulate?n=10&demand=petersen")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
}

// TestPlanDeltaRejectsGeneralParent: delta replanning rebuilds children
// from demand provenance, which would lose a general parent's host — the
// endpoint must refuse cleanly.
func TestPlanDeltaRejectsGeneralParent(t *testing.T) {
	s, ts := newTestServer(t)
	// Plan the parent so the signature resolves in the cache.
	resp, body := get(t, ts.URL+"/plan?n=10&demand=petersen")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("parent plan: status %d: %s", resp.StatusCode, body)
	}
	var plan planResponse
	if err := json.Unmarshal(body, &plan); err != nil {
		t.Fatal(err)
	}
	dresp, dbody := postJSON(t, ts.URL+"/plan/delta", map[string]any{
		"parent": plan.Signature, "delta": "add:0:2",
	})
	if dresp.StatusCode/100 != 4 {
		t.Fatalf("delta on general parent: status %d, want 4xx: %s", dresp.StatusCode, dbody)
	}
	_ = s
}

package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/cyclecover/cyclecover/internal/construct"
	"github.com/cyclecover/cyclecover/internal/instance"
)

// gateStrategy is a controllable strategy for admission tests: every
// Solve signals started, then parks until release closes (whereupon it
// delegates to the greedy sweep, producing a real verified covering) or
// the context fires.
type gateStrategy struct {
	name    string
	started chan struct{} // one token per Solve entry; buffer ≥ expected calls
	release chan struct{}
	calls   *atomic.Int64
}

func (g gateStrategy) Name() string { return g.name }

func (g gateStrategy) Solve(ctx context.Context, in instance.Instance, opts construct.Options) (construct.Outcome, error) {
	g.calls.Add(1)
	g.started <- struct{}{}
	select {
	case <-g.release:
		return construct.GreedySweep{}.Solve(ctx, in, opts)
	case <-ctx.Done():
		return construct.Outcome{}, ctx.Err()
	}
}

// testStrategySeq uniquifies test-registered strategy names: the
// construct registry is process-global and registrations cannot be
// undone, so repeated runs of the same test in one process (-count=2)
// each need a fresh name.
var testStrategySeq atomic.Int64

// registerGate registers a uniquely named gate strategy; use the
// returned g.name (not the base name) to select it per request.
func registerGate(t *testing.T, name string) gateStrategy {
	t.Helper()
	g := gateStrategy{
		name:    fmt.Sprintf("%s-%d", name, testStrategySeq.Add(1)),
		started: make(chan struct{}, 64),
		release: make(chan struct{}),
		calls:   &atomic.Int64{},
	}
	if err := construct.RegisterStrategy(g); err != nil {
		t.Fatal(err)
	}
	return g
}

func waitStarted(t *testing.T, g gateStrategy) {
	t.Helper()
	select {
	case <-g.started:
	case <-time.After(5 * time.Second):
		t.Fatal("strategy never entered Solve")
	}
}

// TestShedInflightCap: past the per-endpoint in-flight cap, /plan
// answers a structured 429 with a Retry-After hint instead of queueing,
// and the shed is counted in /metrics.
func TestShedInflightCap(t *testing.T) {
	s := New(Config{CacheSize: 32, Workers: 2, Queue: 16, MaxInflight: 1})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()
	g := registerGate(t, "shed-inflight-gate")

	first := make(chan int, 1)
	go func() {
		resp, _ := http.Get(ts.URL + "/plan?n=9&strategy=" + g.name)
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	waitStarted(t, g)

	// The endpoint is at its cap: the next request is shed.
	resp, body := get(t, ts.URL+"/plan?n=11")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap /plan status = %d (%s), want 429", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 lacks a Retry-After header")
	}
	var shed struct {
		Error      string `json:"error"`
		RetryAfter string `json:"retryAfter"`
	}
	if err := json.Unmarshal(body, &shed); err != nil || shed.Error == "" || shed.RetryAfter == "" {
		t.Fatalf("429 body %s is not the structured shed shape (%v)", body, err)
	}

	// Other endpoints have their own cap and are not affected.
	if resp, body := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz during /plan saturation = %d (%s)", resp.StatusCode, body)
	}

	close(g.release)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("admitted request finished %d, want 200", code)
	}

	_, metrics := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		"cycled_shed_total 1",
		"cycled_shed_path_total{path=\"/plan\"} 1",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestShedQueueDepth: once the pool's pending queue is MaxQueue deep,
// new work is shed with 429 rather than deepening the backlog.
func TestShedQueueDepth(t *testing.T) {
	s := New(Config{CacheSize: 32, Workers: 1, Queue: 16, MaxQueue: 1})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()
	g := registerGate(t, "shed-queue-gate")

	codes := make(chan int, 2)
	for _, n := range []int{9, 11} {
		go func(n int) {
			resp, _ := http.Get(fmt.Sprintf("%s/plan?n=%d&strategy=%s", ts.URL, n, g.name))
			resp.Body.Close()
			codes <- resp.StatusCode
		}(n)
	}
	// First request occupies the lone worker; the second's job must land
	// in the queue before the shed check is meaningful.
	waitStarted(t, g)
	deadline := time.Now().Add(5 * time.Second)
	for s.pool.QueueDepth() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second job never queued")
		}
		time.Sleep(time.Millisecond)
	}

	resp, body := get(t, ts.URL+"/plan?n=13")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full-queue /plan status = %d (%s), want 429", resp.StatusCode, body)
	}

	close(g.release)
	for i := 0; i < 2; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Fatalf("queued request finished %d, want 200", code)
		}
	}
}

// TestPanicContainmentSheltersServing: a panicking strategy fails only
// its own request with a fingerprinted 500; the daemon keeps serving
// and the panic is counted in /metrics.
func TestPanicContainmentSheltersServing(t *testing.T) {
	s := New(Config{CacheSize: 32, Workers: 2, Queue: 16})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()
	p := panickingStrategy{name: fmt.Sprintf("server-test-boom-%d", testStrategySeq.Add(1))}
	if err := construct.RegisterStrategy(p); err != nil {
		t.Fatal(err)
	}

	resp, body := get(t, ts.URL+"/plan?n=9&strategy="+p.name)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking strategy status = %d (%s), want 500", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "panic recovered") {
		t.Fatalf("500 body %s does not name the recovered panic", body)
	}

	// Only the owning request failed: the same server plans normally.
	if resp, body := get(t, ts.URL+"/plan?n=9"); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic /plan = %d (%s), want 200", resp.StatusCode, body)
	}

	_, metrics := get(t, ts.URL+"/metrics")
	if !strings.Contains(string(metrics), "cycled_panics_recovered_total 1") {
		t.Fatalf("metrics missing the recovered-panic count:\n%s", metrics)
	}
	if !strings.Contains(string(metrics), "cycled_panics_recovered_fingerprint_total{fingerprint=") {
		t.Fatalf("metrics missing the per-fingerprint panic counter:\n%s", metrics)
	}
}

type panickingStrategy struct{ name string }

func (p panickingStrategy) Name() string { return p.name }
func (panickingStrategy) Solve(context.Context, instance.Instance, construct.Options) (construct.Outcome, error) {
	panic("injected solver bug")
}

// TestDegradeUnderDeadline: when the measured full-pipeline cost cannot
// fit the remaining budget, the plan is built by the anytime portfolio —
// verified, degraded:true, no optimality claim, cached under the
// degraded signature dimension.
func TestDegradeUnderDeadline(t *testing.T) {
	s := New(Config{CacheSize: 32, Workers: 2, Queue: 16, PlanTimeout: 2 * time.Second, Degrade: true})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	// Teach the cost model that full construction at this size blows any
	// plausible deadline (tests poke the model directly; production
	// learns it from real constructions).
	s.costs.observe(modeFull, instance.AllToAll(9), time.Hour)

	resp, body := get(t, ts.URL+"/plan?n=9")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degradable /plan = %d (%s), want 200", resp.StatusCode, body)
	}
	var plan planResponse
	if err := json.Unmarshal(body, &plan); err != nil {
		t.Fatal(err)
	}
	if !plan.Degraded || plan.Stale {
		t.Fatalf("plan = (degraded=%v, stale=%v), want (true, false)", plan.Degraded, plan.Stale)
	}
	if plan.Optimal {
		t.Fatal("degraded plan claims optimality")
	}
	if !strings.HasSuffix(plan.Signature, ";g=deg") {
		t.Fatalf("degraded plan signature %q lacks the ;g=deg dimension", plan.Signature)
	}
	if got := resp.Header.Get("X-Degraded"); got != "true" {
		t.Fatalf("X-Degraded = %q, want true", got)
	}
	if len(plan.Cycles) != plan.Size || plan.Size == 0 {
		t.Fatalf("degraded plan carries %d cycles for size %d", len(plan.Cycles), plan.Size)
	}

	_, metrics := get(t, ts.URL+"/metrics")
	if !strings.Contains(string(metrics), "cycled_degraded_total 1") {
		t.Fatalf("metrics missing the degrade count:\n%s", metrics)
	}
}

// TestDegradeStaleServe: when even the anytime estimate cannot fit the
// budget, a previously cached verified plan is served with
// X-Degraded: stale and no new construction.
func TestDegradeStaleServe(t *testing.T) {
	s := New(Config{CacheSize: 32, Workers: 2, Queue: 16, PlanTimeout: 2 * time.Second, Degrade: true})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	// Warm the cache with a full-budget plan (cost model is cold, so no
	// degradation yet), then make both cost modes look hopeless.
	if resp, body := get(t, ts.URL+"/plan?n=9"); resp.StatusCode != http.StatusOK {
		t.Fatalf("warming /plan = %d (%s)", resp.StatusCode, body)
	}
	in := instance.AllToAll(9)
	s.costs.observe(modeFull, in, time.Hour)
	s.costs.observe(modeDegraded, in, time.Hour)
	executedBefore := s.pool.Stats().Executed

	resp, body := get(t, ts.URL+"/plan?n=9")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale-servable /plan = %d (%s), want 200", resp.StatusCode, body)
	}
	var plan planResponse
	if err := json.Unmarshal(body, &plan); err != nil {
		t.Fatal(err)
	}
	if !plan.Stale || !plan.Degraded || !plan.CacheHit {
		t.Fatalf("plan = (stale=%v, degraded=%v, cacheHit=%v), want all true", plan.Stale, plan.Degraded, plan.CacheHit)
	}
	if got := resp.Header.Get("X-Degraded"); got != "stale" {
		t.Fatalf("X-Degraded = %q, want stale", got)
	}
	if ex := s.pool.Stats().Executed; ex != executedBefore {
		t.Fatalf("stale serve executed %d new pool jobs", ex-executedBefore)
	}

	_, metrics := get(t, ts.URL+"/metrics")
	if !strings.Contains(string(metrics), "cycled_degraded_stale_total 1") {
		t.Fatalf("metrics missing the stale-serve count:\n%s", metrics)
	}
}

// TestReadyzLifecycle walks /readyz through the states a load balancer
// sees: ready, starting (SetReady false), draining — while /livez and
// its /healthz alias stay 200 throughout.
func TestReadyzLifecycle(t *testing.T) {
	s, ts := newTestServer(t)

	resp, body := get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ready": true`) {
		t.Fatalf("/readyz at boot = %d (%s), want 200 ready", resp.StatusCode, body)
	}

	s.SetReady(false)
	if resp, body := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "starting") {
		t.Fatalf("/readyz while starting = %d (%s), want 503 starting", resp.StatusCode, body)
	}
	s.SetReady(true)

	s.StartDrain()
	if resp, body := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Fatalf("/readyz while draining = %d (%s), want 503 draining", resp.StatusCode, body)
	}

	// Liveness is a different question: the process is up the whole time.
	for _, path := range []string{"/livez", "/healthz"} {
		resp, body := get(t, ts.URL+path)
		if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"status": "ok"`) {
			t.Fatalf("%s while draining = %d (%s), want 200 ok", path, resp.StatusCode, body)
		}
	}
}

// TestBatchDisconnectShedsRemainingSlots pins the disconnect bugfix: a
// dropped /plan/batch reader stops spawning constructions — slots not
// yet started fail in place without ever touching the pool.
func TestBatchDisconnectShedsRemainingSlots(t *testing.T) {
	s := New(Config{CacheSize: 32, Workers: 1, Queue: 16})
	defer s.Close()
	g := registerGate(t, "batch-disconnect-gate")

	const items = 12
	var body strings.Builder
	for i := 0; i < items; i++ {
		fmt.Fprintf(&body, "{\"n\": %d, \"strategy\": %q}\n", 5+i, g.name)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req := httptest.NewRequest(http.MethodPost, "/plan/batch", strings.NewReader(body.String())).WithContext(ctx)
	rec := httptest.NewRecorder()
	handlerDone := make(chan struct{})
	go func() {
		s.Handler().ServeHTTP(rec, req)
		close(handlerDone)
	}()

	// Let the first slot reach its construction, then drop the client.
	waitStarted(t, g)
	cancel()
	select {
	case <-handlerDone:
	case <-time.After(10 * time.Second):
		t.Fatal("batch handler never returned after disconnect")
	}

	if got := g.calls.Load(); got != 1 {
		t.Fatalf("%d constructions started for a disconnected batch, want 1", got)
	}
	// The handler detaches from the in-flight job before the worker
	// finalizes it, so give the executed counter a moment to land — and
	// then make sure it never climbs past the one admitted job.
	deadline := time.Now().Add(5 * time.Second)
	for s.pool.Stats().Executed < 1 {
		if time.Now().After(deadline) {
			t.Fatal("the one admitted job never executed")
		}
		time.Sleep(time.Millisecond)
	}
	if ex := s.pool.Stats().Executed; ex != 1 {
		t.Fatalf("pool executed %d jobs for a disconnected batch, want 1", ex)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != items {
		t.Fatalf("batch answered %d lines, want %d (every slot reports)", len(lines), items)
	}
	cancelled := 0
	for _, ln := range lines {
		var line batchPlanLine
		if err := json.Unmarshal([]byte(ln), &line); err != nil {
			t.Fatalf("bad batch line %q: %v", ln, err)
		}
		if strings.Contains(line.Error, "batch cancelled") {
			cancelled++
		}
	}
	if cancelled != items-1 {
		t.Fatalf("%d slots failed in place, want %d", cancelled, items-1)
	}
}

// TestRetryAfterTracksLatency: the 429 Retry-After hint follows the
// observed job-latency EWMA, clamped to [1s, 60s].
func TestRetryAfterTracksLatency(t *testing.T) {
	a := newAdmission(1, 0, NewPool(1, 1))
	if got := func() int { a.mu.Lock(); defer a.mu.Unlock(); return a.retryAfterLocked() }(); got != minRetryAfter {
		t.Fatalf("cold Retry-After = %d, want %d", got, minRetryAfter)
	}
	a.observe(3 * time.Second)
	if got := func() int { a.mu.Lock(); defer a.mu.Unlock(); return a.retryAfterLocked() }(); got != 3 {
		t.Fatalf("Retry-After after a 3s job = %d, want 3", got)
	}
	for i := 0; i < 50; i++ {
		a.observe(10 * time.Minute)
	}
	if got := func() int { a.mu.Lock(); defer a.mu.Unlock(); return a.retryAfterLocked() }(); got != maxRetryAfter {
		t.Fatalf("Retry-After under pathological latency = %d, want the %d clamp", got, maxRetryAfter)
	}
}

package survive

import (
	"testing"

	"github.com/cyclecover/cyclecover/internal/construct"
	"github.com/cyclecover/cyclecover/internal/graph"
	"github.com/cyclecover/cyclecover/internal/ring"
	"github.com/cyclecover/cyclecover/internal/wdm"
)

// TestEvaluateZeroAllocs pins the innermost sweep loop: classifying every
// demand of a scenario (unaffected / restored / lost) is pure integer
// arithmetic over the resolved routes and allocates nothing — for k = 1
// and for multi-failure link sets alike.
func TestEvaluateZeroAllocs(t *testing.T) {
	res, err := construct.AllToAll(11)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := wdm.Plan(res.Covering, graph.Complete(11))
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSimulator(nw)
	sc := &sweepScratch{}
	demands, err := sim.demandRoutes(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, links := range [][]ring.Link{{0}, {2, 7}, {1, 4, 9}} {
		links := links
		tally := sim.evaluate(links, demands)
		if tally.unaffected+tally.affected+tally.lost != len(demands) {
			t.Fatalf("tally %+v does not partition %d demands", tally, len(demands))
		}
		if avg := testing.AllocsPerRun(200, func() {
			sim.evaluate(links, demands)
		}); avg != 0 {
			t.Fatalf("evaluate(%v) allocated %.2f/op, want 0", links, avg)
		}
	}
}

// TestDemandRoutesReuse pins the per-sweep fixed cost: resolving the
// demand routes into a warm scratch allocates nothing.
func TestDemandRoutesReuse(t *testing.T) {
	res, err := construct.AllToAll(9)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := wdm.Plan(res.Covering, graph.Complete(9))
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSimulator(nw)
	sc := &sweepScratch{}
	if _, err := sim.demandRoutes(sc); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if _, err := sim.demandRoutes(sc); err != nil {
			t.Error(err)
		}
	}); avg != 0 {
		t.Fatalf("warm demandRoutes allocated %.2f/op, want 0", avg)
	}
}

package survive

import (
	"fmt"
	"testing"

	"github.com/cyclecover/cyclecover/internal/construct"
	"github.com/cyclecover/cyclecover/internal/graph"
	"github.com/cyclecover/cyclecover/internal/ring"
	"github.com/cyclecover/cyclecover/internal/wdm"
)

// benchSimulator plans the all-to-all network once per size.
func benchSimulator(b *testing.B, n int) *Simulator {
	b.Helper()
	res, err := construct.AllToAll(n)
	if err != nil {
		b.Fatal(err)
	}
	nw, err := wdm.Plan(res.Covering, graph.Complete(n))
	if err != nil {
		b.Fatal(err)
	}
	return NewSimulator(nw)
}

// BenchmarkSweep measures the k-failure sweep engine, serial vs fanned
// out, on the workloads EXPERIMENTS.md §F reports: exhaustive k = 1 and
// k = 2, and a 512-scenario sampled k = 3, all over the K_33 plan (55
// subnetworks, 528 demands).
func BenchmarkSweep(b *testing.B) {
	sim := benchSimulator(b, 33)
	for _, bc := range []struct {
		name string
		opts SweepOptions
	}{
		{"k1-serial", SweepOptions{K: 1, Workers: 1}},
		{"k1-parallel", SweepOptions{K: 1}},
		{"k2-serial", SweepOptions{K: 2, Workers: 1}},
		{"k2-parallel", SweepOptions{K: 2}},
		{"k3-sampled512-serial", SweepOptions{K: 3, Sample: 512, Seed: 1, Workers: 1}},
		{"k3-sampled512-parallel", SweepOptions{K: 3, Sample: 512, Seed: 1}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := sim.Sweep(bc.opts)
				if err != nil {
					b.Fatal(err)
				}
				if res.Evaluated == 0 {
					b.Fatal("empty sweep")
				}
			}
		})
	}
}

// BenchmarkSweepEvaluate is the pinned sweep hot path: one scenario
// classification over the K_33 plan's 528 resolved demand routes — the
// loop a sweep runs once per scenario. CI runs it under -benchmem and
// fails on allocs/op > 0 (see the alloc gate in ci.yml);
// TestEvaluateZeroAllocs pins the same contract as a test.
func BenchmarkSweepEvaluate(b *testing.B) {
	sim := benchSimulator(b, 33)
	sc := &sweepScratch{}
	demands, err := sim.demandRoutes(sc)
	if err != nil {
		b.Fatal(err)
	}
	links := []ring.Link{3, 17}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := sim.evaluate(links, demands)
		if t.unaffected+t.affected+t.lost != len(demands) {
			b.Fatal("tally does not partition the demands")
		}
	}
}

// BenchmarkSweepScaling sweeps k = 2 exhaustively across ring sizes —
// the scenario count grows quadratically, the per-scenario cost with the
// demand count.
func BenchmarkSweepScaling(b *testing.B) {
	for _, n := range []int{9, 17, 33} {
		sim := benchSimulator(b, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.Sweep(SweepOptions{K: 2}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

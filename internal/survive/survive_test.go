package survive

import (
	"testing"

	"github.com/cyclecover/cyclecover/internal/construct"
	"github.com/cyclecover/cyclecover/internal/graph"
	"github.com/cyclecover/cyclecover/internal/ring"
	"github.com/cyclecover/cyclecover/internal/wdm"
)

func simulator(t *testing.T, n int) *Simulator {
	t.Helper()
	res, err := construct.AllToAll(n)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := wdm.Plan(res.Covering, graph.Complete(n))
	if err != nil {
		t.Fatal(err)
	}
	return NewSimulator(nw)
}

// TestEverySingleFailureRestored is the survivability property the whole
// design exists for: any single link failure leaves every demand served.
func TestEverySingleFailureRestored(t *testing.T) {
	for _, n := range []int{4, 5, 6, 7, 9, 11, 14} {
		sim := simulator(t, n)
		sweep, err := sim.Sweep(SweepOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !sweep.AllRestored {
			t.Fatalf("n=%d: %d demands lost under single failure", n, sweep.TotalLost)
		}
		if sweep.TotalAffected == 0 {
			t.Fatalf("n=%d: some failures must affect some demands", n)
		}
		if !sweep.Complete || sweep.Sampled {
			t.Fatalf("n=%d: single-failure sweep must be exhaustive: %+v", n, sweep)
		}
	}
}

func TestFailReportBookkeeping(t *testing.T) {
	sim := simulator(t, 7)
	rep, err := sim.Fail(0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Restored() {
		t.Fatal("single failure must be fully restored")
	}
	total := rep.Unaffected + len(rep.Affected)
	if total != 21 {
		t.Fatalf("accounted %d demands, want 21", total)
	}
	if rep.RestorationRate() != 1.0 {
		t.Fatalf("restoration rate %f, want 1", rep.RestorationRate())
	}
	// Working + spare lengths always sum to n for ring protection.
	for _, rr := range rep.Affected {
		if rr.WorkingLen+rr.SpareLen != 7 {
			t.Errorf("reroute %v: %d+%d != 7", rr.Request, rr.WorkingLen, rr.SpareLen)
		}
		if rr.WorkingLen < 1 || rr.SpareLen < 1 {
			t.Errorf("degenerate reroute %v", rr)
		}
	}
}

func TestEveryLinkFailureAffectsEverySubnetwork(t *testing.T) {
	// A subnetwork's working arcs tile the ring, so every link failure
	// breaks exactly one working arc per subnetwork — i.e. the number of
	// affected requests per failure equals the number of subnetworks.
	sim := simulator(t, 9)
	for l := 0; l < 9; l++ {
		rep, err := sim.Fail(ring.Link(l))
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Affected) != len(sim.nw.Subnets) {
			t.Fatalf("link %d: %d affected, want one per subnetwork (%d)",
				l, len(rep.Affected), len(sim.nw.Subnets))
		}
	}
}

func TestDoubleFailures(t *testing.T) {
	sim := simulator(t, 8)
	sweep, err := sim.Sweep(SweepOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	mean, worst := sweep.MeanRestoration, sweep.WorstRestoration
	if worst > mean || mean > 1 {
		t.Fatalf("mean %f, worst %f: inconsistent", mean, worst)
	}
	if worst == 1 {
		t.Fatal("some double failure must lose traffic on a ring")
	}
	if worst <= 0 {
		t.Fatal("protection should still save some demands")
	}
	if sweep.Scenarios != 28 || sweep.Planned != 28 || !sweep.Complete {
		t.Fatalf("C(8,2) sweep bookkeeping wrong: %+v", sweep)
	}
	if sweep.AllRestored || sweep.LossyScenarios == 0 || len(sweep.Critical) == 0 {
		t.Fatalf("double-failure loss must be attributed: %+v", sweep)
	}
	if len(sweep.Worst) != 1 || sweep.Worst[0].Lost == 0 {
		t.Fatalf("worst scenario must be retained: %+v", sweep.Worst)
	}
	// The worst scenario must replay to the same outcome through Fail.
	rep, err := sim.Fail(sweep.Worst[0].Links...)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Lost) != sweep.Worst[0].Lost || len(rep.Affected) != sweep.Worst[0].Affected {
		t.Fatalf("worst scenario replay disagrees: report %+v, Fail lost %d affected %d",
			sweep.Worst[0], len(rep.Lost), len(rep.Affected))
	}
}

func TestAdjacentDoubleFailureIsolatesNode(t *testing.T) {
	// Failing both links at node v cuts v off: every demand at v dies;
	// demands not involving v survive (their cycle's spare path may pass
	// v's links though). At minimum, all n−1 demands at v must be lost.
	sim := simulator(t, 6)
	rep, err := sim.Fail(ring.Link(5), ring.Link(0)) // isolates vertex 0
	if err != nil {
		t.Fatal(err)
	}
	lostAt0 := 0
	for _, e := range rep.Lost {
		if e.U == 0 || e.V == 0 {
			lostAt0++
		}
	}
	if lostAt0 != 5 {
		t.Fatalf("%d demands at the isolated node lost, want 5", lostAt0)
	}
}

func TestFailValidation(t *testing.T) {
	sim := simulator(t, 5)
	if _, err := sim.Fail(ring.Link(9)); err == nil {
		t.Fatal("out-of-range link: want error")
	}
	rep, err := sim.Fail()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Affected) != 0 || len(rep.Lost) != 0 || rep.Unaffected != 10 {
		t.Fatal("no failures: everything unaffected")
	}
}

func TestSweepMetrics(t *testing.T) {
	sim := simulator(t, 9)
	sweep, err := sim.Sweep(SweepOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Scenarios != 9 || sweep.Evaluated != 9 {
		t.Errorf("scenario counts = %d/%d, want 9/9", sweep.Scenarios, sweep.Evaluated)
	}
	if sweep.MaxSpareLen >= 9 || sweep.MaxSpareLen < 1 {
		t.Errorf("MaxSpareLen = %d out of range", sweep.MaxSpareLen)
	}
	if sweep.SumWorkingLen+sweep.SumSpareLen != 9*sweep.TotalAffected {
		t.Error("per-reroute working+spare must sum to n")
	}
	if sweep.MostAffected.Affected < 1 || len(sweep.MostAffected.Links) != 1 {
		t.Errorf("worst link must affect someone: %+v", sweep.MostAffected)
	}
	if sweep.MeanRestoration != 1 || sweep.WorstRestoration != 1 {
		t.Errorf("single failures fully restored: mean %f worst %f",
			sweep.MeanRestoration, sweep.WorstRestoration)
	}
}

func TestPartialDemandSurvivability(t *testing.T) {
	// Greedy-covered hub traffic must also be single-failure survivable.
	r := ring.MustNew(10)
	demand := graph.New(10)
	for v := 1; v < 10; v++ {
		demand.AddEdge(0, v)
	}
	cv := construct.Greedy(r, demand)
	nw, err := wdm.Plan(cv, demand)
	if err != nil {
		t.Fatal(err)
	}
	sweep, err := NewSimulator(nw).Sweep(SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sweep.AllRestored {
		t.Fatal("hub demand must survive single failures")
	}
}

package survive

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"github.com/cyclecover/cyclecover/internal/construct"
	"github.com/cyclecover/cyclecover/internal/graph"
	"github.com/cyclecover/cyclecover/internal/instance"
	"github.com/cyclecover/cyclecover/internal/ring"
	"github.com/cyclecover/cyclecover/internal/wdm"
)

// network plans a WDM design for an arbitrary demand spec.
func network(t *testing.T, n int, spec string) *wdm.Network {
	t.Helper()
	in, err := instance.Parse(n, spec)
	if err != nil {
		t.Fatal(err)
	}
	r := ring.MustNew(n)
	var cv *construct.Result
	if lam, ok := construct.UniformLambda(in.Demand); ok && lam == 1 {
		res, err := construct.AllToAll(n)
		if err != nil {
			t.Fatal(err)
		}
		cv = &res
	} else if ok {
		res, err := construct.Lambda(n, lam)
		if err != nil {
			t.Fatal(err)
		}
		cv = &res
	} else {
		g := construct.Greedy(r, in.Demand)
		cv = &construct.Result{Covering: g}
	}
	nw, err := wdm.Plan(cv.Covering, in.Demand)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// TestParallelSweepMatchesSerial is the determinism acceptance gate: for
// every demand family and every ring size the service accepts down at
// the small end, the parallel sweep's aggregate report must be
// bit-identical to the serial sweep's — for k = 1 (exhaustive), k = 2
// (exhaustive) and sampled k = 3.
func TestParallelSweepMatchesSerial(t *testing.T) {
	specs := func(n int) []string {
		return []string{
			"alltoall",
			"lambda:2",
			"lambda:3",
			"hub:0",
			fmt.Sprintf("hub:%d", n-1),
			"neighbors",
			"random:0.3:5",
			"random:0.8:11",
			"random:0:1",
			"random:1:2",
		}
	}
	for n := 3; n <= 16; n++ {
		for _, spec := range specs(n) {
			t.Run(fmt.Sprintf("n=%d/%s", n, spec), func(t *testing.T) {
				sim := NewSimulator(network(t, n, spec))
				for _, opts := range []SweepOptions{
					{K: 1},
					{K: 2, KeepWorst: 3},
					{K: 3, Sample: 10, Seed: 42, KeepWorst: 2},
				} {
					if opts.K > n {
						continue
					}
					serial, parallel := opts, opts
					serial.Workers = 1
					parallel.Workers = 4
					want, err := sim.Sweep(serial)
					if err != nil {
						t.Fatal(err)
					}
					got, err := sim.Sweep(parallel)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("k=%d: parallel sweep diverges from serial:\nserial:   %+v\nparallel: %+v",
							opts.K, want, got)
					}
				}
			})
		}
	}
}

// TestSweepSingleMatchesFail cross-checks the sweep's lean evaluation
// path against the reference Fail reports, link by link.
func TestSweepSingleMatchesFail(t *testing.T) {
	sim := NewSimulator(network(t, 11, "alltoall"))
	sweep, err := sim.Sweep(SweepOptions{K: 1, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	affected, working, spare, maxSpare := 0, 0, 0, 0
	for l := 0; l < 11; l++ {
		rep, err := sim.Fail(ring.Link(l))
		if err != nil {
			t.Fatal(err)
		}
		affected += len(rep.Affected)
		for _, rr := range rep.Affected {
			working += rr.WorkingLen
			spare += rr.SpareLen
			if rr.SpareLen > maxSpare {
				maxSpare = rr.SpareLen
			}
		}
	}
	if sweep.TotalAffected != affected || sweep.SumWorkingLen != working ||
		sweep.SumSpareLen != spare || sweep.MaxSpareLen != maxSpare {
		t.Fatalf("sweep %+v disagrees with Fail totals (affected %d, working %d, spare %d, max %d)",
			sweep, affected, working, spare, maxSpare)
	}
}

// TestSamplerDeterminism pins the k ≥ 3 contract: the sampled scenario
// set is a pure function of the seed (and differs across seeds on any
// space large enough to make a collision implausible).
func TestSamplerDeterminism(t *testing.T) {
	a := sampleScenarios(16, 3, 20, 7, binomial(16, 3))
	b := sampleScenarios(16, 3, 20, 7, binomial(16, 3))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different scenario sets:\n%v\n%v", a, b)
	}
	c := sampleScenarios(16, 3, 20, 8, binomial(16, 3))
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced the identical 20-scenario sample of C(16,3)")
	}
	for _, ss := range [][][]ring.Link{a, c} {
		seen := map[string]bool{}
		for _, s := range ss {
			if len(s) != 3 {
				t.Fatalf("scenario %v is not a 3-subset", s)
			}
			if s[0] >= s[1] || s[1] >= s[2] {
				t.Fatalf("scenario %v not sorted", s)
			}
			key := fmt.Sprint(s)
			if seen[key] {
				t.Fatalf("duplicate scenario %v", s)
			}
			seen[key] = true
		}
	}
	// The dense regime (sample > space/2) goes through the
	// shuffle-and-truncate path; it must be deterministic too.
	d := sampleScenarios(7, 3, 30, 3, binomial(7, 3))
	e := sampleScenarios(7, 3, 30, 3, binomial(7, 3))
	if len(d) != 30 || !reflect.DeepEqual(d, e) {
		t.Fatalf("dense sampling not deterministic: %d scenarios", len(d))
	}
}

// TestSweepSampledVsExhaustive pins when sampling kicks in: a k = 3
// space within Sample is enumerated and Complete; a larger one is
// sampled, reports Complete = false, and reproduces per seed.
func TestSweepSampledVsExhaustive(t *testing.T) {
	sim := NewSimulator(network(t, 9, "alltoall")) // C(9,3) = 84
	full, err := sim.Sweep(SweepOptions{K: 3, Sample: 84})
	if err != nil {
		t.Fatal(err)
	}
	if full.Sampled || !full.Complete || full.Planned != 84 {
		t.Fatalf("fitting space must enumerate: %+v", full)
	}
	s1, err := sim.Sweep(SweepOptions{K: 3, Sample: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !s1.Sampled || s1.Complete || s1.Planned != 20 || s1.Scenarios != 84 {
		t.Fatalf("oversized space must sample: %+v", s1)
	}
	s2, err := sim.Sweep(SweepOptions{K: 3, Sample: 20, Seed: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("same seed must reproduce the sampled sweep:\n%+v\n%+v", s1, s2)
	}
}

// TestSweepBudgetTruncates: the MaxScenarios budget cuts the
// deterministic scenario sequence up front, so a bounded sweep is
// reproducible and honestly reports Complete = false.
func TestSweepBudgetTruncates(t *testing.T) {
	sim := NewSimulator(network(t, 10, "alltoall"))
	a, err := sim.Sweep(SweepOptions{K: 2, MaxScenarios: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Planned != 7 || a.Evaluated != 7 || a.Complete || a.Scenarios != 45 {
		t.Fatalf("budget must truncate to 7 of 45: %+v", a)
	}
	b, err := sim.Sweep(SweepOptions{K: 2, MaxScenarios: 7, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("budget-cut sweep must not depend on workers:\n%+v\n%+v", a, b)
	}
}

// TestSweepValidatesK: a k outside [1, links] is an input error, not a
// crash or a silent empty sweep.
func TestSweepValidatesK(t *testing.T) {
	sim := NewSimulator(network(t, 6, "alltoall"))
	for _, k := range []int{-1, 7} {
		if _, err := sim.Sweep(SweepOptions{K: k}); err == nil {
			t.Errorf("k=%d: want error", k)
		}
	}
	// k = n (all links down) is legal: everything is lost.
	all, err := sim.Sweep(SweepOptions{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	if all.WorstRestoration != 0 || all.TotalLost == 0 {
		t.Fatalf("failing every link must lose everything: %+v", all)
	}
}

// TestSweepCancellation cancels a large sweep mid-flight: the call must
// return promptly with the context error and a partial, internally
// consistent aggregate, and must not leak its workers.
func TestSweepCancellation(t *testing.T) {
	sim := NewSimulator(network(t, 16, "lambda:3"))
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	done := make(chan struct{})
	var res SweepResult
	var err error
	go func() {
		defer close(done)
		close(started)
		// C(16,2)=120 scenarios rerun many times to give cancel a window.
		for i := 0; i < 10000; i++ {
			res, err = sim.SweepCtx(ctx, SweepOptions{K: 2, Workers: 4})
			if err != nil {
				return
			}
		}
	}()
	<-started
	time.Sleep(2 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled sweep did not return")
	}
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Complete {
		t.Fatal("a cancelled sweep must not claim completeness")
	}
	if res.Evaluated > res.Planned {
		t.Fatalf("evaluated %d > planned %d", res.Evaluated, res.Planned)
	}
	// The partial aggregate must still be internally consistent.
	if res.LossyScenarios > res.Evaluated {
		t.Fatalf("lossy %d > evaluated %d", res.LossyScenarios, res.Evaluated)
	}
	// No leaked workers: the goroutine count settles back.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, g)
	}
}

// TestSweepPreCancelled: a context that is already dead yields an empty
// partial result and the context error — no evaluation happens.
func TestSweepPreCancelled(t *testing.T) {
	sim := NewSimulator(network(t, 8, "alltoall"))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := sim.SweepCtx(ctx, SweepOptions{K: 2})
	if err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
	if res.Evaluated != 0 || res.Complete {
		t.Fatalf("pre-cancelled sweep evaluated %d scenarios", res.Evaluated)
	}
}

// TestSweepRejectsUnroutedDemand: a network whose assignment is missing
// a demand (a malformed, hand-built design) must fail the sweep with an
// error — the Fail contract — never report it unaffected.
func TestSweepRejectsUnroutedDemand(t *testing.T) {
	nw := network(t, 6, "alltoall")
	broken := *nw
	broken.Assignment = map[graph.Edge]int{} // drop every route
	if _, err := NewSimulator(&broken).Sweep(SweepOptions{K: 1}); err == nil {
		t.Fatal("sweeping an unrouted demand: want error")
	}
}

// TestSweepEmptyDemand: sweeping a network with no demands is a no-op
// with rate 1, never a division by zero.
func TestSweepEmptyDemand(t *testing.T) {
	sim := NewSimulator(network(t, 6, "random:0:1"))
	res, err := sim.Sweep(SweepOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllRestored || res.MeanRestoration != 1 || res.WorstRestoration != 1 {
		t.Fatalf("empty demand: %+v", res)
	}
}

// TestBinomial pins the scenario-space arithmetic, including the
// saturation guard.
func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{5, 1, 5}, {5, 2, 10}, {9, 3, 84}, {16, 2, 120},
		{10, 0, 1}, {10, 10, 1}, {10, 11, 0}, {3, -1, 0},
	}
	for _, c := range cases {
		if got := binomial(c.n, c.k); got != c.want {
			t.Errorf("binomial(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
	if got := binomial(1024, 512); got != int64(1)<<62 {
		t.Errorf("huge binomial must saturate, got %d", got)
	}
}

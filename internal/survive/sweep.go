package survive

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"github.com/cyclecover/cyclecover/internal/fanout"
	"github.com/cyclecover/cyclecover/internal/ring"
	"github.com/cyclecover/cyclecover/internal/scratch"
)

// DefaultSample bounds the sampled scenario set of a k ≥ 3 sweep when
// SweepOptions.Sample is zero. Exhaustive spaces no larger than this are
// enumerated instead of sampled.
const DefaultSample = 1024

// DefaultScenarioLimit bounds the number of scenarios a sweep evaluates
// when SweepOptions.MaxScenarios is zero, mirroring the node budget of
// construct.ExactOptions: determinism comes from a fixed work bound, not
// a wall clock.
const DefaultScenarioLimit = 1 << 20

// SweepOptions configures a k-failure sweep. The zero value runs the
// exhaustive single-failure sweep with one worker per core.
type SweepOptions struct {
	// K is the number of simultaneous link failures per scenario; 0
	// selects 1. K = 1 and K = 2 sweeps are exhaustive (every K-subset of
	// links); K ≥ 3 spaces larger than Sample are sampled.
	K int
	// Workers bounds the worker pool that fans scenario evaluation out.
	// 0 defers to the context's fan-out stamp (fanout.Limit) when one is
	// present — inside a server pool job that is the job's fair share of
	// the cores, so nested parallelism does not multiply — and GOMAXPROCS
	// otherwise; 1 forces the serial sweep. The aggregate report is
	// bit-identical for every worker count: workers accumulate integer
	// tallies into private shards that merge deterministically.
	Workers int
	// Sample bounds the scenario set of a K ≥ 3 sweep; 0 selects
	// DefaultSample. A space no larger than Sample is enumerated
	// exhaustively; a larger one is sampled without replacement by the
	// seeded generator, so the scenario set is a pure function of
	// (links, K, Sample, Seed).
	Sample int
	// Seed drives the K ≥ 3 scenario sampler. Equal seeds reproduce the
	// exact scenario set; it has no effect on exhaustive sweeps.
	Seed int64
	// MaxScenarios caps the number of scenarios evaluated, mirroring
	// ExactOptions.NodeLimit; 0 selects DefaultScenarioLimit. The cap
	// truncates the deterministic scenario sequence before evaluation
	// (never a race), so a budget-cut sweep is still reproducible; it
	// reports Complete = false.
	MaxScenarios int64
	// KeepWorst bounds the per-scenario reports retained in
	// SweepResult.Worst (the lossiest scenarios); 0 selects 1.
	KeepWorst int
}

// ScenarioReport is the structured outcome of one failure scenario.
type ScenarioReport struct {
	// Index is the scenario's position in the sweep's deterministic
	// evaluation sequence; replay it with Simulator.Fail(Links...).
	Index int `json:"index"`
	// Links is the failed link set, in ascending ring order.
	Links []ring.Link `json:"links"`
	// Unaffected, Affected and Lost partition the demands: working arc
	// intact; broken but restored around the cycle; both paths broken.
	Unaffected int `json:"unaffected"`
	Affected   int `json:"affected"`
	Lost       int `json:"lost"`
	// MaxSpareLen is the longest protection path switched onto in this
	// scenario (0 when nothing was rerouted).
	MaxSpareLen int `json:"maxSpareLen"`
	// Rate is the fraction of demands still served.
	Rate float64 `json:"rate"`
}

// LinkCriticality attributes loss to a physical link: across the lossy
// scenarios of a sweep, how often the link was part of the failed set and
// how much demand those scenarios lost.
type LinkCriticality struct {
	Link ring.Link `json:"link"`
	// Scenarios is the number of lossy scenarios whose failed set
	// includes the link.
	Scenarios int `json:"scenarios"`
	// LostDemands sums the lost demands of those scenarios.
	LostDemands int `json:"lostDemands"`
}

// SweepResult aggregates a k-failure sweep. All counters are summed over
// evaluated scenarios; the report is bit-identical for every worker
// count (see SweepOptions.Workers).
type SweepResult struct {
	// K is the failure multiplicity swept.
	K int `json:"k"`
	// Scenarios is the size of the full scenario space: C(links, K).
	Scenarios int64 `json:"scenarios"`
	// Planned is the number of scenarios selected for evaluation after
	// sampling and the MaxScenarios budget.
	Planned int `json:"planned"`
	// Evaluated is the number of scenarios actually evaluated; below
	// Planned only when the sweep was cancelled mid-flight.
	Evaluated int `json:"evaluated"`
	// Sampled reports that the scenario set is a seeded sample, not the
	// full space.
	Sampled bool `json:"sampled"`
	// Seed echoes the sampler seed (meaningful when Sampled).
	Seed int64 `json:"seed"`
	// Complete reports an exhaustive, uninterrupted sweep: every
	// scenario of the space was evaluated. A sampled, budget-cut or
	// cancelled sweep reports false — its aggregates are estimates.
	Complete bool `json:"complete"`

	// AllRestored reports that no evaluated scenario lost any demand.
	AllRestored bool `json:"allRestored"`
	// LossyScenarios counts evaluated scenarios with at least one lost
	// demand.
	LossyScenarios int `json:"lossyScenarios"`
	// MeanRestoration and WorstRestoration are the mean and minimum
	// per-scenario restoration rates (1 when nothing was evaluated).
	MeanRestoration  float64 `json:"meanRestoration"`
	WorstRestoration float64 `json:"worstRestoration"`
	// TotalAffected and TotalLost sum restored and lost demands over all
	// evaluated scenarios.
	TotalAffected int `json:"totalAffected"`
	TotalLost     int `json:"totalLost"`
	// MaxSpareLen is the longest protection path any scenario switched
	// onto; SumSpareLen and SumWorkingLen sum over every restoration
	// (mean spare length = SumSpareLen / TotalAffected).
	MaxSpareLen   int `json:"maxSpareLen"`
	SumSpareLen   int `json:"sumSpareLen"`
	SumWorkingLen int `json:"sumWorkingLen"`

	// Worst holds the KeepWorst lossiest scenarios (most lost demands
	// first, ties toward the earliest scenario index). Worst[0] is the
	// worst case of the sweep; its Lost is the worst-case lost demand.
	Worst []ScenarioReport `json:"worst,omitempty"`
	// MostAffected is the scenario that rerouted the most demands — for
	// K = 1, the single link whose failure stresses protection hardest.
	MostAffected ScenarioReport `json:"mostAffected"`
	// Critical lists, per link appearing in at least one lossy scenario,
	// how much loss it participated in, in ascending link order. Empty
	// when AllRestored.
	Critical []LinkCriticality `json:"critical,omitempty"`
}

// sweepScratch is the reusable working state of one sweep: the resolved
// demand routes, the flat scenario arena, and the per-worker shards. It
// is drawn from a pool shared across all simulators (the same
// scratch-pool type the server layer uses for its response buffers), so
// steady-state sweeps allocate only what escapes into the result.
type sweepScratch struct {
	routes []demandRoute
	scen   [][]ring.Link // scenario views, each a window into flat
	flat   []ring.Link   // scenario link storage, back to back
	shards []sweepShard
}

var sweepScratches = scratch.NewPool(func() *sweepScratch { return &sweepScratch{} })

// Sweep runs SweepCtx without a context.
func (s *Simulator) Sweep(opts SweepOptions) (SweepResult, error) {
	return s.SweepCtx(context.Background(), opts)
}

// SweepCtx evaluates every planned failure scenario of multiplicity
// opts.K against the network and aggregates the outcome.
//
// The scenario sequence is deterministic before any evaluation starts:
// K = 1 and K = 2 enumerate all subsets in lexicographic order; K ≥ 3
// enumerates when the space fits opts.Sample and otherwise samples
// without replacement with the seeded generator. The MaxScenarios budget
// truncates that sequence, so what a bounded sweep measures is
// reproducible.
//
// Evaluation fans out over opts.Workers goroutines, each accumulating
// integer tallies into a private shard; shards merge deterministically,
// so the aggregate report is bit-identical to the serial sweep for every
// worker count. Cancellation is polled per scenario: when ctx fires the
// workers stop within one scenario evaluation, and SweepCtx returns the
// partial aggregate (Complete = false, Evaluated < Planned) together
// with ctx's error. A cancel that lands only after the last scenario
// finished does not fail the call — the fully evaluated sweep is
// returned as success. Which scenarios a cancelled parallel sweep had
// evaluated is timing-dependent; everything else about the sweep is not.
func (s *Simulator) SweepCtx(ctx context.Context, opts SweepOptions) (SweepResult, error) {
	links := s.nw.Ring.Links()
	if opts.K == 0 {
		opts.K = 1
	}
	if opts.K < 0 || opts.K > links {
		return SweepResult{}, fmt.Errorf("survive: k = %d outside [1, %d] for a ring of %d links", opts.K, links, links)
	}
	if opts.Sample <= 0 {
		opts.Sample = DefaultSample
	}
	if opts.MaxScenarios <= 0 {
		opts.MaxScenarios = DefaultScenarioLimit
	}
	if opts.KeepWorst <= 0 {
		opts.KeepWorst = 1
	}
	workers := opts.Workers
	if workers <= 0 {
		if workers = fanout.Limit(ctx); workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
	}

	sc := sweepScratches.Get()
	defer sweepScratches.Put(sc)

	space := binomial(links, opts.K)
	// planScenarios caps every path at the MaxScenarios budget.
	scenarios, sampled := sc.planScenarios(links, opts, space)
	planned := len(scenarios)
	if workers > planned {
		workers = planned
	}
	if workers < 1 {
		workers = 1
	}

	demands, err := s.demandRoutes(sc)
	if err != nil {
		return SweepResult{}, err
	}
	shards := sc.shardsFor(workers, links, opts.KeepWorst)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := &shards[w]
			// Strided partition: worker w owns scenarios w, w+W, w+2W, …
			// The partition is fixed up front, so each scenario's tallies
			// land in one shard regardless of scheduling.
			for i := w; i < planned; i += workers {
				if ctx.Err() != nil {
					return
				}
				sh.add(i, scenarios[i], s.evaluate(scenarios[i], demands))
			}
		}(w)
	}
	wg.Wait()

	res := mergeShards(shards, opts, space, planned, sampled, len(demands))
	if res.Evaluated < planned {
		// Only a context firing makes workers stop early; a cancel that
		// lands after the last scenario finished does not invalidate a
		// fully evaluated sweep.
		if err := ctx.Err(); err != nil {
			return res, err
		}
	}
	return res, nil
}

// scenarioTally is the integer outcome of one scenario evaluation.
type scenarioTally struct {
	unaffected, affected, lost     int
	maxSpare, sumSpare, sumWorking int
}

// demandRoute is a demand's scenario-invariant routing data, resolved
// once per sweep and reduced to plain integers: the working arc's start
// and length, plus the protection complement's (which starts where the
// working arc ends). The evaluation loop then runs pure offset
// arithmetic — no Arc methods, no modulo.
type demandRoute struct {
	wFrom, wl int // working arc: first link, length in links
	sFrom, sl int // spare (complement) arc
}

// demandRoutes resolves every demand's working and spare arc up front
// into the scratch's route buffer. A demand the network does not route is
// an error, exactly as in Fail — silently skipping it would report
// survivability for traffic that was never protected.
func (s *Simulator) demandRoutes(sc *sweepScratch) ([]demandRoute, error) {
	r := s.nw.Ring
	sc.routes = sc.routes[:0]
	var err error
	s.nw.Demand.ForEachEdge(func(u, v, _ int) bool {
		arc, ok := s.nw.WorkingArc(u, v)
		if !ok {
			err = fmt.Errorf("survive: demand {%d,%d} has no subnetwork", u, v)
			return false
		}
		wl := arc.Len(r)
		sc.routes = append(sc.routes, demandRoute{
			wFrom: arc.From, wl: wl,
			sFrom: arc.To, sl: r.N() - wl,
		})
		return true
	})
	if err != nil {
		return nil, err
	}
	return sc.routes, nil
}

// evaluate computes one scenario's tally. It is Fail without the
// per-request reroute records: same classification (unaffected /
// restored / lost) per demand, integer counters only, no allocation on
// the hot path. links must be valid, normalised ring links.
//
//cyclecover:noalloc
func (s *Simulator) evaluate(links []ring.Link, demands []demandRoute) scenarioTally {
	n := s.nw.Ring.N()
	var t scenarioTally
	for i := range demands {
		d := &demands[i]
		if !brokenBy(n, d.wFrom, d.wl, links) {
			t.unaffected++
			continue
		}
		if brokenBy(n, d.sFrom, d.sl, links) {
			t.lost++
			continue
		}
		t.affected++
		t.sumWorking += d.wl
		t.sumSpare += d.sl
		if d.sl > t.maxSpare {
			t.maxSpare = d.sl
		}
	}
	return t
}

// brokenBy reports whether any failed link lies on the clockwise arc of
// `length` links starting at link `from` — Arc.Contains unrolled to a
// branch-only offset test. The failed set is a tiny slice (K links), so a
// linear scan beats a map.
//
//cyclecover:noalloc
func brokenBy(n, from, length int, failed []ring.Link) bool {
	for _, l := range failed {
		d := int(l) - from
		if d < 0 {
			d += n
		}
		if d < length {
			return true
		}
	}
	return false
}

// sweepShard is one worker's private aggregate. All fields are integers
// (or derived from integers at merge time), so merging shards in worker
// order reproduces the serial sweep bit for bit.
type sweepShard struct {
	evaluated     int
	served        int64 // unaffected + affected, summed over scenarios
	totalAffected int
	totalLost     int
	lossy         int
	maxSpare      int
	sumSpare      int
	sumWorking    int
	// most is the shard's most-rerouting scenario; worst its lossiest
	// scenarios (capped at keep).
	most     ScenarioReport
	hasMost  bool
	worst    []ScenarioReport
	keep     int
	minServe int // scenario minimum of served demands, for WorstRestoration
	hasMin   bool
	// critScenarios / critLost index by link: lossy-scenario membership
	// counts and lost-demand sums.
	critScenarios []int
	critLost      []int
}

// shardsFor sizes the scratch's shard array for a sweep, resetting each
// shard's counters and reusing its per-link tally storage.
func (sc *sweepScratch) shardsFor(workers, links, keep int) []sweepShard {
	for len(sc.shards) < workers {
		sc.shards = append(sc.shards, sweepShard{})
	}
	shards := sc.shards[:workers]
	for i := range shards {
		shards[i].reset(links, keep)
	}
	return shards
}

// reset clears the shard for a new sweep, reusing its backing arrays.
func (sh *sweepShard) reset(links, keep int) {
	crit, lost, worst := sh.critScenarios, sh.critLost, sh.worst
	*sh = sweepShard{keep: keep, worst: worst[:0]}
	if cap(crit) < links {
		crit = make([]int, links)
		lost = make([]int, links)
	} else {
		crit, lost = crit[:links], lost[:links]
		clear(crit)
		clear(lost)
	}
	sh.critScenarios, sh.critLost = crit, lost
}

func (sh *sweepShard) add(index int, links []ring.Link, t scenarioTally) {
	sh.evaluated++
	served := t.unaffected + t.affected
	sh.served += int64(served)
	sh.totalAffected += t.affected
	sh.totalLost += t.lost
	sh.sumSpare += t.sumSpare
	sh.sumWorking += t.sumWorking
	if t.maxSpare > sh.maxSpare {
		sh.maxSpare = t.maxSpare
	}
	if !sh.hasMin || served < sh.minServe {
		sh.minServe = served
		sh.hasMin = true
	}
	rep := ScenarioReport{
		Index:       index,
		Links:       links,
		Unaffected:  t.unaffected,
		Affected:    t.affected,
		Lost:        t.lost,
		MaxSpareLen: t.maxSpare,
		Rate:        rate(served, served+t.lost),
	}
	// A retained report escapes the sweep (into SweepResult), while the
	// scenario link sets live in pooled scratch — copy on retention.
	if !sh.hasMost || moreAffected(rep, sh.most) {
		sh.most = rep
		sh.most.Links = append([]ring.Link(nil), links...)
		sh.hasMost = true
	}
	if t.lost > 0 {
		sh.lossy++
		for _, l := range links {
			sh.critScenarios[l]++
			sh.critLost[l] += t.lost
		}
		kept := rep
		kept.Links = append([]ring.Link(nil), links...)
		sh.worst = insertWorst(sh.worst, kept, sh.keep)
	}
}

// rate is the restoration rate served/total, 1 for an empty demand.
func rate(served, total int) float64 {
	if total == 0 {
		return 1
	}
	return float64(served) / float64(total)
}

// moreAffected orders scenarios by reroute pressure: more restored
// demands first, ties toward the earlier scenario index (what a serial
// first-wins scan would keep).
func moreAffected(a, b ScenarioReport) bool {
	if a.Affected != b.Affected {
		return a.Affected > b.Affected
	}
	return a.Index < b.Index
}

// lossier orders scenarios by damage: more lost demands first, ties
// toward the earlier scenario index.
func lossier(a, b ScenarioReport) bool {
	if a.Lost != b.Lost {
		return a.Lost > b.Lost
	}
	return a.Index < b.Index
}

// insertWorst keeps the `keep` lossiest reports in sorted order.
func insertWorst(worst []ScenarioReport, rep ScenarioReport, keep int) []ScenarioReport {
	i := sort.Search(len(worst), func(i int) bool { return lossier(rep, worst[i]) })
	if i == len(worst) {
		if len(worst) < keep {
			worst = append(worst, rep)
		}
		return worst
	}
	if len(worst) < keep {
		worst = append(worst, ScenarioReport{})
	}
	copy(worst[i+1:], worst[i:])
	worst[i] = rep
	return worst
}

// mergeShards folds the workers' private aggregates into the final
// report. Every reduction is either an integer sum, an integer max, or a
// comparator with an index tie-break, so the result does not depend on
// how scenarios were interleaved across workers.
func mergeShards(shards []sweepShard, opts SweepOptions, space int64, planned int, sampled bool, demands int) SweepResult {
	res := SweepResult{
		K:         opts.K,
		Scenarios: space,
		Planned:   planned,
		Sampled:   sampled,
		Seed:      opts.Seed,
	}
	var served int64
	minServe, hasMin := 0, false
	var most ScenarioReport
	hasMost := false
	var worst []ScenarioReport
	links := 0
	for i := range shards {
		sh := &shards[i]
		links = len(sh.critScenarios)
		res.Evaluated += sh.evaluated
		res.TotalAffected += sh.totalAffected
		res.TotalLost += sh.totalLost
		res.LossyScenarios += sh.lossy
		res.SumSpareLen += sh.sumSpare
		res.SumWorkingLen += sh.sumWorking
		served += sh.served
		if sh.maxSpare > res.MaxSpareLen {
			res.MaxSpareLen = sh.maxSpare
		}
		if sh.hasMin && (!hasMin || sh.minServe < minServe) {
			minServe = sh.minServe
			hasMin = true
		}
		if sh.hasMost && (!hasMost || moreAffected(sh.most, most)) {
			most = sh.most
			hasMost = true
		}
		for _, rep := range sh.worst {
			worst = insertWorst(worst, rep, opts.KeepWorst)
		}
	}
	res.AllRestored = res.TotalLost == 0
	res.Complete = !sampled && res.Evaluated == planned && int64(planned) == space
	res.MostAffected = most
	res.Worst = worst
	res.MeanRestoration, res.WorstRestoration = 1, 1
	if res.Evaluated > 0 && demands > 0 {
		res.MeanRestoration = float64(served) / (float64(res.Evaluated) * float64(demands))
		res.WorstRestoration = rate(minServe, demands)
	}
	if res.LossyScenarios > 0 {
		crit := make([]LinkCriticality, 0, links)
		for l := 0; l < links; l++ {
			sc, lost := 0, 0
			for i := range shards {
				sc += shards[i].critScenarios[l]
				lost += shards[i].critLost[l]
			}
			if sc > 0 {
				crit = append(crit, LinkCriticality{Link: ring.Link(l), Scenarios: sc, LostDemands: lost})
			}
		}
		res.Critical = crit
	}
	return res
}

// binomial returns C(n, k), saturating at 1<<62 so huge spaces report a
// finite size without overflow.
func binomial(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	const cap62 = int64(1) << 62
	v := int64(1)
	for i := 1; i <= k; i++ {
		// v is exact at each step because C(n,k) prefixes are integers;
		// multiply before divide, guarding the overflow.
		if v > cap62/int64(n-k+i) {
			return cap62
		}
		v = v * int64(n-k+i) / int64(i)
	}
	return v
}

// planScenarios fixes the deterministic scenario sequence for the sweep:
// lexicographic enumeration when the space fits the budget (always for
// K ≤ 2, and for K ≥ 3 spaces no larger than Sample), a seeded sample
// without replacement otherwise. The budget cap is applied by the
// caller; enumeration stops early at MaxScenarios so a truncated sweep
// never materialises the whole space. The exhaustive path fills the
// scratch's flat scenario arena — no per-scenario allocation in steady
// state; the sequence is identical either way.
func (sc *sweepScratch) planScenarios(links int, opts SweepOptions, space int64) (scenarios [][]ring.Link, sampled bool) {
	limit := opts.MaxScenarios
	if opts.K <= 2 || space <= int64(opts.Sample) {
		return sc.enumerate(links, opts.K, limit), false
	}
	if limit > int64(opts.Sample) {
		limit = int64(opts.Sample)
	}
	return sampleScenarios(links, opts.K, int(limit), opts.Seed, space), true
}

// combinations yields the first `limit` K-subsets of [0, links) in
// lexicographic order, passing the current index set to yield; yield
// returning false stops the walk. The index slice is reused between
// calls and must be copied out by the consumer.
func combinations(links, k int, limit int64, idx []int, yield func([]int) bool) {
	if k == 0 || int64(len(idx)) != int64(k) {
		return
	}
	for i := range idx {
		idx[i] = i
	}
	for count := int64(0); count < limit; count++ {
		if !yield(idx) {
			return
		}
		// Advance to the next combination.
		i := k - 1
		for i >= 0 && idx[i] == links-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// enumerate lists the first `limit` K-subsets of the links in
// lexicographic order as windows into the scratch's flat arena.
func (sc *sweepScratch) enumerate(links, k int, limit int64) [][]ring.Link {
	sc.scen = sc.scen[:0]
	sc.flat = sc.flat[:0]
	if k == 0 {
		return append(sc.scen, []ring.Link{})
	}
	// Pre-size the arena so subslice windows are never split across a
	// growth reallocation.
	want := limit
	if space := binomial(links, k); space < want {
		want = space
	}
	if need := int(want) * k; cap(sc.flat) < need {
		sc.flat = make([]ring.Link, 0, need)
	}
	var idxArr [8]int // K is tiny (cycled caps it at 6); spill only beyond
	var idxs []int
	if k <= len(idxArr) {
		idxs = idxArr[:k]
	} else {
		idxs = make([]int, k)
	}
	combinations(links, k, limit, idxs, func(combo []int) bool {
		off := len(sc.flat)
		for _, v := range combo {
			sc.flat = append(sc.flat, ring.Link(v))
		}
		sc.scen = append(sc.scen, sc.flat[off:len(sc.flat):len(sc.flat)])
		return true
	})
	return sc.scen
}

// enumerate lists the first `limit` K-subsets as freshly allocated
// slices — the sampler's dense-regime fallback, which shuffles and
// retains them beyond any scratch lifetime.
func enumerate(links, k int, limit int64) [][]ring.Link {
	if k == 0 {
		return [][]ring.Link{{}}
	}
	var out [][]ring.Link
	combinations(links, k, limit, make([]int, k), func(combo []int) bool {
		scenario := make([]ring.Link, k)
		for i, v := range combo {
			scenario[i] = ring.Link(v)
		}
		out = append(out, scenario)
		return true
	})
	return out
}

// sampleScenarios draws `count` distinct K-subsets with the seeded
// generator and returns them in lexicographic order — a pure function of
// (links, k, count, seed). When the requested sample covers more than
// half the space, rejection sampling degrades, so the full space is
// enumerated (it is at most 2·count subsets) and shuffled instead.
func sampleScenarios(links, k, count int, seed int64, space int64) [][]ring.Link {
	rng := rand.New(rand.NewSource(seed))
	if space <= 2*int64(count) {
		all := enumerate(links, k, space)
		rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
		all = all[:count]
		sortScenarios(all)
		return all
	}
	seen := make(map[string]bool, count)
	out := make([][]ring.Link, 0, count)
	buf := make([]byte, 2*k)
	for len(out) < count {
		combo := randomSubset(rng, links, k)
		for i, l := range combo {
			buf[2*i] = byte(l)
			buf[2*i+1] = byte(int(l) >> 8)
		}
		key := string(buf)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, combo)
	}
	sortScenarios(out)
	return out
}

// randomSubset draws a uniform k-subset of [0, links) by Floyd's
// algorithm and returns it sorted.
func randomSubset(rng *rand.Rand, links, k int) []ring.Link {
	chosen := make(map[int]bool, k)
	for j := links - k; j < links; j++ {
		t := rng.Intn(j + 1)
		if chosen[t] {
			chosen[j] = true
		} else {
			chosen[t] = true
		}
	}
	out := make([]ring.Link, 0, k)
	//cyclecover:nondet keys are sorted immediately below before any use
	for v := range chosen {
		out = append(out, ring.Link(v))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// sortScenarios orders scenario link sets lexicographically.
func sortScenarios(ss [][]ring.Link) {
	sort.Slice(ss, func(i, j int) bool {
		a, b := ss[i], ss[j]
		for x := range a {
			if a[x] != b[x] {
				return a[x] < b[x]
			}
		}
		return false
	})
}

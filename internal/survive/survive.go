// Package survive simulates failures on a planned WDM ring and the
// paper's protection mechanism: each subnetwork (covering cycle) protects
// itself independently — when a link on a request's working arc fails, the
// traffic is switched onto the rest of the cycle, riding the spare
// wavelength the long way around ("in case of failure we reroute the
// traffic through the failed link via the remaining part of the cycle
// using the other half of the capacity").
//
// The simulator verifies the survivability claim that motivates the whole
// construction: every single-link failure is recoverable, because a
// cycle's working arcs partition the ring, so a failed link breaks exactly
// one working arc per subnetwork and the complementary path around the
// cycle is intact. Beyond the guarantee, the sweep engine (SweepCtx)
// measures what independent per-cycle protection delivers under k
// simultaneous failures: there a protection path may itself be broken,
// and the aggregated restoration rates quantify what single-failure
// protection does NOT promise. Sweeps are exhaustive for k ≤ 2,
// deterministically sampled for k ≥ 3, fan scenario evaluation over a
// bounded worker pool with a bit-identical aggregate for every worker
// count, and honour context cancellation mid-sweep. See DESIGN.md §6.
package survive

import (
	"fmt"
	"sort"

	"github.com/cyclecover/cyclecover/internal/graph"
	"github.com/cyclecover/cyclecover/internal/ring"
	"github.com/cyclecover/cyclecover/internal/wdm"
)

// Reroute describes the protection switch for one affected request.
type Reroute struct {
	Request    graph.Edge
	Subnetwork int
	// WorkingLen is the length (links) of the failed working arc;
	// SpareLen of the protection path around the rest of the cycle.
	WorkingLen int
	SpareLen   int
}

// FailureReport summarises the network state under a set of failed links.
type FailureReport struct {
	Failed     []ring.Link
	Affected   []Reroute // requests whose working arc broke and were restored
	Lost       []graph.Edge
	Unaffected int
}

// Restored reports whether every affected request was restored.
func (fr FailureReport) Restored() bool { return len(fr.Lost) == 0 }

// RestorationRate returns the fraction of demands still served.
func (fr FailureReport) RestorationRate() float64 {
	total := fr.Unaffected + len(fr.Affected) + len(fr.Lost)
	if total == 0 {
		return 1
	}
	return float64(fr.Unaffected+len(fr.Affected)) / float64(total)
}

// Simulator drives failure scenarios against a planned network.
type Simulator struct {
	nw *wdm.Network
}

// NewSimulator wraps a planned network.
func NewSimulator(nw *wdm.Network) *Simulator { return &Simulator{nw: nw} }

// Fail simulates the simultaneous failure of the given links and computes,
// per demand, whether it survives: unaffected (working arc intact),
// restored (working arc broken, protection path intact), or lost (both
// broken).
func (s *Simulator) Fail(links ...ring.Link) (FailureReport, error) {
	r := s.nw.Ring
	failed := make(map[ring.Link]bool, len(links))
	for _, l := range links {
		if int(l) < 0 || int(l) >= r.Links() {
			return FailureReport{}, fmt.Errorf("survive: link %d outside ring of %d links", l, r.Links())
		}
		failed[ring.Link(r.Norm(int(l)))] = true
	}
	report := FailureReport{}
	//cyclecover:nondet keys are sorted immediately below before any use
	for l := range failed {
		report.Failed = append(report.Failed, l)
	}
	// The failed-link list is part of the report (and of /simulate-shaped
	// JSON downstream); map order must not leak into output.
	sort.Slice(report.Failed, func(i, j int) bool { return report.Failed[i] < report.Failed[j] })

	for _, e := range s.nw.Demand.Edges() {
		sub, ok := s.nw.SubnetworkFor(e.U, e.V)
		if !ok {
			return FailureReport{}, fmt.Errorf("survive: demand %v has no subnetwork", e)
		}
		arc, _ := s.nw.WorkingArc(e.U, e.V)
		if !arcBroken(r, arc, failed) {
			report.Unaffected++
			continue
		}
		// Protection: the rest of the cycle, i.e. the union of the other
		// working arcs traversed in order — equivalently the complement
		// arc from the request's far endpoint back to the near one.
		spare := r.ArcBetween(arc.To, arc.From)
		if arcBroken(r, spare, failed) {
			report.Lost = append(report.Lost, e)
			continue
		}
		report.Affected = append(report.Affected, Reroute{
			Request:    e,
			Subnetwork: sub.Index,
			WorkingLen: arc.Len(r),
			SpareLen:   spare.Len(r),
		})
	}
	return report, nil
}

func arcBroken(r ring.Ring, a ring.Arc, failed map[ring.Link]bool) bool {
	//cyclecover:nondet order-free any-of predicate; result independent of iteration order
	for l := range failed {
		if a.Contains(r, l) {
			return true
		}
	}
	return false
}

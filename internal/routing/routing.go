// Package routing assigns physical ring paths to logical requests and
// decides the disjoint routing constraint (DRC) for arbitrary cycles.
//
// Package cover works with cycles already in ring order, where the
// canonical clockwise routing is trivially edge-disjoint. This package
// handles the general question the paper's worked example raises: given a
// cycle specified as an arbitrary vertex *sequence* (a Tour), does ANY
// assignment of arcs to its requests exist that is pairwise edge-disjoint?
// It provides both an exhaustive decision procedure and the O(k) structural
// criterion (ring-order test), and the test suite proves them equivalent on
// small rings — the computational certificate for Fact A of DESIGN.md.
package routing

import (
	"fmt"

	"github.com/cyclecover/cyclecover/internal/graph"
	"github.com/cyclecover/cyclecover/internal/ring"
)

// Route is the assignment of one request to one of the two arcs between
// its endpoints.
type Route struct {
	Request graph.Edge
	Arc     ring.Arc
}

// String renders the route for diagnostics.
func (rt Route) String() string {
	return fmt.Sprintf("%v via %v", rt.Request, rt.Arc)
}

// Disjoint reports whether the routes are pairwise link-disjoint.
func Disjoint(r ring.Ring, routes []Route) bool {
	load := make([]int, r.Links())
	for _, rt := range routes {
		for _, l := range rt.Arc.Links(r) {
			if load[l] > 0 {
				return false
			}
			load[l]++
		}
	}
	return true
}

// LinkLoads returns, for each ring link, how many routes traverse it.
func LinkLoads(r ring.Ring, routes []Route) []int {
	load := make([]int, r.Links())
	for _, rt := range routes {
		for _, l := range rt.Arc.Links(r) {
			load[l]++
		}
	}
	return load
}

// Tour is a cycle given as an explicit vertex sequence v_0 → v_1 → … →
// v_{k-1} → v_0. Unlike cover.Cycle it is NOT canonicalised: the order
// matters, because a tour that visits vertices out of ring order has no
// disjoint routing.
type Tour []int

// Requests returns the tour's symmetric requests: each consecutive pair in
// sequence order.
func (t Tour) Requests() []graph.Edge {
	k := len(t)
	reqs := make([]graph.Edge, 0, k)
	for i := 0; i < k; i++ {
		reqs = append(reqs, graph.NewEdge(t[i], t[(i+1)%k]))
	}
	return reqs
}

// Validate checks that the tour has at least three vertices, all distinct
// and on the ring.
func (t Tour) Validate(r ring.Ring) error {
	if len(t) < 3 {
		return fmt.Errorf("routing: tour %v shorter than 3", []int(t))
	}
	seen := make(map[int]bool, len(t))
	for _, v := range t {
		if !r.Valid(v) {
			return fmt.Errorf("routing: tour vertex %d outside ring of size %d", v, r.N())
		}
		if seen[v] {
			return fmt.Errorf("routing: tour %v repeats vertex %d", []int(t), v)
		}
		seen[v] = true
	}
	return nil
}

// IsRingOrdered reports whether the tour visits its vertices in ring
// cyclic order, clockwise or counter-clockwise — the structural criterion
// for DRC-routability. It runs in O(k) after normalising the start.
func (t Tour) IsRingOrdered(r ring.Ring) bool {
	k := len(t)
	if k < 3 {
		return false
	}
	// Clockwise: the gaps t[i] → t[i+1] must sum to exactly n; they always
	// sum to a positive multiple of n, and equal n exactly when the tour
	// wraps once, i.e. visits in clockwise ring order.
	cw := 0
	for i := 0; i < k; i++ {
		cw += r.Gap(t[i], t[(i+1)%k])
	}
	if cw == r.N() {
		return true
	}
	// Counter-clockwise: same test on the reversed tour.
	ccw := 0
	for i := 0; i < k; i++ {
		ccw += r.Gap(t[(i+1)%k], t[i])
	}
	return ccw == r.N()
}

// CanonicalRouting returns the edge-disjoint routing of a ring-ordered
// tour: each consecutive pair uses the arc in the tour's direction of
// travel. ok is false if the tour is not ring-ordered (no disjoint routing
// exists, per the structure theorem).
func (t Tour) CanonicalRouting(r ring.Ring) ([]Route, bool) {
	if !t.IsRingOrdered(r) {
		return nil, false
	}
	// Determine travel direction: clockwise iff clockwise gaps sum to n.
	cw := 0
	k := len(t)
	for i := 0; i < k; i++ {
		cw += r.Gap(t[i], t[(i+1)%k])
	}
	routes := make([]Route, 0, k)
	for i := 0; i < k; i++ {
		u, v := t[i], t[(i+1)%k]
		a := r.ArcBetween(u, v)
		if cw != r.N() { // counter-clockwise travel
			a = r.ArcBetween(v, u)
		}
		routes = append(routes, Route{Request: graph.NewEdge(u, v), Arc: a})
	}
	return routes, true
}

// FindDisjointRouting searches exhaustively over the 2^k arc assignments
// for a pairwise link-disjoint routing of the tour's requests, returning
// one if it exists. It is exponential and intended for verification and
// small instances; the structural path is CanonicalRouting. The search
// backtracks on link conflicts, so in practice it terminates quickly.
func (t Tour) FindDisjointRouting(r ring.Ring) ([]Route, bool) {
	reqs := t.Requests()
	routes := make([]Route, len(reqs))
	load := make([]int, r.Links())

	var place func(i int) bool
	place = func(i int) bool {
		if i == len(reqs) {
			return true
		}
		req := reqs[i]
		for _, a := range []ring.Arc{r.ArcBetween(req.U, req.V), r.ArcBetween(req.V, req.U)} {
			if fits(r, load, a) {
				apply(r, load, a, +1)
				routes[i] = Route{Request: req, Arc: a}
				if place(i + 1) {
					return true
				}
				apply(r, load, a, -1)
			}
		}
		return false
	}
	if !place(0) {
		return nil, false
	}
	return routes, true
}

// HasDisjointRouting decides the DRC for the tour. It uses the O(k)
// structural criterion; TestStructuralMatchesExhaustive proves it agrees
// with FindDisjointRouting.
func (t Tour) HasDisjointRouting(r ring.Ring) bool { return t.IsRingOrdered(r) }

func fits(r ring.Ring, load []int, a ring.Arc) bool {
	for _, l := range a.Links(r) {
		if load[l] > 0 {
			return false
		}
	}
	return true
}

func apply(r ring.Ring, load []int, a ring.Arc, delta int) {
	for _, l := range a.Links(r) {
		load[l] += delta
	}
}

package routing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/cyclecover/cyclecover/internal/graph"
	"github.com/cyclecover/cyclecover/internal/ring"
)

// TestPaperCounterExample reproduces the paper's illustration on G = C4,
// I = K4 (0-based labels): the cycle (1,3,4,2) → (0,2,3,1) admits no
// edge-disjoint routing because requests {0,2} and {1,3} cannot use
// disjoint paths, while (1,2,3,4) → (0,1,2,3) does.
func TestPaperCounterExample(t *testing.T) {
	r := ring.MustNew(4)
	bad := Tour{0, 2, 3, 1}
	if bad.HasDisjointRouting(r) {
		t.Error("(0,2,3,1) on C4: structural test must reject")
	}
	if _, ok := bad.FindDisjointRouting(r); ok {
		t.Error("(0,2,3,1) on C4: exhaustive search must find nothing")
	}
	good := Tour{0, 1, 2, 3}
	if !good.HasDisjointRouting(r) {
		t.Error("(0,1,2,3) on C4: want routable")
	}
	routes, ok := good.FindDisjointRouting(r)
	if !ok {
		t.Fatal("(0,1,2,3) on C4: exhaustive search must succeed")
	}
	if !Disjoint(r, routes) {
		t.Error("returned routing must be disjoint")
	}
}

func TestPaperValidCoveringTours(t *testing.T) {
	// The paper's valid covering of K4: C4 (1,2,3,4) plus triangles
	// (1,2,4) and (1,3,4) — all three must be DRC-routable.
	r := ring.MustNew(4)
	for _, tour := range []Tour{{0, 1, 2, 3}, {0, 1, 3}, {0, 2, 3}} {
		if !tour.HasDisjointRouting(r) {
			t.Errorf("tour %v: want routable", tour)
		}
	}
}

func TestIsRingOrdered(t *testing.T) {
	r := ring.MustNew(8)
	cases := []struct {
		tour Tour
		want bool
	}{
		{Tour{0, 1, 2}, true},
		{Tour{2, 5, 7}, true},
		{Tour{7, 0, 3}, true},          // wraps
		{Tour{3, 7, 0}, true},          // rotation of above
		{Tour{0, 3, 7}, true},          // same cycle, same orientation class
		{Tour{0, 7, 3}, true},          // reversal: counter-clockwise
		{Tour{0, 2, 1}, true},          // triangle: every order of 3 vertices is cyclic
		{Tour{0, 2, 1, 3}, false},      // crossing quad
		{Tour{0, 4, 2, 6}, false},      // interleaved diameters
		{Tour{1, 2, 3, 0}, true},       // rotation of 0,1,2,3
		{Tour{3, 2, 1, 0}, true},       // reversal
		{Tour{0, 1, 5, 3, 7}, false},   // scrambled
		{Tour{5, 6, 7, 0, 1, 2}, true}, // long wrap
	}
	for _, c := range cases {
		if got := c.tour.IsRingOrdered(r); got != c.want {
			t.Errorf("IsRingOrdered(%v) = %v, want %v", c.tour, got, c.want)
		}
	}
}

func TestAnyTriangleIsRoutable(t *testing.T) {
	// Any 3 distinct vertices in any order form a cyclically ordered tour.
	r := ring.MustNew(9)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vs := rng.Perm(9)[:3]
		return Tour(vs).HasDisjointRouting(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestStructuralMatchesExhaustive is the computational certificate for the
// DRC structure theorem (Fact A): on every tour tried, the O(k) ring-order
// criterion agrees with exhaustive search over all 2^k arc assignments.
func TestStructuralMatchesExhaustive(t *testing.T) {
	for _, n := range []int{4, 5, 6, 7} {
		r := ring.MustNew(n)
		rng := rand.New(rand.NewSource(int64(n)))
		for trial := 0; trial < 400; trial++ {
			k := 3 + rng.Intn(n-2)
			tour := Tour(rng.Perm(n)[:k])
			structural := tour.HasDisjointRouting(r)
			_, exhaustive := tour.FindDisjointRouting(r)
			if structural != exhaustive {
				t.Fatalf("n=%d tour=%v: structural=%v exhaustive=%v",
					n, tour, structural, exhaustive)
			}
		}
	}
}

func TestCanonicalRouting(t *testing.T) {
	r := ring.MustNew(6)
	tour := Tour{0, 2, 5}
	routes, ok := tour.CanonicalRouting(r)
	if !ok {
		t.Fatal("(0,2,5): want routable")
	}
	if !Disjoint(r, routes) {
		t.Error("canonical routing must be disjoint")
	}
	// The arcs must tile the ring: total length n.
	total := 0
	for _, rt := range routes {
		total += rt.Arc.Len(r)
	}
	if total != 6 {
		t.Errorf("arc lengths sum to %d, want 6", total)
	}
	if _, ok := Tour([]int{0, 2, 4, 1, 5, 3}).CanonicalRouting(r); ok {
		t.Error("scrambled hexagon: want no canonical routing")
	}
}

func TestCanonicalRoutingCounterClockwise(t *testing.T) {
	r := ring.MustNew(7)
	tour := Tour{5, 3, 0} // counter-clockwise ring order
	routes, ok := tour.CanonicalRouting(r)
	if !ok {
		t.Fatal("(5,3,0): want routable")
	}
	if !Disjoint(r, routes) {
		t.Error("ccw canonical routing must be disjoint")
	}
}

func TestCanonicalRoutingMatchesRequests(t *testing.T) {
	// Every request of the tour must appear exactly once in the routing.
	r := ring.MustNew(11)
	tour := Tour{1, 4, 6, 9}
	routes, ok := tour.CanonicalRouting(r)
	if !ok {
		t.Fatal("want routable")
	}
	seen := map[graph.Edge]int{}
	for _, rt := range routes {
		seen[rt.Request]++
	}
	for _, req := range tour.Requests() {
		if seen[req] != 1 {
			t.Errorf("request %v routed %d times", req, seen[req])
		}
	}
}

func TestValidate(t *testing.T) {
	r := ring.MustNew(5)
	if err := Tour([]int{0, 1}).Validate(r); err == nil {
		t.Error("short tour: want error")
	}
	if err := Tour([]int{0, 1, 0}).Validate(r); err == nil {
		t.Error("repeated vertex: want error")
	}
	if err := Tour([]int{0, 1, 9}).Validate(r); err == nil {
		t.Error("out-of-range vertex: want error")
	}
	if err := Tour([]int{0, 2, 4}).Validate(r); err != nil {
		t.Errorf("valid tour rejected: %v", err)
	}
}

func TestRequests(t *testing.T) {
	reqs := Tour([]int{3, 1, 4}).Requests()
	want := []graph.Edge{graph.NewEdge(3, 1), graph.NewEdge(1, 4), graph.NewEdge(4, 3)}
	if len(reqs) != 3 {
		t.Fatalf("Requests = %v", reqs)
	}
	for i := range want {
		if reqs[i] != want[i] {
			t.Fatalf("Requests = %v, want %v", reqs, want)
		}
	}
}

func TestLinkLoads(t *testing.T) {
	r := ring.MustNew(4)
	routes := []Route{
		{Request: graph.NewEdge(0, 1), Arc: r.ArcBetween(0, 1)},
		{Request: graph.NewEdge(1, 3), Arc: r.ArcBetween(1, 3)},
	}
	loads := LinkLoads(r, routes)
	want := []int{1, 1, 1, 0}
	for i := range want {
		if loads[i] != want[i] {
			t.Fatalf("LinkLoads = %v, want %v", loads, want)
		}
	}
	if !Disjoint(r, routes) {
		t.Error("want disjoint")
	}
	routes = append(routes, Route{Request: graph.NewEdge(0, 2), Arc: r.ArcBetween(0, 2)})
	if Disjoint(r, routes) {
		t.Error("link 0 and 1 double-used: want not disjoint")
	}
}

func TestDisjointEmptyRoutes(t *testing.T) {
	r := ring.MustNew(5)
	if !Disjoint(r, nil) {
		t.Error("no routes: trivially disjoint")
	}
}

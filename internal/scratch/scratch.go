// Package scratch provides a small typed free-list for reusable hot-path
// buffers. It wraps sync.Pool behind a generic API so the verifier, the
// sweep engine and the HTTP layer share one idiom for steady-state
// allocation-free scratch state: Get a *T, use it, Put it back.
//
// Values handed to Put must not be retained or read afterwards; a pool
// never zeroes them, so every user is responsible for resetting (or
// epoch-versioning) whatever state it reads. The pool is safe for
// concurrent use and never grows without bound — the runtime reclaims
// idle entries under memory pressure, exactly like a bare sync.Pool.
package scratch

import "sync"

// Pool is a typed free-list of *T scratch values.
type Pool[T any] struct {
	p sync.Pool
}

// NewPool returns a pool whose Get mints fresh values with newT when the
// free list is empty. newT must not return nil.
func NewPool[T any](newT func() *T) *Pool[T] {
	return &Pool[T]{p: sync.Pool{New: func() any { return newT() }}}
}

// Get returns a scratch value, recycled when one is available.
func (p *Pool[T]) Get() *T { return p.p.Get().(*T) }

// Put returns a scratch value to the pool. The caller must not use x
// afterwards.
func (p *Pool[T]) Put(x *T) { p.p.Put(x) }

//go:build race

package cover

// raceEnabled reports that this test binary was built with the race
// detector, under which sync.Pool deliberately drops Put values — the
// pooled-path zero-alloc assertions are skipped there (the dedicated
// Verifier assertions still run and pin the contract).
const raceEnabled = true

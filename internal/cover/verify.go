package cover

import (
	"fmt"

	"github.com/cyclecover/cyclecover/internal/graph"
	"github.com/cyclecover/cyclecover/internal/ring"
)

// VerifyDRC checks the disjoint routing constraint for a single cycle by
// explicit construction rather than by the structure theorem: it builds
// the canonical routing (clockwise arc per consecutive pair) and verifies
// that the arcs are pairwise link-disjoint and tile the whole ring. For a
// well-formed Cycle this always succeeds — the test suite relies on that —
// but the verifier recomputes it so that experiment results never depend
// on the constructor's correctness alone.
func VerifyDRC(r ring.Ring, c Cycle) error {
	arcs := c.Arcs(r)
	total := 0
	for i, a := range arcs {
		if a.IsEmpty() {
			return fmt.Errorf("cover: cycle %v yields an empty routing arc", c)
		}
		total += a.Len(r)
		for j := i + 1; j < len(arcs); j++ {
			if !a.Disjoint(r, arcs[j]) {
				return fmt.Errorf("cover: cycle %v routes pairs %d and %d over a shared link", c, i, j)
			}
		}
	}
	if total != r.N() {
		return fmt.Errorf("cover: cycle %v routing covers %d links, want %d", c, total, r.N())
	}
	return nil
}

// Verify performs the full validity check of a covering against a demand
// graph:
//
//  1. every cycle's vertices lie on the ring;
//  2. every cycle satisfies the DRC (explicitly re-verified);
//  3. every demand edge is covered at least its multiplicity.
//
// It returns nil iff the covering is a valid DRC-covering of the demand.
// A nil covering or nil demand is an error, not a panic: zero-value
// instances (e.g. the Instance returned alongside a parse error) reach
// this boundary from untrusted callers.
func Verify(cv *Covering, demand *graph.Graph) error {
	if cv == nil {
		return fmt.Errorf("cover: nil covering")
	}
	if demand == nil {
		return fmt.Errorf("cover: nil demand graph (zero-value instance?)")
	}
	for i, c := range cv.Cycles {
		for _, v := range c.Vertices() {
			if !cv.Ring.Valid(v) {
				return fmt.Errorf("cover: cycle %d = %v has vertex %d outside ring of size %d", i, c, v, cv.Ring.N())
			}
		}
		if err := VerifyDRC(cv.Ring, c); err != nil {
			return fmt.Errorf("cover: cycle %d: %w", i, err)
		}
	}
	return cv.Covers(demand)
}

// VerifyOptimal verifies the covering against the all-to-all instance and
// additionally checks that its size matches ρ(n) exactly. It is the
// acceptance check used by the Theorem 1/Theorem 2 experiments.
func VerifyOptimal(cv *Covering) error {
	n := cv.Ring.N()
	if err := Verify(cv, graph.Complete(n)); err != nil {
		return err
	}
	if got, want := cv.Size(), Rho(n); got != want {
		return fmt.Errorf("cover: covering of K_%d uses %d cycles, ρ = %d", n, got, want)
	}
	return nil
}

package cover

import (
	"fmt"

	"github.com/cyclecover/cyclecover/internal/graph"
	"github.com/cyclecover/cyclecover/internal/ring"
	"github.com/cyclecover/cyclecover/internal/scratch"
)

// Verifier checks coverings against demands with caller-owned scratch
// state, so repeated verifications allocate nothing in steady state: the
// link-occupancy stamps and the dense coverage tally are reused across
// calls, growing only when a larger ring arrives. A Verifier is not safe
// for concurrent use; the package-level Verify/VerifyDRC functions draw
// from a shared pool and are.
type Verifier struct {
	// stamp[l] == epoch marks ring link l as occupied by an arc of the
	// cycle currently being checked. Bumping epoch resets all links in
	// O(1); the array is cleared only when it grows.
	stamp []uint64
	epoch uint64
	// cov is the dense coverage tally of the covering under verification:
	// one edge per covered pair-slot.
	cov graph.Graph
}

// NewVerifier returns a Verifier with empty scratch state.
func NewVerifier() *Verifier { return &Verifier{} }

var verifiers = scratch.NewPool(NewVerifier)

// VerifyDRC checks the disjoint routing constraint for a single cycle by
// explicit construction rather than by the structure theorem: it walks
// the canonical routing (clockwise arc per consecutive pair) and tallies
// per-link load in one O(n) pass, reporting the first link claimed by two
// arcs. For a well-formed Cycle this always succeeds — the test suite
// relies on that — but the verifier recomputes it so that experiment
// results never depend on the constructor's correctness alone.
func VerifyDRC(r ring.Ring, c Cycle) error {
	vf := verifiers.Get()
	err := vf.VerifyDRC(r, c)
	verifiers.Put(vf)
	return err
}

// VerifyDRC is the pooled VerifyDRC against this verifier's scratch
// state. Allocation-free on the success path.
//
//cyclecover:noalloc
func (vf *Verifier) VerifyDRC(r ring.Ring, c Cycle) error {
	n := r.N()
	vf.ensureLinks(n)
	vf.epoch++
	verts := c.Vertices()
	k := len(verts)
	total := 0
	for i := 0; i < k; i++ {
		from, to := verts[i], verts[(i+1)%k]
		gap := r.Gap(from, to)
		if gap == 0 {
			return fmt.Errorf("cover: cycle %v yields an empty routing arc", c)
		}
		total += gap
		// Mark the gap links of the clockwise arc from→to. A duplicate
		// mark is a link shared by two of the cycle's arcs — the first
		// overload is reported, and bounds the whole walk at O(n) marks.
		// Norm matches the old Arc-based walk: a cycle handed to the
		// standalone VerifyDRC may carry out-of-ring vertex labels.
		l := r.Norm(from)
		for j := 0; j < gap; j++ {
			if vf.stamp[l] == vf.epoch {
				return fmt.Errorf("cover: cycle %v routes link %d on two arcs", c, l)
			}
			vf.stamp[l] = vf.epoch
			l++
			if l == n {
				l = 0
			}
		}
	}
	if total != n {
		return fmt.Errorf("cover: cycle %v routing covers %d links, want %d", c, total, n)
	}
	return nil
}

// ensureLinks grows the link stamp array to n links, resetting the epoch
// clock only when fresh (zeroed) storage is minted.
//
//cyclecover:noalloc
func (vf *Verifier) ensureLinks(n int) {
	if cap(vf.stamp) < n {
		vf.stamp = make([]uint64, n)
		vf.epoch = 0
		return
	}
	vf.stamp = vf.stamp[:n]
}

// Verify performs the full validity check of a covering against a demand
// graph:
//
//  1. every cycle's vertices lie on the ring;
//  2. every cycle satisfies the DRC (explicitly re-verified);
//  3. every demand edge is covered at least its multiplicity.
//
// It returns nil iff the covering is a valid DRC-covering of the demand.
// A nil covering or nil demand is an error, not a panic: zero-value
// instances (e.g. the Instance returned alongside a parse error) reach
// this boundary from untrusted callers.
func Verify(cv *Covering, demand *graph.Graph) error {
	vf := verifiers.Get()
	err := vf.Verify(cv, demand)
	verifiers.Put(vf)
	return err
}

// Verify is the pooled Verify against this verifier's scratch state.
// Allocation-free on the success path once the scratch arrays have grown
// to the ring size.
//
//cyclecover:noalloc
func (vf *Verifier) Verify(cv *Covering, demand *graph.Graph) error {
	if cv == nil {
		return fmt.Errorf("cover: nil covering")
	}
	if demand == nil {
		return fmt.Errorf("cover: nil demand graph (zero-value instance?)")
	}
	n := cv.Ring.N()
	for i, c := range cv.Cycles {
		for _, v := range c.Vertices() {
			if !cv.Ring.Valid(v) {
				return fmt.Errorf("cover: cycle %d = %v has vertex %d outside ring of size %d", i, c, v, cv.Ring.N())
			}
		}
		if err := vf.VerifyDRC(cv.Ring, c); err != nil {
			return fmt.Errorf("cover: cycle %d: %w", i, err)
		}
	}
	if demand.N() > n {
		return fmt.Errorf("cover: demand graph on %d vertices exceeds ring size %d", demand.N(), n)
	}
	// Coverage: tally every covered pair-slot into the dense scratch
	// graph, then scan the demand once in deterministic order.
	vf.cov.Reset(n)
	cv.TallyCoverage(&vf.cov)
	return coverageShortfall(&vf.cov, demand)
}

// VerifyOptimal verifies the covering against the all-to-all instance and
// additionally checks that its size matches ρ(n) exactly. It is the
// acceptance check used by the Theorem 1/Theorem 2 experiments.
func VerifyOptimal(cv *Covering) error {
	n := cv.Ring.N()
	if err := Verify(cv, graph.Complete(n)); err != nil {
		return err
	}
	if got, want := cv.Size(), Rho(n); got != want {
		return fmt.Errorf("cover: covering of K_%d uses %d cycles, ρ = %d", n, got, want)
	}
	return nil
}

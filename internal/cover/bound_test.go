package cover

import (
	"testing"

	"github.com/cyclecover/cyclecover/internal/graph"
	"github.com/cyclecover/cyclecover/internal/ring"
)

func TestSumShortGapsClosedForm(t *testing.T) {
	// Check the closed forms against direct summation.
	for n := 3; n <= 60; n++ {
		r := ring.MustNew(n)
		direct := 0
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				direct += r.Dist(u, v)
			}
		}
		if got := SumShortGaps(n); got != direct {
			t.Errorf("SumShortGaps(%d) = %d, direct sum = %d", n, got, direct)
		}
	}
}

func TestArcLengthLowerBoundValues(t *testing.T) {
	// Odd n: bound equals Theorem 1 exactly.
	for p := 1; p <= 50; p++ {
		n := 2*p + 1
		if got, want := ArcLengthLowerBound(n), p*(p+1)/2; got != want {
			t.Errorf("ArcLengthLowerBound(%d) = %d, want %d", n, got, want)
		}
	}
	// Even n: bound is ⌈p²/2⌉ = ⌈p³/(2p)⌉.
	for p := 2; p <= 50; p++ {
		n := 2 * p
		want := (p*p + 1) / 2
		if p%2 == 0 {
			want = p * p / 2
		}
		if got := ArcLengthLowerBound(n); got != want {
			t.Errorf("ArcLengthLowerBound(%d) = %d, want ⌈p²/2⌉ = %d", n, got, want)
		}
	}
}

func TestLowerBoundMatchesRho(t *testing.T) {
	// The implemented lower bound (with the even-p refinement) equals the
	// paper's ρ(n) for every n — i.e. the theorems are tight against it.
	for n := 3; n <= 400; n++ {
		if got, want := LowerBound(n), Rho(n); got != want {
			t.Errorf("LowerBound(%d) = %d, Rho = %d", n, got, want)
		}
	}
}

func TestLowerBoundNeverExceedsArcBoundPlusOne(t *testing.T) {
	for n := 3; n <= 400; n++ {
		lb, arc := LowerBound(n), ArcLengthLowerBound(n)
		if lb < arc || lb > arc+1 {
			t.Errorf("n=%d: LowerBound=%d vs arc bound %d", n, lb, arc)
		}
	}
}

func TestInstanceLowerBound(t *testing.T) {
	r := ring.MustNew(9)
	if got, want := InstanceLowerBound(r, graph.Complete(9)), ArcLengthLowerBound(9); got != want {
		t.Errorf("InstanceLowerBound(K9) = %d, want %d", got, want)
	}
	// λK_n scales the bound by λ (each pair served λ times).
	if got, want := InstanceLowerBound(r, graph.LambdaComplete(9, 3)), 3*SumShortGaps(9)/9; got != want {
		t.Errorf("InstanceLowerBound(3K9) = %d, want %d", got, want)
	}
	// Empty demand needs nothing.
	if got := InstanceLowerBound(r, graph.New(9)); got != 0 {
		t.Errorf("InstanceLowerBound(empty) = %d, want 0", got)
	}
	// A single adjacent pair still needs one cycle.
	one := graph.New(9)
	one.AddEdge(0, 1)
	if got := InstanceLowerBound(r, one); got != 1 {
		t.Errorf("InstanceLowerBound(single edge) = %d, want 1", got)
	}
}

func TestNoCycleCoversTwoDiameters(t *testing.T) {
	// Structural ingredient of the +1 refinement (see LowerBound doc): no
	// single DRC cycle can cover two distinct diametral pairs. Exhaustive
	// over all vertex subsets for small even rings.
	for _, n := range []int{6, 8, 10} {
		r := ring.MustNew(n)
		for mask := 0; mask < 1<<n; mask++ {
			var vs []int
			for v := 0; v < n; v++ {
				if mask&(1<<v) != 0 {
					vs = append(vs, v)
				}
			}
			if len(vs) < 3 {
				continue
			}
			c := MustCycle(r, vs...)
			diams := 0
			for _, p := range c.Pairs() {
				if r.IsDiameter(p.U, p.V) {
					diams++
				}
			}
			if diams > 1 {
				t.Fatalf("n=%d: cycle %v covers %d diameters", n, c, diams)
			}
		}
	}
}

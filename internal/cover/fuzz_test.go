package cover

import (
	"testing"

	"github.com/cyclecover/cyclecover/internal/graph"
	"github.com/cyclecover/cyclecover/internal/ring"
)

// FuzzVerify fuzzes the verifier against an independently recomputed
// ground truth: Verify must never accept a covering that misses a demand
// edge, and never accept a cycle that breaks the disjoint-routing
// constraint (checked here by explicit link-occupancy bookkeeping, not by
// the verifier's own Arc.Disjoint machinery). Conversely, a covering
// whose cycles were all built against the right ring and that covers the
// demand must be accepted.
//
// Cycles are decoded from cycleBytes as [header, v1..vk] records. To
// reach the rejection paths at all (NewCycle canonicalizes honest input
// into ring order, which the structure theorem proves DRC-routable), some
// records build their cycle against an adversarial ring of a different
// size m: sorted by the wrong ring's order, the vertex sequence can
// violate ring order on the real ring — or leave it entirely.
func FuzzVerify(f *testing.F) {
	f.Add(uint8(4), []byte{3, 0, 1, 2, 3, 0, 2, 3, 4, 0, 1, 2, 3}, []byte{0, 1, 1, 2, 0, 2}, uint8(4))
	f.Add(uint8(2), []byte{131, 0, 2, 4, 3, 1, 2, 3}, []byte{0, 4, 2, 3}, uint8(9))
	f.Add(uint8(14), []byte{4, 0, 4, 8, 12, 3, 1, 2, 3}, []byte{0, 8}, uint8(2))
	f.Add(uint8(0), []byte{}, []byte{0, 1}, uint8(0))
	f.Add(uint8(7), []byte{133, 9, 3, 7, 1, 5, 3, 0, 1, 2}, []byte{5, 9, 1, 3}, uint8(17))

	f.Fuzz(func(t *testing.T, nRaw uint8, cycleBytes, demandBytes []byte, altRaw uint8) {
		n := 3 + int(nRaw)%18 // ring sizes 3..20
		m := 3 + int(altRaw)%18
		r := ring.MustNew(n)
		alt := ring.MustNew(m)

		cv := NewCovering(r)
		honest := true // no cycle came from the adversarial ring
		for i := 0; i < len(cycleBytes); {
			h := cycleBytes[i]
			k := 3 + int(h&0x7f)%4 // cycle length 3..6
			useAlt := h&0x80 != 0
			i++
			if i+k > len(cycleBytes) {
				break
			}
			build := r
			if useAlt {
				build = alt
			}
			verts := make([]int, k)
			for j := 0; j < k; j++ {
				verts[j] = int(cycleBytes[i+j]) % build.N()
			}
			i += k
			c, err := NewCycle(build, verts...)
			if err != nil {
				continue // duplicate vertices etc.: not a covering problem
			}
			if useAlt {
				honest = false
			}
			cv.Add(c)
		}

		demand := graph.New(n)
		for j := 0; j+1 < len(demandBytes); j += 2 {
			u, v := int(demandBytes[j])%n, int(demandBytes[j+1])%n
			if u != v {
				demand.AddEdge(u, v)
			}
		}

		verdict := Verify(cv, demand)

		// Ground truth 1 — coverage: count covered pairs directly.
		covered := make(map[graph.Edge]int)
		for _, c := range cv.Cycles {
			for _, p := range c.Pairs() {
				covered[p]++
			}
		}
		missing := false
		for _, e := range demand.Edges() {
			if covered[e] < demand.Multiplicity(e.U, e.V) {
				missing = true
				break
			}
		}

		// Ground truth 2 — DRC: walk every cycle's canonical routing and
		// mark the ring links each arc occupies. A DRC cycle must use each
		// link exactly once in total.
		drcOK := true
		for _, c := range cv.Cycles {
			inRange := true
			for _, v := range c.Vertices() {
				if v >= n {
					inRange = false
				}
			}
			if !inRange {
				drcOK = false
				continue
			}
			used := make([]int, r.Links())
			for _, a := range c.Arcs(r) {
				for _, l := range a.Links(r) {
					used[int(l)]++
				}
			}
			for _, u := range used {
				if u != 1 {
					drcOK = false
					break
				}
			}
		}

		if verdict == nil && missing {
			t.Fatalf("Verify accepted a covering missing a demand edge (n=%d, cycles=%v)", n, cv.Cycles)
		}
		if verdict == nil && !drcOK {
			t.Fatalf("Verify accepted a DRC-violating covering (n=%d, cycles=%v)", n, cv.Cycles)
		}
		// Completeness: honest, covering, DRC-clean input must be accepted.
		if honest && !missing && drcOK && verdict != nil {
			t.Fatalf("Verify rejected a valid covering: %v (n=%d, cycles=%v)", verdict, n, cv.Cycles)
		}
	})
}

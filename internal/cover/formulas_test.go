package cover

import (
	"testing"
	"testing/quick"
)

func TestRhoSmallValues(t *testing.T) {
	// Hand-checked values: ρ(3)=1 (one triangle), ρ(4)=3 (paper example),
	// ρ(5)=3 (Theorem 1, p=2), ρ(6)=5, ρ(7)=6, ρ(8)=9, ρ(9)=10, ρ(10)=13,
	// ρ(11)=15, ρ(12)=19.
	want := map[int]int{3: 1, 4: 3, 5: 3, 6: 5, 7: 6, 8: 9, 9: 10, 10: 13, 11: 15, 12: 19}
	for n, w := range want {
		if got := Rho(n); got != w {
			t.Errorf("Rho(%d) = %d, want %d", n, got, w)
		}
	}
}

func TestRhoPanicsBelow3(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Rho(2): want panic")
		}
	}()
	Rho(2)
}

func TestRhoMatchesTheoremFormulas(t *testing.T) {
	for p := 1; p <= 60; p++ {
		if got, w := Rho(2*p+1), p*(p+1)/2; got != w {
			t.Errorf("Rho(%d) = %d, want p(p+1)/2 = %d", 2*p+1, got, w)
		}
	}
	for p := 2; p <= 60; p++ {
		w := (p*p + 1) / 2
		if (p*p+1)%2 != 0 {
			w++
		}
		if got := Rho(2 * p); got != w {
			t.Errorf("Rho(%d) = %d, want ⌈(p²+1)/2⌉ = %d", 2*p, got, w)
		}
	}
}

func TestTheoremCompositionConsistency(t *testing.T) {
	// Wherever the paper states a composition, its total must equal ρ(n)
	// and its slot count must be at least |E(K_n)|.
	for n := 3; n <= 200; n++ {
		comp, ok := TheoremComposition(n)
		if !ok {
			if n >= 5 {
				t.Errorf("TheoremComposition(%d): want ok for n >= 5", n)
			}
			continue
		}
		if comp.Total() != Rho(n) {
			t.Errorf("n=%d: composition total %d != ρ = %d (%v)", n, comp.Total(), Rho(n), comp)
		}
		if comp.Slots() < EdgeCount(n) {
			t.Errorf("n=%d: composition provides %d slots < %d edges", n, comp.Slots(), EdgeCount(n))
		}
		if comp.C3 < 0 || comp.C4 < 0 {
			t.Errorf("n=%d: negative composition %v", n, comp)
		}
	}
}

func TestTheoremCompositionKnownRows(t *testing.T) {
	cases := []struct {
		n      int
		c3, c4 int
	}{
		{3, 1, 0},   // K3: single triangle
		{5, 2, 1},   // Theorem 1, p=2
		{7, 3, 3},   // Theorem 1, p=3
		{9, 4, 6},   // Theorem 1, p=4
		{4, 2, 1},   // paper's worked example
		{6, 2, 3},   // Theorem 2, n=4q+2, q=1
		{8, 4, 5},   // Theorem 2, n=4q, q=2
		{10, 2, 11}, // q=2: 2q²+2q−1 = 11
		{12, 4, 15}, // q=3: 2q²−3 = 15
	}
	for _, c := range cases {
		comp, ok := TheoremComposition(c.n)
		if !ok {
			t.Errorf("TheoremComposition(%d): not stated", c.n)
			continue
		}
		if comp.C3 != c.c3 || comp.C4 != c.c4 {
			t.Errorf("TheoremComposition(%d) = %v, want %d×C3 + %d×C4", c.n, comp, c.c3, c.c4)
		}
	}
}

func TestTheoremSlack(t *testing.T) {
	// Odd n: the optimal covering is a partition, slack 0.
	for p := 1; p <= 40; p++ {
		s, ok := TheoremSlack(2*p + 1)
		if !ok || s != 0 {
			t.Errorf("TheoremSlack(%d) = %d,%v; want 0,true", 2*p+1, s, ok)
		}
	}
	// Even n = 2p: the stated compositions give slack p... for n=4q:
	// slots 12+4(2q²−3) = 8q², edges 8q²−2q → slack 2q = p/... p=2q.
	for q := 2; q <= 20; q++ {
		n := 4 * q
		s, ok := TheoremSlack(n)
		if !ok || s != 2*q {
			t.Errorf("TheoremSlack(%d) = %d,%v; want %d,true", n, s, ok, 2*q)
		}
	}
	for q := 1; q <= 20; q++ {
		n := 4*q + 2
		s, ok := TheoremSlack(n)
		if !ok || s != 2*q+1 {
			t.Errorf("TheoremSlack(%d) = %d,%v; want %d,true", n, s, ok, 2*q+1)
		}
	}
}

func TestCompositionHelpers(t *testing.T) {
	c := Composition{C3: 2, C4: 3}
	if c.Total() != 5 || c.Slots() != 18 {
		t.Errorf("Total=%d Slots=%d, want 5, 18", c.Total(), c.Slots())
	}
	if c.String() != "2×C3 + 3×C4" {
		t.Errorf("String = %q", c.String())
	}
}

func TestEdgeCountProperty(t *testing.T) {
	f := func(raw uint8) bool {
		n := 3 + int(raw)%100
		return EdgeCount(n) == n*(n-1)/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

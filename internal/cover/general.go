// This file is the general-topology half of the cover package: cycle
// covers of an arbitrary bridgeless host graph, the object of the
// short-cycle-cover literature the repo tracks (Kaiser et al. on cubic
// graphs, Hägglund & Markström on snarks), alongside the paper's
// ring/DRC coverings.
//
// The two worlds share the Covering container and the Cycle value, but
// differ in what a cycle *is*: on the ring a cycle is a vertex set whose
// routing is forced by the structure theorem (stored sorted by ring
// order), while on a general host the traversal order is the cycle —
// consecutive vertices must be adjacent in the host. WalkCycle builds
// the order-preserving form; VerifyGeneral checks a covering edge by
// edge against the host instead of against the ring routing.
//
// The objective also changes: ring coverings minimize the cycle count,
// general cycle covers minimize the total length Σ|C_i| (the
// shortest-cycle-cover objective). The literature baselines wired in
// below make that objective checkable: every cover of a bridgeless
// graph satisfies length ≥ m, cubic hosts satisfy length ≥ m + n/2, and
// the snark families are asserted against the 4/3·m + c upper bound in
// the committed tests.
package cover

import (
	"fmt"

	"github.com/cyclecover/cyclecover/internal/graph"
	"github.com/cyclecover/cyclecover/internal/ring"
)

// NewGeneralCovering returns an empty covering for a general host graph
// on n vertices (n ≥ 3). The Ring field carries only the vertex count —
// general covers never consult ring routing — but keeping the same
// Covering container lets the cache, JSON surface and canonicalization
// machinery serve both worlds unchanged.
func NewGeneralCovering(n int) *Covering { return NewCovering(ring.MustNew(n)) }

// WalkCycle builds a general-topology cycle from an explicit traversal
// order: consecutive vertices (cyclically) are the covered edges, in the
// order given. The walk is canonicalized — rotated so the smallest
// vertex leads, reflected so the second vertex is smaller than the last
// — so equal cycles compare equal regardless of how the constructor
// happened to traverse them. Vertices must be distinct, non-negative and
// at least MinCycleLen many; adjacency in any particular host is the
// verifier's concern (VerifyGeneral), not the constructor's.
func WalkCycle(verts []int) (Cycle, error) {
	k := len(verts)
	if k < MinCycleLen {
		return Cycle{}, fmt.Errorf("cover: cycle needs at least %d distinct vertices, got %d", MinCycleLen, k)
	}
	minAt := 0
	seen := make(map[int]bool, k)
	for i, v := range verts {
		if v < 0 {
			return Cycle{}, fmt.Errorf("cover: negative vertex %d in cycle %v", v, verts)
		}
		if seen[v] {
			return Cycle{}, fmt.Errorf("cover: duplicate vertex %d in cycle %v", v, verts)
		}
		seen[v] = true
		if v < verts[minAt] {
			minAt = i
		}
	}
	out := make([]int, k)
	// Rotate the minimum to the front, then pick the traversal direction
	// with the smaller second vertex: the canonical form of an undirected
	// closed walk.
	if verts[(minAt+1)%k] <= verts[(minAt+k-1)%k] {
		for i := 0; i < k; i++ {
			out[i] = verts[(minAt+i)%k]
		}
	} else {
		for i := 0; i < k; i++ {
			out[i] = verts[(minAt+k-i)%k]
		}
	}
	return Cycle{verts: out}, nil
}

// MustWalkCycle is WalkCycle that panics on error; for tests and
// generators whose inputs are correct by construction.
func MustWalkCycle(verts ...int) Cycle {
	c, err := WalkCycle(verts)
	if err != nil {
		panic(err)
	}
	return c
}

// TotalLength returns the shortest-cycle-cover objective Σ|C_i|: the
// total number of edge slots the covering spends. On ring coverings this
// equals TotalVertices; it is the cost the general-topology strategies
// race on.
func (cv *Covering) TotalLength() int { return cv.TotalVertices() }

// VerifyGeneral performs the full validity check of a cycle cover
// against an arbitrary host graph:
//
//  1. every cycle's vertices lie in the host's vertex range;
//  2. every cyclically consecutive pair of every cycle is a host edge —
//     the general-topology replacement for the ring DRC;
//  3. every distinct host edge is covered by at least one cycle slot.
//
// It returns nil iff the covering is a cycle cover of the host. Nil
// coverings and nil hosts are errors, not panics: zero-value instances
// reach this boundary from untrusted callers.
func VerifyGeneral(cv *Covering, host *graph.Graph) error {
	vf := verifiers.Get()
	err := vf.VerifyGeneral(cv, host)
	verifiers.Put(vf)
	return err
}

// VerifyGeneral is the pooled VerifyGeneral against this verifier's
// scratch state. Allocation-free on the success path once the coverage
// scratch has grown to the host size.
//
//cyclecover:noalloc
func (vf *Verifier) VerifyGeneral(cv *Covering, host *graph.Graph) error {
	if cv == nil {
		return fmt.Errorf("cover: nil covering")
	}
	if host == nil {
		return fmt.Errorf("cover: nil host graph (zero-value instance?)")
	}
	n := host.N()
	for i, c := range cv.Cycles {
		verts := c.verts
		k := len(verts)
		if k < MinCycleLen {
			return fmt.Errorf("cover: cycle %d = %v shorter than %d", i, c, MinCycleLen)
		}
		for j := 0; j < k; j++ {
			u, v := verts[j], verts[(j+1)%k]
			if u < 0 || u >= n || v < 0 || v >= n {
				return fmt.Errorf("cover: cycle %d = %v has vertex outside host of size %d", i, c, n)
			}
			if !host.HasEdge(u, v) {
				return fmt.Errorf("cover: cycle %d = %v uses {%d,%d}, not a host edge", i, c, u, v)
			}
		}
	}
	// Coverage: tally every slot into the dense scratch graph, then scan
	// the host's pair triangle once in deterministic order. A cycle cover
	// serves each distinct host edge at least once; parallel host edges do
	// not demand one slot per copy. (Open-coded rather than ForEachEdge so
	// the hot path stays closure-free.)
	vf.cov.Reset(n)
	cv.TallyCoverage(&vf.cov)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if host.Mult(u, v) > 0 && vf.cov.Mult(u, v) == 0 {
				return fmt.Errorf("cover: host edge %v covered by no cycle", graph.Edge{U: u, V: v})
			}
		}
	}
	return nil
}

// SCCLowerBound returns the provable lower bound on the total length of
// any cycle cover of the host: every edge needs a slot (≥ m), and in a
// cubic graph every vertex is entered and left by cycles at least twice
// — ⌈deg/2⌉ visits per vertex with uncovered incident edges — giving
// m + n/2 = 4/3·m. The general form Σ_v ⌈deg(v)/2⌉ is used (it reduces
// to the two classic bounds and also handles odd-degree mixtures).
func SCCLowerBound(host *graph.Graph) int {
	m := host.M()
	visits := 0
	for v := 0; v < host.N(); v++ {
		visits += (host.Degree(v) + 1) / 2
	}
	if visits > m {
		return visits
	}
	return m
}

// CubicSCCUpperBound returns ⌈7m/5⌉, the conjectured (Alon–Tarsi; tight
// on the Petersen graph) shortest-cycle-cover bound for bridgeless
// graphs, reported as the literature baseline for cubic hosts. Kaiser,
// Král', Lidický, Nejedlý & Šámal prove 34m/21 for bridgeless cubic
// graphs; the 7/5 figure is the target the experiment tables compare
// against.
func CubicSCCUpperBound(m int) int { return (7*m + 4) / 5 }

// SnarkSCCSlack is the additive constant c in the 4/3·m + c snark
// baseline: Brinkmann, Goedgebeur, Hägglund & Markström verified that
// every snark on up to 36 vertices has a cycle cover of length at most
// 4/3·m + 1, with the Petersen graph the unique one needing the +1.
const SnarkSCCSlack = 1

// SnarkSCCUpperBound returns ⌈4m/3⌉ + SnarkSCCSlack, the 4/3·m + c
// baseline the committed snark instances are asserted against.
func SnarkSCCUpperBound(m int) int { return (4*m+2)/3 + SnarkSCCSlack }

// GeneralSCCUpperBound returns ⌈5m/3⌉, the Alon–Tarsi /
// Bermond–Jackson–Jaeger bound: every bridgeless graph has a cycle
// cover of total length at most 5m/3.
func GeneralSCCUpperBound(m int) int { return (5*m + 2) / 3 }

package cover

import (
	"fmt"
	"testing"

	"github.com/cyclecover/cyclecover/internal/graph"
)

// petersenCover returns a hand-rolled valid cycle cover of the Petersen
// graph: the outer pentagon, the inner pentagram, and three 5-cycles
// that sweep up the spokes. Length 25 — valid but deliberately not
// short, so it exercises the verifier rather than the optimizer.
func petersenCover() *Covering {
	cv := NewGeneralCovering(10)
	cv.Add(
		MustWalkCycle(0, 1, 2, 3, 4),  // outer pentagon
		MustWalkCycle(5, 7, 9, 6, 8),  // inner pentagram
		MustWalkCycle(0, 5, 7, 2, 1),  // spokes 0, 2
		MustWalkCycle(1, 6, 8, 3, 2),  // spokes 1, 3
		MustWalkCycle(4, 9, 6, 1, 0),  // spokes 4, 1
	)
	return cv
}

func TestWalkCycleCanonical(t *testing.T) {
	// All rotations and both directions of the same cyclic sequence must
	// canonicalize to the identical stored order.
	want := MustWalkCycle(0, 2, 7, 4)
	for _, verts := range [][]int{
		{2, 7, 4, 0},
		{7, 4, 0, 2},
		{4, 0, 2, 7},
		{0, 4, 7, 2}, // reflected
		{4, 7, 2, 0},
		{7, 2, 0, 4},
	} {
		got, err := WalkCycle(verts)
		if err != nil {
			t.Fatalf("WalkCycle(%v): %v", verts, err)
		}
		if !got.Equal(want) {
			t.Fatalf("WalkCycle(%v) = %v, want %v", verts, got, want)
		}
	}
	// The canonical form leads with the minimum and prefers the smaller
	// second vertex.
	vs := MustWalkCycle(5, 3, 9, 4).Vertices()
	if vs[0] != 3 || vs[1] > vs[len(vs)-1] {
		t.Fatalf("canonical order broken: %v", vs)
	}
	for _, bad := range [][]int{
		{},
		{1, 2},
		{1, 2, 1},
		{0, -1, 2},
	} {
		if _, err := WalkCycle(bad); err == nil {
			t.Fatalf("WalkCycle(%v) accepted", bad)
		}
	}
}

func TestVerifyGeneralPetersen(t *testing.T) {
	host := graph.Petersen()
	cv := petersenCover()
	if err := VerifyGeneral(cv, host); err != nil {
		t.Fatalf("valid Petersen cover rejected: %v", err)
	}
	if got := cv.TotalLength(); got != 25 {
		t.Fatalf("TotalLength = %d, want 25", got)
	}

	// Dropping any single cycle must leave some host edge uncovered.
	for i := range cv.Cycles {
		partial := NewGeneralCovering(10)
		for j, c := range cv.Cycles {
			if j != i {
				partial.Add(c)
			}
		}
		if err := VerifyGeneral(partial, host); err == nil {
			t.Fatalf("cover missing cycle %d accepted", i)
		}
	}
}

func TestVerifyGeneralRejections(t *testing.T) {
	host := graph.Petersen()
	if err := VerifyGeneral(nil, host); err == nil {
		t.Fatal("nil covering accepted")
	}
	if err := VerifyGeneral(petersenCover(), nil); err == nil {
		t.Fatal("nil host accepted")
	}

	// A walk using a non-edge: 0–2 skips a pentagon vertex.
	cv := petersenCover()
	cv.Add(MustWalkCycle(0, 2, 4))
	if err := VerifyGeneral(cv, host); err == nil {
		t.Fatal("cover with non-host edge {0,2} accepted")
	}

	// A walk leaving the vertex range.
	cv = petersenCover()
	cv.Add(MustWalkCycle(0, 1, 99))
	if err := VerifyGeneral(cv, host); err == nil {
		t.Fatal("cover with out-of-range vertex accepted")
	}

	// Regression for the latent K_n assumption: a ring-built Cycle stores
	// vertices sorted by ring order, which silently re-routes the walk.
	// {0, 2, 4} sorted is a triangle over pentagon *chords* — VerifyGeneral
	// must judge the stored order against the host, not assume adjacency.
	c6 := graph.Cycle(6)
	rc := NewGeneralCovering(6)
	rc.Add(MustWalkCycle(0, 1, 2, 3, 4, 5))
	if err := VerifyGeneral(rc, c6); err != nil {
		t.Fatalf("hamilton cover of C_6 rejected: %v", err)
	}
	rc2 := NewGeneralCovering(6)
	rc2.Add(MustWalkCycle(0, 2, 4), MustWalkCycle(1, 3, 5))
	if err := VerifyGeneral(rc2, c6); err == nil {
		t.Fatal("chord triangles accepted as cover of C_6")
	}
}

// TestVerifyGeneralPrism covers a non-snark cubic host with quad faces:
// the two triangle faces plus the three square faces of the 3-prism
// cover every edge twice.
func TestVerifyGeneralPrism(t *testing.T) {
	host := graph.Prism(3)
	cv := NewGeneralCovering(6)
	cv.Add(
		MustWalkCycle(0, 1, 2),
		MustWalkCycle(3, 4, 5),
		MustWalkCycle(0, 1, 4, 3),
		MustWalkCycle(1, 2, 5, 4),
		MustWalkCycle(2, 0, 3, 5),
	)
	if err := VerifyGeneral(cv, host); err != nil {
		t.Fatalf("prism face cover rejected: %v", err)
	}
}

func TestSCCBounds(t *testing.T) {
	pet := graph.Petersen()
	if got := SCCLowerBound(pet); got != 20 {
		t.Fatalf("Petersen SCC lower bound = %d, want 20 (m + n/2)", got)
	}
	if got := CubicSCCUpperBound(pet.M()); got != 21 {
		t.Fatalf("CubicSCCUpperBound(15) = %d, want 21", got)
	}
	// The snark baseline 4/3·m + 1 is tight exactly on Petersen: 21.
	if got := SnarkSCCUpperBound(pet.M()); got != 21 {
		t.Fatalf("SnarkSCCUpperBound(15) = %d, want 21", got)
	}
	j5 := graph.FlowerSnark(5)
	if got, want := SCCLowerBound(j5), 40; got != want {
		t.Fatalf("J5 SCC lower bound = %d, want %d", got, want)
	}
	if got, want := SnarkSCCUpperBound(j5.M()), 41; got != want {
		t.Fatalf("SnarkSCCUpperBound(30) = %d, want %d", got, want)
	}
	// Non-cubic: on a plain cycle the edge count dominates the visit sum.
	if got := SCCLowerBound(graph.Cycle(5)); got != 5 {
		t.Fatalf("C_5 SCC lower bound = %d, want 5", got)
	}
}

// TestVerifyGeneralWarmZeroAllocs pins the hot-path contract for the
// general-host verifier, mirroring TestVerifyWarmZeroAllocs: once the
// pooled scratch has grown to the host size, a full VerifyGeneral —
// per-edge adjacency walk plus coverage scan — allocates nothing.
func TestVerifyGeneralWarmZeroAllocs(t *testing.T) {
	host := graph.Petersen()
	cv := petersenCover()
	vf := NewVerifier()
	if err := vf.VerifyGeneral(cv, host); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(200, func() {
		if err := vf.VerifyGeneral(cv, host); err != nil {
			t.Error(err)
		}
	}); avg != 0 {
		t.Fatalf("warm Verifier.VerifyGeneral allocated %.2f/op, want 0", avg)
	}
	if raceEnabled {
		return // sync.Pool drops Puts under -race by design
	}
	if avg := testing.AllocsPerRun(200, func() {
		if err := VerifyGeneral(cv, host); err != nil {
			t.Error(err)
		}
	}); avg != 0 {
		t.Fatalf("warm pooled VerifyGeneral allocated %.2f/op, want 0", avg)
	}
}

// FuzzGeneralVerify decodes an arbitrary host graph and an arbitrary
// covering from fuzz bytes and checks that VerifyGeneral (a) never
// panics, and (b) agrees with an independent ground truth computed by
// explicit edge bookkeeping: accept iff every walk step is a host edge,
// every vertex is in range, and every host edge is covered.
func FuzzGeneralVerify(f *testing.F) {
	f.Add(uint8(6), []byte{0, 1, 1, 2, 2, 0, 3, 4, 4, 5, 5, 3, 0, 3, 1, 4, 2, 5}, []byte{3, 0, 1, 2, 4, 0, 1, 4, 3})
	f.Add(uint8(10), []byte{0, 1, 1, 2}, []byte{3, 0, 1, 2})
	f.Add(uint8(3), []byte{}, []byte{})
	f.Add(uint8(5), []byte{0, 1, 1, 2, 2, 3, 3, 4, 4, 0}, []byte{5, 0, 1, 2, 3, 4})

	f.Fuzz(func(t *testing.T, nRaw uint8, edgeBytes, cycleBytes []byte) {
		n := 3 + int(nRaw)%18
		host := graph.New(n)
		for i := 0; i+1 < len(edgeBytes); i += 2 {
			u, v := int(edgeBytes[i])%n, int(edgeBytes[i+1])%n
			if u != v {
				host.AddEdge(u, v)
			}
		}

		cv := NewGeneralCovering(n)
		for i := 0; i < len(cycleBytes); {
			k := 3 + int(cycleBytes[i])%5 // walk length 3..7
			i++
			if i+k > len(cycleBytes) {
				break
			}
			verts := make([]int, k)
			for j := 0; j < k; j++ {
				verts[j] = int(cycleBytes[i+j]) % (n + 2) // may exceed range
			}
			i += k
			c, err := WalkCycle(verts)
			if err != nil {
				continue // duplicates: not a verification concern
			}
			cv.Add(c)
		}

		verdict := VerifyGeneral(cv, host)

		// Ground truth by explicit bookkeeping.
		covered := make(map[graph.Edge]bool)
		valid := true
		for _, c := range cv.Cycles {
			vs := c.Vertices()
			for j := range vs {
				u, v := vs[j], vs[(j+1)%len(vs)]
				if u >= n || v >= n || !host.HasEdge(u, v) {
					valid = false
					continue
				}
				covered[graph.NewEdge(u, v)] = true
			}
		}
		if valid {
			for _, e := range host.Edges() {
				if !covered[e] {
					valid = false
					break
				}
			}
		}
		if valid && verdict != nil {
			t.Fatalf("VerifyGeneral rejected a valid cover: %v (n=%d, cycles=%v)", verdict, n, cv.Cycles)
		}
		if !valid && verdict == nil {
			t.Fatalf("VerifyGeneral accepted an invalid cover (n=%d, cycles=%v)", n, cv.Cycles)
		}
	})
}

// BenchmarkGeneralVerify is the pinned warm general-verifier hot path:
// full VerifyGeneral of a face cover of the flower snark J_9 (36
// vertices, 54 edges) with a dedicated Verifier. Gated at 0 allocs/op
// by cmd/benchgate.
func BenchmarkGeneralVerify(b *testing.B) {
	host := graph.FlowerSnark(9)
	cv, err := greedyBenchCover(host)
	if err != nil {
		b.Fatal(err)
	}
	vf := NewVerifier()
	if err := vf.VerifyGeneral(cv, host); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := vf.VerifyGeneral(cv, host); err != nil {
			b.Fatal(err)
		}
	}
}

// greedyBenchCover builds a valid (not short) cover for a cubic host by
// walking each uncovered edge around a shortest cycle through it, found
// by BFS between its endpoints with the edge removed. Test-only.
func greedyBenchCover(host *graph.Graph) (*Covering, error) {
	n := host.N()
	cv := NewGeneralCovering(n)
	cov := graph.New(n)
	var missing []graph.Edge
	host.ForEachEdge(func(u, v, _ int) bool {
		missing = append(missing, graph.Edge{U: u, V: v})
		return true
	})
	for _, e := range missing {
		if cov.Mult(e.U, e.V) > 0 {
			continue
		}
		path := bfsPathAvoiding(host, e.U, e.V)
		if path == nil {
			return nil, fmt.Errorf("no cycle through %v", e)
		}
		c, err := WalkCycle(path)
		if err != nil {
			return nil, err
		}
		cv.Add(c)
		for _, p := range c.Pairs() {
			cov.AddEdge(p.U, p.V)
		}
	}
	return cv, nil
}

// bfsPathAvoiding returns a shortest u→v path not using edge {u,v}
// directly, as a vertex sequence starting at u and ending at v (which
// closes into a cycle through {u,v}); nil when none exists.
func bfsPathAvoiding(g *graph.Graph, u, v int) []int {
	prev := make([]int, g.N())
	for i := range prev {
		prev[i] = -2
	}
	prev[u] = -1
	queue := []int{u}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(x) {
			if x == u && w == v {
				continue // must go the long way around
			}
			if prev[w] == -2 {
				prev[w] = x
				queue = append(queue, w)
			}
		}
	}
	if prev[v] == -2 {
		return nil
	}
	var rev []int
	for x := v; x != -1; x = prev[x] {
		rev = append(rev, x)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

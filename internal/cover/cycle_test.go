package cover

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/cyclecover/cyclecover/internal/graph"
	"github.com/cyclecover/cyclecover/internal/ring"
)

func TestNewCycleValidation(t *testing.T) {
	r := ring.MustNew(7)
	if _, err := NewCycle(r, 1, 2); err == nil {
		t.Error("2-vertex cycle: want error")
	}
	if _, err := NewCycle(r, 1, 2, 1); err == nil {
		t.Error("duplicate vertex: want error")
	}
	if _, err := NewCycle(r, 1, 8, 3); err == nil {
		t.Error("8 normalises to 1, duplicating: want error")
	}
	c, err := NewCycle(r, 6, 0, 3)
	if err != nil {
		t.Fatalf("NewCycle: %v", err)
	}
	vs := c.Vertices()
	if vs[0] != 0 || vs[1] != 3 || vs[2] != 6 {
		t.Errorf("Vertices = %v, want ring order [0 3 6]", vs)
	}
}

func TestCycleNormalisesLabels(t *testing.T) {
	r := ring.MustNew(5)
	c := MustCycle(r, -1, 5, 7)
	vs := c.Vertices()
	if vs[0] != 0 || vs[1] != 2 || vs[2] != 4 {
		t.Errorf("Vertices = %v, want [0 2 4]", vs)
	}
}

func TestPairsAndCoversPair(t *testing.T) {
	r := ring.MustNew(8)
	c := MustCycle(r, 1, 4, 6, 7)
	pairs := c.Pairs()
	want := []graph.Edge{
		graph.NewEdge(1, 4), graph.NewEdge(4, 6),
		graph.NewEdge(6, 7), graph.NewEdge(1, 7),
	}
	if len(pairs) != len(want) {
		t.Fatalf("Pairs = %v", pairs)
	}
	for i := range want {
		if pairs[i] != want[i] {
			t.Fatalf("Pairs = %v, want %v", pairs, want)
		}
	}
	if !c.CoversPair(7, 1) {
		t.Error("CoversPair(7,1): wrap-around pair must be covered")
	}
	if c.CoversPair(1, 6) {
		t.Error("CoversPair(1,6): chord of the cycle, not consecutive")
	}
	if c.CoversPair(1, 5) {
		t.Error("CoversPair(1,5): 5 not on cycle")
	}
}

func TestGapsSumToN(t *testing.T) {
	r := ring.MustNew(9)
	c := MustCycle(r, 0, 2, 5)
	gs := c.Gaps(r)
	if gs[0] != 2 || gs[1] != 3 || gs[2] != 4 {
		t.Errorf("Gaps = %v, want [2 3 4]", gs)
	}
}

func TestGapsSumProperty(t *testing.T) {
	// Whatever vertex set a cycle has, its gaps sum to n: the canonical
	// routing wraps the ring exactly once.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		r := ring.MustNew(n)
		k := 3 + rng.Intn(n-2)
		perm := rng.Perm(n)[:k]
		c := MustCycle(r, perm...)
		sum := 0
		for _, g := range c.Gaps(r) {
			sum += g
		}
		return sum == n && c.Len() == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArcsPartitionRingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(25)
		r := ring.MustNew(n)
		k := 3 + rng.Intn(n-2)
		c := MustCycle(r, rng.Perm(n)[:k]...)
		covered := make([]int, n)
		for _, a := range c.Arcs(r) {
			for _, l := range a.Links(r) {
				covered[l]++
			}
		}
		for _, cnt := range covered {
			if cnt != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUsesShortArcsOnly(t *testing.T) {
	r := ring.MustNew(8)
	if !MustCycle(r, 0, 3, 6).UsesShortArcsOnly(r) {
		t.Error("(0,3,6) on C8 has gaps 3,3,2: all short")
	}
	if MustCycle(r, 0, 1, 2).UsesShortArcsOnly(r) {
		t.Error("(0,1,2) on C8 has a gap of 6: long arc in use")
	}
	// Diameters (gap exactly n/2) count as short (ties allowed).
	if !MustCycle(r, 0, 4, 6).UsesShortArcsOnly(r) {
		t.Error("(0,4,6) on C8 has gaps 4,2,2: diameter tie is allowed")
	}
}

func TestTriangleQuadPredicates(t *testing.T) {
	r := ring.MustNew(9)
	if !MustCycle(r, 0, 1, 2).IsTriangle() {
		t.Error("IsTriangle")
	}
	if !MustCycle(r, 0, 1, 2, 3).IsQuad() {
		t.Error("IsQuad")
	}
	if MustCycle(r, 0, 1, 2, 3, 4).IsTriangle() || MustCycle(r, 0, 1, 2, 3, 4).IsQuad() {
		t.Error("C5 is neither triangle nor quad")
	}
}

func TestEqualAndKey(t *testing.T) {
	r := ring.MustNew(7)
	a := MustCycle(r, 3, 0, 5)
	b := MustCycle(r, 5, 3, 0)
	c := MustCycle(r, 0, 3, 6)
	if !a.Equal(b) || a.Key() != b.Key() {
		t.Error("same vertex set must compare equal")
	}
	if a.Equal(c) || a.Key() == c.Key() {
		t.Error("different vertex sets must differ")
	}
	if a.String() != "(0,3,5)" {
		t.Errorf("String = %q, want (0,3,5)", a.String())
	}
}

func TestContains(t *testing.T) {
	r := ring.MustNew(6)
	c := MustCycle(r, 1, 3, 5)
	for _, v := range []int{1, 3, 5} {
		if !c.Contains(v) {
			t.Errorf("Contains(%d): want true", v)
		}
	}
	for _, v := range []int{0, 2, 4} {
		if c.Contains(v) {
			t.Errorf("Contains(%d): want false", v)
		}
	}
}

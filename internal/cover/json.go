package cover

import (
	"encoding/json"
	"fmt"

	"github.com/cyclecover/cyclecover/internal/ring"
)

// coveringJSON is the stable interchange form used by the CLI tools:
// {"n": 7, "cycles": [[0,3,4], ...]}.
type coveringJSON struct {
	N      int     `json:"n"`
	Cycles [][]int `json:"cycles"`
}

// MarshalJSON encodes the covering as its ring size and cycle vertex
// sets.
func (cv *Covering) MarshalJSON() ([]byte, error) {
	out := coveringJSON{N: cv.Ring.N()}
	for _, c := range cv.Cycles {
		out.Cycles = append(out.Cycles, c.Vertices())
	}
	return json.Marshal(out)
}

// FromVertexSets builds a covering over r from raw cycle vertex sets,
// naming the first offending cycle on failure. It is the shared
// reconstruction path for every deserialized covering (JSON interchange,
// cache snapshots, the /verify endpoint), so validation stays in one
// place.
func FromVertexSets(r ring.Ring, sets [][]int) (*Covering, error) {
	cv := NewCovering(r)
	for i, verts := range sets {
		c, err := NewCycle(r, verts...)
		if err != nil {
			return nil, fmt.Errorf("cycle %d: %w", i, err)
		}
		cv.Add(c)
	}
	return cv, nil
}

// UnmarshalJSON decodes and validates a covering: the ring size must be
// admissible and every cycle a valid DRC cycle (≥3 distinct vertices on
// the ring).
func (cv *Covering) UnmarshalJSON(data []byte) error {
	var in coveringJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("cover: decoding covering: %w", err)
	}
	r, err := ring.New(in.N)
	if err != nil {
		return fmt.Errorf("cover: decoding covering: %w", err)
	}
	decoded, err := FromVertexSets(r, in.Cycles)
	if err != nil {
		return fmt.Errorf("cover: decoding %w", err)
	}
	*cv = *decoded
	return nil
}

package cover

import (
	"testing"

	"github.com/cyclecover/cyclecover/internal/graph"
	"github.com/cyclecover/cyclecover/internal/ring"
)

// TestVerifyWarmZeroAllocs pins the hot-path contract of the dense
// verifier: once the pooled scratch has grown to the ring size, a full
// Verify — ring validity, per-cycle DRC re-verification, coverage check —
// allocates nothing. This is the acceptance gate of the flat-core
// refactor (DESIGN.md §7); a regression here means a hidden allocation
// crept back into the innermost loops.
func TestVerifyWarmZeroAllocs(t *testing.T) {
	for _, n := range []int{9, 21, 33} {
		r := ring.MustNew(n)
		cv := NewCovering(r)
		// A hand-rolled valid covering of C_n-adjacency demand plus some
		// chords: triangles marching around the ring.
		for v := 0; v < n; v++ {
			cv.Add(MustCycle(r, v, (v+1)%n, (v+2)%n))
		}
		demand := graph.New(n)
		for v := 0; v < n; v++ {
			demand.AddEdge(v, (v+1)%n)
			demand.AddEdge(v, (v+2)%n)
		}
		if err := Verify(cv, demand); err != nil {
			t.Fatalf("n=%d: covering invalid: %v", n, err)
		}
		// Dedicated verifier: strictly zero once warm.
		vf := NewVerifier()
		if err := vf.Verify(cv, demand); err != nil {
			t.Fatal(err)
		}
		if avg := testing.AllocsPerRun(200, func() {
			if err := vf.Verify(cv, demand); err != nil {
				t.Error(err)
			}
		}); avg != 0 {
			t.Fatalf("n=%d: warm Verifier.Verify allocated %.2f/op, want 0", n, avg)
		}
		// Pooled package-level path: zero in steady state too. Under the
		// race detector sync.Pool drops Put values by design, so the
		// pooled path legitimately re-allocates there; the dedicated
		// Verifier assertion above still pins the scratch contract.
		if raceEnabled {
			continue
		}
		if avg := testing.AllocsPerRun(200, func() {
			if err := Verify(cv, demand); err != nil {
				t.Error(err)
			}
		}); avg != 0 {
			t.Fatalf("n=%d: warm pooled Verify allocated %.2f/op, want 0", n, avg)
		}
	}
}

// TestVerifyDRCWarmZeroAllocs pins the per-cycle DRC check alone: the
// link-load tally replaced the O(k²) pairwise arc comparison and must
// stay allocation-free.
func TestVerifyDRCWarmZeroAllocs(t *testing.T) {
	r := ring.MustNew(101)
	c := MustCycle(r, 0, 25, 50, 75)
	vf := NewVerifier()
	if err := vf.VerifyDRC(r, c); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(200, func() {
		if err := vf.VerifyDRC(r, c); err != nil {
			t.Error(err)
		}
	}); avg != 0 {
		t.Fatalf("warm VerifyDRC allocated %.2f/op, want 0", avg)
	}
}

// TestCoversCrossRingCycleNoPanic pins the error-not-panic contract the
// map era had: a covering holding a cycle built against a larger ring
// (vertex labels beyond the real ring) must report uncovered demand,
// not panic in the dense coverage tally.
func TestCoversCrossRingCycleNoPanic(t *testing.T) {
	big := ring.MustNew(12)
	small := ring.MustNew(6)
	cv := NewCovering(small)
	cv.Add(MustCycle(big, 1, 5, 9)) // vertex 9 outside C_6
	demand := graph.New(6)
	demand.AddEdge(1, 5)
	// Pair {1,5} is in range and covered by the cycle's (1,5) slot.
	if err := cv.Covers(demand); err != nil {
		t.Fatalf("in-range pair of a cross-ring cycle must still count: %v", err)
	}
	demand.AddEdge(2, 3)
	err := cv.Covers(demand)
	if err == nil {
		t.Fatal("uncovered pair must be reported")
	}
	if got, want := err.Error(), "cover: pair {2,3} covered 0 times, need 1"; got != want {
		t.Fatalf("error = %q, want %q", got, want)
	}
	if missing := cv.Uncovered(demand); len(missing) != 1 || missing[0] != graph.NewEdge(2, 3) {
		t.Fatalf("Uncovered = %v, want [{2,3}]", missing)
	}
	// Full Verify still rejects the covering up front (vertex range).
	if err := Verify(cv, demand); err == nil {
		t.Fatal("Verify must reject an out-of-ring cycle")
	}
}

// TestVerifyDRCOverloadNamesLink pins the new failure shape: a cycle
// whose canonical routing stacks two arcs on a link reports the first
// overloaded link, deterministically.
func TestVerifyDRCOverloadNamesLink(t *testing.T) {
	// Build a vertex sequence against a larger ring so the canonical
	// (sorted-by-that-ring) order violates ring order on the real ring.
	big := ring.MustNew(12)
	c := MustCycle(big, 1, 5, 9) // fine on C_12 …
	small := ring.MustNew(6)     // … but on C_6 vertices 1,5,9→{1,5,3}: out of ring order
	err := VerifyDRC(small, c)
	if err == nil {
		t.Fatal("expected a DRC violation")
	}
	want := "cover: cycle (1,5,9) routes link 1 on two arcs"
	if err.Error() != want {
		t.Fatalf("error = %q, want %q", err, want)
	}
}

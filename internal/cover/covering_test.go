package cover

import (
	"testing"

	"github.com/cyclecover/cyclecover/internal/graph"
	"github.com/cyclecover/cyclecover/internal/ring"
)

// paperExample builds the valid covering from the paper's worked example:
// G = C4, I = K4, covering {(1,2,3,4), (1,2,4), (1,3,4)} — relabelled to
// 0-based vertices {(0,1,2,3), (0,1,3), (0,2,3)}.
func paperExample(t *testing.T) *Covering {
	t.Helper()
	r := ring.MustNew(4)
	cv := NewCovering(r)
	cv.Add(
		MustCycle(r, 0, 1, 2, 3),
		MustCycle(r, 0, 1, 3),
		MustCycle(r, 0, 2, 3),
	)
	return cv
}

func TestPaperExampleCoversK4(t *testing.T) {
	cv := paperExample(t)
	if err := cv.Covers(graph.Complete(4)); err != nil {
		t.Fatalf("paper example must cover K4: %v", err)
	}
	if err := VerifyOptimal(cv); err != nil {
		t.Fatalf("paper example is optimal (ρ(4)=3): %v", err)
	}
}

func TestCoversDetectsMissingPair(t *testing.T) {
	r := ring.MustNew(4)
	cv := NewCovering(r)
	// The paper's *invalid* covering: two C4s (1,2,3,4) and (1,3,4,2).
	// The second is not a DRC cycle at all; as vertex sets both collapse
	// to {0,1,2,3}, so the chords {0,2} and {1,3} stay uncovered.
	cv.Add(MustCycle(r, 0, 1, 2, 3), MustCycle(r, 0, 2, 3, 1))
	err := cv.Covers(graph.Complete(4))
	if err == nil {
		t.Fatal("chords of C4 uncovered: want error")
	}
	missing := cv.Uncovered(graph.Complete(4))
	if len(missing) != 2 {
		t.Fatalf("Uncovered = %v, want the two chords", missing)
	}
	if missing[0] != graph.NewEdge(0, 2) || missing[1] != graph.NewEdge(1, 3) {
		t.Fatalf("Uncovered = %v, want [{0,2} {1,3}]", missing)
	}
}

func TestCoversMultiplicity(t *testing.T) {
	r := ring.MustNew(5)
	cv := NewCovering(r)
	cv.Add(MustCycle(r, 0, 1, 2), MustCycle(r, 0, 1, 2))
	demand := graph.New(5)
	demand.AddEdgeMulti(0, 1, 2)
	if err := cv.Covers(demand); err != nil {
		t.Errorf("pair {0,1} covered twice, multiplicity 2: %v", err)
	}
	demand.AddEdgeMulti(0, 1, 1)
	if err := cv.Covers(demand); err == nil {
		t.Error("multiplicity 3 > coverage 2: want error")
	}
}

func TestCoversRejectsOversizedDemand(t *testing.T) {
	r := ring.MustNew(4)
	cv := NewCovering(r)
	if err := cv.Covers(graph.Complete(5)); err == nil {
		t.Error("demand on 5 vertices over ring of 4: want error")
	}
}

func TestCompositionAndStats(t *testing.T) {
	cv := paperExample(t)
	comp := cv.Composition()
	if comp[3] != 2 || comp[4] != 1 {
		t.Errorf("Composition = %v, want 2×C3 + 1×C4", comp)
	}
	if cv.NumTriangles() != 2 || cv.NumQuads() != 1 {
		t.Error("NumTriangles/NumQuads mismatch")
	}
	s := cv.Summarize()
	if s.Cycles != 3 || s.Triangles != 2 || s.Quads != 1 || s.Longer != 0 {
		t.Errorf("Stats = %+v", s)
	}
	if s.Slots != 10 || s.Slack != 4 {
		// 3+3+4 = 10 slots over 6 pairs: the two C3s re-cover edges of the
		// C4... slots 10, distinct pairs 6 → slack 4.
		t.Errorf("Slots=%d Slack=%d, want 10, 4", s.Slots, s.Slack)
	}
	if s.String() == "" {
		t.Error("Stats.String must be non-empty")
	}
}

func TestTotalVerticesAndSlots(t *testing.T) {
	cv := paperExample(t)
	if cv.TotalVertices() != 10 || cv.Slots() != 10 {
		t.Errorf("TotalVertices = %d, Slots = %d, want 10", cv.TotalVertices(), cv.Slots())
	}
}

func TestDedup(t *testing.T) {
	r := ring.MustNew(6)
	cv := NewCovering(r)
	cv.Add(MustCycle(r, 0, 1, 2), MustCycle(r, 2, 0, 1), MustCycle(r, 3, 4, 5))
	cv.Dedup()
	if cv.Size() != 2 {
		t.Errorf("Dedup: size = %d, want 2", cv.Size())
	}
}

func TestCanonicalizeDeterministic(t *testing.T) {
	r := ring.MustNew(6)
	cv := NewCovering(r)
	cv.Add(MustCycle(r, 0, 1, 2, 3), MustCycle(r, 3, 4, 5), MustCycle(r, 0, 4, 5))
	cv.Canonicalize()
	if !cv.Cycles[0].Equal(MustCycle(r, 0, 4, 5)) {
		t.Errorf("first after canonicalize = %v", cv.Cycles[0])
	}
	if !cv.Cycles[2].IsQuad() {
		t.Errorf("longest cycle must sort last, got %v", cv.Cycles[2])
	}
}

func TestCloneIndependence(t *testing.T) {
	cv := paperExample(t)
	c2 := cv.Clone()
	c2.Add(MustCycle(cv.Ring, 0, 1, 2))
	if cv.Size() == c2.Size() {
		t.Error("clone mutation leaked")
	}
}

func TestVerifyDRCOnValidCycles(t *testing.T) {
	r := ring.MustNew(9)
	for _, c := range []Cycle{
		MustCycle(r, 0, 1, 2),
		MustCycle(r, 0, 3, 6),
		MustCycle(r, 1, 4, 5, 8),
		MustCycle(r, 0, 1, 2, 3, 4, 5, 6, 7, 8),
	} {
		if err := VerifyDRC(r, c); err != nil {
			t.Errorf("VerifyDRC(%v): %v", c, err)
		}
	}
}

func TestVerifyWholeCovering(t *testing.T) {
	cv := paperExample(t)
	if err := Verify(cv, graph.Complete(4)); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// Demand with an uncovered pair must fail.
	r := ring.MustNew(5)
	bad := NewCovering(r)
	bad.Add(MustCycle(r, 0, 1, 2))
	if err := Verify(bad, graph.Complete(5)); err == nil {
		t.Error("incomplete covering must fail Verify")
	}
}

func TestVerifyOptimalRejectsOversized(t *testing.T) {
	cv := paperExample(t)
	cv.Add(MustCycle(cv.Ring, 0, 1, 2)) // redundant 4th cycle
	if err := VerifyOptimal(cv); err == nil {
		t.Error("4 cycles for ρ(4)=3: want error")
	}
}

package cover

import (
	"fmt"
	"sort"

	"github.com/cyclecover/cyclecover/internal/graph"
	"github.com/cyclecover/cyclecover/internal/ring"
)

// Covering is a family of DRC cycles over one ring, intended to cover a
// logical graph. Cycles may overlap: the paper's objects are coverings,
// not decompositions (though optimal odd-n coverings happen to be
// partitions).
type Covering struct {
	Ring   ring.Ring
	Cycles []Cycle
}

// NewCovering returns an empty covering over r.
func NewCovering(r ring.Ring) *Covering {
	return &Covering{Ring: r}
}

// Add appends cycles to the covering.
func (cv *Covering) Add(cs ...Cycle) { cv.Cycles = append(cv.Cycles, cs...) }

// Size returns the number of cycles — the paper's objective function.
func (cv *Covering) Size() int { return len(cv.Cycles) }

// TotalVertices returns the sum of cycle lengths — the objective of
// Eilam–Moran–Zaks [3] / Gerstel–Lin–Sasaki [4], reported for comparison
// experiments.
func (cv *Covering) TotalVertices() int {
	t := 0
	for _, c := range cv.Cycles {
		t += c.Len()
	}
	return t
}

// Slots returns the total number of covered pair-slots (with
// multiplicity); equal to TotalVertices since a cycle of length k covers k
// pairs.
func (cv *Covering) Slots() int { return cv.TotalVertices() }

// Composition returns how many cycles of each length the covering uses,
// e.g. {3: p, 4: p(p-1)/2} for the Theorem 1 construction.
func (cv *Covering) Composition() map[int]int {
	comp := make(map[int]int)
	for _, c := range cv.Cycles {
		comp[c.Len()]++
	}
	return comp
}

// NumTriangles returns the number of C3 cycles.
func (cv *Covering) NumTriangles() int { return cv.Composition()[3] }

// NumQuads returns the number of C4 cycles.
func (cv *Covering) NumQuads() int { return cv.Composition()[4] }

// CoverageCounts returns, for each pair covered at least once, how many
// cycle slots cover it.
func (cv *Covering) CoverageCounts() map[graph.Edge]int {
	counts := make(map[graph.Edge]int)
	for _, c := range cv.Cycles {
		for _, p := range c.Pairs() {
			counts[p]++
		}
	}
	return counts
}

// DuplicateSlots returns the number of slots in excess of one per distinct
// covered pair — the covering's slack. Optimal odd-n coverings have zero
// slack; the paper's even-n coverings have positive slack.
func (cv *Covering) DuplicateSlots() int {
	d := 0
	//cyclecover:nondet order-free fold: commutative sum of per-pair slack
	for _, k := range cv.CoverageCounts() {
		d += k - 1
	}
	return d
}

// TallyCoverage adds one edge per covered pair-slot of the covering into
// g — the dense equivalent of CoverageCounts, shared by the verifier
// (which passes its reusable scratch graph), Covers/Uncovered and the
// redundancy optimiser. g must already span the vertices of interest;
// pairs with an endpoint outside g are skipped rather than counted:
// such a slot can never serve a demand edge, so cycles built against
// the wrong ring stay a descriptive verification error, never a panic.
func (cv *Covering) TallyCoverage(g *graph.Graph) {
	n := g.N()
	for _, c := range cv.Cycles {
		verts := c.Vertices()
		k := len(verts)
		for i := 0; i < k; i++ {
			u, v := verts[i], verts[(i+1)%k]
			if u < 0 || v < 0 || u >= n || v >= n {
				continue
			}
			g.AddEdge(u, v)
		}
	}
}

// coverageGraph tallies every covered pair-slot into a fresh dense graph
// on the ring's vertices: Mult(u, v) is the number of cycle slots
// covering the pair. Iterating it (or the demand) is deterministic by
// construction.
func (cv *Covering) coverageGraph() *graph.Graph {
	g := graph.New(cv.Ring.N())
	cv.TallyCoverage(g)
	return g
}

// coverageShortfall reports the first demand pair whose tallied coverage
// falls below its multiplicity, in deterministic (ascending
// lexicographic) order — the shared scan behind Covers and
// Verifier.Verify. The demand must already be known to fit counts.
func coverageShortfall(counts, demand *graph.Graph) error {
	var err error
	demand.ForEachEdge(func(u, v, need int) bool {
		if got := counts.Mult(u, v); got < need {
			err = fmt.Errorf("cover: pair %v covered %d times, need %d", graph.Edge{U: u, V: v}, got, need)
			return false
		}
		return true
	})
	return err
}

// Covers checks that every edge of the demand graph is covered by at least
// its multiplicity (so a covering of λK_n serves each pair λ times). It
// returns a descriptive error naming the first failure in deterministic
// (ascending lexicographic) order, or nil.
func (cv *Covering) Covers(demand *graph.Graph) error {
	if demand.N() > cv.Ring.N() {
		return fmt.Errorf("cover: demand graph on %d vertices exceeds ring size %d", demand.N(), cv.Ring.N())
	}
	return coverageShortfall(cv.coverageGraph(), demand)
}

// Uncovered returns the demand edges (distinct pairs) whose coverage is
// below their multiplicity, in deterministic order, together with the
// shortfall.
func (cv *Covering) Uncovered(demand *graph.Graph) []graph.Edge {
	counts := cv.coverageGraph()
	var missing []graph.Edge
	demand.ForEachEdge(func(u, v, need int) bool {
		// A demand vertex beyond the ring can never be covered.
		if v >= counts.N() || counts.Mult(u, v) < need {
			missing = append(missing, graph.Edge{U: u, V: v})
		}
		return true
	})
	return missing
}

// Clone returns a deep-enough copy (cycles are immutable values).
func (cv *Covering) Clone() *Covering {
	out := NewCovering(cv.Ring)
	out.Cycles = append([]Cycle(nil), cv.Cycles...)
	return out
}

// CloneDetached returns a deep copy whose cycles own fresh vertex
// storage. Clone is sufficient for coverings built from immutable cycles
// (NewCycle copies its input); a covering materialized over reusable
// scratch buffers (CycleFromSortedVerts) must be detached before it
// outlives the scratch — e.g. before admission to a cache.
func (cv *Covering) CloneDetached() *Covering {
	out := NewCovering(cv.Ring)
	out.Cycles = make([]Cycle, len(cv.Cycles))
	for i, c := range cv.Cycles {
		out.Cycles[i] = Cycle{verts: append([]int(nil), c.verts...)}
	}
	return out
}

// Dedup removes cycles with identical vertex sets, keeping first
// occurrences and preserving order.
func (cv *Covering) Dedup() {
	seen := make(map[string]bool, len(cv.Cycles))
	kept := cv.Cycles[:0]
	for _, c := range cv.Cycles {
		k := c.Key()
		if !seen[k] {
			seen[k] = true
			kept = append(kept, c)
		}
	}
	cv.Cycles = kept
}

// Canonicalize sorts cycles by length then lexicographic vertex order, for
// deterministic output and comparison in tests and experiment tables.
func (cv *Covering) Canonicalize() {
	sort.Slice(cv.Cycles, func(i, j int) bool {
		a, b := cv.Cycles[i], cv.Cycles[j]
		if a.Len() != b.Len() {
			return a.Len() < b.Len()
		}
		av, bv := a.Vertices(), b.Vertices()
		for k := range av {
			if av[k] != bv[k] {
				return av[k] < bv[k]
			}
		}
		return false
	})
}

// Stats summarises a covering for experiment output.
type Stats struct {
	N         int // ring size
	Cycles    int // number of cycles (the objective)
	Triangles int
	Quads     int
	Longer    int // cycles of length >= 5
	Slots     int
	Slack     int  // duplicate slots
	ShortOnly bool // every cycle routes every pair along a short arc
}

// Summarize computes Stats for the covering.
func (cv *Covering) Summarize() Stats {
	s := Stats{
		N:         cv.Ring.N(),
		Cycles:    cv.Size(),
		Slots:     cv.Slots(),
		Slack:     cv.DuplicateSlots(),
		ShortOnly: true,
	}
	for _, c := range cv.Cycles {
		switch c.Len() {
		case 3:
			s.Triangles++
		case 4:
			s.Quads++
		default:
			s.Longer++
		}
		if !c.UsesShortArcsOnly(cv.Ring) {
			s.ShortOnly = false
		}
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("n=%d cycles=%d (C3=%d C4=%d C5+=%d) slots=%d slack=%d shortOnly=%v",
		s.N, s.Cycles, s.Triangles, s.Quads, s.Longer, s.Slots, s.Slack, s.ShortOnly)
}

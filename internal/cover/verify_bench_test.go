package cover

import (
	"testing"

	"github.com/cyclecover/cyclecover/internal/graph"
	"github.com/cyclecover/cyclecover/internal/ring"
)

// BenchmarkVerifyWarm is the pinned warm-verifier hot path: full Verify
// of a 33-cycle covering against its demand with a dedicated Verifier.
// CI runs it under -benchmem and fails on allocs/op > 0 (see the alloc
// gate in ci.yml); TestVerifyWarmZeroAllocs pins the same contract as a
// test.
func BenchmarkVerifyWarm(b *testing.B) {
	const n = 33
	r := ring.MustNew(n)
	cv := NewCovering(r)
	for v := 0; v < n; v++ {
		cv.Add(MustCycle(r, v, (v+1)%n, (v+2)%n))
	}
	demand := graph.New(n)
	for v := 0; v < n; v++ {
		demand.AddEdge(v, (v+1)%n)
		demand.AddEdge(v, (v+2)%n)
	}
	vf := NewVerifier()
	if err := vf.Verify(cv, demand); err != nil { // warm the scratch
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := vf.Verify(cv, demand); err != nil {
			b.Fatal(err)
		}
	}
}

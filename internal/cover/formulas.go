package cover

import "fmt"

// Rho returns ρ(n), the minimum number of cycles in a DRC-covering of K_n
// over C_n, per the paper's theorems:
//
//   - Theorem 1: n = 2p+1 odd ⇒ ρ(n) = p(p+1)/2;
//   - Theorem 2: n = 2p even, p ≥ 3 ⇒ ρ(n) = ⌈(p²+1)/2⌉.
//
// The even formula also yields the correct value ρ(4) = 3 (p = 2), which
// matches the paper's worked example on C_4/K_4 and our exhaustive search;
// Theorem 2's p ≥ 3 restriction concerns its stated C3/C4 composition, not
// the count. Rho panics for n < 3.
func Rho(n int) int {
	if n < 3 {
		panic(fmt.Sprintf("cover: Rho undefined for n = %d", n))
	}
	if n%2 == 1 {
		p := (n - 1) / 2
		return p * (p + 1) / 2
	}
	p := n / 2
	return (p*p + 1 + 1) / 2 // ⌈(p²+1)/2⌉
}

// Composition is the cycle-length mix of a covering: how many C3 and C4
// (the paper's constructions use no longer cycles).
type Composition struct {
	C3, C4 int
}

// Total returns the number of cycles in the composition.
func (c Composition) Total() int { return c.C3 + c.C4 }

// Slots returns the number of pair-slots the composition provides.
func (c Composition) Slots() int { return 3*c.C3 + 4*c.C4 }

func (c Composition) String() string {
	return fmt.Sprintf("%d×C3 + %d×C4", c.C3, c.C4)
}

// TheoremComposition returns the C3/C4 mix of the covering stated by the
// paper's theorems, and ok = true when the paper specifies one:
//
//   - n = 2p+1: p C3 and p(p−1)/2 C4 (Theorem 1, n ≥ 3);
//   - n = 4q:   4 C3 and 2q²−3 C4 (Theorem 2, q ≥ 2 so the C4 count is
//     non-negative and p = 2q ≥ 3... the theorem requires p ≥ 3, i.e. n ≥ 8);
//   - n = 4q+2: 2 C3 and 2q²+2q−1 C4 (Theorem 2, n ≥ 6).
//
// For n = 4 the paper's worked example exhibits 2 C3 + 1 C4, which we also
// return with ok = true since the text states it explicitly.
func TheoremComposition(n int) (Composition, bool) {
	switch {
	case n < 3:
		return Composition{}, false
	case n%2 == 1:
		p := (n - 1) / 2
		return Composition{C3: p, C4: p * (p - 1) / 2}, true
	case n == 4:
		return Composition{C3: 2, C4: 1}, true
	case n%4 == 0:
		q := n / 4
		if q < 2 {
			return Composition{}, false
		}
		return Composition{C3: 4, C4: 2*q*q - 3}, true
	default: // n ≡ 2 (mod 4), n ≥ 6
		q := (n - 2) / 4
		return Composition{C3: 2, C4: 2*q*q + 2*q - 1}, true
	}
}

// EdgeCount returns |E(K_n)| = n(n−1)/2, the number of pairs a covering of
// the all-to-all instance must serve.
func EdgeCount(n int) int { return n * (n - 1) / 2 }

// TheoremSlack returns the number of duplicate slots implied by the
// paper's stated composition: Slots − |E(K_n)|. It is 0 for odd n (the
// optimal covering is a partition) and positive for even n.
func TheoremSlack(n int) (int, bool) {
	comp, ok := TheoremComposition(n)
	if !ok {
		return 0, false
	}
	return comp.Slots() - EdgeCount(n), true
}

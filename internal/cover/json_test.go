package cover

import (
	"encoding/json"
	"testing"

	"github.com/cyclecover/cyclecover/internal/graph"
	"github.com/cyclecover/cyclecover/internal/ring"
)

func TestCoveringJSONRoundTrip(t *testing.T) {
	r := ring.MustNew(4)
	cv := NewCovering(r)
	cv.Add(MustCycle(r, 0, 1, 2, 3), MustCycle(r, 0, 1, 3), MustCycle(r, 0, 2, 3))

	data, err := json.Marshal(cv)
	if err != nil {
		t.Fatal(err)
	}
	var back Covering
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Ring.N() != 4 || back.Size() != 3 {
		t.Fatalf("round trip lost data: n=%d size=%d", back.Ring.N(), back.Size())
	}
	for i := range cv.Cycles {
		if !back.Cycles[i].Equal(cv.Cycles[i]) {
			t.Fatalf("cycle %d differs after round trip", i)
		}
	}
	if err := Verify(&back, graph.Complete(4)); err != nil {
		t.Fatal(err)
	}
}

func TestCoveringJSONValidatesOnDecode(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"bad ring", `{"n": 2, "cycles": []}`},
		{"short cycle", `{"n": 5, "cycles": [[0, 1]]}`},
		{"duplicate vertex", `{"n": 5, "cycles": [[0, 1, 1]]}`},
		{"not json", `{`},
	}
	for _, c := range cases {
		var cv Covering
		if err := json.Unmarshal([]byte(c.data), &cv); err == nil {
			t.Errorf("%s: want decode error", c.name)
		}
	}
}

func TestCoveringJSONNormalisesLabels(t *testing.T) {
	var cv Covering
	// Vertex 7 on C5 normalises to 2.
	if err := json.Unmarshal([]byte(`{"n": 5, "cycles": [[0, 7, 4]]}`), &cv); err != nil {
		t.Fatal(err)
	}
	if !cv.Cycles[0].Equal(MustCycle(ring.MustNew(5), 0, 2, 4)) {
		t.Fatalf("decoded cycle %v", cv.Cycles[0])
	}
}

// Package cover implements the paper's central object: coverings of a
// logical graph by cycles that satisfy the disjoint routing constraint
// (DRC) on a physical ring.
//
// # The DRC structure theorem
//
// The paper requires, for each cycle I_k of the covering, an assignment of
// ring paths to I_k's requests that is pairwise edge-disjoint. This package
// builds on the following reconstruction of the paper's (omitted)
// structural argument, proved here because everything else rests on it:
//
// Let I_k be a cycle a_1 — a_2 — … — a_k — a_1 and let P_i be the ring path
// routing request {a_i, a_i+1}, all P_i pairwise edge-disjoint. The
// concatenation P_1 P_2 … P_k is a closed walk that uses every ring edge at
// most once, so the union of the P_i is a non-empty subgraph of C_n with
// every degree even. The only such subgraph is C_n itself. The walk is
// therefore an Eulerian circuit of the ring — it goes around exactly once —
// and so it visits a_1, …, a_k in ring cyclic order (one of the two
// directions). Conversely, any set S of at least three vertices, visited in
// ring order, is routed edge-disjointly by assigning each cyclically
// consecutive pair the clockwise arc between its members: those arcs
// partition the ring.
//
// Consequences used throughout:
//
//   - a DRC-routable cycle is exactly a vertex set S, |S| ≥ 3, traversed in
//     ring order (Cycle below stores the canonical sorted form);
//   - the pairs covered by the cycle are exactly the cyclically consecutive
//     pairs of S;
//   - the routing of a cycle consumes arcs whose lengths sum to exactly n.
//
// The converse direction (arbitrary vertex orders that are NOT ring orders
// admit no disjoint routing) is checked exhaustively in package routing and
// exercised on the paper's own K_4/C_4 example.
package cover

import (
	"fmt"
	"strings"

	"github.com/cyclecover/cyclecover/internal/graph"
	"github.com/cyclecover/cyclecover/internal/ring"
)

// MinCycleLen is the smallest admissible cycle (a triangle).
const MinCycleLen = 3

// Cycle is a DRC-routable cycle on a ring: a set of at least three ring
// vertices, stored sorted by ring position. By the structure theorem in
// the package comment, traversing the set in ring order is the unique
// edge-disjoint routing shape, so the set determines the cycle.
type Cycle struct {
	verts []int // sorted ascending, distinct, all in [0, n)
}

// NewCycle builds the DRC cycle on the given vertex set. Vertices are
// normalised to [0, n); duplicates are rejected, as are sets smaller than
// MinCycleLen.
func NewCycle(r ring.Ring, verts ...int) (Cycle, error) {
	vs := make([]int, 0, len(verts))
	seen := make(map[int]bool, len(verts))
	for _, v := range verts {
		nv := r.Norm(v)
		if seen[nv] {
			return Cycle{}, fmt.Errorf("cover: duplicate vertex %d in cycle %v", nv, verts)
		}
		seen[nv] = true
		vs = append(vs, nv)
	}
	if len(vs) < MinCycleLen {
		return Cycle{}, fmt.Errorf("cover: cycle needs at least %d distinct vertices, got %d", MinCycleLen, len(vs))
	}
	ring.SortByRingOrder(vs)
	return Cycle{verts: vs}, nil
}

// CycleFromSortedVerts wraps an already-canonical vertex slice — sorted
// by ring order, distinct, in range — as a Cycle without copying or
// validating it. It exists for scratch-backed constructors (DeltaRepair)
// that materialize results into reusable buffers on a hot path; the
// cycle aliases verts, so the caller owns the lifetime and must
// CloneDetached the covering before sharing it. Every consumer of such
// coverings re-verifies them, so a malformed input fails verification
// rather than corrupting downstream state.
func CycleFromSortedVerts(verts []int) Cycle { return Cycle{verts: verts} }

// MustCycle is NewCycle that panics on error; for tests and constructions
// whose inputs are correct by design.
func MustCycle(r ring.Ring, verts ...int) Cycle {
	c, err := NewCycle(r, verts...)
	if err != nil {
		panic(err)
	}
	return c
}

// Len returns the number of vertices (equal to the number of covered
// pairs).
func (c Cycle) Len() int { return len(c.verts) }

// IsTriangle reports whether the cycle is a C3.
func (c Cycle) IsTriangle() bool { return len(c.verts) == 3 }

// IsQuad reports whether the cycle is a C4.
func (c Cycle) IsQuad() bool { return len(c.verts) == 4 }

// Vertices returns the vertex set in ring order. The caller must not
// modify the returned slice.
func (c Cycle) Vertices() []int { return c.verts }

// Contains reports whether v is on the cycle.
func (c Cycle) Contains(v int) bool {
	for _, w := range c.verts {
		if w == v {
			return true
		}
	}
	return false
}

// Pairs returns the covered request pairs: the cyclically consecutive
// pairs of the vertex set, in traversal order.
func (c Cycle) Pairs() []graph.Edge {
	k := len(c.verts)
	ps := make([]graph.Edge, 0, k)
	for i := 0; i < k; i++ {
		ps = append(ps, graph.NewEdge(c.verts[i], c.verts[(i+1)%k]))
	}
	return ps
}

// CoversPair reports whether the cycle covers the request {u, v}: both
// endpoints on the cycle and cyclically consecutive in it.
func (c Cycle) CoversPair(u, v int) bool {
	k := len(c.verts)
	for i := 0; i < k; i++ {
		a, b := c.verts[i], c.verts[(i+1)%k]
		if (a == u && b == v) || (a == v && b == u) {
			return true
		}
	}
	return false
}

// Gaps returns the clockwise arc lengths between consecutive vertices, in
// traversal order. They always sum to n (the routing wraps the ring
// exactly once).
func (c Cycle) Gaps(r ring.Ring) []int {
	k := len(c.verts)
	gs := make([]int, 0, k)
	for i := 0; i < k; i++ {
		gs = append(gs, r.Gap(c.verts[i], c.verts[(i+1)%k]))
	}
	return gs
}

// Arcs returns the clockwise arcs assigned to each covered pair by the
// canonical routing; they partition the ring's links.
func (c Cycle) Arcs(r ring.Ring) []ring.Arc {
	k := len(c.verts)
	as := make([]ring.Arc, 0, k)
	for i := 0; i < k; i++ {
		as = append(as, r.ArcBetween(c.verts[i], c.verts[(i+1)%k]))
	}
	return as
}

// UsesShortArcsOnly reports whether the canonical routing serves every
// covered pair along its shorter arc (ties at n/2 allowed). Optimal
// coverings for odd n must have this property on every cycle (the lower
// bound is tight only then); it is reported per-cycle in experiment output.
func (c Cycle) UsesShortArcsOnly(r ring.Ring) bool {
	for _, g := range c.Gaps(r) {
		if 2*g > r.N() {
			return false
		}
	}
	return true
}

// Equal reports whether two cycles have the same vertex set.
func (c Cycle) Equal(d Cycle) bool {
	if len(c.verts) != len(d.verts) {
		return false
	}
	for i := range c.verts {
		if c.verts[i] != d.verts[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical string key for the vertex set, usable as a map
// key for deduplication.
func (c Cycle) Key() string {
	var b strings.Builder
	for i, v := range c.verts {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}

// String renders the cycle in the paper's tuple notation, e.g. (0,2,5).
func (c Cycle) String() string { return "(" + c.Key() + ")" }

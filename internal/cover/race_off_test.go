//go:build !race

package cover

// raceEnabled mirrors race_on_test.go for regular builds.
const raceEnabled = false

package cover

import (
	"github.com/cyclecover/cyclecover/internal/graph"
	"github.com/cyclecover/cyclecover/internal/ring"
)

// SumShortGaps returns Σ_{u<v} dist(u,v) over all pairs of C_n: the total
// arc-length demand of the all-to-all instance when every pair is served
// along a shortest arc.
//
// For n = 2p+1 each gap class d = 1..p contributes n·d, giving n·p(p+1)/2.
// For n = 2p classes d = 1..p−1 contribute 2p·d and the p diameters
// contribute p·p, giving p³.
func SumShortGaps(n int) int {
	if n%2 == 1 {
		p := (n - 1) / 2
		return n * p * (p + 1) / 2
	}
	p := n / 2
	return p * p * p
}

// ArcLengthLowerBound returns the counting bound
//
//	ρ(n) ≥ ⌈ SumShortGaps(n) / n ⌉ ,
//
// which follows from the DRC structure theorem (package comment in
// cycle.go): every cycle's routing arcs partition the ring, so each cycle
// supplies exactly n arc units, while covering pair {u,v} costs at least
// dist(u,v) units whichever cycle covers it and whichever of its two arcs
// is used. For odd n this equals Theorem 1's value; equality forces every
// pair to be covered exactly once along a short arc (a partition).
func ArcLengthLowerBound(n int) int {
	return ceilDiv(SumShortGaps(n), n)
}

// LowerBound returns the best lower bound on ρ(n) implemented here:
// ArcLengthLowerBound, sharpened by +1 when n = 2p with p even.
//
// The +1 refinement: ArcLengthLowerBound(2p) = p²/2 when p is even, and a
// covering meeting it would be a partition of E(K_2p) in which every pair
// uses a short arc. In such a partition each of the p diameters is covered
// by a distinct cycle (two diameters can never be cyclically consecutive
// pairs of the same vertex set — their endpoints interleave around the
// ring), and each such cycle spends exactly p arc units on its diameter
// and p on the rest, so every remaining gap class d must be partitioned
// into runs of total length exactly matching an antipodally balanced
// layout. The gap-1 class obstructs this: the p cycles carrying the
// diameters cover exactly one of each antipodal position pair of class 1,
// and the C4 shapes that can finish classes {1, p−1} without touching
// other classes (gap patterns 1,1,p−1,p−1 and 1,p−1,1,p−1) each need
// either an antipodal position pair (unavailable by the above) or create a
// duplicate slot (contradicting a partition). Hence no covering of size
// p²/2 exists, matching Theorem 2. The package's exhaustive solver
// verifies this computationally for n = 8 and n = 12
// (TestEvenPlusOneRefinement in bound_test.go).
func LowerBound(n int) int {
	lb := ArcLengthLowerBound(n)
	if n%2 == 0 && (n/2)%2 == 0 {
		lb++
	}
	return lb
}

// InstanceLowerBound generalises the arc-length bound to an arbitrary
// logical multigraph I on the vertices of r:
//
//	ρ(I) ≥ ⌈ Σ_{e ∈ E(I)} dist(e) / n ⌉  (multiplicity counted)
//
// It also applies the trivial bound ρ ≥ 1 when I has at least one edge.
func InstanceLowerBound(r ring.Ring, demand *graph.Graph) int {
	total := 0
	for _, e := range demand.Edges() {
		total += r.Dist(e.U, e.V) * demand.Multiplicity(e.U, e.V)
	}
	if total == 0 {
		return 0
	}
	lb := ceilDiv(total, r.N())
	if lb < 1 {
		lb = 1
	}
	return lb
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

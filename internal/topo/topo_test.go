package topo

import (
	"testing"

	"github.com/cyclecover/cyclecover/internal/cover"
)

func TestGridStructure(t *testing.T) {
	g := Grid(3, 2)
	if g.G.N() != 6 {
		t.Fatalf("3x2 grid: %d vertices", g.G.N())
	}
	if g.G.M() != 7 {
		t.Fatalf("3x2 grid: %d edges, want 7", g.G.M())
	}
	if !g.G.HasEdge(0, 1) || !g.G.HasEdge(0, 3) || g.G.HasEdge(2, 3) {
		t.Error("grid adjacency wrong")
	}
}

func TestTorusStructure(t *testing.T) {
	g := Torus(4, 3)
	if g.G.N() != 12 || g.G.M() != 24 {
		t.Fatalf("4x3 torus: %d vertices %d edges, want 12, 24", g.G.N(), g.G.M())
	}
	for v := 0; v < 12; v++ {
		if g.G.Degree(v) != 4 {
			t.Fatalf("torus degree(%d) = %d, want 4", v, g.G.Degree(v))
		}
	}
}

func TestShortestPath(t *testing.T) {
	g := Grid(4, 4)
	p, ok := g.ShortestPath(0, 15)
	if !ok || len(p) != 7 {
		t.Fatalf("path 0→15 = %v (len %d), want 7 vertices", p, len(p))
	}
	if p[0] != 0 || p[len(p)-1] != 15 {
		t.Fatal("endpoints wrong")
	}
	for i := 0; i+1 < len(p); i++ {
		if !g.G.HasEdge(p[i], p[i+1]) {
			t.Fatalf("path uses non-edge {%d,%d}", p[i], p[i+1])
		}
	}
	if p2, ok := g.ShortestPath(3, 3); !ok || len(p2) != 1 {
		t.Error("trivial path")
	}
}

func TestRoutedCycleVerify(t *testing.T) {
	g := Grid(3, 3)
	face := FaceCycle(3, 3, 0, 0, false)
	if err := face.Verify(g); err != nil {
		t.Fatalf("unit face must verify: %v", err)
	}
	// Break edge-disjointness: route two requests over the same edge.
	bad := RoutedCycle{
		Demand: []int{0, 1, 4},
		Paths:  [][]int{{0, 1}, {1, 0, 3, 4}, {4, 3, 0}},
	}
	if err := bad.Verify(g); err == nil {
		t.Fatal("edge reuse must fail the generalised DRC")
	}
	short := RoutedCycle{Demand: []int{0, 1}, Paths: [][]int{{0, 1}, {1, 0}}}
	if err := short.Verify(g); err == nil {
		t.Fatal("2-cycles rejected")
	}
	reuse := RoutedCycle{
		Demand: []int{0, 1, 4},
		Paths:  [][]int{{0, 1}, {1, 4}, {4, 1, 0}}, // edge {1,4} appears twice
	}
	if err := reuse.Verify(g); err == nil {
		t.Fatal("edge reuse across paths must be rejected")
	}
}

func TestRoutedCycleRejectsMissingEdge(t *testing.T) {
	g := Grid(3, 3)
	diag := RoutedCycle{
		Demand: []int{0, 1, 4},
		Paths:  [][]int{{0, 1}, {1, 4}, {4, 0}}, // {4,0} is a diagonal: missing
	}
	if err := diag.Verify(g); err == nil {
		t.Fatal("missing edge must be rejected")
	}
}

func TestGridFaceCover(t *testing.T) {
	w, h := 5, 4
	g := Grid(w, h)
	faces := GridFaceCover(w, h)
	if len(faces) != (w-1)*(h-1) {
		t.Fatalf("%d faces, want %d", len(faces), (w-1)*(h-1))
	}
	for _, f := range faces {
		if err := f.Verify(g); err != nil {
			t.Fatal(err)
		}
	}
	covered := CoveredEdges(faces)
	for _, e := range g.G.Edges() {
		if covered[e] < 1 {
			t.Fatalf("grid edge %v uncovered", e)
		}
	}
}

func TestTorusCheckerboardExactCover(t *testing.T) {
	w, h := 6, 4
	g := Torus(w, h)
	faces := TorusCheckerboardCover(w, h)
	if len(faces) != w*h/2 {
		t.Fatalf("%d faces, want %d", len(faces), w*h/2)
	}
	for _, f := range faces {
		if err := f.Verify(g); err != nil {
			t.Fatal(err)
		}
	}
	covered := CoveredEdges(faces)
	for _, e := range g.G.Edges() {
		if covered[e] != 1 {
			t.Fatalf("torus edge %v covered %d times, want exactly 1", e, covered[e])
		}
	}
	if len(covered) != g.G.M() {
		t.Fatalf("covered %d distinct edges, want %d", len(covered), g.G.M())
	}
}

func TestTorusCheckerboardOddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd torus: want panic")
		}
	}()
	TorusCheckerboardCover(5, 4)
}

func TestBuildTree(t *testing.T) {
	tr, err := BuildTree([]RingSpec{{Size: 7, Parent: -1}, {Size: 5, Parent: 0}, {Size: 9, Parent: 0}})
	if err != nil {
		t.Fatal(err)
	}
	// Shared gateways: total vertices = 7 + 4 + 8.
	if tr.Vertices != 19 {
		t.Fatalf("vertices = %d, want 19", tr.Vertices)
	}
	if tr.Maps[1][0] != tr.Maps[0][0] || tr.Maps[2][0] != tr.Maps[0][0] {
		t.Fatal("children must share the parent's gateway vertex")
	}
	if _, err := BuildTree([]RingSpec{{Size: 2, Parent: -1}}); err == nil {
		t.Error("ring size 2: want error")
	}
	if _, err := BuildTree([]RingSpec{{Size: 5, Parent: 0}}); err == nil {
		t.Error("root with parent: want error")
	}
	if _, err := BuildTree([]RingSpec{{Size: 5, Parent: -1}, {Size: 5, Parent: 3}}); err == nil {
		t.Error("forward parent reference: want error")
	}
}

func TestPlanIntraRing(t *testing.T) {
	tr, err := BuildTree([]RingSpec{{Size: 5, Parent: -1}, {Size: 7, Parent: 0}})
	if err != nil {
		t.Fatal(err)
	}
	plans, err := tr.PlanIntraRing()
	if err != nil {
		t.Fatal(err)
	}
	if TotalCycles(plans) != cover.Rho(5)+cover.Rho(7) {
		t.Fatalf("total cycles %d, want ρ(5)+ρ(7) = %d",
			TotalCycles(plans), cover.Rho(5)+cover.Rho(7))
	}
	if RhoTree(tr.Specs) != cover.Rho(5)+cover.Rho(7) {
		t.Fatal("RhoTree mismatch")
	}
	// Global ids must be in range and cycles must have ≥3 vertices.
	for _, p := range plans {
		for _, cyc := range p.Global {
			if len(cyc) < 3 {
				t.Fatal("short cycle in plan")
			}
			for _, v := range cyc {
				if v < 0 || v >= tr.Vertices {
					t.Fatalf("global id %d out of range", v)
				}
			}
		}
	}
	// The two rings must not share non-gateway vertices.
	seen := map[int]int{}
	for ringIdx, m := range tr.Maps {
		for local, v := range m {
			if prev, ok := seen[v]; ok && !(local == 0 && ringIdx > 0) {
				t.Fatalf("vertex %d appears in rings %d and %d unexpectedly", v, prev, ringIdx)
			}
			seen[v] = ringIdx
		}
	}
}

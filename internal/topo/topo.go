// Package topo exercises the paper's future-work section: cycle coverings
// on network topologies other than a single ring — grids, tori and trees
// of rings. The paper only announces these directions; this package
// provides the machinery a follow-up would start from:
//
//   - general topologies as undirected graphs with BFS routing;
//   - routed cycles (a demand cycle plus one explicit physical path per
//     request) with an edge-disjointness verifier — the DRC generalised
//     beyond rings, where the ring-order shortcut no longer applies;
//   - face coverings for grid and torus adjacency traffic;
//   - trees of rings, composed from per-ring optimal DRC coverings.
package topo

import (
	"fmt"

	"github.com/cyclecover/cyclecover/internal/construct"
	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/graph"
)

// Topology is a physical network: an undirected graph with helpers for
// routing.
type Topology struct {
	Name string
	G    *graph.Graph
}

// Grid returns the w×h grid graph; vertex (x, y) has id y·w + x.
func Grid(w, h int) Topology {
	if w < 2 || h < 2 {
		panic("topo: grid needs w, h >= 2")
	}
	g := graph.New(w * h)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				g.AddEdge(id(x, y), id(x+1, y))
			}
			if y+1 < h {
				g.AddEdge(id(x, y), id(x, y+1))
			}
		}
	}
	return Topology{Name: fmt.Sprintf("grid %dx%d", w, h), G: g}
}

// Torus returns the w×h torus (grid with wraparound rows and columns).
func Torus(w, h int) Topology {
	if w < 3 || h < 3 {
		panic("topo: torus needs w, h >= 3")
	}
	g := graph.New(w * h)
	id := func(x, y int) int { return (y%h)*w + (x % w) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			g.AddEdge(id(x, y), id(x+1, y))
			g.AddEdge(id(x, y), id(x, y+1))
		}
	}
	return Topology{Name: fmt.Sprintf("torus %dx%d", w, h), G: g}
}

// ShortestPath returns a BFS shortest path between u and v as a vertex
// sequence (inclusive); ok is false if disconnected.
func (t Topology) ShortestPath(u, v int) ([]int, bool) {
	if u == v {
		return []int{u}, true
	}
	prev := make([]int, t.G.N())
	for i := range prev {
		prev[i] = -1
	}
	prev[u] = u
	queue := []int{u}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, y := range t.G.Neighbors(x) {
			if prev[y] == -1 {
				prev[y] = x
				if y == v {
					var path []int
					for c := v; c != u; c = prev[c] {
						path = append(path, c)
					}
					path = append(path, u)
					for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
						path[i], path[j] = path[j], path[i]
					}
					return path, true
				}
				queue = append(queue, y)
			}
		}
	}
	return nil, false
}

// RoutedCycle is a demand cycle on an arbitrary topology together with an
// explicit physical path for each request — the general form of the
// paper's subnetworks. On a ring the canonical routing is forced; here it
// must be supplied and checked.
type RoutedCycle struct {
	Demand []int   // cyclic vertex sequence, consecutive pairs are requests
	Paths  [][]int // Paths[i] routes Demand[i] — Demand[i+1 mod k]
}

// Verify checks the structural validity of the routed cycle and the
// generalised DRC: paths connect the right endpoints, use existing edges,
// and are pairwise edge-disjoint.
func (rc RoutedCycle) Verify(t Topology) error {
	k := len(rc.Demand)
	if k < 3 {
		return fmt.Errorf("topo: demand cycle shorter than 3")
	}
	if len(rc.Paths) != k {
		return fmt.Errorf("topo: %d paths for %d requests", len(rc.Paths), k)
	}
	used := make(map[graph.Edge]bool)
	for i := 0; i < k; i++ {
		u, v := rc.Demand[i], rc.Demand[(i+1)%k]
		p := rc.Paths[i]
		if len(p) < 2 || p[0] != u || p[len(p)-1] != v {
			return fmt.Errorf("topo: path %d does not join %d-%d", i, u, v)
		}
		for j := 0; j+1 < len(p); j++ {
			if !t.G.HasEdge(p[j], p[j+1]) {
				return fmt.Errorf("topo: path %d uses missing edge {%d,%d}", i, p[j], p[j+1])
			}
			e := graph.NewEdge(p[j], p[j+1])
			if used[e] {
				return fmt.Errorf("topo: edge %v used twice — DRC violated", e)
			}
			used[e] = true
		}
	}
	return nil
}

// FaceCycle returns the unit-square routed cycle with top-left grid
// coordinate (x, y): demands along the four sides, each routed on its own
// edge (trivially edge-disjoint).
func FaceCycle(w, h, x, y int, torus bool) RoutedCycle {
	wrap := func(xx, yy int) int {
		if torus {
			return (yy%h)*w + (xx % w)
		}
		return yy*w + xx
	}
	a := wrap(x, y)
	b := wrap(x+1, y)
	c := wrap(x+1, y+1)
	d := wrap(x, y+1)
	return RoutedCycle{
		Demand: []int{a, b, c, d},
		Paths:  [][]int{{a, b}, {b, c}, {c, d}, {d, a}},
	}
}

// GridFaceCover covers the full edge set of the w×h grid with unit faces
// (adjacency traffic, the natural mesh analogue of the ring's neighbour
// instance). Every face is DRC-valid; edges interior to the mesh are
// covered twice.
func GridFaceCover(w, h int) []RoutedCycle {
	var out []RoutedCycle
	for y := 0; y+1 < h; y++ {
		for x := 0; x+1 < w; x++ {
			out = append(out, FaceCycle(w, h, x, y, false))
		}
	}
	return out
}

// TorusCheckerboardCover covers the edge set of an even×even torus with
// unit faces of one checkerboard colour — each torus edge covered exactly
// once, the exact analogue of the odd-ring partition result. It panics
// for odd dimensions (the checkerboard argument needs even w and h).
func TorusCheckerboardCover(w, h int) []RoutedCycle {
	if w%2 != 0 || h%2 != 0 {
		panic("topo: checkerboard cover needs even w and h")
	}
	var out []RoutedCycle
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if (x+y)%2 == 0 {
				out = append(out, FaceCycle(w, h, x, y, true))
			}
		}
	}
	return out
}

// CoveredEdges returns the multiset of edges covered by routed cycles'
// demands.
func CoveredEdges(cycles []RoutedCycle) map[graph.Edge]int {
	m := make(map[graph.Edge]int)
	for _, rc := range cycles {
		k := len(rc.Demand)
		for i := 0; i < k; i++ {
			m[graph.NewEdge(rc.Demand[i], rc.Demand[(i+1)%k])]++
		}
	}
	return m
}

// RingSpec describes one ring of a tree of rings: its size and the
// parent ring it attaches to (sharing one gateway vertex). Parent -1
// denotes the root.
type RingSpec struct {
	Size   int
	Parent int
}

// TreeOfRings is the paper's named extension topology: rings glued along
// a tree, consecutive rings sharing a single gateway vertex.
type TreeOfRings struct {
	Specs    []RingSpec
	Vertices int
	// Local→global vertex maps, one per ring. Gateways share ids.
	Maps [][]int
}

// BuildTree lays out the rings and assigns global vertex ids. Ring i
// attaches to its parent at the parent's vertex of local index 0... the
// child's local 0 IS the gateway (shared id).
func BuildTree(specs []RingSpec) (*TreeOfRings, error) {
	tr := &TreeOfRings{Specs: specs}
	for i, sp := range specs {
		if sp.Size < 3 {
			return nil, fmt.Errorf("topo: ring %d size %d < 3", i, sp.Size)
		}
		if sp.Parent >= i || (i == 0) != (sp.Parent < 0) {
			return nil, fmt.Errorf("topo: ring %d has invalid parent %d", i, sp.Parent)
		}
		m := make([]int, sp.Size)
		start := 0
		if i > 0 {
			// Gateway: parent's local vertex 0 — arbitrary but fixed.
			m[0] = tr.Maps[sp.Parent][0]
			start = 1
		}
		for j := start; j < sp.Size; j++ {
			m[j] = tr.Vertices
			tr.Vertices++
		}
		tr.Maps = append(tr.Maps, m)
	}
	return tr, nil
}

// RingPlan is a per-ring DRC covering translated to global vertex ids.
type RingPlan struct {
	Ring   int
	Size   int
	Cycles int
	Global [][]int // cycle vertex sets in global ids
}

// PlanIntraRing covers the all-to-all instance of every ring with the
// optimal (or best known) single-ring construction. Because distinct
// rings share no fibre, the per-ring DRC coverings compose into a valid
// design for the whole tree; the returned plans carry the global ids.
func (tr *TreeOfRings) PlanIntraRing() ([]RingPlan, error) {
	var plans []RingPlan
	for i, sp := range tr.Specs {
		res, err := construct.AllToAll(sp.Size)
		if err != nil {
			return nil, fmt.Errorf("topo: ring %d: %w", i, err)
		}
		plan := RingPlan{Ring: i, Size: sp.Size, Cycles: res.Covering.Size()}
		for _, c := range res.Covering.Cycles {
			gl := make([]int, 0, c.Len())
			for _, v := range c.Vertices() {
				gl = append(gl, tr.Maps[i][v])
			}
			plan.Global = append(plan.Global, gl)
		}
		plans = append(plans, plan)
	}
	return plans, nil
}

// TotalCycles sums the per-ring covering sizes — the tree-of-rings design
// cost under the paper's objective.
func TotalCycles(plans []RingPlan) int {
	t := 0
	for _, p := range plans {
		t += p.Cycles
	}
	return t
}

// RhoTree returns the intra-ring optimum implied by the single-ring
// theorems: Σ ρ(n_i).
func RhoTree(specs []RingSpec) int {
	t := 0
	for _, sp := range specs {
		t += cover.Rho(sp.Size)
	}
	return t
}

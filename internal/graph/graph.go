// Package graph provides the undirected graph substrate used to model
// logical (virtual) demand graphs and to verify coverings.
//
// The paper models demands as an undirected logical graph I on the ring's
// vertices (symmetric requests routed symmetrically); the all-to-all
// instance is the complete graph K_n. A covering of I is checked by pure
// edge bookkeeping, so the package centres on a compact undirected
// multigraph with counted edges.
//
// # Representation
//
// Graph stores multiplicities in a flat triangular []int32 indexed by the
// rank of the vertex pair (u, v), u < v, in lexicographic order, plus a
// degree array. There is no hashing and no per-edge allocation: Mult, Add
// and Remove are O(1) array operations, whole-graph comparisons
// (EqualCover, Covers, IsSubgraphOf) are linear scans, and CopyFrom
// re-fills a caller-owned scratch graph without allocating once its
// backing arrays have grown to size. Iteration (Edges, ForEachEdge,
// Neighbors) is always in ascending lexicographic pair order, so every
// derived artifact — error messages, JSON dumps, content hashes — is
// deterministic by construction.
package graph

import (
	"fmt"
	"math"
)

// Edge is an undirected vertex pair in canonical order (U < V).
type Edge struct {
	U, V int
}

// NewEdge returns the canonical edge for the unordered pair {u, v}.
// It panics if u == v: the logical graphs in this model are loopless.
func NewEdge(u, v int) Edge {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at vertex %d", u))
	}
	if u > v {
		u, v = v, u
	}
	return Edge{U: u, V: v}
}

// Other returns the endpoint of e that is not w; ok is false if w is not an
// endpoint.
func (e Edge) Other(w int) (int, bool) {
	switch w {
	case e.U:
		return e.V, true
	case e.V:
		return e.U, true
	}
	return 0, false
}

func (e Edge) String() string { return fmt.Sprintf("{%d,%d}", e.U, e.V) }

// Graph is an undirected multigraph on vertices 0..n-1 with counted edges
// (multiplicity per vertex pair). The zero value is unusable; call New.
type Graph struct {
	n        int
	mult     []int32 // triangular pair-rank array, see rank()
	deg      []int
	m        int // total edge count including multiplicity
	distinct int // vertex pairs with multiplicity >= 1
}

// rank returns the index of pair (u, v), u < v, in the triangular
// multiplicity array: pairs ordered lexicographically, row u holding the
// n-1-u pairs (u, u+1) .. (u, n-1).
func (g *Graph) rank(u, v int) int {
	return u*(g.n-1) - u*(u-1)/2 + v - u - 1
}

// PairCount returns the number of distinct vertex pairs on n vertices —
// the length of the triangular multiplicity array.
func PairCount(n int) int { return n * (n - 1) / 2 }

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{n: n, mult: make([]int32, PairCount(n)), deg: make([]int, n)}
}

// Complete returns K_n.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// LambdaComplete returns λK_n, the complete multigraph where every pair is
// joined by lambda parallel edges. It panics for lambda < 1.
func LambdaComplete(n, lambda int) *Graph {
	if lambda < 1 {
		panic("graph: lambda must be >= 1")
	}
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdgeMulti(u, v, lambda)
		}
	}
	return g
}

// Cycle returns the cycle graph C_n (n >= 3).
func Cycle(n int) *Graph {
	if n < 3 {
		panic("graph: cycle needs n >= 3")
	}
	g := New(n)
	for v := 0; v < n; v++ {
		g.AddEdge(v, (v+1)%n)
	}
	return g
}

// N returns the number of vertices. A nil graph — the demand of a
// zero-value instance — has none; the read accessors (N, M,
// DistinctEdges, Degree, Multiplicity, Mult, HasEdge, Edges,
// EdgesWithMultiplicity, Neighbors, ForEachEdge, EqualCover, Covers) are
// nil-safe so that handing such an instance to a size or membership check
// reports emptiness instead of panicking. Everything else — mutation,
// cloning, traversal — still requires a graph built by New.
func (g *Graph) N() int {
	if g == nil {
		return 0
	}
	return g.n
}

// M returns the number of edges counted with multiplicity; 0 for nil.
func (g *Graph) M() int {
	if g == nil {
		return 0
	}
	return g.m
}

// DistinctEdges returns the number of distinct vertex pairs with at least
// one edge; 0 for nil.
func (g *Graph) DistinctEdges() int {
	if g == nil {
		return 0
	}
	return g.distinct
}

// Degree returns the degree of v counted with multiplicity; 0 for nil.
func (g *Graph) Degree(v int) int {
	if g == nil {
		return 0
	}
	g.check(v)
	return g.deg[v]
}

// Multiplicity returns the number of parallel edges between u and v;
// 0 for nil.
func (g *Graph) Multiplicity(u, v int) int {
	if g == nil {
		return 0
	}
	g.check(u)
	g.check(v)
	if u == v {
		return 0
	}
	if u > v {
		u, v = v, u
	}
	return int(g.mult[g.rank(u, v)])
}

// Mult is Multiplicity under its hot-path name: the O(1) pair-rank array
// read the inner loops are written against.
func (g *Graph) Mult(u, v int) int { return g.Multiplicity(u, v) }

// HasEdge reports whether at least one edge joins u and v.
func (g *Graph) HasEdge(u, v int) bool { return g.Multiplicity(u, v) > 0 }

// AddEdge adds one edge between u and v.
func (g *Graph) AddEdge(u, v int) { g.AddEdgeMulti(u, v, 1) }

// AddEdgeMulti adds k parallel edges between u and v. It panics on
// self-loops, out-of-range vertices, k < 1, or a multiplicity overflowing
// the int32 pair counter.
func (g *Graph) AddEdgeMulti(u, v, k int) {
	g.check(u)
	g.check(v)
	if k < 1 {
		panic("graph: AddEdgeMulti with k < 1")
	}
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at vertex %d", u))
	}
	if u > v {
		u, v = v, u
	}
	i := g.rank(u, v)
	if int64(g.mult[i])+int64(k) > math.MaxInt32 {
		panic(fmt.Sprintf("graph: multiplicity of {%d,%d} overflows int32", u, v))
	}
	if g.mult[i] == 0 {
		g.distinct++
	}
	g.mult[i] += int32(k)
	g.deg[u] += k
	g.deg[v] += k
	g.m += k
}

// RemoveEdge removes one edge between u and v; it reports whether an edge
// was present.
func (g *Graph) RemoveEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	if u == v {
		return false
	}
	if u > v {
		u, v = v, u
	}
	i := g.rank(u, v)
	if g.mult[i] == 0 {
		return false
	}
	g.mult[i]--
	if g.mult[i] == 0 {
		g.distinct--
	}
	g.deg[u]--
	g.deg[v]--
	g.m--
	return true
}

// Edges returns the distinct edges in deterministic ascending
// lexicographic order; nil for a nil graph.
func (g *Graph) Edges() []Edge {
	if g == nil {
		return nil
	}
	es := make([]Edge, 0, g.distinct)
	i := 0
	for u := 0; u < g.n; u++ {
		for v := u + 1; v < g.n; v++ {
			if g.mult[i] > 0 {
				es = append(es, Edge{U: u, V: v})
			}
			i++
		}
	}
	return es
}

// ForEachEdge calls fn for every distinct edge in ascending lexicographic
// order with its multiplicity, stopping early when fn returns false. It
// performs no allocation; nil graphs are a no-op.
func (g *Graph) ForEachEdge(fn func(u, v, mult int) bool) {
	if g == nil {
		return
	}
	i := 0
	for u := 0; u < g.n; u++ {
		for v := u + 1; v < g.n; v++ {
			if k := g.mult[i]; k > 0 {
				if !fn(u, v, int(k)) {
					return
				}
			}
			i++
		}
	}
}

// EdgesWithMultiplicity returns every edge repeated by its multiplicity,
// in deterministic order; nil for a nil graph.
func (g *Graph) EdgesWithMultiplicity() []Edge {
	if g == nil {
		return nil
	}
	es := make([]Edge, 0, g.m)
	g.ForEachEdge(func(u, v, mult int) bool {
		for i := 0; i < mult; i++ {
			es = append(es, Edge{U: u, V: v})
		}
		return true
	})
	return es
}

// Neighbors returns the distinct neighbours of v in ascending order;
// nil for a nil graph.
func (g *Graph) Neighbors(v int) []int {
	if g == nil {
		return nil
	}
	g.check(v)
	var ns []int
	g.ForEachNeighbor(v, func(w, _ int) bool {
		ns = append(ns, w)
		return true
	})
	return ns
}

// ForEachNeighbor calls fn for every distinct neighbour of v in ascending
// order with the connecting multiplicity, stopping early when fn returns
// false. No allocation.
func (g *Graph) ForEachNeighbor(v int, fn func(w, mult int) bool) {
	if g == nil {
		return
	}
	g.check(v)
	for u := 0; u < v; u++ {
		if k := g.mult[g.rank(u, v)]; k > 0 {
			if !fn(u, int(k)) {
				return
			}
		}
	}
	// Row v is contiguous: pairs (v, v+1) .. (v, n-1).
	i := g.rank(v, v+1)
	for w := v + 1; w < g.n; w++ {
		if k := g.mult[i]; k > 0 {
			if !fn(w, int(k)) {
				return
			}
		}
		i++
	}
}

// firstNeighbor returns the lowest-numbered neighbour of v, or -1.
func (g *Graph) firstNeighbor(v int) int {
	first := -1
	g.ForEachNeighbor(v, func(w, _ int) bool {
		first = w
		return false
	})
	return first
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	c := &Graph{}
	c.CopyFrom(g)
	return c
}

// CopyFrom makes g an exact copy of src, reusing g's backing arrays when
// they are large enough: a scratch graph copied from same-sized sources
// allocates only on first use. It panics on a nil src.
func (g *Graph) CopyFrom(src *Graph) {
	g.Reset(src.n)
	copy(g.mult, src.mult)
	copy(g.deg, src.deg)
	g.m = src.m
	g.distinct = src.distinct
}

// Reset makes g the empty graph on n vertices, reusing its backing arrays
// when they are large enough.
func (g *Graph) Reset(n int) {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	pairs := PairCount(n)
	if cap(g.mult) < pairs {
		g.mult = make([]int32, pairs)
	} else {
		g.mult = g.mult[:pairs]
		clear(g.mult)
	}
	if cap(g.deg) < n {
		g.deg = make([]int, n)
	} else {
		g.deg = g.deg[:n]
		clear(g.deg)
	}
	g.n = n
	g.m = 0
	g.distinct = 0
}

// EqualCover reports whether two graphs are identical as demand coverings:
// same vertex count and the same edge multiset (every pair with equal
// multiplicity). It is an allocation-free O(n²) scan; nil graphs equal
// empty graphs on zero vertices.
func (g *Graph) EqualCover(h *Graph) bool {
	if g.N() != h.N() {
		return false
	}
	if g == nil || h == nil {
		return true
	}
	if g.m != h.m || g.distinct != h.distinct {
		return false
	}
	for i, k := range g.mult {
		if k != h.mult[i] {
			return false
		}
	}
	return true
}

// Covers reports whether g serves h as a demand: every edge of h appears
// in g with at least its multiplicity. It requires h to fit (h.N() ≤
// g.N()) and is an allocation-free linear scan; a nil h is vacuously
// covered.
func (g *Graph) Covers(h *Graph) bool {
	if h.N() == 0 {
		return true
	}
	if g.N() < h.N() {
		return false
	}
	covered := true
	h.ForEachEdge(func(u, v, need int) bool {
		if g.Multiplicity(u, v) < need {
			covered = false
			return false
		}
		return true
	})
	return covered
}

// IsSubgraphOf reports whether every edge of g (with multiplicity) appears
// in h.
func (g *Graph) IsSubgraphOf(h *Graph) bool {
	if g.n > h.n {
		return false
	}
	return h.Covers(g)
}

// Connected reports whether the graph is connected, ignoring isolated
// vertices when ignoreIsolated is set. The empty graph counts as
// connected.
func (g *Graph) Connected(ignoreIsolated bool) bool {
	start := -1
	for v := 0; v < g.n; v++ {
		if g.deg[v] > 0 || !ignoreIsolated {
			start = v
			break
		}
	}
	if start == -1 {
		return true
	}
	seen := make([]bool, g.n)
	queue := []int{start}
	seen[start] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		g.ForEachNeighbor(v, func(w, _ int) bool {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
			return true
		})
	}
	for v := 0; v < g.n; v++ {
		if !seen[v] && (g.deg[v] > 0 || !ignoreIsolated) {
			return false
		}
	}
	return true
}

// EveryDegreeEven reports whether every vertex has even degree — the
// Eulerian condition used by the DRC structure argument (Fact A in
// DESIGN.md): the union of edge-disjoint routes of a cycle's requests has
// all-even degrees on the ring.
func (g *Graph) EveryDegreeEven() bool {
	for _, d := range g.deg {
		if d%2 != 0 {
			return false
		}
	}
	return true
}

// EulerCircuit returns an Eulerian circuit as a vertex walk (first ==
// last) if the graph is connected (ignoring isolated vertices) with all
// degrees even and at least one edge; ok reports success. Hierholzer's
// algorithm on the multigraph.
func (g *Graph) EulerCircuit() ([]int, bool) {
	if g.m == 0 || !g.EveryDegreeEven() || !g.Connected(true) {
		return nil, false
	}
	work := g.Clone()
	start := -1
	for v := 0; v < g.n; v++ {
		if work.deg[v] > 0 {
			start = v
			break
		}
	}
	// Hierholzer: walk until stuck (back at a vertex with no unused
	// edges), splicing sub-tours.
	circuit := []int{start}
	for i := 0; i < len(circuit); i++ {
		v := circuit[i]
		if work.deg[v] == 0 {
			continue
		}
		// Grow a sub-tour from v and splice it in at position i.
		var tour []int
		cur := v
		for work.deg[cur] > 0 {
			next := work.firstNeighbor(cur)
			work.RemoveEdge(cur, next)
			tour = append(tour, next)
			cur = next
		}
		spliced := make([]int, 0, len(circuit)+len(tour))
		spliced = append(spliced, circuit[:i+1]...)
		spliced = append(spliced, tour...)
		spliced = append(spliced, circuit[i+1:]...)
		circuit = spliced
	}
	if work.m != 0 {
		return nil, false
	}
	return circuit, true
}

func (g *Graph) check(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, g.n))
	}
}

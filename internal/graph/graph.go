// Package graph provides the undirected graph substrate used to model
// logical (virtual) demand graphs and to verify coverings.
//
// The paper models demands as an undirected logical graph I on the ring's
// vertices (symmetric requests routed symmetrically); the all-to-all
// instance is the complete graph K_n. A covering of I is checked by pure
// edge bookkeeping, so the package centres on a compact undirected
// multigraph with counted edges.
package graph

import (
	"fmt"
	"sort"
)

// Edge is an undirected vertex pair in canonical order (U < V).
type Edge struct {
	U, V int
}

// NewEdge returns the canonical edge for the unordered pair {u, v}.
// It panics if u == v: the logical graphs in this model are loopless.
func NewEdge(u, v int) Edge {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at vertex %d", u))
	}
	if u > v {
		u, v = v, u
	}
	return Edge{U: u, V: v}
}

// Other returns the endpoint of e that is not w; ok is false if w is not an
// endpoint.
func (e Edge) Other(w int) (int, bool) {
	switch w {
	case e.U:
		return e.V, true
	case e.V:
		return e.U, true
	}
	return 0, false
}

func (e Edge) String() string { return fmt.Sprintf("{%d,%d}", e.U, e.V) }

// Graph is an undirected multigraph on vertices 0..n-1 with counted edges
// (multiplicity per vertex pair). The zero value is unusable; call New.
type Graph struct {
	n    int
	mult map[Edge]int
	deg  []int
	m    int // total edge count including multiplicity
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{n: n, mult: make(map[Edge]int), deg: make([]int, n)}
}

// Complete returns K_n.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// LambdaComplete returns λK_n, the complete multigraph where every pair is
// joined by lambda parallel edges. It panics for lambda < 1.
func LambdaComplete(n, lambda int) *Graph {
	if lambda < 1 {
		panic("graph: lambda must be >= 1")
	}
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdgeMulti(u, v, lambda)
		}
	}
	return g
}

// Cycle returns the cycle graph C_n (n >= 3).
func Cycle(n int) *Graph {
	if n < 3 {
		panic("graph: cycle needs n >= 3")
	}
	g := New(n)
	for v := 0; v < n; v++ {
		g.AddEdge(v, (v+1)%n)
	}
	return g
}

// N returns the number of vertices. A nil graph — the demand of a
// zero-value instance — has none; the read accessors (N, M,
// DistinctEdges, Degree, Multiplicity, HasEdge, Edges,
// EdgesWithMultiplicity, Neighbors) are nil-safe so that handing such
// an instance to a size or membership check reports emptiness instead
// of panicking. Everything else — mutation, cloning, traversal — still
// requires a graph built by New.
func (g *Graph) N() int {
	if g == nil {
		return 0
	}
	return g.n
}

// M returns the number of edges counted with multiplicity; 0 for nil.
func (g *Graph) M() int {
	if g == nil {
		return 0
	}
	return g.m
}

// DistinctEdges returns the number of distinct vertex pairs with at least
// one edge; 0 for nil.
func (g *Graph) DistinctEdges() int {
	if g == nil {
		return 0
	}
	return len(g.mult)
}

// Degree returns the degree of v counted with multiplicity; 0 for nil.
func (g *Graph) Degree(v int) int {
	if g == nil {
		return 0
	}
	g.check(v)
	return g.deg[v]
}

// Multiplicity returns the number of parallel edges between u and v;
// 0 for nil.
func (g *Graph) Multiplicity(u, v int) int {
	if g == nil {
		return 0
	}
	g.check(u)
	g.check(v)
	if u == v {
		return 0
	}
	return g.mult[NewEdge(u, v)]
}

// HasEdge reports whether at least one edge joins u and v.
func (g *Graph) HasEdge(u, v int) bool { return g.Multiplicity(u, v) > 0 }

// AddEdge adds one edge between u and v.
func (g *Graph) AddEdge(u, v int) { g.AddEdgeMulti(u, v, 1) }

// AddEdgeMulti adds k parallel edges between u and v. It panics on
// self-loops, out-of-range vertices or k < 1.
func (g *Graph) AddEdgeMulti(u, v, k int) {
	g.check(u)
	g.check(v)
	if k < 1 {
		panic("graph: AddEdgeMulti with k < 1")
	}
	e := NewEdge(u, v)
	g.mult[e] += k
	g.deg[u] += k
	g.deg[v] += k
	g.m += k
}

// RemoveEdge removes one edge between u and v; it reports whether an edge
// was present.
func (g *Graph) RemoveEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	if u == v {
		return false
	}
	e := NewEdge(u, v)
	if g.mult[e] == 0 {
		return false
	}
	g.mult[e]--
	if g.mult[e] == 0 {
		delete(g.mult, e)
	}
	g.deg[u]--
	g.deg[v]--
	g.m--
	return true
}

// Edges returns the distinct edges in deterministic (sorted) order;
// nil for a nil graph.
func (g *Graph) Edges() []Edge {
	if g == nil {
		return nil
	}
	es := make([]Edge, 0, len(g.mult))
	for e := range g.mult {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	return es
}

// EdgesWithMultiplicity returns every edge repeated by its multiplicity,
// in deterministic order; nil for a nil graph.
func (g *Graph) EdgesWithMultiplicity() []Edge {
	if g == nil {
		return nil
	}
	es := make([]Edge, 0, g.m)
	for _, e := range g.Edges() {
		for i := 0; i < g.mult[e]; i++ {
			es = append(es, e)
		}
	}
	return es
}

// Neighbors returns the distinct neighbours of v in ascending order;
// nil for a nil graph.
func (g *Graph) Neighbors(v int) []int {
	if g == nil {
		return nil
	}
	g.check(v)
	var ns []int
	for e := range g.mult {
		if w, ok := e.Other(v); ok {
			ns = append(ns, w)
		}
	}
	sort.Ints(ns)
	return ns
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for e, k := range g.mult {
		c.mult[e] = k
	}
	copy(c.deg, g.deg)
	c.m = g.m
	return c
}

// IsSubgraphOf reports whether every edge of g (with multiplicity) appears
// in h.
func (g *Graph) IsSubgraphOf(h *Graph) bool {
	if g.n > h.n {
		return false
	}
	for e, k := range g.mult {
		if h.mult[e] < k {
			return false
		}
	}
	return true
}

// Connected reports whether the graph is connected, ignoring isolated
// vertices when ignoreIsolated is set. The empty graph counts as
// connected.
func (g *Graph) Connected(ignoreIsolated bool) bool {
	start := -1
	for v := 0; v < g.n; v++ {
		if g.deg[v] > 0 || !ignoreIsolated {
			start = v
			break
		}
	}
	if start == -1 {
		return true
	}
	seen := make([]bool, g.n)
	queue := []int{start}
	seen[start] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(v) {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	for v := 0; v < g.n; v++ {
		if !seen[v] && (g.deg[v] > 0 || !ignoreIsolated) {
			return false
		}
	}
	return true
}

// EveryDegreeEven reports whether every vertex has even degree — the
// Eulerian condition used by the DRC structure argument (Fact A in
// DESIGN.md): the union of edge-disjoint routes of a cycle's requests has
// all-even degrees on the ring.
func (g *Graph) EveryDegreeEven() bool {
	for _, d := range g.deg {
		if d%2 != 0 {
			return false
		}
	}
	return true
}

// EulerCircuit returns an Eulerian circuit as a vertex walk (first ==
// last) if the graph is connected (ignoring isolated vertices) with all
// degrees even and at least one edge; ok reports success. Hierholzer's
// algorithm on the multigraph.
func (g *Graph) EulerCircuit() ([]int, bool) {
	if g.m == 0 || !g.EveryDegreeEven() || !g.Connected(true) {
		return nil, false
	}
	work := g.Clone()
	start := -1
	for v := 0; v < g.n; v++ {
		if work.deg[v] > 0 {
			start = v
			break
		}
	}
	// Hierholzer: walk until stuck (back at a vertex with no unused
	// edges), splicing sub-tours.
	circuit := []int{start}
	for i := 0; i < len(circuit); i++ {
		v := circuit[i]
		if work.deg[v] == 0 {
			continue
		}
		// Grow a sub-tour from v and splice it in at position i.
		var tour []int
		cur := v
		for work.deg[cur] > 0 {
			ns := work.Neighbors(cur)
			next := ns[0]
			work.RemoveEdge(cur, next)
			tour = append(tour, next)
			cur = next
		}
		spliced := make([]int, 0, len(circuit)+len(tour))
		spliced = append(spliced, circuit[:i+1]...)
		spliced = append(spliced, tour...)
		spliced = append(spliced, circuit[i+1:]...)
		circuit = spliced
	}
	if work.m != 0 {
		return nil, false
	}
	return circuit, true
}

func (g *Graph) check(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, g.n))
	}
}

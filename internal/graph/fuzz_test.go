package graph

import (
	"reflect"
	"sort"
	"testing"
)

// refGraph is the map-backed reference implementation the dense core
// replaced: straightforward bookkeeping with no shared code, used as the
// ground truth for the property fuzz below.
type refGraph struct {
	n    int
	mult map[Edge]int
	deg  []int
	m    int
}

func newRef(n int) *refGraph {
	return &refGraph{n: n, mult: make(map[Edge]int), deg: make([]int, n)}
}

func (g *refGraph) add(u, v, k int) {
	e := NewEdge(u, v)
	g.mult[e] += k
	g.deg[u] += k
	g.deg[v] += k
	g.m += k
}

func (g *refGraph) remove(u, v int) bool {
	if u == v {
		return false
	}
	e := NewEdge(u, v)
	if g.mult[e] == 0 {
		return false
	}
	g.mult[e]--
	if g.mult[e] == 0 {
		delete(g.mult, e)
	}
	g.deg[u]--
	g.deg[v]--
	g.m--
	return true
}

func (g *refGraph) edges() []Edge {
	es := make([]Edge, 0, len(g.mult))
	for e := range g.mult {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	return es
}

func (g *refGraph) covers(h *refGraph) bool {
	if h.n == 0 {
		return true
	}
	if g.n < h.n {
		return false
	}
	for e, k := range h.mult {
		if g.mult[e] < k {
			return false
		}
	}
	return true
}

// FuzzGraphOps drives the dense graph and the map reference through the
// same random operation sequence over two graphs and checks that every
// observable — Mult, Degree, M, DistinctEdges, Edges order, Covers,
// EqualCover — agrees at every step.
func FuzzGraphOps(f *testing.F) {
	f.Add(uint8(5), []byte{0x01, 0x12, 0x83, 0x24, 0x45})
	f.Add(uint8(3), []byte{0x01, 0x01, 0x81, 0x01})
	f.Add(uint8(12), []byte{0x5b, 0x12, 0x9a, 0x34, 0xff, 0x00, 0x77})
	f.Add(uint8(2), []byte{})

	f.Fuzz(func(t *testing.T, nRaw uint8, ops []byte) {
		n := 2 + int(nRaw)%14 // 2..15 vertices
		dense := [2]*Graph{New(n), New(n)}
		ref := [2]*refGraph{newRef(n), newRef(n)}

		for i := 0; i+1 < len(ops); i += 2 {
			op := ops[i]
			which := int(op>>6) & 1
			u := int(op) % n
			v := int(ops[i+1]) % n
			if u == v {
				continue
			}
			d, r := dense[which], ref[which]
			if op&0x80 != 0 {
				got := d.RemoveEdge(u, v)
				want := r.remove(u, v)
				if got != want {
					t.Fatalf("RemoveEdge(%d,%d) = %v, reference %v", u, v, got, want)
				}
			} else {
				k := 1 + int(ops[i+1]>>5)
				d.AddEdgeMulti(u, v, k)
				r.add(u, v, k)
			}
			if d.Mult(u, v) != r.mult[NewEdge(u, v)] {
				t.Fatalf("Mult(%d,%d) = %d, reference %d", u, v, d.Mult(u, v), r.mult[NewEdge(u, v)])
			}
			if d.Degree(u) != r.deg[u] || d.Degree(v) != r.deg[v] {
				t.Fatalf("Degree mismatch at {%d,%d}", u, v)
			}
		}

		for w := 0; w < 2; w++ {
			d, r := dense[w], ref[w]
			if d.M() != r.m {
				t.Fatalf("graph %d: M() = %d, reference %d", w, d.M(), r.m)
			}
			if d.DistinctEdges() != len(r.mult) {
				t.Fatalf("graph %d: DistinctEdges() = %d, reference %d", w, d.DistinctEdges(), len(r.mult))
			}
			if got, want := d.Edges(), r.edges(); !reflect.DeepEqual(got, want) && (len(got) != 0 || len(want) != 0) {
				t.Fatalf("graph %d: Edges() = %v, reference %v", w, got, want)
			}
			// ForEachEdge must agree with Edges in content and order.
			var walked []Edge
			d.ForEachEdge(func(u, v, mult int) bool {
				walked = append(walked, Edge{U: u, V: v})
				if d.Mult(u, v) != mult {
					t.Fatalf("graph %d: ForEachEdge mult %d != Mult %d at {%d,%d}", w, mult, d.Mult(u, v), u, v)
				}
				return true
			})
			if !reflect.DeepEqual(walked, d.Edges()) && (len(walked) != 0 || len(d.Edges()) != 0) {
				t.Fatalf("graph %d: ForEachEdge order %v != Edges %v", w, walked, d.Edges())
			}
		}

		// Cross-graph relations.
		if got, want := dense[0].Covers(dense[1]), ref[0].covers(ref[1]); got != want {
			t.Fatalf("Covers(a,b) = %v, reference %v", got, want)
		}
		if got, want := dense[1].Covers(dense[0]), ref[1].covers(ref[0]); got != want {
			t.Fatalf("Covers(b,a) = %v, reference %v", got, want)
		}
		wantEq := ref[0].covers(ref[1]) && ref[1].covers(ref[0])
		if got := dense[0].EqualCover(dense[1]); got != wantEq {
			t.Fatalf("EqualCover = %v, reference %v", got, wantEq)
		}

		// Clone and CopyFrom must preserve the cover exactly.
		c := dense[0].Clone()
		if !c.EqualCover(dense[0]) {
			t.Fatal("Clone not EqualCover to source")
		}
		var copied Graph
		copied.CopyFrom(dense[1])
		if !copied.EqualCover(dense[1]) {
			t.Fatal("CopyFrom not EqualCover to source")
		}
	})
}

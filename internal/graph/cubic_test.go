package graph

import (
	"fmt"
	"testing"
)

// threeEdgeColorable reports whether the graph admits a proper
// 3-edge-coloring, by backtracking over the deterministic edge order.
// A bridgeless cubic graph that fails this is by definition a snark
// (modulo girth/triviality conventions), so the generator tests use it
// to certify the snark families.
func threeEdgeColorable(g *Graph) bool {
	edges := g.Edges()
	color := make(map[Edge]int, len(edges))
	var ok func(i int) bool
	ok = func(i int) bool {
		if i == len(edges) {
			return true
		}
		e := edges[i]
		for c := 1; c <= 3; c++ {
			clash := false
			for _, f := range edges[:i] {
				if color[f] != c {
					continue
				}
				if f.U == e.U || f.U == e.V || f.V == e.U || f.V == e.V {
					clash = true
					break
				}
			}
			if clash {
				continue
			}
			color[e] = c
			if ok(i + 1) {
				return true
			}
			delete(color, e)
		}
		return false
	}
	return ok(0)
}

// girth returns the length of the shortest cycle via BFS from every
// vertex; 0 when the graph is acyclic. Test-only, quadratic-ish.
func girth(g *Graph) int {
	best := 0
	for s := 0; s < g.N(); s++ {
		dist := make([]int, g.N())
		par := make([]int, g.N())
		for i := range dist {
			dist[i], par[i] = -1, -1
		}
		dist[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.Neighbors(v) {
				if dist[w] == -1 {
					dist[w] = dist[v] + 1
					par[w] = v
					queue = append(queue, w)
				} else if w != par[v] && par[w] != v {
					if c := dist[v] + dist[w] + 1; best == 0 || c < best {
						best = c
					}
				}
			}
		}
	}
	return best
}

// checkCubicHost asserts the structural contract every cubic host family
// promises: simple, cubic, connected, bridgeless.
func checkCubicHost(t *testing.T, name string, g *Graph) {
	t.Helper()
	if !g.IsCubic() {
		t.Fatalf("%s: not cubic (min degree %d)", name, g.MinDegree())
	}
	if g.M() != g.DistinctEdges() {
		t.Fatalf("%s: has parallel edges", name)
	}
	if !g.Connected(false) {
		t.Fatalf("%s: disconnected", name)
	}
	if e, found := g.FindBridge(); found {
		t.Fatalf("%s: has bridge %v", name, e)
	}
}

func TestPetersen(t *testing.T) {
	g := Petersen()
	checkCubicHost(t, "petersen", g)
	if g.N() != 10 || g.M() != 15 {
		t.Fatalf("petersen: n=%d m=%d, want 10/15", g.N(), g.M())
	}
	if got := girth(g); got != 5 {
		t.Fatalf("petersen girth = %d, want 5", got)
	}
	if threeEdgeColorable(g) {
		t.Fatal("petersen is 3-edge-colorable — not the Petersen graph")
	}
}

func TestBlanusaSnarks(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *Graph
	}{
		{"blanusa1", BlanusaFirst()},
		{"blanusa2", BlanusaSecond()},
	} {
		name, g := tc.name, tc.g
		t.Run(name, func(t *testing.T) {
			checkCubicHost(t, name, g)
			if g.N() != 18 || g.M() != 27 {
				t.Fatalf("%s: n=%d m=%d, want 18/27", name, g.N(), g.M())
			}
			if got := girth(g); got != 5 {
				t.Fatalf("%s girth = %d, want 5", name, got)
			}
			if threeEdgeColorable(g) {
				t.Fatalf("%s is 3-edge-colorable — dot product wiring broken", name)
			}
		})
	}
}

func TestFlowerSnarks(t *testing.T) {
	for _, k := range []int{5, 7} {
		t.Run(fmt.Sprintf("J%d", k), func(t *testing.T) {
			g := FlowerSnark(k)
			checkCubicHost(t, fmt.Sprintf("flower J_%d", k), g)
			if g.N() != 4*k || g.M() != 6*k {
				t.Fatalf("J_%d: n=%d m=%d, want %d/%d", k, g.N(), g.M(), 4*k, 6*k)
			}
			if threeEdgeColorable(g) {
				t.Fatalf("J_%d is 3-edge-colorable — not a snark", k)
			}
		})
	}
	// J_3 is cubic and bridgeless but not a snark by convention; the
	// generator still produces a valid host.
	checkCubicHost(t, "flower J_3", FlowerSnark(3))
}

func TestPrism(t *testing.T) {
	for _, k := range []int{3, 4, 6} {
		g := Prism(k)
		checkCubicHost(t, fmt.Sprintf("prism %d", k), g)
		if !threeEdgeColorable(g) {
			t.Fatalf("prism %d is not 3-edge-colorable — prisms are hamiltonian", k)
		}
	}
}

func TestRandomCubicBridgeless(t *testing.T) {
	for _, n := range []int{4, 8, 14} {
		for seed := int64(0); seed < 3; seed++ {
			g, err := RandomCubicBridgeless(n, seed)
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			checkCubicHost(t, fmt.Sprintf("cubic n=%d seed=%d", n, seed), g)
		}
	}
	// Determinism: same seed, same graph.
	a, _ := RandomCubicBridgeless(12, 42)
	b, _ := RandomCubicBridgeless(12, 42)
	if !a.EqualCover(b) {
		t.Fatal("RandomCubicBridgeless not deterministic for a fixed seed")
	}
	if _, err := RandomCubicBridgeless(5, 1); err == nil {
		t.Fatal("odd n accepted")
	}
	if _, err := RandomCubicBridgeless(2, 1); err == nil {
		t.Fatal("n=2 accepted")
	}
}

func TestFindBridge(t *testing.T) {
	// Two triangles joined by one edge: that edge is the unique bridge.
	g := New(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3}} {
		g.AddEdge(e[0], e[1])
	}
	e, found := g.FindBridge()
	if !found || e != (Edge{U: 2, V: 3}) {
		t.Fatalf("bridge = %v found=%v, want {2,3}", e, found)
	}
	if g.Bridgeless() {
		t.Fatal("bridged graph reported bridgeless")
	}
	// Doubling the bridge removes it: parallel edges are never bridges.
	g.AddEdge(2, 3)
	if e, found := g.FindBridge(); found {
		t.Fatalf("doubled edge still reported as bridge %v", e)
	}
	// A tree is all bridges; a cycle has none; the empty graph is
	// vacuously bridgeless.
	tree := New(4)
	tree.AddEdge(0, 1)
	tree.AddEdge(1, 2)
	tree.AddEdge(1, 3)
	if tree.Bridgeless() {
		t.Fatal("tree reported bridgeless")
	}
	if !Cycle(7).Bridgeless() {
		t.Fatal("cycle reported bridged")
	}
	if !New(5).Bridgeless() {
		t.Fatal("edgeless graph reported bridged")
	}
	// Disconnected components are scanned independently: a bridge hiding
	// in the second component is still found.
	g2 := New(7)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {5, 6}} {
		g2.AddEdge(e[0], e[1])
	}
	if g2.Bridgeless() {
		t.Fatal("bridge {5,6} in second component missed")
	}
}

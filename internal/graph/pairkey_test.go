package graph

import "testing"

// TestPairKeyFlipBit exercises set/clear round trips across the whole
// rank range, including the word boundaries.
func TestPairKeyFlipBit(t *testing.T) {
	var k PairKey
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 191, 192, MaxKeyPairs - 1} {
		if k.Bit(i) {
			t.Fatalf("bit %d set in empty key", i)
		}
		k.Flip(i)
		if !k.Bit(i) {
			t.Fatalf("bit %d not set after flip", i)
		}
		k.Flip(i)
		if k.Bit(i) {
			t.Fatalf("bit %d still set after second flip", i)
		}
	}
}

// TestPairKeyCanonical pins the canonicality contract the transposition
// table relies on: the key depends only on the final pair set, not the
// order the pairs were toggled in.
func TestPairKeyCanonical(t *testing.T) {
	var a, b PairKey
	for _, i := range []int{3, 77, 130, 5, 200} {
		a.Flip(i)
	}
	for _, i := range []int{200, 5, 3, 130, 77} {
		b.Flip(i)
	}
	if a != b {
		t.Fatal("same pair set, different keys")
	}
	if a.Hash() != b.Hash() {
		t.Fatal("same key, different hashes")
	}
	b.Flip(77)
	if a == b {
		t.Fatal("different pair sets compare equal")
	}
}

// TestPairKeyClear verifies Clear returns the key to the zero value.
func TestPairKeyClear(t *testing.T) {
	var k, zero PairKey
	k.Flip(0)
	k.Flip(MaxKeyPairs - 1)
	k.Clear()
	if k != zero {
		t.Fatalf("cleared key %v is not zero", k)
	}
}

// TestPairKeyHashSpreads is a smoke check that single-bit keys do not
// collide: the table uses open addressing with a short probe window, so
// trivially clustered hashes would degrade it to a linear scan.
func TestPairKeyHashSpreads(t *testing.T) {
	seen := map[uint64]int{}
	for i := 0; i < MaxKeyPairs; i++ {
		var k PairKey
		k.Flip(i)
		h := k.Hash()
		if j, dup := seen[h]; dup {
			t.Fatalf("bits %d and %d hash identically", i, j)
		}
		seen[h] = i
	}
	if len(seen) != MaxKeyPairs {
		t.Fatalf("expected %d distinct hashes, got %d", MaxKeyPairs, len(seen))
	}
}

// TestPairKeyCoversCompleteGraphRanks ties the key to the Graph pair-rank
// layout: PairCount(n) ranks for the largest supported ring fit the key.
func TestPairKeyCoversCompleteGraphRanks(t *testing.T) {
	if PairCount(23) > MaxKeyPairs {
		t.Fatalf("PairCount(23) = %d exceeds MaxKeyPairs = %d", PairCount(23), MaxKeyPairs)
	}
	if PairCount(24) <= MaxKeyPairs {
		t.Fatalf("MaxKeyPairs documentation stale: PairCount(24) = %d fits", PairCount(24))
	}
}

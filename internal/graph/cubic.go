package graph

import (
	"fmt"
	"math/rand"
)

// This file provides the cubic host-graph generators behind the
// general-topology instance families: the classic snarks the
// short-cycle-cover literature is benchmarked on (Petersen, the two
// Blanuša snarks, the flower snarks) plus two non-snark cubic families
// (prisms, seeded random bridgeless cubic graphs) that exercise the same
// machinery without the 4/3·m + c tightness.

// Petersen returns the Petersen graph: 10 vertices, 15 edges, girth 5,
// the smallest snark and the unique one whose shortest cycle cover
// exceeds 4/3·m (it needs 21 = 4/3·15 + 1). Vertices 0–4 are the outer
// pentagon, 5–9 the inner pentagram (i+5 adjacent to ((i+2) mod 5)+5),
// with spokes i — i+5.
func Petersen() *Graph {
	g := New(10)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, (i+1)%5)       // outer pentagon
		g.AddEdge(i, i+5)           // spoke
		g.AddEdge(i+5, (i+2)%5+5)   // inner pentagram
	}
	return g
}

// Prism returns the prism (circular ladder) CL_k on 2k vertices, k ≥ 3:
// two k-cycles 0..k-1 and k..2k-1 joined by rungs i — k+i. Cubic,
// bridgeless, 3-edge-colorable — the hamiltonian counterpoint to the
// snark families.
func Prism(k int) *Graph {
	if k < 3 {
		panic(fmt.Sprintf("graph: prism needs k >= 3, got %d", k))
	}
	g := New(2 * k)
	for i := 0; i < k; i++ {
		g.AddEdge(i, (i+1)%k)
		g.AddEdge(k+i, k+(i+1)%k)
		g.AddEdge(i, k+i)
	}
	return g
}

// FlowerSnark returns the flower snark J_k for odd k: 4k vertices, 6k
// edges. Hubs A_i = i carry stars to B_i = k+i (forming a k-cycle),
// C_i = 2k+i and D_i = 3k+i (forming one 2k-cycle C_0..C_{k-1}
// D_0..D_{k-1}). J_k is a snark for odd k ≥ 5; J_3 is cubic and
// bridgeless but has girth 3 and is conventionally excluded from the
// snark family. It panics for even or too-small k.
func FlowerSnark(k int) *Graph {
	if k < 3 || k%2 == 0 {
		panic(fmt.Sprintf("graph: flower snark needs odd k >= 3, got %d", k))
	}
	g := New(4 * k)
	for i := 0; i < k; i++ {
		a, b, c, d := i, k+i, 2*k+i, 3*k+i
		g.AddEdge(a, b)
		g.AddEdge(a, c)
		g.AddEdge(a, d)
		g.AddEdge(b, k+(i+1)%k)
		if i+1 < k {
			g.AddEdge(c, c+1)
			g.AddEdge(d, d+1)
		}
	}
	g.AddEdge(2*k+(k-1), 3*k) // C_{k-1} — D_0
	g.AddEdge(4*k-1, 2*k)     // D_{k-1} — C_0
	return g
}

// blanusa builds an 18-vertex dot product of two Petersen graphs — the
// construction that yields exactly the two snarks on 18 vertices, the
// Blanuša snarks. Copy 1 is Petersen minus the adjacent vertices {0, 1}
// (its vertices 2..9 map to 0..7, leaving dangling half-edges at the
// removed vertices' outer neighbors); copy 2 is Petersen minus the
// independent edges {0,1} and {2,3} (its vertices map to 8..17). The two
// non-isomorphic ways of wiring the dangling pairs to the broken edges
// give the first and second snark; the dot product of two snarks is a
// snark for every valid wiring, so both variants are certified
// non-3-edge-colorable by the generator tests.
func blanusa(second bool) *Graph {
	g := New(18)
	// Copy 1: Petersen minus vertices {0, 1}; old vertex p ∈ 2..9 → p−2.
	c1 := func(p int) int { return p - 2 }
	for _, e := range [][2]int{
		{2, 3}, {3, 4}, // surviving outer edges
		{2, 7}, {3, 8}, {4, 9}, // surviving spokes
		{5, 7}, {7, 9}, {9, 6}, {6, 8}, {8, 5}, // inner pentagram
	} {
		g.AddEdge(c1(e[0]), c1(e[1]))
	}
	// Copy 2: Petersen minus edges {0,1} and {2,3}; old vertex q → 8+q.
	c2 := func(q int) int { return 8 + q }
	for _, e := range [][2]int{
		{1, 2}, {3, 4}, {4, 0}, // surviving outer edges
		{0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9}, // spokes
		{5, 7}, {7, 9}, {9, 6}, {6, 8}, {8, 5}, // inner pentagram
	} {
		g.AddEdge(c2(e[0]), c2(e[1]))
	}
	// Wiring: vertex 0's dangling neighbors {4, 5} repair copy 2's broken
	// edge {0', 1'}; vertex 1's dangling neighbors {2, 6} repair {2', 3'}.
	// Swapping the second pair's orientation switches between the two
	// non-isomorphic outcomes.
	g.AddEdge(c1(4), c2(0))
	g.AddEdge(c1(5), c2(1))
	if second {
		g.AddEdge(c1(2), c2(3))
		g.AddEdge(c1(6), c2(2))
	} else {
		g.AddEdge(c1(2), c2(2))
		g.AddEdge(c1(6), c2(3))
	}
	return g
}

// BlanusaFirst returns the first Blanuša snark: 18 vertices, 27 edges,
// girth 5.
func BlanusaFirst() *Graph { return blanusa(false) }

// BlanusaSecond returns the second Blanuša snark (the other dot product
// of two Petersen graphs).
func BlanusaSecond() *Graph { return blanusa(true) }

// maxCubicAttempts bounds the rejection-sampling loop of
// RandomCubicBridgeless. The pairing model produces a simple graph with
// probability bounded away from zero (asymptotically e^{-2} for cubic),
// and random cubic graphs are a.a.s. 3-connected, so a valid sample
// almost always lands within a handful of attempts; the cap converts a
// pathological seed into an error instead of a spin.
const maxCubicAttempts = 1000

// RandomCubicBridgeless samples a connected bridgeless simple cubic
// graph on n vertices (n even, ≥ 4) with the configuration model: three
// stubs per vertex, a seeded uniform perfect matching on the stubs,
// rejecting samples with self-loops, parallel edges, disconnection or a
// bridge. Deterministic for a given (n, seed).
func RandomCubicBridgeless(n int, seed int64) (*Graph, error) {
	if n < 4 || n%2 != 0 {
		return nil, fmt.Errorf("graph: random cubic graph needs even n >= 4, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	stubs := make([]int, 3*n)
	for attempt := 0; attempt < maxCubicAttempts; attempt++ {
		for i := range stubs {
			stubs[i] = i / 3
		}
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		g := New(n)
		ok := true
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v || g.HasEdge(u, v) {
				ok = false
				break
			}
			g.AddEdge(u, v)
		}
		if !ok || !g.Connected(false) || !g.Bridgeless() {
			continue
		}
		return g, nil
	}
	return nil, fmt.Errorf("graph: no bridgeless cubic graph on %d vertices found for seed %d within %d attempts", n, seed, maxCubicAttempts)
}

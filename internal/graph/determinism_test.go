package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestIterationOrderDeterministic pins the iteration contract the cache
// signatures, the verifier's error messages and the JSON dumps rely on:
// two graphs holding the same edge multiset iterate identically —
// ascending lexicographic pair order — regardless of the order the edges
// were inserted or of any remove/re-add churn. The map-backed
// implementation only guaranteed this after an explicit sort; the dense
// core guarantees it structurally, and this test keeps it that way.
func TestIterationOrderDeterministic(t *testing.T) {
	const n = 17
	type ins struct{ u, v, k int }
	var edges []ins
	rng := rand.New(rand.NewSource(42))
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Intn(3) > 0 {
				edges = append(edges, ins{u, v, 1 + rng.Intn(3)})
			}
		}
	}

	forward := New(n)
	for _, e := range edges {
		forward.AddEdgeMulti(e.u, e.v, e.k)
	}
	backward := New(n)
	for i := len(edges) - 1; i >= 0; i-- {
		backward.AddEdgeMulti(edges[i].u, edges[i].v, edges[i].k)
	}
	shuffled := New(n)
	perm := rng.Perm(len(edges))
	for _, i := range perm {
		shuffled.AddEdgeMulti(edges[i].u, edges[i].v, edges[i].k)
	}
	// Churn: add noise edges then remove them again.
	for i := 0; i < 50; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		shuffled.AddEdge(u, v)
		if !shuffled.RemoveEdge(u, v) {
			t.Fatal("noise edge vanished")
		}
	}

	want := forward.Edges()
	for i := 1; i < len(want); i++ {
		if want[i-1].U > want[i].U || (want[i-1].U == want[i].U && want[i-1].V >= want[i].V) {
			t.Fatalf("Edges() not in ascending lexicographic order at %d: %v, %v", i, want[i-1], want[i])
		}
	}
	for name, g := range map[string]*Graph{"backward": backward, "shuffled": shuffled} {
		if got := g.Edges(); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s insertion order changed Edges():\n got %v\nwant %v", name, got, want)
		}
		if !g.EqualCover(forward) {
			t.Fatalf("%s not EqualCover(forward)", name)
		}
	}

	// Clone preserves both content and iteration order.
	c := shuffled.Clone()
	if got := c.Edges(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Clone changed Edges(): got %v want %v", got, want)
	}
	if !c.EqualCover(forward) || c.M() != forward.M() || c.DistinctEdges() != forward.DistinctEdges() {
		t.Fatal("Clone lost cover equality")
	}
}

// TestEqualCoverSemantics pins EqualCover's contract on the edges of the
// type: nil graphs, size mismatches, and multiplicity differences.
func TestEqualCoverSemantics(t *testing.T) {
	var nilG *Graph
	if !nilG.EqualCover(nil) {
		t.Fatal("nil graphs must be EqualCover")
	}
	if !nilG.EqualCover(New(0)) || !New(0).EqualCover(nilG) {
		t.Fatal("nil must equal the empty graph on 0 vertices")
	}
	if New(3).EqualCover(New(4)) {
		t.Fatal("different vertex counts cannot be EqualCover")
	}
	a, b := New(4), New(4)
	a.AddEdge(0, 1)
	b.AddEdgeMulti(0, 1, 2)
	if a.EqualCover(b) {
		t.Fatal("different multiplicities cannot be EqualCover")
	}
	b.RemoveEdge(0, 1)
	if !a.EqualCover(b) {
		t.Fatal("equal multisets must be EqualCover")
	}
}

// TestCopyFromReuse pins the scratch contract: a graph repeatedly
// CopyFrom-ed from same-sized sources performs no allocation after the
// first copy.
func TestCopyFromReuse(t *testing.T) {
	src := Complete(12)
	var dst Graph
	dst.CopyFrom(src) // grow once
	if avg := testing.AllocsPerRun(100, func() { dst.CopyFrom(src) }); avg != 0 {
		t.Fatalf("warm CopyFrom allocated %.1f times per run, want 0", avg)
	}
	if !dst.EqualCover(src) {
		t.Fatal("CopyFrom lost content")
	}
	// Shrinking reuse: a smaller source must also be allocation-free.
	small := Complete(5)
	dst.CopyFrom(small)
	if !dst.EqualCover(small) {
		t.Fatal("CopyFrom to smaller graph lost content")
	}
	if avg := testing.AllocsPerRun(100, func() { dst.CopyFrom(small) }); avg != 0 {
		t.Fatalf("warm shrinking CopyFrom allocated %.1f times per run, want 0", avg)
	}
}

package graph

// This file is the 2-edge-connectivity layer of the graph core, added for
// the general-topology instance family: the cycle-cover literature this
// repo tracks (short cycle covers of bridgeless cubic graphs, snark
// covers) is stated on bridgeless graphs, because a bridge lies on no
// cycle and therefore defeats any cycle cover. Instance admission
// (instance.General) rejects bridged hosts with these checks rather than
// letting construction fail downstream.

// MinDegree returns the smallest vertex degree (with multiplicity); 0 for
// a nil or empty graph.
func (g *Graph) MinDegree() int {
	if g.N() == 0 {
		return 0
	}
	min := g.deg[0]
	for _, d := range g.deg[1:] {
		if d < min {
			min = d
		}
	}
	return min
}

// IsCubic reports whether every vertex has degree exactly 3 — the graph
// class of the short-cycle-cover literature (Kaiser et al., Hägglund &
// Markström). False for nil and empty graphs.
func (g *Graph) IsCubic() bool {
	if g.N() == 0 {
		return false
	}
	for _, d := range g.deg {
		if d != 3 {
			return false
		}
	}
	return true
}

// FindBridge returns a bridge of the graph — an edge whose removal
// disconnects its component — and ok = true when one exists. Parallel
// edges are never bridges (removing one copy leaves the other), so only
// pairs with multiplicity 1 qualify. The scan is an iterative Tarjan
// low-link DFS over every component; with several bridges present, which
// one is returned is deterministic (lowest-numbered DFS root first,
// ascending neighbor order).
func (g *Graph) FindBridge() (Edge, bool) {
	n := g.N()
	if n == 0 {
		return Edge{}, false
	}
	disc := make([]int, n)  // discovery time, 0 = unvisited
	low := make([]int, n)   // low-link
	parent := make([]int, n)
	for v := range parent {
		parent[v] = -1
	}
	time := 0

	// Explicit stack: frame (vertex, index into its neighbor list). The
	// neighbor list is materialized per frame; host graphs at this layer
	// are small (instance admission bounds them) and the check runs once
	// per parse, not on a hot path.
	type frame struct {
		v     int
		nbrs  []int
		next  int
	}
	var bridge Edge
	found := false
	for root := 0; root < n && !found; root++ {
		if disc[root] != 0 {
			continue
		}
		time++
		disc[root] = time
		low[root] = time
		stack := []frame{{v: root, nbrs: g.Neighbors(root)}}
		for len(stack) > 0 && !found {
			f := &stack[len(stack)-1]
			if f.next < len(f.nbrs) {
				w := f.nbrs[f.next]
				f.next++
				if disc[w] == 0 {
					parent[w] = f.v
					time++
					disc[w] = time
					low[w] = time
					stack = append(stack, frame{v: w, nbrs: g.Neighbors(w)})
				} else if w != parent[f.v] || g.Mult(f.v, w) > 1 {
					// Back edge — or the tree edge seen again through a
					// parallel copy, which legitimately lowers low.
					if disc[w] < low[f.v] {
						low[f.v] = disc[w]
					}
				}
				continue
			}
			stack = stack[:len(stack)-1]
			if p := parent[f.v]; p != -1 {
				if low[f.v] < low[p] {
					low[p] = low[f.v]
				}
				if low[f.v] > disc[p] && g.Mult(p, f.v) == 1 {
					bridge = NewEdge(p, f.v)
					found = true
				}
			}
		}
	}
	return bridge, found
}

// Bridgeless reports whether the graph has no bridge. Vacuously true for
// edgeless graphs; combine with Connected for the admission check of the
// general-topology instance family.
func (g *Graph) Bridgeless() bool {
	_, found := g.FindBridge()
	return !found
}

package graph

// This file is the canonical residual-coverage key used by the exact
// solver's transposition table (construct.ExactOptions / DESIGN.md §10).
// A residual demand over n vertices is a subset of the PairCount(n)
// vertex pairs; packing it into a fixed array of machine words in the
// same ascending pair-rank order the Graph multiplicity array uses makes
// the key canonical by construction — two searches that reach the same
// residual produce bit-identical keys regardless of the cycle order that
// got them there — and keeps hashing, equality and per-pair updates
// allocation-free.

// MaxKeyPairs is the largest pair count a PairKey can represent:
// PairCount(n) ≤ MaxKeyPairs, i.e. n ≤ 23. Callers with larger rings
// must skip key-based memoization (the exact solver disables its table
// there).
const MaxKeyPairs = keyWords * 64

// keyWords sizes the packed key; 4 words cover every ring the exact
// solver can realistically search.
const keyWords = 4

// PairKey is a packed bitset over pair ranks 0..MaxKeyPairs-1 in the
// triangular ascending order of Graph's multiplicity array. The zero
// value is the empty set; PairKey is comparable, so it can serve
// directly as a collision-checked hash-table key.
type PairKey [keyWords]uint64

// Flip toggles the bit for pair rank i.
//
//cyclecover:noalloc
func (k *PairKey) Flip(i int) {
	k[uint(i)>>6] ^= 1 << (uint(i) & 63)
}

// Bit reports whether pair rank i is set.
//
//cyclecover:noalloc
func (k *PairKey) Bit(i int) bool {
	return k[uint(i)>>6]&(1<<(uint(i)&63)) != 0
}

// Clear resets the key to the empty set.
//
//cyclecover:noalloc
func (k *PairKey) Clear() {
	for i := range k {
		k[i] = 0
	}
}

// Hash mixes the packed words into a 64-bit table index. The mix is a
// fixed xor-multiply avalanche (splitmix64-style), deterministic across
// processes: the same residual always lands on the same slot sequence.
//
//cyclecover:noalloc
func (k *PairKey) Hash() uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, w := range k {
		h ^= w
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

package graph

import (
	"testing"
	"testing/quick"
)

func TestNewEdgeCanonical(t *testing.T) {
	if e := NewEdge(5, 2); e.U != 2 || e.V != 5 {
		t.Errorf("NewEdge(5,2) = %v, want {2,5}", e)
	}
	if e := NewEdge(1, 3); e != NewEdge(3, 1) {
		t.Error("NewEdge must canonicalise order")
	}
}

func TestNewEdgeSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewEdge(4,4): want panic")
		}
	}()
	NewEdge(4, 4)
}

func TestEdgeOther(t *testing.T) {
	e := NewEdge(2, 7)
	if w, ok := e.Other(2); !ok || w != 7 {
		t.Errorf("Other(2) = %d,%v", w, ok)
	}
	if w, ok := e.Other(7); !ok || w != 2 {
		t.Errorf("Other(7) = %d,%v", w, ok)
	}
	if _, ok := e.Other(3); ok {
		t.Error("Other(3): want ok=false")
	}
}

func TestCompleteGraphCounts(t *testing.T) {
	for _, n := range []int{3, 4, 7, 10} {
		g := Complete(n)
		want := n * (n - 1) / 2
		if g.M() != want {
			t.Errorf("K%d: M = %d, want %d", n, g.M(), want)
		}
		for v := 0; v < n; v++ {
			if g.Degree(v) != n-1 {
				t.Errorf("K%d: deg(%d) = %d, want %d", n, v, g.Degree(v), n-1)
			}
		}
	}
}

func TestLambdaComplete(t *testing.T) {
	g := LambdaComplete(5, 3)
	if g.M() != 3*10 {
		t.Errorf("3K5: M = %d, want 30", g.M())
	}
	if g.Multiplicity(1, 4) != 3 {
		t.Errorf("3K5: mult(1,4) = %d, want 3", g.Multiplicity(1, 4))
	}
	if g.DistinctEdges() != 10 {
		t.Errorf("3K5: distinct = %d, want 10", g.DistinctEdges())
	}
}

func TestCycleGraph(t *testing.T) {
	g := Cycle(6)
	if g.M() != 6 {
		t.Errorf("C6: M = %d, want 6", g.M())
	}
	for v := 0; v < 6; v++ {
		if g.Degree(v) != 2 {
			t.Errorf("C6: deg(%d) = %d, want 2", v, g.Degree(v))
		}
	}
	if !g.HasEdge(5, 0) {
		t.Error("C6 must wrap: edge {5,0}")
	}
}

func TestAddRemove(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	if g.Multiplicity(0, 1) != 2 || g.M() != 2 {
		t.Fatalf("after two adds: mult=%d m=%d", g.Multiplicity(0, 1), g.M())
	}
	if !g.RemoveEdge(1, 0) {
		t.Fatal("RemoveEdge(1,0): want true")
	}
	if g.Multiplicity(0, 1) != 1 {
		t.Fatalf("mult = %d, want 1", g.Multiplicity(0, 1))
	}
	if !g.RemoveEdge(0, 1) || g.RemoveEdge(0, 1) {
		t.Fatal("second remove must succeed, third must fail")
	}
	if g.M() != 0 || g.Degree(0) != 0 || g.Degree(1) != 0 {
		t.Fatal("graph must be empty after removals")
	}
	if g.RemoveEdge(2, 2) {
		t.Fatal("RemoveEdge on self pair must be false")
	}
}

func TestEdgesDeterministicOrder(t *testing.T) {
	g := New(5)
	g.AddEdge(3, 1)
	g.AddEdge(0, 4)
	g.AddEdge(0, 2)
	es := g.Edges()
	want := []Edge{{0, 2}, {0, 4}, {1, 3}}
	if len(es) != len(want) {
		t.Fatalf("Edges = %v", es)
	}
	for i := range want {
		if es[i] != want[i] {
			t.Fatalf("Edges = %v, want %v", es, want)
		}
	}
}

func TestEdgesWithMultiplicity(t *testing.T) {
	g := New(3)
	g.AddEdgeMulti(0, 1, 2)
	g.AddEdge(1, 2)
	es := g.EdgesWithMultiplicity()
	if len(es) != 3 {
		t.Fatalf("EdgesWithMultiplicity = %v, want 3 entries", es)
	}
	if es[0] != NewEdge(0, 1) || es[1] != NewEdge(0, 1) || es[2] != NewEdge(1, 2) {
		t.Fatalf("EdgesWithMultiplicity = %v", es)
	}
}

func TestNeighbors(t *testing.T) {
	g := New(5)
	g.AddEdge(2, 4)
	g.AddEdge(2, 0)
	g.AddEdge(1, 3)
	ns := g.Neighbors(2)
	if len(ns) != 2 || ns[0] != 0 || ns[1] != 4 {
		t.Errorf("Neighbors(2) = %v, want [0 4]", ns)
	}
	if len(g.Neighbors(0)) != 1 {
		t.Errorf("Neighbors(0) = %v", g.Neighbors(0))
	}
}

func TestCloneIndependence(t *testing.T) {
	g := Complete(4)
	c := g.Clone()
	c.RemoveEdge(0, 1)
	if !g.HasEdge(0, 1) {
		t.Error("clone mutation leaked into original")
	}
	if c.M() != g.M()-1 {
		t.Errorf("clone M = %d, want %d", c.M(), g.M()-1)
	}
}

func TestIsSubgraphOf(t *testing.T) {
	k4 := Complete(4)
	c4 := Cycle(4)
	if !c4.IsSubgraphOf(k4) {
		t.Error("C4 ⊆ K4: want true")
	}
	if k4.IsSubgraphOf(c4) {
		t.Error("K4 ⊆ C4: want false")
	}
	two := New(3)
	two.AddEdgeMulti(0, 1, 2)
	one := New(3)
	one.AddEdge(0, 1)
	if two.IsSubgraphOf(one) {
		t.Error("multiplicity must be respected")
	}
	if !one.IsSubgraphOf(two) {
		t.Error("single edge ⊆ double edge")
	}
}

func TestConnected(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if g.Connected(false) {
		t.Error("isolated vertices present: want not connected")
	}
	if !g.Connected(true) {
		t.Error("ignoring isolated vertices: want connected")
	}
	g.AddEdge(3, 4)
	if g.Connected(true) {
		t.Error("two components: want not connected")
	}
	if !New(0).Connected(false) || !New(3).Connected(true) {
		t.Error("empty graphs count as connected")
	}
}

func TestEveryDegreeEven(t *testing.T) {
	if !Cycle(5).EveryDegreeEven() {
		t.Error("cycle degrees are even")
	}
	if Complete(4).EveryDegreeEven() {
		t.Error("K4 has odd degrees")
	}
	if !Complete(5).EveryDegreeEven() {
		t.Error("K5 has even degrees")
	}
}

func TestEulerCircuitOnCycle(t *testing.T) {
	g := Cycle(7)
	walk, ok := g.EulerCircuit()
	if !ok {
		t.Fatal("C7 has an Euler circuit")
	}
	if len(walk) != 8 || walk[0] != walk[len(walk)-1] {
		t.Fatalf("walk = %v: want closed walk of 8 vertices", walk)
	}
	// Each ring edge used exactly once.
	used := map[Edge]int{}
	for i := 0; i+1 < len(walk); i++ {
		used[NewEdge(walk[i], walk[i+1])]++
	}
	for _, e := range g.Edges() {
		if used[e] != 1 {
			t.Errorf("edge %v used %d times", e, used[e])
		}
	}
}

func TestEulerCircuitConditions(t *testing.T) {
	if _, ok := Complete(4).EulerCircuit(); ok {
		t.Error("K4: odd degrees, no Euler circuit")
	}
	disconnected := New(6)
	disconnected.AddEdge(0, 1)
	disconnected.AddEdge(1, 0) // doubled edge, even degrees
	disconnected.AddEdge(3, 4)
	disconnected.AddEdge(4, 3)
	if _, ok := disconnected.EulerCircuit(); ok {
		t.Error("disconnected even graph has no single Euler circuit")
	}
	if _, ok := New(3).EulerCircuit(); ok {
		t.Error("empty graph: no circuit")
	}
}

func TestEulerCircuitK5Property(t *testing.T) {
	// K_{2p+1} is Eulerian; the circuit must traverse every edge once.
	for _, n := range []int{5, 7, 9} {
		g := Complete(n)
		walk, ok := g.EulerCircuit()
		if !ok {
			t.Fatalf("K%d must be Eulerian", n)
		}
		if len(walk) != g.M()+1 {
			t.Fatalf("K%d: walk length %d, want %d", n, len(walk), g.M()+1)
		}
		used := map[Edge]int{}
		for i := 0; i+1 < len(walk); i++ {
			used[NewEdge(walk[i], walk[i+1])]++
		}
		for _, e := range g.Edges() {
			if used[e] != 1 {
				t.Fatalf("K%d: edge %v used %d times", n, e, used[e])
			}
		}
	}
}

func TestSubgraphProperty(t *testing.T) {
	// Removing any edge of a graph keeps it a subgraph of the original.
	f := func(seed uint8) bool {
		g := Complete(6)
		es := g.Edges()
		e := es[int(seed)%len(es)]
		h := g.Clone()
		h.RemoveEdge(e.U, e.V)
		return h.IsSubgraphOf(g) && !g.IsSubgraphOf(h)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCheckPanics(t *testing.T) {
	g := New(3)
	defer func() {
		if recover() == nil {
			t.Fatal("Degree(7): want panic")
		}
	}()
	g.Degree(7)
}

// TestNilGraphReadAccessors pins the nil-safety contract stated on N:
// every read accessor answers emptiness on a nil graph — the demand of
// a zero-value instance — instead of panicking.
func TestNilGraphReadAccessors(t *testing.T) {
	var g *Graph
	if g.N() != 0 || g.M() != 0 || g.DistinctEdges() != 0 {
		t.Error("nil graph sizes must be 0")
	}
	if g.Degree(0) != 0 || g.Multiplicity(0, 1) != 0 || g.HasEdge(0, 1) {
		t.Error("nil graph membership checks must report emptiness")
	}
	if g.Edges() != nil || g.EdgesWithMultiplicity() != nil || g.Neighbors(0) != nil {
		t.Error("nil graph enumerations must be nil")
	}
}

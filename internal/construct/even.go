package construct

import (
	"context"
	"fmt"
	"sync"

	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/ring"
)

// exactEvenLimit is the largest even n for which Even() runs the exact
// branch-and-bound solver as a fallback. Chosen so construction stays
// sub-second; cmd/cyclecover exposes deeper searches explicitly.
const exactEvenLimit = 12

// searchEvenLimit is the largest even n for which the min-conflicts repair
// searches run automatically. Beyond it they plateau within their
// iteration budgets (the endgame hits the parity obstructions discussed in
// minconflicts.go) and Even falls straight through to the layered
// construction; raising this limit trades construction time for
// optimality on mid-size rings.
const searchEvenLimit = 20

// evenExactNodes bounds the embedded exact search. With the symmetry-
// reduced engine the hardest case below exactEvenLimit is n=10 at
// ~4.6M nodes serial (newly constructible — the unpruned engine burned
// 40M nodes on it without finding anything); n=12 needs under a
// thousand. The budget leaves parallel searches headroom for the nodes
// their extra subtrees burn before the canonical winner cancels them.
const evenExactNodes = 6_000_000

var evenCache = struct {
	sync.Mutex
	m map[int]evenEntry
}{m: make(map[int]evenEntry)}

type evenEntry struct {
	cv      *cover.Covering
	optimal bool
}

// Even builds a DRC-covering of K_n over C_n for even n ≥ 4. The boolean
// reports provable optimality (size = ρ(n), re-verified internally).
//
// For n ≤ searchEvenLimit a min-conflicts repair search runs at budget
// ρ(n) (full-instance for n ≤ 16, boundary-restricted beyond; see
// minconflicts.go); by Theorem 2 a covering exists there, and the search
// finds one. For larger even n the layered construction below is used;
// writing n = 2p it produces
//
//	families  {v, v+j, v+p, v+p+j}, v ∈ [0,p), for 2 ≤ j < p/2 —
//	          cover gap classes j and p−j exactly once each;
//	half fam. {v, v+p/2, v+p, v+3p/2}, v ∈ [0,p/2) (p even) —
//	          cover class p/2 exactly once;
//	triangles {v, v+1, v+p}, v ∈ [0,p) — cover every diameter plus
//	          class 1 on [0,p) and class p−1 on [1,p+1);
//	quads     {u, u+1, u+p, u+p+1}, u ∈ [p,2p) — finish classes 1 and
//	          p−1.
//
// Its size is ρ(n) + (⌈p/2⌉ − 1): asymptotically optimal (ratio → 1) but
// not exactly ρ; the gap comes from the boundary quads covering two
// already-covered slots each, and closing it requires the interleaved
// structure of the paper's (omitted) proof. EXPERIMENTS.md reports
// achieved-vs-ρ for every n so the residual gap is visible.
func Even(n int) (*cover.Covering, bool) {
	cv, opt, _ := EvenCtx(context.Background(), n) // Background: err impossible
	return cv, opt
}

// EvenCtx is Even under a context: the embedded repair and exact searches
// poll ctx and abort promptly when it fires, in which case EvenCtx
// returns ctx's error and caches nothing (an interrupted build may have
// fallen through to the layered heuristic on an n the searches would have
// certified optimal — memoizing that would poison every later call).
//
// The memo table is guarded by one mutex held across the build, so
// concurrent first calls for any even n serialize; cancellation of the
// builder does not release waiters early. Callers that need detachable
// waiting (the planner service) get it from the cache layer's
// single-flight above this.
func EvenCtx(ctx context.Context, n int) (*cover.Covering, bool, error) {
	if n < 4 || n%2 == 1 {
		panic(fmt.Sprintf("construct: Even requires even n >= 4, got %d", n))
	}
	evenCache.Lock()
	defer evenCache.Unlock()
	if e, ok := evenCache.m[n]; ok {
		return e.cv.Clone(), e.optimal, nil
	}
	cv, opt := buildEven(ctx, n)
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	evenCache.m[n] = evenEntry{cv: cv, optimal: opt}
	return cv.Clone(), opt, nil
}

func buildEven(ctx context.Context, n int) (*cover.Covering, bool) {
	if cv, ok := evenMCAttempts(ctx, n); ok {
		return cv, true
	}
	if n <= exactEvenLimit {
		out := ExactCtx(ctx, n, ExactOptions{Budget: cover.Rho(n), MaxLen: 4, NodeLimit: evenExactNodes})
		if out.Covering != nil {
			return out.Covering, true
		}
	}
	return layeredEven(n), false
}

// evenMCAttempts is the min-conflicts attempt ladder at budget ρ(n): by
// Theorem 2 a covering of that size exists, and the search converges
// across the experiment sweep. Small n search the full instance; larger
// n fix the interior gap families and search only the boundary classes
// (see minconflicts.go). Every output is re-verified, and only a
// provably optimal covering is returned. Shared by the closed-form even
// path and the standalone Repair strategy so the two cannot diverge on
// thresholds, widths or verification policy.
func evenMCAttempts(ctx context.Context, n int) (*cover.Covering, bool) {
	attempts := []func() (*cover.Covering, bool){}
	if n <= 16 {
		attempts = append(attempts, func() (*cover.Covering, bool) { return fullEvenMC(ctx, n) })
	}
	if n <= searchEvenLimit {
		attempts = append(attempts,
			func() (*cover.Covering, bool) { return boundaryEvenMC(ctx, n, 2) },
			func() (*cover.Covering, bool) { return boundaryEvenMC(ctx, n, 3) },
		)
	}
	for _, attempt := range attempts {
		if cv, ok := attempt(); ok {
			if err := cover.VerifyOptimal(cv); err == nil {
				return cv, true
			}
		}
	}
	return nil, false
}

// layeredEven is the constructive heuristic described on Even.
func layeredEven(n int) *cover.Covering {
	r := ring.MustNew(n)
	p := n / 2
	cv := cover.NewCovering(r)

	// Interior families: classes (j, p−j) for 2 ≤ j < p/2.
	for j := 2; 2*j < p; j++ {
		for v := 0; v < p; v++ {
			cv.Add(cover.MustCycle(r, v, v+j, v+p, v+p+j))
		}
	}
	// Middle class p/2 when p is even: half-orbit family.
	if p%2 == 0 && p >= 4 {
		h := p / 2
		for v := 0; v < h; v++ {
			cv.Add(cover.MustCycle(r, v, v+h, v+2*h, v+3*h))
		}
	}
	// Boundary triangles: diameters + classes 1 and p−1 on half the ring.
	for v := 0; v < p; v++ {
		cv.Add(cover.MustCycle(r, v, v+1, v+p))
	}
	// Boundary quads: remaining class-1 and class-(p−1) positions.
	for u := p; u < 2*p; u++ {
		cv.Add(cover.MustCycle(r, u, u+1, u+p, u+p+1))
	}
	cv.Dedup() // n = 4 degenerates to repeated full quads
	return cv
}

// LayeredEvenSize predicts the size of the layered construction for even
// n = 2p without building it: families (⌈p/2⌉−2 of size p, plus p/2 for
// the half family when p is even) + p triangles + p quads. Exported for
// the ablation experiment.
func LayeredEvenSize(n int) int {
	p := n / 2
	size := 0
	for j := 2; 2*j < p; j++ {
		size += p
	}
	if p%2 == 0 && p >= 4 {
		size += p / 2
	}
	size += 2 * p
	if n == 4 {
		size = 3 // dedup collapses the quads
	}
	return size
}

package construct

import (
	"context"
	"testing"

	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/graph"
	"github.com/cyclecover/cyclecover/internal/ring"
)

// deltaFixture is the canonical warm-repair scenario the alloc pin and
// the benchmarks share: an optimal covering of K_12 with its last cycle
// deleted (the "surviving parent" after a failure took a cycle out),
// repaired back into a full covering of K_12 within the cold budget
// ρ(12).
func deltaFixture(tb testing.TB) (ring.Ring, *cover.Covering, *graph.Graph, DeltaOptions) {
	tb.Helper()
	const n = 12
	r := ring.MustNew(n)
	parent, _, err := EvenCtx(context.Background(), n)
	if err != nil {
		tb.Fatal(err)
	}
	if parent.Size() != cover.Rho(n) {
		tb.Fatalf("K_%d base covering has %d cycles, want ρ = %d", n, parent.Size(), cover.Rho(n))
	}
	parent.Cycles = parent.Cycles[:len(parent.Cycles)-1]
	demand := graph.Complete(n)
	opts := DeltaOptions{
		Budget:  cover.Rho(n),
		Scratch: NewDeltaScratch(),
	}
	return r, parent, demand, opts
}

// TestDeltaRepairWarmZeroAllocs pins the tentpole's steady-state
// contract: with a warm DeltaScratch, a full repair — seeding from the
// parent, the min-conflicts walk, materialization, verification —
// allocates nothing.
func TestDeltaRepairWarmZeroAllocs(t *testing.T) {
	r, parent, demand, opts := deltaFixture(t)
	ctx := context.Background()
	if _, ok := DeltaRepair(ctx, r, parent, demand, opts); !ok {
		t.Fatal("warm-up repair did not converge")
	}
	avg := testing.AllocsPerRun(5, func() {
		if _, ok := DeltaRepair(ctx, r, parent, demand, opts); !ok {
			t.Error("repair stopped converging between runs")
		}
	})
	// Under the race detector sync.Pool drops Put values by design, so
	// the cover.Verify step inside DeltaRepair legitimately re-allocates
	// its pooled scratch there; the convergence assertions above still
	// ran. The zero-alloc pin holds for regular builds (and benchgate).
	if raceEnabled {
		t.Skipf("zero-alloc pin skipped under -race (pooled Verify scratch re-allocates; measured %.2f/op)", avg)
	}
	if avg != 0 {
		t.Fatalf("warm delta repair allocated %.2f/op, want 0", avg)
	}
}

// TestDeltaRepairResultValid checks the fixture end to end: the repaired
// covering verifies against the demand at exactly the cold budget.
func TestDeltaRepairResultValid(t *testing.T) {
	r, parent, demand, opts := deltaFixture(t)
	cv, ok := DeltaRepair(context.Background(), r, parent, demand, opts)
	if !ok {
		t.Fatal("repair did not converge")
	}
	if cv.Size() != opts.Budget {
		t.Fatalf("repaired size %d, want budget %d", cv.Size(), opts.Budget)
	}
	if err := cover.Verify(cv, demand); err != nil {
		t.Fatal(err)
	}
}

// TestDeltaRepairScratchResultDetaches pins the aliasing contract in the
// DeltaRepair doc: the returned covering lives in the scratch, a
// CloneDetached copy survives the scratch's next use.
func TestDeltaRepairScratchResultDetaches(t *testing.T) {
	r, parent, demand, opts := deltaFixture(t)
	cv, ok := DeltaRepair(context.Background(), r, parent, demand, opts)
	if !ok {
		t.Fatal("repair did not converge")
	}
	kept := cv.CloneDetached()
	// Reuse the scratch; the detached clone must still verify.
	if _, ok := DeltaRepair(context.Background(), r, parent, demand, opts); !ok {
		t.Fatal("second repair did not converge")
	}
	if err := cover.Verify(kept, demand); err != nil {
		t.Fatalf("detached clone corrupted by scratch reuse: %v", err)
	}
}

// TestDeltaBudgetPrediction pins the cold-cost predictor for uniform
// demand classes and its refusal elsewhere.
func TestDeltaBudgetPrediction(t *testing.T) {
	for _, n := range []int{6, 9, 12, 15} {
		if got, ok := DeltaBudget(graph.Complete(n)); !ok || got != cover.Rho(n) {
			t.Errorf("DeltaBudget(K_%d) = (%d, %v), want (%d, true)", n, got, ok, cover.Rho(n))
		}
	}
	lam := graph.Complete(9)
	lam.AddEdgeMulti(0, 1, 1) // no longer uniform
	if _, ok := DeltaBudget(lam); ok {
		t.Error("DeltaBudget accepted a non-uniform demand")
	}
}

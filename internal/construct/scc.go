// This file is the shortest-cycle-cover (SCC) strategy family: the
// general-topology counterpart of the ring constructors. A general
// instance carries an arbitrary bridgeless host graph, every host edge
// must lie on some chosen cycle of the host, and the objective is the
// total cover length Σ|C_i| — the quantity the literature bounds by
// 7/5·m for bridgeless cubic graphs and 4/3·m + c for snarks.
//
// Three members join the portfolio:
//
//   - scc-exact: anytime branch-and-bound over the host's enumerated
//     simple cycles with an edge-bitmask state (hosts up to 64 distinct
//     edges), seeded with the greedy incumbent, pruned by the vertex
//     visit bound Σ_v ⌈ucdeg(v)/2⌉ and the portfolio's shared bound.
//   - scc-kcycle: the restricted/k-cycle approximation family (Manthey;
//     Tang & Diao): greedy maximum-coverage over cycles of length at
//     most KCycleMaxLen only. Drops out when short cycles cannot cover.
//   - scc-greedy: the universal fallback — walk every uncovered edge
//     around a shortest cycle through it (BFS with the edge removed);
//     bridgelessness guarantees such a cycle exists.
//
// All three refuse ring instances (ErrNotApplicable), exactly as the
// ring members refuse general ones, so the portfolio race composes the
// two families without cross-talk.
package construct

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"

	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/graph"
	"github.com/cyclecover/cyclecover/internal/instance"
)

// MethodSCC marks coverings produced by the shortest-cycle-cover
// strategies (exact, k-cycle-restricted, or greedy; Outcome.Strategy
// carries the member).
const MethodSCC Method = "shortest-cycle-cover"

// CoverCost is the objective a covering is ranked by: cycle count for
// ring instances (the paper's ρ(n) objective), total cover length for
// general-topology instances (the SCC objective). The portfolio and the
// fixed pipelines break ties on this cost toward the lowest registry
// index.
func CoverCost(in instance.Instance, cv *cover.Covering) int {
	if in.IsGeneral() {
		return cv.TotalLength()
	}
	return cv.Size()
}

// GeneralSCCCtx is the fixed general-topology pipeline, the serial
// pinned counterpart of racing the scc members in the portfolio: it
// runs scc-exact, scc-kcycle and scc-greedy in registry order and keeps
// the cheapest cover (total length, ties to the earliest member). The
// portfolio determinism pin asserts the race returns bit-identically
// this winner for every general family and worker count.
func GeneralSCCCtx(ctx context.Context, in instance.Instance, opts Options) (Outcome, error) {
	if !in.IsGeneral() {
		return Outcome{}, fmt.Errorf("%w: GeneralSCCCtx needs a general-topology instance, got %q", ErrNotApplicable, in.Name)
	}
	members := []Strategy{SCCExact{}, SCCKCycle{}, SCCGreedy{}}
	var best Outcome
	bestCost := -1
	for _, m := range members {
		out, err := m.Solve(ctx, in, opts)
		if err != nil {
			if errors.Is(err, ErrNotApplicable) {
				continue
			}
			if ctx.Err() != nil {
				return Outcome{}, ctx.Err()
			}
			return Outcome{}, err
		}
		if c := out.Covering.TotalLength(); bestCost == -1 || c < bestCost {
			best, bestCost = out, c
		}
	}
	if bestCost == -1 {
		return Outcome{}, fmt.Errorf("construct: no scc strategy produced a cover for %q", in.Name)
	}
	return best, nil
}

// MaxSCCEdges caps the host size scc-exact addresses: the search state
// is a single uint64 edge bitmask.
const MaxSCCEdges = 64

// MaxSCCCycles caps the cycle enumeration feeding scc-exact and
// scc-kcycle. Sparse hosts (the cubic families) stay far below it; a
// dense edge-list host whose cycle space explodes past the cap makes the
// enumerating strategies drop out rather than stall the race.
const MaxSCCCycles = 50_000

// DefaultSCCNodeLimit bounds scc-exact branch-and-bound expansions when
// Options.NodeLimit is zero. The committed snark instances complete
// their searches far below it; it converts an adversarial edge-list host
// into an anytime (greedy-seeded) answer instead of a stall.
const DefaultSCCNodeLimit = 2_000_000

// KCycleMaxLen is the cycle-length cap of the restricted scc-kcycle
// strategy. Length 8 covers the snark families' short-cycle structure
// (girth 5 plus the 6- and 8-cycles a cover actually uses) while keeping
// the restricted enumeration tiny.
const KCycleMaxLen = 8

// sccCycle is one enumerated simple cycle of the host: its canonical
// cycle value, its distinct-edge bitmask, and its length.
type sccCycle struct {
	cyc  cover.Cycle
	mask uint64
	len  int
}

// sccEdges indexes the host's distinct edges: bit i of a cycle mask is
// edge (us[i], vs[i]), in the host's deterministic ascending edge order.
type sccEdges struct {
	us, vs []int
}

func indexEdges(host *graph.Graph) sccEdges {
	var e sccEdges
	host.ForEachEdge(func(u, v, _ int) bool {
		e.us = append(e.us, u)
		e.vs = append(e.vs, v)
		return true
	})
	return e
}

// bitOf returns the edge-bit index of {u, v} by binary search over the
// ascending (u, v) edge order; -1 when {u, v} is not a host edge.
func (e sccEdges) bitOf(u, v int) int {
	if u > v {
		u, v = v, u
	}
	lo, hi := 0, len(e.us)
	for lo < hi {
		mid := (lo + hi) / 2
		if e.us[mid] < u || (e.us[mid] == u && e.vs[mid] < v) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(e.us) && e.us[lo] == u && e.vs[lo] == v {
		return lo
	}
	return -1
}

// maskOf returns the edge bitmask of a canonical cycle.
func (e sccEdges) maskOf(c cover.Cycle) uint64 {
	var m uint64
	vs := c.Vertices()
	for i := range vs {
		b := e.bitOf(vs[i], vs[(i+1)%len(vs)])
		if b < 0 {
			panic("construct: enumerated cycle uses a non-host edge")
		}
		m |= 1 << uint(b)
	}
	return m
}

// enumerateCycles lists every simple cycle of the host's simple skeleton
// with length ≤ maxLen, in deterministic order (by root vertex, then DFS
// order over ascending neighbor lists), each cycle once. ok is false
// when the count exceeds MaxSCCCycles.
func enumerateCycles(host *graph.Graph, edges sccEdges, maxLen int) ([]sccCycle, bool) {
	n := host.N()
	var out []sccCycle
	path := make([]int, 0, maxLen)
	onPath := make([]bool, n)
	overflow := false

	var dfs func(root, v int) bool
	dfs = func(root, v int) bool {
		for _, w := range host.Neighbors(v) {
			if w == root && len(path) >= cover.MinCycleLen && path[1] < path[len(path)-1] {
				// Closing edge; path[1] < last dedupes the two directions.
				c, err := cover.WalkCycle(path)
				if err != nil {
					panic(err) // distinct by construction
				}
				if len(out) >= MaxSCCCycles {
					overflow = true
					return false
				}
				out = append(out, sccCycle{cyc: c, mask: edges.maskOf(c), len: len(path)})
			}
			if w <= root || onPath[w] || len(path) >= maxLen {
				continue // root stays the cycle's minimum vertex
			}
			path = append(path, w)
			onPath[w] = true
			ok := dfs(root, w)
			onPath[w] = false
			path = path[:len(path)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	for root := 0; root < n && !overflow; root++ {
		path = append(path[:0], root)
		dfs(root, root)
	}
	if overflow {
		return nil, false
	}
	return out, true
}

// sccGreedyCover walks each uncovered host edge (ascending order) around
// a shortest cycle through it: BFS from one endpoint to the other with
// the edge itself barred. Bridgelessness guarantees the BFS connects.
func sccGreedyCover(ctx context.Context, host *graph.Graph) (*cover.Covering, error) {
	n := host.N()
	cv := cover.NewGeneralCovering(n)
	covered := graph.New(n)
	prev := make([]int, n)
	queue := make([]int, 0, n)
	var err error
	host.ForEachEdge(func(u, v, _ int) bool {
		if ctx.Err() != nil {
			err = ctx.Err()
			return false
		}
		if covered.Mult(u, v) > 0 {
			return true
		}
		// BFS u → v avoiding the direct edge.
		for i := range prev {
			prev[i] = -2
		}
		prev[u] = -1
		queue = append(queue[:0], u)
		for len(queue) > 0 && prev[v] == -2 {
			x := queue[0]
			queue = queue[1:]
			for _, w := range host.Neighbors(x) {
				if x == u && w == v {
					continue
				}
				if prev[w] == -2 {
					prev[w] = x
					queue = append(queue, w)
				}
			}
		}
		if prev[v] == -2 {
			err = fmt.Errorf("construct: no cycle through edge {%d,%d} — host has a bridge", u, v)
			return false
		}
		walk := make([]int, 0, n)
		for x := v; x != -1; x = prev[x] {
			walk = append(walk, x)
		}
		c, werr := cover.WalkCycle(walk)
		if werr != nil {
			err = werr
			return false
		}
		cv.Add(c)
		for _, p := range c.Pairs() {
			covered.AddEdge(p.U, p.V)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return cv, nil
}

// SCCGreedy is the universal general-topology fallback: a valid cover
// for every admitted (bridgeless) host, never optimal, never dropping
// out. The general counterpart of GreedySweep.
type SCCGreedy struct{}

// Name implements Strategy.
func (SCCGreedy) Name() string { return "scc-greedy" }

// Solve implements Strategy.
func (SCCGreedy) Solve(ctx context.Context, in instance.Instance, opts Options) (Outcome, error) {
	if !in.IsGeneral() {
		return Outcome{}, fmt.Errorf("%w: scc-greedy needs a general-topology instance, got %q", ErrNotApplicable, in.Name)
	}
	cv, err := sccGreedyCover(ctx, in.Host)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{Covering: cv, Method: MethodSCC, Strategy: "scc-greedy"}, nil
}

// SCCKCycle is the restricted-cycle approximation family: it covers
// using only cycles of length ≤ KCycleMaxLen, picked by deterministic
// greedy maximum coverage (most newly covered edges, then shortest, then
// lowest enumeration index). It drops out of the race when some host
// edge lies on no short cycle.
type SCCKCycle struct{}

// Name implements Strategy.
func (SCCKCycle) Name() string { return "scc-kcycle" }

// Solve implements Strategy.
func (SCCKCycle) Solve(ctx context.Context, in instance.Instance, opts Options) (Outcome, error) {
	if err := ctx.Err(); err != nil {
		// The restricted enumeration and set-cover run in one short burst;
		// the poll boundary is the call itself.
		return Outcome{}, err
	}
	if !in.IsGeneral() {
		return Outcome{}, fmt.Errorf("%w: scc-kcycle needs a general-topology instance, got %q", ErrNotApplicable, in.Name)
	}
	host := in.Host
	if host.DistinctEdges() > MaxSCCEdges {
		return Outcome{}, fmt.Errorf("%w: scc-kcycle addresses hosts with at most %d distinct edges, got %d", ErrNotApplicable, MaxSCCEdges, host.DistinctEdges())
	}
	edges := indexEdges(host)
	cycles, ok := enumerateCycles(host, edges, KCycleMaxLen)
	if !ok {
		return Outcome{}, fmt.Errorf("%w: scc-kcycle enumeration exceeds %d cycles", ErrNotApplicable, MaxSCCCycles)
	}
	cv, ok := greedySetCover(host.N(), cycles, len(edges.us))
	if !ok {
		return Outcome{}, fmt.Errorf("%w: some host edge lies on no cycle of length ≤ %d", ErrNotApplicable, KCycleMaxLen)
	}
	return Outcome{Covering: cv, Method: MethodSCC, Strategy: "scc-kcycle"}, nil
}

// greedySetCover is deterministic maximum-coverage over an enumerated
// cycle list: repeatedly pick the cycle covering the most uncovered
// edges (ties to the shorter cycle, then the lower enumeration index)
// until every edge bit is covered. ok is false when the list cannot
// cover.
func greedySetCover(n int, cycles []sccCycle, m int) (*cover.Covering, bool) {
	full := fullMask(m)
	var covered uint64
	cv := cover.NewGeneralCovering(n)
	for covered != full {
		best, bestNew := -1, 0
		for i, c := range cycles {
			nw := bits.OnesCount64(c.mask &^ covered)
			if nw > bestNew || (nw == bestNew && nw > 0 && c.len < cycles[best].len) {
				best, bestNew = i, nw
			}
		}
		if best == -1 || bestNew == 0 {
			return nil, false
		}
		cv.Add(cycles[best].cyc)
		covered |= cycles[best].mask
	}
	return cv, true
}

// fullMask returns the m-bit all-ones mask.
func fullMask(m int) uint64 {
	if m >= 64 {
		return math.MaxUint64
	}
	return (1 << uint(m)) - 1
}

// SCCExact is anytime branch-and-bound for the shortest cycle cover:
// state is the covered-edge bitmask, branching picks the lowest
// uncovered edge and tries every cycle through it (shortest first), the
// lower bound is the vertex visit count Σ_v ⌈ucdeg(v)/2⌉ (which at the
// root reproduces the literature's m + n/2 cubic bound), and the
// incumbent starts at the scc-greedy cover so a node-limited or
// bound-cut search still returns a valid cover. Optimal is claimed only
// when the search ran to completion with no cut below the incumbent
// caused by the portfolio's shared bound.
//
// The search is serial and deterministic; Options.Parallelism is
// ignored (the committed hosts complete within milliseconds).
type SCCExact struct{}

// Name implements Strategy.
func (SCCExact) Name() string { return "scc-exact" }

// Solve implements Strategy.
func (SCCExact) Solve(ctx context.Context, in instance.Instance, opts Options) (Outcome, error) {
	if !in.IsGeneral() {
		return Outcome{}, fmt.Errorf("%w: scc-exact needs a general-topology instance, got %q", ErrNotApplicable, in.Name)
	}
	host := in.Host
	if host.DistinctEdges() > MaxSCCEdges {
		return Outcome{}, fmt.Errorf("%w: scc-exact addresses hosts with at most %d distinct edges, got %d", ErrNotApplicable, MaxSCCEdges, host.DistinctEdges())
	}
	edges := indexEdges(host)
	cycles, ok := enumerateCycles(host, edges, host.N())
	if !ok {
		return Outcome{}, fmt.Errorf("%w: scc-exact enumeration exceeds %d cycles", ErrNotApplicable, MaxSCCCycles)
	}
	seed, err := sccGreedyCover(ctx, host)
	if err != nil {
		return Outcome{}, err
	}
	// A second incumbent candidate: greedy set-cover over the short
	// cycles (what scc-kcycle would build). On the snark families it is
	// markedly shorter than the BFS walk cover, and a tight incumbent is
	// what makes the branch-and-bound prune.
	var short []sccCycle
	for _, c := range cycles {
		if c.len <= KCycleMaxLen {
			short = append(short, c)
		}
	}
	if alt, ok := greedySetCover(host.N(), short, len(edges.us)); ok && alt.TotalLength() < seed.TotalLength() {
		seed = alt
	}
	// The literature upper bound doubles as an aggressive initial prune
	// limit: the optimum of every committed family lies below it, so
	// capping exploration there shrinks the tree by orders of magnitude
	// (on the flower snarks, the root lower bound m + n/2 sits one or two
	// slots under it). If a pathological host's optimum exceeds the cap,
	// the search returns the greedy seed un-improved and simply does not
	// claim optimality — the cap can cost the claim, never correctness.
	art := cover.GeneralSCCUpperBound(host.M())
	if host.IsCubic() {
		art = cover.SnarkSCCUpperBound(host.M())
	}
	s := &sccSearch{
		host:    host,
		edges:   edges,
		cycles:  cycles,
		byEdge:  cyclesByEdge(cycles, len(edges.us)),
		limit:   opts.NodeLimit,
		bound:   opts.Bound,
		art:     art + 1,
		ctx:     ctx,
		best:    seed,
		bestLen: seed.TotalLength(),
		minCut:  math.MaxInt,
	}
	if s.limit <= 0 {
		s.limit = DefaultSCCNodeLimit
	}
	complete := s.run()
	if err := ctx.Err(); err != nil && s.best == nil {
		return Outcome{}, err
	}
	return Outcome{
		Covering: s.best,
		Method:   MethodSCC,
		// Complete, and no artificial or portfolio cut fell below the
		// final incumbent: every pruned subtree provably held only covers
		// at least as long.
		Optimal:  complete && s.bestLen <= s.minCut,
		Strategy: "scc-exact",
	}, nil
}

// cyclesByEdge indexes cycle IDs by covered edge bit, each list sorted
// shortest-cycle-first (stable on enumeration index): the branching
// order of the search.
func cyclesByEdge(cycles []sccCycle, m int) [][]int32 {
	byEdge := make([][]int32, m)
	// Two passes sorted by length: enumeration order is deterministic, so
	// appending all length-l cycles before length-(l+1) ones yields the
	// shortest-first stable order without a sort call.
	maxLen := 0
	for _, c := range cycles {
		if c.len > maxLen {
			maxLen = c.len
		}
	}
	for l := cover.MinCycleLen; l <= maxLen; l++ {
		for i, c := range cycles {
			if c.len != l {
				continue
			}
			for b := 0; b < m; b++ {
				if c.mask&(1<<uint(b)) != 0 {
					byEdge[b] = append(byEdge[b], int32(i))
				}
			}
		}
	}
	return byEdge
}

// sccSearch is the mutable state of one branch-and-bound run.
type sccSearch struct {
	host    *graph.Graph
	edges   sccEdges
	cycles  []sccCycle
	byEdge  [][]int32
	limit   int64
	nodes   int64
	bound   *atomic.Int64
	ctx     context.Context
	// art is the artificial exploration cap (literature bound + 1): no
	// subtree that cannot beat it is entered.
	art     int
	chosen  []int32
	best    *cover.Covering
	bestLen int
	// minCut is the smallest effective limit used in a cut that was
	// tighter than the incumbent of the moment (artificial cap or
	// portfolio bound). Such a cut may hide covers between the limit and
	// the incumbent, so optimality is claimed only when the final
	// incumbent is ≤ every such limit.
	minCut int
	stop   bool
	ucdeg  []int
}

func (s *sccSearch) run() bool {
	s.ucdeg = make([]int, s.host.N())
	s.expand(0, 0)
	return !s.stop
}

// lowerBound is the additional-length bound Σ_v ⌈ucdeg(v)/2⌉ for the
// uncovered edge set: covering an edge incident to v spends a visit of
// v, and one visit serves at most two of v's uncovered edges.
func (s *sccSearch) lowerBound(covered uint64) int {
	for i := range s.ucdeg {
		s.ucdeg[i] = 0
	}
	m := len(s.edges.us)
	for b := 0; b < m; b++ {
		if covered&(1<<uint(b)) == 0 {
			s.ucdeg[s.edges.us[b]]++
			s.ucdeg[s.edges.vs[b]]++
		}
	}
	lb := 0
	for _, d := range s.ucdeg {
		lb += (d + 1) / 2
	}
	return lb
}

func (s *sccSearch) expand(covered uint64, curLen int) {
	if s.stop {
		return
	}
	s.nodes++
	if s.nodes > s.limit || s.ctx.Err() != nil {
		s.stop = true
		return
	}
	full := fullMask(len(s.edges.us))
	if covered == full {
		if curLen < s.bestLen {
			s.bestLen = curLen
			cv := cover.NewGeneralCovering(s.host.N())
			for _, id := range s.chosen {
				cv.Add(s.cycles[id].cyc)
			}
			s.best = cv
		}
		return
	}
	// Effective limit: strictly beat the incumbent, the artificial cap,
	// and any external (portfolio) bound. A cut at a limit below the
	// incumbent of the moment may hide covers between the two; record the
	// limit so the Optimal claim can check the final incumbent cleared it.
	limit, tightened := s.bestLen, false
	if s.art < limit {
		limit, tightened = s.art, true
	}
	if s.bound != nil {
		if b := s.bound.Load(); b < int64(limit) {
			limit, tightened = int(b), true
		}
	}
	lb := s.lowerBound(covered)
	if curLen+lb >= limit {
		if tightened && limit < s.minCut {
			s.minCut = limit
		}
		return
	}
	// Branch on the lowest uncovered edge: every cover must serve it, and
	// the fixed order keeps sibling subtrees disjoint in a way that the
	// transposition-free search benefits from. Children recompute their
	// own bound first thing, so no per-child pruning is repeated here.
	b := bits.TrailingZeros64(^covered & full)
	for _, id := range s.byEdge[b] {
		c := s.cycles[id]
		s.chosen = append(s.chosen, id)
		s.expand(covered|c.mask, curLen+c.len)
		s.chosen = s.chosen[:len(s.chosen)-1]
		if s.stop {
			return
		}
	}
}

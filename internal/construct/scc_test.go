package construct

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/instance"
)

// sccFamilies is the committed general-topology table: every spec the
// wire format offers, with the provably optimal shortest-cycle-cover
// length the exact strategy must reach. The snark rows double as the
// literature pin: Petersen needs 4/3·m + 1 = 21 (the unique snark that
// exceeds 4/3·m), the Blanuša snarks and flower snarks meet 4/3·m
// exactly (Brinkmann–Goedgebeur–Hägglund–Markström).
var sccFamilies = []struct {
	spec    string
	n       int
	optimal int
	snark   bool
}{
	{"petersen", 10, 21, true},
	{"blanusa:1", 18, 36, true},
	{"blanusa:2", 18, 36, true},
	{"flower:5", 20, 40, true},
	{"flower:7", 28, 56, true},
	{"prism:3", 6, 12, false},
	{"prism:4", 8, 16, false},
	{"cubic:3", 12, 24, false},
	{"edges:0-1,1-2,2-3,3-0,0-2,1-3", 4, 8, false}, // K_4 is cubic: 4/3·m = 8 (two 4-cycles)
	{"adj:1,2;0,2;0,1", 3, 3, false},               // triangle
}

func TestSCCExactOptimalLengths(t *testing.T) {
	for _, tc := range sccFamilies {
		t.Run(tc.spec, func(t *testing.T) {
			in, err := instance.Parse(tc.n, tc.spec)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			out, err := (SCCExact{}).Solve(context.Background(), in, Options{})
			if err != nil {
				t.Fatalf("scc-exact: %v", err)
			}
			if err := cover.VerifyGeneral(out.Covering, in.Host); err != nil {
				t.Fatalf("invalid cover: %v", err)
			}
			got := out.Covering.TotalLength()
			if got != tc.optimal {
				t.Fatalf("length = %d, want %d", got, tc.optimal)
			}
			if !out.Optimal {
				t.Fatalf("optimal length %d reached but not claimed optimal", got)
			}
			if lb := cover.SCCLowerBound(in.Host); got < lb {
				t.Fatalf("length %d below provable lower bound %d", got, lb)
			}
			if tc.snark {
				if ub := cover.SnarkSCCUpperBound(in.Host.M()); got > ub {
					t.Fatalf("snark cover length %d exceeds literature bound 4/3·m + c = %d", got, ub)
				}
			}
		})
	}
}

func TestSCCGreedyAndKCycleValidity(t *testing.T) {
	for _, tc := range sccFamilies {
		in, err := instance.Parse(tc.n, tc.spec)
		if err != nil {
			t.Fatalf("%s: parse: %v", tc.spec, err)
		}
		for _, st := range []Strategy{SCCGreedy{}, SCCKCycle{}} {
			out, err := st.Solve(context.Background(), in, Options{})
			if err != nil {
				t.Fatalf("%s on %s: %v", st.Name(), tc.spec, err)
			}
			if err := cover.VerifyGeneral(out.Covering, in.Host); err != nil {
				t.Fatalf("%s on %s: invalid cover: %v", st.Name(), tc.spec, err)
			}
			if got := out.Covering.TotalLength(); got < tc.optimal {
				t.Fatalf("%s on %s: length %d beats the proven optimum %d", st.Name(), tc.spec, got, tc.optimal)
			}
		}
	}
}

// TestSCCKCycleDropsOut: a host whose only cycle is longer than the
// restriction must make scc-kcycle (and only it) leave the race.
func TestSCCKCycleDropsOut(t *testing.T) {
	// C_12 as an explicit edge list: girth 12 > KCycleMaxLen.
	spec := "edges:0-1,1-2,2-3,3-4,4-5,5-6,6-7,7-8,8-9,9-10,10-11,11-0"
	in, err := instance.Parse(12, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (SCCKCycle{}).Solve(context.Background(), in, Options{}); !errors.Is(err, ErrNotApplicable) {
		t.Fatalf("scc-kcycle on C_12: err = %v, want ErrNotApplicable", err)
	}
	// The exact and greedy members still serve it: the Hamilton cycle is
	// the whole cover.
	for _, st := range []Strategy{SCCExact{}, SCCGreedy{}} {
		out, err := st.Solve(context.Background(), in, Options{})
		if err != nil {
			t.Fatalf("%s on C_12: %v", st.Name(), err)
		}
		if out.Covering.TotalLength() != 12 || out.Covering.Size() != 1 {
			t.Fatalf("%s on C_12: cover %v, want the single Hamilton cycle", st.Name(), out.Covering.Cycles)
		}
	}
}

// TestSCCCrossFamilyGuards: the two strategy sub-families must refuse
// each other's instances with ErrNotApplicable — a general host that
// happens to be K_n must never fall into the ring machinery (and pick
// up the wrong objective), and vice versa.
func TestSCCCrossFamilyGuards(t *testing.T) {
	ring := instance.AllToAll(9)
	for _, st := range []Strategy{SCCExact{}, SCCKCycle{}, SCCGreedy{}} {
		if _, err := st.Solve(context.Background(), ring, Options{}); !errors.Is(err, ErrNotApplicable) {
			t.Errorf("%s on ring instance: err = %v, want ErrNotApplicable", st.Name(), err)
		}
	}
	// K_4 as a general host is uniform λ=1 — exactly the shape that
	// would slip through a missing guard.
	k4, err := instance.Parse(4, "edges:0-1,0-2,0-3,1-2,1-3,2-3")
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range []Strategy{ClosedForm{}, ExactSearch{}, Repair{}, GreedySweep{}} {
		if _, err := st.Solve(context.Background(), k4, Options{}); !errors.Is(err, ErrNotApplicable) {
			t.Errorf("%s on general K_4 host: err = %v, want ErrNotApplicable", st.Name(), err)
		}
	}
}

// TestPortfolioMatchesGeneralPipeline extends the portfolio equivalence
// pin to the general-topology families: for every spec the racing
// portfolio must return bit-identically the serial pinned winner
// (GeneralSCCCtx), across worker counts and with the ring members in
// the race.
func TestPortfolioMatchesGeneralPipeline(t *testing.T) {
	pf := NewPortfolio()
	for _, tc := range sccFamilies {
		t.Run(tc.spec, func(t *testing.T) {
			in, err := instance.Parse(tc.n, tc.spec)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			want, err := GeneralSCCCtx(context.Background(), in, Options{})
			if err != nil {
				t.Fatalf("pipeline: %v", err)
			}
			for _, par := range []int{1, 2, 8} {
				got, err := pf.Solve(context.Background(), in, Options{Parallelism: par})
				if err != nil {
					t.Fatalf("portfolio (par=%d): %v", par, err)
				}
				if got.Strategy != want.Strategy {
					t.Fatalf("par=%d: winner %s, pipeline winner %s", par, got.Strategy, want.Strategy)
				}
				if CoverCost(in, got.Covering) != CoverCost(in, want.Covering) {
					t.Fatalf("par=%d: cost %d, pipeline cost %d", par, CoverCost(in, got.Covering), CoverCost(in, want.Covering))
				}
				if !equalMultisets(cycleMultiset(got.Covering), cycleMultiset(want.Covering)) {
					t.Fatalf("par=%d: cycle multiset differs from serial pipeline", par)
				}
			}
		})
	}
}

// TestSCCExactHonoursBound: with a portfolio bound at the optimum, the
// search cannot beat it, must still return its (greedy-seeded) cover,
// and must not claim optimality when cuts below the incumbent occurred.
func TestSCCExactHonoursBound(t *testing.T) {
	in, err := instance.Parse(10, "petersen")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{}
	opts.Bound = new(atomic.Int64)
	opts.Bound.Store(21) // a rival already holds the optimum
	out, err := (SCCExact{}).Solve(context.Background(), in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := cover.VerifyGeneral(out.Covering, in.Host); err != nil {
		t.Fatalf("bound-cut cover invalid: %v", err)
	}
	if out.Covering.TotalLength() < 21 {
		t.Fatalf("cover of length %d beats the proven optimum", out.Covering.TotalLength())
	}
	if out.Optimal && out.Covering.TotalLength() > 21 {
		t.Fatal("claimed optimality for a cover the bound prevented from improving")
	}
}

// TestSCCNodeLimitAnytime: a tiny node budget must still yield a valid
// cover (the greedy seed), not an error, and must not claim optimality.
func TestSCCNodeLimitAnytime(t *testing.T) {
	in, err := instance.Parse(28, "flower:7")
	if err != nil {
		t.Fatal(err)
	}
	out, err := (SCCExact{}).Solve(context.Background(), in, Options{NodeLimit: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := cover.VerifyGeneral(out.Covering, in.Host); err != nil {
		t.Fatalf("anytime cover invalid: %v", err)
	}
	if out.Optimal {
		t.Fatal("optimality claimed under a 10-node budget")
	}
}

// BenchmarkSCCCoverCubic is the cubic-cover bench smoke gated by
// cmd/benchgate: the full fixed general pipeline on the Petersen graph.
func BenchmarkSCCCoverCubic(b *testing.B) {
	in, err := instance.Parse(10, "petersen")
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := GeneralSCCCtx(ctx, in, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if out.Covering.TotalLength() != 21 {
			b.Fatalf("length %d", out.Covering.TotalLength())
		}
	}
}

package construct

import (
	"fmt"
	"testing"

	"github.com/cyclecover/cyclecover/internal/cover"
)

// coveringKey flattens a covering into a comparable string so two
// searches can be diffed bit-for-bit.
func coveringKey(cv *cover.Covering) string {
	if cv == nil {
		return "<nil>"
	}
	return fmt.Sprintf("%v", cv.Cycles)
}

// TestExactPruningEquivalence is the orbit-pruning soundness property:
// for n in 3..10 at both the feasible (ρ) and infeasible (ρ−1) budget,
// the symmetry-pruned search and the fully disabled search agree on
// Complete and on whether a covering exists — and when both construct,
// the coverings have equal size. The pruned search may legitimately
// return a different (symmetric) representative, so cycle-level equality
// is asserted only for the memo flag (TestExactMemoEquivalence).
func TestExactPruningEquivalence(t *testing.T) {
	for n := 3; n <= 10; n++ {
		maxLens := []int{4}
		if n <= 8 {
			// Unbounded cycle length keeps the candidate space rich (every
			// subset of an arc interior) while staying affordable.
			maxLens = append(maxLens, 0)
		}
		budgets := []int{cover.Rho(n) - 1, cover.Rho(n)}
		if n == 10 {
			// n=10 at ρ is a multi-million-node construction (newly within
			// reach of this engine, impossible for the unpruned seed); the
			// certification budget alone keeps the n=10 datapoint at CI cost.
			budgets = budgets[:1]
		}
		for _, maxLen := range maxLens {
			for _, budget := range budgets {
				t.Run(fmt.Sprintf("n=%d/maxlen=%d/budget=%d", n, maxLen, budget), func(t *testing.T) {
					base := ExactOptions{Budget: budget, MaxLen: maxLen, Parallelism: 1}
					pruned := base
					plain := base
					plain.DisableSymmetry, plain.DisableMemo = true, true
					got := Exact(n, pruned)
					want := Exact(n, plain)
					if !got.Complete || !want.Complete {
						t.Fatalf("searches did not complete: pruned=%+v plain=%+v", got, want)
					}
					if (got.Covering == nil) != (want.Covering == nil) {
						t.Fatalf("feasibility disagrees: pruned=%v plain=%v",
							coveringKey(got.Covering), coveringKey(want.Covering))
					}
					if got.Covering != nil && got.Covering.Size() != want.Covering.Size() {
						t.Fatalf("cost disagrees: pruned=%d plain=%d",
							got.Covering.Size(), want.Covering.Size())
					}
					if got.Nodes > want.Nodes {
						t.Errorf("pruned search explored more nodes (%d) than plain (%d)",
							got.Nodes, want.Nodes)
					}
				})
			}
		}
	}
}

// TestExactMemoEquivalence pins the transposition table's transparency:
// memo hits replace only subtrees already proven infeasible, so the
// search must return the bit-identical covering, Complete flag — and,
// with symmetry off too, visit solutions in the same order — with the
// table on or off. Only Nodes may differ.
func TestExactMemoEquivalence(t *testing.T) {
	for n := 3; n <= 10; n++ {
		budgets := []int{cover.Rho(n) - 1, cover.Rho(n)}
		if n == 10 {
			budgets = budgets[:1] // see TestExactPruningEquivalence
		}
		for _, budget := range budgets {
			t.Run(fmt.Sprintf("n=%d/budget=%d", n, budget), func(t *testing.T) {
				for _, disableSym := range []bool{false, true} {
					on := ExactOptions{Budget: budget, MaxLen: 4, Parallelism: 1, DisableSymmetry: disableSym}
					off := on
					off.DisableMemo = true
					got := Exact(n, on)
					want := Exact(n, off)
					if got.Complete != want.Complete {
						t.Fatalf("sym=%v: Complete %v with memo, %v without", !disableSym, got.Complete, want.Complete)
					}
					if gk, wk := coveringKey(got.Covering), coveringKey(want.Covering); gk != wk {
						t.Fatalf("sym=%v: covering differs with memo:\n  on:  %s\n  off: %s", !disableSym, gk, wk)
					}
					if got.Nodes > want.Nodes {
						t.Errorf("sym=%v: memo-on explored more nodes (%d) than memo-off (%d)",
							!disableSym, got.Nodes, want.Nodes)
					}
				}
			})
		}
	}
}

// TestExactTruncationNeverClaimsComplete is the infeasibility-soundness
// pin: across a sweep of tiny node limits — where memo entries and orbit
// cuts interact with truncation in every possible order — a search that
// reports Complete=true must agree with the ground-truth verdict, and a
// truncated search must never manufacture an infeasibility proof at a
// budget where a covering exists.
func TestExactTruncationNeverClaimsComplete(t *testing.T) {
	for _, n := range []int{6, 8, 9} {
		rho := cover.Rho(n)
		truth := map[int]bool{rho - 1: false, rho: true} // budget → feasible (Theorems 1–2)
		for budget, feasible := range truth {
			for limit := int64(1); limit <= 4096; limit *= 4 {
				out := Exact(n, ExactOptions{Budget: budget, MaxLen: 4, NodeLimit: limit, Parallelism: 1})
				if out.Covering != nil && !feasible {
					t.Fatalf("n=%d budget=%d: covering found below ρ", n, budget)
				}
				if !out.Complete {
					continue
				}
				if feasible && out.Covering == nil {
					t.Fatalf("n=%d budget=%d limit=%d: Complete=true with no covering at a feasible budget — a false infeasibility proof",
						n, budget, limit)
				}
			}
		}
	}
}

// TestExactBeyondKeyCapacity pins the memo-off fallback for rings whose
// pair count overflows the packed residual key (PairCount(24) = 276 >
// graph.MaxKeyPairs): the search must run with the transposition table
// disabled rather than flip out-of-range key bits. Regression: the
// unguarded key maintenance panicked with "index out of range [4]".
func TestExactBeyondKeyCapacity(t *testing.T) {
	out := Exact(24, ExactOptions{Budget: 6, MaxLen: 4, NodeLimit: 5_000, Parallelism: 1})
	if out.Covering != nil {
		t.Fatalf("budget 6 cannot cover K_24: got a covering")
	}
}

package construct

import (
	"context"

	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/graph"
	"github.com/cyclecover/cyclecover/internal/ring"
	"github.com/cyclecover/cyclecover/internal/scratch"
)

// greedyScratch is the per-call working state of the greedy constructor:
// the residual demand graph (unserved multiplicity per pair) and the
// cycle-growing buffers. Pooled so repeated constructions reuse their
// allocations.
type greedyScratch struct {
	residual graph.Graph
	verts    []int // the cycle being grown
	probe    []int // candidate cycle buffer for coverage scoring
}

var greedyScratches = scratch.NewPool(func() *greedyScratch { return &greedyScratch{} })

// Greedy constructs a valid DRC-covering of an arbitrary logical
// multigraph over r, as a baseline and as the constructor for demand
// patterns the closed-form machinery does not address (random instances,
// sub-all-to-all demand). Strategy: repeatedly take the unserved request
// with the largest short-arc distance, then grow a cycle around it —
// first the third vertex, then optionally a fourth — choosing each added
// vertex to maximise the number of additional unserved requests covered.
//
// The result is always valid (every request served at least its
// multiplicity); nothing is claimed about optimality. EliminateRedundant
// is applied before returning.
func Greedy(r ring.Ring, demand *graph.Graph) *cover.Covering {
	cv, _ := GreedyCtx(context.Background(), r, demand) // Background: err impossible
	return cv
}

// GreedyCtx is Greedy under a context: cancellation is polled once per
// constructed cycle, so the builder stops within one cycle-growing step
// of ctx firing and returns ctx's error (never a partial covering).
//
// The unserved multiplicities live in a dense residual graph copied from
// the demand into pooled scratch — no per-pair map traffic — and every
// pick iterates it in deterministic ascending order.
func GreedyCtx(ctx context.Context, r ring.Ring, demand *graph.Graph) (*cover.Covering, error) {
	gs := greedyScratches.Get()
	defer greedyScratches.Put(gs)
	// The residual spans the ring even when the demand graph is smaller
	// (a sub-all-to-all demand on fewer vertices is an anticipated
	// input): cycle growing probes pairs across the whole ring, and the
	// bookkeeping must answer "not demanded" rather than range-panic.
	res := &gs.residual
	n := r.N()
	if demand.N() > n {
		n = demand.N()
	}
	res.Reset(n)
	demand.ForEachEdge(func(u, v, mult int) bool {
		res.AddEdgeMulti(u, v, mult)
		return true
	})

	cv := cover.NewCovering(r)
	done := ctx.Done()
	for res.M() > 0 {
		select {
		case <-done:
			return nil, ctx.Err()
		default:
		}
		tu, tv := pickFarthest(r, res)
		c := gs.growCycle(r, tu, tv)
		// Serve: each covered pair loses at most one unit of unserved
		// multiplicity per cycle (a cycle provides one slot per pair).
		verts := c.Vertices()
		k := len(verts)
		for i := 0; i < k; i++ {
			u, v := verts[i], verts[(i+1)%k]
			if res.HasEdge(u, v) {
				res.RemoveEdge(u, v)
			}
		}
		cv.Add(c)
	}
	EliminateRedundant(cv, demand)
	return cv, nil
}

// pickFarthest returns the unserved pair with maximum short-arc distance.
// The residual graph iterates in ascending lexicographic order and the
// comparison is strict, so ties resolve to the lexicographically smallest
// pair — deterministically, with no map-order dependence.
func pickFarthest(r ring.Ring, residual *graph.Graph) (int, int) {
	bestU, bestV, bestD := -1, -1, -1
	residual.ForEachEdge(func(u, v, _ int) bool {
		if d := r.Dist(u, v); d > bestD {
			bestU, bestV, bestD = u, v, d
		}
		return true
	})
	return bestU, bestV
}

// growCycle builds a cycle covering the target pair {tu, tv}, greedily
// adding up to two more vertices that maximise coverage of unserved
// requests.
func (gs *greedyScratch) growCycle(r ring.Ring, tu, tv int) cover.Cycle {
	gs.verts = append(gs.verts[:0], tu, tv)
	// The target must stay cyclically consecutive: each added vertex must
	// keep at least one arc between tu and tv empty. Track which side we
	// are filling: the first added vertex fixes the side.
	side := -1 // -1 undecided; 0 = interior(tu→tv); 1 = interior(tv→tu)
	for added := 0; added < 2; added++ {
		bestV, bestGain, bestSide := -1, 0, side
		for v := 0; v < r.N(); v++ {
			if v == tu || v == tv || contains(gs.verts, v) {
				continue
			}
			vSide := 1
			if r.ArcBetween(tu, tv).ContainsVertex(r, v) {
				vSide = 0
			}
			if side != -1 && vSide != side {
				continue
			}
			gain := gs.coverageGain(r, v)
			if gain > bestGain || (gain == bestGain && gain > 0 && v < bestV) {
				bestV, bestGain, bestSide = v, gain, vSide
			}
		}
		if bestV == -1 || bestGain == 0 {
			break
		}
		gs.verts = append(gs.verts, bestV)
		side = bestSide
	}
	if len(gs.verts) == 2 {
		// No helpful third vertex: pick the lowest vertex that keeps the
		// target pair consecutive (any vertex works — it lands in one of
		// the two arcs and leaves the other empty).
		for v := 0; v < r.N(); v++ {
			if v != tu && v != tv {
				gs.verts = append(gs.verts, v)
				break
			}
		}
	}
	return cover.MustCycle(r, gs.verts...)
}

// coverageGain counts how many unserved requests the cycle verts ∪ {v}
// covers beyond those covered by verts alone, scoring candidate cycles in
// a reusable buffer instead of materializing Cycle values.
func (gs *greedyScratch) coverageGain(r ring.Ring, v int) int {
	if len(gs.verts) < 2 {
		return 0
	}
	before := 0
	if len(gs.verts) >= 3 {
		gs.probe = append(gs.probe[:0], gs.verts...)
		ring.SortByRingOrder(gs.probe)
		before = gs.unservedPairs(r, gs.probe)
	}
	gs.probe = append(gs.probe[:0], gs.verts...)
	gs.probe = append(gs.probe, v)
	if len(gs.probe) < 3 {
		// A 2-set has no pairs; count the would-be triangle's coverage
		// directly once it reaches size 3.
		return 0
	}
	ring.SortByRingOrder(gs.probe)
	return gs.unservedPairs(r, gs.probe) - before
}

// unservedPairs counts the consecutive pairs of the ring-ordered vertex
// set that still carry unserved demand.
func (gs *greedyScratch) unservedPairs(_ ring.Ring, verts []int) int {
	count := 0
	k := len(verts)
	for i := 0; i < k; i++ {
		if gs.residual.HasEdge(verts[i], verts[(i+1)%k]) {
			count++
		}
	}
	return count
}

func contains(vs []int, v int) bool {
	for _, w := range vs {
		if w == v {
			return true
		}
	}
	return false
}

package construct

import (
	"context"

	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/graph"
	"github.com/cyclecover/cyclecover/internal/ring"
)

// Greedy constructs a valid DRC-covering of an arbitrary logical
// multigraph over r, as a baseline and as the constructor for demand
// patterns the closed-form machinery does not address (random instances,
// sub-all-to-all demand). Strategy: repeatedly take the unserved request
// with the largest short-arc distance, then grow a cycle around it —
// first the third vertex, then optionally a fourth — choosing each added
// vertex to maximise the number of additional unserved requests covered.
//
// The result is always valid (every request served at least its
// multiplicity); nothing is claimed about optimality. EliminateRedundant
// is applied before returning.
func Greedy(r ring.Ring, demand *graph.Graph) *cover.Covering {
	cv, _ := GreedyCtx(context.Background(), r, demand) // Background: err impossible
	return cv
}

// GreedyCtx is Greedy under a context: cancellation is polled once per
// constructed cycle, so the builder stops within one cycle-growing step
// of ctx firing and returns ctx's error (never a partial covering).
func GreedyCtx(ctx context.Context, r ring.Ring, demand *graph.Graph) (*cover.Covering, error) {
	cv := cover.NewCovering(r)
	// need[pair] = multiplicity still unserved.
	need := make(map[graph.Edge]int)
	for _, e := range demand.Edges() {
		need[e] = demand.Multiplicity(e.U, e.V)
	}

	serve := func(c cover.Cycle) {
		for _, pr := range c.Pairs() {
			if need[pr] > 0 {
				need[pr]--
				if need[pr] == 0 {
					delete(need, pr)
				}
			}
		}
		cv.Add(c)
	}

	done := ctx.Done()
	for len(need) > 0 {
		select {
		case <-done:
			return nil, ctx.Err()
		default:
		}
		target := pickFarthest(r, need)
		c := growCycle(r, target, need)
		serve(c)
	}
	EliminateRedundant(cv, demand)
	return cv, nil
}

// pickFarthest returns the unserved pair with maximum short-arc distance,
// ties broken lexicographically for determinism.
func pickFarthest(r ring.Ring, need map[graph.Edge]int) graph.Edge {
	var best graph.Edge
	bestD := -1
	for e := range need {
		d := r.Dist(e.U, e.V)
		if d > bestD || (d == bestD && (e.U < best.U || (e.U == best.U && e.V < best.V))) {
			best, bestD = e, d
		}
	}
	return best
}

// growCycle builds a cycle covering target, greedily adding up to two more
// vertices that maximise coverage of unserved requests.
func growCycle(r ring.Ring, target graph.Edge, need map[graph.Edge]int) cover.Cycle {
	verts := []int{target.U, target.V}
	// target must stay cyclically consecutive: each added vertex must keep
	// at least one arc between U and V empty. Track which side we are
	// filling: the first added vertex fixes the side.
	side := -1 // -1 undecided; 0 = interior(U→V); 1 = interior(V→U)
	for added := 0; added < 2; added++ {
		bestV, bestGain, bestSide := -1, 0, side
		for v := 0; v < r.N(); v++ {
			if v == target.U || v == target.V || contains(verts, v) {
				continue
			}
			vSide := 1
			if r.ArcBetween(target.U, target.V).ContainsVertex(r, v) {
				vSide = 0
			}
			if side != -1 && vSide != side {
				continue
			}
			gain := coverageGain(r, verts, v, need)
			if gain > bestGain || (gain == bestGain && gain > 0 && v < bestV) {
				bestV, bestGain, bestSide = v, gain, vSide
			}
		}
		if bestV == -1 || bestGain == 0 {
			break
		}
		verts = append(verts, bestV)
		side = bestSide
	}
	if len(verts) == 2 {
		// No helpful third vertex: pick the lowest vertex that keeps the
		// target pair consecutive (any vertex works — it lands in one of
		// the two arcs and leaves the other empty).
		for v := 0; v < r.N(); v++ {
			if v != target.U && v != target.V {
				verts = append(verts, v)
				break
			}
		}
	}
	return cover.MustCycle(r, verts...)
}

// coverageGain counts how many unserved requests the cycle verts ∪ {v}
// covers beyond those covered by verts alone.
func coverageGain(r ring.Ring, verts []int, v int, need map[graph.Edge]int) int {
	withV := append(append([]int(nil), verts...), v)
	if len(withV) < 3 {
		// A 2-set has no pairs; count the would-be triangle's coverage
		// directly once it reaches size 3.
		return 0
	}
	before := 0
	if len(verts) >= 3 {
		cOld := cover.MustCycle(r, verts...)
		for _, pr := range cOld.Pairs() {
			if need[pr] > 0 {
				before++
			}
		}
	}
	cNew := cover.MustCycle(r, withV...)
	after := 0
	for _, pr := range cNew.Pairs() {
		if need[pr] > 0 {
			after++
		}
	}
	return after - before
}

func contains(vs []int, v int) bool {
	for _, w := range vs {
		if w == v {
			return true
		}
	}
	return false
}

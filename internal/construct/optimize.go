package construct

import (
	"context"

	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/graph"
)

// EliminateRedundant removes cycles that are unnecessary for covering the
// demand: a cycle is redundant when every pair it covers retains coverage
// at or above its demanded multiplicity after removal. Cycles are scanned
// repeatedly (largest first, so cheap small cycles survive when either
// could go) until a fixpoint; the covering is modified in place and the
// number of removed cycles returned.
//
// The optimal constructions contain no redundant cycles (each covers at
// least one pair uniquely), so this is a no-op there; it matters for
// greedy output and for experiment ablations.
func EliminateRedundant(cv *cover.Covering, demand *graph.Graph) int {
	n := cv.Ring.N()
	needFor := func(u, v int) int {
		if u >= demand.N() || v >= demand.N() {
			return 0
		}
		return demand.Multiplicity(u, v)
	}

	// Dense coverage tally on the ring's vertices: one slot per covered
	// pair per cycle. Out-of-ring pairs are not tallied (TallyCoverage
	// skips them) and never block a removal — they serve no demand.
	counts := graph.New(n)
	cv.TallyCoverage(counts)
	inRing := func(u, v int) bool { return u >= 0 && v >= 0 && u < n && v < n }
	removed := 0
	for changed := true; changed; {
		changed = false
		// Prefer removing longer cycles: they free more slots.
		bestIdx, bestLen := -1, 0
		for i, c := range cv.Cycles {
			verts := c.Vertices()
			k := len(verts)
			ok := true
			for j := 0; j < k; j++ {
				u, v := verts[j], verts[(j+1)%k]
				if !inRing(u, v) {
					continue
				}
				if counts.Mult(u, v)-1 < needFor(u, v) {
					ok = false
					break
				}
			}
			if ok && k > bestLen {
				bestIdx, bestLen = i, k
			}
		}
		if bestIdx >= 0 {
			verts := cv.Cycles[bestIdx].Vertices()
			k := len(verts)
			for j := 0; j < k; j++ {
				if u, v := verts[j], verts[(j+1)%k]; inRing(u, v) {
					counts.RemoveEdge(u, v)
				}
			}
			cv.Cycles = append(cv.Cycles[:bestIdx], cv.Cycles[bestIdx+1:]...)
			removed++
			changed = true
		}
	}
	return removed
}

// Lambda builds a DRC-covering of λK_n (every pair demanded λ times, the
// paper's first listed extension) by stacking λ copies of the all-to-all
// covering: coverage multiplicity scales with λ, so validity is immediate,
// and the size is λ·|AllToAll(n)| — within λ·(achieved−ρ(n)) + (λ−1)·slack
// of the generalised arc-length bound reported by
// cover.InstanceLowerBound.
func Lambda(n, lambda int) (Result, error) {
	return LambdaCtx(context.Background(), n, lambda)
}

// LambdaCtx is Lambda under a context, threading it into the underlying
// all-to-all construction.
func LambdaCtx(ctx context.Context, n, lambda int) (Result, error) {
	if lambda < 1 {
		return Result{}, errLambda(lambda)
	}
	base, err := AllToAllCtx(ctx, n)
	if err != nil {
		return Result{}, err
	}
	cv := cover.NewCovering(base.Covering.Ring)
	for i := 0; i < lambda; i++ {
		cv.Add(base.Covering.Cycles...)
	}
	return Result{Covering: cv, Method: base.Method, Optimal: base.Optimal && lambda == 1}, nil
}

type errLambda int

func (e errLambda) Error() string { return "construct: lambda must be >= 1" }

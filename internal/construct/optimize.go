package construct

import (
	"context"

	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/graph"
)

// EliminateRedundant removes cycles that are unnecessary for covering the
// demand: a cycle is redundant when every pair it covers retains coverage
// at or above its demanded multiplicity after removal. Cycles are scanned
// repeatedly (largest first, so cheap small cycles survive when either
// could go) until a fixpoint; the covering is modified in place and the
// number of removed cycles returned.
//
// The optimal constructions contain no redundant cycles (each covers at
// least one pair uniquely), so this is a no-op there; it matters for
// greedy output and for experiment ablations.
func EliminateRedundant(cv *cover.Covering, demand *graph.Graph) int {
	needFor := func(e graph.Edge) int {
		if e.U >= demand.N() || e.V >= demand.N() {
			return 0
		}
		return demand.Multiplicity(e.U, e.V)
	}

	counts := cv.CoverageCounts()
	removed := 0
	for changed := true; changed; {
		changed = false
		// Prefer removing longer cycles: they free more slots.
		bestIdx, bestLen := -1, 0
		for i, c := range cv.Cycles {
			ok := true
			for _, pr := range c.Pairs() {
				if counts[pr]-1 < needFor(pr) {
					ok = false
					break
				}
			}
			if ok && c.Len() > bestLen {
				bestIdx, bestLen = i, c.Len()
			}
		}
		if bestIdx >= 0 {
			for _, pr := range cv.Cycles[bestIdx].Pairs() {
				counts[pr]--
			}
			cv.Cycles = append(cv.Cycles[:bestIdx], cv.Cycles[bestIdx+1:]...)
			removed++
			changed = true
		}
	}
	return removed
}

// Lambda builds a DRC-covering of λK_n (every pair demanded λ times, the
// paper's first listed extension) by stacking λ copies of the all-to-all
// covering: coverage multiplicity scales with λ, so validity is immediate,
// and the size is λ·|AllToAll(n)| — within λ·(achieved−ρ(n)) + (λ−1)·slack
// of the generalised arc-length bound reported by
// cover.InstanceLowerBound.
func Lambda(n, lambda int) (Result, error) {
	return LambdaCtx(context.Background(), n, lambda)
}

// LambdaCtx is Lambda under a context, threading it into the underlying
// all-to-all construction.
func LambdaCtx(ctx context.Context, n, lambda int) (Result, error) {
	if lambda < 1 {
		return Result{}, errLambda(lambda)
	}
	base, err := AllToAllCtx(ctx, n)
	if err != nil {
		return Result{}, err
	}
	cv := cover.NewCovering(base.Covering.Ring)
	for i := 0; i < lambda; i++ {
		cv.Add(base.Covering.Cycles...)
	}
	return Result{Covering: cv, Method: base.Method, Optimal: base.Optimal && lambda == 1}, nil
}

type errLambda int

func (e errLambda) Error() string { return "construct: lambda must be >= 1" }

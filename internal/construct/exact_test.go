package construct

import (
	"testing"

	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/graph"
)

// TestExactFindsRhoCoverings verifies constructively, by independent
// search, that coverings of size ρ(n) exist for all small n — both
// parities. (Beyond n = 9 pure branch-and-bound thrashes; the
// min-conflicts search takes over there, exercised by
// TestEvenSmallIsOptimal.)
func TestExactFindsRhoCoverings(t *testing.T) {
	for n := 4; n <= 9; n++ {
		cv, ok := ExactOptimal(n, 4_000_000)
		if !ok {
			t.Fatalf("n=%d: no covering found at budget ρ=%d", n, cover.Rho(n))
		}
		if err := cover.VerifyOptimal(cv); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// TestExactProvesLowerBounds certifies ρ(n)−1 infeasibility by exhaustive
// search with unbounded cycle length — the computational proof that the
// paper's values are optimal, including the +1 refinement for n = 8
// (p = 4 even, arc-length bound p²/2 = 8 < ρ = 9).
func TestExactProvesLowerBounds(t *testing.T) {
	for _, n := range []int{4, 5, 6, 7, 8} {
		out := Exact(n, ExactOptions{Budget: cover.Rho(n) - 1, MaxLen: 0, NodeLimit: 30_000_000})
		if !out.Complete {
			t.Fatalf("n=%d: search hit node limit after %d nodes", n, out.Nodes)
		}
		if out.Covering != nil {
			t.Fatalf("n=%d: found covering of size %d < ρ = %d — theorem contradicted!",
				n, out.Covering.Size(), cover.Rho(n))
		}
	}
}

func TestExactRespectsMaxLen(t *testing.T) {
	out := Exact(7, ExactOptions{Budget: cover.Rho(7), MaxLen: 3, NodeLimit: 2_000_000})
	if out.Covering != nil {
		for _, c := range out.Covering.Cycles {
			if c.Len() > 3 {
				t.Fatalf("MaxLen 3 violated by %v", c)
			}
		}
	}
}

func TestExactNodeLimitInterrupts(t *testing.T) {
	out := Exact(12, ExactOptions{Budget: cover.Rho(12), MaxLen: 4, NodeLimit: 10})
	if out.Complete {
		t.Error("10-node search of n=12 cannot be complete")
	}
	if out.Covering != nil {
		t.Error("no solution reachable in 10 nodes")
	}
}

func TestExactZeroBudget(t *testing.T) {
	out := Exact(5, ExactOptions{Budget: 0, MaxLen: 4})
	if out.Covering != nil || !out.Complete {
		t.Error("budget 0: want complete failure")
	}
}

func TestExactSolutionIsDRCVerified(t *testing.T) {
	cv, ok := ExactOptimal(6, 2_000_000)
	if !ok {
		t.Fatal("n=6 exact failed")
	}
	for _, c := range cv.Cycles {
		if err := cover.VerifyDRC(cv.Ring, c); err != nil {
			t.Fatal(err)
		}
	}
	if err := cv.Covers(graph.Complete(6)); err != nil {
		t.Fatal(err)
	}
}

package construct

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"testing"
	"time"

	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/instance"
	"github.com/cyclecover/cyclecover/internal/ring"
)

// cycleMultiset returns the covering's cycles as a sorted multiset of
// canonical keys, for exact (order-independent) comparison.
func cycleMultiset(cv *cover.Covering) []string {
	keys := make([]string, 0, cv.Size())
	for _, c := range cv.Cycles {
		keys = append(keys, c.Key())
	}
	sort.Strings(keys)
	return keys
}

func equalMultisets(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// fixedPipeline reproduces the pre-registry construction dispatch: the
// paper's machinery for uniform λK_n demands, greedy otherwise. The
// portfolio is pinned against it.
func fixedPipeline(t *testing.T, in instance.Instance) *cover.Covering {
	t.Helper()
	if lam, ok := UniformLambda(in.Demand); ok {
		var res Result
		var err error
		if lam == 1 {
			res, err = AllToAll(in.N())
		} else {
			res, err = Lambda(in.N(), lam)
		}
		if err != nil {
			t.Fatalf("pipeline: %v", err)
		}
		return res.Covering
	}
	return Greedy(ring.MustNew(in.N()), in.Demand)
}

// TestPortfolioMatchesPipeline is the equivalence pin of the strategy
// refactor: for every demand-spec family × n ∈ 3..16, the portfolio's
// deterministic winner must reproduce the fixed pipeline's covering
// exactly — same cost AND same cycle multiset. This holds because the
// closed forms are registry entry 0 and provably never lose on cost
// where they apply (they are optimal for K_n, and the λ-composition is
// at worst tied by greedy), so the lowest-cost-then-lowest-index rule
// always selects them; on demands they do not address, greedy is the
// only applicable member.
func TestPortfolioMatchesPipeline(t *testing.T) {
	specs := func(n int) []string {
		return []string{
			"alltoall",
			"lambda:2",
			"lambda:3",
			"hub:0",
			fmt.Sprintf("hub:%d", n-1),
			"neighbors",
			"random:0.3:5",
			"random:0.8:11",
			"random:0:1", // empty demand: greedy returns the empty covering
			"random:1:2", // clamp-saturated density: full K_n
		}
	}
	pf := NewPortfolio()
	for n := 3; n <= 16; n++ {
		for _, spec := range specs(n) {
			t.Run(fmt.Sprintf("n=%d/%s", n, spec), func(t *testing.T) {
				in, err := instance.Parse(n, spec)
				if err != nil {
					t.Fatalf("parse: %v", err)
				}
				want := fixedPipeline(t, in)
				got, err := pf.Solve(context.Background(), in, Options{})
				if err != nil {
					t.Fatalf("portfolio: %v", err)
				}
				if got.Covering.Size() != want.Size() {
					t.Fatalf("portfolio cost %d (winner %s), pipeline cost %d",
						got.Covering.Size(), got.Strategy, want.Size())
				}
				if !equalMultisets(cycleMultiset(got.Covering), cycleMultiset(want)) {
					t.Fatalf("portfolio winner %s: cycle multiset differs from pipeline", got.Strategy)
				}
				if err := cover.Verify(got.Covering, in.Demand); err != nil {
					t.Fatalf("portfolio covering invalid: %v", err)
				}
			})
		}
	}
}

// TestPortfolioDeterministic re-races a few instances and requires the
// same winner and multiset every time: scheduling must not leak into the
// result.
func TestPortfolioDeterministic(t *testing.T) {
	pf := NewPortfolio()
	for _, spec := range []string{"alltoall", "hub:0", "lambda:2"} {
		in, err := instance.Parse(12, spec)
		if err != nil {
			t.Fatal(err)
		}
		first, err := pf.Solve(context.Background(), in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		base := cycleMultiset(first.Covering)
		for i := 0; i < 4; i++ {
			out, err := pf.Solve(context.Background(), in, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if out.Strategy != first.Strategy {
				t.Fatalf("%s run %d: winner %s, first run %s", spec, i, out.Strategy, first.Strategy)
			}
			if !equalMultisets(cycleMultiset(out.Covering), base) {
				t.Fatalf("%s run %d: multiset changed", spec, i)
			}
		}
	}
}

// TestStrategyRegistry pins the registry names and order — both are API
// (the portfolio tie-break depends on the order). RegisterStrategy
// extras (other tests in this package add some) may only ever appear
// after the pinned prefix, in sorted name order.
func TestStrategyRegistry(t *testing.T) {
	want := []string{"closed-form", "exact", "repair", "greedy", "scc-exact", "scc-kcycle", "scc-greedy", "portfolio"}
	got := Strategies()
	if len(got) < len(want) {
		t.Fatalf("Strategies() = %v, want prefix %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Strategies()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	extras := got[len(want):]
	if !sort.StringsAreSorted(extras) {
		t.Fatalf("registered extras %v are not in sorted name order", extras)
	}
	for _, name := range extras {
		if st, ok := LookupStrategy(name); !ok || st.Name() != name {
			t.Fatalf("registered extra %q does not resolve via LookupStrategy", name)
		}
	}
	for _, name := range want {
		st, ok := LookupStrategy(name)
		if !ok {
			t.Fatalf("LookupStrategy(%q) not found", name)
		}
		if st.Name() != name {
			t.Fatalf("LookupStrategy(%q).Name() = %q", name, st.Name())
		}
	}
	if _, ok := LookupStrategy("simulated-annealing"); ok {
		t.Fatal("LookupStrategy accepted an unknown name")
	}
}

// TestStrategyNotApplicable: specialised strategies must refuse demand
// classes they do not address, with ErrNotApplicable so the portfolio
// can drop them from the race.
func TestStrategyNotApplicable(t *testing.T) {
	hub := instance.Hub(9, 0)
	for _, st := range []Strategy{ClosedForm{}, ExactSearch{}, Repair{}} {
		_, err := st.Solve(context.Background(), hub, Options{})
		if !errors.Is(err, ErrNotApplicable) {
			t.Errorf("%s on hub demand: err = %v, want ErrNotApplicable", st.Name(), err)
		}
	}
	// Repair additionally refuses odd rings.
	_, err := Repair{}.Solve(context.Background(), instance.AllToAll(9), Options{})
	if !errors.Is(err, ErrNotApplicable) {
		t.Errorf("repair on odd n: err = %v, want ErrNotApplicable", err)
	}
}

// TestExactCtxCancelPrompt pins the cancellation latency contract: a
// mid-search cancel must surface within 50ms (the context is polled at
// every branch boundary), with Complete=false — never a fabricated
// infeasibility proof — and must not leak goroutines.
func TestExactCtxCancelPrompt(t *testing.T) {
	before := runtime.NumGoroutine()
	for _, parallelism := range []int{1, 4} {
		t.Run(fmt.Sprintf("parallelism=%d", parallelism), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(10 * time.Millisecond)
				cancel()
			}()
			start := time.Now()
			// ρ(16)−1 with unbounded cycle length: a hard infeasibility
			// search that would otherwise burn the whole node budget.
			out := ExactCtx(ctx, 16, ExactOptions{
				Budget:      cover.Rho(16) - 1,
				NodeLimit:   1 << 40,
				Parallelism: parallelism,
			})
			elapsed := time.Since(start)
			if elapsed > 50*time.Millisecond {
				t.Errorf("cancel took %v to surface, want < 50ms", elapsed)
			}
			if out.Complete {
				t.Error("cancelled search claims Complete — a false infeasibility proof")
			}
			if out.Covering != nil {
				t.Error("cancelled infeasible search returned a covering")
			}
		})
	}
	// Goroutine settle: the parallel search's workers must all exit.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Errorf("goroutines did not settle: %d before, %d after", before, now)
	}
}

// TestExactCtxDeadline: a deadline behaves like a cancel, and an
// uncancelled search on the same instance still completes (the ctx path
// adds no spurious interruptions).
func TestExactCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	out := ExactCtx(ctx, 16, ExactOptions{Budget: cover.Rho(16) - 1, NodeLimit: 1 << 40})
	if out.Complete {
		t.Error("deadline-expired search claims Complete")
	}

	clean := ExactCtx(context.Background(), 9, ExactOptions{Budget: cover.Rho(9), MaxLen: 4})
	if clean.Covering == nil {
		t.Fatal("background-context search found no covering at ρ(9)")
	}
	if err := cover.VerifyOptimal(clean.Covering); err != nil {
		t.Fatal(err)
	}
}

// TestPortfolioParentCancel: cancelling the parent context aborts the
// whole race with the context's error.
func TestPortfolioParentCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NewPortfolio().Solve(ctx, instance.AllToAll(14), Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestPortfolioBoundPruning: a portfolio of exact-after-greedy on a
// demand where greedy finishes first must still return the exact
// optimum when it is strictly better, and the bound must never corrupt
// the winner. (Custom member order — greedy first — exercises the
// bound-feeding path: greedy's size caps the exact search's budget.)
func TestPortfolioBoundPruning(t *testing.T) {
	in := instance.AllToAll(9)
	pf := NewPortfolio(GreedySweep{}, ExactSearch{})
	out, err := pf.Solve(context.Background(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	greedy := Greedy(ring.MustNew(9), in.Demand)
	if out.Covering.Size() > greedy.Size() {
		t.Fatalf("portfolio %d cycles, worse than its own greedy member's %d", out.Covering.Size(), greedy.Size())
	}
	if out.Covering.Size() == cover.Rho(9) && out.Strategy != "exact" && greedy.Size() != cover.Rho(9) {
		t.Fatalf("optimal size reached but winner is %s", out.Strategy)
	}
	if err := cover.Verify(out.Covering, in.Demand); err != nil {
		t.Fatal(err)
	}
}

// Package construct builds DRC-coverings: the paper's optimal
// constructions for the all-to-all instance (Theorems 1 and 2), an exact
// branch-and-bound solver used both constructively and as an optimality
// certifier for small n, a greedy constructor for arbitrary logical
// graphs, and a redundancy-elimination optimiser.
//
// Odd n is fully closed-form (Theorem 1's count and composition are
// reproduced exactly, for every n). Even n combines an exact search for
// small rings with a layered constructive heuristic for large ones; the
// heuristic is within (p/2−1) cycles of ρ(n) = ⌈(p²+1)/2⌉ and every
// produced covering is verified valid. EXPERIMENTS.md reports achieved
// versus ρ for each n, so the reproduction gap (only on large even rings)
// is explicit.
package construct

import (
	"context"
	"fmt"

	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/ring"
)

// Method identifies which constructor produced a covering.
type Method string

const (
	// MethodOdd is the Theorem 1 inductive construction (optimal).
	MethodOdd Method = "odd-inductive"
	// MethodExact is branch-and-bound exact search (optimal when it
	// succeeds within its node budget).
	MethodExact Method = "exact-search"
	// MethodLayered is the even-n layered constructive heuristic.
	MethodLayered Method = "even-layered"
	// MethodGreedy is the generic greedy constructor.
	MethodGreedy Method = "greedy"
	// MethodRepair is the min-conflicts repair search (the Repair
	// strategy; inside the closed-form even path its converged results
	// are reported as MethodExact for historical compatibility).
	MethodRepair Method = "min-conflicts"
	// MethodDelta is the incremental warm-start repair (DeltaRepair): a
	// parent covering locally repaired after a bounded instance change.
	MethodDelta Method = "delta-repair"
)

// Result is a constructed covering plus provenance.
type Result struct {
	Covering *cover.Covering
	Method   Method
	// Optimal reports that the covering provably meets ρ(n) (Theorem 1
	// construction, or exact search at the ρ(n) budget).
	Optimal bool
}

// AllToAll constructs a DRC-covering of K_n over C_n. For odd n the result
// is the Theorem 1 covering (optimal, matching the paper's composition).
// For even n it is optimal whenever the exact search threshold allows
// (n ≤ exactEvenLimit), and otherwise the layered construction whose size
// is reported against ρ(n) by the experiment harness.
func AllToAll(n int) (Result, error) {
	return AllToAllCtx(context.Background(), n)
}

// AllToAllCtx is AllToAll under a context. Odd n is a fast closed form
// and ignores ctx; even n threads it into the embedded repair and exact
// searches, returning ctx's error when it fires mid-build.
func AllToAllCtx(ctx context.Context, n int) (Result, error) {
	if n < ring.MinVertices {
		return Result{}, fmt.Errorf("construct: n = %d below minimum %d", n, ring.MinVertices)
	}
	if n%2 == 1 {
		cv := Odd(n)
		return Result{Covering: cv, Method: MethodOdd, Optimal: true}, nil
	}
	cv, opt, err := EvenCtx(ctx, n)
	if err != nil {
		return Result{}, err
	}
	m := MethodLayered
	if opt {
		m = MethodExact
	}
	return Result{Covering: cv, Method: m, Optimal: opt}, nil
}

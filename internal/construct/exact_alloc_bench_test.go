package construct

import (
	"testing"

	"github.com/cyclecover/cyclecover/internal/cover"
)

// BenchmarkExactInnerBranch is the pinned exact-search hot path: a
// complete infeasibility proof of K_8 at ρ(8)−1 over a warm
// ExactScratch — pure branching machinery, no solution materialisation.
// CI runs it under -benchmem and fails on allocs/op > 0 (see the alloc
// gate in ci.yml); TestExactInnerBranchZeroAllocs pins the same contract
// as a test.
func BenchmarkExactInnerBranch(b *testing.B) {
	const n = 8
	opts := ExactOptions{
		Budget:      cover.Rho(n) - 1,
		MaxLen:      4,
		NodeLimit:   4_000_000,
		Parallelism: 1,
		Scratch:     NewExactScratch(),
	}
	if out := Exact(n, opts); out.Covering != nil || !out.Complete { // warm the scratch
		b.Fatalf("expected completed infeasibility proof, got %+v", out)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := Exact(n, opts); out.Covering != nil || !out.Complete {
			b.Fatal("search result changed")
		}
	}
}

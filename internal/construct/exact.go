package construct

import (
	"context"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/ring"
)

// ExactOptions configures the branch-and-bound solver.
type ExactOptions struct {
	// Budget is the maximum number of cycles allowed. A search at Budget =
	// ρ(n) is constructive; a completed search at ρ(n)−1 certifies the
	// lower bound.
	Budget int
	// MaxLen caps cycle length; 0 means unbounded (needed for
	// infeasibility proofs, since an optimal adversary may use any cycle
	// length). The paper's constructions need only 3 and 4.
	MaxLen int
	// NodeLimit caps search nodes for determinism (no wall clocks); 0
	// applies DefaultNodeLimit. In a parallel search the limit is shared:
	// all workers draw from one budget.
	NodeLimit int64
	// Parallelism bounds the worker pool that fans the first branch level
	// out: each root candidate's subtree is searched independently, with
	// cancellation of higher-index subtrees once a solution is found.
	// 0 selects GOMAXPROCS; 1 forces the serial search. The result is
	// deterministic whenever the search completes within NodeLimit: the
	// surviving solution is the one the serial search would have found
	// (lowest root-candidate index, identical DFS inside the subtree).
	Parallelism int
	// Bound, when non-nil, is a shared, live upper bound on useful
	// covering size: the search only pursues coverings strictly smaller
	// than the bound's current value, re-reading it as it descends.
	// Portfolio racing feeds each member the best size already achieved
	// by higher-priority members. A search cut by the bound reports
	// Complete=false — the cut is relative to a competitor's result, not
	// an exhaustion proof.
	Bound *atomic.Int64
}

// DefaultNodeLimit bounds exact searches that did not specify a limit.
const DefaultNodeLimit = 40_000_000

// ExactOutcome reports the result of an exact search.
type ExactOutcome struct {
	// Covering is a valid DRC-covering of K_n within Budget cycles, or nil
	// if none was found.
	Covering *cover.Covering
	// Complete is true when the search space was exhausted, making a nil
	// Covering a proof of infeasibility at this Budget (for the given
	// MaxLen; with MaxLen 0 it is unconditional).
	Complete bool
	// Nodes is the number of candidate applications explored (summed over
	// all workers when the search ran in parallel).
	Nodes int64
}

// Exact searches for a DRC-covering of K_n over C_n with at most
// opts.Budget cycles, by branch and bound:
//
//   - branch on the uncovered pair with the largest short-arc distance
//     (diameters are the scarcest resource: no cycle covers two);
//   - candidates covering pair {u,v} are the vertex sets {u,v} ∪ T with T
//     a non-empty subset of the interior of one of the two arcs between u
//     and v (the other arc's interior must be empty for {u,v} to be
//     cyclically consecutive);
//   - prune when cyclesLeft·n < Σ dist(uncovered) (the arc-length bound
//     applied to the residual instance) or when cyclesLeft is below the
//     number of uncovered diameters.
//
// With Parallelism ≠ 1 the first branch level fans out over a bounded
// worker pool: each root candidate's subtree runs the same serial DFS on
// its own state, a shared atomic counter enforces the node budget, and
// finding a solution cancels every subtree with a higher root index (a
// lower-index subtree may still yield the canonical, serial-order
// solution, so it runs to completion).
func Exact(n int, opts ExactOptions) ExactOutcome {
	return ExactCtx(context.Background(), n, opts)
}

// ExactCtx is Exact under a context: cancellation (or a deadline) is
// honoured at every branch boundary, so the search stops within one node
// expansion of ctx firing. An interrupted search reports Complete=false —
// a nil Covering after cancellation is never an infeasibility proof.
func ExactCtx(ctx context.Context, n int, opts ExactOptions) ExactOutcome {
	r := ring.MustNew(n)
	if opts.NodeLimit == 0 {
		opts.NodeLimit = DefaultNodeLimit
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		s := newExactState(r, n, opts)
		s.done = ctx.Done()
		complete := s.search(0)
		return s.outcome(complete, s.nodes)
	}
	return exactParallel(ctx, r, n, opts, workers)
}

// ExactOptimal runs Exact at Budget = ρ(n) with the paper's cycle lengths
// (MaxLen 4) and default parallelism. Per Theorems 1–2 a covering always
// exists there; ok reports whether the solver found it within the node
// limit.
func ExactOptimal(n int, nodeLimit int64) (*cover.Covering, bool) {
	out := Exact(n, ExactOptions{Budget: cover.Rho(n), MaxLen: 4, NodeLimit: nodeLimit})
	return out.Covering, out.Covering != nil
}

type exactState struct {
	r    ring.Ring
	n    int
	opts ExactOptions

	covered        []bool // pair u*n+v (u<v) → covered
	uncovered      int
	remainingDist  int
	uncoveredDiams int

	chosen   [][]int
	solution [][]int
	nodes    int64

	// done, when non-nil, is the context's cancellation channel, polled
	// at every branch boundary (countNode) so a cancel or deadline stops
	// the search within one node expansion.
	done <-chan struct{}
	// boundCut records that at least one subtree was cut by the shared
	// competitor bound (opts.Bound), which forfeits any completeness
	// claim: the cut is relative to a competitor, not an exhaustion proof.
	boundCut bool

	// Parallel-search hooks; nil/zero in the serial search.
	shared    *atomic.Int64 // node budget shared across workers
	bestIdx   *atomic.Int64 // lowest root index that found a solution
	myIdx     int64         // this worker's root-candidate index
	cancelled bool          // aborted because a lower index solved first
}

// newExactState initializes the fully-uncovered search state for K_n.
func newExactState(r ring.Ring, n int, opts ExactOptions) *exactState {
	s := &exactState{
		r:       r,
		n:       n,
		opts:    opts,
		covered: make([]bool, n*n),
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			s.remainingDist += r.Dist(u, v)
			s.uncovered++
			if r.IsDiameter(u, v) {
				s.uncoveredDiams++
			}
		}
	}
	return s
}

// outcome packages the state's solution (if any) as an ExactOutcome.
func (s *exactState) outcome(complete bool, nodes int64) ExactOutcome {
	out := ExactOutcome{Complete: complete && !s.boundCut, Nodes: nodes}
	if s.solution != nil {
		out.Covering = buildCovering(s.r, s.solution)
	}
	return out
}

// buildCovering materializes a solution's vertex sets as a canonical
// covering.
func buildCovering(r ring.Ring, sol [][]int) *cover.Covering {
	cv := cover.NewCovering(r)
	for _, verts := range sol {
		cv.Add(cover.MustCycle(r, verts...))
	}
	cv.Canonicalize()
	return cv
}

// pruned reports whether the subtree at depth is cut by the bounds; a
// pruned subtree counts as (vacuously) fully explored, except for cuts
// induced by the shared competitor bound, which are recorded in boundCut
// and downgrade the outcome to Complete=false.
func (s *exactState) pruned(depth int) bool {
	if s.prunedAt(s.opts.Budget, depth) {
		return true
	}
	if s.opts.Bound != nil {
		// Only coverings strictly smaller than the best competitor size
		// are useful; re-read on every node so a late improvement still
		// tightens the search.
		if b := s.opts.Bound.Load(); b <= int64(s.opts.Budget) && s.prunedAt(int(b)-1, depth) {
			s.boundCut = true
			return true
		}
	}
	return false
}

// prunedAt applies the unconditional cuts for a given cycle budget.
func (s *exactState) prunedAt(budget, depth int) bool {
	left := budget - depth
	if left <= 0 ||
		left*s.n < s.remainingDist ||
		left < s.uncoveredDiams {
		return true
	}
	// Slot bound: a cycle of length k covers exactly k pairs, so with a
	// length cap each remaining cycle covers at most MaxLen new pairs.
	return s.opts.MaxLen > 0 && left*s.opts.MaxLen < s.uncovered
}

// countNode charges one node against the budget; false means the budget
// is exhausted (or the context fired) and the search must stop. In a
// parallel search the charge goes against the shared counter, so the
// limit bounds total work across all workers. The context poll here is
// what makes cancellation take effect within one node expansion: every
// branch application passes through countNode.
func (s *exactState) countNode() bool {
	select {
	case <-s.done: // nil when no context: never fires, default taken
		return false
	default:
	}
	if s.shared != nil {
		if s.shared.Add(1) > s.opts.NodeLimit {
			return false
		}
		s.nodes++
		return true
	}
	if s.nodes >= s.opts.NodeLimit {
		return false
	}
	s.nodes++
	return true
}

// search returns true if the subtree was explored completely (or a
// solution was found); false only when the node limit (or a parallel
// cancellation, recorded in s.cancelled) interrupted it.
func (s *exactState) search(depth int) bool {
	if s.uncovered == 0 {
		sol := make([][]int, len(s.chosen))
		for i, c := range s.chosen {
			sol[i] = append([]int(nil), c...)
		}
		s.solution = sol
		return true
	}
	if s.pruned(depth) {
		return true // pruned: subtree fully (vacuously) explored
	}
	if s.bestIdx != nil && s.bestIdx.Load() < s.myIdx {
		// A lower root index already holds the canonical solution; this
		// subtree's result can no longer be preferred.
		s.cancelled = true
		return false
	}

	u, v := s.pickBranchPair()
	cands := s.candidates(u, v)
	for _, cand := range cands {
		if !s.countNode() {
			return false
		}
		newly := s.apply(cand)
		s.chosen = append(s.chosen, cand.verts)
		done := s.search(depth + 1)
		s.chosen = s.chosen[:len(s.chosen)-1]
		s.undo(newly)
		if s.solution != nil {
			return true
		}
		if !done {
			return false
		}
	}
	return true
}

// subOutcome is one root-candidate subtree's result in a parallel search.
type subOutcome struct {
	solution  [][]int
	complete  bool
	cancelled bool
	skipped   bool // never started: a lower index had already solved
	nodes     int64
}

// exactParallel fans the first branch level out over a bounded worker
// pool. Aggregation mirrors the serial candidate loop: the surviving
// solution is the one from the lowest root index, and completeness holds
// only if every subtree that the serial search would have visited ran to
// completion.
func exactParallel(ctx context.Context, r ring.Ring, n int, opts ExactOptions, workers int) ExactOutcome {
	root := newExactState(r, n, opts)
	if root.uncovered == 0 {
		root.solution = [][]int{}
		return root.outcome(true, 0)
	}
	if root.pruned(0) {
		return ExactOutcome{Complete: !root.boundCut}
	}
	u, v := root.pickBranchPair()
	cands := root.candidates(u, v)
	if len(cands) == 0 {
		return ExactOutcome{Complete: true}
	}
	if workers > len(cands) {
		workers = len(cands)
	}

	var (
		shared  atomic.Int64 // node budget, drawn by every worker
		bestIdx atomic.Int64 // lowest root index with a solution
		next    atomic.Int64 // work queue cursor
	)
	bestIdx.Store(math.MaxInt64)
	results := make([]subOutcome, len(cands))

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(len(cands)) {
					return
				}
				if bestIdx.Load() < i {
					results[i] = subOutcome{skipped: true}
					continue
				}
				st := newExactState(r, n, opts)
				st.done = ctx.Done()
				st.shared = &shared
				st.bestIdx = &bestIdx
				st.myIdx = i
				if !st.countNode() {
					results[i] = subOutcome{nodes: st.nodes}
					continue
				}
				newly := st.apply(cands[i])
				st.chosen = append(st.chosen, cands[i].verts)
				done := st.search(1)
				st.undo(newly)
				results[i] = subOutcome{
					solution:  st.solution,
					complete:  done && !st.boundCut,
					cancelled: st.cancelled,
					nodes:     st.nodes,
				}
				if st.solution != nil {
					// CAS-min: later workers with higher indexes cancel.
					for {
						cur := bestIdx.Load()
						if i >= cur || bestIdx.CompareAndSwap(cur, i) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()

	var nodes int64
	for _, res := range results {
		nodes += res.nodes
	}
	// Scan root candidates in serial order. The first subtree holding a
	// solution supplies the result; a budget-interrupted subtree before it
	// means the prefix the serial search relies on was not exhausted, so
	// the outcome cannot claim completeness.
	complete := true
	for i, res := range results {
		if res.solution != nil {
			st := &exactState{r: r, solution: results[i].solution}
			return st.outcome(true, nodes)
		}
		if res.skipped || res.cancelled || !res.complete {
			complete = false
		}
	}
	return ExactOutcome{Complete: complete, Nodes: nodes}
}

// pickBranchPair selects the uncovered pair with maximum short-arc
// distance (ties: lexicographic), concentrating the search on diameters
// and long chords first.
func (s *exactState) pickBranchPair() (int, int) {
	bestU, bestV, bestD := -1, -1, -1
	for u := 0; u < s.n; u++ {
		for v := u + 1; v < s.n; v++ {
			if s.covered[u*s.n+v] {
				continue
			}
			if d := s.r.Dist(u, v); d > bestD {
				bestU, bestV, bestD = u, v, d
			}
		}
	}
	return bestU, bestV
}

func (s *exactState) pairIdx(u, v int) int {
	if u > v {
		u, v = v, u
	}
	return u*s.n + v
}

type candidate struct {
	verts []int // sorted ring order
	pairs []int // pair indices covered
	gain  int   // uncovered pairs this candidate would cover
	dist  int   // total short-arc distance of newly covered pairs
}

// candidates enumerates the cycles in which u and v are cyclically
// consecutive, as {u,v} plus a non-empty subset of one arc interior.
func (s *exactState) candidates(u, v int) []candidate {
	var out []candidate
	sides := [2][]int{s.interior(u, v), s.interior(v, u)}
	for _, side := range sides {
		out = append(out, s.subsetsFrom(u, v, side)...)
	}
	// Most-constraining first: cover more uncovered pairs, then more
	// distance, then lexicographic for determinism.
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.gain != b.gain {
			return a.gain > b.gain
		}
		if a.dist != b.dist {
			return a.dist > b.dist
		}
		return lexLess(a.verts, b.verts)
	})
	return out
}

// interior lists the vertices strictly inside the clockwise arc a→b.
func (s *exactState) interior(a, b int) []int {
	g := s.r.Gap(a, b)
	vs := make([]int, 0, g-1)
	for i := 1; i < g; i++ {
		vs = append(vs, s.r.Norm(a+i))
	}
	return vs
}

// subsetsFrom builds candidates {u, v} ∪ T for non-empty subsets T of
// side, respecting MaxLen.
func (s *exactState) subsetsFrom(u, v int, side []int) []candidate {
	maxT := len(side)
	if s.opts.MaxLen > 0 && s.opts.MaxLen-2 < maxT {
		maxT = s.opts.MaxLen - 2
	}
	if maxT <= 0 {
		return nil
	}
	var out []candidate
	cur := make([]int, 0, maxT)
	var rec func(start int)
	rec = func(start int) {
		if len(cur) > 0 {
			out = append(out, s.makeCandidate(u, v, cur))
		}
		if len(cur) == maxT {
			return
		}
		for i := start; i < len(side); i++ {
			cur = append(cur, side[i])
			rec(i + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return out
}

func (s *exactState) makeCandidate(u, v int, extra []int) candidate {
	verts := make([]int, 0, len(extra)+2)
	verts = append(verts, u, v)
	verts = append(verts, extra...)
	ring.SortByRingOrder(verts)
	c := candidate{verts: verts}
	k := len(verts)
	for i := 0; i < k; i++ {
		a, b := verts[i], verts[(i+1)%k]
		idx := s.pairIdx(a, b)
		c.pairs = append(c.pairs, idx)
		if !s.covered[idx] {
			c.gain++
			c.dist += s.r.Dist(a, b)
		}
	}
	return c
}

// apply marks the candidate's pairs covered, returning the indices newly
// covered for undo.
func (s *exactState) apply(c candidate) []int {
	var newly []int
	for _, idx := range c.pairs {
		if s.covered[idx] {
			continue
		}
		s.covered[idx] = true
		newly = append(newly, idx)
		s.uncovered--
		u, v := idx/s.n, idx%s.n
		s.remainingDist -= s.r.Dist(u, v)
		if s.r.IsDiameter(u, v) {
			s.uncoveredDiams--
		}
	}
	return newly
}

func (s *exactState) undo(newly []int) {
	for _, idx := range newly {
		s.covered[idx] = false
		s.uncovered++
		u, v := idx/s.n, idx%s.n
		s.remainingDist += s.r.Dist(u, v)
		if s.r.IsDiameter(u, v) {
			s.uncoveredDiams++
		}
	}
}

func lexLess(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

package construct

import (
	"context"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/fanout"
	"github.com/cyclecover/cyclecover/internal/graph"
	"github.com/cyclecover/cyclecover/internal/ring"
)

// ExactOptions configures the branch-and-bound solver.
type ExactOptions struct {
	// Budget is the maximum number of cycles allowed. A search at Budget =
	// ρ(n) is constructive; a completed search at ρ(n)−1 certifies the
	// lower bound.
	Budget int
	// MaxLen caps cycle length; 0 means unbounded (needed for
	// infeasibility proofs, since an optimal adversary may use any cycle
	// length). The paper's constructions need only 3 and 4.
	MaxLen int
	// NodeLimit caps search nodes for determinism (no wall clocks); 0
	// applies DefaultNodeLimit. In a parallel search the limit is shared:
	// all workers draw from one budget.
	NodeLimit int64
	// Parallelism bounds the worker pool that fans the first branch level
	// out: each root candidate's subtree is searched independently, with
	// cancellation of higher-index subtrees once a solution is found.
	// 0 defers to the context's fan-out stamp (fanout.Limit) when one is
	// present — inside a server pool job that is the job's fair share of
	// the cores, so nested parallelism does not multiply — and GOMAXPROCS
	// otherwise; 1 forces the serial search. The result is deterministic
	// for every worker count whenever the search completes within
	// NodeLimit: the surviving solution is the one the serial search would
	// have found (lowest root-candidate index, identical DFS inside the
	// subtree).
	Parallelism int
	// Bound, when non-nil, is a shared, live upper bound on useful
	// covering size: the search only pursues coverings strictly smaller
	// than the bound's current value, re-reading it as it descends.
	// Portfolio racing feeds each member the best size already achieved
	// by higher-priority members. A search cut by the bound reports
	// Complete=false — the cut is relative to a competitor's result, not
	// an exhaustion proof.
	Bound *atomic.Int64
	// Scratch, when non-nil, supplies reusable search state — the
	// residual coverage matrix, the per-depth candidate arenas, the
	// precomputed distance tables and the residual transposition table —
	// so a warm repeated search allocates nothing beyond its solution. A
	// Scratch is owned by one search at a time: it is not safe for
	// concurrent use, and a parallel search uses it only for the root
	// enumeration (each worker keeps its own). The search result is
	// bit-identical with or without a Scratch (the memo table is
	// epoch-stamped: every search starts from an empty table, so reuse
	// never changes node counts).
	Scratch *ExactScratch
	// DisableSymmetry turns off orbit pruning: candidates are enumerated
	// exhaustively instead of up to the automorphisms of the residual
	// demand. A symmetry-pruned search reaches the same cost and the
	// same Complete verdict as the unpruned one (pinned by the
	// equivalence property test) but may return a different — symmetric —
	// representative covering, and explores far fewer nodes. For
	// ablations and the equivalence tests.
	DisableSymmetry bool
	// DisableMemo turns off the residual transposition table. Because
	// memo hits only ever replace subtrees already proven infeasible,
	// the search visits the same solutions in the same order with or
	// without it: covering and Complete are bit-identical whenever both
	// runs finish within NodeLimit; only Nodes changes. For ablations
	// and the equivalence tests.
	DisableMemo bool
}

// ExactScratch is caller-owned reusable state for Exact/ExactCtx. The
// zero value is ready to use; see ExactOptions.Scratch for the ownership
// contract.
type ExactScratch struct {
	st exactState
}

// NewExactScratch returns an empty scratch, ready to thread through
// ExactOptions.Scratch.
func NewExactScratch() *ExactScratch { return &ExactScratch{} }

// DefaultNodeLimit bounds exact searches that did not specify a limit.
const DefaultNodeLimit = 40_000_000

// ExactOutcome reports the result of an exact search.
type ExactOutcome struct {
	// Covering is a valid DRC-covering of K_n within Budget cycles, or nil
	// if none was found.
	Covering *cover.Covering
	// Complete is true when the search space was exhausted, making a nil
	// Covering a proof of infeasibility at this Budget (for the given
	// MaxLen; with MaxLen 0 it is unconditional).
	Complete bool
	// Nodes is the number of candidate applications explored (summed over
	// all workers when the search ran in parallel).
	Nodes int64
}

// Exact searches for a DRC-covering of K_n over C_n with at most
// opts.Budget cycles, by branch and bound:
//
//   - branch on the uncovered pair with the largest short-arc distance
//     (diameters are the scarcest resource: no cycle covers two);
//   - candidates covering pair {u,v} are the vertex sets {u,v} ∪ T with T
//     a non-empty subset of the interior of one of the two arcs between u
//     and v (the other arc's interior must be empty for {u,v} to be
//     cyclically consecutive);
//   - prune when cyclesLeft·n < Σ dist(uncovered) (the arc-length bound
//     applied to the residual instance) or when cyclesLeft is below the
//     number of uncovered diameters.
//
// The search state is flat and allocation-free in steady state: residual
// coverage lives in a dense pair matrix that is covered and uncovered
// incrementally on descent and backtrack (never cloned), and candidate
// enumeration writes into per-depth arenas that are reused across the
// whole search (and across searches, via ExactOptions.Scratch).
//
// With Parallelism ≠ 1 the first branch level fans out over a bounded
// worker pool: each root candidate's subtree runs the same serial DFS on
// its own state, a shared atomic counter enforces the node budget, and
// finding a solution cancels every subtree with a higher root index (a
// lower-index subtree may still yield the canonical, serial-order
// solution, so it runs to completion).
func Exact(n int, opts ExactOptions) ExactOutcome {
	return ExactCtx(context.Background(), n, opts)
}

// ExactCtx is Exact under a context: cancellation (or a deadline) is
// honoured at every branch boundary, so the search stops within one node
// expansion of ctx firing. An interrupted search reports Complete=false —
// a nil Covering after cancellation is never an infeasibility proof.
func ExactCtx(ctx context.Context, n int, opts ExactOptions) ExactOutcome {
	r := ring.MustNew(n)
	if opts.NodeLimit == 0 {
		opts.NodeLimit = DefaultNodeLimit
	}
	workers := opts.Parallelism
	if workers <= 0 {
		if workers = fanout.Limit(ctx); workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
	}
	if workers == 1 {
		s := stateFor(opts)
		s.reset(r, n, opts)
		s.done = ctx.Done()
		complete := s.search(0)
		return s.outcome(complete, s.nodes)
	}
	return exactParallel(ctx, r, n, opts, workers)
}

// stateFor returns the search state backing opts.Scratch, or a fresh one.
func stateFor(opts ExactOptions) *exactState {
	if opts.Scratch != nil {
		return &opts.Scratch.st
	}
	return &exactState{}
}

// ExactOptimal runs Exact at Budget = ρ(n) with the paper's cycle lengths
// (MaxLen 4) and default parallelism. Per Theorems 1–2 a covering always
// exists there; ok reports whether the solver found it within the node
// limit.
func ExactOptimal(n int, nodeLimit int64) (*cover.Covering, bool) {
	out := Exact(n, ExactOptions{Budget: cover.Rho(n), MaxLen: 4, NodeLimit: nodeLimit})
	return out.Covering, out.Covering != nil
}

// candidate is one branch choice: a cycle vertex set stored in the
// owning depth's arena at [off, off+k) (its covered pair indices at the
// same offsets of the pair arena), plus its branching score.
type candidate struct {
	off, k int
	gain   int // uncovered pairs this candidate would cover
	dist   int // total short-arc distance of newly covered pairs
}

// depthScratch is the per-depth enumeration arena: candidate metadata,
// the flat vertex/pair storage they reference, the undo log of the
// candidate currently applied at this depth, and the enumeration
// scratch. Reused across every visit to the depth.
type depthScratch struct {
	cands        []candidate
	verts        []int // candidate vertex sets, ring order, back to back
	pairs        []int // covered pair indices, same offsets as verts
	newly        []int // pair indices newly covered by the applied candidate
	side0, side1 []int // arc interiors of the branch pair
	cur          []int // subset enumeration scratch: chosen vertices
	curIdx       []int // subset enumeration scratch: chosen side indices
	sym          []int // orbit filter scratch: a candidate's image under a map
}

// sort.Interface over cands: most-constraining first — more uncovered
// pairs, then more distance, then lexicographic vertex order (a total
// order: candidate vertex sets at one node are distinct), so the
// enumeration order is deterministic regardless of sort stability.
func (ds *depthScratch) Len() int      { return len(ds.cands) }
func (ds *depthScratch) Swap(i, j int) { ds.cands[i], ds.cands[j] = ds.cands[j], ds.cands[i] }
func (ds *depthScratch) Less(i, j int) bool {
	a, b := ds.cands[i], ds.cands[j]
	if a.gain != b.gain {
		return a.gain > b.gain
	}
	if a.dist != b.dist {
		return a.dist > b.dist
	}
	return lexLess(ds.verts[a.off:a.off+a.k], ds.verts[b.off:b.off+b.k])
}

// dihedralMap is one automorphism of the ring: a rotation x ↦ x+r or a
// reflection x ↦ r−x (indices mod n). The residual-automorphism search
// only ever considers dihedral maps — they are exactly the bijections
// preserving ring distances, so they preserve candidate structure,
// branching scores and every counting bound.
type dihedralMap struct {
	refl bool
	r    int
}

// memoEntry is one slot of the residual transposition table: the packed
// canonical residual key, the largest cycle budget proven infeasible for
// it, and the epoch stamp that scopes the proof to the search that made
// it. Entries are collision-checked: a lookup compares the full key, so
// a hash collision can never convert a different residual's proof into
// a bogus cut.
type memoEntry struct {
	key   graph.PairKey
	left  int32
	epoch uint32
}

// memoProbes is the open-addressing probe window: a lookup or store
// touches at most this many consecutive slots.
const memoProbes = 4

type exactState struct {
	r    ring.Ring
	n    int
	opts ExactOptions

	covered []bool  // pair u*n+v (u<v) → covered
	dist    []int32 // short-arc distance per pair index (precomputed)
	diam    []bool  // diameter flag per pair index (precomputed)
	rankOf  []int32 // pair index u*n+v (u<v) → triangular pair rank
	tablesN int     // ring size the dist/diam/rank tables were built for

	uncovered      int
	remainingDist  int
	uncoveredDiams int
	uncDeg         []int32 // per-vertex count of uncovered incident pairs
	sumCeilHalf    int     // Σ_v ⌈uncDeg[v]/2⌉, maintained incrementally

	// key is the packed canonical residual: bit = pair covered, in
	// ascending pair-rank order, flipped incrementally by apply/undo.
	key graph.PairKey
	// memo is the fixed-size residual transposition table; memoOn gates
	// every probe (false when the ring exceeds the key capacity or the
	// caller disabled it). epoch stamps entries so a reset invalidates
	// the whole table in O(1) without clearing it.
	memo     []memoEntry
	memoMask uint32
	memoOn   bool
	epoch    uint32

	// stab holds the verified automorphisms of the residual demand that
	// stabilize the current branch pair — at most 3 non-identity dihedral
	// maps (the pair stabilizer in D_n has order ≤ 4). Recomputed at
	// every node by computeStab.
	stab  [3]dihedralMap
	nstab int

	chosen   []candidate // chosen[d] applied at depth d, refs depths[d]
	depths   []depthScratch
	solution [][]int
	nodes    int64

	// done, when non-nil, is the context's cancellation channel, polled
	// at every branch boundary (countNode) so a cancel or deadline stops
	// the search within one node expansion.
	done <-chan struct{}
	// boundCuts counts subtrees cut by the shared competitor bound
	// (opts.Bound). Any cut forfeits the outcome's completeness claim —
	// it is relative to a competitor, not an exhaustion proof — and a
	// subtree is admitted to the memo table only if it finished with no
	// new cuts inside it (see search), so memoized infeasibility is
	// always a genuine proof.
	boundCuts int64

	// Parallel-search hooks; nil/zero in the serial search.
	shared    *atomic.Int64 // node budget shared across workers
	bestIdx   *atomic.Int64 // lowest root index that found a solution
	myIdx     int64         // this worker's root-candidate index
	cancelled bool          // aborted because a lower index solved first
}

// reset initializes the fully-uncovered search state for K_n, reusing
// every backing array that is already large enough. After the first
// search at a given n, a reset allocates nothing.
func (s *exactState) reset(r ring.Ring, n int, opts ExactOptions) {
	s.r, s.n, s.opts = r, n, opts
	nn := n * n
	if cap(s.covered) < nn {
		s.covered = make([]bool, nn)
	} else {
		s.covered = s.covered[:nn]
		clear(s.covered)
	}
	if s.tablesN != n {
		if cap(s.dist) < nn {
			s.dist = make([]int32, nn)
			s.diam = make([]bool, nn)
			s.rankOf = make([]int32, nn)
		} else {
			s.dist = s.dist[:nn]
			s.diam = s.diam[:nn]
			s.rankOf = s.rankOf[:nn]
		}
		rank := int32(0)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				s.dist[u*n+v] = int32(r.Dist(u, v))
				s.diam[u*n+v] = r.IsDiameter(u, v)
				s.rankOf[u*n+v] = rank
				rank++
			}
		}
		s.tablesN = n
	}
	s.uncovered, s.remainingDist, s.uncoveredDiams = 0, 0, 0
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			s.remainingDist += int(s.dist[u*n+v])
			s.uncovered++
			if s.diam[u*n+v] {
				s.uncoveredDiams++
			}
		}
	}
	if cap(s.uncDeg) < n {
		s.uncDeg = make([]int32, n)
	} else {
		s.uncDeg = s.uncDeg[:n]
	}
	for v := range s.uncDeg {
		s.uncDeg[v] = int32(n - 1)
	}
	s.sumCeilHalf = n * (n / 2) // n·⌈(n−1)/2⌉
	s.key.Clear()
	s.resetMemo(n, opts)
	s.nstab = 0
	// Pre-grow the per-depth arena list: enumeration happens only at
	// depths below Budget, so no dsAt call can reallocate s.depths while
	// a search holds a *depthScratch into it.
	for len(s.depths) < opts.Budget {
		s.depths = append(s.depths, depthScratch{})
	}
	s.chosen = s.chosen[:0]
	s.solution = nil
	s.nodes = 0
	s.done = nil
	s.boundCuts = 0
	s.shared, s.bestIdx, s.myIdx = nil, nil, 0
	s.cancelled = false
}

// memoBitsFor sizes the transposition table by ring size: small rings
// finish in few nodes and do not repay a large table, while the
// certification-scale searches want headroom before replacement kicks
// in. The size depends only on n, so scratch-vs-fresh and
// serial-vs-parallel searches stay node-for-node identical.
func memoBitsFor(n int) int {
	if n < 10 {
		return 10
	}
	if n < 12 {
		return 14
	}
	return 18
}

// resetMemo prepares the transposition table for a fresh search:
// eligible searches get a table sized for n with every prior entry
// invalidated by the epoch bump (an O(1) reset — the table is not
// cleared). Proofs never carry across searches, so a reused Scratch is
// bit-identical to a fresh one, node counts included.
func (s *exactState) resetMemo(n int, opts ExactOptions) {
	if opts.DisableMemo || graph.PairCount(n) > graph.MaxKeyPairs {
		s.memoOn = false
		return
	}
	size := 1 << memoBitsFor(n)
	if len(s.memo) != size {
		s.memo = make([]memoEntry, size)
		s.memoMask = uint32(size - 1)
		s.epoch = 0
	}
	s.epoch++
	if s.epoch == 0 {
		// Epoch counter wrapped: stamps from 2³² searches ago could alias
		// as current, so pay for one real clear.
		clear(s.memo)
		s.epoch = 1
	}
	s.memoOn = true
}

// memoHit reports whether the current residual is already proven
// infeasible with `left` cycles remaining: a stored proof at the same
// residual with an equal or larger budget applies a fortiori. The probe
// is collision-checked against the full packed key.
//
//cyclecover:noalloc
func (s *exactState) memoHit(left int) bool {
	if !s.memoOn {
		return false
	}
	i := uint32(s.key.Hash()) & s.memoMask
	for p := uint32(0); p < memoProbes; p++ {
		e := &s.memo[(i+p)&s.memoMask]
		if e.epoch == s.epoch && e.left >= int32(left) && e.key == s.key {
			return true
		}
	}
	return false
}

// memoStore records that the current residual has no completion within
// `left` cycles. Callers must only invoke it for subtrees explored to
// exhaustion with no budget, context, cancellation or competitor-bound
// cut inside (see search): entries are proofs, never heuristics. Within
// the probe window, an existing entry for the same residual keeps the
// larger budget; otherwise the stalest slot — then the one holding the
// weakest proof (smallest left) — is replaced, deterministically.
//
//cyclecover:noalloc
func (s *exactState) memoStore(left int) {
	if !s.memoOn {
		return
	}
	i := uint32(s.key.Hash()) & s.memoMask
	victim := &s.memo[i&s.memoMask]
	for p := uint32(0); p < memoProbes; p++ {
		e := &s.memo[(i+p)&s.memoMask]
		if e.epoch == s.epoch && e.key == s.key {
			if int32(left) > e.left {
				e.left = int32(left)
			}
			return
		}
		if e.epoch != s.epoch {
			// Stale slot: free under the current epoch.
			victim = e
			break
		}
		if e.left < victim.left {
			victim = e
		}
	}
	victim.key = s.key
	victim.left = int32(left)
	victim.epoch = s.epoch
}

// dsAt returns the arena for a depth, growing the arena list on demand
// (existing arenas keep their storage).
func (s *exactState) dsAt(depth int) *depthScratch {
	for len(s.depths) <= depth {
		s.depths = append(s.depths, depthScratch{})
	}
	return &s.depths[depth]
}

// outcome packages the state's solution (if any) as an ExactOutcome.
func (s *exactState) outcome(complete bool, nodes int64) ExactOutcome {
	out := ExactOutcome{Complete: complete && s.boundCuts == 0, Nodes: nodes}
	if s.solution != nil {
		out.Covering = buildCovering(s.r, s.solution)
	}
	return out
}

// buildCovering materializes a solution's vertex sets as a canonical
// covering.
func buildCovering(r ring.Ring, sol [][]int) *cover.Covering {
	cv := cover.NewCovering(r)
	for _, verts := range sol {
		cv.Add(cover.MustCycle(r, verts...))
	}
	cv.Canonicalize()
	return cv
}

// pruned reports whether the subtree at depth is cut by the bounds; a
// pruned subtree counts as (vacuously) fully explored, except for cuts
// induced by the shared competitor bound, which are counted in boundCuts
// and downgrade the outcome to Complete=false.
//
//cyclecover:noalloc
func (s *exactState) pruned(depth int) bool {
	if s.prunedAt(s.opts.Budget, depth) {
		return true
	}
	if s.opts.Bound != nil {
		// Only coverings strictly smaller than the best competitor size
		// are useful; re-read on every node so a late improvement still
		// tightens the search.
		if b := s.opts.Bound.Load(); b <= int64(s.opts.Budget) && s.prunedAt(int(b)-1, depth) {
			s.boundCuts++
			return true
		}
	}
	return false
}

// prunedAt applies the unconditional, admissible cuts for a given cycle
// budget: every bound here is a statement no covering of the residual
// can violate, so a cut subtree is genuinely exhausted.
//
//cyclecover:noalloc
func (s *exactState) prunedAt(budget, depth int) bool {
	left := budget - depth
	if left <= 0 ||
		left*s.n < s.remainingDist ||
		left < s.uncoveredDiams {
		return true
	}
	// Counting bound with the degree parity refinement (DESIGN.md §10):
	// a cycle of length k covers exactly k pairs and visits k vertices,
	// reducing ⌈uncDeg/2⌉ by at most 1 at each, so it lowers
	// Σ_v ⌈uncDeg[v]/2⌉ by at most k ≤ maxPairs. Since Σ uncDeg =
	// 2·uncovered, this subsumes the plain ⌈uncovered/maxPairs⌉ slot
	// bound and bites a full cycle earlier whenever residual degrees are
	// odd — the paper's parity argument for the even-n +1.
	maxPairs := s.opts.MaxLen
	if maxPairs <= 0 || maxPairs > s.n {
		maxPairs = s.n
	}
	if left*maxPairs < s.sumCeilHalf {
		return true
	}
	// Per-vertex form: a cycle visits a vertex at most once, covering at
	// most two of its incident pairs, so the busiest vertex alone needs
	// ⌈maxUncDeg/2⌉ of the remaining cycles.
	var maxd int32
	for _, d := range s.uncDeg {
		if d > maxd {
			maxd = d
		}
	}
	return left < int(maxd+1)/2
}

// countNode charges one node against the budget; false means the budget
// is exhausted (or the context fired) and the search must stop. In a
// parallel search the charge goes against the shared counter, so the
// limit bounds total work across all workers. The context poll here is
// what makes cancellation take effect within one node expansion: every
// branch application passes through countNode.
//
//cyclecover:noalloc
func (s *exactState) countNode() bool {
	select {
	case <-s.done: // nil when no context: never fires, default taken
		return false
	default:
	}
	if s.shared != nil {
		if s.shared.Add(1) > s.opts.NodeLimit {
			return false
		}
		s.nodes++
		return true
	}
	if s.nodes >= s.opts.NodeLimit {
		return false
	}
	s.nodes++
	return true
}

// search returns true if the subtree was explored completely (or a
// solution was found); false only when the node limit (or a parallel
// cancellation, recorded in s.cancelled) interrupted it.
//
//cyclecover:noalloc
func (s *exactState) search(depth int) bool {
	if s.uncovered == 0 {
		sol := make([][]int, len(s.chosen))
		for d, c := range s.chosen {
			ds := &s.depths[d]
			sol[d] = append([]int(nil), ds.verts[c.off:c.off+c.k]...)
		}
		s.solution = sol
		return true
	}
	if s.pruned(depth) {
		return true // pruned: subtree fully (vacuously) explored
	}
	if s.bestIdx != nil && s.bestIdx.Load() < s.myIdx {
		// A lower root index already holds the canonical solution; this
		// subtree's result can no longer be preferred.
		s.cancelled = true
		return false
	}
	left := s.opts.Budget - depth
	if s.memoHit(left) {
		// This residual was already proven infeasible with at least this
		// many cycles remaining: the whole subtree is a replay.
		return true
	}
	bc0 := s.boundCuts

	u, v := s.pickBranchPair()
	s.enumerate(depth, u, v)
	ds := &s.depths[depth]
	for ci := 0; ci < len(ds.cands); ci++ {
		c := ds.cands[ci]
		s.apply(depth, c)
		// Forward check: a child the admissible bounds cut at entry is not
		// a node — it is rejected here, before being charged, exactly as
		// its own first pruned() call would have (the unconditional cuts
		// run first there too, so no boundCut accounting is skipped). The
		// rejection still polls cancellation so the latency contract
		// (surface within one node expansion) survives a long run of
		// forward-pruned siblings.
		if s.uncovered > 0 && s.prunedAt(s.opts.Budget, depth+1) {
			s.undo(depth)
			select {
			case <-s.done:
				return false
			default:
			}
			continue
		}
		if !s.countNode() {
			s.undo(depth)
			return false
		}
		s.chosen = append(s.chosen, c)
		done := s.search(depth + 1)
		s.chosen = s.chosen[:len(s.chosen)-1]
		s.undo(depth)
		if s.solution != nil {
			return true
		}
		if !done {
			return false
		}
	}
	// Memo admission rule: every candidate subtree ran to exhaustion with
	// no solution (truncations returned false above), and no competitor-
	// bound cut happened inside (bc0 snapshot) — so "no covering of this
	// residual within `left` cycles" is a proven fact, safe to reuse.
	if s.boundCuts == bc0 {
		s.memoStore(left)
	}
	return true
}

// subOutcome is one root-candidate subtree's result in a parallel search.
type subOutcome struct {
	solution  [][]int
	complete  bool
	cancelled bool
	skipped   bool // never started: a lower index had already solved
	nodes     int64
}

// exactParallel fans the first branch level out over a bounded worker
// pool. Aggregation mirrors the serial candidate loop: the surviving
// solution is the one from the lowest root index, and completeness holds
// only if every subtree that the serial search would have visited ran to
// completion. Each worker owns one reusable search state across all the
// subtrees it drains, so steady-state work allocates nothing per branch.
func exactParallel(ctx context.Context, r ring.Ring, n int, opts ExactOptions, workers int) ExactOutcome {
	root := stateFor(opts)
	root.reset(r, n, opts)
	if root.uncovered == 0 {
		root.solution = [][]int{}
		return root.outcome(true, 0)
	}
	if root.pruned(0) {
		return ExactOutcome{Complete: root.boundCuts == 0}
	}
	u, v := root.pickBranchPair()
	root.enumerate(0, u, v)
	rootDS := &root.depths[0]
	cands := make([][]int, len(rootDS.cands))
	for i, c := range rootDS.cands {
		cands[i] = append([]int(nil), rootDS.verts[c.off:c.off+c.k]...)
	}
	if len(cands) == 0 {
		return ExactOutcome{Complete: true}
	}
	if workers > len(cands) {
		workers = len(cands)
	}

	var (
		shared  atomic.Int64 // node budget, drawn by every worker
		bestIdx atomic.Int64 // lowest root index with a solution
		next    atomic.Int64 // work queue cursor
	)
	bestIdx.Store(math.MaxInt64)
	results := make([]subOutcome, len(cands))

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := &exactState{} // reused across this worker's subtrees
			for {
				i := next.Add(1) - 1
				if i >= int64(len(cands)) {
					return
				}
				if bestIdx.Load() < i {
					results[i] = subOutcome{skipped: true}
					continue
				}
				st.reset(r, n, opts)
				st.done = ctx.Done()
				st.shared = &shared
				st.bestIdx = &bestIdx
				st.myIdx = i
				if !st.countNode() {
					results[i] = subOutcome{nodes: st.nodes}
					continue
				}
				st.applyRoot(cands[i])
				done := st.search(1)
				st.undo(0)
				results[i] = subOutcome{
					solution:  st.solution,
					complete:  done && st.boundCuts == 0,
					cancelled: st.cancelled,
					nodes:     st.nodes,
				}
				if st.solution != nil {
					// CAS-min: later workers with higher indexes cancel.
					for {
						cur := bestIdx.Load()
						if i >= cur || bestIdx.CompareAndSwap(cur, i) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()

	var nodes int64
	for _, res := range results {
		nodes += res.nodes
	}
	// Scan root candidates in serial order. The first subtree holding a
	// solution supplies the result; a budget-interrupted subtree before it
	// means the prefix the serial search relies on was not exhausted, so
	// the outcome cannot claim completeness.
	complete := true
	for i, res := range results {
		if res.solution != nil {
			st := &exactState{r: r, solution: results[i].solution}
			return st.outcome(true, nodes)
		}
		if res.skipped || res.cancelled || !res.complete {
			complete = false
		}
	}
	return ExactOutcome{Complete: complete, Nodes: nodes}
}

// applyRoot installs a materialized root candidate (from the shared root
// enumeration) as this state's depth-0 choice: the vertex set is copied
// into the depth-0 arena so solution materialization and undo see it like
// any locally enumerated candidate.
func (s *exactState) applyRoot(verts []int) {
	ds := s.dsAt(0)
	ds.cands = ds.cands[:0]
	ds.verts = append(ds.verts[:0], verts...)
	ds.pairs = ds.pairs[:0]
	k := len(verts)
	for i := 0; i < k; i++ {
		ds.pairs = append(ds.pairs, s.pairIdx(verts[i], verts[(i+1)%k]))
	}
	c := candidate{off: 0, k: k}
	ds.cands = append(ds.cands, c)
	s.apply(0, c)
	s.chosen = append(s.chosen, c)
}

// pickBranchPair selects the uncovered pair with maximum short-arc
// distance (ties: lexicographic), concentrating the search on diameters
// and long chords first.
//
//cyclecover:noalloc
func (s *exactState) pickBranchPair() (int, int) {
	bestU, bestV := -1, -1
	bestD := int32(-1)
	for u := 0; u < s.n; u++ {
		row := u * s.n
		for v := u + 1; v < s.n; v++ {
			if s.covered[row+v] {
				continue
			}
			if d := s.dist[row+v]; d > bestD {
				bestU, bestV, bestD = u, v, d
			}
		}
	}
	return bestU, bestV
}

func (s *exactState) pairIdx(u, v int) int {
	if u > v {
		u, v = v, u
	}
	return u*s.n + v
}

// enumerate fills depth's arena with the candidate cycles in which u and
// v are cyclically consecutive ({u,v} plus a non-empty subset of one arc
// interior), sorted most-constraining first. Allocation-free once the
// arenas have grown.
//
//cyclecover:noalloc
func (s *exactState) enumerate(depth, u, v int) {
	ds := s.dsAt(depth)
	ds.cands = ds.cands[:0]
	ds.verts = ds.verts[:0]
	ds.pairs = ds.pairs[:0]
	ds.side0 = s.interior(u, v, ds.side0[:0])
	ds.side1 = s.interior(v, u, ds.side1[:0])
	s.subsetsFrom(ds, u, v, ds.side0)
	s.subsetsFrom(ds, u, v, ds.side1)
	s.computeStab(u, v)
	if s.nstab > 0 {
		// Orbit pruning: keep only the lexicographically minimal
		// representative of each candidate orbit under the verified
		// residual automorphisms. Compaction preserves relative order; the
		// dropped candidates' arena storage simply goes unreferenced.
		kept := ds.cands[:0]
		for _, c := range ds.cands {
			if s.isOrbitRep(ds, c) {
				kept = append(kept, c)
			}
		}
		ds.cands = kept
	}
	sort.Sort(ds)
}

// sigma applies a dihedral map to a vertex.
//
//cyclecover:noalloc
func (s *exactState) sigma(m dihedralMap, x int) int {
	if m.refl {
		if y := m.r - x; y >= 0 {
			return y
		}
		return m.r - x + s.n
	}
	if y := x + m.r; y < s.n {
		return y
	}
	return x + m.r - s.n
}

// computeStab collects the non-identity dihedral maps that stabilize the
// branch pair {u, v} as a set AND are automorphisms of the residual
// demand. The stabilizer of a pair in D_n has order at most 4, so at
// most three non-identity maps are ever candidates: the reflection
// swapping u and v (axis through the pair), and — when {u, v} is a
// diameter — the half-turn rotation and the reflection fixing both
// endpoints. Each map stabilizing the pair maps the two arc interiors
// onto arc interiors, hence permutes the candidate set of this node;
// being a residual automorphism it preserves gains, distances and every
// counting bound, so orbit-equivalent candidates root exhaustively
// equivalent subtrees.
//
//cyclecover:noalloc
func (s *exactState) computeStab(u, v int) {
	s.nstab = 0
	if s.opts.DisableSymmetry {
		return
	}
	s.tryStab(dihedralMap{refl: true, r: s.r.Norm(u + v)})
	if s.diam[u*s.n+v] {
		s.tryStab(dihedralMap{r: s.n / 2})
		s.tryStab(dihedralMap{refl: true, r: s.r.Norm(2 * u)})
	}
}

// tryStab verifies a dihedral map against the residual demand and, if it
// is an automorphism, records it. The O(n) degree-signature prefilter
// rejects most non-automorphisms before the O(n²) covered-matrix check.
//
//cyclecover:noalloc
func (s *exactState) tryStab(m dihedralMap) {
	for x := 0; x < s.n; x++ {
		if s.uncDeg[s.sigma(m, x)] != s.uncDeg[x] {
			return
		}
	}
	for a := 0; a < s.n; a++ {
		row := a * s.n
		sa := s.sigma(m, a)
		for b := a + 1; b < s.n; b++ {
			if s.covered[row+b] != s.covered[s.pairIdx(sa, s.sigma(m, b))] {
				return
			}
		}
	}
	s.stab[s.nstab] = m
	s.nstab++
}

// isOrbitRep reports whether the candidate is the representative of its
// orbit we keep: no verified stabilizer map sends its vertex set to a
// lexicographically smaller one. The filter need not close the maps
// under composition to stay sound — the full-orbit lex-min element has
// no smaller image under any group element, so every orbit keeps at
// least one member.
//
//cyclecover:noalloc
func (s *exactState) isOrbitRep(ds *depthScratch, c candidate) bool {
	verts := ds.verts[c.off : c.off+c.k]
	for mi := 0; mi < s.nstab; mi++ {
		m := s.stab[mi]
		ds.sym = ds.sym[:0]
		for _, x := range verts {
			ds.sym = append(ds.sym, s.sigma(m, x))
		}
		ring.SortByRingOrder(ds.sym)
		if lexLess(ds.sym, verts) {
			return false
		}
	}
	return true
}

// interior appends the vertices strictly inside the clockwise arc a→b to
// buf and returns it.
//
//cyclecover:noalloc
func (s *exactState) interior(a, b int, buf []int) []int {
	g := s.r.Gap(a, b)
	for i := 1; i < g; i++ {
		buf = append(buf, s.r.Norm(a+i))
	}
	return buf
}

// subsetsFrom enumerates candidates {u, v} ∪ T for non-empty subsets T of
// side, respecting MaxLen, into ds. The enumeration is an explicit-stack
// DFS in prefix preorder — each prefix is emitted when its last vertex is
// chosen, then extended by every higher side index — which is exactly the
// recursive order, without a per-node closure allocation.
//
//cyclecover:noalloc
func (s *exactState) subsetsFrom(ds *depthScratch, u, v int, side []int) {
	maxT := len(side)
	if s.opts.MaxLen > 0 && s.opts.MaxLen-2 < maxT {
		maxT = s.opts.MaxLen - 2
	}
	if maxT <= 0 {
		return
	}
	ds.cur = ds.cur[:0]
	ds.curIdx = ds.curIdx[:0]
	i := 0
	for {
		if i < len(side) && len(ds.cur) < maxT {
			ds.curIdx = append(ds.curIdx, i)
			ds.cur = append(ds.cur, side[i])
			s.pushCandidate(ds, u, v)
			i++
			continue
		}
		if len(ds.curIdx) == 0 {
			return
		}
		i = ds.curIdx[len(ds.curIdx)-1] + 1
		ds.curIdx = ds.curIdx[:len(ds.curIdx)-1]
		ds.cur = ds.cur[:len(ds.cur)-1]
	}
}

// pushCandidate appends the cycle {u, v} ∪ ds.cur to the arena, scoring
// its gain and distance against the current residual state.
//
//cyclecover:noalloc
func (s *exactState) pushCandidate(ds *depthScratch, u, v int) {
	off := len(ds.verts)
	ds.verts = append(ds.verts, u, v)
	ds.verts = append(ds.verts, ds.cur...)
	verts := ds.verts[off:]
	ring.SortByRingOrder(verts)
	c := candidate{off: off, k: len(verts)}
	for i := 0; i < c.k; i++ {
		idx := s.pairIdx(verts[i], verts[(i+1)%c.k])
		ds.pairs = append(ds.pairs, idx)
		if !s.covered[idx] {
			c.gain++
			c.dist += int(s.dist[idx])
		}
	}
	ds.cands = append(ds.cands, c)
}

// apply marks the candidate's pairs covered, recording the newly covered
// indices in the depth's undo log.
//
//cyclecover:noalloc
func (s *exactState) apply(depth int, c candidate) {
	ds := &s.depths[depth]
	ds.newly = ds.newly[:0]
	for _, idx := range ds.pairs[c.off : c.off+c.k] {
		if s.covered[idx] {
			continue
		}
		s.covered[idx] = true
		ds.newly = append(ds.newly, idx)
		s.uncovered--
		s.remainingDist -= int(s.dist[idx])
		if s.diam[idx] {
			s.uncoveredDiams--
		}
		// ⌈d/2⌉ shrinks exactly when d leaves an odd value.
		a, b := idx/s.n, idx%s.n
		if s.uncDeg[a]&1 == 1 {
			s.sumCeilHalf--
		}
		s.uncDeg[a]--
		if s.uncDeg[b]&1 == 1 {
			s.sumCeilHalf--
		}
		s.uncDeg[b]--
		if s.memoOn { // beyond MaxKeyPairs the rank overflows the key words
			s.key.Flip(int(s.rankOf[idx]))
		}
	}
}

// undo reverts the apply recorded at depth.
//
//cyclecover:noalloc
func (s *exactState) undo(depth int) {
	ds := &s.depths[depth]
	for _, idx := range ds.newly {
		s.covered[idx] = false
		s.uncovered++
		s.remainingDist += int(s.dist[idx])
		if s.diam[idx] {
			s.uncoveredDiams++
		}
		// ⌈d/2⌉ grows exactly when d enters an odd value.
		a, b := idx/s.n, idx%s.n
		s.uncDeg[a]++
		if s.uncDeg[a]&1 == 1 {
			s.sumCeilHalf++
		}
		s.uncDeg[b]++
		if s.uncDeg[b]&1 == 1 {
			s.sumCeilHalf++
		}
		if s.memoOn {
			s.key.Flip(int(s.rankOf[idx]))
		}
	}
	ds.newly = ds.newly[:0]
}

func lexLess(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

package construct

import (
	"context"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/fanout"
	"github.com/cyclecover/cyclecover/internal/ring"
)

// ExactOptions configures the branch-and-bound solver.
type ExactOptions struct {
	// Budget is the maximum number of cycles allowed. A search at Budget =
	// ρ(n) is constructive; a completed search at ρ(n)−1 certifies the
	// lower bound.
	Budget int
	// MaxLen caps cycle length; 0 means unbounded (needed for
	// infeasibility proofs, since an optimal adversary may use any cycle
	// length). The paper's constructions need only 3 and 4.
	MaxLen int
	// NodeLimit caps search nodes for determinism (no wall clocks); 0
	// applies DefaultNodeLimit. In a parallel search the limit is shared:
	// all workers draw from one budget.
	NodeLimit int64
	// Parallelism bounds the worker pool that fans the first branch level
	// out: each root candidate's subtree is searched independently, with
	// cancellation of higher-index subtrees once a solution is found.
	// 0 defers to the context's fan-out stamp (fanout.Limit) when one is
	// present — inside a server pool job that is the job's fair share of
	// the cores, so nested parallelism does not multiply — and GOMAXPROCS
	// otherwise; 1 forces the serial search. The result is deterministic
	// for every worker count whenever the search completes within
	// NodeLimit: the surviving solution is the one the serial search would
	// have found (lowest root-candidate index, identical DFS inside the
	// subtree).
	Parallelism int
	// Bound, when non-nil, is a shared, live upper bound on useful
	// covering size: the search only pursues coverings strictly smaller
	// than the bound's current value, re-reading it as it descends.
	// Portfolio racing feeds each member the best size already achieved
	// by higher-priority members. A search cut by the bound reports
	// Complete=false — the cut is relative to a competitor's result, not
	// an exhaustion proof.
	Bound *atomic.Int64
	// Scratch, when non-nil, supplies reusable search state — the
	// residual coverage matrix, the per-depth candidate arenas and the
	// precomputed distance tables — so a warm repeated search allocates
	// nothing beyond its solution. A Scratch is owned by one search at a
	// time: it is not safe for concurrent use, and a parallel search uses
	// it only for the root enumeration (each worker keeps its own). The
	// search result is bit-identical with or without a Scratch.
	Scratch *ExactScratch
}

// ExactScratch is caller-owned reusable state for Exact/ExactCtx. The
// zero value is ready to use; see ExactOptions.Scratch for the ownership
// contract.
type ExactScratch struct {
	st exactState
}

// NewExactScratch returns an empty scratch, ready to thread through
// ExactOptions.Scratch.
func NewExactScratch() *ExactScratch { return &ExactScratch{} }

// DefaultNodeLimit bounds exact searches that did not specify a limit.
const DefaultNodeLimit = 40_000_000

// ExactOutcome reports the result of an exact search.
type ExactOutcome struct {
	// Covering is a valid DRC-covering of K_n within Budget cycles, or nil
	// if none was found.
	Covering *cover.Covering
	// Complete is true when the search space was exhausted, making a nil
	// Covering a proof of infeasibility at this Budget (for the given
	// MaxLen; with MaxLen 0 it is unconditional).
	Complete bool
	// Nodes is the number of candidate applications explored (summed over
	// all workers when the search ran in parallel).
	Nodes int64
}

// Exact searches for a DRC-covering of K_n over C_n with at most
// opts.Budget cycles, by branch and bound:
//
//   - branch on the uncovered pair with the largest short-arc distance
//     (diameters are the scarcest resource: no cycle covers two);
//   - candidates covering pair {u,v} are the vertex sets {u,v} ∪ T with T
//     a non-empty subset of the interior of one of the two arcs between u
//     and v (the other arc's interior must be empty for {u,v} to be
//     cyclically consecutive);
//   - prune when cyclesLeft·n < Σ dist(uncovered) (the arc-length bound
//     applied to the residual instance) or when cyclesLeft is below the
//     number of uncovered diameters.
//
// The search state is flat and allocation-free in steady state: residual
// coverage lives in a dense pair matrix that is covered and uncovered
// incrementally on descent and backtrack (never cloned), and candidate
// enumeration writes into per-depth arenas that are reused across the
// whole search (and across searches, via ExactOptions.Scratch).
//
// With Parallelism ≠ 1 the first branch level fans out over a bounded
// worker pool: each root candidate's subtree runs the same serial DFS on
// its own state, a shared atomic counter enforces the node budget, and
// finding a solution cancels every subtree with a higher root index (a
// lower-index subtree may still yield the canonical, serial-order
// solution, so it runs to completion).
func Exact(n int, opts ExactOptions) ExactOutcome {
	return ExactCtx(context.Background(), n, opts)
}

// ExactCtx is Exact under a context: cancellation (or a deadline) is
// honoured at every branch boundary, so the search stops within one node
// expansion of ctx firing. An interrupted search reports Complete=false —
// a nil Covering after cancellation is never an infeasibility proof.
func ExactCtx(ctx context.Context, n int, opts ExactOptions) ExactOutcome {
	r := ring.MustNew(n)
	if opts.NodeLimit == 0 {
		opts.NodeLimit = DefaultNodeLimit
	}
	workers := opts.Parallelism
	if workers <= 0 {
		if workers = fanout.Limit(ctx); workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
	}
	if workers == 1 {
		s := stateFor(opts)
		s.reset(r, n, opts)
		s.done = ctx.Done()
		complete := s.search(0)
		return s.outcome(complete, s.nodes)
	}
	return exactParallel(ctx, r, n, opts, workers)
}

// stateFor returns the search state backing opts.Scratch, or a fresh one.
func stateFor(opts ExactOptions) *exactState {
	if opts.Scratch != nil {
		return &opts.Scratch.st
	}
	return &exactState{}
}

// ExactOptimal runs Exact at Budget = ρ(n) with the paper's cycle lengths
// (MaxLen 4) and default parallelism. Per Theorems 1–2 a covering always
// exists there; ok reports whether the solver found it within the node
// limit.
func ExactOptimal(n int, nodeLimit int64) (*cover.Covering, bool) {
	out := Exact(n, ExactOptions{Budget: cover.Rho(n), MaxLen: 4, NodeLimit: nodeLimit})
	return out.Covering, out.Covering != nil
}

// candidate is one branch choice: a cycle vertex set stored in the
// owning depth's arena at [off, off+k) (its covered pair indices at the
// same offsets of the pair arena), plus its branching score.
type candidate struct {
	off, k int
	gain   int // uncovered pairs this candidate would cover
	dist   int // total short-arc distance of newly covered pairs
}

// depthScratch is the per-depth enumeration arena: candidate metadata,
// the flat vertex/pair storage they reference, the undo log of the
// candidate currently applied at this depth, and the enumeration
// scratch. Reused across every visit to the depth.
type depthScratch struct {
	cands        []candidate
	verts        []int // candidate vertex sets, ring order, back to back
	pairs        []int // covered pair indices, same offsets as verts
	newly        []int // pair indices newly covered by the applied candidate
	side0, side1 []int // arc interiors of the branch pair
	cur          []int // subset enumeration scratch: chosen vertices
	curIdx       []int // subset enumeration scratch: chosen side indices
}

// sort.Interface over cands: most-constraining first — more uncovered
// pairs, then more distance, then lexicographic vertex order (a total
// order: candidate vertex sets at one node are distinct), so the
// enumeration order is deterministic regardless of sort stability.
func (ds *depthScratch) Len() int      { return len(ds.cands) }
func (ds *depthScratch) Swap(i, j int) { ds.cands[i], ds.cands[j] = ds.cands[j], ds.cands[i] }
func (ds *depthScratch) Less(i, j int) bool {
	a, b := ds.cands[i], ds.cands[j]
	if a.gain != b.gain {
		return a.gain > b.gain
	}
	if a.dist != b.dist {
		return a.dist > b.dist
	}
	return lexLess(ds.verts[a.off:a.off+a.k], ds.verts[b.off:b.off+b.k])
}

type exactState struct {
	r    ring.Ring
	n    int
	opts ExactOptions

	covered []bool  // pair u*n+v (u<v) → covered
	dist    []int32 // short-arc distance per pair index (precomputed)
	diam    []bool  // diameter flag per pair index (precomputed)
	tablesN int     // ring size the dist/diam tables were built for

	uncovered      int
	remainingDist  int
	uncoveredDiams int

	chosen   []candidate // chosen[d] applied at depth d, refs depths[d]
	depths   []depthScratch
	solution [][]int
	nodes    int64

	// done, when non-nil, is the context's cancellation channel, polled
	// at every branch boundary (countNode) so a cancel or deadline stops
	// the search within one node expansion.
	done <-chan struct{}
	// boundCut records that at least one subtree was cut by the shared
	// competitor bound (opts.Bound), which forfeits any completeness
	// claim: the cut is relative to a competitor, not an exhaustion proof.
	boundCut bool

	// Parallel-search hooks; nil/zero in the serial search.
	shared    *atomic.Int64 // node budget shared across workers
	bestIdx   *atomic.Int64 // lowest root index that found a solution
	myIdx     int64         // this worker's root-candidate index
	cancelled bool          // aborted because a lower index solved first
}

// reset initializes the fully-uncovered search state for K_n, reusing
// every backing array that is already large enough. After the first
// search at a given n, a reset allocates nothing.
func (s *exactState) reset(r ring.Ring, n int, opts ExactOptions) {
	s.r, s.n, s.opts = r, n, opts
	nn := n * n
	if cap(s.covered) < nn {
		s.covered = make([]bool, nn)
	} else {
		s.covered = s.covered[:nn]
		clear(s.covered)
	}
	if s.tablesN != n {
		if cap(s.dist) < nn {
			s.dist = make([]int32, nn)
			s.diam = make([]bool, nn)
		} else {
			s.dist = s.dist[:nn]
			s.diam = s.diam[:nn]
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				s.dist[u*n+v] = int32(r.Dist(u, v))
				s.diam[u*n+v] = r.IsDiameter(u, v)
			}
		}
		s.tablesN = n
	}
	s.uncovered, s.remainingDist, s.uncoveredDiams = 0, 0, 0
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			s.remainingDist += int(s.dist[u*n+v])
			s.uncovered++
			if s.diam[u*n+v] {
				s.uncoveredDiams++
			}
		}
	}
	// Pre-grow the per-depth arena list: enumeration happens only at
	// depths below Budget, so no dsAt call can reallocate s.depths while
	// a search holds a *depthScratch into it.
	for len(s.depths) < opts.Budget {
		s.depths = append(s.depths, depthScratch{})
	}
	s.chosen = s.chosen[:0]
	s.solution = nil
	s.nodes = 0
	s.done = nil
	s.boundCut = false
	s.shared, s.bestIdx, s.myIdx = nil, nil, 0
	s.cancelled = false
}

// dsAt returns the arena for a depth, growing the arena list on demand
// (existing arenas keep their storage).
func (s *exactState) dsAt(depth int) *depthScratch {
	for len(s.depths) <= depth {
		s.depths = append(s.depths, depthScratch{})
	}
	return &s.depths[depth]
}

// outcome packages the state's solution (if any) as an ExactOutcome.
func (s *exactState) outcome(complete bool, nodes int64) ExactOutcome {
	out := ExactOutcome{Complete: complete && !s.boundCut, Nodes: nodes}
	if s.solution != nil {
		out.Covering = buildCovering(s.r, s.solution)
	}
	return out
}

// buildCovering materializes a solution's vertex sets as a canonical
// covering.
func buildCovering(r ring.Ring, sol [][]int) *cover.Covering {
	cv := cover.NewCovering(r)
	for _, verts := range sol {
		cv.Add(cover.MustCycle(r, verts...))
	}
	cv.Canonicalize()
	return cv
}

// pruned reports whether the subtree at depth is cut by the bounds; a
// pruned subtree counts as (vacuously) fully explored, except for cuts
// induced by the shared competitor bound, which are recorded in boundCut
// and downgrade the outcome to Complete=false.
func (s *exactState) pruned(depth int) bool {
	if s.prunedAt(s.opts.Budget, depth) {
		return true
	}
	if s.opts.Bound != nil {
		// Only coverings strictly smaller than the best competitor size
		// are useful; re-read on every node so a late improvement still
		// tightens the search.
		if b := s.opts.Bound.Load(); b <= int64(s.opts.Budget) && s.prunedAt(int(b)-1, depth) {
			s.boundCut = true
			return true
		}
	}
	return false
}

// prunedAt applies the unconditional cuts for a given cycle budget.
func (s *exactState) prunedAt(budget, depth int) bool {
	left := budget - depth
	if left <= 0 ||
		left*s.n < s.remainingDist ||
		left < s.uncoveredDiams {
		return true
	}
	// Slot bound: a cycle of length k covers exactly k pairs, so with a
	// length cap each remaining cycle covers at most MaxLen new pairs.
	return s.opts.MaxLen > 0 && left*s.opts.MaxLen < s.uncovered
}

// countNode charges one node against the budget; false means the budget
// is exhausted (or the context fired) and the search must stop. In a
// parallel search the charge goes against the shared counter, so the
// limit bounds total work across all workers. The context poll here is
// what makes cancellation take effect within one node expansion: every
// branch application passes through countNode.
//
//cyclecover:noalloc
func (s *exactState) countNode() bool {
	select {
	case <-s.done: // nil when no context: never fires, default taken
		return false
	default:
	}
	if s.shared != nil {
		if s.shared.Add(1) > s.opts.NodeLimit {
			return false
		}
		s.nodes++
		return true
	}
	if s.nodes >= s.opts.NodeLimit {
		return false
	}
	s.nodes++
	return true
}

// search returns true if the subtree was explored completely (or a
// solution was found); false only when the node limit (or a parallel
// cancellation, recorded in s.cancelled) interrupted it.
//
//cyclecover:noalloc
func (s *exactState) search(depth int) bool {
	if s.uncovered == 0 {
		sol := make([][]int, len(s.chosen))
		for d, c := range s.chosen {
			ds := &s.depths[d]
			sol[d] = append([]int(nil), ds.verts[c.off:c.off+c.k]...)
		}
		s.solution = sol
		return true
	}
	if s.pruned(depth) {
		return true // pruned: subtree fully (vacuously) explored
	}
	if s.bestIdx != nil && s.bestIdx.Load() < s.myIdx {
		// A lower root index already holds the canonical solution; this
		// subtree's result can no longer be preferred.
		s.cancelled = true
		return false
	}

	u, v := s.pickBranchPair()
	s.enumerate(depth, u, v)
	ds := &s.depths[depth]
	for ci := 0; ci < len(ds.cands); ci++ {
		if !s.countNode() {
			return false
		}
		c := ds.cands[ci]
		s.apply(depth, c)
		s.chosen = append(s.chosen, c)
		done := s.search(depth + 1)
		s.chosen = s.chosen[:len(s.chosen)-1]
		s.undo(depth)
		if s.solution != nil {
			return true
		}
		if !done {
			return false
		}
	}
	return true
}

// subOutcome is one root-candidate subtree's result in a parallel search.
type subOutcome struct {
	solution  [][]int
	complete  bool
	cancelled bool
	skipped   bool // never started: a lower index had already solved
	nodes     int64
}

// exactParallel fans the first branch level out over a bounded worker
// pool. Aggregation mirrors the serial candidate loop: the surviving
// solution is the one from the lowest root index, and completeness holds
// only if every subtree that the serial search would have visited ran to
// completion. Each worker owns one reusable search state across all the
// subtrees it drains, so steady-state work allocates nothing per branch.
func exactParallel(ctx context.Context, r ring.Ring, n int, opts ExactOptions, workers int) ExactOutcome {
	root := stateFor(opts)
	root.reset(r, n, opts)
	if root.uncovered == 0 {
		root.solution = [][]int{}
		return root.outcome(true, 0)
	}
	if root.pruned(0) {
		return ExactOutcome{Complete: !root.boundCut}
	}
	u, v := root.pickBranchPair()
	root.enumerate(0, u, v)
	rootDS := &root.depths[0]
	cands := make([][]int, len(rootDS.cands))
	for i, c := range rootDS.cands {
		cands[i] = append([]int(nil), rootDS.verts[c.off:c.off+c.k]...)
	}
	if len(cands) == 0 {
		return ExactOutcome{Complete: true}
	}
	if workers > len(cands) {
		workers = len(cands)
	}

	var (
		shared  atomic.Int64 // node budget, drawn by every worker
		bestIdx atomic.Int64 // lowest root index with a solution
		next    atomic.Int64 // work queue cursor
	)
	bestIdx.Store(math.MaxInt64)
	results := make([]subOutcome, len(cands))

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := &exactState{} // reused across this worker's subtrees
			for {
				i := next.Add(1) - 1
				if i >= int64(len(cands)) {
					return
				}
				if bestIdx.Load() < i {
					results[i] = subOutcome{skipped: true}
					continue
				}
				st.reset(r, n, opts)
				st.done = ctx.Done()
				st.shared = &shared
				st.bestIdx = &bestIdx
				st.myIdx = i
				if !st.countNode() {
					results[i] = subOutcome{nodes: st.nodes}
					continue
				}
				st.applyRoot(cands[i])
				done := st.search(1)
				st.undo(0)
				results[i] = subOutcome{
					solution:  st.solution,
					complete:  done && !st.boundCut,
					cancelled: st.cancelled,
					nodes:     st.nodes,
				}
				if st.solution != nil {
					// CAS-min: later workers with higher indexes cancel.
					for {
						cur := bestIdx.Load()
						if i >= cur || bestIdx.CompareAndSwap(cur, i) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()

	var nodes int64
	for _, res := range results {
		nodes += res.nodes
	}
	// Scan root candidates in serial order. The first subtree holding a
	// solution supplies the result; a budget-interrupted subtree before it
	// means the prefix the serial search relies on was not exhausted, so
	// the outcome cannot claim completeness.
	complete := true
	for i, res := range results {
		if res.solution != nil {
			st := &exactState{r: r, solution: results[i].solution}
			return st.outcome(true, nodes)
		}
		if res.skipped || res.cancelled || !res.complete {
			complete = false
		}
	}
	return ExactOutcome{Complete: complete, Nodes: nodes}
}

// applyRoot installs a materialized root candidate (from the shared root
// enumeration) as this state's depth-0 choice: the vertex set is copied
// into the depth-0 arena so solution materialization and undo see it like
// any locally enumerated candidate.
func (s *exactState) applyRoot(verts []int) {
	ds := s.dsAt(0)
	ds.cands = ds.cands[:0]
	ds.verts = append(ds.verts[:0], verts...)
	ds.pairs = ds.pairs[:0]
	k := len(verts)
	for i := 0; i < k; i++ {
		ds.pairs = append(ds.pairs, s.pairIdx(verts[i], verts[(i+1)%k]))
	}
	c := candidate{off: 0, k: k}
	ds.cands = append(ds.cands, c)
	s.apply(0, c)
	s.chosen = append(s.chosen, c)
}

// pickBranchPair selects the uncovered pair with maximum short-arc
// distance (ties: lexicographic), concentrating the search on diameters
// and long chords first.
//
//cyclecover:noalloc
func (s *exactState) pickBranchPair() (int, int) {
	bestU, bestV := -1, -1
	bestD := int32(-1)
	for u := 0; u < s.n; u++ {
		row := u * s.n
		for v := u + 1; v < s.n; v++ {
			if s.covered[row+v] {
				continue
			}
			if d := s.dist[row+v]; d > bestD {
				bestU, bestV, bestD = u, v, d
			}
		}
	}
	return bestU, bestV
}

func (s *exactState) pairIdx(u, v int) int {
	if u > v {
		u, v = v, u
	}
	return u*s.n + v
}

// enumerate fills depth's arena with the candidate cycles in which u and
// v are cyclically consecutive ({u,v} plus a non-empty subset of one arc
// interior), sorted most-constraining first. Allocation-free once the
// arenas have grown.
//
//cyclecover:noalloc
func (s *exactState) enumerate(depth, u, v int) {
	ds := s.dsAt(depth)
	ds.cands = ds.cands[:0]
	ds.verts = ds.verts[:0]
	ds.pairs = ds.pairs[:0]
	ds.side0 = s.interior(u, v, ds.side0[:0])
	ds.side1 = s.interior(v, u, ds.side1[:0])
	s.subsetsFrom(ds, u, v, ds.side0)
	s.subsetsFrom(ds, u, v, ds.side1)
	sort.Sort(ds)
}

// interior appends the vertices strictly inside the clockwise arc a→b to
// buf and returns it.
//
//cyclecover:noalloc
func (s *exactState) interior(a, b int, buf []int) []int {
	g := s.r.Gap(a, b)
	for i := 1; i < g; i++ {
		buf = append(buf, s.r.Norm(a+i))
	}
	return buf
}

// subsetsFrom enumerates candidates {u, v} ∪ T for non-empty subsets T of
// side, respecting MaxLen, into ds. The enumeration is an explicit-stack
// DFS in prefix preorder — each prefix is emitted when its last vertex is
// chosen, then extended by every higher side index — which is exactly the
// recursive order, without a per-node closure allocation.
//
//cyclecover:noalloc
func (s *exactState) subsetsFrom(ds *depthScratch, u, v int, side []int) {
	maxT := len(side)
	if s.opts.MaxLen > 0 && s.opts.MaxLen-2 < maxT {
		maxT = s.opts.MaxLen - 2
	}
	if maxT <= 0 {
		return
	}
	ds.cur = ds.cur[:0]
	ds.curIdx = ds.curIdx[:0]
	i := 0
	for {
		if i < len(side) && len(ds.cur) < maxT {
			ds.curIdx = append(ds.curIdx, i)
			ds.cur = append(ds.cur, side[i])
			s.pushCandidate(ds, u, v)
			i++
			continue
		}
		if len(ds.curIdx) == 0 {
			return
		}
		i = ds.curIdx[len(ds.curIdx)-1] + 1
		ds.curIdx = ds.curIdx[:len(ds.curIdx)-1]
		ds.cur = ds.cur[:len(ds.cur)-1]
	}
}

// pushCandidate appends the cycle {u, v} ∪ ds.cur to the arena, scoring
// its gain and distance against the current residual state.
//
//cyclecover:noalloc
func (s *exactState) pushCandidate(ds *depthScratch, u, v int) {
	off := len(ds.verts)
	ds.verts = append(ds.verts, u, v)
	ds.verts = append(ds.verts, ds.cur...)
	verts := ds.verts[off:]
	ring.SortByRingOrder(verts)
	c := candidate{off: off, k: len(verts)}
	for i := 0; i < c.k; i++ {
		idx := s.pairIdx(verts[i], verts[(i+1)%c.k])
		ds.pairs = append(ds.pairs, idx)
		if !s.covered[idx] {
			c.gain++
			c.dist += int(s.dist[idx])
		}
	}
	ds.cands = append(ds.cands, c)
}

// apply marks the candidate's pairs covered, recording the newly covered
// indices in the depth's undo log.
//
//cyclecover:noalloc
func (s *exactState) apply(depth int, c candidate) {
	ds := &s.depths[depth]
	ds.newly = ds.newly[:0]
	for _, idx := range ds.pairs[c.off : c.off+c.k] {
		if s.covered[idx] {
			continue
		}
		s.covered[idx] = true
		ds.newly = append(ds.newly, idx)
		s.uncovered--
		s.remainingDist -= int(s.dist[idx])
		if s.diam[idx] {
			s.uncoveredDiams--
		}
	}
}

// undo reverts the apply recorded at depth.
//
//cyclecover:noalloc
func (s *exactState) undo(depth int) {
	ds := &s.depths[depth]
	for _, idx := range ds.newly {
		s.covered[idx] = false
		s.uncovered++
		s.remainingDist += int(s.dist[idx])
		if s.diam[idx] {
			s.uncoveredDiams++
		}
	}
	ds.newly = ds.newly[:0]
}

func lexLess(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

package construct

import (
	"testing"

	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/graph"
)

// TestEvenSmallIsOptimal is the Theorem 2 check on the search range: for
// even n ≤ searchEvenLimit the constructor returns a valid covering of
// exactly ρ(n) = ⌈(p²+1)/2⌉ cycles.
func TestEvenSmallIsOptimal(t *testing.T) {
	for n := 4; n <= searchEvenLimit; n += 2 {
		cv, optimal := Even(n)
		if !optimal {
			t.Errorf("n=%d: want optimal construction in exact range", n)
		}
		if err := cover.VerifyOptimal(cv); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// TestEvenLayeredValidity checks the layered heuristic across a sweep of
// larger even n: always a valid covering, with the documented size
// ρ(n) + ⌈p/2⌉ − 1, using only C3/C4.
func TestEvenLayeredValidity(t *testing.T) {
	for n := 22; n <= 80; n += 2 {
		cv := layeredEven(n)
		if err := cover.Verify(cv, graph.Complete(n)); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		p := n / 2
		wantSize := cover.Rho(n) + (p+1)/2 - 1
		if got := cv.Size(); got != wantSize {
			t.Errorf("n=%d: size %d, want ρ+⌈p/2⌉−1 = %d", n, got, wantSize)
		}
		if got := LayeredEvenSize(n); got != cv.Size() {
			t.Errorf("n=%d: LayeredEvenSize predicts %d, actual %d", n, got, cv.Size())
		}
		for _, c := range cv.Cycles {
			if c.Len() > 4 {
				t.Fatalf("n=%d: cycle %v longer than C4", n, c)
			}
		}
	}
}

func TestEvenGapNeverExceedsHalfP(t *testing.T) {
	// The heuristic's overhead ratio vanishes: (achieved−ρ)/ρ → 0.
	for n := 14; n <= 120; n += 2 {
		p := n / 2
		gap := LayeredEvenSize(n) - cover.Rho(n)
		if gap < 0 || gap > p/2 {
			t.Errorf("n=%d: gap %d outside [0, p/2]", n, gap)
		}
	}
}

func TestEvenN4MatchesPaperExample(t *testing.T) {
	cv, optimal := Even(4)
	if !optimal || cv.Size() != 3 {
		t.Fatalf("Even(4): size %d optimal=%v, want 3, true", cv.Size(), optimal)
	}
	if err := cover.Verify(cv, graph.Complete(4)); err != nil {
		t.Fatal(err)
	}
}

func TestEvenCachedAndIsolated(t *testing.T) {
	a, _ := Even(10)
	b, _ := Even(10)
	if a.Size() != b.Size() {
		t.Fatal("cache must be deterministic")
	}
	// Mutating one result must not corrupt the cache.
	a.Cycles = a.Cycles[:1]
	c, _ := Even(10)
	if c.Size() != b.Size() {
		t.Fatal("cache entry was mutated through a returned covering")
	}
}

func TestEvenPanicsOnOdd(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Even(7): want panic")
		}
	}()
	Even(7)
}

func TestAllToAllDispatch(t *testing.T) {
	for _, n := range []int{3, 4, 5, 6, 9, 10} {
		res, err := AllToAll(n)
		if err != nil {
			t.Fatalf("AllToAll(%d): %v", n, err)
		}
		if err := cover.Verify(res.Covering, graph.Complete(n)); err != nil {
			t.Fatalf("AllToAll(%d): %v", n, err)
		}
		if n%2 == 1 && (res.Method != MethodOdd || !res.Optimal) {
			t.Errorf("AllToAll(%d): method %v optimal %v", n, res.Method, res.Optimal)
		}
		if n%2 == 0 && n <= exactEvenLimit && !res.Optimal {
			t.Errorf("AllToAll(%d): want optimal in exact range", n)
		}
	}
	if _, err := AllToAll(2); err == nil {
		t.Error("AllToAll(2): want error")
	}
}

// TestEvenCompositionVsPaper records how the constructed compositions for
// small even n relate to the ones the paper states. The counts (= ρ) must
// match; the C3/C4 mix may legitimately differ since optimal coverings are
// not unique — we assert sizes and validity, and merely report the mix.
func TestEvenCompositionVsPaper(t *testing.T) {
	for n := 6; n <= exactEvenLimit; n += 2 {
		cv, _ := Even(n)
		comp, ok := cover.TheoremComposition(n)
		if !ok {
			continue
		}
		if cv.Size() != comp.Total() {
			t.Errorf("n=%d: size %d vs theorem total %d", n, cv.Size(), comp.Total())
		}
		t.Logf("n=%d: constructed %d×C3+%d×C4, paper states %v",
			n, cv.NumTriangles(), cv.NumQuads(), comp)
	}
}

package construct

import (
	"context"

	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/graph"
	"github.com/cyclecover/cyclecover/internal/ring"
)

// DeltaScratch owns the reusable state behind DeltaRepair: the
// min-conflicts search state, the output covering and the vertex buffers
// backing its cycles. After one warm-up call at a given ring size,
// subsequent repairs through the same scratch allocate nothing. A
// DeltaScratch is not safe for concurrent use; pool instances (see
// internal/scratch) to share across goroutines.
type DeltaScratch struct {
	st   mcState
	cv   cover.Covering
	bufs [][]int
}

// NewDeltaScratch returns an empty scratch, ready for DeltaRepair.
func NewDeltaScratch() *DeltaScratch { return &DeltaScratch{} }

// DeltaOptions tunes DeltaRepair.
type DeltaOptions struct {
	// Budget fixes the number of cycles in the repaired covering; ≤ 0
	// selects the parent's size. Callers targeting "no worse than a cold
	// replan" pass the cold pipeline's (predicted or computed) size.
	Budget int
	// Iters bounds min-conflicts iterations per attempt; ≤ 0 selects a
	// size-scaled default. Bounded deltas leave only a handful of pairs
	// in conflict, so the default is orders of magnitude below the cold
	// search budgets.
	Iters int
	// Attempts is the number of restarts with distinct derived RNG
	// seeds; ≤ 0 selects 3.
	Attempts int
	// Seed offsets the deterministic restart seed sequence.
	Seed int64
	// Scratch supplies the reusable state; nil allocates ephemeral
	// state, losing the allocation-free warm path but nothing else.
	Scratch *DeltaScratch
}

// DeltaRepair warm-starts the min-conflicts search from a surviving
// parent covering after a bounded instance change and repairs it into a
// covering of the child demand (a multigraph: each pair must be covered
// at least its multiplicity). It returns ok = false when the search
// exhausts its budget without converging — callers fall back to cold
// construction — and never an unverified covering: the result is checked
// by the independent verifier before being returned.
//
// The returned covering is materialized in the scratch's reusable
// buffers and is only valid until the scratch's next use: callers that
// retain it (e.g. for cache admission) must CloneDetached it first.
//
//cyclecover:noalloc
func DeltaRepair(ctx context.Context, r ring.Ring, parent *cover.Covering, demand *graph.Graph, opts DeltaOptions) (*cover.Covering, bool) {
	if parent == nil || demand == nil {
		return nil, false
	}
	sc := opts.Scratch
	if sc == nil {
		sc = NewDeltaScratch()
	}
	budget := opts.Budget
	if budget <= 0 {
		budget = len(parent.Cycles)
	}
	if demand.M() == 0 {
		// Nothing to cover: the empty covering trivially verifies.
		sc.cv.Ring = r
		sc.cv.Cycles = sc.cv.Cycles[:0]
		return &sc.cv, true
	}
	if budget < 1 {
		return nil, false
	}
	iters := opts.Iters
	if iters <= 0 {
		iters = 4_000 + 400*r.N()
	}
	attempts := opts.Attempts
	if attempts <= 0 {
		attempts = 3
	}
	ok := false
	for a := 0; a < attempts && !ok && ctx.Err() == nil; a++ {
		sc.st.init(mcProblem{
			r:       r,
			budget:  budget,
			seedCov: parent,
			demand:  demand,
			rngSeed: opts.Seed + 9973*int64(a),
		})
		ok = sc.st.run(ctx, iters)
	}
	if !ok {
		return nil, false
	}
	// Materialize the converged cycles into scratch-owned buffers; the
	// search state's own buffers are rewritten by the next init.
	sc.cv.Ring = r
	sc.cv.Cycles = sc.cv.Cycles[:0]
	for len(sc.bufs) < len(sc.st.cycles) {
		sc.bufs = append(sc.bufs, nil)
	}
	for i, c := range sc.st.cycles {
		sc.bufs[i] = append(sc.bufs[i][:0], c.verts...)
		sc.cv.Cycles = append(sc.cv.Cycles, cover.CycleFromSortedVerts(sc.bufs[i]))
	}
	if err := cover.Verify(&sc.cv, demand); err != nil {
		return nil, false
	}
	return &sc.cv, true
}

// DeltaBudget predicts the cycle count the cold construction pipeline
// would produce for a uniform λK_n demand: λ times the all-to-all base
// size — ρ(n) wherever the closed forms and searches reach it, the
// layered size beyond the search limit. ok is false for non-uniform
// demands, where the greedy constructor sets the cold size and the
// caller must measure rather than predict.
func DeltaBudget(demand *graph.Graph) (int, bool) {
	lam, ok := UniformLambda(demand)
	if !ok {
		return 0, false
	}
	n := demand.N()
	base := cover.Rho(n)
	if n%2 == 0 && n > searchEvenLimit {
		base = LayeredEvenSize(n)
	}
	return lam * base, true
}

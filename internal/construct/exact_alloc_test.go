package construct

import (
	"testing"

	"github.com/cyclecover/cyclecover/internal/cover"
)

// TestExactInnerBranchZeroAllocs pins the flat-core contract of the
// branch-and-bound solver: with a warm ExactScratch, a complete search —
// every branch application, candidate enumeration, sort, apply and
// backtrack — allocates nothing. The search below certifies infeasibility
// of K_8 at ρ(8)−1 (so no solution is materialised: the measured work is
// purely the inner branching machinery that used to clone maps and
// allocate candidate slices per node).
func TestExactInnerBranchZeroAllocs(t *testing.T) {
	const n = 8
	opts := ExactOptions{
		Budget:      cover.Rho(n) - 1,
		MaxLen:      4,
		NodeLimit:   4_000_000,
		Parallelism: 1,
		Scratch:     NewExactScratch(),
	}
	warm := Exact(n, opts)
	if warm.Covering != nil || !warm.Complete {
		t.Fatalf("ρ(8)−1 must be a completed infeasibility proof, got %+v", warm)
	}
	avg := testing.AllocsPerRun(5, func() {
		out := Exact(n, opts)
		if out.Covering != nil || !out.Complete {
			t.Error("search result changed between runs")
		}
	})
	if avg != 0 {
		t.Fatalf("warm exact search allocated %.2f/op across %d nodes, want 0", avg, warm.Nodes)
	}
}

// TestExactScratchMatchesFresh pins that threading a scratch through
// ExactOptions changes nothing observable: same covering, same node
// count, same completeness — on both a feasible and an infeasible budget.
func TestExactScratchMatchesFresh(t *testing.T) {
	sc := NewExactScratch()
	for _, n := range []int{6, 8, 10} {
		for _, budget := range []int{cover.Rho(n) - 1, cover.Rho(n)} {
			fresh := Exact(n, ExactOptions{Budget: budget, MaxLen: 4, NodeLimit: 2_000_000, Parallelism: 1})
			reused := Exact(n, ExactOptions{Budget: budget, MaxLen: 4, NodeLimit: 2_000_000, Parallelism: 1, Scratch: sc})
			if fresh.Complete != reused.Complete || fresh.Nodes != reused.Nodes {
				t.Fatalf("n=%d budget=%d: scratch changed search shape: fresh %+v, reused %+v", n, budget, fresh, reused)
			}
			if (fresh.Covering == nil) != (reused.Covering == nil) {
				t.Fatalf("n=%d budget=%d: scratch changed feasibility", n, budget)
			}
			if fresh.Covering != nil {
				a, b := fresh.Covering, reused.Covering
				if a.Size() != b.Size() {
					t.Fatalf("n=%d: covering sizes differ: %d vs %d", n, a.Size(), b.Size())
				}
				for i := range a.Cycles {
					if !a.Cycles[i].Equal(b.Cycles[i]) {
						t.Fatalf("n=%d: cycle %d differs: %v vs %v", n, i, a.Cycles[i], b.Cycles[i])
					}
				}
			}
		}
	}
}

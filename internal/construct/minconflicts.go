package construct

import (
	"context"
	"math/rand"

	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/graph"
	"github.com/cyclecover/cyclecover/internal/ring"
)

// This file implements the fixed-budget repair search used by Even to hit
// ρ(n) exactly. Three formulations share the engine:
//
//   - full: the whole all-to-all instance is the universe (used for small
//     n, where the space is small enough to converge quickly);
//   - boundary: the interior gap-class families {v, v+j, v+p, v+p+j}
//     (2 < j < p/2, plus the class-p/2 half family) are provably perfect
//     coverings of their classes, so they are fixed, and the search runs
//     only over the residual universe — classes 1, 2, p−2, p−1 and the
//     diameters — with candidate cycles whose every arc stays inside those
//     classes. This shrinks the universe from Θ(n²) to Θ(n) pairs and
//     makes the search scale to the full experiment sweep.
//   - delta (DeltaRepair): the universe is an explicit demand multigraph —
//     pair {u,v} must reach coverage demand.Mult(u,v) — and the search is
//     warm-started from a surviving parent covering after a bounded
//     instance change. The state is caller-owned scratch, so the warm
//     path allocates nothing in steady state.
//
// Every produced covering is re-verified by the caller; a non-converged
// search returns ok = false and never an invalid result.

// mcProblem describes one repair-search instance.
type mcProblem struct {
	r      ring.Ring
	budget int     // fixed number of cycles
	seed   [][]int // initial cycles; trimmed to budget from the end, padded with random triangles
	// seedCov optionally continues the seed after the seed slice: its
	// cycles are copied in order into the remaining budget slots. It lets
	// warm-start callers seed from an existing covering without
	// materializing a [][]int.
	seedCov *cover.Covering
	// allowed[d] reports whether pairs at ring distance d are part of the
	// universe (and permitted inside candidate cycles); nil = everything.
	allowed []bool
	// demand switches the engine to multiplicity mode: the universe is
	// exactly the demand's edges, and pair {u,v} counts as covered only
	// once its coverage reaches demand.Mult(u,v). nil keeps the classic
	// distance-class universe above (implicit multiplicity 1).
	demand  *graph.Graph
	iters   int
	rngSeed int64
}

const mcWalkProb = 0.08

// runMC runs min-conflicts repair and returns the cycle vertex sets on
// success (universe fully covered). Cancellation is polled every 256
// iterations — individual steps are microseconds, so a fired context
// stops the search well within a millisecond, reported as non-converged.
func runMC(ctx context.Context, p mcProblem) ([][]int, bool) {
	st := newMCState(p)
	if !st.run(ctx, p.iters) {
		return nil, false
	}
	out := make([][]int, len(st.cycles))
	for i, c := range st.cycles {
		out[i] = append([]int(nil), c.verts...)
	}
	return out, true
}

type mcCycle struct {
	verts []int
	pairs []int
}

// mcRand is the randomness the min-conflicts search consumes. The
// classic formulations bind it to *math/rand.Rand so their streams stay
// bit-identical to the published constructions; the delta-repair path
// binds it to xorshiftRand, whose reseed is two multiplies instead of
// math/rand's 607-word state rebuild — reseeding dominated warm repair
// before the split.
type mcRand interface {
	Seed(seed int64)
	Intn(n int) int
	Float64() float64
	Perm(n int) []int
}

// xorshiftRand is a tiny xorshift64* generator behind mcRand. Quality is
// ample for conflict-resolution tie-breaking, and both seeding and
// drawing are a handful of word operations. Perm reuses an internal
// buffer (valid until the next Perm call) to keep the warm repair path
// allocation-free.
type xorshiftRand struct {
	s    uint64
	perm []int
}

func (r *xorshiftRand) Seed(seed int64) {
	// SplitMix64-style scramble; the state must never be zero.
	r.s = uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	if r.s == 0 {
		r.s = 0x2545f4914f6cdd1d
	}
}

func (r *xorshiftRand) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s * 0x2545f4914f6cdd1d
}

func (r *xorshiftRand) Intn(n int) int { return int(r.next() % uint64(n)) }

func (r *xorshiftRand) Float64() float64 { return float64(r.next()>>11) / (1 << 53) }

func (r *xorshiftRand) Perm(n int) []int {
	if cap(r.perm) < n {
		r.perm = make([]int, n)
	}
	p := r.perm[:n]
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

type mcState struct {
	r   ring.Ring
	n   int
	rng mcRand

	allowed []bool
	// need[p] is the required coverage of pair p when useNeed is set;
	// pairs with need 0 are outside the universe. The classic formulations
	// leave useNeed false: universe membership is the allowed distance
	// classes and every universe pair needs coverage exactly once.
	need     []int
	useNeed  bool
	gapOK    []int // allowed clockwise gaps (both orientations of allowed dists)
	cycles   []mcCycle
	coverage []int

	uncovered    []int
	uncoveredPos []int
	numUncovered int

	// Candidate arena, rebuilt by buildCandidates each step and reused
	// across the whole run: candidate i's vertices live at
	// candVerts[off:off+k], its pair indices at the same offsets of
	// candPairs. No per-step allocation.
	cands     []mcCandidate
	candVerts []int
	candPairs []int

	// victims and randBuf are per-step return buffers for pickVictims and
	// randomCycle, reused so the hot loop allocates nothing.
	victims []int
	randBuf [3]int
}

// newMCState allocates a state and initialises it for p. Reusable callers
// (DeltaScratch) keep one mcState and call init directly.
func newMCState(p mcProblem) *mcState {
	st := &mcState{}
	st.init(p)
	return st
}

// resizeInts returns s with length n, reusing its storage when the
// capacity suffices. Contents are unspecified; callers reset what they
// need.
func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// init (re)initialises the state for a fresh problem, reusing every
// buffer the state has already grown: after a warm-up run on the same
// ring size, initialising and running a new problem allocates nothing.
//
//cyclecover:noalloc
func (st *mcState) init(p mcProblem) {
	n := p.r.N()
	st.r = p.r
	st.n = n
	// The delta path (need-mode) reseeds on every repair attempt, so it
	// gets the cheap generator; the classic paths keep math/rand and its
	// pinned streams. A state is only ever reused within one mode.
	if p.demand != nil {
		if st.rng == nil {
			st.rng = new(xorshiftRand) //cyclecover:allocok one-time nil-guard; the generator is reused across repairs
		}
		st.rng.Seed(p.rngSeed)
	} else if st.rng == nil {
		st.rng = rand.New(rand.NewSource(p.rngSeed))
	} else {
		st.rng.Seed(p.rngSeed)
	}
	st.allowed = p.allowed
	st.coverage = resizeInts(st.coverage, n*n)
	for i := range st.coverage {
		st.coverage[i] = 0
	}
	st.uncoveredPos = resizeInts(st.uncoveredPos, n*n)
	for i := range st.uncoveredPos {
		st.uncoveredPos[i] = -1
	}
	st.uncovered = st.uncovered[:0]
	st.numUncovered = 0
	st.gapOK = st.gapOK[:0]
	st.cands = st.cands[:0]
	st.candVerts = st.candVerts[:0]
	st.candPairs = st.candPairs[:0]
	st.victims = st.victims[:0]

	st.useNeed = p.demand != nil
	if st.useNeed {
		st.need = resizeInts(st.need, n*n)
		for i := range st.need {
			st.need[i] = 0
		}
		// Direct Mult probes, not ForEachEdge: the callback closure would
		// escape and cost the warm path its only allocation.
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				m := p.demand.Mult(u, v)
				st.need[u*n+v] = m
				if m > 0 {
					st.markUncovered(u*n + v)
				}
			}
		}
	} else {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if st.inUniverse(u, v) {
					st.markUncovered(u*n + v)
				}
			}
		}
	}
	for g := 1; g < n; g++ {
		if st.distAllowed(min(g, n-g)) {
			st.gapOK = append(st.gapOK, g)
		}
	}

	// Reuse retained cycle slots: reviving a slot within capacity keeps
	// its verts/pairs buffers for attach to refill.
	st.cycles = st.cycles[:0]
	for i := 0; i < p.budget; i++ {
		switch {
		case i < len(p.seed):
			st.addCycle(p.seed[i])
		case p.seedCov != nil && i-len(p.seed) < len(p.seedCov.Cycles):
			st.addCycle(p.seedCov.Cycles[i-len(p.seed)].Vertices())
		default:
			st.addCycle(st.randomCycle())
		}
	}
}

// run drives the search loop until convergence, iteration exhaustion or
// cancellation, reporting whether the universe ended fully covered.
//
//cyclecover:noalloc
func (st *mcState) run(ctx context.Context, iters int) bool {
	done := ctx.Done()
	for iter := 0; iter < iters && st.numUncovered > 0; iter++ {
		if iter&255 == 0 {
			select {
			case <-done:
				return false
			default:
			}
		}
		st.step()
	}
	return st.numUncovered == 0
}

func (st *mcState) distAllowed(d int) bool {
	if st.allowed == nil {
		return true
	}
	return d < len(st.allowed) && st.allowed[d]
}

func (st *mcState) inUniverse(u, v int) bool {
	return st.distAllowed(st.r.Dist(u, v))
}

// randomCycle pads the seed: a random allowed triangle if the class
// restriction permits one, otherwise a random triangle. The returned
// slice is the state's reusable buffer — valid until the next call.
func (st *mcState) randomCycle() []int {
	for attempt := 0; attempt < 64; attempt++ {
		u := st.rng.Intn(st.n)
		g1 := st.gapOK[st.rng.Intn(len(st.gapOK))]
		g2 := st.gapOK[st.rng.Intn(len(st.gapOK))]
		if g1+g2 >= st.n {
			continue
		}
		rest := st.n - g1 - g2
		if !st.distAllowed(min(rest, st.n-rest)) {
			continue
		}
		vs := st.randBuf[:3]
		vs[0], vs[1], vs[2] = u, st.r.Norm(u+g1), st.r.Norm(u+g1+g2)
		ring.SortByRingOrder(vs)
		return vs
	}
	perm := st.rng.Perm(st.n)
	vs := st.randBuf[:3]
	vs[0], vs[1], vs[2] = perm[0], perm[1], perm[2]
	ring.SortByRingOrder(vs)
	return vs
}

func (st *mcState) pairIdx(u, v int) int {
	if u > v {
		u, v = v, u
	}
	return u*st.n + v
}

func (st *mcState) markUncovered(idx int) {
	if st.uncoveredPos[idx] != -1 {
		return
	}
	st.uncoveredPos[idx] = len(st.uncovered)
	st.uncovered = append(st.uncovered, idx)
	st.numUncovered++
}

func (st *mcState) markCovered(idx int) {
	pos := st.uncoveredPos[idx]
	if pos == -1 {
		return
	}
	last := len(st.uncovered) - 1
	moved := st.uncovered[last]
	st.uncovered[pos] = moved
	st.uncoveredPos[moved] = pos
	st.uncovered = st.uncovered[:last]
	st.uncoveredPos[idx] = -1
	st.numUncovered--
}

// addCycle appends a cycle, reviving a retained slot (with its buffers)
// when the backing array still has capacity from an earlier run.
func (st *mcState) addCycle(verts []int) {
	if len(st.cycles) < cap(st.cycles) {
		st.cycles = st.cycles[:len(st.cycles)+1]
	} else {
		st.cycles = append(st.cycles, mcCycle{})
	}
	st.attach(len(st.cycles)-1, verts)
}

func (st *mcState) cover(p int) {
	st.coverage[p]++
	if st.useNeed {
		if st.coverage[p] >= st.need[p] {
			st.markCovered(p)
		}
		return
	}
	// Pairs outside the universe carry coverage counts too (harmless);
	// only universe pairs are in the uncovered set.
	st.markCovered(p)
}

func (st *mcState) uncover(p int) {
	st.coverage[p]--
	if st.useNeed {
		if st.need[p] > 0 && st.coverage[p] < st.need[p] {
			st.markUncovered(p)
		}
		return
	}
	if st.coverage[p] == 0 {
		u, v := p/st.n, p%st.n
		if st.inUniverse(u, v) {
			st.markUncovered(p)
		}
	}
}

func (st *mcState) detach(i int) {
	for _, p := range st.cycles[i].pairs {
		st.uncover(p)
	}
}

// restore re-covers a detached cycle's pairs without rebuilding it — the
// undo of detach for a victim that keeps its cycle.
func (st *mcState) restore(i int) {
	for _, p := range st.cycles[i].pairs {
		st.cover(p)
	}
}

// attach replaces cycle i with the given vertex set, reusing the cycle's
// slice storage. verts must not alias the cycle's own buffers (the
// self-replacement case is restore).
func (st *mcState) attach(i int, verts []int) {
	c := &st.cycles[i]
	c.verts = append(c.verts[:0], verts...)
	for k, v := range c.verts {
		c.verts[k] = st.r.Norm(v)
	}
	ring.SortByRingOrder(c.verts)
	k := len(c.verts)
	c.pairs = c.pairs[:0]
	for j := 0; j < k; j++ {
		c.pairs = append(c.pairs, st.pairIdx(c.verts[j], c.verts[(j+1)%k]))
	}
	for _, p := range c.pairs {
		st.cover(p)
	}
}

// loss counts the universe pairs that would fall below their requirement
// if cycle i were detached.
func (st *mcState) loss(i int) int {
	l := 0
	for _, p := range st.cycles[i].pairs {
		if st.useNeed {
			if st.need[p] > 0 && st.coverage[p] == st.need[p] {
				l++
			}
			continue
		}
		if st.coverage[p] == 1 {
			u, v := p/st.n, p%st.n
			if st.inUniverse(u, v) {
				l++
			}
		}
	}
	return l
}

// gain counts the uncovered universe pairs the candidate would push up to
// their requirement.
func (st *mcState) gain(c mcCandidate) int {
	g := 0
	for _, p := range st.candPairs[c.off : c.off+c.k] {
		if st.useNeed {
			if st.need[p] > 0 && st.coverage[p] == st.need[p]-1 {
				g++
			}
			continue
		}
		if st.coverage[p] == 0 {
			u, v := p/st.n, p%st.n
			if st.inUniverse(u, v) {
				g++
			}
		}
	}
	return g
}

//cyclecover:noalloc
func (st *mcState) step() {
	idx := st.uncovered[st.rng.Intn(st.numUncovered)]
	u, v := idx/st.n, idx%st.n

	st.buildCandidates(u, v)
	if len(st.cands) == 0 {
		return
	}
	victims := st.pickVictims()

	bestV, bestC, bestDelta := -1, -1, 1<<30
	base := st.numUncovered
	for _, vi := range victims {
		st.detach(vi)
		lossVi := st.numUncovered - base
		for ci := range st.cands {
			delta := lossVi - st.gain(st.cands[ci])
			if delta < bestDelta || (delta == bestDelta && st.rng.Intn(2) == 0) {
				bestV, bestC, bestDelta = vi, ci, delta
			}
		}
		st.restore(vi)
	}
	if bestV == -1 {
		return
	}
	st.detach(bestV)
	c := st.cands[bestC]
	st.attach(bestV, st.candVerts[c.off:c.off+c.k])
}

// mcCandidate references a candidate cycle in the state's flat arena:
// vertices at candVerts[off:off+k], pair indices at candPairs[off:off+k].
type mcCandidate struct {
	off, k int
}

// buildCandidates fills st.cands with cycles in which u and v are
// cyclically consecutive and every arc distance is allowed. Cycles are
// built as gap walks b → … → a around the arc complementary to the empty
// one, with one or two intermediate vertices and each step an allowed
// gap; this keeps enumeration O(|gapOK|²) regardless of n.
func (st *mcState) buildCandidates(u, v int) {
	st.cands = st.cands[:0]
	st.candVerts = st.candVerts[:0]
	st.candPairs = st.candPairs[:0]
	var tmp [4]int
	for _, dir := range [2][2]int{{u, v}, {v, u}} {
		a, b := dir[0], dir[1]
		// Arc a→b empty; intermediates walk clockwise from b back to a.
		l := st.r.Gap(b, a)
		for _, g1 := range st.gapOK {
			if g1 >= l {
				break // gapOK ascending
			}
			w1 := st.r.Norm(b + g1)
			// Triangle {a, b, w1}: closing gap l−g1 must be allowed.
			if rest := l - g1; st.distAllowed(min(rest, st.n-rest)) {
				tmp[0], tmp[1], tmp[2] = a, b, w1
				st.pushCandidate(tmp[:3])
			}
			for _, g2 := range st.gapOK {
				if g1+g2 >= l {
					break
				}
				rest := l - g1 - g2
				if !st.distAllowed(min(rest, st.n-rest)) {
					continue
				}
				w2 := st.r.Norm(b + g1 + g2)
				tmp[0], tmp[1], tmp[2], tmp[3] = a, b, w1, w2
				st.pushCandidate(tmp[:4])
			}
		}
	}
}

// pushCandidate appends the candidate cycle to the arena in ring order.
func (st *mcState) pushCandidate(verts []int) {
	off := len(st.candVerts)
	st.candVerts = append(st.candVerts, verts...)
	vs := st.candVerts[off:]
	ring.SortByRingOrder(vs)
	k := len(vs)
	for i := 0; i < k; i++ {
		st.candPairs = append(st.candPairs, st.pairIdx(vs[i], vs[(i+1)%k]))
	}
	st.cands = append(st.cands, mcCandidate{off: off, k: k})
}

// pickVictims returns the victim cycle indices for this step in the
// state's reusable buffer — valid until the next call.
func (st *mcState) pickVictims() []int {
	st.victims = st.victims[:0]
	// Endgame: with only a few pairs left, the winning swap may involve a
	// mid-loss cycle that the lowest-loss shortcut never offers. Scan
	// everything occasionally — doing it every step would dominate the
	// run, since the search spends most of its time near the end.
	if st.numUncovered <= 4 && st.rng.Intn(16) == 0 {
		for i := range st.cycles {
			st.victims = append(st.victims, i)
		}
		return st.victims
	}
	if st.rng.Float64() < mcWalkProb {
		// Store the grown slice back: a returned-only append never teaches
		// st.victims its capacity, costing one allocation per call.
		st.victims = append(st.victims, st.rng.Intn(len(st.cycles)))
		return st.victims
	}
	best1, best2 := -1, -1
	loss1, loss2 := 1<<30, 1<<30
	scan := len(st.cycles)
	offset := 0
	const window = 700
	if scan > window {
		scan = window
		offset = st.rng.Intn(len(st.cycles))
	}
	for k := 0; k < scan; k++ {
		i := (offset + k) % len(st.cycles)
		l := st.loss(i)
		switch {
		case l < loss1:
			best2, loss2 = best1, loss1
			best1, loss1 = i, l
		case l < loss2:
			best2, loss2 = i, l
		}
	}
	if best2 == -1 {
		st.victims = append(st.victims, best1)
	} else {
		st.victims = append(st.victims, best1, best2)
	}
	return st.victims
}

// ---------------------------------------------------------------------
// Problem builders.

// fullEvenMC searches the whole instance (small even n).
func fullEvenMC(ctx context.Context, n int) (*cover.Covering, bool) {
	r := ring.MustNew(n)
	seed := layeredEven(n)
	var sv [][]int
	for _, c := range seed.Cycles {
		sv = append(sv, c.Vertices())
	}
	cycles, ok := runMC(ctx, mcProblem{
		r:       r,
		budget:  cover.Rho(n),
		seed:    sv,
		iters:   120_000 + 1_500*n,
		rngSeed: int64(n),
	})
	if !ok {
		return nil, false
	}
	return cyclesToCovering(r, cycles), true
}

// boundaryEvenMC fixes the interior families and searches only the
// boundary classes. width selects the residual class set: width 2 ⇒
// {1, 2, p−2, p−1, p}; width 3 adds {3, p−3}.
func boundaryEvenMC(ctx context.Context, n, width int) (*cover.Covering, bool) {
	p := n / 2
	if width >= p-width {
		return nil, false // class sets would overlap; full search handles these n
	}
	r := ring.MustNew(n)

	fixed := cover.NewCovering(r)
	var seed [][]int
	// Interior families j ∈ (width, p/2): fixed. Classes j ≤ width and
	// their mirrors are the search universe; their layered cycles become
	// the seed.
	for j := 2; 2*j < p; j++ {
		if j > width {
			for v := 0; v < p; v++ {
				fixed.Add(cover.MustCycle(r, v, v+j, v+p, v+p+j))
			}
		}
	}
	if p%2 == 0 && p >= 4 {
		h := p / 2
		if h > width {
			for v := 0; v < h; v++ {
				fixed.Add(cover.MustCycle(r, v, v+h, v+2*h, v+3*h))
			}
		}
	}
	// Seed: boundary triangles, then family quads for the in-universe
	// interior classes, then the boundary quads (trimmed first, as they
	// carry the least unique coverage).
	for v := 0; v < p; v++ {
		seed = append(seed, []int{v, v + 1, v + p})
	}
	for j := 2; j <= width && 2*j < p; j++ {
		for v := 0; v < p; v++ {
			seed = append(seed, []int{v, v + j, v + p, v + p + j})
		}
	}
	for u := p; u < 2*p; u++ {
		seed = append(seed, []int{u, st4(u + 1), u + p, u + p + 1})
	}

	budget := cover.Rho(n) - fixed.Size()
	if budget < 1 {
		return nil, false
	}
	allowed := make([]bool, p+1)
	for d := 1; d <= width; d++ {
		allowed[d] = true
		allowed[p-d] = true
	}
	allowed[p] = true

	// Multiple restarts with distinct seeds: the endgame is stochastic and
	// restarts are far cheaper than longer single runs.
	var cycles [][]int
	ok := false
	for attempt := 0; attempt < 6 && !ok && ctx.Err() == nil; attempt++ {
		cycles, ok = runMC(ctx, mcProblem{
			r:       r,
			budget:  budget,
			seed:    seed,
			allowed: allowed,
			iters:   120_000 + 4_000*p,
			rngSeed: int64(1000*n + width + 7777*attempt),
		})
	}
	if !ok {
		return nil, false
	}
	out := fixed
	for _, verts := range cycles {
		out.Add(cover.MustCycle(r, verts...))
	}
	out.Canonicalize()
	return out, true
}

// st4 is a no-op that keeps the seed literals symmetric with the other
// builders (vertex labels are normalised by MustCycle/addCycle anyway).
func st4(v int) int { return v }

func cyclesToCovering(r ring.Ring, cycles [][]int) *cover.Covering {
	cv := cover.NewCovering(r)
	for _, verts := range cycles {
		cv.Add(cover.MustCycle(r, verts...))
	}
	cv.Canonicalize()
	return cv
}

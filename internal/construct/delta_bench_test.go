package construct

import (
	"context"
	"testing"

	"github.com/cyclecover/cyclecover/internal/instance"
)

// Warm-repair vs cold-replan benchmarks at K_12, the delta scenario
// BENCH_6.json reports. The warm path repairs an optimal parent covering
// missing one cycle through a reused DeltaScratch — the cycled service's
// steady state for /plan/delta — and must be allocation-free (the CI
// gate pins 0 allocs/op). The cold baseline rebuilds K_12 from nothing
// through the repair strategy, which bypasses the memoized even-n
// builder, so each iteration pays the full construction the delta path
// avoids.

func BenchmarkDeltaRepairWarm(b *testing.B) {
	r, parent, demand, opts := deltaFixture(b)
	ctx := context.Background()
	if _, ok := DeltaRepair(ctx, r, parent, demand, opts); !ok {
		b.Fatal("warm-up repair did not converge")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := DeltaRepair(ctx, r, parent, demand, opts); !ok {
			b.Fatal("repair stopped converging")
		}
	}
}

func BenchmarkDeltaRepairCold(b *testing.B) {
	in := instance.AllToAll(12)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := Repair{}.Solve(ctx, in, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if out.Covering == nil {
			b.Fatal("cold replan produced no covering")
		}
	}
}

//go:build race

package construct

// raceEnabled reports that this test binary was built with the race
// detector, under which sync.Pool deliberately drops Put values — the
// warm-repair zero-alloc pin is skipped there (its cover.Verify step
// rides the pooled package-level path, which legitimately re-allocates
// under race; the repair-correctness assertions still run).
const raceEnabled = true

package construct

import (
	"context"
	"testing"

	"github.com/cyclecover/cyclecover/internal/instance"
	"github.com/cyclecover/cyclecover/internal/ring"
)

// Portfolio-vs-single-strategy benchmarks. Odd ring sizes keep the
// closed-form path un-memoized (the even-n builder caches per process),
// so these measure real construction work per iteration. On a single
// vCPU the portfolio's extra members contend with the winner for the
// core, so its overhead versus bare closed-form is an honest upper
// bound; with spare cores the racers overlap and the gap narrows (see
// EXPERIMENTS.md §P).

func benchSolve(b *testing.B, st Strategy, in instance.Instance) {
	b.Helper()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := st.Solve(ctx, in, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStrategyClosedFormOdd13(b *testing.B) {
	benchSolve(b, ClosedForm{}, instance.AllToAll(13))
}

func BenchmarkStrategyPortfolioOdd13(b *testing.B) {
	benchSolve(b, NewPortfolio(), instance.AllToAll(13))
}

func BenchmarkStrategyGreedyHub32(b *testing.B) {
	benchSolve(b, GreedySweep{}, instance.Hub(32, 0))
}

func BenchmarkStrategyPortfolioHub32(b *testing.B) {
	benchSolve(b, NewPortfolio(), instance.Hub(32, 0))
}

func BenchmarkStrategyExactOdd9(b *testing.B) {
	benchSolve(b, ExactSearch{}, instance.AllToAll(9))
}

// BenchmarkGreedyDirect is the registry-free baseline for the greedy
// path, isolating the strategy layer's dispatch overhead.
func BenchmarkGreedyDirect(b *testing.B) {
	in := instance.Hub(32, 0)
	r := ring.MustNew(32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := GreedyCtx(context.Background(), r, in.Demand); err != nil {
			b.Fatal(err)
		}
	}
}

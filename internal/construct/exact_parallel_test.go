package construct

import (
	"reflect"
	"sync"
	"testing"

	"github.com/cyclecover/cyclecover/internal/cover"
)

// coveringVertexSets flattens a covering to comparable vertex sets
// (coverings out of Exact are canonicalized, so equal coverings compare
// equal slice-for-slice).
func coveringVertexSets(cv *cover.Covering) [][]int {
	if cv == nil {
		return nil
	}
	var out [][]int
	for _, c := range cv.Cycles {
		out = append(out, c.Vertices())
	}
	return out
}

// TestExactParallelMatchesSerial pins the determinism contract: the
// parallel fan-out must return exactly the covering the serial search
// finds — same sizes, same cycles — across small n of both parities.
// Parallelism is forced to 4 (not left at the GOMAXPROCS default, which
// degrades to the serial path on a single-core runner) so the fan-out
// machinery genuinely runs; the budget is generous because determinism
// is only promised for searches that finish within it. n = 10 is
// excluded: its search is ~3 s serial, too slow under -race for CI.
func TestExactParallelMatchesSerial(t *testing.T) {
	for _, n := range []int{4, 5, 6, 7, 8, 9, 12} {
		opts := ExactOptions{Budget: cover.Rho(n), MaxLen: 4, NodeLimit: 40_000_000}
		serialOpts, parOpts := opts, opts
		serialOpts.Parallelism = 1
		parOpts.Parallelism = 4
		serial := Exact(n, serialOpts)
		par := Exact(n, parOpts)
		if serial.Complete != par.Complete {
			t.Fatalf("n=%d: complete serial=%v parallel=%v", n, serial.Complete, par.Complete)
		}
		if (serial.Covering == nil) != (par.Covering == nil) {
			t.Fatalf("n=%d: solution presence differs (serial=%v parallel=%v)",
				n, serial.Covering != nil, par.Covering != nil)
		}
		if !reflect.DeepEqual(coveringVertexSets(serial.Covering), coveringVertexSets(par.Covering)) {
			t.Fatalf("n=%d: parallel covering differs from serial:\nserial:   %v\nparallel: %v",
				n, coveringVertexSets(serial.Covering), coveringVertexSets(par.Covering))
		}
		if par.Covering != nil {
			if err := cover.VerifyOptimal(par.Covering); err != nil {
				t.Fatalf("n=%d: parallel covering invalid: %v", n, err)
			}
		}
	}
}

// TestExactParallelInfeasibilityProof checks the soundness-critical path:
// with no solution below ρ(n) there are no cancellations, so Complete
// must aggregate honestly across all subtrees and still prove the bound.
func TestExactParallelInfeasibilityProof(t *testing.T) {
	for _, n := range []int{4, 5, 6, 7, 8} {
		out := Exact(n, ExactOptions{
			Budget: cover.Rho(n) - 1, MaxLen: 0, NodeLimit: 30_000_000, Parallelism: 4,
		})
		if !out.Complete {
			t.Fatalf("n=%d: parallel proof search hit node limit after %d nodes", n, out.Nodes)
		}
		if out.Covering != nil {
			t.Fatalf("n=%d: found covering of size %d < ρ = %d — theorem contradicted!",
				n, out.Covering.Size(), cover.Rho(n))
		}
	}
}

// TestExactParallelNodeLimitInterrupts: a starved shared budget must
// yield an honest incomplete outcome, never a bogus completeness claim.
func TestExactParallelNodeLimitInterrupts(t *testing.T) {
	out := Exact(12, ExactOptions{Budget: cover.Rho(12), MaxLen: 4, NodeLimit: 10, Parallelism: 4})
	if out.Complete {
		t.Error("10-node parallel search of n=12 cannot be complete")
	}
	if out.Covering != nil {
		t.Error("no solution reachable in 10 nodes")
	}
}

// TestExactParallelConcurrentCallers runs several parallel searches at
// once; with -race this doubles as the data-race check on the shared
// counters and the per-worker states.
func TestExactParallelConcurrentCallers(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			out := Exact(n, ExactOptions{Budget: cover.Rho(n), MaxLen: 4, NodeLimit: 4_000_000, Parallelism: 3})
			if out.Covering == nil {
				t.Errorf("n=%d: parallel search found no covering at ρ", n)
				return
			}
			if err := cover.VerifyOptimal(out.Covering); err != nil {
				t.Errorf("n=%d: %v", n, err)
			}
		}(6 + i)
	}
	wg.Wait()
}

// TestExactParallelismOne routes through the serial path explicitly.
func TestExactParallelismOne(t *testing.T) {
	out := Exact(7, ExactOptions{Budget: cover.Rho(7), MaxLen: 4, Parallelism: 1})
	if out.Covering == nil || !out.Complete {
		t.Fatal("serial path broken")
	}
}

package construct

import (
	"testing"

	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/graph"
)

// TestOddReproducesTheorem1 is the headline Theorem 1 check: for every odd
// n the construction is a valid DRC-covering of K_n with exactly
// ρ(n) = p(p+1)/2 cycles, split into p C3 and p(p−1)/2 C4.
func TestOddReproducesTheorem1(t *testing.T) {
	for n := 3; n <= 101; n += 2 {
		cv := Odd(n)
		if err := cover.VerifyOptimal(cv); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		p := (n - 1) / 2
		comp, _ := cover.TheoremComposition(n)
		if got := cv.NumTriangles(); got != comp.C3 {
			t.Errorf("n=%d: %d triangles, theorem says %d", n, got, comp.C3)
		}
		if got := cv.NumQuads(); got != comp.C4 {
			t.Errorf("n=%d: %d quads, theorem says %d", n, got, comp.C4)
		}
		if got := cv.Size(); got != p*(p+1)/2 {
			t.Errorf("n=%d: size %d, want p(p+1)/2 = %d", n, got, p*(p+1)/2)
		}
	}
}

// TestOddIsPartition verifies the sharper property forced by the tight
// lower bound: the optimal odd covering covers every pair exactly once
// (zero slack) and routes every pair along a short arc.
func TestOddIsPartition(t *testing.T) {
	for n := 3; n <= 61; n += 2 {
		cv := Odd(n)
		if slack := cv.DuplicateSlots(); slack != 0 {
			t.Errorf("n=%d: slack %d, want partition", n, slack)
		}
		if cv.Slots() != cover.EdgeCount(n) {
			t.Errorf("n=%d: %d slots for %d edges", n, cv.Slots(), cover.EdgeCount(n))
		}
		s := cv.Summarize()
		if !s.ShortOnly {
			t.Errorf("n=%d: some pair routed the long way; bound tightness violated", n)
		}
	}
}

func TestOddBaseCase(t *testing.T) {
	cv := Odd(3)
	if cv.Size() != 1 || !cv.Cycles[0].IsTriangle() {
		t.Fatalf("Odd(3) = %v, want single triangle", cv.Cycles)
	}
	if err := cover.Verify(cv, graph.Complete(3)); err != nil {
		t.Fatal(err)
	}
}

func TestOddKnownN5(t *testing.T) {
	cv := Odd(5)
	if cv.Size() != 3 || cv.NumTriangles() != 2 || cv.NumQuads() != 1 {
		t.Fatalf("Odd(5): %v, want 2×C3 + 1×C4", cv.Summarize())
	}
}

func TestOddUsesOnlyC3C4(t *testing.T) {
	for n := 3; n <= 41; n += 2 {
		for _, c := range Odd(n).Cycles {
			if c.Len() > 4 {
				t.Fatalf("n=%d: cycle %v longer than C4", n, c)
			}
		}
	}
}

func TestOddPanicsOnEven(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Odd(6): want panic")
		}
	}()
	Odd(6)
}

func TestOddDeterministic(t *testing.T) {
	a, b := Odd(13), Odd(13)
	if a.Size() != b.Size() {
		t.Fatal("non-deterministic size")
	}
	for i := range a.Cycles {
		if !a.Cycles[i].Equal(b.Cycles[i]) {
			t.Fatalf("cycle %d differs between runs", i)
		}
	}
}

// TestOddMatchesExactSolver cross-validates the construction against the
// independent exact solver on small rings: both must land on ρ(n).
func TestOddMatchesExactSolver(t *testing.T) {
	for _, n := range []int{5, 7, 9} {
		cv := Odd(n)
		exact, ok := ExactOptimal(n, 4_000_000)
		if !ok {
			t.Fatalf("n=%d: exact solver failed to find ρ-sized covering", n)
		}
		if exact.Size() != cv.Size() {
			t.Errorf("n=%d: exact %d vs construction %d", n, exact.Size(), cv.Size())
		}
		if err := cover.VerifyOptimal(exact); err != nil {
			t.Errorf("n=%d: exact solution invalid: %v", n, err)
		}
	}
}

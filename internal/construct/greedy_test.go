package construct

import (
	"math/rand"
	"testing"

	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/graph"
	"github.com/cyclecover/cyclecover/internal/ring"
)

func TestGreedyCoversAllToAll(t *testing.T) {
	for _, n := range []int{4, 5, 8, 11, 16, 21} {
		r := ring.MustNew(n)
		demand := graph.Complete(n)
		cv := Greedy(r, demand)
		if err := cover.Verify(cv, demand); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if cv.Size() < cover.LowerBound(n) {
			t.Fatalf("n=%d: greedy size %d below the lower bound %d — verifier bug",
				n, cv.Size(), cover.LowerBound(n))
		}
	}
}

func TestGreedyNeverWorseThanTrivial(t *testing.T) {
	// One cycle per pair is always achievable; greedy must beat it.
	for _, n := range []int{7, 10, 15} {
		cv := Greedy(ring.MustNew(n), graph.Complete(n))
		if cv.Size() >= cover.EdgeCount(n) {
			t.Errorf("n=%d: greedy %d not better than per-edge %d", n, cv.Size(), cover.EdgeCount(n))
		}
	}
}

func TestGreedyRandomInstancesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(16)
		r := ring.MustNew(n)
		demand := graph.New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(3) == 0 {
					demand.AddEdge(u, v)
				}
			}
		}
		if demand.M() == 0 {
			continue
		}
		cv := Greedy(r, demand)
		if err := cover.Verify(cv, demand); err != nil {
			t.Fatalf("trial %d n=%d: %v", trial, n, err)
		}
		if lb := cover.InstanceLowerBound(r, demand); cv.Size() < lb {
			t.Fatalf("trial %d: size %d below instance bound %d", trial, cv.Size(), lb)
		}
	}
}

func TestGreedyMultigraphDemand(t *testing.T) {
	r := ring.MustNew(7)
	demand := graph.LambdaComplete(7, 2)
	cv := Greedy(r, demand)
	if err := cover.Verify(cv, demand); err != nil {
		t.Fatalf("2K7: %v", err)
	}
}

func TestGreedyEmptyDemand(t *testing.T) {
	cv := Greedy(ring.MustNew(6), graph.New(6))
	if cv.Size() != 0 {
		t.Errorf("empty demand: %d cycles, want 0", cv.Size())
	}
}

func TestGreedySingleRequest(t *testing.T) {
	r := ring.MustNew(9)
	demand := graph.New(9)
	demand.AddEdge(2, 6)
	cv := Greedy(r, demand)
	if err := cover.Verify(cv, demand); err != nil {
		t.Fatal(err)
	}
	if cv.Size() != 1 {
		t.Errorf("single request: %d cycles, want 1", cv.Size())
	}
}

// TestGreedySmallerDemandThanRing pins an input class the map-era greedy
// handled and the dense residual must keep handling: a demand graph on
// fewer vertices than the ring. Cycle growing probes ring vertices
// beyond the demand's range; the residual bookkeeping must answer "not
// demanded" there, not range-panic.
func TestGreedySmallerDemandThanRing(t *testing.T) {
	r := ring.MustNew(8)
	demand := graph.New(5)
	demand.AddEdge(0, 4)
	demand.AddEdge(1, 3)
	cv := Greedy(r, demand)
	if err := cover.Verify(cv, demand); err != nil {
		t.Fatalf("covering invalid: %v", err)
	}
}

func TestEliminateRedundant(t *testing.T) {
	r := ring.MustNew(6)
	demand := graph.New(6)
	demand.AddEdge(0, 1)
	demand.AddEdge(1, 2)
	cv := cover.NewCovering(r)
	cv.Add(
		cover.MustCycle(r, 0, 1, 2),    // covers both requests
		cover.MustCycle(r, 0, 1, 2, 3), // redundant: {0,1} and {1,2} already covered
	)
	removed := EliminateRedundant(cv, demand)
	if removed != 1 || cv.Size() != 1 {
		t.Fatalf("removed %d, size %d; want 1, 1", removed, cv.Size())
	}
	if err := cover.Verify(cv, demand); err != nil {
		t.Fatal(err)
	}
}

func TestEliminateRedundantKeepsMultiplicity(t *testing.T) {
	r := ring.MustNew(5)
	demand := graph.New(5)
	demand.AddEdgeMulti(0, 1, 2)
	cv := cover.NewCovering(r)
	cv.Add(cover.MustCycle(r, 0, 1, 2), cover.MustCycle(r, 0, 1, 3))
	if removed := EliminateRedundant(cv, demand); removed != 0 {
		t.Fatalf("both cycles needed for multiplicity 2, removed %d", removed)
	}
}

func TestEliminateRedundantNoopOnOptimal(t *testing.T) {
	cv := Odd(9)
	if removed := EliminateRedundant(cv, graph.Complete(9)); removed != 0 {
		t.Errorf("optimal covering had %d redundant cycles", removed)
	}
}

func TestLambda(t *testing.T) {
	res, err := Lambda(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := cover.Verify(res.Covering, graph.LambdaComplete(7, 3)); err != nil {
		t.Fatal(err)
	}
	if res.Covering.Size() != 3*cover.Rho(7) {
		t.Errorf("size %d, want 3ρ(7) = %d", res.Covering.Size(), 3*cover.Rho(7))
	}
	if _, err := Lambda(7, 0); err == nil {
		t.Error("lambda 0: want error")
	}
}

//go:build !race

package construct

// raceEnabled mirrors race_on_test.go for regular builds.
const raceEnabled = false

package construct

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/cyclecover/cyclecover/internal/instance"
)

// panicStrategy panics on every Solve — the stand-in for a solver bug.
type panicStrategy struct{ name string }

func (p panicStrategy) Name() string { return p.name }
func (p panicStrategy) Solve(context.Context, instance.Instance, Options) (Outcome, error) {
	panic("solver bug: " + p.name)
}

// TestSafeSolveRecoversPanic checks the containment boundary: a
// panicking strategy yields a fingerprinted *PanicError, not a crash.
func TestSafeSolveRecoversPanic(t *testing.T) {
	_, err := SafeSolve(context.Background(), panicStrategy{name: "boom"}, instance.AllToAll(7), Options{})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("SafeSolve error = %v, want *PanicError", err)
	}
	if pe.Origin != "strategy:boom" {
		t.Fatalf("Origin = %q, want strategy:boom", pe.Origin)
	}
	if len(pe.Fingerprint) != 8 {
		t.Fatalf("Fingerprint = %q, want 8 hex chars", pe.Fingerprint)
	}
	if !strings.Contains(pe.Value, "solver bug") {
		t.Fatalf("Value = %q does not carry the panic message", pe.Value)
	}
}

// TestPanicFingerprintStable checks one crashing code path maps to one
// fingerprint and distinct paths to distinct fingerprints.
func TestPanicFingerprintStable(t *testing.T) {
	a := Recovered("strategy:x", "index out of range")
	b := Recovered("strategy:x", "index out of range")
	c := Recovered("strategy:y", "index out of range")
	d := Recovered("strategy:x", "nil dereference")
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("same panic fingerprints differ: %s vs %s", a.Fingerprint, b.Fingerprint)
	}
	if a.Fingerprint == c.Fingerprint || a.Fingerprint == d.Fingerprint {
		t.Fatal("distinct panic sites share a fingerprint")
	}
}

// TestSafeSolvePassesThrough checks a healthy strategy is untouched by
// the boundary.
func TestSafeSolvePassesThrough(t *testing.T) {
	out, err := SafeSolve(context.Background(), GreedySweep{}, instance.AllToAll(7), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Covering == nil || out.Strategy != "greedy" {
		t.Fatalf("unexpected outcome %+v", out)
	}
}

// TestPortfolioSurvivesPanickingMember checks a member panic fails only
// that slot: the race still returns the deterministic winner.
func TestPortfolioSurvivesPanickingMember(t *testing.T) {
	p := NewPortfolio(panicStrategy{name: "chaos-member"}, GreedySweep{})
	out, err := p.Solve(context.Background(), instance.AllToAll(9), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Strategy != "greedy" {
		t.Fatalf("winner = %q, want greedy", out.Strategy)
	}
	// All members panicking surfaces the PanicError instead of a result.
	p = NewPortfolio(panicStrategy{name: "only-member"})
	_, err = p.Solve(context.Background(), instance.AllToAll(9), Options{})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("all-panic portfolio error = %v, want wrapped *PanicError", err)
	}
}

// TestRegisterStrategy checks lookup, listing, and the rejection paths.
func TestRegisterStrategy(t *testing.T) {
	name := fmt.Sprintf("test-registered-%d", len(extraNames()))
	if err := RegisterStrategy(panicStrategy{name: name}); err != nil {
		t.Fatal(err)
	}
	if _, ok := LookupStrategy(name); !ok {
		t.Fatalf("registered strategy %q not resolvable", name)
	}
	found := false
	for _, s := range Strategies() {
		if s == name {
			found = true
		}
	}
	if !found {
		t.Fatalf("Strategies() does not list %q", name)
	}
	if err := RegisterStrategy(panicStrategy{name: name}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := RegisterStrategy(panicStrategy{name: "greedy"}); err == nil {
		t.Fatal("built-in name registration accepted")
	}
	if err := RegisterStrategy(panicStrategy{name: "portfolio"}); err == nil {
		t.Fatal("reserved name registration accepted")
	}
	if err := RegisterStrategy(panicStrategy{name: ""}); err == nil {
		t.Fatal("empty name registration accepted")
	}
	// The default registry and portfolio stay pinned: extras never join.
	for _, s := range Registry() {
		if s.Name() == name {
			t.Fatal("registered strategy leaked into the default registry")
		}
	}
}

// TestDegradedPortfolioRing checks the anytime race on a ring instance:
// greedy wins (the scc members drop out) and the covering verifies.
func TestDegradedPortfolioRing(t *testing.T) {
	out, err := NewDegradedPortfolio().Solve(context.Background(), instance.AllToAll(9), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Strategy != "greedy" {
		t.Fatalf("degraded ring winner = %q, want greedy", out.Strategy)
	}
	if out.Optimal {
		t.Fatal("degraded result claims optimality")
	}
}

// TestDegradedPortfolioGeneral checks the anytime race on a general
// host returns a valid cover from the scc sub-family.
func TestDegradedPortfolioGeneral(t *testing.T) {
	in, err := instance.Parse(10, "petersen")
	if err != nil {
		t.Fatal(err)
	}
	out, err := NewDegradedPortfolio().Solve(context.Background(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Covering == nil || len(out.Covering.Cycles) == 0 {
		t.Fatal("degraded general race returned no cover")
	}
	if out.Strategy != "scc-kcycle" && out.Strategy != "scc-greedy" {
		t.Fatalf("degraded general winner = %q, want an scc member", out.Strategy)
	}
}

package construct

import (
	"fmt"

	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/ring"
)

// Odd builds the optimal DRC-covering of K_n over C_n for odd n = 2p+1,
// reproducing Theorem 1: exactly p(p+1)/2 cycles, of which p are C3 and
// p(p−1)/2 are C4, every pair covered exactly once along a short arc.
//
// The construction is the reconstructed induction of DESIGN.md (Fact C).
// Step p−1 → p inserts two fresh vertices x and y into opposite arcs of
// the ring. Because a DRC cycle is just a vertex set traversed in ring
// order, inserting vertices changes no existing cycle and no covered pair.
// The 4p−1 new pairs (x and y to everything, plus {x,y}) are covered
// exactly once by
//
//	p−1 quads {x, uᵢ, y, vᵢ}  (uᵢ on the arc left of x, vᵢ right of y)
//	1 triangle {x, y, w}      (w the leftover vertex)
//
// since each quad's ring order interleaves x and y with one old vertex on
// each side, making all four of its consecutive pairs new edges.
//
// Odd panics if n is even or n < 3; use AllToAll for a checked entry
// point.
func Odd(n int) *cover.Covering {
	if n < 3 || n%2 == 0 {
		panic(fmt.Sprintf("construct: Odd requires odd n >= 3, got %d", n))
	}
	// Work with abstract vertex ids; ringOrder lists ids in ring order.
	// Final labels are assigned by ring position at the end.
	next := 3
	ringOrder := []int{0, 1, 2}
	cycles := [][]int{{0, 1, 2}} // base case: K_3 covered by one triangle

	for m := 3; m < n; m += 2 {
		x, y := next, next+1
		next += 2
		// Split the current ring into A = ringOrder[:a] (the smaller side)
		// and B = ringOrder[a:] (one larger), and insert x before B, y
		// after B. New ring order: A, x, B, y.
		a := (m - 1) / 2
		sideA := ringOrder[:a:a]
		sideB := ringOrder[a:]

		// Quads pair one A-side vertex with one B-side vertex. |B| =
		// |A|+1, so B's last vertex is left over for the triangle.
		for i := 0; i < len(sideA); i++ {
			cycles = append(cycles, []int{x, sideA[i], y, sideB[i]})
		}
		cycles = append(cycles, []int{x, y, sideB[len(sideB)-1]})

		merged := make([]int, 0, m+2)
		merged = append(merged, sideA...)
		merged = append(merged, x)
		merged = append(merged, sideB...)
		merged = append(merged, y)
		ringOrder = merged
	}

	// Relabel: vertex at ring position i gets label i.
	pos := make([]int, n)
	for i, id := range ringOrder {
		pos[id] = i
	}
	r := ring.MustNew(n)
	cv := cover.NewCovering(r)
	for _, c := range cycles {
		labels := make([]int, len(c))
		for i, id := range c {
			labels[i] = pos[id]
		}
		cv.Add(cover.MustCycle(r, labels...))
	}
	return cv
}

package construct

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"github.com/cyclecover/cyclecover/internal/faultinject"
	"github.com/cyclecover/cyclecover/internal/instance"
)

// This file is the resilience boundary of the strategy layer: SafeSolve
// wraps every strategy invocation in a panic recover (a bug in one
// solver fails one request, never the process), PanicError carries a
// stable fingerprint so recovered panics can be counted and alerted on
// without unbounded label cardinality, and RegisterStrategy lets tests
// and embedders add strategies to the by-name lookup without touching
// the pinned default registry.

// PanicError reports a panic recovered at a containment boundary. It
// is the error surfaced to the one request whose computation panicked;
// every other request is untouched.
type PanicError struct {
	// Origin names the boundary that recovered the panic, e.g.
	// "strategy:greedy" or "pool".
	Origin string
	// Fingerprint is a short stable hash of (origin, panic message):
	// one crashing code path maps to one fingerprint, so counters keyed
	// on it stay low-cardinality.
	Fingerprint string
	// Value is the recovered panic value, stringified.
	Value string
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("construct: panic recovered at %s [%s]: %s", e.Origin, e.Fingerprint, e.Value)
}

// Recovered builds the PanicError for a recover() value caught at the
// named boundary.
func Recovered(origin string, v any) *PanicError {
	msg := fmt.Sprint(v)
	h := fnv.New64a()
	h.Write([]byte(origin))
	h.Write([]byte{0})
	h.Write([]byte(msg))
	return &PanicError{
		Origin:      origin,
		Fingerprint: fmt.Sprintf("%08x", uint32(h.Sum64()>>32)^uint32(h.Sum64())),
		Value:       msg,
	}
}

// SafeSolve runs s.Solve behind the panic containment boundary: a
// panicking strategy yields a *PanicError instead of killing the
// process, so one poisoned request cannot take the daemon down. Every
// strategy invocation on the serving path — portfolio members, named
// strategies, the degraded pipeline — goes through here; it is also a
// chaos failpoint, so fault-injection builds can rehearse strategy
// crashes without planting bugs.
func SafeSolve(ctx context.Context, s Strategy, in instance.Instance, opts Options) (out Outcome, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = Outcome{}, Recovered("strategy:"+s.Name(), r)
		}
	}()
	//cyclecover:faultpoint strategy entry: chaos tests inject panics and latency here
	if err := faultinject.Inject(faultinject.SiteStrategySolve); err != nil {
		return Outcome{}, err
	}
	return s.Solve(ctx, in, opts)
}

// extraStrategies holds strategies added by RegisterStrategy, keyed by
// name. They are resolvable through LookupStrategy and listed by
// Strategies, but never join the default registry: the portfolio's
// pinned determinism contract ranks exactly the built-in members.
var (
	extraMu         sync.RWMutex
	extraStrategies map[string]Strategy
)

// RegisterStrategy adds a strategy to the by-name lookup (LookupStrategy,
// Strategies). It rejects names that collide with a built-in strategy,
// "portfolio", or a previous registration. Registered strategies do not
// join the default portfolio race — the pinned determinism rule covers
// the built-in registry only — but are selectable per request, which is
// what the chaos suite uses to rehearse panicking and stalling solvers.
func RegisterStrategy(s Strategy) error {
	name := s.Name()
	if name == "" {
		return fmt.Errorf("construct: cannot register a strategy with an empty name")
	}
	if name == "portfolio" {
		return fmt.Errorf("construct: strategy name %q is reserved", name)
	}
	for _, b := range Registry() {
		if b.Name() == name {
			return fmt.Errorf("construct: strategy %q is built in", name)
		}
	}
	extraMu.Lock()
	defer extraMu.Unlock()
	if _, dup := extraStrategies[name]; dup {
		return fmt.Errorf("construct: strategy %q already registered", name)
	}
	if extraStrategies == nil {
		extraStrategies = make(map[string]Strategy)
	}
	extraStrategies[name] = s
	return nil
}

// lookupExtra resolves a registered (non-built-in) strategy.
func lookupExtra(name string) (Strategy, bool) {
	extraMu.RLock()
	defer extraMu.RUnlock()
	s, ok := extraStrategies[name]
	return s, ok
}

// extraNames lists registered strategy names in sorted order.
func extraNames() []string {
	extraMu.RLock()
	defer extraMu.RUnlock()
	names := make([]string, 0, len(extraStrategies))
	//cyclecover:nondet keys are sorted immediately below before use
	for name := range extraStrategies {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

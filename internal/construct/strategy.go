package construct

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/graph"
	"github.com/cyclecover/cyclecover/internal/instance"
	"github.com/cyclecover/cyclecover/internal/ring"
)

// This file is the strategy layer: every construction path the package
// offers — the paper's closed forms, exact branch-and-bound, the
// min-conflicts repair search, greedy — wrapped behind one interface, a
// registry to select them by name, and a Portfolio that races a subset
// under one context. The cache, the Planner facade and the cycled
// service all dispatch through here; the fixed pipeline that predates
// the registry (closed forms for λK_n, greedy otherwise) remains the
// default and is reproduced exactly by the Portfolio's determinism rule
// (see Portfolio).

// ErrNotApplicable reports that a strategy does not address an
// instance's demand class (e.g. exact search on a non-complete demand).
// A portfolio member failing with it simply drops out of the race.
var ErrNotApplicable = errors.New("construct: strategy not applicable to this instance")

// Options tunes a Strategy.Solve call.
type Options struct {
	// NodeLimit caps exact-search node expansions for exact-backed
	// strategies (0 = DefaultNodeLimit).
	NodeLimit int64
	// Parallelism is passed to exact-backed strategies (0 = GOMAXPROCS,
	// 1 = serial).
	Parallelism int
	// Bound, when non-nil, carries the best covering cost achieved by
	// competing strategies that outrank this one — cycle count for ring
	// instances, total cover length for general-topology ones (see
	// CoverCost); a solver may use it to prune work that can no longer
	// produce a strictly cheaper covering. Set by Portfolio; zero-value
	// calls run unpruned.
	Bound *atomic.Int64
}

// Outcome is a strategy's constructed covering plus provenance.
type Outcome struct {
	Covering *cover.Covering
	Method   Method
	// Optimal reports that the covering provably meets ρ(n).
	Optimal bool
	// Strategy is the registry name of the strategy that produced the
	// covering; for a portfolio it names the winning member.
	Strategy string
}

// Strategy is one independently selectable construction path. Solve
// honours ctx: cancellation or a deadline aborts the underlying search
// promptly (within one branch expansion for exact, within one repair
// step for min-conflicts, within one cycle for greedy) and returns ctx's
// error. A Strategy must be safe for concurrent use.
type Strategy interface {
	Name() string
	Solve(ctx context.Context, in instance.Instance, opts Options) (Outcome, error)
}

// Registry returns the concrete strategies in priority order. The order
// is part of the contract: the Portfolio breaks cost ties toward the
// lowest index, which keeps its output pinned to the fixed pipeline
// (closed forms preferred, greedy the universal fallback). The ring
// members refuse general-topology instances and the scc members refuse
// ring instances, so exactly one sub-family competes per instance.
func Registry() []Strategy {
	return []Strategy{ClosedForm{}, ExactSearch{}, Repair{}, GreedySweep{}, SCCExact{}, SCCKCycle{}, SCCGreedy{}}
}

// AnytimeRegistry returns the strategies cheap enough to serve under a
// nearly-exhausted deadline: members that always terminate in one fast
// pass, never search. It is the member set the portfolio demotes to
// when the remaining context budget cannot fit the exact machinery
// (see NewDegradedPortfolio); exactly one sub-family applies per
// instance class, mirroring Registry. ClosedForm is deliberately
// excluded — its even-n path is a search with no useful time bound.
func AnytimeRegistry() []Strategy {
	return []Strategy{GreedySweep{}, SCCKCycle{}, SCCGreedy{}}
}

// NewDegradedPortfolio returns the degraded-mode portfolio: the anytime
// members raced under the standard deterministic winner rule. Results
// are valid, verified coverings with no optimality claim — callers mark
// them degraded end-to-end (see cache.Options.Degrade).
func NewDegradedPortfolio() *Portfolio { return NewPortfolio(AnytimeRegistry()...) }

// Strategies lists the selectable strategy names: the registry in
// priority order, plus "portfolio", plus any RegisterStrategy extras in
// sorted name order.
func Strategies() []string {
	reg := Registry()
	names := make([]string, 0, len(reg)+1)
	for _, s := range reg {
		names = append(names, s.Name())
	}
	names = append(names, "portfolio")
	return append(names, extraNames()...)
}

// LookupStrategy resolves a strategy by registry name ("closed-form",
// "exact", "repair", "greedy", or "portfolio" for the default race),
// falling back to RegisterStrategy extras.
func LookupStrategy(name string) (Strategy, bool) {
	if name == "portfolio" {
		return NewPortfolio(), true
	}
	for _, s := range Registry() {
		if s.Name() == name {
			return s, true
		}
	}
	return lookupExtra(name)
}

// UniformLambda reports whether g is λK_n for some uniform λ ≥ 1 — the
// demand class the paper's closed forms address. Nil-safe: an empty or
// nil graph is not a λ-class.
func UniformLambda(g *graph.Graph) (int, bool) {
	n := g.N()
	pairs := n * (n - 1) / 2
	if pairs == 0 || g.DistinctEdges() != pairs || g.M()%pairs != 0 {
		return 0, false
	}
	lam := g.M() / pairs
	for _, e := range g.Edges() {
		if g.Multiplicity(e.U, e.V) != lam {
			return 0, false
		}
	}
	return lam, true
}

// ClosedForm is the paper's construction machinery: Theorem 1's odd
// induction, the even-n search-plus-layered path, and the λ-composition.
// Applicable to uniform λK_n demands only.
type ClosedForm struct{}

// Name implements Strategy.
func (ClosedForm) Name() string { return "closed-form" }

// Solve implements Strategy.
func (ClosedForm) Solve(ctx context.Context, in instance.Instance, opts Options) (Outcome, error) {
	if in.IsGeneral() {
		// A general host whose graph happens to be K_n must not fall into
		// the ring machinery: the objective and the feasibility model both
		// differ (cover the host's edges, not route demand on a ring).
		return Outcome{}, fmt.Errorf("%w: closed-form addresses ring instances, %q is general-topology", ErrNotApplicable, in.Name)
	}
	lam, ok := UniformLambda(in.Demand)
	if !ok {
		return Outcome{}, fmt.Errorf("%w: closed-form needs a uniform λK_n demand, got %q", ErrNotApplicable, in.Name)
	}
	var res Result
	var err error
	if lam == 1 {
		res, err = AllToAllCtx(ctx, in.N())
	} else {
		res, err = LambdaCtx(ctx, in.N(), lam)
	}
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{Covering: res.Covering, Method: res.Method, Optimal: res.Optimal, Strategy: "closed-form"}, nil
}

// ExactSearch is budgeted branch-and-bound at Budget = ρ(n) with the
// paper's cycle lengths, run on the symmetry-reduced engine (orbit
// pruning, residual transposition table, counting bounds — DESIGN.md
// §10). Applicable to the unit all-to-all demand only; when it returns
// at all, the covering is provably optimal (no covering of K_n has
// fewer than ρ(n) cycles). It honours Options.Bound, so in a portfolio
// it stops expanding once a higher-priority member's result can no
// longer be beaten; a subtree cut by that shared bound is excluded from
// the transposition table (memo entries must stay genuine infeasibility
// proofs) and downgrades Complete, never the covering itself.
type ExactSearch struct{}

// Name implements Strategy.
func (ExactSearch) Name() string { return "exact" }

// Solve implements Strategy.
func (ExactSearch) Solve(ctx context.Context, in instance.Instance, opts Options) (Outcome, error) {
	if in.IsGeneral() {
		return Outcome{}, fmt.Errorf("%w: exact search addresses ring instances, %q is general-topology", ErrNotApplicable, in.Name)
	}
	lam, ok := UniformLambda(in.Demand)
	if !ok || lam != 1 {
		return Outcome{}, fmt.Errorf("%w: exact search needs the unit all-to-all demand, got %q", ErrNotApplicable, in.Name)
	}
	n := in.N()
	if n < ring.MinVertices {
		return Outcome{}, fmt.Errorf("construct: n = %d below minimum %d", n, ring.MinVertices)
	}
	out := ExactCtx(ctx, n, ExactOptions{
		Budget:      cover.Rho(n),
		MaxLen:      4,
		NodeLimit:   opts.NodeLimit,
		Parallelism: opts.Parallelism,
		Bound:       opts.Bound,
	})
	if out.Covering == nil {
		if err := ctx.Err(); err != nil {
			return Outcome{}, err
		}
		return Outcome{}, fmt.Errorf("construct: exact search found no covering of K_%d within budget ρ=%d (complete=%v, %d nodes)",
			n, cover.Rho(n), out.Complete, out.Nodes)
	}
	return Outcome{
		Covering: out.Covering,
		Method:   MethodExact,
		Optimal:  out.Covering.Size() == cover.Rho(n),
		Strategy: "exact",
	}, nil
}

// Repair is the min-conflicts repair search at budget ρ(n) (the even-n
// engine behind the closed-form path, exposed as its own racer).
// Applicable to the unit all-to-all demand on even rings within the
// search range; results are re-verified and only optimal converged
// coverings are returned.
type Repair struct{}

// Name implements Strategy.
func (Repair) Name() string { return "repair" }

// Solve implements Strategy.
func (Repair) Solve(ctx context.Context, in instance.Instance, opts Options) (Outcome, error) {
	if in.IsGeneral() {
		return Outcome{}, fmt.Errorf("%w: repair search addresses ring instances, %q is general-topology", ErrNotApplicable, in.Name)
	}
	lam, ok := UniformLambda(in.Demand)
	if !ok || lam != 1 {
		return Outcome{}, fmt.Errorf("%w: repair search needs the unit all-to-all demand, got %q", ErrNotApplicable, in.Name)
	}
	n := in.N()
	if n < 4 || n%2 == 1 {
		return Outcome{}, fmt.Errorf("%w: repair search targets even n ≥ 4, got n=%d", ErrNotApplicable, n)
	}
	if cv, ok := evenMCAttempts(ctx, n); ok {
		return Outcome{Covering: cv, Method: MethodRepair, Optimal: true, Strategy: "repair"}, nil
	}
	if err := ctx.Err(); err != nil {
		return Outcome{}, err
	}
	return Outcome{}, fmt.Errorf("construct: repair search did not converge at ρ(%d)=%d", n, cover.Rho(n))
}

// GreedySweep is the generic greedy constructor: applicable to every
// demand (including empty ones), never claims optimality. It is the
// portfolio's safety net — the one member guaranteed to produce a valid
// covering for any instance.
type GreedySweep struct{}

// Name implements Strategy.
func (GreedySweep) Name() string { return "greedy" }

// Solve implements Strategy.
func (GreedySweep) Solve(ctx context.Context, in instance.Instance, opts Options) (Outcome, error) {
	if in.IsGeneral() {
		return Outcome{}, fmt.Errorf("%w: ring greedy addresses ring instances, %q is general-topology (scc-greedy is its counterpart)", ErrNotApplicable, in.Name)
	}
	n := in.N()
	r, err := ring.New(n)
	if err != nil {
		return Outcome{}, err
	}
	cv, err := GreedyCtx(ctx, r, in.Demand)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{Covering: cv, Method: MethodGreedy, Strategy: "greedy"}, nil
}

// Portfolio races its member strategies concurrently under one parent
// context and returns a deterministic winner. Each member runs with its
// own cancellable sub-context and a private bound fed by every
// higher-priority (lower-index) member that completes: once member i
// finishes with a covering of size s, members j > i only matter if they
// can produce strictly fewer cycles, so their bounds drop to s (exact
// search prunes against it) — and if i's covering is provably optimal,
// they are cancelled outright, since they could at best tie and the tie
// goes to i.
//
// Determinism: the winner is the lowest-cost member, ties broken toward
// the lowest registry index. Cancellation and pruning only ever remove
// results that this rule would discard anyway (a cancelled member ranks
// below an optimal earlier one and cannot beat it strictly), so the
// returned covering is independent of scheduling — with the default
// registry it is byte-identical to the fixed pipeline's output wherever
// the closed forms apply, which the equivalence test pins for every
// demand family × n ∈ 3..16.
type Portfolio struct {
	members []Strategy
}

// NewPortfolio returns a portfolio over the given members in priority
// order; with no arguments it races the full default registry.
func NewPortfolio(members ...Strategy) *Portfolio {
	if len(members) == 0 {
		members = Registry()
	}
	return &Portfolio{members: members}
}

// Name implements Strategy.
func (p *Portfolio) Name() string { return "portfolio" }

// Solve implements Strategy.
func (p *Portfolio) Solve(ctx context.Context, in instance.Instance, opts Options) (Outcome, error) {
	if len(p.members) == 0 {
		return Outcome{}, errors.New("construct: portfolio has no members")
	}
	if err := ctx.Err(); err != nil {
		// Don't start a race for a caller that already gave up — even the
		// memoized paths would be wasted work.
		return Outcome{}, err
	}
	type slot struct {
		out  Outcome
		err  error
		size int
	}
	k := len(p.members)
	results := make([]slot, k)
	bounds := make([]atomic.Int64, k)
	cancels := make([]context.CancelFunc, k)
	ctxs := make([]context.Context, k)
	for i := range p.members {
		bounds[i].Store(math.MaxInt64)
		ctxs[i], cancels[i] = context.WithCancel(ctx)
	}
	defer func() {
		for _, cancel := range cancels {
			cancel()
		}
	}()

	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, m := range p.members {
		wg.Add(1)
		go func(i int, m Strategy) {
			defer wg.Done()
			mopts := opts
			mopts.Bound = &bounds[i]
			// SafeSolve: a member that panics drops out of the race as an
			// errored slot (its goroutine would otherwise kill the process —
			// the pool's recover boundary cannot reach goroutines the
			// portfolio spawns itself).
			out, err := SafeSolve(ctxs[i], m, in, mopts)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				results[i] = slot{err: err}
				return
			}
			size := CoverCost(in, out.Covering)
			results[i] = slot{out: out, size: size}
			for j := i + 1; j < k; j++ {
				casMin(&bounds[j], int64(size))
			}
			if out.Optimal {
				// Nothing beats a provably-ρ(n) covering strictly; lower-
				// index members may still tie and win the tie, so only the
				// higher-index racers are cancelled.
				for j := i + 1; j < k; j++ {
					cancels[j]()
				}
			}
		}(i, m)
	}
	wg.Wait()

	best := -1
	for i := range results {
		if results[i].err != nil || results[i].out.Covering == nil {
			continue
		}
		if best == -1 || results[i].size < results[best].size {
			best = i
		}
	}
	if best == -1 {
		if err := ctx.Err(); err != nil {
			return Outcome{}, err
		}
		errs := make([]error, 0, k)
		for i := range results {
			errs = append(errs, fmt.Errorf("%s: %w", p.members[i].Name(), results[i].err))
		}
		return Outcome{}, fmt.Errorf("construct: no portfolio member produced a covering: %w", errors.Join(errs...))
	}
	return results[best].out, nil
}

// casMin lowers a to v if v is smaller (atomic compare-and-swap loop).
func casMin(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v >= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

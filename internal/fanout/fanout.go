// Package fanout threads a per-job parallelism hint through contexts, so
// nested parallel stages do not multiply. The problem it solves: the
// server's worker pool runs up to GOMAXPROCS jobs at once, and the exact
// search and failure sweeps each default their own worker count to
// GOMAXPROCS *per job* — a busy pool therefore oversubscribes the
// machine by a factor of the pool size. The pool stamps each job's
// context with its fair share of the cores (Share) before running it;
// the parallel primitives read the stamp (Limit) when their explicit
// worker option is unset, and fall back to GOMAXPROCS only when no stamp
// is present (library callers outside any pool keep the old default).
//
// The hint never changes *what* is computed — the exact search and the
// sweep are both deterministic across worker counts — only how many
// goroutines compute it, so stamping is always safe.
package fanout

import "context"

// ctxKey is the private context key for the fan-out limit.
type ctxKey struct{}

// With returns a copy of ctx carrying a fan-out limit of n workers for
// parallel stages below it. n < 1 is clamped to 1 (serial): a stamped
// context always carries a usable limit, so callers can pass a computed
// share without guarding it.
func With(ctx context.Context, n int) context.Context {
	if n < 1 {
		n = 1
	}
	return context.WithValue(ctx, ctxKey{}, n)
}

// Limit reports the fan-out limit stamped on ctx, or 0 when the context
// carries none. Callers treat 0 as "no hint" and apply their own default
// (typically GOMAXPROCS).
func Limit(ctx context.Context) int {
	n, _ := ctx.Value(ctxKey{}).(int)
	return n
}

// Share is the fair per-job worker share for a pool running `running`
// jobs on `cores` cores: cores/running, never below 1. With one running
// job the whole machine is available; under a saturated pool every job
// runs serially instead of stacking GOMAXPROCS goroutines each.
func Share(cores, running int) int {
	if running < 1 {
		running = 1
	}
	s := cores / running
	if s < 1 {
		s = 1
	}
	return s
}

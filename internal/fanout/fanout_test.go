package fanout

import (
	"context"
	"testing"
)

func TestShare(t *testing.T) {
	cases := []struct {
		cores, running, want int
	}{
		{8, 1, 8},  // lone job gets the machine
		{8, 2, 4},  // two jobs split it
		{8, 3, 2},  // integer share, rounded down
		{8, 8, 1},  // saturated pool: serial jobs
		{8, 20, 1}, // oversubscribed queue: still serial, never zero
		{1, 1, 1},  // 1-vCPU host: always serial
		{1, 4, 1},
		{4, 0, 4}, // defensive: "no jobs" counts as one
		{4, -1, 4},
	}
	for _, c := range cases {
		if got := Share(c.cores, c.running); got != c.want {
			t.Errorf("Share(%d, %d) = %d, want %d", c.cores, c.running, got, c.want)
		}
	}
}

func TestWithLimit(t *testing.T) {
	ctx := context.Background()
	if got := Limit(ctx); got != 0 {
		t.Fatalf("unstamped context Limit = %d, want 0", got)
	}
	if got := Limit(With(ctx, 3)); got != 3 {
		t.Fatalf("Limit(With(ctx, 3)) = %d, want 3", got)
	}
	// Sub-serial requests clamp to 1, so a stamped context is always usable.
	if got := Limit(With(ctx, 0)); got != 1 {
		t.Fatalf("Limit(With(ctx, 0)) = %d, want 1", got)
	}
	if got := Limit(With(ctx, -5)); got != 1 {
		t.Fatalf("Limit(With(ctx, -5)) = %d, want 1", got)
	}
	// The innermost stamp wins, as nested pools would expect.
	if got := Limit(With(With(ctx, 4), 2)); got != 2 {
		t.Fatalf("nested stamp Limit = %d, want 2", got)
	}
}

package wdm

import "fmt"

// LinkChannelUse describes occupancy of one (link, subnetwork) pair on the
// working wavelength.
type LinkChannelUse struct {
	Link       int
	Subnetwork int
	Requests   int // requests whose working arc crosses the link
}

// CapacityReport captures the structural capacity facts of a DRC design.
type CapacityReport struct {
	// PerfectWorkingFill is true when, for every subnetwork serving a
	// complete assignment of its cycle's pairs, every ring link carries
	// exactly one request on the working wavelength — the "half the
	// capacity for the demands" remark of the paper: working channels are
	// exactly filled, the other half (the spare wavelength) is reserved
	// whole for protection.
	PerfectWorkingFill bool
	// Overfilled lists any (link, subnetwork) carrying more than one
	// request — impossible for a verified DRC design; non-empty signals a
	// planner bug.
	Overfilled []LinkChannelUse
	// MeanWorkingFill is the average occupancy over links and
	// subnetworks. It is below 1 when the demand does not use every pair
	// of every cycle (partial instances).
	MeanWorkingFill float64
}

// Capacity analyses working-wavelength occupancy: for each subnetwork,
// each demand assigned to it occupies its working arc's links on the
// subnetwork's working wavelength.
func (nw *Network) Capacity() (CapacityReport, error) {
	links := nw.Ring.Links()
	use := make([][]int, len(nw.Subnets))
	for i := range use {
		use[i] = make([]int, links)
	}
	for _, e := range nw.Demand.Edges() {
		idx, ok := nw.Assignment[e]
		if !ok {
			return CapacityReport{}, fmt.Errorf("wdm: demand %v unassigned", e)
		}
		arc, ok := nw.WorkingArc(e.U, e.V)
		if !ok {
			return CapacityReport{}, fmt.Errorf("wdm: no working arc for %v", e)
		}
		for _, l := range arc.Links(nw.Ring) {
			use[idx][l]++
		}
	}
	rep := CapacityReport{PerfectWorkingFill: true}
	total, cells := 0, 0
	for i := range use {
		for l, k := range use[i] {
			total += k
			cells++
			if k != 1 {
				rep.PerfectWorkingFill = false
			}
			if k > 1 {
				rep.Overfilled = append(rep.Overfilled, LinkChannelUse{Link: l, Subnetwork: i, Requests: k})
			}
		}
	}
	if cells > 0 {
		rep.MeanWorkingFill = float64(total) / float64(cells)
	}
	return rep, nil
}

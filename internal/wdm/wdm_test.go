package wdm

import (
	"testing"

	"github.com/cyclecover/cyclecover/internal/construct"
	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/graph"
	"github.com/cyclecover/cyclecover/internal/ring"
	"github.com/cyclecover/cyclecover/internal/routing"
)

func planned(t *testing.T, n int) *Network {
	t.Helper()
	res, err := construct.AllToAll(n)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := Plan(res.Covering, graph.Complete(n))
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestPlanAllToAll(t *testing.T) {
	for _, n := range []int{4, 5, 7, 9, 10} {
		nw := planned(t, n)
		if len(nw.Subnets) != cover.Rho(n) {
			t.Errorf("n=%d: %d subnetworks, want ρ = %d", n, len(nw.Subnets), cover.Rho(n))
		}
		if nw.Wavelengths() != 2*len(nw.Subnets) {
			t.Errorf("n=%d: %d wavelengths, want 2 per subnetwork", n, nw.Wavelengths())
		}
		// Every demand assigned, every assignment covers the pair.
		for _, e := range nw.Demand.Edges() {
			s, ok := nw.SubnetworkFor(e.U, e.V)
			if !ok {
				t.Fatalf("n=%d: demand %v unassigned", n, e)
			}
			if !s.Cycle.CoversPair(e.U, e.V) {
				t.Fatalf("n=%d: demand %v assigned to non-covering cycle %v", n, e, s.Cycle)
			}
		}
	}
}

func TestPlanRejectsIncompleteCovering(t *testing.T) {
	r := ring.MustNew(5)
	cv := cover.NewCovering(r)
	cv.Add(cover.MustCycle(r, 0, 1, 2))
	if _, err := Plan(cv, graph.Complete(5)); err == nil {
		t.Fatal("incomplete covering: want error")
	}
}

func TestWavelengthsDistinct(t *testing.T) {
	nw := planned(t, 7)
	seen := map[Wavelength]bool{}
	for _, s := range nw.Subnets {
		if seen[s.Working] || seen[s.Spare] {
			t.Fatalf("wavelength reuse in subnetwork %d", s.Index)
		}
		seen[s.Working] = true
		seen[s.Spare] = true
		if s.Working == s.Spare {
			t.Fatalf("working and spare must differ in subnetwork %d", s.Index)
		}
	}
}

func TestSubnetworkRoutesTileRing(t *testing.T) {
	nw := planned(t, 9)
	for _, s := range nw.Subnets {
		if !routing.Disjoint(nw.Ring, s.Routes) {
			t.Fatalf("subnetwork %d routes overlap", s.Index)
		}
		total := 0
		for _, rt := range s.Routes {
			total += rt.Arc.Len(nw.Ring)
		}
		if total != nw.Ring.N() {
			t.Fatalf("subnetwork %d routes cover %d links, want %d", s.Index, total, nw.Ring.N())
		}
	}
}

func TestADMCountEqualsTotalVertices(t *testing.T) {
	res, _ := construct.AllToAll(7)
	nw, err := Plan(res.Covering, graph.Complete(7))
	if err != nil {
		t.Fatal(err)
	}
	if nw.ADMCount() != res.Covering.TotalVertices() {
		t.Errorf("ADMs = %d, covering total vertices = %d",
			nw.ADMCount(), res.Covering.TotalVertices())
	}
}

func TestTransitAccounting(t *testing.T) {
	nw := planned(t, 5)
	// For each node: transit + 2·(cycles containing it) = 2·subnets.
	for v := 0; v < 5; v++ {
		onCycle := 0
		for _, s := range nw.Subnets {
			if s.Cycle.Contains(v) {
				onCycle++
			}
		}
		if nw.TransitAt(v)+2*onCycle != nw.Wavelengths() {
			t.Errorf("node %d: transit %d + 2·%d ≠ %d",
				v, nw.TransitAt(v), onCycle, nw.Wavelengths())
		}
	}
	if nw.MaxTransit() > nw.Wavelengths() {
		t.Error("transit cannot exceed channel count")
	}
}

func TestWorkingArcServesRequest(t *testing.T) {
	nw := planned(t, 8)
	for _, e := range nw.Demand.Edges() {
		arc, ok := nw.WorkingArc(e.U, e.V)
		if !ok {
			t.Fatalf("no working arc for %v", e)
		}
		// The arc must connect the request's endpoints.
		if !((arc.From == e.U && arc.To == e.V) || (arc.From == e.V && arc.To == e.U)) {
			t.Fatalf("arc %v does not join %v", arc, e)
		}
		if arc.IsEmpty() {
			t.Fatalf("empty working arc for %v", e)
		}
	}
}

func TestCostModel(t *testing.T) {
	nw5 := planned(t, 5)
	nw9 := planned(t, 9)
	c5 := DefaultCostModel.Cost(nw5)
	c9 := DefaultCostModel.Cost(nw9)
	if c5 <= 0 || c9 <= 0 {
		t.Fatal("costs must be positive")
	}
	if c9 <= c5 {
		t.Errorf("bigger network must cost more: n=5 → %.1f, n=9 → %.1f", c5, c9)
	}
	// Zero model costs zero.
	if (CostModel{}).Cost(nw5) != 0 {
		t.Error("zero model must cost 0")
	}
}

func TestPlanPartialDemand(t *testing.T) {
	// A hub demand planned over a greedy covering.
	r := ring.MustNew(8)
	demand := graph.New(8)
	for v := 1; v < 8; v++ {
		demand.AddEdge(0, v)
	}
	cv := construct.Greedy(r, demand)
	nw, err := Plan(cv, demand)
	if err != nil {
		t.Fatal(err)
	}
	if len(nw.Subnets) != cv.Size() {
		t.Error("one subnetwork per cycle")
	}
}

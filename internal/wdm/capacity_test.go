package wdm

import (
	"testing"

	"github.com/cyclecover/cyclecover/internal/construct"
	"github.com/cyclecover/cyclecover/internal/graph"
)

// TestCapacityPerfectFillOddN: for odd n the optimal covering is a
// partition, so every demand pair is served by its unique cycle and every
// working wavelength is exactly filled on every link — the paper's "half
// of the capacity for the demands" claim made precise.
func TestCapacityPerfectFillOddN(t *testing.T) {
	for _, n := range []int{5, 7, 9, 11, 13} {
		nw := planned(t, n)
		rep, err := nw.Capacity()
		if err != nil {
			t.Fatal(err)
		}
		if !rep.PerfectWorkingFill {
			t.Errorf("n=%d: odd design must exactly fill working channels (mean %f)",
				n, rep.MeanWorkingFill)
		}
		if len(rep.Overfilled) != 0 {
			t.Errorf("n=%d: overfilled cells %v", n, rep.Overfilled)
		}
		if rep.MeanWorkingFill != 1.0 {
			t.Errorf("n=%d: mean fill %f, want 1", n, rep.MeanWorkingFill)
		}
	}
}

// TestCapacityNeverOverfilled: DRC designs can underfill (covering slack)
// but can never put two requests on the same link of the same working
// wavelength.
func TestCapacityNeverOverfilled(t *testing.T) {
	for _, n := range []int{4, 6, 8, 10, 12, 22} {
		nw := planned(t, n)
		rep, err := nw.Capacity()
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Overfilled) != 0 {
			t.Fatalf("n=%d: overfilled %v", n, rep.Overfilled)
		}
		if rep.MeanWorkingFill > 1.0 || rep.MeanWorkingFill <= 0 {
			t.Fatalf("n=%d: mean fill %f out of range", n, rep.MeanWorkingFill)
		}
	}
}

// TestCapacityPartialDemand: with partial demand most channels idle but
// the invariant (≤1 request per link per channel) still holds.
func TestCapacityPartialDemand(t *testing.T) {
	res, err := construct.AllToAll(9)
	if err != nil {
		t.Fatal(err)
	}
	demand := graph.New(9)
	demand.AddEdge(0, 4)
	demand.AddEdge(1, 2)
	nw, err := Plan(res.Covering, demand)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := nw.Capacity()
	if err != nil {
		t.Fatal(err)
	}
	if rep.PerfectWorkingFill {
		t.Error("two demands on a 10-subnetwork design cannot perfectly fill")
	}
	if len(rep.Overfilled) != 0 {
		t.Error("overfill impossible")
	}
	if rep.MeanWorkingFill <= 0 || rep.MeanWorkingFill >= 0.5 {
		t.Errorf("mean fill %f implausible for 2 demands", rep.MeanWorkingFill)
	}
}

// Package wdm models the optical layer the paper plans: a WDM ring whose
// survivable design is a DRC cycle covering. Each cycle of the covering
// becomes an independent subnetwork and is assigned two wavelengths — one
// for normal traffic, one for the spare capacity used after a failure —
// exactly as the paper prescribes ("we will associate a wavelength to each
// cycle (in fact two: one for the normal traffic and one for the spare
// one)").
//
// Because a DRC cycle's working routing tiles the entire ring (its arcs
// partition the links), any two cycles conflict on every link, so
// wavelengths cannot be reused between cycles: the network needs exactly
// 2·(number of cycles) wavelengths. That is the formal content of the
// paper's remark that, on a ring, minimising network cost means minimising
// the number of subnetworks — which is what ρ(n) captures.
package wdm

import (
	"fmt"

	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/graph"
	"github.com/cyclecover/cyclecover/internal/ring"
	"github.com/cyclecover/cyclecover/internal/routing"
)

// Wavelength identifies one wavelength channel on the ring.
type Wavelength int

// Subnetwork is one protected cycle of the design: a cycle of the
// covering, its two wavelengths, and the working routes of the requests it
// carries.
type Subnetwork struct {
	Index   int
	Cycle   cover.Cycle
	Working Wavelength
	Spare   Wavelength
	Routes  []routing.Route // canonical working routing; arcs tile the ring
}

// Network is a planned survivable WDM ring: the physical ring, the demand
// it serves, and one subnetwork per covering cycle. Every demand pair is
// assigned to exactly one subnetwork (the first cycle covering it).
type Network struct {
	Ring        ring.Ring
	Demand      *graph.Graph
	Subnets     []Subnetwork
	Assignment  map[graph.Edge]int // demand pair → subnetwork index
	unprotected []graph.Edge
}

// Plan builds the network design for a demand graph and a covering. It
// fails if the covering does not cover the demand or violates the DRC.
func Plan(cv *cover.Covering, demand *graph.Graph) (*Network, error) {
	if err := cover.Verify(cv, demand); err != nil {
		return nil, fmt.Errorf("wdm: covering rejected: %w", err)
	}
	nw := &Network{
		Ring:       cv.Ring,
		Demand:     demand,
		Assignment: make(map[graph.Edge]int),
	}
	for i, c := range cv.Cycles {
		tour := routing.Tour(c.Vertices())
		routes, ok := tour.CanonicalRouting(cv.Ring)
		if !ok {
			return nil, fmt.Errorf("wdm: cycle %v is not DRC-routable", c)
		}
		nw.Subnets = append(nw.Subnets, Subnetwork{
			Index:   i,
			Cycle:   c,
			Working: Wavelength(2 * i),
			Spare:   Wavelength(2*i + 1),
			Routes:  routes,
		})
	}
	// Assign each demand pair to the first subnetwork covering it.
	for _, e := range demand.Edges() {
		assigned := false
		for i, c := range cv.Cycles {
			if c.CoversPair(e.U, e.V) {
				nw.Assignment[e] = i
				assigned = true
				break
			}
		}
		if !assigned {
			// Unreachable given Verify above; kept as a hard invariant.
			nw.unprotected = append(nw.unprotected, e)
		}
	}
	if len(nw.unprotected) > 0 {
		return nil, fmt.Errorf("wdm: %d demands unassigned despite verified covering", len(nw.unprotected))
	}
	return nw, nil
}

// Wavelengths returns the number of wavelength channels the design needs:
// two per subnetwork (working + spare), with no reuse possible since every
// subnetwork's routing tiles the whole ring.
func (nw *Network) Wavelengths() int { return 2 * len(nw.Subnets) }

// ADMCount returns the number of add-drop multiplexers: one per
// (node, subnetwork) incidence — a node needs an ADM on a subnetwork's
// wavelength exactly when it terminates traffic there, i.e. when it lies
// on the cycle. This equals the covering's total vertex count, the
// objective of Eilam–Moran–Zaks [3] and Gerstel–Lin–Sasaki [4]; the
// comparison experiment C2 contrasts it with the paper's cycle-count
// objective.
func (nw *Network) ADMCount() int {
	t := 0
	for _, s := range nw.Subnets {
		t += s.Cycle.Len()
	}
	return t
}

// TransitAt returns the number of wavelength channels passing through node
// v purely optically: both wavelengths of every subnetwork whose cycle
// does not include v (the working path and its spare traverse every node
// of the ring, but only cycle members add/drop).
func (nw *Network) TransitAt(v int) int {
	t := 0
	for _, s := range nw.Subnets {
		if !s.Cycle.Contains(v) {
			t += 2
		}
	}
	return t
}

// MaxTransit returns the maximum optical transit load over all nodes — a
// driver of optical-node cost in the paper's cost discussion.
func (nw *Network) MaxTransit() int {
	m := 0
	for v := 0; v < nw.Ring.N(); v++ {
		if t := nw.TransitAt(v); t > m {
			m = t
		}
	}
	return m
}

// SubnetworkFor returns the subnetwork serving the request {u,v}; ok is
// false when the pair is not a demand.
func (nw *Network) SubnetworkFor(u, v int) (Subnetwork, bool) {
	i, ok := nw.Assignment[graph.NewEdge(u, v)]
	if !ok {
		return Subnetwork{}, false
	}
	return nw.Subnets[i], true
}

// WorkingArc returns the arc carrying the request {u,v} in normal
// operation: the canonical routing arc of its subnetwork.
func (nw *Network) WorkingArc(u, v int) (ring.Arc, bool) {
	s, ok := nw.SubnetworkFor(u, v)
	if !ok {
		return ring.Arc{}, false
	}
	e := graph.NewEdge(u, v)
	for _, rt := range s.Routes {
		if rt.Request == e {
			return rt.Arc, true
		}
	}
	return ring.Arc{}, false
}

// CostModel is the linear form of the paper's "very complex" cost
// function: per-wavelength line cost, per-ADM equipment cost, per-transit
// optical port cost, and per-link-per-wavelength amplification cost.
type CostModel struct {
	PerWavelength float64
	PerADM        float64
	PerTransit    float64
	PerLinkChan   float64 // amplification/regeneration per link per channel
}

// DefaultCostModel uses unit weights that reflect the paper's emphasis:
// wavelengths and ADMs dominate, transit and amplification contribute.
var DefaultCostModel = CostModel{
	PerWavelength: 10,
	PerADM:        4,
	PerTransit:    1,
	PerLinkChan:   0.5,
}

// Cost evaluates the model on a planned network.
func (m CostModel) Cost(nw *Network) float64 {
	totalTransit := 0
	for v := 0; v < nw.Ring.N(); v++ {
		totalTransit += nw.TransitAt(v)
	}
	channels := float64(nw.Wavelengths() * nw.Ring.Links())
	return m.PerWavelength*float64(nw.Wavelengths()) +
		m.PerADM*float64(nw.ADMCount()) +
		m.PerTransit*float64(totalTransit) +
		m.PerLinkChan*channels
}

package instance

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/cyclecover/cyclecover/internal/graph"
)

// DeltaKind enumerates the bounded instance changes a Delta can express.
type DeltaKind string

// The supported change kinds. All act on the logical demand layer — a
// physical single-link failure needs no replanning at all (the covering's
// protection handles it, see package survive); Fail models the logical
// consequence of losing a lightpath's endpoints permanently.
const (
	// DeltaAdd adds one request between U and V (multiplicity +1).
	DeltaAdd DeltaKind = "add"
	// DeltaRemove removes one request between U and V (multiplicity −1);
	// removing from an absent pair is invalid.
	DeltaRemove DeltaKind = "remove"
	// DeltaFail drops the pair {U, V} entirely, whatever its
	// multiplicity: the logical link has failed and is no longer served.
	DeltaFail DeltaKind = "fail"
	// DeltaSet sets the pair's multiplicity to M exactly.
	DeltaSet DeltaKind = "set"
)

// Delta is one bounded change to an instance's demand: the unit of
// incremental replanning. Apply derives the child demand; the planner
// then repairs the parent covering toward it instead of replanning cold.
type Delta struct {
	Kind DeltaKind
	U, V int
	// M is the target multiplicity; meaningful for DeltaSet only.
	M int
}

// ParseDelta parses the compact delta spec shared by the CLI and the
// cycled service:
//
//	add:<u>:<v>      one more request between u and v
//	remove:<u>:<v>   one request fewer between u and v
//	fail:<u>:<v>     the pair is dropped entirely
//	set:<u>:<v>:<m>  the pair's multiplicity becomes exactly m
//
// Vertex bounds are checked against the instance at Apply time, not
// here: the spec alone does not know n.
func ParseDelta(spec string) (Delta, error) {
	parts := strings.Split(spec, ":")
	bad := func() (Delta, error) {
		return Delta{}, fmt.Errorf("bad delta spec %q: want add:<u>:<v>, remove:<u>:<v>, fail:<u>:<v>, or set:<u>:<v>:<m>", spec)
	}
	if len(parts) < 3 {
		return bad()
	}
	u, err1 := strconv.Atoi(parts[1])
	v, err2 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil {
		return bad()
	}
	d := Delta{U: u, V: v}
	switch DeltaKind(parts[0]) {
	case DeltaAdd, DeltaRemove, DeltaFail:
		if len(parts) != 3 {
			return bad()
		}
		d.Kind = DeltaKind(parts[0])
	case DeltaSet:
		if len(parts) != 4 {
			return bad()
		}
		m, err := strconv.Atoi(parts[3])
		if err != nil || m < 0 || m > MaxParseLambda {
			return Delta{}, fmt.Errorf("bad delta spec %q: multiplicity must be an integer in [0, %d]", spec, MaxParseLambda)
		}
		d.Kind = DeltaSet
		d.M = m
	default:
		return bad()
	}
	return d, nil
}

// String renders the delta in its spec form.
func (d Delta) String() string {
	if d.Kind == DeltaSet {
		return fmt.Sprintf("%s:%d:%d:%d", d.Kind, d.U, d.V, d.M)
	}
	return fmt.Sprintf("%s:%d:%d", d.Kind, d.U, d.V)
}

// Apply derives the child demand: a fresh copy of parent with the delta
// applied. The parent is never mutated. Errors describe why the delta is
// invalid against this parent (endpoints out of range, removal from an
// absent pair) — the server's 400 table relies on these being errors
// rather than silent no-ops.
func (d Delta) Apply(parent *graph.Graph) (*graph.Graph, error) {
	if parent == nil {
		return nil, fmt.Errorf("instance: delta %s applied to nil demand", d)
	}
	n := parent.N()
	if d.U < 0 || d.U >= n || d.V < 0 || d.V >= n {
		return nil, fmt.Errorf("instance: delta %s endpoints outside [0, %d)", d, n)
	}
	if d.U == d.V {
		return nil, fmt.Errorf("instance: delta %s is a self-request", d)
	}
	child := parent.Clone()
	switch d.Kind {
	case DeltaAdd:
		if child.Mult(d.U, d.V) >= MaxParseLambda {
			return nil, fmt.Errorf("instance: delta %s exceeds maximum multiplicity %d", d, MaxParseLambda)
		}
		child.AddEdge(d.U, d.V)
	case DeltaRemove:
		if !child.RemoveEdge(d.U, d.V) {
			return nil, fmt.Errorf("instance: delta %s removes an absent pair", d)
		}
	case DeltaFail:
		for child.RemoveEdge(d.U, d.V) {
		}
	case DeltaSet:
		cur := child.Mult(d.U, d.V)
		switch {
		case d.M > cur:
			child.AddEdgeMulti(d.U, d.V, d.M-cur)
		case d.M < cur:
			for i := 0; i < cur-d.M; i++ {
				child.RemoveEdge(d.U, d.V)
			}
		}
	default:
		return nil, fmt.Errorf("instance: unknown delta kind %q", d.Kind)
	}
	return child, nil
}

// ApplyTo derives the child instance from a parent instance, naming it
// after the parent and the delta.
func (d Delta) ApplyTo(parent Instance) (Instance, error) {
	child, err := d.Apply(parent.Demand)
	if err != nil {
		return Instance{}, err
	}
	return Instance{Name: fmt.Sprintf("%s + %s", parent.Name, d), Demand: child}, nil
}

package instance

import (
	"strings"
	"testing"
)

func TestGeneralAdmission(t *testing.T) {
	// Each rejected host names why no cycle cover can exist.
	for _, tc := range []struct {
		name string
		spec string
		want string // substring of the admission error
	}{
		{"bridge", "edges:0-1,1-2,2-0,2-3,3-4,4-5,5-3", "bridge"},
		{"disconnected", "edges:0-1,1-2,2-0,3-4,4-5,5-3", "disconnected"},
		{"isolated vertex", "edges:0-1,1-2,2-0", "disconnected"},
		{"self-loop", "edges:0-0,1-2", "self-loop"},
		{"out of range", "edges:0-9", "outside"},
		{"empty", "edges:", "empty"},
		{"malformed", "edges:0-1-2", "bad edge"},
	} {
		n := 6
		if tc.name == "isolated vertex" {
			n = 4
		}
		if _, err := Parse(n, tc.spec); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Parse(%d, %q) err = %v, want substring %q", tc.name, n, tc.spec, err, tc.want)
		}
	}

	// A doubled bridge is not a bridge: parallel edges are admissible.
	in, err := Parse(6, "edges:0-1,1-2,2-0,2-3,2-3,3-4,4-5,5-3")
	if err != nil {
		t.Fatalf("doubled bridge rejected: %v", err)
	}
	if !in.IsGeneral() || in.Host.M() != 8 {
		t.Fatalf("general instance malformed: %+v", in)
	}
}

func TestParseGeneralFamilies(t *testing.T) {
	for _, tc := range []struct {
		spec string
		n    int
		m    int
	}{
		{"petersen", 10, 15},
		{"blanusa:1", 18, 27},
		{"blanusa:2", 18, 27},
		{"flower:5", 20, 30},
		{"flower:7", 28, 42},
		{"prism:4", 8, 12},
		{"cubic:7", 12, 18},
		{"edges:0-1,1-2,2-3,3-0,0-2,1-3", 4, 6},
		{"adj:1,2,3;0,2,3;0,1,3;0,1,2", 4, 6},
	} {
		in, err := Parse(tc.n, tc.spec)
		if err != nil {
			t.Fatalf("Parse(%d, %q): %v", tc.n, tc.spec, err)
		}
		if !in.IsGeneral() {
			t.Fatalf("%q: not marked general", tc.spec)
		}
		if in.N() != tc.n || in.Host.M() != tc.m {
			t.Fatalf("%q: n=%d m=%d, want %d/%d", tc.spec, in.N(), in.Host.M(), tc.n, tc.m)
		}
		if in.Demand != in.Host {
			t.Fatalf("%q: Demand must alias Host for general instances", tc.spec)
		}
	}

	// Fixed-size families reject a mismatched ring size instead of
	// silently overriding it.
	if _, err := Parse(12, "petersen"); err == nil {
		t.Fatal("petersen with n=12 accepted")
	}
	if _, err := Parse(10, "flower:5"); err == nil {
		t.Fatal("flower:5 with n=10 accepted")
	}
	// Malformed family parameters.
	for _, spec := range []string{"blanusa:3", "blanusa:x", "flower:4", "flower:1", "prism:2", "cubic:zzz"} {
		if _, err := Parse(20, spec); err == nil {
			t.Fatalf("Parse(%q) accepted", spec)
		}
	}
	// Ring families still parse: the general dispatch must not shadow them.
	in, err := Parse(7, "alltoall")
	if err != nil || in.IsGeneral() {
		t.Fatalf("alltoall broken after general dispatch: %v %+v", err, in)
	}
}

func TestParseAdjacencySymmetry(t *testing.T) {
	// Asymmetric in both directions: listed only by the lower endpoint,
	// and only by the higher.
	if _, err := ParseAdjacency("1,2;0,2;0,1"); err != nil {
		t.Fatalf("triangle rejected: %v", err)
	}
	if _, err := ParseAdjacency("1,2;0;0,1"); err == nil {
		t.Fatal("row 2 lists 1 unreciprocated — accepted")
	}
	if _, err := ParseAdjacency("1;0,2;1,0"); err == nil {
		t.Fatal("row 2 lists 0 unreciprocated — accepted")
	}
	if _, err := ParseAdjacency("1,2;0,2;0,1,0"); err == nil {
		t.Fatal("multiplicity mismatch accepted")
	}
	if _, err := ParseAdjacency("1;0"); err == nil {
		t.Fatal("two-row adjacency accepted")
	}
}

// FuzzParseAdjacency feeds arbitrary strings through both text parse
// formats: any outcome but a clean error or a valid general instance —
// in particular any panic from AddEdge on unvalidated input — is a bug.
func FuzzParseAdjacency(f *testing.F) {
	f.Add("1,2;0,2;0,1")
	f.Add("1;0,2;1,0")
	f.Add("0;;;")
	f.Add("-1;0")
	f.Add("1,1,1;0,0,0;;")
	f.Add("9999999999999999999;")
	f.Fuzz(func(t *testing.T, body string) {
		if in, err := ParseAdjacency(body); err == nil {
			if !in.IsGeneral() || in.Host.N() < MinGeneralN {
				t.Fatalf("ParseAdjacency(%q) returned malformed instance %+v", body, in)
			}
			if !in.Host.Connected(false) || !in.Host.Bridgeless() {
				t.Fatalf("ParseAdjacency(%q) admitted an uncoverable host", body)
			}
		}
		// The edge-list format shares the validation layer; drive it with
		// the same corpus (different grammar, same no-panic contract).
		if in, err := ParseEdgeList(8, body); err == nil {
			if !in.IsGeneral() || !in.Host.Bridgeless() {
				t.Fatalf("ParseEdgeList(%q) admitted an uncoverable host", body)
			}
		}
	})
}

package instance

import (
	"strings"
	"testing"

	"github.com/cyclecover/cyclecover/internal/graph"
)

func TestParseDeltaTable(t *testing.T) {
	good := []struct {
		spec string
		want Delta
	}{
		{"add:0:4", Delta{Kind: DeltaAdd, U: 0, V: 4}},
		{"remove:3:1", Delta{Kind: DeltaRemove, U: 3, V: 1}},
		{"fail:2:7", Delta{Kind: DeltaFail, U: 2, V: 7}},
		{"set:5:6:0", Delta{Kind: DeltaSet, U: 5, V: 6, M: 0}},
		{"set:5:6:3", Delta{Kind: DeltaSet, U: 5, V: 6, M: 3}},
	}
	for _, c := range good {
		d, err := ParseDelta(c.spec)
		if err != nil {
			t.Errorf("ParseDelta(%q): %v", c.spec, err)
			continue
		}
		if d != c.want {
			t.Errorf("ParseDelta(%q) = %+v, want %+v", c.spec, d, c.want)
		}
		// String is the inverse of ParseDelta on canonical specs.
		if d.String() != c.spec {
			t.Errorf("ParseDelta(%q).String() = %q", c.spec, d.String())
		}
	}

	bad := []string{
		"", "add", "add:1", "add:1:2:3", "tweak:1:2", "add:x:2", "add:1:y",
		"set:1:2", "set:1:2:x", "set:1:2:-1", "set:1:2:1048577", "fail:1:2:3",
	}
	for _, spec := range bad {
		if _, err := ParseDelta(spec); err == nil {
			t.Errorf("ParseDelta(%q) accepted, want error", spec)
		}
	}
}

func TestDeltaApply(t *testing.T) {
	parent := graph.Complete(6) // every pair once

	t.Run("add increments one pair only", func(t *testing.T) {
		child, err := Delta{Kind: DeltaAdd, U: 0, V: 3}.Apply(parent)
		if err != nil {
			t.Fatal(err)
		}
		if got := child.Mult(0, 3); got != 2 {
			t.Fatalf("Mult(0,3) = %d, want 2", got)
		}
		if child.M() != parent.M()+1 {
			t.Fatalf("child M = %d, want %d", child.M(), parent.M()+1)
		}
		if parent.Mult(0, 3) != 1 {
			t.Fatal("Apply mutated the parent")
		}
	})

	t.Run("remove decrements, errors when absent", func(t *testing.T) {
		child, err := Delta{Kind: DeltaRemove, U: 1, V: 4}.Apply(parent)
		if err != nil {
			t.Fatal(err)
		}
		if child.Mult(1, 4) != 0 || child.M() != parent.M()-1 {
			t.Fatalf("remove bookkeeping: mult=%d M=%d", child.Mult(1, 4), child.M())
		}
		if _, err := (Delta{Kind: DeltaRemove, U: 1, V: 4}).Apply(child); err == nil {
			t.Fatal("removing an absent pair must error")
		}
	})

	t.Run("fail drops whole multiplicity, absent pair is a no-op", func(t *testing.T) {
		multi := graph.New(6)
		multi.AddEdgeMulti(0, 1, 3)
		child, err := Delta{Kind: DeltaFail, U: 0, V: 1}.Apply(multi)
		if err != nil {
			t.Fatal(err)
		}
		if child.Mult(0, 1) != 0 || child.M() != 0 {
			t.Fatalf("fail left mult=%d M=%d", child.Mult(0, 1), child.M())
		}
		// Failing an already-absent pair models "the link is gone": valid.
		if _, err := (Delta{Kind: DeltaFail, U: 0, V: 1}).Apply(child); err != nil {
			t.Fatalf("failing an absent pair: %v", err)
		}
	})

	t.Run("set reaches the target from either side", func(t *testing.T) {
		for _, m := range []int{0, 1, 4} {
			child, err := Delta{Kind: DeltaSet, U: 2, V: 5, M: m}.Apply(parent)
			if err != nil {
				t.Fatal(err)
			}
			if got := child.Mult(2, 5); got != m {
				t.Fatalf("set:%d gave mult %d", m, got)
			}
		}
	})

	t.Run("invalid endpoints", func(t *testing.T) {
		for _, d := range []Delta{
			{Kind: DeltaAdd, U: -1, V: 2},
			{Kind: DeltaAdd, U: 0, V: 6},
			{Kind: DeltaAdd, U: 3, V: 3},
		} {
			if _, err := d.Apply(parent); err == nil {
				t.Errorf("%s accepted, want error", d)
			}
		}
	})

	t.Run("nil parent", func(t *testing.T) {
		if _, err := (Delta{Kind: DeltaAdd, U: 0, V: 1}).Apply(nil); err == nil {
			t.Fatal("nil parent accepted")
		}
	})
}

func TestDeltaApplyTo(t *testing.T) {
	parent := Instance{Name: "all-to-all K_6", Demand: graph.Complete(6)}
	child, err := Delta{Kind: DeltaAdd, U: 0, V: 2}.ApplyTo(parent)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(child.Name, parent.Name) || !strings.Contains(child.Name, "add:0:2") {
		t.Fatalf("child name %q lacks provenance", child.Name)
	}
	if child.N() != 6 || child.Demand.M() != parent.Demand.M()+1 {
		t.Fatalf("child shape wrong: n=%d M=%d", child.N(), child.Demand.M())
	}
}

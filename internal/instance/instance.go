// Package instance models the logical layer of the paper: the family of
// symmetric communication requests ("instance of communications") carried
// by the physical ring. Each instance is an undirected logical multigraph
// on the ring's vertices. The paper's central case is the total exchange
// (all-to-all) instance K_n; λK_n and general logical graphs appear in its
// extensions section.
package instance

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"github.com/cyclecover/cyclecover/internal/graph"
)

// Instance is a named demand set over n vertices. Ring instances carry
// only Demand, interpreted as logical requests routed on the physical
// ring. General-topology instances (see general.go) additionally carry
// Host, an arbitrary bridgeless graph; there Demand aliases Host —
// every host edge must be covered by a cycle of the host — and the
// objective is the total cover length rather than the cycle count.
type Instance struct {
	Name   string
	Demand *graph.Graph
	Host   *graph.Graph
}

// N returns the number of vertices. A zero-value Instance (e.g. what
// Parse returns alongside an error) has no demand graph and reports 0.
func (in Instance) N() int { return in.Demand.N() }

// Requests returns the number of demand edges counted with multiplicity;
// 0 for a zero-value Instance.
func (in Instance) Requests() int { return in.Demand.M() }

// AllToAll is the total exchange instance: every pair communicates, the
// logical graph is K_n.
func AllToAll(n int) Instance {
	return Instance{Name: fmt.Sprintf("all-to-all K_%d", n), Demand: graph.Complete(n)}
}

// Lambda is the λK_n instance from the paper's extensions: every pair
// demands λ parallel connections.
func Lambda(n, lambda int) Instance {
	return Instance{
		Name:   fmt.Sprintf("%dK_%d", lambda, n),
		Demand: graph.LambdaComplete(n, lambda),
	}
}

// Neighbors is the adjacency instance: each node talks only to its two
// ring neighbours (a pure metro-ring traffic pattern).
func Neighbors(n int) Instance {
	return Instance{Name: fmt.Sprintf("ring neighbours C_%d", n), Demand: graph.Cycle(n)}
}

// Hub is the hubbed instance: every node communicates with a single hub
// (typical access-network traffic where one office aggregates upstream).
func Hub(n, hub int) Instance {
	g := graph.New(n)
	for v := 0; v < n; v++ {
		if v != hub {
			g.AddEdge(hub, v)
		}
	}
	return Instance{Name: fmt.Sprintf("hub@%d on %d nodes", hub, n), Demand: g}
}

// RandomSymmetric samples each pair independently with probability
// density, using the given seed for reproducibility. Finite densities
// outside [0, 1] are clamped; a non-finite density (NaN, ±Inf) is an
// error — NaN in particular compares false against both clamp bounds
// and would otherwise silently yield an empty demand.
func RandomSymmetric(n int, density float64, seed int64) (Instance, error) {
	if math.IsNaN(density) || math.IsInf(density, 0) {
		return Instance{}, fmt.Errorf("instance: random density must be a finite number in [0, 1], got %v", density)
	}
	if density < 0 {
		density = 0
	}
	if density > 1 {
		density = 1
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < density {
				g.AddEdge(u, v)
			}
		}
	}
	return Instance{
		Name:   fmt.Sprintf("random(n=%d, d=%.2f, seed=%d)", n, density, seed),
		Demand: g,
	}, nil
}

// MaxParseLambda bounds the λ accepted by Parse. Untrusted specs reach
// Parse (the cycled service feeds it query parameters), and an absurd λ
// would overflow the demand's edge count — m = λ·n(n−1)/2 wrapping
// negative defeats any downstream size guard — before any construction
// bound can apply.
const MaxParseLambda = 1 << 20

// Parse builds an instance from a compact demand spec, the shared wire
// format of the CLI tools and the cycled service:
//
//	alltoall                 the total exchange K_n
//	lambda:<k>               λK_n with λ = k ≥ 1
//	hub:<node>               all nodes to one hub in [0, n)
//	neighbors                ring-adjacent pairs only
//	random:<density>:<seed>  reproducible random symmetric demand
//
// plus the general-topology families documented on ParseGeneral
// (petersen, blanusa:<1|2>, flower:<k>, prism:<k>, cubic:<seed>,
// edges:<list>, adj:<rows>), which return instances covered against
// their own host graph instead of routed on the ring.
func Parse(n int, spec string) (Instance, error) {
	if in, ok, err := ParseGeneral(n, spec); ok {
		return in, err
	}
	switch {
	case spec == "alltoall":
		return AllToAll(n), nil
	case spec == "neighbors":
		return Neighbors(n), nil
	case strings.HasPrefix(spec, "lambda:"):
		k, err := strconv.Atoi(strings.TrimPrefix(spec, "lambda:"))
		if err != nil || k < 1 || k > MaxParseLambda {
			return Instance{}, fmt.Errorf("bad lambda spec %q: want lambda:<k> with integer k in [1, %d]", spec, MaxParseLambda)
		}
		return Lambda(n, k), nil
	case strings.HasPrefix(spec, "hub:"):
		h, err := strconv.Atoi(strings.TrimPrefix(spec, "hub:"))
		if err != nil || h < 0 || h >= n {
			return Instance{}, fmt.Errorf("bad hub spec %q: want hub:<node> with integer node in [0, %d)", spec, n)
		}
		return Hub(n, h), nil
	case strings.HasPrefix(spec, "random:"):
		parts := strings.Split(spec, ":")
		if len(parts) != 3 {
			return Instance{}, fmt.Errorf("bad random spec %q: want random:<density>:<seed> with density in [0, 1] and integer seed", spec)
		}
		d, err1 := strconv.ParseFloat(parts[1], 64)
		s, err2 := strconv.ParseInt(parts[2], 10, 64)
		if err1 != nil || err2 != nil {
			return Instance{}, fmt.Errorf("bad random spec %q: want random:<density>:<seed> with density in [0, 1] and integer seed", spec)
		}
		// ParseFloat accepts "NaN" and "Inf"; those must not reach the
		// sampler, whose clamps NaN would slip straight through.
		if math.IsNaN(d) || math.IsInf(d, 0) {
			return Instance{}, fmt.Errorf("bad random spec %q: density must be a finite number in [0, 1]", spec)
		}
		return RandomSymmetric(n, d, s)
	default:
		return Instance{}, fmt.Errorf("unknown demand %q: want alltoall, lambda:<k>, hub:<node>, neighbors, or random:<density>:<seed> — or a general-topology family (petersen, blanusa:<1|2>, flower:<k>, prism:<k>, cubic:<seed>, edges:<u-v,...>, adj:<nbrs;...>)", spec)
	}
}

// FromPairs builds an instance from explicit vertex pairs; repeated pairs
// accumulate multiplicity.
func FromPairs(n int, pairs [][2]int) (Instance, error) {
	g := graph.New(n)
	for _, p := range pairs {
		u, v := p[0], p[1]
		if u < 0 || u >= n || v < 0 || v >= n {
			return Instance{}, fmt.Errorf("instance: pair (%d,%d) outside [0,%d)", u, v, n)
		}
		if u == v {
			return Instance{}, fmt.Errorf("instance: self-request at node %d", u)
		}
		g.AddEdge(u, v)
	}
	return Instance{Name: fmt.Sprintf("custom (%d requests)", g.M()), Demand: g}, nil
}

package instance

import (
	"testing"
)

func TestAllToAll(t *testing.T) {
	in := AllToAll(7)
	if in.N() != 7 || in.Requests() != 21 {
		t.Errorf("K7: N=%d requests=%d", in.N(), in.Requests())
	}
	if in.Name == "" {
		t.Error("instances must be named")
	}
}

func TestLambda(t *testing.T) {
	in := Lambda(5, 3)
	if in.Requests() != 30 {
		t.Errorf("3K5: requests = %d, want 30", in.Requests())
	}
	if in.Demand.Multiplicity(0, 4) != 3 {
		t.Errorf("3K5: multiplicity = %d, want 3", in.Demand.Multiplicity(0, 4))
	}
}

func TestNeighbors(t *testing.T) {
	in := Neighbors(6)
	if in.Requests() != 6 {
		t.Errorf("C6 demand: %d requests, want 6", in.Requests())
	}
	if !in.Demand.HasEdge(5, 0) {
		t.Error("neighbour demand must wrap")
	}
	if in.Demand.HasEdge(0, 2) {
		t.Error("no chord demands in the neighbour instance")
	}
}

func TestHub(t *testing.T) {
	in := Hub(6, 2)
	if in.Requests() != 5 {
		t.Errorf("hub: %d requests, want 5", in.Requests())
	}
	for v := 0; v < 6; v++ {
		if v == 2 {
			continue
		}
		if !in.Demand.HasEdge(2, v) {
			t.Errorf("hub must reach node %d", v)
		}
	}
	if in.Demand.Degree(2) != 5 {
		t.Errorf("hub degree = %d, want 5", in.Demand.Degree(2))
	}
}

func TestRandomSymmetricReproducible(t *testing.T) {
	a := RandomSymmetric(12, 0.4, 7)
	b := RandomSymmetric(12, 0.4, 7)
	if a.Requests() != b.Requests() {
		t.Fatal("same seed must give same instance")
	}
	ea, eb := a.Demand.Edges(), b.Demand.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("same seed must give same edges")
		}
	}
	c := RandomSymmetric(12, 0.4, 8)
	if c.Requests() == a.Requests() {
		// Not impossible, but the edge sets should differ.
		same := true
		ec := c.Demand.Edges()
		for i := range ea {
			if i >= len(ec) || ea[i] != ec[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical instances")
		}
	}
}

func TestRandomSymmetricDensityClamp(t *testing.T) {
	if got := RandomSymmetric(8, -1, 1).Requests(); got != 0 {
		t.Errorf("density<0: %d requests, want 0", got)
	}
	if got := RandomSymmetric(8, 2, 1).Requests(); got != 28 {
		t.Errorf("density>1: %d requests, want all 28", got)
	}
}

func TestFromPairs(t *testing.T) {
	in, err := FromPairs(5, [][2]int{{0, 2}, {2, 0}, {1, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if in.Demand.Multiplicity(0, 2) != 2 {
		t.Errorf("repeated pair must accumulate multiplicity, got %d", in.Demand.Multiplicity(0, 2))
	}
	if _, err := FromPairs(5, [][2]int{{0, 7}}); err == nil {
		t.Error("out-of-range pair: want error")
	}
	if _, err := FromPairs(5, [][2]int{{3, 3}}); err == nil {
		t.Error("self request: want error")
	}
}

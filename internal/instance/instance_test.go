package instance

import (
	"math"
	"strings"
	"testing"
)

func TestAllToAll(t *testing.T) {
	in := AllToAll(7)
	if in.N() != 7 || in.Requests() != 21 {
		t.Errorf("K7: N=%d requests=%d", in.N(), in.Requests())
	}
	if in.Name == "" {
		t.Error("instances must be named")
	}
}

func TestLambda(t *testing.T) {
	in := Lambda(5, 3)
	if in.Requests() != 30 {
		t.Errorf("3K5: requests = %d, want 30", in.Requests())
	}
	if in.Demand.Multiplicity(0, 4) != 3 {
		t.Errorf("3K5: multiplicity = %d, want 3", in.Demand.Multiplicity(0, 4))
	}
}

func TestNeighbors(t *testing.T) {
	in := Neighbors(6)
	if in.Requests() != 6 {
		t.Errorf("C6 demand: %d requests, want 6", in.Requests())
	}
	if !in.Demand.HasEdge(5, 0) {
		t.Error("neighbour demand must wrap")
	}
	if in.Demand.HasEdge(0, 2) {
		t.Error("no chord demands in the neighbour instance")
	}
}

func TestHub(t *testing.T) {
	in := Hub(6, 2)
	if in.Requests() != 5 {
		t.Errorf("hub: %d requests, want 5", in.Requests())
	}
	for v := 0; v < 6; v++ {
		if v == 2 {
			continue
		}
		if !in.Demand.HasEdge(2, v) {
			t.Errorf("hub must reach node %d", v)
		}
	}
	if in.Demand.Degree(2) != 5 {
		t.Errorf("hub degree = %d, want 5", in.Demand.Degree(2))
	}
}

func TestRandomSymmetricReproducible(t *testing.T) {
	a, _ := RandomSymmetric(12, 0.4, 7)
	b, _ := RandomSymmetric(12, 0.4, 7)
	if a.Requests() != b.Requests() {
		t.Fatal("same seed must give same instance")
	}
	ea, eb := a.Demand.Edges(), b.Demand.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("same seed must give same edges")
		}
	}
	c, _ := RandomSymmetric(12, 0.4, 8)
	if c.Requests() == a.Requests() {
		// Not impossible, but the edge sets should differ.
		same := true
		ec := c.Demand.Edges()
		for i := range ea {
			if i >= len(ec) || ea[i] != ec[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical instances")
		}
	}
}

func TestRandomSymmetricDensityClamp(t *testing.T) {
	lo, err := RandomSymmetric(8, -1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := lo.Requests(); got != 0 {
		t.Errorf("density<0: %d requests, want 0", got)
	}
	hi, err := RandomSymmetric(8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := hi.Requests(); got != 28 {
		t.Errorf("density>1: %d requests, want all 28", got)
	}
}

func TestRandomSymmetricRejectsNonFinite(t *testing.T) {
	for _, d := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := RandomSymmetric(8, d, 1); err == nil {
			t.Errorf("density %v: want error, got none", d)
		}
	}
}

// TestParseRejectsNonFiniteDensity: strconv.ParseFloat happily accepts
// "NaN" and "Inf", so the parser must reject them itself.
func TestParseRejectsNonFiniteDensity(t *testing.T) {
	for _, spec := range []string{"random:NaN:1", "random:Inf:1", "random:-Inf:1", "random:+Inf:7"} {
		if _, err := Parse(9, spec); err == nil {
			t.Errorf("Parse(9, %q): want error, got none", spec)
		}
	}
}

// TestParseErrorsNameValidRanges pins the error-message contract: every
// spec rejection tells the caller what would have been accepted.
func TestParseErrorsNameValidRanges(t *testing.T) {
	cases := []struct {
		spec string
		want string // substring the error must carry
	}{
		{"hub:9", "[0, 9)"},
		{"hub:-1", "[0, 9)"},
		{"hub:x", "hub:<node>"},
		{"lambda:0", "[1, 1048576]"},
		{"lambda:9999999999", "[1, 1048576]"},
		{"lambda:x", "lambda:<k>"},
		{"random:0.5", "random:<density>:<seed>"},
		{"random:x:1", "random:<density>:<seed>"},
		{"random:NaN:1", "finite number in [0, 1]"},
		{"bogus", "alltoall, lambda:<k>, hub:<node>, neighbors, or random:<density>:<seed>"},
	}
	for _, tc := range cases {
		_, err := Parse(9, tc.spec)
		if err == nil {
			t.Errorf("Parse(9, %q): want error, got none", tc.spec)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(9, %q) error %q does not mention %q", tc.spec, err, tc.want)
		}
	}
}

// TestZeroValueInstanceIsNilSafe: the zero Instance (what Parse returns
// beside an error) must answer size queries with 0, not panic.
func TestZeroValueInstanceIsNilSafe(t *testing.T) {
	var in Instance
	if in.N() != 0 || in.Requests() != 0 {
		t.Errorf("zero instance: N=%d requests=%d, want 0/0", in.N(), in.Requests())
	}
	bad, err := Parse(9, "hub:99")
	if err == nil {
		t.Fatal("want parse error")
	}
	if bad.N() != 0 || bad.Requests() != 0 {
		t.Errorf("error-path instance: N=%d requests=%d, want 0/0", bad.N(), bad.Requests())
	}
}

func TestFromPairs(t *testing.T) {
	in, err := FromPairs(5, [][2]int{{0, 2}, {2, 0}, {1, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if in.Demand.Multiplicity(0, 2) != 2 {
		t.Errorf("repeated pair must accumulate multiplicity, got %d", in.Demand.Multiplicity(0, 2))
	}
	if _, err := FromPairs(5, [][2]int{{0, 7}}); err == nil {
		t.Error("out-of-range pair: want error")
	}
	if _, err := FromPairs(5, [][2]int{{3, 3}}); err == nil {
		t.Error("self request: want error")
	}
}

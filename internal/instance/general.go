// This file is the general-topology instance family: instead of demand
// over a ring, an Instance may carry an arbitrary bridgeless host graph
// whose every edge must be covered — the shortest-cycle-cover setting of
// the literature the repo tracks (Kaiser et al. on cubic graphs,
// Brinkmann–Goedgebeur–Hägglund–Markström on snarks). The host doubles
// as the demand: a cycle cover serves each host edge at least once, and
// the objective switches from cycle count to total cover length.
//
// Admission is strict and happens here, not downstream: a host with a
// bridge (an edge on no cycle) or a disconnected host admits no cycle
// cover at all, and an untrusted spec must learn that at parse time with
// an error, never as a construction panic.
package instance

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/cyclecover/cyclecover/internal/graph"
)

// MinGeneralN is the smallest admissible general host: a cycle needs
// three vertices.
const MinGeneralN = 3

// IsGeneral reports whether the instance is a general-topology one —
// covered against its Host graph rather than routed on a ring.
func (in Instance) IsGeneral() bool { return in.Host != nil }

// General admits an arbitrary host graph as a shortest-cycle-cover
// instance. The host must have at least MinGeneralN vertices, be
// connected, and be bridgeless; parallel edges are allowed (a doubled
// edge is never a bridge). The returned instance's Demand aliases the
// host: every host edge is a demand edge.
func General(name string, host *graph.Graph) (Instance, error) {
	if host == nil {
		return Instance{}, fmt.Errorf("instance: nil host graph")
	}
	if host.N() < MinGeneralN {
		return Instance{}, fmt.Errorf("instance: general host needs at least %d vertices, got %d", MinGeneralN, host.N())
	}
	if host.M() == 0 {
		return Instance{}, fmt.Errorf("instance: general host has no edges")
	}
	if !host.Connected(false) {
		return Instance{}, fmt.Errorf("instance: general host is disconnected — no cycle cover exists")
	}
	if e, found := host.FindBridge(); found {
		return Instance{}, fmt.Errorf("instance: general host has bridge %v — a bridge lies on no cycle, so no cycle cover exists", e)
	}
	return Instance{Name: name, Demand: host, Host: host}, nil
}

// Petersen returns the Petersen-graph instance, the canonical snark and
// the unique one whose shortest cycle cover needs 4/3·m + 1 = 21.
func Petersen() Instance {
	in, err := General("petersen (10v, 15e)", graph.Petersen())
	if err != nil {
		panic(err) // the generator is correct by construction
	}
	return in
}

// Blanusa returns the first or second Blanuša snark (18 vertices, 27
// edges) for which ∈ {1, 2}.
func Blanusa(which int) (Instance, error) {
	switch which {
	case 1:
		return General("blanusa-1 (18v, 27e)", graph.BlanusaFirst())
	case 2:
		return General("blanusa-2 (18v, 27e)", graph.BlanusaSecond())
	default:
		return Instance{}, fmt.Errorf("instance: blanusa variant must be 1 or 2, got %d", which)
	}
}

// Flower returns the flower snark J_k instance for odd k ≥ 3 (4k
// vertices, 6k edges; a snark for k ≥ 5).
func Flower(k int) (Instance, error) {
	if k < 3 || k%2 == 0 {
		return Instance{}, fmt.Errorf("instance: flower snark needs odd k >= 3, got %d", k)
	}
	return General(fmt.Sprintf("flower J_%d (%dv, %de)", k, 4*k, 6*k), graph.FlowerSnark(k))
}

// PrismInstance returns the k-prism instance (2k vertices, 3k edges), the
// hamiltonian cubic counterpoint to the snark families.
func PrismInstance(k int) (Instance, error) {
	if k < 3 {
		return Instance{}, fmt.Errorf("instance: prism needs k >= 3, got %d", k)
	}
	return General(fmt.Sprintf("prism CL_%d (%dv, %de)", k, 2*k, 3*k), graph.Prism(k))
}

// RandomCubic returns a seeded random connected bridgeless cubic
// instance on n vertices (n even, ≥ 4).
func RandomCubic(n int, seed int64) (Instance, error) {
	g, err := graph.RandomCubicBridgeless(n, seed)
	if err != nil {
		return Instance{}, fmt.Errorf("instance: %w", err)
	}
	return General(fmt.Sprintf("cubic(n=%d, seed=%d)", n, seed), g)
}

// ParseEdgeList builds a general instance on n vertices from a compact
// edge list "u-v,u-v,...". Vertices must lie in [0, n); self-loops are
// rejected (AddEdge would panic on them, and a loop is never part of a
// simple cycle anyway). The parsed graph then passes the General
// admission check: connected and bridgeless.
func ParseEdgeList(n int, body string) (Instance, error) {
	if n < MinGeneralN {
		return Instance{}, fmt.Errorf("instance: edge list needs n >= %d, got %d", MinGeneralN, n)
	}
	g := graph.New(n)
	if body == "" {
		return Instance{}, fmt.Errorf("instance: empty edge list")
	}
	for _, tok := range strings.Split(body, ",") {
		uv := strings.Split(tok, "-")
		if len(uv) != 2 {
			return Instance{}, fmt.Errorf("instance: bad edge %q: want <u>-<v>", tok)
		}
		u, err1 := strconv.Atoi(uv[0])
		v, err2 := strconv.Atoi(uv[1])
		if err1 != nil || err2 != nil {
			return Instance{}, fmt.Errorf("instance: bad edge %q: want integer endpoints", tok)
		}
		if u < 0 || u >= n || v < 0 || v >= n {
			return Instance{}, fmt.Errorf("instance: edge %q outside [0, %d)", tok, n)
		}
		if u == v {
			return Instance{}, fmt.Errorf("instance: self-loop %q — loops lie on no simple cycle", tok)
		}
		g.AddEdge(u, v)
	}
	return General(fmt.Sprintf("edges (%dv, %de)", n, g.M()), g)
}

// ParseAdjacency builds a general instance from an adjacency list
// "nbrs;nbrs;..." — row i holds the comma-separated neighbors of vertex
// i, and n is the number of rows. Every edge must be listed from both
// endpoints (the format is an undirected adjacency list, so asymmetry is
// a spec error, not a half-edge). An empty row is allowed syntactically
// but fails the connectivity admission.
func ParseAdjacency(body string) (Instance, error) {
	rows := strings.Split(body, ";")
	n := len(rows)
	if n < MinGeneralN {
		return Instance{}, fmt.Errorf("instance: adjacency list needs >= %d rows, got %d", MinGeneralN, n)
	}
	// Tally directed arcs into two pair-count graphs — low holds arcs
	// listed by the lower endpoint, high those listed by the higher — so
	// the symmetry check iterates in the graphs' deterministic edge order
	// with no map in sight. An undirected adjacency list is symmetric iff
	// the two tallies agree pairwise; the agreed count is the edge
	// multiplicity.
	low, high := graph.New(n), graph.New(n)
	for u, row := range rows {
		row = strings.TrimSpace(row)
		if row == "" {
			continue
		}
		for _, tok := range strings.Split(row, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				return Instance{}, fmt.Errorf("instance: row %d: bad neighbor %q", u, tok)
			}
			if v < 0 || v >= n {
				return Instance{}, fmt.Errorf("instance: row %d: neighbor %d outside [0, %d)", u, v, n)
			}
			if v == u {
				return Instance{}, fmt.Errorf("instance: row %d: self-loop", u)
			}
			if u < v {
				low.AddEdge(u, v)
			} else {
				high.AddEdge(u, v)
			}
		}
	}
	var asym error
	low.ForEachEdge(func(u, v, mult int) bool {
		if back := high.Mult(u, v); back != mult {
			asym = fmt.Errorf("instance: asymmetric adjacency: row %d lists %d ×%d but row %d lists %d ×%d", u, v, mult, v, u, back)
			return false
		}
		return true
	})
	if asym == nil && high.M() != low.M() {
		high.ForEachEdge(func(u, v, mult int) bool {
			if low.Mult(u, v) == 0 {
				asym = fmt.Errorf("instance: asymmetric adjacency: row %d lists %d ×%d but row %d does not list %d", v, u, mult, u, v)
				return false
			}
			return true
		})
	}
	if asym != nil {
		return Instance{}, asym
	}
	return General(fmt.Sprintf("adjacency (%dv, %de)", n, low.M()), low)
}

// ParseGeneral builds a general-topology instance from a compact demand
// spec, extending the ring-demand wire format of Parse:
//
//	petersen                 the Petersen graph (requires n = 10)
//	blanusa:<1|2>            first/second Blanuša snark (requires n = 18)
//	flower:<k>               flower snark J_k, odd k >= 3 (requires n = 4k)
//	prism:<k>                k-prism, k >= 3 (requires n = 2k)
//	cubic:<seed>             seeded random bridgeless cubic graph on n vertices
//	edges:<u-v,u-v,...>      explicit edge list on n vertices
//	adj:<nbrs;nbrs;...>      adjacency list, one row per vertex (n = rows)
//
// Fixed-size families double-check the caller's n so a surprising
// instance size is an error, not a silent override. ok reports whether
// the spec named a general family at all; when false the caller should
// fall through to the ring families.
func ParseGeneral(n int, spec string) (Instance, bool, error) {
	wrongN := func(in Instance, err error) (Instance, bool, error) {
		if err != nil {
			return Instance{}, true, err
		}
		if in.N() != n {
			return Instance{}, true, fmt.Errorf("instance: spec %q is a graph on %d vertices, but n=%d was requested", spec, in.N(), n)
		}
		return in, true, nil
	}
	switch {
	case spec == "petersen":
		return wrongN(Petersen(), nil)
	case strings.HasPrefix(spec, "blanusa:"):
		which, err := strconv.Atoi(strings.TrimPrefix(spec, "blanusa:"))
		if err != nil {
			return Instance{}, true, fmt.Errorf("bad blanusa spec %q: want blanusa:<1|2>", spec)
		}
		return wrongN(Blanusa(which))
	case strings.HasPrefix(spec, "flower:"):
		k, err := strconv.Atoi(strings.TrimPrefix(spec, "flower:"))
		if err != nil {
			return Instance{}, true, fmt.Errorf("bad flower spec %q: want flower:<k> with odd integer k >= 3", spec)
		}
		return wrongN(Flower(k))
	case strings.HasPrefix(spec, "prism:"):
		k, err := strconv.Atoi(strings.TrimPrefix(spec, "prism:"))
		if err != nil {
			return Instance{}, true, fmt.Errorf("bad prism spec %q: want prism:<k> with integer k >= 3", spec)
		}
		return wrongN(PrismInstance(k))
	case strings.HasPrefix(spec, "cubic:"):
		seed, err := strconv.ParseInt(strings.TrimPrefix(spec, "cubic:"), 10, 64)
		if err != nil {
			return Instance{}, true, fmt.Errorf("bad cubic spec %q: want cubic:<seed> with integer seed", spec)
		}
		in, err := RandomCubic(n, seed)
		if err != nil {
			return Instance{}, true, err
		}
		return in, true, nil
	case strings.HasPrefix(spec, "edges:"):
		in, err := ParseEdgeList(n, strings.TrimPrefix(spec, "edges:"))
		if err != nil {
			return Instance{}, true, err
		}
		return in, true, nil
	case strings.HasPrefix(spec, "adj:"):
		return wrongN(ParseAdjacency(strings.TrimPrefix(spec, "adj:")))
	default:
		return Instance{}, false, nil
	}
}

package ring

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	for _, n := range []int{-1, 0, 1, 2} {
		if _, err := New(n); err == nil {
			t.Errorf("New(%d): want error, got nil", n)
		}
	}
	for _, n := range []int{3, 4, 5, 100} {
		r, err := New(n)
		if err != nil {
			t.Fatalf("New(%d): %v", n, err)
		}
		if r.N() != n {
			t.Errorf("New(%d).N() = %d", n, r.N())
		}
		if r.Links() != n {
			t.Errorf("New(%d).Links() = %d, want %d", n, r.Links(), n)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(2): want panic")
		}
	}()
	MustNew(2)
}

func TestNorm(t *testing.T) {
	r := MustNew(7)
	cases := []struct{ in, want int }{
		{0, 0}, {6, 6}, {7, 0}, {8, 1}, {-1, 6}, {-7, 0}, {-8, 6}, {14, 0},
	}
	for _, c := range cases {
		if got := r.Norm(c.in); got != c.want {
			t.Errorf("Norm(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestNextPrev(t *testing.T) {
	r := MustNew(5)
	if got := r.Next(4); got != 0 {
		t.Errorf("Next(4) = %d, want 0", got)
	}
	if got := r.Prev(0); got != 4 {
		t.Errorf("Prev(0) = %d, want 4", got)
	}
	for v := 0; v < 5; v++ {
		if r.Prev(r.Next(v)) != v {
			t.Errorf("Prev(Next(%d)) != %d", v, v)
		}
	}
}

func TestGapAndDist(t *testing.T) {
	r := MustNew(8)
	cases := []struct{ u, v, gap, dist int }{
		{0, 3, 3, 3},
		{3, 0, 5, 3},
		{0, 4, 4, 4}, // diameter
		{7, 1, 2, 2},
		{2, 2, 0, 0},
	}
	for _, c := range cases {
		if got := r.Gap(c.u, c.v); got != c.gap {
			t.Errorf("Gap(%d,%d) = %d, want %d", c.u, c.v, got, c.gap)
		}
		if got := r.Dist(c.u, c.v); got != c.dist {
			t.Errorf("Dist(%d,%d) = %d, want %d", c.u, c.v, got, c.dist)
		}
	}
}

func TestGapSymmetryProperty(t *testing.T) {
	r := MustNew(11)
	f := func(u, v int) bool {
		u, v = r.Norm(u), r.Norm(v)
		if u == v {
			return r.Gap(u, v) == 0
		}
		return r.Gap(u, v)+r.Gap(v, u) == r.N()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistIsMetricProperty(t *testing.T) {
	r := MustNew(13)
	f := func(a, b, c int) bool {
		a, b, c = r.Norm(a), r.Norm(b), r.Norm(c)
		// Symmetry and triangle inequality.
		return r.Dist(a, b) == r.Dist(b, a) &&
			r.Dist(a, c) <= r.Dist(a, b)+r.Dist(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiameterAndAntipode(t *testing.T) {
	even := MustNew(10)
	if !even.IsDiameter(2, 7) {
		t.Error("IsDiameter(2,7) on C10: want true")
	}
	if even.IsDiameter(2, 6) {
		t.Error("IsDiameter(2,6) on C10: want false")
	}
	a, err := even.Antipode(3)
	if err != nil || a != 8 {
		t.Errorf("Antipode(3) = %d, %v; want 8, nil", a, err)
	}

	odd := MustNew(9)
	if odd.IsDiameter(0, 4) {
		t.Error("IsDiameter on odd ring: want false always")
	}
	if _, err := odd.Antipode(0); err == nil {
		t.Error("Antipode on odd ring: want error")
	}
}

func TestLinkBetween(t *testing.T) {
	r := MustNew(6)
	l, ok := r.LinkBetween(2, 3)
	if !ok || l != 2 {
		t.Errorf("LinkBetween(2,3) = %v, %v; want 2, true", l, ok)
	}
	l, ok = r.LinkBetween(0, 5)
	if !ok || l != 5 {
		t.Errorf("LinkBetween(0,5) = %v, %v; want 5, true", l, ok)
	}
	if _, ok := r.LinkBetween(0, 2); ok {
		t.Error("LinkBetween(0,2): want not adjacent")
	}
	u, v := r.Endpoints(5)
	if u != 5 || v != 0 {
		t.Errorf("Endpoints(5) = %d,%d; want 5,0", u, v)
	}
}

func TestArcBasics(t *testing.T) {
	r := MustNew(8)
	a := r.ArcBetween(6, 2) // 6→7→0→1→2, length 4
	if got := a.Len(r); got != 4 {
		t.Errorf("Len = %d, want 4", got)
	}
	wantLinks := []Link{6, 7, 0, 1}
	links := a.Links(r)
	if len(links) != len(wantLinks) {
		t.Fatalf("Links = %v, want %v", links, wantLinks)
	}
	for i := range links {
		if links[i] != wantLinks[i] {
			t.Fatalf("Links = %v, want %v", links, wantLinks)
		}
	}
	wantVerts := []int{6, 7, 0, 1, 2}
	verts := a.Vertices(r)
	for i := range wantVerts {
		if verts[i] != wantVerts[i] {
			t.Fatalf("Vertices = %v, want %v", verts, wantVerts)
		}
	}
}

func TestArcEmpty(t *testing.T) {
	r := MustNew(5)
	a := r.ArcBetween(3, 3)
	if !a.IsEmpty() {
		t.Error("arc(3,3): want empty")
	}
	if a.Len(r) != 0 || len(a.Links(r)) != 0 {
		t.Error("empty arc: want zero links")
	}
	if a.Contains(r, 3) {
		t.Error("empty arc must contain no link")
	}
	if got := a.Vertices(r); len(got) != 1 || got[0] != 3 {
		t.Errorf("empty arc vertices = %v, want [3]", got)
	}
}

func TestArcContains(t *testing.T) {
	r := MustNew(8)
	a := r.ArcBetween(6, 2)
	for _, l := range []Link{6, 7, 0, 1} {
		if !a.Contains(r, l) {
			t.Errorf("arc should contain link %d", l)
		}
	}
	for _, l := range []Link{2, 3, 4, 5} {
		if a.Contains(r, l) {
			t.Errorf("arc should not contain link %d", l)
		}
	}
}

func TestArcContainsVertex(t *testing.T) {
	r := MustNew(8)
	a := r.ArcBetween(6, 2)
	for _, v := range []int{7, 0, 1} {
		if !a.ContainsVertex(r, v) {
			t.Errorf("arc should strictly contain vertex %d", v)
		}
	}
	for _, v := range []int{6, 2, 3, 4, 5} {
		if a.ContainsVertex(r, v) {
			t.Errorf("arc should not strictly contain vertex %d", v)
		}
	}
}

func TestArcDisjoint(t *testing.T) {
	r := MustNew(10)
	a := r.ArcBetween(0, 4)
	b := r.ArcBetween(4, 9)
	c := r.ArcBetween(3, 6)
	if !a.Disjoint(r, b) {
		t.Error("arcs 0→4 and 4→9 share no link: want disjoint")
	}
	if a.Disjoint(r, c) {
		t.Error("arcs 0→4 and 3→6 share link 3: want not disjoint")
	}
	empty := r.ArcBetween(2, 2)
	if !a.Disjoint(r, empty) || !empty.Disjoint(r, a) {
		t.Error("empty arc is disjoint from everything")
	}
}

func TestArcPartitionProperty(t *testing.T) {
	// The arcs between cyclically consecutive members of any vertex set
	// partition the ring's links: pairwise disjoint, lengths sum to n.
	r := MustNew(12)
	f := func(raw []int) bool {
		set := map[int]bool{}
		for _, v := range raw {
			set[r.Norm(v)] = true
		}
		if len(set) < 2 {
			return true
		}
		vs := make([]int, 0, len(set))
		for v := range set {
			vs = append(vs, v)
		}
		SortByRingOrder(vs)
		total := 0
		arcs := make([]Arc, 0, len(vs))
		for i := range vs {
			a := r.ArcBetween(vs[i], vs[(i+1)%len(vs)])
			arcs = append(arcs, a)
			total += a.Len(r)
		}
		if total != r.N() {
			return false
		}
		for i := range arcs {
			for j := i + 1; j < len(arcs); j++ {
				if !arcs[i].Disjoint(r, arcs[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSortByRingOrder(t *testing.T) {
	vs := []int{5, 1, 4, 2}
	SortByRingOrder(vs)
	want := []int{1, 2, 4, 5}
	for i := range want {
		if vs[i] != want[i] {
			t.Fatalf("SortByRingOrder = %v, want %v", vs, want)
		}
	}
	var empty []int
	SortByRingOrder(empty) // must not panic
}

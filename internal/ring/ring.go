// Package ring models the physical topology of the paper: an undirected
// cycle C_n whose vertices are optical switches and whose edges are
// fibre-optic links.
//
// Vertices are the integers 0..n-1 in ring order. The clockwise arc from u
// to v is the sequence of ring edges u→u+1→…→v (indices mod n). Every
// request routed on the ring occupies one of the two arcs between its
// endpoints; the arc abstraction and its disjointness arithmetic are the
// substrate for the disjoint routing constraint (DRC) in package cover.
package ring

import (
	"errors"
	"fmt"
)

// MinVertices is the smallest ring size the library accepts. A ring with
// fewer than three vertices has no cycle structure (C_1 and C_2 degenerate
// to a point and a doubled edge).
const MinVertices = 3

// Ring is the physical cycle C_n. The zero value is invalid; use New.
type Ring struct {
	n int
}

// New returns the ring C_n. It returns an error if n < MinVertices.
func New(n int) (Ring, error) {
	if n < MinVertices {
		return Ring{}, fmt.Errorf("ring: n = %d below minimum %d", n, MinVertices)
	}
	return Ring{n: n}, nil
}

// MustNew is New for known-good sizes; it panics on error. It is intended
// for tests and package-internal construction from validated input.
func MustNew(n int) Ring {
	r, err := New(n)
	if err != nil {
		panic(err)
	}
	return r
}

// N returns the number of vertices (equivalently, the number of links).
func (r Ring) N() int { return r.n }

// Valid reports whether v is a vertex of the ring.
func (r Ring) Valid(v int) bool { return 0 <= v && v < r.n }

// Norm reduces an arbitrary integer to the canonical vertex label in
// [0, n).
func (r Ring) Norm(v int) int {
	v %= r.n
	if v < 0 {
		v += r.n
	}
	return v
}

// Next returns the clockwise neighbour of v.
func (r Ring) Next(v int) int { return r.Norm(v + 1) }

// Prev returns the counter-clockwise neighbour of v.
func (r Ring) Prev(v int) int { return r.Norm(v - 1) }

// Gap returns the clockwise distance from u to v: the number of ring edges
// on the arc u→v. Gap(u,u) is 0.
func (r Ring) Gap(u, v int) int { return r.Norm(v - u) }

// Dist returns the graph distance between u and v on the ring: the shorter
// of the two arc lengths.
func (r Ring) Dist(u, v int) int {
	g := r.Gap(u, v)
	return min(g, r.n-g)
}

// IsDiameter reports whether {u,v} is a diametral pair: only possible when
// n is even, with the two arcs of equal length n/2.
func (r Ring) IsDiameter(u, v int) bool {
	return r.n%2 == 0 && r.Gap(u, v) == r.n/2
}

// Antipode returns the vertex opposite v. It returns an error when n is
// odd, in which case no vertex is equidistant both ways.
func (r Ring) Antipode(v int) (int, error) {
	if r.n%2 != 0 {
		return 0, errors.New("ring: antipode undefined for odd n")
	}
	return r.Norm(v + r.n/2), nil
}

// Link identifies the undirected ring edge {v, v+1} by its lower endpoint
// v in ring order. Links are the failure units in the survivability model.
type Link int

// Links returns the number of links, which equals N for a cycle.
func (r Ring) Links() int { return r.n }

// LinkBetween returns the link joining two adjacent vertices. ok is false
// if u and v are not ring-adjacent.
func (r Ring) LinkBetween(u, v int) (Link, bool) {
	switch {
	case r.Gap(u, v) == 1:
		return Link(u), true
	case r.Gap(v, u) == 1:
		return Link(v), true
	default:
		return 0, false
	}
}

// Endpoints returns the two vertices joined by link l.
func (r Ring) Endpoints(l Link) (int, int) {
	u := r.Norm(int(l))
	return u, r.Next(u)
}

// Arc is the clockwise arc From→To. An arc with From == To is empty: arcs
// of length n (the full ring) are not representable, matching their absence
// from any simple routing.
type Arc struct {
	From, To int
}

// ArcBetween returns the clockwise arc from u to v on r, normalising the
// endpoints.
func (r Ring) ArcBetween(u, v int) Arc {
	return Arc{From: r.Norm(u), To: r.Norm(v)}
}

// Len returns the number of links on the arc.
func (a Arc) Len(r Ring) int { return r.Gap(a.From, a.To) }

// IsEmpty reports whether the arc contains no links.
func (a Arc) IsEmpty() bool { return a.From == a.To }

// Contains reports whether link l lies on the arc.
func (a Arc) Contains(r Ring, l Link) bool {
	if a.IsEmpty() {
		return false
	}
	// Link l occupies positions [l, l+1]; it is on the arc iff the offset
	// of its lower endpoint from a.From is below the arc length.
	return r.Gap(a.From, int(l)) < a.Len(r)
}

// ContainsVertex reports whether v lies strictly inside the arc (excluding
// both endpoints).
func (a Arc) ContainsVertex(r Ring, v int) bool {
	if a.IsEmpty() {
		return false
	}
	g := r.Gap(a.From, v)
	return g > 0 && g < a.Len(r)
}

// Links returns the links on the arc in clockwise order.
func (a Arc) Links(r Ring) []Link {
	n := a.Len(r)
	ls := make([]Link, 0, n)
	for i := 0; i < n; i++ {
		ls = append(ls, Link(r.Norm(a.From+i)))
	}
	return ls
}

// Vertices returns the vertices on the arc in clockwise order, including
// both endpoints. An empty arc yields just its single endpoint.
func (a Arc) Vertices(r Ring) []int {
	n := a.Len(r)
	vs := make([]int, 0, n+1)
	for i := 0; i <= n; i++ {
		vs = append(vs, r.Norm(a.From+i))
	}
	return vs
}

// Disjoint reports whether two arcs share no link.
func (a Arc) Disjoint(r Ring, b Arc) bool {
	if a.IsEmpty() || b.IsEmpty() {
		return true
	}
	// b's start must lie at or beyond a's end (in a-relative coordinates),
	// and a must not wrap past b's start... The robust check for small n is
	// link-set intersection; arcs here are at most n links, and this runs
	// in the verifier, not the constructor hot path.
	for _, l := range a.Links(r) {
		if b.Contains(r, l) {
			return false
		}
	}
	return true
}

// String renders the arc for diagnostics.
func (a Arc) String() string { return fmt.Sprintf("arc(%d→%d)", a.From, a.To) }

// SortByRingOrder sorts vs in increasing ring position. It is a
// convenience for canonicalising cycle vertex sets.
func SortByRingOrder(vs []int) {
	// Insertion sort: vertex sets are tiny (cycles of length 3-6) and the
	// constructors call this in tight loops.
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j] < vs[j-1]; j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}

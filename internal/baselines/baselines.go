// Package baselines implements the comparison points the paper cites, so
// the experiments can quantify what the disjoint routing constraint (DRC)
// costs and how the paper's objective differs from its neighbours:
//
//   - covering K_n by triangles with NO routing constraint — the paper
//     quotes the covering number ⌈(n/3)·⌈(n−1)/2⌉⌉ from Mills–Mullin [6]
//     and Stanton–Rogers [7];
//   - covering by C4 without DRC (Bermond [2]) — represented here by its
//     counting bound and a constructive greedy;
//   - the Eilam–Moran–Zaks [3] / Gerstel–Lin–Sasaki [4] objective:
//     minimise the SUM of cycle sizes rather than the number of cycles;
//   - the naive per-request design: one triangle per demand pair.
package baselines

import (
	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/graph"
	"github.com/cyclecover/cyclecover/internal/ring"
)

// TriangleCoverNumber returns the minimum number of 3-cycles covering
// E(K_n) with no routing constraint, as quoted in the paper:
// ⌈(n/3)·⌈(n−1)/2⌉⌉. Defined for n ≥ 3.
func TriangleCoverNumber(n int) int {
	inner := (n - 1 + 1) / 2 // ⌈(n−1)/2⌉
	return ceilDiv(n*inner, 3)
}

// QuadCoverBound returns the counting lower bound ⌈|E(K_n)|/4⌉ on the
// number of C4 needed to cover K_n without DRC. (The exact value is
// determined in Bermond's thesis [2]; the experiments report this bound
// together with the constructive greedy achievement.)
func QuadCoverBound(n int) int {
	return ceilDiv(n*(n-1)/2, 4)
}

// PerEdgeNaive returns the size of the naive design: one subnetwork per
// request, i.e. |E(K_n)| cycles.
func PerEdgeNaive(n int) int { return n * (n - 1) / 2 }

// GreedyTriangleCover constructs a covering of K_n by unconstrained
// triangles (ring order irrelevant — no DRC): repeatedly pick an uncovered
// edge and the third vertex maximising newly covered edges. Returns the
// triangles as vertex triples and is used to show what a constructive
// non-DRC covering achieves against TriangleCoverNumber.
func GreedyTriangleCover(n int) [][3]int {
	covered := make([]bool, n*n)
	idx := func(u, v int) int {
		if u > v {
			u, v = v, u
		}
		return u*n + v
	}
	remaining := n * (n - 1) / 2
	var out [][3]int
	for remaining > 0 {
		// First uncovered edge in lexicographic order.
		eu, ev := -1, -1
	find:
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if !covered[idx(u, v)] {
					eu, ev = u, v
					break find
				}
			}
		}
		bestW, bestGain := -1, -1
		for w := 0; w < n; w++ {
			if w == eu || w == ev {
				continue
			}
			gain := 1
			if !covered[idx(eu, w)] {
				gain++
			}
			if !covered[idx(ev, w)] {
				gain++
			}
			if gain > bestGain {
				bestW, bestGain = w, gain
			}
		}
		for _, e := range [][2]int{{eu, ev}, {eu, bestW}, {ev, bestW}} {
			if !covered[idx(e[0], e[1])] {
				covered[idx(e[0], e[1])] = true
				remaining--
			}
		}
		out = append(out, [3]int{eu, ev, bestW})
	}
	return out
}

// DRCTriangleOnly constructs a DRC covering of K_n using triangles only
// (every cycle a C3 in ring order) — the natural "small subnetworks only"
// policy a designer might try. It greedily covers each uncovered pair
// {u,v} with the triangle {u, v, w} whose third vertex maximises newly
// covered pairs. The result contrasts with the optimal C3/C4 mix in the
// objective-comparison experiment.
func DRCTriangleOnly(n int) *cover.Covering {
	r := ring.MustNew(n)
	cv := cover.NewCovering(r)
	covered := make(map[graph.Edge]bool)
	total := n * (n - 1) / 2
	for len(covered) < total {
		var target graph.Edge
		found := false
	find:
		for u := 0; u < n && !found; u++ {
			for v := u + 1; v < n; v++ {
				if !covered[graph.NewEdge(u, v)] {
					target = graph.NewEdge(u, v)
					found = true
					break find
				}
			}
		}
		bestW, bestGain := -1, -1
		for w := 0; w < n; w++ {
			if w == target.U || w == target.V {
				continue
			}
			c := cover.MustCycle(r, target.U, target.V, w)
			gain := 0
			for _, pr := range c.Pairs() {
				if !covered[pr] {
					gain++
				}
			}
			// The triangle must actually cover the target pair: any third
			// vertex works (3 vertices are always in ring order), so gain
			// counts suffice.
			if gain > bestGain {
				bestW, bestGain = w, gain
			}
		}
		c := cover.MustCycle(r, target.U, target.V, bestW)
		for _, pr := range c.Pairs() {
			covered[pr] = true
		}
		cv.Add(c)
	}
	return cv
}

// TotalSizeStats reports a covering under the Eilam–Moran–Zaks objective
// (sum of ring sizes) next to this paper's objective (number of rings).
type TotalSizeStats struct {
	Cycles      int
	TotalSize   int
	MeanSize    float64
	EdgesServed int
}

// SizeStats evaluates both objectives on a covering.
func SizeStats(cv *cover.Covering) TotalSizeStats {
	s := TotalSizeStats{
		Cycles:    cv.Size(),
		TotalSize: cv.TotalVertices(),
	}
	if s.Cycles > 0 {
		s.MeanSize = float64(s.TotalSize) / float64(s.Cycles)
	}
	s.EdgesServed = len(cv.CoverageCounts())
	return s
}

// TotalSizeLowerBound is the trivial bound on the EMZ objective for
// covering K_n: the sum of cycle sizes equals the slot count, which is at
// least the number of pairs.
func TotalSizeLowerBound(n int) int { return n * (n - 1) / 2 }

func ceilDiv(a, b int) int { return (a + b - 1) / b }

package baselines

import (
	"testing"

	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/graph"
)

func TestTriangleCoverNumberKnownValues(t *testing.T) {
	// Classical values: C(4)=3, C(5)=4, C(6)=6, C(7)=7 (Fano plane).
	want := map[int]int{3: 1, 4: 3, 5: 4, 6: 6, 7: 7, 9: 12}
	for n, w := range want {
		if got := TriangleCoverNumber(n); got != w {
			t.Errorf("TriangleCoverNumber(%d) = %d, want %d", n, got, w)
		}
	}
}

func TestTriangleCoverBelowRhoNeverHolds(t *testing.T) {
	// Dropping the DRC can only help: the unconstrained covering number
	// is bounded by... in fact triangles-only may exceed ρ for large n,
	// but the *slot* bound must hold: 3·C(n) ≥ |E|.
	for n := 3; n <= 60; n++ {
		if 3*TriangleCoverNumber(n) < n*(n-1)/2 {
			t.Errorf("n=%d: triangle cover number violates counting bound", n)
		}
	}
}

func TestQuadCoverBound(t *testing.T) {
	if got := QuadCoverBound(8); got != 7 {
		t.Errorf("QuadCoverBound(8) = %d, want 7", got)
	}
	if got := QuadCoverBound(5); got != 3 {
		t.Errorf("QuadCoverBound(5) = %d, want 3", got)
	}
}

func TestPerEdgeNaive(t *testing.T) {
	if PerEdgeNaive(7) != 21 {
		t.Error("PerEdgeNaive(7) != 21")
	}
}

func TestGreedyTriangleCoverValid(t *testing.T) {
	for _, n := range []int{4, 5, 8, 13} {
		tris := GreedyTriangleCover(n)
		covered := map[graph.Edge]bool{}
		for _, tri := range tris {
			covered[graph.NewEdge(tri[0], tri[1])] = true
			covered[graph.NewEdge(tri[0], tri[2])] = true
			covered[graph.NewEdge(tri[1], tri[2])] = true
		}
		if len(covered) != n*(n-1)/2 {
			t.Fatalf("n=%d: greedy covers %d pairs, want %d", n, len(covered), n*(n-1)/2)
		}
		// Greedy cannot beat the covering number.
		if len(tris) < TriangleCoverNumber(n) {
			t.Fatalf("n=%d: greedy used %d < covering number %d — formula or greedy broken",
				n, len(tris), TriangleCoverNumber(n))
		}
	}
}

func TestDRCTriangleOnlyValid(t *testing.T) {
	for _, n := range []int{4, 5, 7, 10, 13} {
		cv := DRCTriangleOnly(n)
		if err := cover.Verify(cv, graph.Complete(n)); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for _, c := range cv.Cycles {
			if !c.IsTriangle() {
				t.Fatalf("n=%d: non-triangle %v", n, c)
			}
		}
		// Triangles-only DRC can never beat ρ(n).
		if cv.Size() < cover.Rho(n) {
			t.Fatalf("n=%d: triangles-only %d < ρ %d", n, cv.Size(), cover.Rho(n))
		}
	}
}

func TestSizeStats(t *testing.T) {
	cv := DRCTriangleOnly(6)
	s := SizeStats(cv)
	if s.Cycles != cv.Size() || s.TotalSize != 3*cv.Size() {
		t.Errorf("SizeStats = %+v inconsistent with covering", s)
	}
	if s.MeanSize != 3.0 {
		t.Errorf("triangles-only mean size = %f, want 3", s.MeanSize)
	}
	if s.EdgesServed != 15 {
		t.Errorf("EdgesServed = %d, want 15", s.EdgesServed)
	}
}

func TestTotalSizeLowerBound(t *testing.T) {
	for n := 3; n <= 30; n++ {
		cv := DRCTriangleOnly(n)
		if cv.TotalVertices() < TotalSizeLowerBound(n) {
			t.Fatalf("n=%d: EMZ objective below its lower bound", n)
		}
	}
}

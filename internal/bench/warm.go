package bench

import (
	"bytes"
	_ "embed"
	"io"
	"sync"
)

// The committed warm-start snapshot: the λK_n coverings whose cold
// construction dominates sweep time (the even-n min-conflicts searches).
// Loading re-verifies every entry against the independent verifier and
// re-proves optimality claims against ρ(n), so the snapshot can only
// lose entries, never inject a wrong result. After constructor changes
// regenerate it with
//
//	experiments -quick -save-cache internal/bench/testdata/warm-coverings.json
//
// (-save-cache forces a cold sweep; warming from the old snapshot first
// would just write the old coverings back).
//
//go:embed testdata/warm-coverings.json
var warmSnapshot []byte

// SkipWarmStart, when set before the first table call, leaves the sweep
// cache cold (the experiments -cold flag uses it for honest timings).
var SkipWarmStart bool

var warmOnce sync.Once

// warm loads the embedded snapshot into the sweep cache, once.
func warm() {
	warmOnce.Do(func() {
		if SkipWarmStart || len(warmSnapshot) == 0 {
			return
		}
		// Best-effort: a stale or corrupt snapshot only means cold starts.
		plans.LoadSnapshot(bytes.NewReader(warmSnapshot))
	})
}

// SaveWarmSnapshot writes the sweep cache's persistable entries, for
// regenerating the embedded warm-start after constructor changes.
func SaveWarmSnapshot(w io.Writer) error {
	return plans.SaveSnapshot(w)
}

package bench

import (
	"testing"

	"github.com/cyclecover/cyclecover/internal/survive"
)

// BenchmarkSurvivabilitySweep measures the experiment-harness sweep path
// (cached plan + k-failure engine) the way §F of EXPERIMENTS.md reports
// it: the plan comes from the sweep-shared covering cache, so the
// numbers isolate sweep cost from construction cost.
func BenchmarkSurvivabilitySweep(b *testing.B) {
	nw, err := allToAllNetwork(21)
	if err != nil {
		b.Fatal(err)
	}
	sim := survive.NewSimulator(nw)
	for _, bc := range []struct {
		name string
		opts survive.SweepOptions
	}{
		{"single", survive.SweepOptions{K: 1}},
		{"double", survive.SweepOptions{K: 2}},
		{"triple-sampled", survive.SweepOptions{K: 3, Sample: 128, Seed: 1}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Sweep(bc.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTableF2 measures the full F2 experiment row pipeline on a
// mid-size ring (plan from cache, single + double sweep, row assembly).
func BenchmarkTableF2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := TableF2([]int{12}, 12)
		if err != nil || len(rows) != 1 {
			b.Fatalf("rows=%d err=%v", len(rows), err)
		}
	}
}

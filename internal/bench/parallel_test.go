package bench

import (
	"context"
	"errors"
	"testing"
)

func TestParallelT1MatchesSerial(t *testing.T) {
	ns := []int{3, 5, 7, 9, 11, 13, 15, 17, 19, 21}
	serial, err := TableT1(ns)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ParallelTableT1(ns, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("lengths differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, serial[i], parallel[i])
		}
	}
}

func TestParallelT2MatchesSerial(t *testing.T) {
	ns := []int{4, 6, 8, 10, 12}
	serial, err := TableT2(ns)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ParallelTableT2(ns, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestParallelF2(t *testing.T) {
	rows, err := ParallelTableF2([]int{5, 8, 11}, 8, 0) // 0 → GOMAXPROCS
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.AllRestored {
			t.Errorf("n=%d: survivability violated", r.N)
		}
	}
}

func TestParallelMapErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	_, err := parallelMap(context.Background(), []int{1, 2, 3, 4}, 2, func(n int) (int, error) {
		if n == 3 {
			return 0, boom
		}
		return n * n, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestParallelMapOrderPreserved(t *testing.T) {
	ns := []int{9, 3, 7, 5, 11, 13}
	out, err := parallelMap(context.Background(), ns, 3, func(n int) (int, error) { return n * 10, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range ns {
		if out[i] != n*10 {
			t.Fatalf("order not preserved at %d: %v", i, out)
		}
	}
}

func TestParallelMapDegenerateWorkerCounts(t *testing.T) {
	for _, w := range []int{-1, 0, 1, 100} {
		out, err := parallelMap(context.Background(), []int{2, 4}, w, func(n int) (int, error) { return n, nil })
		if err != nil || len(out) != 2 || out[0] != 2 || out[1] != 4 {
			t.Fatalf("workers=%d: out=%v err=%v", w, out, err)
		}
	}
}

func TestParallelMapCancelledSkipsRows(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	_, err := parallelMap(ctx, []int{1, 2, 3}, 2, func(n int) (int, error) {
		ran++
		return n, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if ran != 0 {
		t.Fatalf("%d rows ran under a cancelled context", ran)
	}
	// Serial path (workers 1) honours the same contract.
	_, err = parallelMap(ctx, []int{1, 2, 3}, 1, func(n int) (int, error) { return n, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("serial err = %v, want Canceled", err)
	}
}

package bench

import (
	"strings"
	"testing"
)

func TestTableT1(t *testing.T) {
	rows, err := TableT1([]int{3, 5, 7, 9, 21})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.Valid || !r.Optimal {
			t.Errorf("n=%d: valid=%v optimal=%v", r.N, r.Valid, r.Optimal)
		}
		if r.Constructed != r.Rho || r.C3 != r.TheoremC3 || r.C4 != r.TheoremC4 {
			t.Errorf("n=%d: row %+v disagrees with theorem", r.N, r)
		}
		if r.Slack != 0 {
			t.Errorf("n=%d: odd covering must be a partition", r.N)
		}
	}
	if _, err := TableT1([]int{4}); err == nil {
		t.Error("even n in T1: want error")
	}
	out := RenderT1(rows)
	if !strings.Contains(out, "rho(n)") || !strings.Contains(out, "21") {
		t.Error("render must include headers and data")
	}
}

func TestTableT2(t *testing.T) {
	rows, err := TableT2([]int{4, 6, 8, 10, 24})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.Valid {
			t.Errorf("n=%d: invalid covering", r.N)
		}
		if r.Achieved < r.Rho {
			t.Errorf("n=%d: achieved %d below ρ %d", r.N, r.Achieved, r.Rho)
		}
		if r.N <= 20 && !r.Optimal {
			t.Errorf("n=%d: want optimal in search range", r.N)
		}
		if r.Ratio < 1 || r.Ratio > 1.5 {
			t.Errorf("n=%d: ratio %f out of band", r.N, r.Ratio)
		}
	}
	if _, err := TableT2([]int{5}); err == nil {
		t.Error("odd n in T2: want error")
	}
	if out := RenderT2(rows); !strings.Contains(out, "method") {
		t.Error("render incomplete")
	}
}

func TestTableT3(t *testing.T) {
	rows, err := TableT3([]int{4, 5, 6}, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.FoundAtRho {
			t.Errorf("n=%d: no covering found at ρ", r.N)
		}
		if !r.ProvedBelow {
			t.Errorf("n=%d: ρ−1 infeasibility not proved", r.N)
		}
	}
	if out := RenderT3(rows); !strings.Contains(out, "infeasible") {
		t.Error("render incomplete")
	}
}

func TestExampleK4(t *testing.T) {
	res := ExampleK4()
	if res.BadTourRoutable {
		t.Error("paper example: (1,3,4,2) must not be routable")
	}
	if !res.GoodCoveringValid || res.GoodCoveringSize != 3 || res.RhoOfK4 != 3 {
		t.Errorf("paper example mismatch: %+v", res)
	}
}

func TestTableC1(t *testing.T) {
	rows := TableC1([]int{5, 9, 15})
	for _, r := range rows {
		if r.GreedyTriangle < r.TriangleNoDRC {
			t.Errorf("n=%d: greedy beats the covering number", r.N)
		}
		if r.PerEdge < r.RhoDRC {
			t.Errorf("n=%d: per-edge naive cannot beat ρ", r.N)
		}
	}
	if out := RenderC1(rows); !strings.Contains(out, "noDRC") {
		t.Error("render incomplete")
	}
}

func TestTableC2(t *testing.T) {
	rows, err := TableC2([]int{5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.OurCycles > r.TriCycles {
			t.Errorf("n=%d: optimal mix must not use more cycles than triangles-only", r.N)
		}
		if r.OurTotalSize < r.SizeLB || r.TriTotalSize < r.SizeLB {
			t.Errorf("n=%d: EMZ lower bound violated", r.N)
		}
		// Odd n: the optimal covering is a partition, so it is also
		// EMZ-optimal (total size = |E|).
		if r.N%2 == 1 && r.OurTotalSize != r.SizeLB {
			t.Errorf("n=%d: odd covering should meet the EMZ bound exactly", r.N)
		}
	}
	if out := RenderC2(rows); !strings.Contains(out, "Σ|C|") {
		t.Error("render incomplete")
	}
}

func TestSeriesF1(t *testing.T) {
	rows := SeriesF1([]int{11, 51, 101, 201})
	for i := 1; i < len(rows); i++ {
		d0 := rows[i-1].Ratio - 0.125
		d1 := rows[i].Ratio - 0.125
		if abs(d1) > abs(d0) {
			t.Errorf("ratio must approach 1/8: %v then %v", rows[i-1], rows[i])
		}
	}
	if out := RenderF1(rows); !strings.Contains(out, "0.12500") {
		t.Error("render incomplete")
	}
}

func TestTableF2(t *testing.T) {
	rows, err := TableF2([]int{5, 8, 11}, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.AllRestored {
			t.Errorf("n=%d: single failures must all restore", r.N)
		}
		if r.AffectedPerCut != r.Subnets {
			t.Errorf("n=%d: every cut breaks one arc per subnetwork", r.N)
		}
		if r.N <= 8 && (r.DoubleMean < 0 || r.DoubleWorst > r.DoubleMean) {
			t.Errorf("n=%d: double-failure stats inconsistent: %+v", r.N, r)
		}
	}
	if out := RenderF2(rows); !strings.Contains(out, "2-cut") {
		t.Error("render incomplete")
	}
}

func TestTableF3(t *testing.T) {
	rows, err := TableF3([]int{5, 9, 13})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if r.Wavelengths != 2*r.Subnets {
			t.Errorf("n=%d: wavelengths must be 2·subnets", r.N)
		}
		if i > 0 && r.Cost <= rows[i-1].Cost {
			t.Errorf("cost must grow with n")
		}
	}
	if out := RenderF3(rows); !strings.Contains(out, "ADMs") {
		t.Error("render incomplete")
	}
}

func TestTableX1(t *testing.T) {
	rows, err := TableX1([]int{7}, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.Valid {
			t.Errorf("λ=%d invalid", r.Lambda)
		}
		if r.Cycles < r.Bound {
			t.Errorf("λ=%d: cycles below bound", r.Lambda)
		}
	}
	if rows[1].Cycles != 2*rows[0].Cycles {
		t.Error("λ-fold stacking must scale linearly")
	}
	if out := RenderX1(rows); !strings.Contains(out, "lambda") {
		t.Error("render incomplete")
	}
}

func TestTableX2(t *testing.T) {
	rows, err := TableX2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 topology rows, got %d", len(rows))
	}
	for _, r := range rows {
		if !r.Valid {
			t.Errorf("%s: invalid", r.Topology)
		}
	}
	// The torus checkerboard is the exact-cover analogue.
	if !rows[1].Exact {
		t.Error("torus checkerboard must cover each edge exactly once")
	}
	if out := RenderX2(rows); !strings.Contains(out, "torus") {
		t.Error("render incomplete")
	}
}

func TestTableA1(t *testing.T) {
	rows := TableA1([]int{8, 12, 24})
	for _, r := range rows {
		if r.Achieved > r.Layered {
			t.Errorf("n=%d: full constructor worse than layered", r.N)
		}
		if r.Achieved < r.Rho {
			t.Errorf("n=%d: below ρ — impossible", r.N)
		}
	}
	if out := RenderA1(rows); !strings.Contains(out, "layered") {
		t.Error("render incomplete")
	}
}

func TestRenderAlignment(t *testing.T) {
	out := Render([]string{"a", "long-header"}, [][]string{{"123456", "x"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 lines, got %d", len(lines))
	}
	if len(lines[0]) != len(lines[1]) {
		t.Error("separator must align with header")
	}
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// Package bench regenerates the paper's reported results and the derived
// experiment series indexed in DESIGN.md §4. Each TableXX/SeriesXX
// function computes one experiment's rows; Render turns them into aligned
// text tables consumed by cmd/experiments (which writes EXPERIMENTS.md)
// and by the benchmark suite at the repository root.
package bench

import (
	"fmt"
	"strings"

	"github.com/cyclecover/cyclecover/internal/baselines"
	"github.com/cyclecover/cyclecover/internal/cache"
	"github.com/cyclecover/cyclecover/internal/construct"
	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/graph"
	"github.com/cyclecover/cyclecover/internal/instance"
	"github.com/cyclecover/cyclecover/internal/ring"
	"github.com/cyclecover/cyclecover/internal/routing"
	"github.com/cyclecover/cyclecover/internal/survive"
	"github.com/cyclecover/cyclecover/internal/topo"
	"github.com/cyclecover/cyclecover/internal/wdm"
)

// plans is the sweep-shared covering cache. The experiment tables revisit
// the same ring sizes many times (T1/T2 build what C2 compares, F2 drills
// and F3 prices the same networks, and the parallel wrappers fan out
// duplicate signatures), so every table routes its constructions and WDM
// plans through this cache instead of recomputing per call site. The
// cache single-flights concurrent sweep workers on one signature; results
// are verified before they are cached, and every caller gets a private
// clone of the covering.
var plans = cache.New(512)

// allToAll is the cached construct.AllToAll.
func allToAll(n int) (cache.CoverResult, error) {
	warm()
	res, _, err := plans.CoverAllToAll(n, cache.Options{})
	return res, err
}

// allToAllNetwork is the cached wdm.Plan over the all-to-all covering.
func allToAllNetwork(n int) (*wdm.Network, error) {
	warm()
	nw, _, err := plans.NetworkAllToAll(n, cache.Options{})
	return nw, err
}

// Render formats rows as an aligned text table.
func Render(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// T1: Theorem 1 (odd n).

// T1Row reports the odd-n construction against Theorem 1.
type T1Row struct {
	N, P                 int
	Rho                  int // p(p+1)/2
	Constructed          int
	C3, C4               int
	TheoremC3, TheoremC4 int
	LowerBound           int
	Slack                int
	Valid, Optimal       bool
}

// TableT1 builds the Theorem 1 table for the given odd sizes.
func TableT1(ns []int) ([]T1Row, error) {
	var rows []T1Row
	for _, n := range ns {
		if n%2 == 0 {
			return nil, fmt.Errorf("bench: T1 wants odd n, got %d", n)
		}
		res, err := allToAll(n) // odd n: the Theorem 1 construction, cached
		if err != nil {
			return nil, err
		}
		cv := res.Covering
		err = cover.Verify(cv, graph.Complete(n))
		comp, _ := cover.TheoremComposition(n)
		rows = append(rows, T1Row{
			N: n, P: (n - 1) / 2,
			Rho:         cover.Rho(n),
			Constructed: cv.Size(),
			C3:          cv.NumTriangles(), C4: cv.NumQuads(),
			TheoremC3: comp.C3, TheoremC4: comp.C4,
			LowerBound: cover.LowerBound(n),
			Slack:      cv.DuplicateSlots(),
			Valid:      err == nil,
			Optimal:    cv.Size() == cover.Rho(n),
		})
	}
	return rows, nil
}

// RenderT1 formats the Theorem 1 table.
func RenderT1(rows []T1Row) string {
	hs := []string{"n", "p", "rho(n)", "built", "C3", "C4", "thm C3", "thm C4", "LB", "slack", "valid", "optimal"}
	var rs [][]string
	for _, r := range rows {
		rs = append(rs, []string{
			itoa(r.N), itoa(r.P), itoa(r.Rho), itoa(r.Constructed),
			itoa(r.C3), itoa(r.C4), itoa(r.TheoremC3), itoa(r.TheoremC4),
			itoa(r.LowerBound), itoa(r.Slack), fmt.Sprint(r.Valid), fmt.Sprint(r.Optimal),
		})
	}
	return Render(hs, rs)
}

// ---------------------------------------------------------------------
// T2: Theorem 2 (even n).

// T2Row reports the even-n constructor against Theorem 2.
type T2Row struct {
	N, P     int
	Rho      int // ⌈(p²+1)/2⌉
	Achieved int
	Ratio    float64 // Achieved / Rho
	C3, C4   int
	Valid    bool
	Optimal  bool   // search-certified ρ(n)
	Method   string // "search" or "layered"
}

// TableT2 builds the Theorem 2 table for the given even sizes.
func TableT2(ns []int) ([]T2Row, error) {
	var rows []T2Row
	for _, n := range ns {
		if n%2 == 1 {
			return nil, fmt.Errorf("bench: T2 wants even n, got %d", n)
		}
		res, err := allToAll(n) // even n: search within range, layered beyond
		if err != nil {
			return nil, err
		}
		cv, optimal := res.Covering, res.Optimal
		err = cover.Verify(cv, graph.Complete(n))
		method := "layered"
		if optimal {
			method = "search"
		}
		rows = append(rows, T2Row{
			N: n, P: n / 2,
			Rho:      cover.Rho(n),
			Achieved: cv.Size(),
			Ratio:    float64(cv.Size()) / float64(cover.Rho(n)),
			C3:       cv.NumTriangles(), C4: cv.NumQuads(),
			Valid:   err == nil,
			Optimal: optimal,
			Method:  method,
		})
	}
	return rows, nil
}

// RenderT2 formats the Theorem 2 table.
func RenderT2(rows []T2Row) string {
	hs := []string{"n", "p", "rho(n)", "achieved", "ratio", "C3", "C4", "valid", "optimal", "method"}
	var rs [][]string
	for _, r := range rows {
		rs = append(rs, []string{
			itoa(r.N), itoa(r.P), itoa(r.Rho), itoa(r.Achieved),
			fmt.Sprintf("%.3f", r.Ratio), itoa(r.C3), itoa(r.C4),
			fmt.Sprint(r.Valid), fmt.Sprint(r.Optimal), r.Method,
		})
	}
	return Render(hs, rs)
}

// ---------------------------------------------------------------------
// T3: exact optima by exhaustive search.

// T3Row certifies ρ(n) for one n: a covering found at budget ρ(n) and
// (for n within proof reach) infeasibility proved at ρ(n)−1.
type T3Row struct {
	N           int
	Rho         int
	FoundAtRho  bool
	ProvedBelow bool // complete search at ρ(n)−1 found nothing
	ProofNodes  int64
}

// TableT3 runs the certifications. proofLimit bounds the n for which the
// (expensive, unbounded-cycle-length) infeasibility proof runs.
func TableT3(ns []int, proofLimit int) ([]T3Row, error) {
	var rows []T3Row
	for _, n := range ns {
		row := T3Row{N: n, Rho: cover.Rho(n)}
		if n <= 9 {
			_, row.FoundAtRho = construct.ExactOptimal(n, 6_000_000)
		} else {
			// Even path uses the repair search; served from the sweep cache.
			res, err := allToAll(n)
			if err != nil {
				return nil, err
			}
			row.FoundAtRho = res.Optimal && res.Covering.Size() == row.Rho
		}
		if n <= proofLimit {
			out := construct.Exact(n, construct.ExactOptions{
				Budget: row.Rho - 1, MaxLen: 0, NodeLimit: 50_000_000,
			})
			row.ProvedBelow = out.Complete && out.Covering == nil
			row.ProofNodes = out.Nodes
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderT3 formats the certification table.
func RenderT3(rows []T3Row) string {
	hs := []string{"n", "rho(n)", "found at rho", "rho-1 infeasible", "proof nodes"}
	var rs [][]string
	for _, r := range rows {
		proved := "-"
		nodes := "-"
		if r.ProofNodes > 0 || r.ProvedBelow {
			proved = fmt.Sprint(r.ProvedBelow)
			nodes = fmt.Sprint(r.ProofNodes)
		}
		rs = append(rs, []string{itoa(r.N), itoa(r.Rho), fmt.Sprint(r.FoundAtRho), proved, nodes})
	}
	return Render(hs, rs)
}

// ---------------------------------------------------------------------
// E1: the paper's worked example.

// E1Result reproduces the C4/K4 illustration.
type E1Result struct {
	BadTourRoutable   bool // (1,3,4,2): paper says NO
	GoodCoveringValid bool // {(1,2,3,4),(1,2,4),(1,3,4)}: paper says YES
	GoodCoveringSize  int
	RhoOfK4           int
}

// ExampleK4 runs the example.
func ExampleK4() E1Result {
	r := ring.MustNew(4)
	bad := routing.Tour{0, 2, 3, 1} // paper's (1,3,4,2), 0-based
	cv := cover.NewCovering(r)
	cv.Add(
		cover.MustCycle(r, 0, 1, 2, 3),
		cover.MustCycle(r, 0, 1, 3),
		cover.MustCycle(r, 0, 2, 3),
	)
	return E1Result{
		BadTourRoutable:   bad.HasDisjointRouting(r),
		GoodCoveringValid: cover.Verify(cv, graph.Complete(4)) == nil,
		GoodCoveringSize:  cv.Size(),
		RhoOfK4:           cover.Rho(4),
	}
}

// ---------------------------------------------------------------------
// C1: what the DRC costs versus unconstrained coverings.

// C1Row compares covering sizes with and without the routing constraint.
type C1Row struct {
	N              int
	RhoDRC         int
	TriangleNoDRC  int // Mills–Mullin / Stanton–Rogers formula
	GreedyTriangle int // constructive, no DRC
	QuadBoundNoDRC int
	PerEdge        int
}

// TableC1 builds the DRC-cost comparison.
func TableC1(ns []int) []C1Row {
	var rows []C1Row
	for _, n := range ns {
		rows = append(rows, C1Row{
			N:              n,
			RhoDRC:         cover.Rho(n),
			TriangleNoDRC:  baselines.TriangleCoverNumber(n),
			GreedyTriangle: len(baselines.GreedyTriangleCover(n)),
			QuadBoundNoDRC: baselines.QuadCoverBound(n),
			PerEdge:        baselines.PerEdgeNaive(n),
		})
	}
	return rows
}

// RenderC1 formats the DRC-cost table.
func RenderC1(rows []C1Row) string {
	hs := []string{"n", "rho (DRC)", "C3-cover (noDRC)", "greedy C3 (noDRC)", "C4 bound (noDRC)", "per-edge"}
	var rs [][]string
	for _, r := range rows {
		rs = append(rs, []string{
			itoa(r.N), itoa(r.RhoDRC), itoa(r.TriangleNoDRC),
			itoa(r.GreedyTriangle), itoa(r.QuadBoundNoDRC), itoa(r.PerEdge),
		})
	}
	return Render(hs, rs)
}

// ---------------------------------------------------------------------
// C2: objective comparison (count vs total size).

// C2Row contrasts this paper's objective (number of cycles) with the
// EMZ/GLS objective (sum of cycle sizes) on the same instances.
type C2Row struct {
	N            int
	OurCycles    int
	OurTotalSize int
	TriCycles    int // triangles-only DRC covering
	TriTotalSize int
	SizeLB       int // EMZ objective lower bound |E|
}

// TableC2 builds the objective comparison.
func TableC2(ns []int) ([]C2Row, error) {
	var rows []C2Row
	for _, n := range ns {
		res, err := allToAll(n)
		if err != nil {
			return nil, err
		}
		tri := baselines.DRCTriangleOnly(n)
		rows = append(rows, C2Row{
			N:            n,
			OurCycles:    res.Covering.Size(),
			OurTotalSize: res.Covering.TotalVertices(),
			TriCycles:    tri.Size(),
			TriTotalSize: tri.TotalVertices(),
			SizeLB:       baselines.TotalSizeLowerBound(n),
		})
	}
	return rows, nil
}

// RenderC2 formats the objective comparison.
func RenderC2(rows []C2Row) string {
	hs := []string{"n", "ours #cycles", "ours Σ|C|", "C3-only #cycles", "C3-only Σ|C|", "Σ|C| LB"}
	var rs [][]string
	for _, r := range rows {
		rs = append(rs, []string{
			itoa(r.N), itoa(r.OurCycles), itoa(r.OurTotalSize),
			itoa(r.TriCycles), itoa(r.TriTotalSize), itoa(r.SizeLB),
		})
	}
	return Render(hs, rs)
}

// ---------------------------------------------------------------------
// F1: asymptotics ρ(n)/n² → 1/8.

// F1Row is one point of the asymptotic series.
type F1Row struct {
	N     int
	Rho   int
	Ratio float64 // ρ(n)/n²
}

// SeriesF1 computes the series.
func SeriesF1(ns []int) []F1Row {
	var rows []F1Row
	for _, n := range ns {
		rows = append(rows, F1Row{N: n, Rho: cover.Rho(n), Ratio: float64(cover.Rho(n)) / float64(n*n)})
	}
	return rows
}

// RenderF1 formats the asymptotic series.
func RenderF1(rows []F1Row) string {
	hs := []string{"n", "rho(n)", "rho/n^2", "limit"}
	var rs [][]string
	for _, r := range rows {
		rs = append(rs, []string{itoa(r.N), itoa(r.Rho), fmt.Sprintf("%.5f", r.Ratio), "0.12500"})
	}
	return Render(hs, rs)
}

// ---------------------------------------------------------------------
// F2: survivability simulation.

// F2Row summarises failure drills for one network size.
type F2Row struct {
	N              int
	Demands        int
	Subnets        int
	AllRestored    bool
	AffectedPerCut int // = number of subnetworks (each failure breaks one arc per cycle)
	MaxSpareLen    int
	MeanSpareLen   float64
	DoubleMean     float64 // mean restoration under double failures
	DoubleWorst    float64
}

// TableF2 runs the failure sweeps on the survivability engine (serial:
// the sweep sizes here are small and the table rows already fan out via
// ParallelTableF2). Double-failure sweeps are quadratic in n and run
// only for n ≤ doubleLimit.
func TableF2(ns []int, doubleLimit int) ([]F2Row, error) {
	var rows []F2Row
	for _, n := range ns {
		nw, err := allToAllNetwork(n)
		if err != nil {
			return nil, err
		}
		sim := survive.NewSimulator(nw)
		sweep, err := sim.Sweep(survive.SweepOptions{K: 1, Workers: 1})
		if err != nil {
			return nil, err
		}
		row := F2Row{
			N:              n,
			Demands:        n * (n - 1) / 2,
			Subnets:        len(nw.Subnets),
			AllRestored:    sweep.AllRestored,
			AffectedPerCut: sweep.MostAffected.Affected,
			MaxSpareLen:    sweep.MaxSpareLen,
			DoubleMean:     -1,
			DoubleWorst:    -1,
		}
		if sweep.TotalAffected > 0 {
			row.MeanSpareLen = float64(sweep.SumSpareLen) / float64(sweep.TotalAffected)
		}
		if n <= doubleLimit {
			double, err := sim.Sweep(survive.SweepOptions{K: 2, Workers: 1})
			if err != nil {
				return nil, err
			}
			row.DoubleMean, row.DoubleWorst = double.MeanRestoration, double.WorstRestoration
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderF2 formats the survivability table.
func RenderF2(rows []F2Row) string {
	hs := []string{"n", "demands", "subnets", "1-cut restored", "affected/cut", "max spare", "mean spare", "2-cut mean", "2-cut worst"}
	var rs [][]string
	for _, r := range rows {
		dm, dw := "-", "-"
		if r.DoubleMean >= 0 {
			dm = fmt.Sprintf("%.4f", r.DoubleMean)
			dw = fmt.Sprintf("%.4f", r.DoubleWorst)
		}
		rs = append(rs, []string{
			itoa(r.N), itoa(r.Demands), itoa(r.Subnets), fmt.Sprint(r.AllRestored),
			itoa(r.AffectedPerCut), itoa(r.MaxSpareLen),
			fmt.Sprintf("%.2f", r.MeanSpareLen), dm, dw,
		})
	}
	return Render(hs, rs)
}

// ---------------------------------------------------------------------
// F3: WDM cost profile.

// F3Row is the optical cost profile of a planned network.
type F3Row struct {
	N           int
	Subnets     int
	Wavelengths int
	ADMs        int
	MaxTransit  int
	Cost        float64
}

// TableF3 evaluates the default cost model over planned networks.
func TableF3(ns []int) ([]F3Row, error) {
	var rows []F3Row
	for _, n := range ns {
		nw, err := allToAllNetwork(n)
		if err != nil {
			return nil, err
		}
		rows = append(rows, F3Row{
			N:           n,
			Subnets:     len(nw.Subnets),
			Wavelengths: nw.Wavelengths(),
			ADMs:        nw.ADMCount(),
			MaxTransit:  nw.MaxTransit(),
			Cost:        wdm.DefaultCostModel.Cost(nw),
		})
	}
	return rows, nil
}

// RenderF3 formats the cost table.
func RenderF3(rows []F3Row) string {
	hs := []string{"n", "subnets", "wavelengths", "ADMs", "max transit", "cost"}
	var rs [][]string
	for _, r := range rows {
		rs = append(rs, []string{
			itoa(r.N), itoa(r.Subnets), itoa(r.Wavelengths), itoa(r.ADMs),
			itoa(r.MaxTransit), fmt.Sprintf("%.1f", r.Cost),
		})
	}
	return Render(hs, rs)
}

// ---------------------------------------------------------------------
// X1: λK_n extension.

// X1Row reports the λK_n construction against the generalised bound.
type X1Row struct {
	N, Lambda int
	Cycles    int
	Bound     int
	Valid     bool
}

// TableX1 sweeps λ for fixed sizes.
func TableX1(ns []int, lambdas []int) ([]X1Row, error) {
	var rows []X1Row
	warm()
	for _, n := range ns {
		for _, l := range lambdas {
			in := instance.Lambda(n, l)
			res, _, err := plans.Cover(in, cache.Options{})
			if err != nil {
				return nil, err
			}
			rows = append(rows, X1Row{
				N: n, Lambda: l,
				Cycles: res.Covering.Size(),
				Bound:  cover.InstanceLowerBound(res.Covering.Ring, in.Demand),
				Valid:  cover.Verify(res.Covering, in.Demand) == nil,
			})
		}
	}
	return rows, nil
}

// RenderX1 formats the λK_n table.
func RenderX1(rows []X1Row) string {
	hs := []string{"n", "lambda", "cycles", "arc-length LB", "valid"}
	var rs [][]string
	for _, r := range rows {
		rs = append(rs, []string{itoa(r.N), itoa(r.Lambda), itoa(r.Cycles), itoa(r.Bound), fmt.Sprint(r.Valid)})
	}
	return Render(hs, rs)
}

// ---------------------------------------------------------------------
// X2: extension topologies.

// X2Row reports one extension-topology experiment.
type X2Row struct {
	Topology string
	Cycles   int
	Edges    int
	Exact    bool // every edge covered exactly once
	Valid    bool
}

// TableX2 runs the grid/torus/tree-of-rings demonstrations.
func TableX2() ([]X2Row, error) {
	var rows []X2Row

	grid := topo.Grid(6, 5)
	faces := topo.GridFaceCover(6, 5)
	gValid := true
	for _, f := range faces {
		if err := f.Verify(grid); err != nil {
			gValid = false
			break
		}
	}
	gCov := topo.CoveredEdges(faces)
	gExact := len(gCov) == grid.G.M()
	//cyclecover:nondet order-free fold: checks every multiplicity equals 1
	for _, c := range gCov {
		if c != 1 {
			gExact = false
		}
	}
	rows = append(rows, X2Row{Topology: grid.Name + " faces", Cycles: len(faces), Edges: grid.G.M(), Exact: gExact, Valid: gValid})

	torus := topo.Torus(6, 4)
	tFaces := topo.TorusCheckerboardCover(6, 4)
	tValid := true
	for _, f := range tFaces {
		if err := f.Verify(torus); err != nil {
			tValid = false
			break
		}
	}
	tCov := topo.CoveredEdges(tFaces)
	tExact := len(tCov) == torus.G.M()
	//cyclecover:nondet order-free fold: checks every multiplicity equals 1
	for _, c := range tCov {
		if c != 1 {
			tExact = false
		}
	}
	rows = append(rows, X2Row{Topology: torus.Name + " checkerboard", Cycles: len(tFaces), Edges: torus.G.M(), Exact: tExact, Valid: tValid})

	tree, err := topo.BuildTree([]topo.RingSpec{
		{Size: 11, Parent: -1}, {Size: 7, Parent: 0}, {Size: 9, Parent: 0}, {Size: 5, Parent: 1},
	})
	if err != nil {
		return nil, err
	}
	plans, err := tree.PlanIntraRing()
	if err != nil {
		return nil, err
	}
	edges := 0
	for _, sp := range tree.Specs {
		edges += sp.Size * (sp.Size - 1) / 2
	}
	rows = append(rows, X2Row{
		Topology: fmt.Sprintf("tree-of-rings (11,7,9,5), intra-ring all-to-all"),
		Cycles:   topo.TotalCycles(plans),
		Edges:    edges,
		Exact:    topo.TotalCycles(plans) == topo.RhoTree(tree.Specs),
		Valid:    true,
	})
	return rows, nil
}

// RenderX2 formats the topology table.
func RenderX2(rows []X2Row) string {
	hs := []string{"topology", "cycles", "edges", "exact", "valid"}
	var rs [][]string
	for _, r := range rows {
		rs = append(rs, []string{r.Topology, itoa(r.Cycles), itoa(r.Edges), fmt.Sprint(r.Exact), fmt.Sprint(r.Valid)})
	}
	return Render(hs, rs)
}

// ---------------------------------------------------------------------
// A1: even-constructor ablation.

// A1Row contrasts the even-constructor layers.
type A1Row struct {
	N        int
	Rho      int
	Layered  int // constructive heuristic only
	Achieved int // full constructor (with repair search)
	Optimal  bool
}

// TableA1 runs the ablation.
func TableA1(ns []int) []A1Row {
	var rows []A1Row
	for _, n := range ns {
		cv, opt := construct.Even(n)
		rows = append(rows, A1Row{
			N:        n,
			Rho:      cover.Rho(n),
			Layered:  construct.LayeredEvenSize(n),
			Achieved: cv.Size(),
			Optimal:  opt,
		})
	}
	return rows
}

// RenderA1 formats the ablation table.
func RenderA1(rows []A1Row) string {
	hs := []string{"n", "rho(n)", "layered only", "with search", "optimal"}
	var rs [][]string
	for _, r := range rows {
		rs = append(rs, []string{itoa(r.N), itoa(r.Rho), itoa(r.Layered), itoa(r.Achieved), fmt.Sprint(r.Optimal)})
	}
	return Render(hs, rs)
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

package bench

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelMap evaluates f over ns with a bounded worker pool, preserving
// input order in the result. The experiment sweeps are embarrassingly
// parallel (one ring size per row), and the constructors are safe for
// concurrent use (pure functions behind the single-flighted sweep cache
// in bench.go), so the big tables scale with cores. workers ≤ 0 selects
// GOMAXPROCS.
func parallelMap[T any](ns []int, workers int, f func(n int) (T, error)) ([]T, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ns) {
		workers = len(ns)
	}
	if workers <= 1 {
		out := make([]T, len(ns))
		for i, n := range ns {
			v, err := f(n)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	out := make([]T, len(ns))
	errs := make([]error, len(ns))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i], errs[i] = f(ns[i])
			}
		}()
	}
	for i := range ns {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("bench: n=%d: %w", ns[i], err)
		}
	}
	return out, nil
}

// ParallelTableT1 is TableT1 with the rows computed concurrently.
func ParallelTableT1(ns []int, workers int) ([]T1Row, error) {
	return parallelMap(ns, workers, func(n int) (T1Row, error) {
		rows, err := TableT1([]int{n})
		if err != nil {
			return T1Row{}, err
		}
		return rows[0], nil
	})
}

// ParallelTableT2 is TableT2 with the rows computed concurrently.
func ParallelTableT2(ns []int, workers int) ([]T2Row, error) {
	return parallelMap(ns, workers, func(n int) (T2Row, error) {
		rows, err := TableT2([]int{n})
		if err != nil {
			return T2Row{}, err
		}
		return rows[0], nil
	})
}

// ParallelTableF2 is TableF2 with the rows computed concurrently (the
// failure sweeps dominate large-n experiment time).
func ParallelTableF2(ns []int, doubleLimit, workers int) ([]F2Row, error) {
	return parallelMap(ns, workers, func(n int) (F2Row, error) {
		rows, err := TableF2([]int{n}, doubleLimit)
		if err != nil {
			return F2Row{}, err
		}
		return rows[0], nil
	})
}

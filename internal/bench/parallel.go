package bench

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// parallelMap evaluates f over ns with a bounded worker pool, preserving
// input order in the result. The experiment sweeps are embarrassingly
// parallel (one ring size per row), and the constructors are safe for
// concurrent use (pure functions behind the single-flighted sweep cache
// in bench.go), so the big tables scale with cores. workers ≤ 0 selects
// GOMAXPROCS. A fired ctx skips every row not yet started and fails the
// sweep with the context's error — the interrupt contract cmd/experiments
// relies on for clean SIGINT aborts.
func parallelMap[T any](ctx context.Context, ns []int, workers int, f func(n int) (T, error)) ([]T, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ns) {
		workers = len(ns)
	}
	if workers <= 1 {
		out := make([]T, len(ns))
		for i, n := range ns {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("bench: sweep interrupted before n=%d: %w", n, err)
			}
			v, err := f(n)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	out := make([]T, len(ns))
	errs := make([]error, len(ns))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				out[i], errs[i] = f(ns[i])
			}
		}()
	}
	for i := range ns {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("bench: n=%d: %w", ns[i], err)
		}
	}
	return out, nil
}

// ParallelTableT1 is TableT1 with the rows computed concurrently.
func ParallelTableT1(ns []int, workers int) ([]T1Row, error) {
	return ParallelTableT1Ctx(context.Background(), ns, workers)
}

// ParallelTableT1Ctx is ParallelTableT1 under a context: a fired ctx
// skips unstarted rows and fails the sweep with ctx's error.
func ParallelTableT1Ctx(ctx context.Context, ns []int, workers int) ([]T1Row, error) {
	return parallelMap(ctx, ns, workers, func(n int) (T1Row, error) {
		rows, err := TableT1([]int{n})
		if err != nil {
			return T1Row{}, err
		}
		return rows[0], nil
	})
}

// ParallelTableT2 is TableT2 with the rows computed concurrently.
func ParallelTableT2(ns []int, workers int) ([]T2Row, error) {
	return ParallelTableT2Ctx(context.Background(), ns, workers)
}

// ParallelTableT2Ctx is ParallelTableT2 under a context.
func ParallelTableT2Ctx(ctx context.Context, ns []int, workers int) ([]T2Row, error) {
	return parallelMap(ctx, ns, workers, func(n int) (T2Row, error) {
		rows, err := TableT2([]int{n})
		if err != nil {
			return T2Row{}, err
		}
		return rows[0], nil
	})
}

// ParallelTableF2 is TableF2 with the rows computed concurrently (the
// failure sweeps dominate large-n experiment time).
func ParallelTableF2(ns []int, doubleLimit, workers int) ([]F2Row, error) {
	return ParallelTableF2Ctx(context.Background(), ns, doubleLimit, workers)
}

// ParallelTableF2Ctx is ParallelTableF2 under a context.
func ParallelTableF2Ctx(ctx context.Context, ns []int, doubleLimit, workers int) ([]F2Row, error) {
	return parallelMap(ctx, ns, workers, func(n int) (F2Row, error) {
		rows, err := TableF2([]int{n}, doubleLimit)
		if err != nil {
			return F2Row{}, err
		}
		return rows[0], nil
	})
}

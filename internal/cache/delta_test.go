package cache

import (
	"errors"
	"testing"

	"github.com/cyclecover/cyclecover/internal/construct"
	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/instance"
)

func mustDelta(t *testing.T, spec string) instance.Delta {
	t.Helper()
	d, err := instance.ParseDelta(spec)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// planParent plans an instance and returns its signature, ready for
// ResolveDelta.
func planParent(t *testing.T, p *Plans, in instance.Instance, opts Options) string {
	t.Helper()
	if _, _, err := p.Cover(in, opts); err != nil {
		t.Fatal(err)
	}
	return Signature(in, opts)
}

func TestResolveDeltaErrors(t *testing.T) {
	p := New(0)
	d := mustDelta(t, "add:0:1")

	// Unknown parent: nothing planned yet.
	if _, err := p.ResolveDelta("n=9;d=k1", d); !errors.Is(err, ErrUnknownParent) {
		t.Fatalf("unplanned parent: err = %v, want ErrUnknownParent", err)
	}

	in := instance.AllToAll(9)
	sig := planParent(t, p, in, Options{})

	// A bogus signature string is just an unknown parent, not a panic.
	if _, err := p.ResolveDelta("garbage", d); !errors.Is(err, ErrUnknownParent) {
		t.Fatalf("garbage parent: err = %v, want ErrUnknownParent", err)
	}
	// Deltas invalid against the parent's demand wrap ErrBadDelta.
	for _, spec := range []string{"add:0:9", "add:3:3", "remove:0:0"} {
		if _, err := p.ResolveDelta(sig, mustDelta(t, spec)); !errors.Is(err, ErrBadDelta) {
			t.Errorf("%s: err = %v, want ErrBadDelta", spec, err)
		}
	}
}

func TestResolveDeltaDerivesChild(t *testing.T) {
	p := New(0)
	in := instance.AllToAll(9)
	sig := planParent(t, p, in, Options{})

	dp, err := p.ResolveDelta(sig, mustDelta(t, "fail:2:7"))
	if err != nil {
		t.Fatal(err)
	}
	if dp.ParentSig != sig || dp.ChildSig == "" || dp.ChildSig == sig {
		t.Fatalf("signatures: parent=%q child=%q", dp.ParentSig, dp.ChildSig)
	}
	if dp.Child.N() != 9 || dp.Child.Demand.Mult(2, 7) != 0 {
		t.Fatalf("child demand wrong: n=%d mult(2,7)=%d", dp.Child.N(), dp.Child.Demand.Mult(2, 7))
	}
	// The parent's demand must be untouched.
	if dp.Parent.Demand.Mult(2, 7) != 1 {
		t.Fatal("ResolveDelta mutated the parent demand")
	}
	// Resolving the same delta twice derives the same child signature —
	// the property the coalescing and cache admission hang off.
	dp2, err := p.ResolveDelta(sig, mustDelta(t, "fail:2:7"))
	if err != nil {
		t.Fatal(err)
	}
	if dp2.ChildSig != dp.ChildSig {
		t.Fatalf("child signature not canonical: %q != %q", dp.ChildSig, dp2.ChildSig)
	}
}

// TestCoverDeltaWarmRepairAdmitsChild pins the tentpole contract at the
// cache layer: the delta build warm-repairs, verifies, and admits the
// child under its own signature, so both repeat deltas and cold requests
// for the same child are hits.
func TestCoverDeltaWarmRepairAdmitsChild(t *testing.T) {
	p := New(0)
	in := instance.AllToAll(11)
	sig := planParent(t, p, in, Options{})

	dp, err := p.ResolveDelta(sig, mustDelta(t, "fail:2:7"))
	if err != nil {
		t.Fatal(err)
	}
	res, hit, err := p.CoverDelta(dp)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first delta build reported a cache hit")
	}
	if res.Method != construct.MethodDelta {
		t.Fatalf("method = %q, want %q (warm repair)", res.Method, construct.MethodDelta)
	}
	if err := cover.Verify(res.Covering, dp.Child.Demand); err != nil {
		t.Fatalf("repaired covering does not verify: %v", err)
	}

	// Repeat delta: cache hit with the same answer.
	res2, hit2, err := p.CoverDelta(dp)
	if err != nil {
		t.Fatal(err)
	}
	if !hit2 || res2.Covering.Size() != res.Covering.Size() {
		t.Fatalf("repeat delta: hit=%v size=%d, want hit with size %d", hit2, res2.Covering.Size(), res.Covering.Size())
	}
	// Cold plan of the same child instance: also a hit — the child was
	// admitted under its canonical signature, not a delta-private key.
	res3, hit3, err := p.Cover(dp.Child, dp.Opts)
	if err != nil {
		t.Fatal(err)
	}
	if !hit3 || res3.Method != construct.MethodDelta {
		t.Fatalf("cold request for the child: hit=%v method=%q, want hit with the repaired plan", hit3, res3.Method)
	}

	// Returned coverings are private clones: mutating one must not leak.
	res.Covering.Cycles = nil
	res4, _, err := p.CoverDelta(dp)
	if err != nil {
		t.Fatal(err)
	}
	if res4.Covering.Size() == 0 {
		t.Fatal("caller mutation reached the cached covering")
	}
}

// TestCoverDeltaStrategyParentRebuildsCold pins the strategy contract: a
// parent planned under an explicit strategy replans children through that
// strategy, never through warm repair.
func TestCoverDeltaStrategyParentRebuildsCold(t *testing.T) {
	p := New(0)
	in := instance.AllToAll(9)
	sig := planParent(t, p, in, Options{Strategy: "greedy"})

	dp, err := p.ResolveDelta(sig, mustDelta(t, "add:0:4"))
	if err != nil {
		t.Fatal(err)
	}
	if dp.Opts.Strategy != "greedy" {
		t.Fatalf("child options lost the parent's strategy: %+v", dp.Opts)
	}
	res, _, err := p.CoverDelta(dp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Method == construct.MethodDelta {
		t.Fatal("strategy parent must not warm-repair its children")
	}
	if err := cover.Verify(res.Covering, dp.Child.Demand); err != nil {
		t.Fatal(err)
	}
}

// TestCoverDeltaChainsAcrossGenerations drives repair through repair:
// the child of a delta is itself a valid parent, demand provenance
// included, so replanning composes across a sequence of changes.
func TestCoverDeltaChainsAcrossGenerations(t *testing.T) {
	p := New(0)
	in := instance.AllToAll(10)
	sig := planParent(t, p, in, Options{})

	for gen, spec := range []string{"fail:0:5", "add:1:6", "set:2:7:3"} {
		dp, err := p.ResolveDelta(sig, mustDelta(t, spec))
		if err != nil {
			t.Fatalf("generation %d (%s): %v", gen, spec, err)
		}
		res, _, err := p.CoverDelta(dp)
		if err != nil {
			t.Fatalf("generation %d (%s): %v", gen, spec, err)
		}
		if err := cover.Verify(res.Covering, dp.Child.Demand); err != nil {
			t.Fatalf("generation %d (%s): %v", gen, spec, err)
		}
		sig = dp.ChildSig
	}
}

package cache

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/instance"
)

func TestSnapshotRoundTrip(t *testing.T) {
	src := New(32)
	for _, n := range []int{7, 8, 12} {
		if _, _, err := src.CoverAllToAll(n, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := src.Cover(instance.Lambda(7, 2), Options{}); err != nil {
		t.Fatal(err)
	}
	// Hash-class and non-default-option entries must not round-trip.
	if _, _, err := src.Cover(instance.Hub(9, 0), Options{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := src.CoverAllToAll(9, Options{EliminateRedundant: true}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := src.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if s := buf.String(); strings.Contains(s, "o=er") || strings.Contains(s, "d=h") {
		t.Fatalf("snapshot leaked non-persistable entries: %s", s)
	}

	dst := New(32)
	loaded, skipped, err := dst.LoadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 4 || skipped != 0 {
		t.Fatalf("loaded %d skipped %d, want 4/0", loaded, skipped)
	}
	// Warm hits, identical results, no recomputation.
	for _, n := range []int{7, 8, 12} {
		res, hit, err := dst.CoverAllToAll(n, Options{})
		if err != nil || !hit {
			t.Fatalf("n=%d after load: hit=%v err=%v", n, hit, err)
		}
		fresh, _, _ := src.CoverAllToAll(n, Options{})
		if res.Covering.Size() != fresh.Covering.Size() || res.Optimal != fresh.Optimal {
			t.Fatalf("n=%d: snapshot entry drifted", n)
		}
		if err := cover.Verify(res.Covering, instance.AllToAll(n).Demand); err != nil {
			t.Fatal(err)
		}
	}
	if st := dst.Stats(); st.Coverings.Misses != 0 {
		t.Fatalf("warm start still computed: %+v", st)
	}
}

// TestSnapshotRejectsTamperedEntries proves a snapshot cannot inject bad
// results: broken coverings and false optimality claims are dropped.
func TestSnapshotRejectsTamperedEntries(t *testing.T) {
	src := New(8)
	if _, _, err := src.CoverAllToAll(9, Options{}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		Version   int `json:"version"`
		Coverings []struct {
			N       int     `json:"n"`
			Lambda  int     `json:"lambda"`
			Method  string  `json:"method"`
			Optimal bool    `json:"optimal"`
			Cycles  [][]int `json:"cycles"`
		} `json:"coverings"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatal(err)
	}

	mutate := func(f func()) (loaded, skipped int) {
		orig := file.Coverings[0].Cycles
		defer func() { file.Coverings[0].Cycles = orig; file.Coverings[0].Optimal = true }()
		f()
		raw, err := json.Marshal(file)
		if err != nil {
			t.Fatal(err)
		}
		dst := New(8)
		loaded, skipped, err = dst.LoadSnapshot(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		return loaded, skipped
	}

	// Drop a cycle: the covering misses demand edges → rejected.
	if loaded, skipped := mutate(func() {
		file.Coverings[0].Cycles = file.Coverings[0].Cycles[1:]
	}); loaded != 0 || skipped != 1 {
		t.Fatalf("incomplete covering admitted: loaded=%d skipped=%d", loaded, skipped)
	}
	// Inflate the covering while claiming optimality → ρ check rejects.
	if loaded, skipped := mutate(func() {
		file.Coverings[0].Cycles = append(file.Coverings[0].Cycles, file.Coverings[0].Cycles[0])
	}); loaded != 0 || skipped != 1 {
		t.Fatalf("false optimality claim admitted: loaded=%d skipped=%d", loaded, skipped)
	}
	// Corrupt a cycle beyond reconstruction → rejected.
	if loaded, skipped := mutate(func() {
		file.Coverings[0].Cycles[0] = []int{0, 0}
	}); loaded != 0 || skipped != 1 {
		t.Fatalf("malformed cycle admitted: loaded=%d skipped=%d", loaded, skipped)
	}

	// Wrong version is a hard error.
	raw, _ := json.Marshal(map[string]any{"version": 99})
	if _, _, err := New(8).LoadSnapshot(bytes.NewReader(raw)); err == nil {
		t.Fatal("future snapshot version accepted")
	}
	// Garbage is a hard error.
	if _, _, err := New(8).LoadSnapshot(strings.NewReader("{")); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

package cache

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/cyclecover/cyclecover/internal/faultinject"
)

// WriteFileAtomic writes a file via temp-file + fsync + rename, so a
// crash mid-write can never leave a truncated file at path: readers see
// either the previous complete content or the new complete content. The
// write callback streams the content; any of its errors (or a sync or
// rename failure) aborts the operation, removes the temp file and leaves
// path untouched. The containing directory is fsynced best-effort after
// the rename so the new name itself survives a power loss.
func WriteFileAtomic(path string, write func(w *os.File) error) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("cache: creating temp file: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = write(f); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("cache: syncing %s: %w", tmp, err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("cache: closing %s: %w", tmp, err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("cache: renaming into place: %w", err)
	}
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// SaveSnapshotFile persists the cache's snapshot (SaveSnapshot) to path
// atomically: a crash mid-save leaves the previous snapshot intact, never
// a truncated file.
func (p *Plans) SaveSnapshotFile(path string) error {
	//cyclecover:faultpoint snapshot write: chaos tests prove a failed save never corrupts the previous file
	if err := faultinject.Inject(faultinject.SiteSnapshotSave); err != nil {
		return fmt.Errorf("cache: saving snapshot %s: %w", path, err)
	}
	return WriteFileAtomic(path, func(f *os.File) error {
		return p.SaveSnapshot(f)
	})
}

// LoadSnapshotFile warms the cache from a snapshot file. A missing file
// is not an error — a fresh deployment simply starts cold with
// (0, 0, nil) — while an unreadable or malformed file is, so callers can
// decide to log-and-skip rather than fail startup (see cmd/cycled).
func (p *Plans) LoadSnapshotFile(path string) (loaded, skipped int, err error) {
	//cyclecover:faultpoint snapshot read: chaos tests prove a failed load starts cold, never fatal
	if err := faultinject.Inject(faultinject.SiteSnapshotLoad); err != nil {
		return 0, 0, fmt.Errorf("cache: opening snapshot: %w", err)
	}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, 0, nil
		}
		return 0, 0, fmt.Errorf("cache: opening snapshot: %w", err)
	}
	defer f.Close()
	return p.LoadSnapshot(f)
}

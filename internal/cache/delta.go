package cache

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"github.com/cyclecover/cyclecover/internal/construct"
	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/instance"
	"github.com/cyclecover/cyclecover/internal/ring"
	"github.com/cyclecover/cyclecover/internal/scratch"
)

// ErrUnknownParent reports that a delta's parent signature resolved to no
// cached plan: the parent was never planned here, or has been evicted.
// Retryable by planning the parent first.
var ErrUnknownParent = errors.New("cache: unknown parent plan")

// ErrBadDelta reports a delta that is invalid against its parent's demand
// (endpoints out of range, removal from an absent pair, ...).
var ErrBadDelta = errors.New("cache: invalid delta")

// DeltaPlan is a resolved incremental replanning request: the cached
// parent, the derived child instance, and the signatures binding both to
// the cache. Produced by ResolveDelta, consumed by CoverDeltaCtx; the
// embedded Parent covering and demand are shared with the cache and must
// be treated as read-only.
type DeltaPlan struct {
	ParentSig string
	Parent    CoverResult
	Delta     instance.Delta
	Child     instance.Instance
	ChildSig  string
	Opts      Options
}

// ResolveDelta resolves an incremental replanning request: it fetches the
// parent plan by its canonical signature, applies the delta to the
// parent's demand, and derives the child instance plus its cache
// signature under the parent's own options (parsed back from the
// signature, so a parent planned with a strategy or optimiser suffix
// replans its children the same way). Errors wrap ErrUnknownParent or
// ErrBadDelta so transports can map them to their 4xx table.
func (p *Plans) ResolveDelta(parentSig string, d instance.Delta) (DeltaPlan, error) {
	v, ok := p.coverings.Get(parentSig)
	if !ok {
		return DeltaPlan{}, fmt.Errorf("%w: no cached plan under signature %q", ErrUnknownParent, parentSig)
	}
	parent := v.(CoverResult)
	if parent.Demand == nil {
		return DeltaPlan{}, fmt.Errorf("%w: plan %q carries no demand provenance", ErrUnknownParent, parentSig)
	}
	if isGeneralSignature(parentSig) {
		// A general-topology parent's host graph is not part of the demand
		// provenance; applying an edge delta to the demand alone would
		// silently rebuild the child as a ring instance and lose the host.
		return DeltaPlan{}, fmt.Errorf("%w: parent %q is a general-topology plan; delta replanning applies to ring instances only", ErrBadDelta, parentSig)
	}
	childDemand, err := d.Apply(parent.Demand)
	if err != nil {
		return DeltaPlan{}, fmt.Errorf("%w: %v", ErrBadDelta, err)
	}
	opts := optionsFromSignature(parentSig)
	child := instance.Instance{
		Name:   fmt.Sprintf("%s + %s", parentSig, d),
		Demand: childDemand,
	}
	return DeltaPlan{
		ParentSig: parentSig,
		Parent:    parent,
		Delta:     d,
		Child:     child,
		ChildSig:  Signature(child, opts),
		Opts:      opts,
	}, nil
}

// isGeneralSignature reports whether a canonical signature was produced
// by the general-topology branch of Signature (a `t=h…` host component).
func isGeneralSignature(sig string) bool {
	for _, seg := range strings.Split(sig, ";") {
		if strings.HasPrefix(seg, "t=h") {
			return true
		}
	}
	return false
}

// optionsFromSignature recovers the Options encoded in a canonical
// signature's suffix segments (see withOptions). Unknown segments are
// ignored: they cannot have been produced by withOptions, and a parent
// signature that resolved in the cache is canonical by construction.
func optionsFromSignature(sig string) Options {
	var opts Options
	for _, seg := range strings.Split(sig, ";") {
		switch {
		case seg == "o=er":
			opts.EliminateRedundant = true
		case strings.HasPrefix(seg, "s="):
			opts.Strategy = strings.TrimPrefix(seg, "s=")
		}
	}
	return opts
}

// CoverDelta is CoverDeltaCtx under context.Background().
func (p *Plans) CoverDelta(dp DeltaPlan) (CoverResult, bool, error) {
	return p.CoverDeltaCtx(context.Background(), dp)
}

// CoverDeltaCtx plans the child of a resolved delta, warm-starting from
// the parent covering and admitting the result under the child's own
// canonical signature — so a later cold request for the same instance is
// a cache hit, and concurrent delta or cold requests for the child
// single-flight onto one computation. hit reports a served-from-cache or
// joined-flight result. The repaired covering costs no more cycles than
// a cold replan: the repair budget is the cold pipeline's (predicted or
// measured) size, and when the search cannot converge within it the
// build falls back to cold construction transparently.
func (p *Plans) CoverDeltaCtx(ctx context.Context, dp DeltaPlan) (CoverResult, bool, error) {
	if dp.Child.Demand == nil {
		return CoverResult{}, false, fmt.Errorf("cache: delta plan has no child demand (zero-value DeltaPlan?)")
	}
	v, hit, err := p.coverings.DoCtx(ctx, dp.ChildSig, func(cctx context.Context) (any, error) {
		return buildDelta(cctx, dp)
	})
	if err != nil {
		return CoverResult{}, hit, err
	}
	res := v.(CoverResult)
	res.Covering = res.Covering.Clone()
	return res, hit, nil
}

// deltaScratches pools the warm-repair scratch state across delta builds,
// keeping the steady-state repair path allocation-free.
var deltaScratches = scratch.NewPool(construct.NewDeltaScratch)

// buildDelta constructs the child covering, preferring warm repair of the
// parent and falling back to the cold pipeline. Like buildCover, only
// verified coverings are returned for admission.
func buildDelta(ctx context.Context, dp DeltaPlan) (CoverResult, error) {
	in := dp.Child
	n := in.N()
	r, err := ring.New(n)
	if err != nil {
		return CoverResult{}, err
	}
	// An explicit strategy is a contract about how the covering is built;
	// warm repair would be a different constructor, so those parents
	// replan their children cold through the same strategy.
	if dp.Opts.Strategy != "" {
		return buildCover(ctx, in, dp.Opts)
	}
	// Cold-cost target: predicted for uniform λ classes, measured by the
	// greedy constructor otherwise (the greedy result then doubles as the
	// precomputed fallback).
	var fallback *cover.Covering
	budget, predicted := construct.DeltaBudget(in.Demand)
	if !predicted {
		g, err := construct.GreedyCtx(ctx, r, in.Demand)
		if err != nil {
			return CoverResult{}, err
		}
		fallback = g
		budget = g.Size()
	}
	sc := deltaScratches.Get()
	repaired, ok := construct.DeltaRepair(ctx, r, dp.Parent.Covering, in.Demand, construct.DeltaOptions{
		Budget:  budget,
		Seed:    int64(n),
		Scratch: sc,
	})
	var res CoverResult
	if ok {
		cv := repaired.CloneDetached()
		deltaScratches.Put(sc)
		cv.Canonicalize()
		res = CoverResult{Covering: cv, Method: construct.MethodDelta}
		// A repaired covering of K_n at exactly ρ(n) cycles is proved
		// optimal by size alone (ρ is the paper's lower bound); the claim
		// is re-checked below by the same verification buildCover uses.
		if lam, uniform := construct.UniformLambda(in.Demand); uniform && lam == 1 && cv.Size() == cover.Rho(n) {
			res.Optimal = true
		}
	} else {
		deltaScratches.Put(sc)
		if err := ctx.Err(); err != nil {
			return CoverResult{}, err
		}
		if fallback == nil {
			// Uniform λ child whose repair missed the predicted size:
			// cold construction through the normal pipeline.
			return buildCover(ctx, in, dp.Opts)
		}
		res = CoverResult{Covering: fallback, Method: construct.MethodGreedy}
	}
	if dp.Opts.EliminateRedundant {
		construct.EliminateRedundant(res.Covering, in.Demand)
	}
	if err := cover.Verify(res.Covering, in.Demand); err != nil {
		return CoverResult{}, fmt.Errorf("cache: refusing to cache unverified covering: %w", err)
	}
	res.Demand = in.Demand
	return res, nil
}

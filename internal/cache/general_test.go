package cache

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/instance"
)

// TestGeneralSignatureNoRingCollision is the K_n-assumption regression
// for the cache key: a general instance whose host happens to be the
// complete graph aliases its demand to K_n, which UniformLambda
// recognises — without the t= component it would collapse onto the ring
// all-to-all signature and the cache would serve a ring covering for a
// host-cover request.
func TestGeneralSignatureNoRingCollision(t *testing.T) {
	k4, err := instance.Parse(4, "edges:0-1,0-2,0-3,1-2,1-3,2-3")
	if err != nil {
		t.Fatal(err)
	}
	gsig := Signature(k4, Options{})
	rsig := Signature(instance.AllToAll(4), Options{})
	if gsig == rsig {
		t.Fatalf("general K_4 host and ring AllToAll(4) collide on signature %q", gsig)
	}
	if !strings.Contains(gsig, "t=h") {
		t.Fatalf("general signature %q carries no topology component", gsig)
	}
	// Same host parsed through different wire formats: one entry.
	adj, err := instance.Parse(4, "adj:1,2,3;0,2,3;0,1,3;0,1,2")
	if err != nil {
		t.Fatal(err)
	}
	if Signature(adj, Options{}) != gsig {
		t.Fatalf("edge-list and adjacency K_4 signatures differ: %q vs %q",
			gsig, Signature(adj, Options{}))
	}
	// Distinct hosts on the same n: distinct entries.
	pet, err := instance.Parse(10, "petersen")
	if err != nil {
		t.Fatal(err)
	}
	pri, err := instance.Parse(10, "prism:5")
	if err != nil {
		t.Fatal(err)
	}
	if Signature(pet, Options{}) == Signature(pri, Options{}) {
		t.Fatal("Petersen and prism:5 collide on signature")
	}
}

// TestCoverGeneralCachedAndVerified: the general build path must verify
// against the host, cache under the topology signature, and serve
// private clones on repeat calls.
func TestCoverGeneralCachedAndVerified(t *testing.T) {
	p := New(16)
	for _, spec := range []struct {
		n    int
		spec string
		want int
	}{
		{10, "petersen", 21},
		{20, "flower:5", 40},
		{6, "prism:3", 12},
	} {
		in, err := instance.Parse(spec.n, spec.spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.spec, err)
		}
		res, hit, err := p.Cover(in, Options{})
		if err != nil {
			t.Fatalf("%s: %v", spec.spec, err)
		}
		if hit {
			t.Fatalf("%s: first request reported a hit", spec.spec)
		}
		if err := cover.VerifyGeneral(res.Covering, in.Host); err != nil {
			t.Fatalf("%s: cached cover invalid: %v", spec.spec, err)
		}
		if got := res.Covering.TotalLength(); got != spec.want {
			t.Fatalf("%s: length %d, want %d", spec.spec, got, spec.want)
		}
		again, hit, err := p.Cover(in, Options{})
		if err != nil {
			t.Fatalf("%s warm: %v", spec.spec, err)
		}
		if !hit {
			t.Fatalf("%s: second request missed", spec.spec)
		}
		if &again.Covering.Cycles[0] == &res.Covering.Cycles[0] {
			t.Fatalf("%s: warm result shares Cycles backing with first clone", spec.spec)
		}
	}
}

// TestCoverGeneralVsRingNoCrosstalk: planning the general K_4 host and
// the ring AllToAll(4) through one cache must produce independent
// entries with family-correct covers.
func TestCoverGeneralVsRingNoCrosstalk(t *testing.T) {
	p := New(16)
	k4, err := instance.Parse(4, "edges:0-1,0-2,0-3,1-2,1-3,2-3")
	if err != nil {
		t.Fatal(err)
	}
	gres, _, err := p.Cover(k4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rres, hit, err := p.Cover(instance.AllToAll(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("ring request hit the general entry")
	}
	if err := cover.VerifyGeneral(gres.Covering, k4.Host); err != nil {
		t.Fatalf("general cover invalid: %v", err)
	}
	if err := cover.Verify(rres.Covering, instance.AllToAll(4).Demand); err != nil {
		t.Fatalf("ring covering invalid: %v", err)
	}
	if gres.Covering.TotalLength() != 8 {
		t.Fatalf("general K_4 cover length %d, want the cubic optimum 8", gres.Covering.TotalLength())
	}
}

// TestNetworkRejectsGeneral: WDM planning has no meaning over a general
// host — the cache must refuse rather than route over a phantom ring.
func TestNetworkRejectsGeneral(t *testing.T) {
	p := New(4)
	in, err := instance.Parse(10, "petersen")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Network(in, Options{}); err == nil {
		t.Fatal("Network accepted a general-topology instance")
	} else if !strings.Contains(err.Error(), "ring instances only") {
		t.Fatalf("unexpected rejection: %v", err)
	}
}

// TestResolveDeltaRejectsGeneralParent: the delta path rebuilds the
// child from demand provenance alone; a general parent would lose its
// host. Must refuse with ErrBadDelta.
func TestResolveDeltaRejectsGeneralParent(t *testing.T) {
	p := New(4)
	in, err := instance.Parse(10, "petersen")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Cover(in, Options{}); err != nil {
		t.Fatal(err)
	}
	sig := Signature(in, Options{})
	_, err = p.ResolveDelta(sig, instance.Delta{Kind: instance.DeltaAdd, U: 0, V: 2})
	if !errors.Is(err, ErrBadDelta) {
		t.Fatalf("ResolveDelta on general parent: err = %v, want ErrBadDelta", err)
	}
}

// TestCoverGeneralStrategyOption: a named scc strategy routes the
// general build and keys its own entry; a ring-only strategy must fail
// verification-or-construction, never cache.
func TestCoverGeneralStrategyOption(t *testing.T) {
	p := New(16)
	in, err := instance.Parse(10, "petersen")
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := p.Cover(in, Options{Strategy: "scc-greedy"})
	if err != nil {
		t.Fatal(err)
	}
	if err := cover.VerifyGeneral(res.Covering, in.Host); err != nil {
		t.Fatalf("scc-greedy cover invalid: %v", err)
	}
	def, hit, err := p.CoverCtx(context.Background(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("default-pipeline request hit the scc-greedy entry")
	}
	if def.Covering.TotalLength() > res.Covering.TotalLength() {
		t.Fatalf("default pipeline length %d worse than scc-greedy's %d",
			def.Covering.TotalLength(), res.Covering.TotalLength())
	}
	// closed-form is a ring member: it refuses general instances, and the
	// refusal must propagate rather than cache garbage.
	if _, _, err := p.Cover(in, Options{Strategy: "closed-form"}); err == nil {
		t.Fatal("ring-only strategy produced a cached general cover")
	}
}

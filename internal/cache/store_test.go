package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestStoreHitMissAndRecency(t *testing.T) {
	// One shard: the eviction assertions below rely on exact whole-store
	// LRU order, which the sharded default only guarantees per shard.
	s := NewStoreSharded(2, 1)
	compute := func(v int) func() (any, error) {
		return func() (any, error) { return v, nil }
	}
	if v, hit, _ := s.Do("a", compute(1)); hit || v.(int) != 1 {
		t.Fatalf("first Do(a) = (%v, hit=%v), want (1, miss)", v, hit)
	}
	if v, hit, _ := s.Do("a", compute(99)); !hit || v.(int) != 1 {
		t.Fatalf("second Do(a) = (%v, hit=%v), want cached (1, hit)", v, hit)
	}
	s.Do("b", compute(2))
	s.Do("a", compute(0)) // refresh a's recency
	s.Do("c", compute(3)) // evicts b, the least recently used
	if _, ok := s.Get("b"); ok {
		t.Fatal("b survived eviction; LRU order not respected")
	}
	if _, ok := s.Get("a"); !ok {
		t.Fatal("recently-used a was evicted")
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction, 2 entries", st)
	}
}

func TestStoreErrorsAreNotCached(t *testing.T) {
	s := NewStore(4)
	boom := errors.New("boom")
	calls := 0
	f := func() (any, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return "ok", nil
	}
	if _, _, err := s.Do("k", f); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	v, hit, err := s.Do("k", f)
	if err != nil || hit || v.(string) != "ok" {
		t.Fatalf("retry = (%v, hit=%v, err=%v), want fresh ok", v, hit, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2", calls)
	}
}

// TestStoreSingleFlightStampede floods one key from many goroutines while
// the first computation is deliberately held open, and asserts exactly one
// compute ran with every other request coalescing onto it.
func TestStoreSingleFlightStampede(t *testing.T) {
	const waiters = 100
	s := NewStore(8)
	gate := make(chan struct{})
	var computes atomic.Int64

	results := make(chan int, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := s.Do("stampede", func() (any, error) {
				computes.Add(1)
				<-gate
				return 42, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			results <- v.(int)
		}()
	}
	// Release the gate only once every other goroutine has either become
	// the computing call or registered as coalesced, so the stampede is a
	// true stampede and not a sequence of cache hits.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := s.Stats()
		if st.Misses+st.Coalesced == waiters {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stampede never converged: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	close(results)

	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times under stampede, want exactly 1", got)
	}
	for v := range results {
		if v != 42 {
			t.Fatalf("waiter got %d, want 42", v)
		}
	}
	st := s.Stats()
	if st.Misses != 1 || st.Coalesced != waiters-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d coalesced", st, waiters-1)
	}
}

func TestStoreCapacityFloor(t *testing.T) {
	s := NewStore(0) // clamped to 1
	for i := 0; i < 3; i++ {
		k := fmt.Sprintf("k%d", i)
		s.Do(k, func() (any, error) { return i, nil })
	}
	if n := s.Len(); n != 1 {
		t.Fatalf("len = %d, want 1", n)
	}
}

func TestStoreShardingPartitionsCapacity(t *testing.T) {
	s := NewStoreSharded(256, 4)
	if got := s.Shards(); got != 4 {
		t.Fatalf("shards = %d, want 4", got)
	}
	// Every shard gets at least its fair share (so a balanced working
	// set that fits the store never evicts), at most fair share plus the
	// documented ~1/3 skew headroom.
	for _, sh := range s.shards {
		if sh.capacity < 64 || sh.capacity > 64+22 {
			t.Fatalf("shard capacity %d outside [64, 86]", sh.capacity)
		}
	}
	// A single-shard store bounds exactly: no skew, no headroom.
	one := NewStoreSharded(10, 1)
	if one.shards[0].capacity != 10 {
		t.Fatalf("single shard capacity = %d, want exactly 10", one.shards[0].capacity)
	}
	// Tiny capacities clamp the shard count so no shard is zero-sized.
	if got := NewStoreSharded(3, 16).Shards(); got != 3 {
		t.Fatalf("capacity 3: shards = %d, want 3", got)
	}
	if got := NewStoreSharded(1, 0).Shards(); got != 1 {
		t.Fatalf("capacity 1: shards = %d, want 1", got)
	}
	// The default constructor keeps shards ≥ 64 entries: a 256-entry
	// store must not fragment into 16-entry slivers that evict under
	// hash skew while the store as a whole has room.
	if got := NewStore(256).Shards(); got > 4 {
		t.Fatalf("NewStore(256) uses %d shards, want ≤ 4", got)
	}
}

// TestStoreShardedFullWorkingSetDoesNotThrash loads exactly capacity
// many keys and re-touches them all: the skew headroom must absorb the
// uneven hash spread so a working set that fits the store keeps
// hitting, instead of hot shards evicting while cold shards sit empty.
func TestStoreShardedFullWorkingSetDoesNotThrash(t *testing.T) {
	const capacity = 256
	s := NewStoreSharded(capacity, 4)
	keys := make([]string, capacity)
	for i := range keys {
		keys[i] = fmt.Sprintf("n=%d;d=k%d", i+3, 1+i%3)
		s.Put(keys[i], i)
	}
	for _, k := range keys {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("key %q evicted although the working set equals the capacity", k)
		}
	}
	if st := s.Stats(); st.Evictions != 0 {
		t.Fatalf("%d evictions for a capacity-sized working set", st.Evictions)
	}
}

// TestStoreShardedKeysLandOnOneShard pins the shard-routing invariant the
// single-flight semantics depend on: every operation for one key uses one
// shard, so a Do and a Get for the same key can never disagree.
func TestStoreShardedKeysLandOnOneShard(t *testing.T) {
	s := NewStore(64)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		if s.shard(key) != s.shard(key) {
			t.Fatalf("key %q routed to two shards", key)
		}
		s.Put(key, i)
		v, ok := s.Get(key)
		if !ok || v.(int) != i {
			t.Fatalf("Get(%q) = (%v, %v) after Put", key, v, ok)
		}
	}
	if s.Len() != 50 {
		t.Fatalf("len = %d, want 50", s.Len())
	}
}

// TestStoreShardedConcurrentMixedTraffic hammers a sharded store from
// many goroutines with overlapping keys — warm hits, cold misses and
// single-flight joins all interleaved — and then checks the aggregate
// accounting. Run under -race this is the shard-locking correctness test.
func TestStoreShardedConcurrentMixedTraffic(t *testing.T) {
	const (
		goroutines = 32
		keys       = 40
		rounds     = 50
	)
	// Per-shard capacity must cover every key (keys hash unevenly across
	// shards), or a skewed shard would evict and break the checks below.
	s := NewStoreSharded(keys*8, 8)
	var computes atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				k := fmt.Sprintf("key-%d", (g+r)%keys)
				v, _, err := s.Do(k, func() (any, error) {
					computes.Add(1)
					return k, nil
				})
				if err != nil || v.(string) != k {
					t.Errorf("Do(%q) = (%v, %v)", k, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	st := s.Stats()
	total := st.Hits + st.Misses + st.Coalesced
	if total != goroutines*rounds {
		t.Fatalf("hits+misses+coalesced = %d, want %d (stats %+v)", total, goroutines*rounds, st)
	}
	if st.Misses != uint64(computes.Load()) {
		t.Fatalf("misses = %d but computes = %d", st.Misses, computes.Load())
	}
	// Capacity covers every key, so nothing should have been evicted and
	// every key must be resident.
	if st.Evictions != 0 || s.Len() != keys {
		t.Fatalf("evictions = %d, len = %d; want 0 and %d", st.Evictions, s.Len(), keys)
	}
}

// TestStoreShardedSingleFlight re-runs the stampede check against the
// sharded store: one key, many concurrent callers, exactly one compute.
func TestStoreShardedSingleFlight(t *testing.T) {
	const waiters = 64
	s := NewStore(DefaultCapacity)
	gate := make(chan struct{})
	var computes atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := s.Do("hot", func() (any, error) {
				computes.Add(1)
				<-gate
				return 7, nil
			})
			if err != nil || v.(int) != 7 {
				t.Errorf("Do = (%v, %v)", v, err)
			}
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := s.Stats()
		if st.Misses+st.Coalesced == waiters {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stampede never converged: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
}

package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestStoreHitMissAndRecency(t *testing.T) {
	s := NewStore(2)
	compute := func(v int) func() (any, error) {
		return func() (any, error) { return v, nil }
	}
	if v, hit, _ := s.Do("a", compute(1)); hit || v.(int) != 1 {
		t.Fatalf("first Do(a) = (%v, hit=%v), want (1, miss)", v, hit)
	}
	if v, hit, _ := s.Do("a", compute(99)); !hit || v.(int) != 1 {
		t.Fatalf("second Do(a) = (%v, hit=%v), want cached (1, hit)", v, hit)
	}
	s.Do("b", compute(2))
	s.Do("a", compute(0)) // refresh a's recency
	s.Do("c", compute(3)) // evicts b, the least recently used
	if _, ok := s.Get("b"); ok {
		t.Fatal("b survived eviction; LRU order not respected")
	}
	if _, ok := s.Get("a"); !ok {
		t.Fatal("recently-used a was evicted")
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction, 2 entries", st)
	}
}

func TestStoreErrorsAreNotCached(t *testing.T) {
	s := NewStore(4)
	boom := errors.New("boom")
	calls := 0
	f := func() (any, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return "ok", nil
	}
	if _, _, err := s.Do("k", f); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	v, hit, err := s.Do("k", f)
	if err != nil || hit || v.(string) != "ok" {
		t.Fatalf("retry = (%v, hit=%v, err=%v), want fresh ok", v, hit, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2", calls)
	}
}

// TestStoreSingleFlightStampede floods one key from many goroutines while
// the first computation is deliberately held open, and asserts exactly one
// compute ran with every other request coalescing onto it.
func TestStoreSingleFlightStampede(t *testing.T) {
	const waiters = 100
	s := NewStore(8)
	gate := make(chan struct{})
	var computes atomic.Int64

	results := make(chan int, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := s.Do("stampede", func() (any, error) {
				computes.Add(1)
				<-gate
				return 42, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			results <- v.(int)
		}()
	}
	// Release the gate only once every other goroutine has either become
	// the computing call or registered as coalesced, so the stampede is a
	// true stampede and not a sequence of cache hits.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := s.Stats()
		if st.Misses+st.Coalesced == waiters {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stampede never converged: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	close(results)

	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times under stampede, want exactly 1", got)
	}
	for v := range results {
		if v != 42 {
			t.Fatalf("waiter got %d, want 42", v)
		}
	}
	st := s.Stats()
	if st.Misses != 1 || st.Coalesced != waiters-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d coalesced", st, waiters-1)
	}
}

func TestStoreCapacityFloor(t *testing.T) {
	s := NewStore(0) // clamped to 1
	for i := 0; i < 3; i++ {
		k := fmt.Sprintf("k%d", i)
		s.Do(k, func() (any, error) { return i, nil })
	}
	if n := s.Len(); n != 1 {
		t.Fatalf("len = %d, want 1", n)
	}
}

package cache

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"github.com/cyclecover/cyclecover/internal/construct"
	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/graph"
	"github.com/cyclecover/cyclecover/internal/ring"
)

// Snapshot persistence: a Plans cache can export its λK_n covering
// entries and warm-start from them in a later process. A snapshot is a
// hint, not trusted state — every entry is rebuilt through the normal
// cycle constructors and re-verified by the independent verifier before
// it is admitted, and an entry claiming optimality must prove it against
// ρ(n). A corrupt or stale snapshot therefore costs only the entries it
// loses, never correctness.
//
// Only λ-class (λK_n) entries are persisted: their demand is recoverable
// from the signature alone, which is what makes load-time re-verification
// possible. They are also exactly the expensive entries — the even-n
// repair searches that dominate cold construction time.

// snapshotVersion guards the file format.
const snapshotVersion = 1

type snapshotFile struct {
	Version   int             `json:"version"`
	Coverings []snapshotEntry `json:"coverings"`
}

type snapshotEntry struct {
	N       int     `json:"n"`
	Lambda  int     `json:"lambda"`
	Method  string  `json:"method"`
	Optimal bool    `json:"optimal"`
	Cycles  [][]int `json:"cycles"`
}

// SaveSnapshot writes the cache's λK_n covering entries as JSON. Entries
// cached under non-default options and hash-class demands are skipped.
func (p *Plans) SaveSnapshot(w io.Writer) error {
	out := snapshotFile{Version: snapshotVersion}
	p.coverings.Each(func(key string, val any) {
		var n, lam int
		// Only default-option λ-class signatures round-trip: "n=%d;d=k%d"
		// with no options suffix.
		if c, err := fmt.Sscanf(key, "n=%d;d=k%d", &n, &lam); err != nil || c != 2 {
			return
		}
		if key != SignatureLambda(n, lam, Options{}) {
			return
		}
		res := val.(CoverResult)
		e := snapshotEntry{N: n, Lambda: lam, Method: string(res.Method), Optimal: res.Optimal}
		for _, cyc := range res.Covering.Cycles {
			e.Cycles = append(e.Cycles, cyc.Vertices())
		}
		out.Coverings = append(out.Coverings, e)
	})
	sort.Slice(out.Coverings, func(i, j int) bool {
		a, b := out.Coverings[i], out.Coverings[j]
		if a.N != b.N {
			return a.N < b.N
		}
		return a.Lambda < b.Lambda
	})
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// LoadSnapshot warms the cache from a snapshot written by SaveSnapshot.
// It returns how many entries were admitted; entries that fail
// reconstruction, verification, or their optimality claim are dropped
// (counted in skipped), and only a malformed stream is an error.
func (p *Plans) LoadSnapshot(r io.Reader) (loaded, skipped int, err error) {
	var in snapshotFile
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return 0, 0, fmt.Errorf("cache: decoding snapshot: %w", err)
	}
	if in.Version != snapshotVersion {
		return 0, 0, fmt.Errorf("cache: snapshot version %d, want %d", in.Version, snapshotVersion)
	}
	for _, e := range in.Coverings {
		res, ok := rebuildEntry(e)
		if !ok {
			skipped++
			continue
		}
		p.coverings.Put(SignatureLambda(e.N, e.Lambda, Options{}), res)
		loaded++
	}
	return loaded, skipped, nil
}

// rebuildEntry reconstructs and fully re-verifies one snapshot entry.
func rebuildEntry(e snapshotEntry) (CoverResult, bool) {
	if e.Lambda < 1 {
		return CoverResult{}, false
	}
	rg, err := ring.New(e.N)
	if err != nil {
		return CoverResult{}, false
	}
	cv, err := cover.FromVertexSets(rg, e.Cycles)
	if err != nil {
		return CoverResult{}, false
	}
	demand := graph.LambdaComplete(e.N, e.Lambda)
	if err := cover.Verify(cv, demand); err != nil {
		return CoverResult{}, false
	}
	// An optimality claim must be re-proved, not believed: for K_n that
	// means exactly ρ(n) cycles. For λ > 1 no closed form is implemented,
	// so the claim is dropped rather than trusted.
	optimal := e.Optimal
	if e.Lambda == 1 {
		if optimal && cv.Size() != cover.Rho(e.N) {
			return CoverResult{}, false
		}
	} else {
		optimal = false
	}
	return CoverResult{Covering: cv, Method: construct.Method(e.Method), Optimal: optimal, Demand: demand}, true
}

//go:build faultinject

package cache

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/cyclecover/cyclecover/internal/faultinject"
	"github.com/cyclecover/cyclecover/internal/instance"
)

// TestChaosSnapshotSaveFailureKeepsPrevious: an injected error on the
// snapshot write path surfaces to the caller and leaves the previous
// snapshot byte-identical — the atomic-write contract holds even when
// the failure fires before the temp file exists.
func TestChaosSnapshotSaveFailureKeepsPrevious(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plans.snap")
	p := New(8)
	if _, _, err := p.Cover(instance.AllToAll(9), Options{}); err != nil {
		t.Fatal(err)
	}
	if err := p.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	if err := faultinject.Configure("cache.snapshot.save=err(disk full)", 1); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.Reset)
	if err := p.SaveSnapshotFile(path); err == nil || !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("injected save error = %v, want wrapped ErrInjected", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("failed save mutated the previous snapshot")
	}

	// Disarmed, the same path works again and the file still loads.
	faultinject.Reset()
	if err := p.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	fresh := New(8)
	if loaded, _, err := fresh.LoadSnapshotFile(path); err != nil || loaded == 0 {
		t.Fatalf("reload after recovery = (%d, %v), want entries and no error", loaded, err)
	}
}

// TestChaosSnapshotLoadFailureStartsCold: an injected error on the
// snapshot read path is reported (so the daemon can log-and-skip) and
// the cache simply starts cold — nothing is half-loaded.
func TestChaosSnapshotLoadFailureStartsCold(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plans.snap")
	p := New(8)
	if _, _, err := p.Cover(instance.AllToAll(9), Options{}); err != nil {
		t.Fatal(err)
	}
	if err := p.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}

	if err := faultinject.Configure("cache.snapshot.load=err(io timeout)", 1); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.Reset)
	cold := New(8)
	loaded, skipped, err := cold.LoadSnapshotFile(path)
	if err == nil || !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("injected load error = %v, want wrapped ErrInjected", err)
	}
	if loaded != 0 || skipped != 0 {
		t.Fatalf("failed load reported (%d, %d) entries, want (0, 0)", loaded, skipped)
	}
	if n := cold.Stats().Coverings.Entries; n != 0 {
		t.Fatalf("failed load left %d entries resident", n)
	}

	// The daemon's log-and-skip policy then serves from a cold cache.
	faultinject.Reset()
	if _, hit, err := cold.Cover(instance.AllToAll(9), Options{}); err != nil || hit {
		t.Fatalf("cold serve after failed load = (hit=%v, %v)", hit, err)
	}
}

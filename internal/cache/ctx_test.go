package cache

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/cyclecover/cyclecover/internal/construct"
	"github.com/cyclecover/cyclecover/internal/instance"
)

// TestDoCtxWaiterDetach: a waiter whose context fires detaches
// immediately, while the computation keeps running for the survivors and
// its result still lands in the cache, uncorrupted.
func TestDoCtxWaiterDetach(t *testing.T) {
	s := NewStore(8)
	started := make(chan struct{})
	release := make(chan struct{})

	type res struct {
		val any
		err error
	}
	survivor := make(chan res, 1)
	go func() {
		v, _, err := s.DoCtx(context.Background(), "k", func(context.Context) (any, error) {
			close(started)
			<-release
			return 42, nil
		})
		survivor <- res{v, err}
	}()
	<-started

	// Second waiter joins the in-flight call, then gives up.
	ctx, cancel := context.WithCancel(context.Background())
	joined := make(chan res, 1)
	go func() {
		v, _, err := s.DoCtx(ctx, "k", func(context.Context) (any, error) {
			t.Error("joined waiter must not recompute")
			return nil, nil
		})
		joined <- res{v, err}
	}()
	// Give the joiner a moment to attach, then cancel it.
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case r := <-joined:
		if !errors.Is(r.err, context.Canceled) {
			t.Fatalf("detached waiter err = %v, want Canceled", r.err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled waiter did not detach promptly")
	}

	// The survivor still gets the value, and the entry is cached.
	close(release)
	select {
	case r := <-survivor:
		if r.err != nil || r.val != 42 {
			t.Fatalf("survivor got (%v, %v), want (42, nil)", r.val, r.err)
		}
	case <-time.After(time.Second):
		t.Fatal("survivor never completed")
	}
	if v, ok := s.Get("k"); !ok || v != 42 {
		t.Fatalf("entry after detach: (%v, %v), want (42, true)", v, ok)
	}
	st := s.Stats()
	if st.Abandoned != 1 || st.Cancelled != 0 {
		t.Fatalf("stats = %+v, want Abandoned=1 Cancelled=0", st)
	}
}

// TestDoCtxLastWaiterCancelsComputation: when every waiter departs, the
// computation's context fires; its error result is not cached and the
// next request recomputes cleanly.
func TestDoCtxLastWaiterCancelsComputation(t *testing.T) {
	s := NewStore(8)
	computeCancelled := make(chan struct{})
	started := make(chan struct{})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-started
		cancel()
	}()
	_, _, err := s.DoCtx(ctx, "k", func(cctx context.Context) (any, error) {
		close(started)
		select {
		case <-cctx.Done():
			close(computeCancelled)
			return nil, cctx.Err()
		case <-time.After(5 * time.Second):
			return nil, errors.New("computation context never fired")
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	select {
	case <-computeCancelled:
	case <-time.After(time.Second):
		t.Fatal("computation was not cancelled after its last waiter departed")
	}
	// Nothing cached, nothing poisoned: a fresh request recomputes.
	v, hit, err := s.Do("k", func() (any, error) { return "fresh", nil })
	if err != nil || hit || v != "fresh" {
		t.Fatalf("after abandoned computation: (%v, %v, %v), want (fresh, false, nil)", v, hit, err)
	}
	st := s.Stats()
	if st.Cancelled != 1 {
		t.Fatalf("stats = %+v, want Cancelled=1", st)
	}
}

// TestDoCtxDetachRace hammers one signature with waiters that cancel at
// random points while others survive — under -race this pins that a
// detaching waiter cannot corrupt the entry delivered to survivors.
func TestDoCtxDetachRace(t *testing.T) {
	s := NewStore(32)
	for round := 0; round < 20; round++ {
		key := fmt.Sprintf("k%d", round)
		want := round * 100
		var wg sync.WaitGroup
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				ctx := context.Background()
				if g%2 == 0 {
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, time.Duration(g)*100*time.Microsecond)
					defer cancel()
				}
				v, _, err := s.DoCtx(ctx, key, func(cctx context.Context) (any, error) {
					// Slow enough that some waiters' deadlines fire mid-
					// flight; fast enough to keep the test quick.
					select {
					case <-time.After(2 * time.Millisecond):
					case <-cctx.Done():
						return nil, cctx.Err()
					}
					return want, nil
				})
				if err != nil {
					if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
						t.Errorf("unexpected error: %v", err)
					}
					return
				}
				if v != want {
					t.Errorf("got %v, want %d", v, want)
				}
			}(g)
		}
		wg.Wait()
	}
}

// TestDoCtxComputePanic: a panicking computation surfaces as a
// fingerprinted *construct.PanicError to every waiter (the compute
// goroutine must not crash the process or leave done unclosed), is not
// cached, and the key recovers.
func TestDoCtxComputePanic(t *testing.T) {
	s := NewStore(8)
	_, _, err := s.Do("k", func() (any, error) { panic("constructor bug") })
	var pe *construct.PanicError
	if err == nil || !errors.As(err, &pe) || !strings.Contains(pe.Value, "constructor bug") {
		t.Fatalf("err = %v, want *construct.PanicError carrying the panic message", err)
	}
	v, hit, err := s.Do("k", func() (any, error) { return "ok", nil })
	if err != nil || hit || v != "ok" {
		t.Fatalf("after panic: (%v, %v, %v), want (ok, false, nil)", v, hit, err)
	}
}

// TestCoverCtxCancelledNotPoisoned: a cancelled CoverCtx returns the
// context's error and leaves the cache clean — the same instance then
// plans successfully.
func TestCoverCtxCancelledNotPoisoned(t *testing.T) {
	p := New(8)
	in := instance.AllToAll(9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := p.CoverCtx(ctx, in, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled CoverCtx err = %v, want Canceled", err)
	}
	res, _, err := p.Cover(in, Options{})
	if err != nil {
		t.Fatalf("cache poisoned by cancelled request: %v", err)
	}
	if res.Covering == nil || !res.Optimal {
		t.Fatalf("recovery plan: covering=%v optimal=%v", res.Covering, res.Optimal)
	}
}

// TestCoverCtxStrategySignatures: distinct strategies occupy distinct
// cache entries — a portfolio answer is never served to an exact-search
// request — while the empty default shares nothing with named ones.
func TestCoverCtxStrategySignatures(t *testing.T) {
	p := New(16)
	in := instance.AllToAll(9)
	for _, strat := range []string{"", "portfolio", "exact", "greedy"} {
		res, hit, err := p.CoverCtx(context.Background(), in, Options{Strategy: strat})
		if err != nil {
			t.Fatalf("strategy %q: %v", strat, err)
		}
		if hit {
			t.Fatalf("strategy %q: hit on first request — signatures collide", strat)
		}
		if res.Covering == nil {
			t.Fatalf("strategy %q: nil covering", strat)
		}
	}
	if _, _, err := p.CoverCtx(context.Background(), in, Options{Strategy: "bogus"}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	// Errors (unknown strategy) are not cached.
	if _, _, err := p.CoverCtx(context.Background(), in, Options{Strategy: "bogus"}); err == nil {
		t.Fatal("unknown strategy accepted on retry")
	}
}

package cache

import (
	"container/list"
	"context"
	"runtime"
	"sync"

	"github.com/cyclecover/cyclecover/internal/construct"
)

// DefaultShards is the shard count selected by NewStore. It is sized to
// a small multiple of typical core counts so that concurrent warm hits —
// which take only the shard lock of their key — rarely contend, while
// keeping per-shard LRU books small enough to stay cache-friendly.
const DefaultShards = 16

// Store is a bounded memoization table: hash-partitioned shards, each an
// LRU map joined with a single-flight group. Do serves repeated keys
// from memory and collapses concurrent misses for one key onto a single
// computation. A key's shard is fixed by its hash, so all single-flight
// and LRU bookkeeping for it happens under one shard lock and warm-hit
// throughput scales with the number of shards rather than serializing on
// a store-global mutex. Errors are never cached — a failed computation
// is reported to every waiter and the next request retries.
//
// The capacity bound and the LRU policy are per shard: shard capacities
// carry skew headroom (see NewStoreSharded), so total residency may
// exceed the requested capacity by up to ~a third, and eviction order
// is least-recently-used within each shard, not globally.
type Store struct {
	shards []*storeShard
}

// storeShard is one lock domain of the store: an LRU list plus the
// in-flight calls for the keys that hash here.
type storeShard struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List               // most-recent first
	items    map[string]*list.Element // key → *entry element
	inflight map[string]*call
	stats    Stats
}

type entry struct {
	key string
	val any
}

// call is one in-flight computation. waiters counts the callers —
// originator included — currently blocked on it; a waiter whose context
// fires detaches (decrementing the count) without disturbing the entry,
// and only when the count reaches zero is the computation itself
// cancelled. Guarded by the shard mutex, except done/val/err which
// follow the close-after-write protocol (val and err are written, and
// done closed, under the shard lock; readers may select on done without
// the lock and then read val/err freely).
type call struct {
	done    chan struct{} // closed when val/err are final
	val     any
	err     error
	waiters int
	cancel  context.CancelFunc // cancels the computation's context
}

// Stats counts cache traffic. Hits are LRU hits; Coalesced are requests
// that joined an in-flight computation; Misses are computations actually
// run; Abandoned are waiters that detached (context fired) before their
// computation finished; Cancelled are computations aborted because their
// last waiter departed; Evictions are LRU removals.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Coalesced uint64 `json:"coalesced"`
	Abandoned uint64 `json:"abandoned"`
	Cancelled uint64 `json:"cancelled"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
}

// NewStore returns a store bounded to about capacity entries (capacity
// ≥ 1), partitioned into DefaultShards shards — fewer when core count
// or capacity is small (shards are kept ≥ 64 entries each, so small
// default stores do not fragment their capacity into skew-prone
// slivers).
func NewStore(capacity int) *Store {
	shards := DefaultShards
	if p := 2 * runtime.GOMAXPROCS(0); p < shards {
		shards = p
	}
	if c := capacity / 64; c < shards {
		shards = c
	}
	return NewStoreSharded(capacity, shards)
}

// NewStoreSharded returns a store bounded to about capacity entries
// (capacity ≥ 1) partitioned into the given number of shards. shards
// ≤ 0 selects DefaultShards; shards is additionally clamped to capacity
// so every shard can hold at least one entry.
//
// With more than one shard the capacity is a target, not an exact
// bound: each shard holds its fair share plus a third of headroom
// (worst-case residency ≈ 4/3·capacity), because keys hash unevenly
// and an exactly-split shard would evict — and force recomputation of —
// entries of a working set that fits the store as a whole. A
// single-shard store (NewStoreSharded(capacity, 1)) bounds exactly and
// keeps strict global LRU order — the benchmark baseline and the right
// choice when whole-store recency matters more than concurrent
// throughput.
func NewStoreSharded(capacity, shards int) *Store {
	if capacity < 1 {
		capacity = 1
	}
	if shards <= 0 {
		shards = DefaultShards
	}
	if shards > capacity {
		shards = capacity
	}
	perShard := (capacity + shards - 1) / shards
	if shards > 1 {
		perShard += (perShard + 2) / 3
	}
	s := &Store{shards: make([]*storeShard, shards)}
	for i := range s.shards {
		s.shards[i] = &storeShard{
			capacity: perShard,
			ll:       list.New(),
			items:    make(map[string]*list.Element),
			inflight: make(map[string]*call),
		}
	}
	return s
}

// shard returns the shard owning key: inline FNV-1a over the key bytes
// (no hasher allocation — this sits on every warm hit).
func (s *Store) shard(key string) *storeShard {
	if len(s.shards) == 1 {
		return s.shards[0]
	}
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return s.shards[h%uint32(len(s.shards))]
}

// Do returns the cached value for key, computing it with compute on a
// miss. hit reports whether the value was served without running compute
// in this call (an LRU hit, or a join onto another caller's in-flight
// computation). Successful results are inserted at the front of their
// shard's LRU.
func (s *Store) Do(key string, compute func() (any, error)) (val any, hit bool, err error) {
	return s.DoCtx(context.Background(), key, func(context.Context) (any, error) { return compute() })
}

// DoCtx is Do under a context, with detachable waiting: a caller whose
// ctx fires while the value is being computed returns ctx's error
// immediately — without poisoning or evicting anything — while the
// computation keeps running for the remaining waiters and still lands in
// the cache. The computation's own context (handed to compute) is
// cancelled only when the LAST waiter departs: at that point nobody
// wants the result, so the work is abandoned and the next request for
// the key starts fresh. Errors — including a cancelled computation's —
// are never cached.
func (s *Store) DoCtx(ctx context.Context, key string, compute func(context.Context) (any, error)) (val any, hit bool, err error) {
	sh := s.shard(key)
	sh.mu.Lock()
	if el, ok := sh.items[key]; ok {
		sh.ll.MoveToFront(el)
		sh.stats.Hits++
		v := el.Value.(*entry).val
		sh.mu.Unlock()
		return v, true, nil
	}
	if c, ok := sh.inflight[key]; ok {
		c.waiters++
		sh.stats.Coalesced++
		sh.mu.Unlock()
		return sh.wait(ctx, key, c, true)
	}
	// The computation must outlive this caller (other waiters may join),
	// so its context derives from Background, not ctx; ctx's cancellation
	// reaches it only through the last-waiter-departs rule below.
	cctx, cancel := context.WithCancel(context.Background())
	c := &call{done: make(chan struct{}), waiters: 1, cancel: cancel}
	sh.inflight[key] = c
	sh.stats.Misses++
	sh.mu.Unlock()

	go func() {
		v, err := runCompute(cctx, compute)
		cancel()
		sh.mu.Lock()
		c.val, c.err = v, err
		if sh.inflight[key] == c {
			delete(sh.inflight, key)
		}
		if err == nil {
			// Cache even if every waiter gave up: the value is computed
			// and deterministic for the key, so the next request hits.
			sh.add(key, v)
		}
		close(c.done) // under the lock: wait() rechecks done while holding it
		sh.mu.Unlock()
	}()
	return sh.wait(ctx, key, c, false)
}

// runCompute shields the store from a panicking computation: compute
// runs on an internal goroutine (so waiters can detach), where an
// unrecovered panic would kill the whole process and leave every waiter
// hung on a never-closed done channel. A panic becomes a fingerprinted
// *construct.PanicError — which the store refuses to cache, and which
// the serving layer counts per fingerprint — failing only this key's
// waiters.
func runCompute(ctx context.Context, compute func(context.Context) (any, error)) (v any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = construct.Recovered("cache", r)
		}
	}()
	return compute(ctx)
}

// wait blocks until c finishes or ctx fires, detaching on the latter.
// joined reports whether this caller coalesced onto an existing call
// (it becomes the hit flag on success).
func (sh *storeShard) wait(ctx context.Context, key string, c *call, joined bool) (any, bool, error) {
	select {
	case <-c.done:
		return c.val, joined, c.err
	case <-ctx.Done():
	}
	sh.mu.Lock()
	select {
	case <-c.done:
		// The result landed while we were acquiring the lock; take it.
		sh.mu.Unlock()
		return c.val, joined, c.err
	default:
	}
	c.waiters--
	sh.stats.Abandoned++
	if c.waiters == 0 {
		// Last waiter departing: nobody wants the result. Cancel the
		// computation and clear the in-flight slot so a fresh request
		// starts over instead of joining a doomed call.
		if sh.inflight[key] == c {
			delete(sh.inflight, key)
		}
		sh.stats.Cancelled++
		c.cancel()
	}
	sh.mu.Unlock()
	return nil, false, ctx.Err()
}

// Put inserts a value directly, as if computed. Used by snapshot loading.
func (s *Store) Put(key string, val any) {
	sh := s.shard(key)
	sh.mu.Lock()
	sh.add(key, val)
	sh.mu.Unlock()
}

// Each calls f for every resident entry, shard by shard and from most to
// least recently used within each shard, holding that shard's lock:
// f must not call back into the store.
func (s *Store) Each(f func(key string, val any)) {
	for _, sh := range s.shards {
		sh.mu.Lock()
		for el := sh.ll.Front(); el != nil; el = el.Next() {
			e := el.Value.(*entry)
			f(e.key, e.val)
		}
		sh.mu.Unlock()
	}
}

// Get returns the cached value without computing, refreshing recency.
func (s *Store) Get(key string) (any, bool) {
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.items[key]
	if !ok {
		return nil, false
	}
	sh.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Len returns the number of resident entries.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.ll.Len()
		sh.mu.Unlock()
	}
	return n
}

// Shards returns the number of shards (for introspection and tests).
func (s *Store) Shards() int { return len(s.shards) }

// Stats returns a snapshot of the counters, aggregated over all shards.
// Shards are snapshotted one at a time, so the aggregate is not a single
// atomic cut — fine for the monitoring counters it feeds.
func (s *Store) Stats() Stats {
	var st Stats
	for _, sh := range s.shards {
		sh.mu.Lock()
		st.Hits += sh.stats.Hits
		st.Misses += sh.stats.Misses
		st.Coalesced += sh.stats.Coalesced
		st.Abandoned += sh.stats.Abandoned
		st.Cancelled += sh.stats.Cancelled
		st.Evictions += sh.stats.Evictions
		st.Entries += sh.ll.Len()
		sh.mu.Unlock()
	}
	return st
}

// add inserts (or refreshes) key at the front of the shard's LRU,
// evicting the tail when the shard bound is exceeded. Caller holds sh.mu.
func (sh *storeShard) add(key string, val any) {
	if el, ok := sh.items[key]; ok {
		el.Value.(*entry).val = val
		sh.ll.MoveToFront(el)
		return
	}
	sh.items[key] = sh.ll.PushFront(&entry{key: key, val: val})
	for sh.ll.Len() > sh.capacity {
		tail := sh.ll.Back()
		sh.ll.Remove(tail)
		delete(sh.items, tail.Value.(*entry).key)
		sh.stats.Evictions++
	}
}

package cache

import (
	"container/list"
	"sync"
)

// Store is a bounded memoization table: an LRU map joined with a
// single-flight group. Do serves repeated keys from memory and collapses
// concurrent misses for one key onto a single computation. Errors are
// never cached — a failed computation is reported to every waiter and the
// next request retries.
type Store struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List               // most-recent first
	items    map[string]*list.Element // key → *entry element
	inflight map[string]*call
	stats    Stats
}

type entry struct {
	key string
	val any
}

type call struct {
	done chan struct{} // closed when val/err are final
	val  any
	err  error
}

// Stats counts cache traffic. Hits are LRU hits; Coalesced are requests
// that joined an in-flight computation; Misses are computations actually
// run; Evictions are LRU removals.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Coalesced uint64 `json:"coalesced"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
}

// NewStore returns a store bounded to capacity entries (capacity ≥ 1).
func NewStore(capacity int) *Store {
	if capacity < 1 {
		capacity = 1
	}
	return &Store{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*call),
	}
}

// Do returns the cached value for key, computing it with compute on a
// miss. hit reports whether the value was served without running compute
// in this call (an LRU hit, or a join onto another caller's in-flight
// computation). Successful results are inserted at the front of the LRU.
func (s *Store) Do(key string, compute func() (any, error)) (val any, hit bool, err error) {
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
		s.stats.Hits++
		v := el.Value.(*entry).val
		s.mu.Unlock()
		return v, true, nil
	}
	if c, ok := s.inflight[key]; ok {
		s.stats.Coalesced++
		s.mu.Unlock()
		<-c.done
		return c.val, true, c.err
	}
	c := &call{done: make(chan struct{})}
	s.inflight[key] = c
	s.stats.Misses++
	s.mu.Unlock()

	c.val, c.err = compute()

	s.mu.Lock()
	delete(s.inflight, key)
	if c.err == nil {
		s.add(key, c.val)
	}
	s.mu.Unlock()
	close(c.done)
	return c.val, false, c.err
}

// Put inserts a value directly, as if computed. Used by snapshot loading.
func (s *Store) Put(key string, val any) {
	s.mu.Lock()
	s.add(key, val)
	s.mu.Unlock()
}

// Each calls f for every resident entry, from most to least recently
// used, holding the store lock: f must not call back into the store.
func (s *Store) Each(f func(key string, val any)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for el := s.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		f(e.key, e.val)
	}
}

// Get returns the cached value without computing, refreshing recency.
func (s *Store) Get(key string) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return nil, false
	}
	s.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Len returns the number of resident entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = s.ll.Len()
	return st
}

// add inserts (or refreshes) key at the front, evicting the tail when the
// bound is exceeded. Caller holds s.mu.
func (s *Store) add(key string, val any) {
	if el, ok := s.items[key]; ok {
		el.Value.(*entry).val = val
		s.ll.MoveToFront(el)
		return
	}
	s.items[key] = s.ll.PushFront(&entry{key: key, val: val})
	for s.ll.Len() > s.capacity {
		tail := s.ll.Back()
		s.ll.Remove(tail)
		delete(s.items, tail.Value.(*entry).key)
		s.stats.Evictions++
	}
}

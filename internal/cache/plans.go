package cache

import (
	"context"
	"fmt"

	"github.com/cyclecover/cyclecover/internal/construct"
	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/graph"
	"github.com/cyclecover/cyclecover/internal/instance"
	"github.com/cyclecover/cyclecover/internal/ring"
	"github.com/cyclecover/cyclecover/internal/wdm"
)

// DefaultCapacity bounds each store of a Plans cache when no explicit
// capacity is given: comfortably larger than any experiment sweep while
// keeping worst-case residency (a few thousand cycles per large entry)
// modest.
const DefaultCapacity = 256

// Plans memoizes verified coverings and planned WDM networks per instance
// signature. It is safe for concurrent use; every covering handed out is
// a private clone, so callers may canonicalize or extend their copy
// without corrupting the cache, while cached *wdm.Network values are
// shared and must be treated as read-only.
type Plans struct {
	coverings *Store
	networks  *Store
}

// New returns a Plans cache bounding each store to capacity entries
// (capacity ≤ 0 selects DefaultCapacity).
func New(capacity int) *Plans {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Plans{coverings: NewStore(capacity), networks: NewStore(capacity)}
}

// CoverResult is a constructed covering plus provenance, mirroring
// construct.Result.
type CoverResult struct {
	Covering *cover.Covering
	Method   construct.Method
	// Optimal reports that the covering provably has ρ(n) cycles.
	Optimal bool
	// Degraded reports that the covering came from the deadline-degraded
	// anytime pipeline (Options.Degrade): valid and verified, but
	// constructed for speed, not quality. The flag rides the cache entry
	// so every caller that hits a degraded signature sees the provenance
	// end-to-end.
	Degraded bool
	// Demand is the demand graph the covering was verified against —
	// the provenance that lets a cached entry serve as the parent of an
	// incremental delta replan (ResolveDelta). It is shared with the
	// cache and must be treated as read-only.
	Demand *graph.Graph
}

// PlansStats snapshots both stores.
type PlansStats struct {
	Coverings Stats `json:"coverings"`
	Networks  Stats `json:"networks"`
}

// Stats returns the cache counters.
func (p *Plans) Stats() PlansStats {
	return PlansStats{Coverings: p.coverings.Stats(), Networks: p.networks.Stats()}
}

// Cover returns a verified covering of the instance, constructing it on
// the first request and serving clones from the cache afterwards. hit
// reports whether this call avoided construction (cache hit or joined
// flight). The constructor is selected by opts.Strategy; the default
// (empty) pipeline picks by demand class — the paper's optimal machinery
// for K_n, the λ-composition for λK_n, greedy otherwise.
func (p *Plans) Cover(in instance.Instance, opts Options) (CoverResult, bool, error) {
	return p.CoverCtx(context.Background(), in, opts)
}

// CoverCtx is Cover under a context: a caller whose ctx fires while the
// covering is being constructed detaches immediately (the construction
// continues for other waiters, and is itself cancelled when the last
// waiter departs — see Store.DoCtx). A cancelled construction is never
// cached, so the entry delivered to surviving waiters is always a
// verified, completed covering.
func (p *Plans) CoverCtx(ctx context.Context, in instance.Instance, opts Options) (CoverResult, bool, error) {
	if in.Demand == nil {
		return CoverResult{}, false, fmt.Errorf("cache: instance %q has no demand graph (zero-value instance?)", in.Name)
	}
	sig := Signature(in, opts)
	v, hit, err := p.coverings.DoCtx(ctx, sig, func(cctx context.Context) (any, error) {
		return buildCover(cctx, in, opts)
	})
	if err != nil {
		return CoverResult{}, hit, err
	}
	res := v.(CoverResult)
	// Clone on every exit so no two callers (nor the cache) share a
	// mutable Cycles slice.
	res.Covering = res.Covering.Clone()
	return res, hit, nil
}

// Lookup probes the covering cache without computing: it returns the
// cached (already verified) covering for the instance under the given
// options, or ok=false on a miss. It never joins an in-flight
// computation and never blocks beyond the shard lock — the degradation
// path uses it to serve a stale-but-verified plan when the remaining
// deadline cannot fit even the anytime pipeline. The returned covering
// is the caller's private clone.
func (p *Plans) Lookup(in instance.Instance, opts Options) (CoverResult, bool) {
	if in.Demand == nil {
		return CoverResult{}, false
	}
	v, ok := p.coverings.Get(Signature(in, opts))
	if !ok {
		return CoverResult{}, false
	}
	res := v.(CoverResult)
	res.Covering = res.Covering.Clone()
	return res, true
}

// LookupNetwork probes the network cache without computing (see
// Lookup). The returned network is shared and must be treated as
// read-only, like every cached *wdm.Network.
func (p *Plans) LookupNetwork(in instance.Instance, opts Options) (*wdm.Network, bool) {
	if in.Demand == nil || in.IsGeneral() {
		return nil, false
	}
	v, ok := p.networks.Get(Signature(in, opts))
	if !ok {
		return nil, false
	}
	return v.(*wdm.Network), true
}

// CoverAllToAll is Cover for the all-to-all instance, keyed in O(1): the
// demand graph is only materialized on a miss, so warm calls cost a
// lookup and a clone.
func (p *Plans) CoverAllToAll(n int, opts Options) (CoverResult, bool, error) {
	return p.CoverAllToAllCtx(context.Background(), n, opts)
}

// CoverAllToAllCtx is CoverAllToAll under a context (see CoverCtx).
func (p *Plans) CoverAllToAllCtx(ctx context.Context, n int, opts Options) (CoverResult, bool, error) {
	sig := SignatureAllToAll(n, opts)
	v, hit, err := p.coverings.DoCtx(ctx, sig, func(cctx context.Context) (any, error) {
		return buildCover(cctx, instance.AllToAll(n), opts)
	})
	if err != nil {
		return CoverResult{}, hit, err
	}
	res := v.(CoverResult)
	res.Covering = res.Covering.Clone()
	return res, hit, nil
}

// NetworkAllToAll is Network for the all-to-all instance, keyed in O(1).
func (p *Plans) NetworkAllToAll(n int, opts Options) (*wdm.Network, bool, error) {
	return p.NetworkAllToAllCtx(context.Background(), n, opts)
}

// NetworkAllToAllCtx is NetworkAllToAll under a context (see CoverCtx).
func (p *Plans) NetworkAllToAllCtx(ctx context.Context, n int, opts Options) (*wdm.Network, bool, error) {
	sig := SignatureAllToAll(n, opts)
	v, hit, err := p.networks.DoCtx(ctx, sig, func(cctx context.Context) (any, error) {
		in := instance.AllToAll(n)
		res, _, err := p.CoverAllToAllCtx(cctx, n, opts)
		if err != nil {
			return nil, err
		}
		return wdm.Plan(res.Covering, in.Demand)
	})
	if err != nil {
		return nil, hit, err
	}
	return v.(*wdm.Network), hit, nil
}

// Network returns the planned WDM network for the instance, cached under
// the same signature scheme. The returned network is shared across
// callers and must not be mutated.
func (p *Plans) Network(in instance.Instance, opts Options) (*wdm.Network, bool, error) {
	return p.NetworkCtx(context.Background(), in, opts)
}

// NetworkCtx is Network under a context (see CoverCtx for the
// cancellation semantics).
func (p *Plans) NetworkCtx(ctx context.Context, in instance.Instance, opts Options) (*wdm.Network, bool, error) {
	if in.Demand == nil {
		return nil, false, fmt.Errorf("cache: instance %q has no demand graph (zero-value instance?)", in.Name)
	}
	if in.IsGeneral() {
		// WDM planning assigns wavelengths to ring links; a general host
		// has no ring routing to assign over.
		return nil, false, fmt.Errorf("cache: WDM planning applies to ring instances only, %q is general-topology", in.Name)
	}
	sig := Signature(in, opts)
	v, hit, err := p.networks.DoCtx(ctx, sig, func(cctx context.Context) (any, error) {
		res, _, err := p.CoverCtx(cctx, in, opts)
		if err != nil {
			return nil, err
		}
		return wdm.Plan(res.Covering, in.Demand)
	})
	if err != nil {
		return nil, hit, err
	}
	return v.(*wdm.Network), hit, nil
}

// buildCover constructs and verifies a covering for the instance. Only
// verified coverings may enter the cache: an artifact that fails the
// independent verifier is dropped with an error rather than memoized.
// opts.Strategy selects the construction path through the strategy
// registry; empty runs the fixed auto pipeline.
func buildCover(ctx context.Context, in instance.Instance, opts Options) (CoverResult, error) {
	if in.IsGeneral() {
		return buildGeneralCover(ctx, in, opts)
	}
	n := in.N()
	r, err := ring.New(n)
	if err != nil {
		return CoverResult{}, err
	}
	var res CoverResult
	if opts.Strategy != "" {
		st, ok := construct.LookupStrategy(opts.Strategy)
		if !ok {
			return CoverResult{}, fmt.Errorf("cache: unknown strategy %q (have %v)", opts.Strategy, construct.Strategies())
		}
		out, err := construct.SafeSolve(ctx, st, in, construct.Options{})
		if err != nil {
			return CoverResult{}, err
		}
		res = CoverResult{Covering: out.Covering, Method: out.Method, Optimal: out.Optimal, Degraded: opts.Degrade}
	} else if opts.Degrade {
		// Deadline-degraded default pipeline: race only the anytime
		// members. No optimality claim ever; the result is marked so the
		// degradation is visible end-to-end.
		out, err := construct.SafeSolve(ctx, construct.NewDegradedPortfolio(), in, construct.Options{})
		if err != nil {
			return CoverResult{}, err
		}
		res = CoverResult{Covering: out.Covering, Method: out.Method, Degraded: true}
	} else if lam, ok := construct.UniformLambda(in.Demand); ok {
		var cres construct.Result
		var err error
		if lam == 1 {
			cres, err = construct.AllToAllCtx(ctx, n)
		} else {
			cres, err = construct.LambdaCtx(ctx, n, lam)
		}
		if err != nil {
			return CoverResult{}, err
		}
		res = CoverResult{Covering: cres.Covering, Method: cres.Method, Optimal: cres.Optimal}
	} else {
		cv, err := construct.GreedyCtx(ctx, r, in.Demand)
		if err != nil {
			return CoverResult{}, err
		}
		res = CoverResult{Covering: cv, Method: construct.MethodGreedy}
	}
	if opts.EliminateRedundant {
		construct.EliminateRedundant(res.Covering, in.Demand)
		// Redundancy elimination may shrink to ρ(n) but proves nothing;
		// keep the constructor's optimality claim only.
	}
	if err := cover.Verify(res.Covering, in.Demand); err != nil {
		return CoverResult{}, fmt.Errorf("cache: refusing to cache unverified covering: %w", err)
	}
	res.Demand = in.Demand
	return res, nil
}

// buildGeneralCover is buildCover for general-topology instances: the
// scc pipeline (or a named strategy) constructs, the general verifier
// gates admission edge-by-edge against the host. Redundancy elimination
// is a ring-tally optimiser and does not apply — a general cover's
// slack is already minimised by the scc objective itself.
func buildGeneralCover(ctx context.Context, in instance.Instance, opts Options) (CoverResult, error) {
	var out construct.Outcome
	var err error
	switch {
	case opts.Strategy != "":
		st, ok := construct.LookupStrategy(opts.Strategy)
		if !ok {
			return CoverResult{}, fmt.Errorf("cache: unknown strategy %q (have %v)", opts.Strategy, construct.Strategies())
		}
		out, err = construct.SafeSolve(ctx, st, in, construct.Options{})
	case opts.Degrade:
		out, err = construct.SafeSolve(ctx, construct.NewDegradedPortfolio(), in, construct.Options{})
	default:
		out, err = construct.GeneralSCCCtx(ctx, in, construct.Options{})
	}
	if err != nil {
		return CoverResult{}, err
	}
	if err := cover.VerifyGeneral(out.Covering, in.Host); err != nil {
		return CoverResult{}, fmt.Errorf("cache: refusing to cache unverified cover: %w", err)
	}
	// Degraded general results drop the optimality claim even if the
	// anytime race happened to meet the bound: the flag's contract is
	// "built for speed", and callers comparing against the lower bound
	// can still see Length vs SCCLowerBound themselves.
	if opts.Degrade {
		out.Optimal = false
	}
	return CoverResult{Covering: out.Covering, Method: out.Method, Optimal: out.Optimal, Degraded: opts.Degrade, Demand: in.Demand}, nil
}

// Package cache memoizes verified coverings and planned WDM networks so
// that long-running callers — the cycled service, the Planner facade and
// the experiment sweeps — compute each instance once and serve every
// repeat from memory.
//
// Results are keyed by a canonical instance signature (ring size, demand
// class, construction options), bounded by an LRU policy, and deduplicated
// in flight: concurrent requests for the same signature trigger exactly
// one computation, with every waiter receiving the same result. Only
// artifacts that pass the independent verifier are admitted to the cache,
// so a cached answer carries the same guarantee as a fresh one. See
// DESIGN.md §5 for the full semantics.
package cache

import (
	"fmt"
	"hash/fnv"

	"github.com/cyclecover/cyclecover/internal/construct"
	"github.com/cyclecover/cyclecover/internal/graph"
	"github.com/cyclecover/cyclecover/internal/instance"
)

// Options select construction variants. Options are part of the cache key:
// the same demand planned under different options occupies distinct
// entries.
type Options struct {
	// EliminateRedundant runs the redundancy-elimination optimiser on the
	// constructed covering before it is verified and cached.
	EliminateRedundant bool
	// Strategy selects the construction strategy by registry name
	// (construct.Strategies: "closed-form", "exact", "repair", "greedy",
	// "portfolio"). Empty selects the fixed auto pipeline — the paper's
	// machinery for λK_n demands, greedy otherwise. Part of the cache
	// key: the same demand under different strategies occupies distinct
	// entries, so a strategy experiment never serves another strategy's
	// covering.
	Strategy string
	// Degrade selects the deadline-degraded pipeline: the anytime
	// portfolio (construct.AnytimeRegistry) instead of the full
	// machinery, with the result marked CoverResult.Degraded. Part of
	// the cache key (`;g=deg`, the same dimension scheme as `;s=`):
	// a degraded covering cached under a tight deadline can never be
	// served to a full-budget caller asking for the real pipeline.
	Degrade bool
}

// Signature returns the canonical cache key for an instance under the
// given options. Two instances with the same ring size and the same
// demand multigraph share a signature regardless of how they were built
// or named: recognised classes (λK_n, including K_n as λ=1) get a compact
// readable form, everything else a content hash of the edge multiset.
//
// General-topology instances get a distinct `t=` component hashing the
// host graph. Without it, a general instance whose host happens to be
// K_n would collapse onto the ring all-to-all signature (UniformLambda
// recognises the host-aliased demand) and the cache would serve a ring
// covering for a host-cover request — a latent complete-graph assumption
// this component closes.
func Signature(in instance.Instance, opts Options) string {
	if in.IsGeneral() {
		return withOptions(fmt.Sprintf("n=%d;t=h%016x", in.N(), demandHash(in.Host)), opts)
	}
	if lam, ok := construct.UniformLambda(in.Demand); ok {
		return SignatureLambda(in.N(), lam, opts)
	}
	return withOptions(fmt.Sprintf("n=%d;d=h%016x", in.N(), demandHash(in.Demand)), opts)
}

// SignatureAllToAll is Signature(instance.AllToAll(n), opts) computed in
// O(1), without materializing the demand graph. Hot callers (the Planner
// facade, the experiment sweeps) key their lookups with it.
func SignatureAllToAll(n int, opts Options) string { return SignatureLambda(n, 1, opts) }

// SignatureLambda is Signature(instance.Lambda(n, lambda), opts) in O(1).
func SignatureLambda(n, lambda int, opts Options) string {
	return withOptions(fmt.Sprintf("n=%d;d=k%d", n, lambda), opts)
}

func withOptions(sig string, opts Options) string {
	if opts.EliminateRedundant {
		sig += ";o=er"
	}
	if opts.Strategy != "" {
		sig += ";s=" + opts.Strategy
	}
	if opts.Degrade {
		sig += ";g=deg"
	}
	return sig
}

// demandHash is an FNV-1a fingerprint of the sorted edge multiset.
// ForEachEdge iterates in ascending lexicographic order — the same order
// Edges() has always produced — so the byte stream, and therefore every
// signature, canonicalises identically to the map-era implementation
// while walking the dense pair array without materialising an edge list.
func demandHash(g *graph.Graph) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	write := func(v int) {
		u := uint64(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(u >> (8 * i))
		}
		h.Write(buf[:])
	}
	write(g.N())
	g.ForEachEdge(func(u, v, mult int) bool {
		write(u)
		write(v)
		write(mult)
		return true
	})
	return h.Sum64()
}

package cache

import (
	"strings"
	"testing"

	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/instance"
)

// TestDegradeSignatureDimension pins the `;g=deg` dimension: degraded
// and full-budget requests for one instance occupy distinct entries, so
// a degraded covering can never poison the cache for a full-budget
// caller.
func TestDegradeSignatureDimension(t *testing.T) {
	in := instance.AllToAll(9)
	full := Signature(in, Options{})
	deg := Signature(in, Options{Degrade: true})
	if full == deg {
		t.Fatalf("degraded signature %q equals full signature", deg)
	}
	if !strings.HasSuffix(deg, ";g=deg") {
		t.Fatalf("degraded signature %q lacks the ;g=deg dimension", deg)
	}
	if got := Signature(in, Options{Strategy: "greedy", Degrade: true}); !strings.Contains(got, ";s=greedy;g=deg") {
		t.Fatalf("combined options signature %q lacks both dimensions", got)
	}
}

// TestCoverDegraded checks the degraded pipeline end-to-end through the
// cache: the result is verified, marked Degraded, carries no optimality
// claim, and does not contaminate the full-budget entry.
func TestCoverDegraded(t *testing.T) {
	p := New(8)
	in := instance.AllToAll(9)
	res, hit, err := p.Cover(in, Options{Degrade: true})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first degraded request reported a hit")
	}
	if !res.Degraded {
		t.Fatal("degraded pipeline result not marked Degraded")
	}
	if res.Optimal {
		t.Fatal("degraded result claims optimality")
	}
	if err := cover.Verify(res.Covering, in.Demand); err != nil {
		t.Fatalf("degraded covering failed verification: %v", err)
	}

	// The full-budget entry is computed independently and is optimal for
	// K_9 (the paper machinery), proving the degraded entry did not leak.
	fullRes, hit, err := p.Cover(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("full request hit the degraded entry")
	}
	if fullRes.Degraded {
		t.Fatal("full-budget result marked Degraded")
	}
	if !fullRes.Optimal {
		t.Fatal("full-budget K_9 result lost its optimality")
	}

	// Warm repeats on each dimension keep their provenance.
	res2, hit, err := p.Cover(in, Options{Degrade: true})
	if err != nil || !hit || !res2.Degraded {
		t.Fatalf("warm degraded repeat = (%+v, %v, %v), want degraded hit", res2.Degraded, hit, err)
	}
}

// TestCoverDegradedGeneral checks the degraded path on a general host:
// the anytime scc race produces a verified cover with no optimality
// claim.
func TestCoverDegradedGeneral(t *testing.T) {
	p := New(8)
	in, err := instance.Parse(10, "petersen")
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := p.Cover(in, Options{Degrade: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.Optimal {
		t.Fatalf("degraded general result = (Degraded=%v, Optimal=%v), want (true, false)", res.Degraded, res.Optimal)
	}
	if err := cover.VerifyGeneral(res.Covering, in.Host); err != nil {
		t.Fatalf("degraded general cover failed verification: %v", err)
	}
}

// TestLookupProbe checks the stale-serve probe: misses before
// computation, hits (with a private clone) after, and never computes.
func TestLookupProbe(t *testing.T) {
	p := New(8)
	in := instance.AllToAll(9)
	if _, ok := p.Lookup(in, Options{}); ok {
		t.Fatal("Lookup hit an empty cache")
	}
	want, _, err := p.Cover(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := p.Lookup(in, Options{})
	if !ok {
		t.Fatal("Lookup missed a cached entry")
	}
	if got.Covering.Size() != want.Covering.Size() || got.Optimal != want.Optimal {
		t.Fatalf("Lookup = %+v, want the cached result", got)
	}
	// Clone isolation: mutating the probe result must not corrupt the
	// cache.
	got.Covering.Cycles = nil
	again, ok := p.Lookup(in, Options{})
	if !ok || again.Covering.Size() != want.Covering.Size() {
		t.Fatal("Lookup clone mutation corrupted the cached entry")
	}
	// The degraded dimension is a distinct probe key.
	if _, ok := p.Lookup(in, Options{Degrade: true}); ok {
		t.Fatal("Lookup(full) satisfied a degraded probe")
	}
	if _, ok := p.LookupNetwork(in, Options{}); ok {
		t.Fatal("LookupNetwork hit before any network was planned")
	}
	if _, _, err := p.Network(in, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.LookupNetwork(in, Options{}); !ok {
		t.Fatal("LookupNetwork missed a cached network")
	}
}

package cache

import (
	"strings"
	"sync"
	"testing"

	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/graph"
	"github.com/cyclecover/cyclecover/internal/instance"
)

func TestSignatureCanonicalization(t *testing.T) {
	// K_n and λ=1 λK_n are the same demand: one cache entry.
	if a, b := Signature(instance.AllToAll(9), Options{}), Signature(instance.Lambda(9, 1), Options{}); a != b {
		t.Fatalf("K_9 and 1K_9 signatures differ: %q vs %q", a, b)
	}
	sigs := map[string]string{}
	for name, in := range map[string]instance.Instance{
		"k9":    instance.AllToAll(9),
		"k11":   instance.AllToAll(11),
		"2k9":   instance.Lambda(9, 2),
		"hub":   instance.Hub(9, 0),
		"hub3":  instance.Hub(9, 3),
		"neigh": instance.Neighbors(9),
		"rand7": mustRandom(t, 9, 0.5, 7),
		"rand8": mustRandom(t, 9, 0.5, 8),
	} {
		sig := Signature(in, Options{})
		if prev, ok := sigs[sig]; ok {
			t.Fatalf("instances %s and %s collide on signature %q", prev, name, sig)
		}
		sigs[sig] = name
	}
	// Options are part of the key.
	in := instance.AllToAll(9)
	if Signature(in, Options{}) == Signature(in, Options{EliminateRedundant: true}) {
		t.Fatal("options not reflected in signature")
	}
	// Signatures are name-independent: rebuilt demand, same key.
	rebuilt, err := instance.FromPairs(4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if Signature(rebuilt, Options{}) != Signature(instance.AllToAll(4), Options{}) {
		t.Fatal("hand-built K_4 got a different signature than AllToAll(4)")
	}
	if !strings.HasPrefix(Signature(instance.AllToAll(4), Options{}), "n=4;d=k1") {
		t.Fatalf("unexpected K_n signature form: %q", Signature(instance.AllToAll(4), Options{}))
	}
}

func TestCoverCachedAndVerified(t *testing.T) {
	p := New(16)
	for _, in := range []instance.Instance{
		instance.AllToAll(9),
		instance.AllToAll(8),
		instance.Lambda(7, 2),
		instance.Hub(10, 2),
		instance.Neighbors(9),
	} {
		first, hit, err := p.Cover(in, Options{})
		if err != nil {
			t.Fatalf("%s: %v", in.Name, err)
		}
		if hit {
			t.Fatalf("%s: first request reported a cache hit", in.Name)
		}
		if err := cover.Verify(first.Covering, in.Demand); err != nil {
			t.Fatalf("%s: cached covering invalid: %v", in.Name, err)
		}
		second, hit, err := p.Cover(in, Options{})
		if err != nil || !hit {
			t.Fatalf("%s: second request = (hit=%v, err=%v), want cache hit", in.Name, hit, err)
		}
		if second.Covering.Size() != first.Covering.Size() || second.Optimal != first.Optimal {
			t.Fatalf("%s: cached result drifted", in.Name)
		}
	}
}

// TestCoverCloneIsolation mutates a returned covering and checks the cache
// is unaffected: every caller owns a private clone.
func TestCoverCloneIsolation(t *testing.T) {
	p := New(16)
	in := instance.AllToAll(9)
	first, _, err := p.Cover(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := first.Covering.Size()
	first.Covering.Add(first.Covering.Cycles[0]) // caller-side mutation
	first.Covering.Canonicalize()

	second, hit, err := p.Cover(in, Options{})
	if err != nil || !hit {
		t.Fatalf("second Cover = (hit=%v, err=%v)", hit, err)
	}
	if second.Covering.Size() != want {
		t.Fatalf("cache entry corrupted by caller mutation: size %d, want %d", second.Covering.Size(), want)
	}
}

func TestNetworkCached(t *testing.T) {
	p := New(16)
	in := instance.AllToAll(11)
	nw, hit, err := p.Network(in, Options{})
	if err != nil || hit {
		t.Fatalf("first Network = (hit=%v, err=%v)", hit, err)
	}
	if nw.Wavelengths() != 2*len(nw.Subnets) {
		t.Fatal("planned network inconsistent")
	}
	again, hit, err := p.Network(in, Options{})
	if err != nil || !hit {
		t.Fatalf("second Network = (hit=%v, err=%v), want hit", hit, err)
	}
	if again != nw {
		t.Fatal("cached network not shared")
	}
	// The network path warms the covering store too.
	if st := p.Stats(); st.Coverings.Misses != 1 || st.Networks.Misses != 1 {
		t.Fatalf("stats = %+v, want one miss per store", st)
	}
}

func TestCoverRejectsBadInstances(t *testing.T) {
	bad := instance.Instance{Name: "too small", Demand: graph.Complete(2)}
	p := New(4)
	if _, _, err := p.Cover(bad, Options{}); err == nil {
		t.Fatal("Cover accepted a 2-vertex instance")
	}
	// Errors are not cached: the store stays empty.
	if st := p.Stats(); st.Coverings.Entries != 0 {
		t.Fatalf("error cached: %+v", st)
	}
}

func TestEliminateRedundantOption(t *testing.T) {
	p := New(8)
	in := instance.Hub(12, 0)
	plain, _, err := p.Cover(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	opt, _, err := p.Cover(in, Options{EliminateRedundant: true})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Covering.Size() > plain.Covering.Size() {
		t.Fatalf("redundancy elimination grew the covering: %d > %d", opt.Covering.Size(), plain.Covering.Size())
	}
	if err := cover.Verify(opt.Covering, in.Demand); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentCoverStampede exercises the full domain path under the
// race detector: many goroutines demand the same ring size at once and
// exactly one construction may run.
func TestConcurrentCoverStampede(t *testing.T) {
	const goroutines = 64
	p := New(16)
	in := instance.AllToAll(51)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, _, err := p.Cover(in, Options{})
			if err != nil {
				t.Error(err)
				return
			}
			if err := cover.Verify(res.Covering, in.Demand); err != nil {
				t.Error(err)
			}
			// Exercise the clone: concurrent mutation of private copies
			// must be invisible to other callers.
			res.Covering.Canonicalize()
		}()
	}
	wg.Wait()
	if st := p.Stats(); st.Coverings.Misses != 1 {
		t.Fatalf("%d constructions ran for one signature, want 1 (%+v)", st.Coverings.Misses, st)
	}
}

// TestConcurrentMixedWorkload hammers Cover and Network across several
// instances concurrently; run under -race this is the cache's integration
// safety test.
func TestConcurrentMixedWorkload(t *testing.T) {
	p := New(8)
	ins := []instance.Instance{
		instance.AllToAll(9),
		instance.AllToAll(10),
		instance.AllToAll(13),
		instance.Hub(9, 4),
		instance.Lambda(7, 3),
	}
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				in := ins[(w+i)%len(ins)]
				if w%2 == 0 {
					if _, _, err := p.Cover(in, Options{}); err != nil {
						t.Error(err)
					}
				} else {
					if _, _, err := p.Network(in, Options{}); err != nil {
						t.Error(err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	st := p.Stats()
	if st.Coverings.Misses > uint64(len(ins)) {
		t.Fatalf("more constructions than signatures: %+v", st)
	}
}

// mustRandom builds a random instance or fails the test.
func mustRandom(t *testing.T, n int, density float64, seed int64) instance.Instance {
	t.Helper()
	in, err := instance.RandomSymmetric(n, density, seed)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// Benchmarks: one per experiment in DESIGN.md §4. Each benchmark
// regenerates its table/series end to end, so `go test -bench=.` is the
// full reproduction run in miniature; cmd/experiments produces the
// human-readable tables from the same code.
//
// The table paths go through the sweep cache and its embedded warm-start
// snapshot (DESIGN.md §5.4), so the table benchmarks measure the
// pipeline as shipped — cache included. Raw constructor and verifier
// cost is measured by the explicitly uncached micro-benchmarks at the
// bottom (BenchmarkOddConstruction, BenchmarkVerifyCovering, ...) and by
// the cold/warm pair in planner_test.go.
package cyclecover

import (
	"fmt"
	"testing"

	"github.com/cyclecover/cyclecover/internal/bench"
	"github.com/cyclecover/cyclecover/internal/cache"
	"github.com/cyclecover/cyclecover/internal/construct"
	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/graph"
	"github.com/cyclecover/cyclecover/internal/ring"
	"github.com/cyclecover/cyclecover/internal/routing"
	"github.com/cyclecover/cyclecover/internal/survive"
	"github.com/cyclecover/cyclecover/internal/wdm"
)

// T1: Theorem 1 sweep (odd n) — construction + verification + composition.
func BenchmarkTheorem1OddCovering(b *testing.B) {
	ns := []int{3, 9, 15, 21, 27, 33, 41}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := bench.TableT1(ns)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.Optimal || !r.Valid {
				b.Fatalf("n=%d not optimal/valid", r.N)
			}
		}
	}
}

// T2: Theorem 2 sweep (even n) — search range plus layered tail.
func BenchmarkTheorem2EvenCovering(b *testing.B) {
	ns := []int{4, 8, 12, 16, 20, 24, 40}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := bench.TableT2(ns)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.Valid {
				b.Fatalf("n=%d invalid", r.N)
			}
		}
	}
}

// T3: exact search certifications for small n.
func BenchmarkExactSolverSmallN(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := bench.TableT3([]int{4, 5, 6}, 6)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.FoundAtRho || !r.ProvedBelow {
				b.Fatalf("certification failed at n=%d", r.N)
			}
		}
	}
}

// E1: the paper's worked example.
func BenchmarkExampleK4(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := bench.ExampleK4()
		if res.BadTourRoutable || !res.GoodCoveringValid {
			b.Fatal("example mismatch")
		}
	}
}

// C1: DRC vs unconstrained covering sizes.
func BenchmarkBaselineComparison(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bench.TableC1([]int{5, 9, 15, 21, 31})
	}
}

// C2: cycle-count vs total-size objectives.
func BenchmarkObjectiveComparison(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.TableC2([]int{5, 9, 15, 21}); err != nil {
			b.Fatal(err)
		}
	}
}

// F1: asymptotic series ρ(n)/n².
func BenchmarkRhoAsymptotics(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bench.SeriesF1([]int{11, 51, 101, 201, 401, 1001})
	}
}

// F2: failure drills (single sweeps; double for the small sizes).
func BenchmarkFailureRecovery(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := bench.TableF2([]int{5, 8, 11, 15}, 8)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.AllRestored {
				b.Fatal("survivability violated")
			}
		}
	}
}

// F3: WDM cost profiles.
func BenchmarkWDMCost(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.TableF3([]int{5, 9, 13, 17}); err != nil {
			b.Fatal(err)
		}
	}
}

// X1: λK_n extension.
func BenchmarkLambdaKn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.TableX1([]int{7, 9}, []int{1, 2, 3, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// X2: extension topologies.
func BenchmarkExtensionTopologies(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.TableX2(); err != nil {
			b.Fatal(err)
		}
	}
}

// A1: even-constructor ablation.
func BenchmarkEvenAblation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bench.TableA1([]int{8, 12, 16, 24, 48})
	}
}

// A2: verifier ablation — the O(k) structural DRC criterion vs the
// explicit arc-disjointness re-verification.
func BenchmarkVerifierAblation(b *testing.B) {
	r := ring.MustNew(101)
	cv := construct.Odd(101)
	b.Run("structural", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, c := range cv.Cycles {
				if !routing.Tour(c.Vertices()).IsRingOrdered(r) {
					b.Fatal("structural check failed")
				}
			}
		}
	})
	b.Run("explicit", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, c := range cv.Cycles {
				if err := cover.VerifyDRC(r, c); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// A3: sweep parallelisation — serial vs worker-pool table generation.
func BenchmarkParallelSweep(b *testing.B) {
	ns := []int{3, 9, 15, 21, 27, 33, 41, 51, 61, 71}
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := bench.ParallelTableT1(ns, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := bench.ParallelTableT1(ns, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Micro-benchmarks for the core paths.

func BenchmarkOddConstruction(b *testing.B) {
	for _, n := range []int{21, 51, 101, 201} {
		b.Run(itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cv := construct.Odd(n)
				if cv.Size() != cover.Rho(n) {
					b.Fatal("size mismatch")
				}
			}
		})
	}
}

func BenchmarkVerifyCovering(b *testing.B) {
	cv := construct.Odd(101)
	demand := graph.Complete(101)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := cover.Verify(cv, demand); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyCovering(b *testing.B) {
	r := ring.MustNew(31)
	demand := graph.Complete(31)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cv := construct.Greedy(r, demand)
		if cv.Size() == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkSingleFailureSweep(b *testing.B) {
	res, err := construct.AllToAll(21)
	if err != nil {
		b.Fatal(err)
	}
	nw, err := wdm.Plan(res.Covering, graph.Complete(21))
	if err != nil {
		b.Fatal(err)
	}
	sim := survive.NewSimulator(nw)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sweep, err := sim.Sweep(survive.SweepOptions{K: 1})
		if err != nil || !sweep.AllRestored {
			b.Fatal("sweep failed")
		}
	}
}

// S1: concurrent warm-hit throughput, single-lock store vs the sharded
// default. All goroutines hammer warm keys; shards=1 reproduces the
// pre-sharding store (one global mutex), the other case is the shipped
// layout. The gap is the cost of serializing every hit on one lock and
// grows with core count; on a single-core runner the two are within
// noise (one core runs one critical section at a time regardless).
func BenchmarkStoreWarmHitThroughput(b *testing.B) {
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("n=%d;d=k1", i+3)
	}
	for _, tc := range []struct {
		name   string
		shards int
	}{{"single-lock", 1}, {"sharded", 0}} {
		b.Run(tc.name, func(b *testing.B) {
			s := cache.NewStoreSharded(4096, tc.shards)
			for i, k := range keys {
				s.Put(k, i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, hit, _ := s.Do(keys[i%len(keys)], func() (any, error) { return nil, nil }); !hit {
						b.Fatal("expected warm hit")
					}
					i++
				}
			})
		})
	}
}

// S2: exact-search certification at the largest search-certified even n,
// serial vs the first-level fan-out. The parallel run is deterministic
// (same covering as serial, pinned by TestExactParallelMatchesSerial)
// and scales with cores. Parallelism is forced to 4 rather than left at
// the GOMAXPROCS default so the fan-out machinery is exercised even on a
// single-core runner (where the default would degrade to serial).
func BenchmarkExactCertification(b *testing.B) {
	const n = 12
	for _, tc := range []struct {
		name string
		par  int
	}{{"serial", 1}, {"parallel", 4}} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out := construct.Exact(n, construct.ExactOptions{
					Budget: cover.Rho(n), MaxLen: 4, NodeLimit: 8_000_000, Parallelism: tc.par,
				})
				if out.Covering == nil {
					b.Fatal("no covering at ρ(12)")
				}
			}
		})
	}
}

// BenchmarkExact is the pinned exact-search hot-path benchmark (see
// BENCH_5.json): the full branch-and-bound certification of K_12 at
// ρ(12), serial, fixed node limit. Its inner branch is the hottest loop
// in the solver; the dense-core refactor is measured against it, and the
// symmetry-reduced engine reports its search effort as nodes/op (gated
// by cmd/benchgate alongside the allocation budgets).
func BenchmarkExact(b *testing.B) {
	const n = 12
	b.ReportAllocs()
	var nodes int64
	for i := 0; i < b.N; i++ {
		out := construct.Exact(n, construct.ExactOptions{
			Budget: cover.Rho(n), MaxLen: 4, NodeLimit: 8_000_000, Parallelism: 1,
		})
		if out.Covering == nil {
			b.Fatal("no covering at ρ(12)")
		}
		nodes += out.Nodes
	}
	b.ReportMetric(float64(nodes)/float64(b.N), "nodes/op")
}

// BenchmarkExactCert is the pinned lower-bound certification benchmark
// (see BENCH_8.json): the completed infeasibility proof of K_12 at
// ρ(12)−1 within the paper's cycle-length class (MaxLen 4), serial. The
// whole tree must be exhausted, so — unlike the constructive search
// above, which stops at the first covering — this measures raw pruning
// power; the symmetry/memo/counting-bound engine is measured against it.
func BenchmarkExactCert(b *testing.B) {
	const n = 12
	b.ReportAllocs()
	var nodes int64
	for i := 0; i < b.N; i++ {
		out := construct.Exact(n, construct.ExactOptions{
			Budget: cover.Rho(n) - 1, MaxLen: 4, NodeLimit: construct.DefaultNodeLimit, Parallelism: 1,
		})
		if out.Covering != nil || !out.Complete {
			b.Fatalf("ρ(12)−1 must be a completed infeasibility proof, got %+v", out)
		}
		nodes += out.Nodes
	}
	b.ReportMetric(float64(nodes)/float64(b.N), "nodes/op")
}

// BenchmarkExactCertRho13 certifies ρ(13) − the first ring size whose
// lower-bound proof only became feasible inside DefaultNodeLimit with
// the symmetry-reduced engine (BENCH_8.json): a completed exhaustion of
// K_13 at ρ(13)−1, MaxLen 4, serial.
func BenchmarkExactCertRho13(b *testing.B) {
	const n = 13
	b.ReportAllocs()
	var nodes int64
	for i := 0; i < b.N; i++ {
		out := construct.Exact(n, construct.ExactOptions{
			Budget: cover.Rho(n) - 1, MaxLen: 4, NodeLimit: construct.DefaultNodeLimit, Parallelism: 1,
		})
		if out.Covering != nil || !out.Complete {
			b.Fatalf("ρ(13)−1 must be a completed infeasibility proof, got %+v", out)
		}
		nodes += out.Nodes
	}
	b.ReportMetric(float64(nodes)/float64(b.N), "nodes/op")
}

// BenchmarkSweep is the pinned sweep hot-path benchmark (see
// BENCH_5.json): exhaustive k = 1 and k = 2 failure sweeps of the K_12
// plan, serial, measuring the per-sweep fixed costs plus the scenario
// evaluate loop.
func BenchmarkSweep(b *testing.B) {
	res, err := construct.AllToAll(12)
	if err != nil {
		b.Fatal(err)
	}
	nw, err := wdm.Plan(res.Covering, graph.Complete(12))
	if err != nil {
		b.Fatal(err)
	}
	sim := survive.NewSimulator(nw)
	for _, k := range []int{1, 2} {
		b.Run(fmt.Sprintf("k%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sweep, err := sim.Sweep(survive.SweepOptions{K: k, Workers: 1})
				if err != nil || sweep.Evaluated == 0 {
					b.Fatal("sweep failed")
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

package cyclecover

import (
	"strings"
	"testing"
)

// generalFamilies is the property-harness table: every general-topology
// spec family the wire format offers, each with its host size and
// whether the host is a snark (so the literature bound 4/3·m + c
// applies). The harness runs the full Parse → Cover → Verify round-trip
// on each and re-validates the cover edge by edge, independently of the
// library verifier.
var generalFamilies = []struct {
	spec  string
	n     int
	snark bool
}{
	{"petersen", 10, true},
	{"blanusa:1", 18, true},
	{"blanusa:2", 18, true},
	{"flower:5", 20, true},
	{"flower:7", 28, true},
	{"prism:3", 6, false},
	{"prism:4", 8, false},
	{"prism:6", 12, false},
	{"cubic:1", 12, false},
	{"cubic:7", 12, false},
	{"edges:0-1,1-2,2-3,3-0,0-2,1-3", 4, false},
	{"edges:0-1,1-2,2-0,0-3,3-4,4-0,1-3,2-4", 5, false}, // non-regular: degrees 4,3,3,3,3
	{"adj:1,2;0,2;0,1", 3, false},
	{"adj:1,2,3;0,2,3;0,1,3;0,1,2", 4, false},
}

// checkCoverEdgeByEdge re-validates a general cover against its host
// with independent bookkeeping: every consecutive cycle pair must be a
// host edge, and the union of all pairs must touch every host edge. It
// deliberately repeats none of the verifier's code.
func checkCoverEdgeByEdge(t *testing.T, cv *Covering, in Instance) {
	t.Helper()
	covered := make(map[[2]int]bool)
	for ci, c := range cv.Cycles {
		verts := c.Vertices()
		if len(verts) < 3 {
			t.Fatalf("cycle %d has %d vertices", ci, len(verts))
		}
		for i, u := range verts {
			v := verts[(i+1)%len(verts)]
			if u > v {
				u, v = v, u
			}
			if in.Host.Mult(u, v) == 0 {
				t.Fatalf("cycle %d walks {%d,%d}, not a host edge", ci, u, v)
			}
			covered[[2]int{u, v}] = true
		}
	}
	missing := 0
	for u := 0; u < in.N(); u++ {
		for v := u + 1; v < in.N(); v++ {
			if in.Host.Mult(u, v) > 0 && !covered[[2]int{u, v}] {
				missing++
			}
		}
	}
	if missing != 0 {
		t.Fatalf("%d host edges uncovered", missing)
	}
}

// TestGeneralEndToEnd is the property harness: for every general spec
// family, Parse → CoverInstance → Verify must round-trip, the cover
// must survive independent edge-by-edge validation, its length must
// respect the counting lower bound, and snark covers must meet the
// literature bound 4/3·m + c.
func TestGeneralEndToEnd(t *testing.T) {
	for _, tc := range generalFamilies {
		tc := tc
		t.Run(tc.spec, func(t *testing.T) {
			t.Parallel()
			in, err := ParseInstance(tc.n, tc.spec)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if !in.IsGeneral() {
				t.Fatalf("%q did not parse as a general-topology instance", tc.spec)
			}
			cv, err := CoverInstance(in)
			if err != nil {
				t.Fatalf("cover: %v", err)
			}
			if err := Verify(cv, in); err != nil {
				t.Fatalf("verify: %v", err)
			}
			checkCoverEdgeByEdge(t, cv, in)
			length := cv.TotalLength()
			if lb := SCCLowerBound(in); length < lb {
				t.Fatalf("cover length %d below the provable lower bound %d", length, lb)
			}
			if tc.snark {
				if ub := SnarkSCCUpperBound(in.Host.M()); length > ub {
					t.Fatalf("snark cover length %d exceeds the literature bound 4/3·m + c = %d", length, ub)
				}
			}
			// The WDM layer must refuse: there is no ring to route on.
			if _, err := PlanWDM(cv, in); err == nil {
				t.Fatal("PlanWDM accepted a general-topology instance")
			}
		})
	}
}

// TestPlannerCoverGeneral is the cached end-to-end acceptance path:
// Planner.CoverInstance plans Petersen and the flower snark J5 through
// the covering cache, the covers verify, meet the snark bound, and the
// second request is served from memory.
func TestPlannerCoverGeneral(t *testing.T) {
	p := NewPlanner()
	for _, spec := range []struct {
		spec string
		n    int
	}{
		{"petersen", 10},
		{"flower:5", 20},
	} {
		in, err := ParseInstance(spec.n, spec.spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.spec, err)
		}
		cv, err := p.CoverInstance(in)
		if err != nil {
			t.Fatalf("%s: %v", spec.spec, err)
		}
		if err := Verify(cv, in); err != nil {
			t.Fatalf("%s: planned cover invalid: %v", spec.spec, err)
		}
		if got, ub := cv.TotalLength(), SnarkSCCUpperBound(in.Host.M()); got > ub {
			t.Fatalf("%s: length %d exceeds 4/3·m + c = %d", spec.spec, got, ub)
		}
		misses := p.CacheStats().Coverings.Misses
		if _, err := p.CoverInstance(in); err != nil {
			t.Fatalf("%s warm: %v", spec.spec, err)
		}
		if p.CacheStats().Coverings.Misses != misses {
			t.Fatalf("%s: second CoverInstance missed the cache", spec.spec)
		}
		// The optical layer has no meaning over a general host.
		if _, err := p.PlanWDM(in); err == nil {
			t.Fatalf("%s: Planner.PlanWDM accepted a general instance", spec.spec)
		} else if !strings.Contains(err.Error(), "ring instances only") {
			t.Fatalf("%s: unexpected PlanWDM rejection: %v", spec.spec, err)
		}
	}
}

// TestGeneralRingSeparation pins the family boundary at the facade: a
// general host that happens to be K_4 must not alias the ring K_4
// instance — different signature, different objective, different
// verifier.
func TestGeneralRingSeparation(t *testing.T) {
	p := NewPlanner()
	gen, err := ParseInstance(4, "edges:0-1,0-2,0-3,1-2,1-3,2-3")
	if err != nil {
		t.Fatal(err)
	}
	ringIn := AllToAll(4)
	if p.SignatureOf(gen) == p.SignatureOf(ringIn) {
		t.Fatal("general K_4 host shares a cache signature with ring AllToAll(4)")
	}
	gcv, err := p.CoverInstance(gen)
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := p.CoverInstance(ringIn)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(gcv, gen); err != nil {
		t.Fatalf("general cover invalid: %v", err)
	}
	if err := Verify(rcv, ringIn); err != nil {
		t.Fatalf("ring covering invalid: %v", err)
	}
	if gcv.TotalLength() != 8 {
		t.Fatalf("general K_4 cover length %d, want the cubic optimum 4/3·m = 8", gcv.TotalLength())
	}
}

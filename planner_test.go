package cyclecover

import (
	"sync"
	"testing"
)

// TestPlannerMatchesUncachedPath checks the facade returns exactly what
// the free functions return, warm or cold.
func TestPlannerMatchesUncachedPath(t *testing.T) {
	p := NewPlanner()
	for _, n := range []int{5, 8, 9, 12, 13} {
		direct, directOpt, err := CoverAllToAll(n)
		if err != nil {
			t.Fatal(err)
		}
		for pass := 0; pass < 2; pass++ { // cold, then warm
			cached, cachedOpt, err := p.CoverAllToAll(n)
			if err != nil {
				t.Fatal(err)
			}
			if cached.Size() != direct.Size() || cachedOpt != directOpt {
				t.Fatalf("n=%d pass %d: planner (%d, %v) != direct (%d, %v)",
					n, pass, cached.Size(), cachedOpt, direct.Size(), directOpt)
			}
			if err := Verify(cached, AllToAll(n)); err != nil {
				t.Fatalf("n=%d pass %d: %v", n, pass, err)
			}
		}
	}
	st := p.CacheStats()
	if st.Coverings.Misses != 5 || st.Coverings.Hits != 5 {
		t.Fatalf("stats = %+v, want 5 misses and 5 hits", st)
	}
}

func TestPlannerPlanWDM(t *testing.T) {
	p := NewPlanner(WithCacheSize(8))
	in := AllToAll(9)
	nw, err := p.PlanWDM(in)
	if err != nil {
		t.Fatal(err)
	}
	again, err := p.PlanWDM(in)
	if err != nil {
		t.Fatal(err)
	}
	if nw != again {
		t.Fatal("warm PlanWDM rebuilt the network")
	}
	sim := NewSimulator(nw)
	report, err := sim.Fail(0)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Restored() {
		t.Fatal("single failure not restored on cached network")
	}
}

// TestPlannerReturnsPrivateClones: a caller trashing its covering must
// not affect later calls.
func TestPlannerReturnsPrivateClones(t *testing.T) {
	p := NewPlanner()
	cv, _, err := p.CoverAllToAll(9)
	if err != nil {
		t.Fatal(err)
	}
	want := cv.Size()
	cv.Add(cv.Cycles[0]) // corrupt the caller's copy
	cv2, _, err := p.CoverAllToAll(9)
	if err != nil {
		t.Fatal(err)
	}
	if cv2.Size() != want {
		t.Fatalf("cache corrupted: %d, want %d", cv2.Size(), want)
	}
}

// TestPlannerConcurrentUse is the facade-level race test.
func TestPlannerConcurrentUse(t *testing.T) {
	p := NewPlanner()
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := 9 + (w%3)*2
			for i := 0; i < 5; i++ {
				if _, _, err := p.CoverAllToAll(n); err != nil {
					t.Error(err)
					return
				}
				if _, err := p.PlanWDM(AllToAll(n)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if st := p.CacheStats(); st.Coverings.Misses > 3 {
		t.Fatalf("more constructions than distinct sizes: %+v", st)
	}
}

// BenchmarkCoverAllToAllUncached is the cold path: every iteration
// reconstructs the K_101 covering from scratch.
func BenchmarkCoverAllToAllUncached(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cv, _, err := CoverAllToAll(101)
		if err != nil || cv.Size() == 0 {
			b.Fatal("construction failed")
		}
	}
}

// BenchmarkPlannerCoverAllToAllWarm is the cached path on the same
// workload. The acceptance bar for the covering cache is ≥10x over
// BenchmarkCoverAllToAllUncached; in practice the spread is orders of
// magnitude (a clone versus a full construction).
func BenchmarkPlannerCoverAllToAllWarm(b *testing.B) {
	p := NewPlanner()
	if _, _, err := p.CoverAllToAll(101); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cv, _, err := p.CoverAllToAll(101)
		if err != nil || cv.Size() == 0 {
			b.Fatal("cached cover failed")
		}
	}
}

// BenchmarkPlannerPlanWDMWarm measures the cached optical-design path.
func BenchmarkPlannerPlanWDMWarm(b *testing.B) {
	p := NewPlanner()
	in := AllToAll(51)
	if _, err := p.PlanWDM(in); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.PlanWDM(in); err != nil {
			b.Fatal(err)
		}
	}
}

// TestPlanManyMixedBatch plans a heterogeneous batch — duplicates, all
// spec families, and a poisoned zero-value instance — and checks order
// preservation, per-slot errors, and single-construction deduplication.
func TestPlanManyMixedBatch(t *testing.T) {
	p := NewPlanner()
	random, err := RandomInstance(9, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	ins := []Instance{
		AllToAll(9),
		AllToAll(9), // duplicate signature: must not construct twice
		Hub(10, 3),
		Neighbors(9),
		random,
		LambdaAllToAll(7, 2),
		{}, // zero value: error slot, not a panic
		AllToAll(9),
	}
	results := p.PlanMany(ins, 4)
	if len(results) != len(ins) {
		t.Fatalf("got %d results for %d instances", len(results), len(ins))
	}
	for i, res := range results {
		if i == 6 {
			if res.Err == nil {
				t.Fatalf("slot %d: zero-value instance must error", i)
			}
			continue
		}
		if res.Err != nil {
			t.Fatalf("slot %d (%s): %v", i, ins[i].Name, res.Err)
		}
		if err := Verify(res.Covering, ins[i]); err != nil {
			t.Fatalf("slot %d (%s): covering invalid: %v", i, ins[i].Name, err)
		}
		if res.Network == nil || len(res.Network.Subnets) != res.Covering.Size() {
			t.Fatalf("slot %d (%s): network inconsistent with covering", i, ins[i].Name)
		}
	}
	// Slots 0, 1 and 7 share one signature and slot 6 never constructs,
	// leaving five distinct signatures.
	if st := p.CacheStats(); st.Coverings.Misses != 5 {
		t.Fatalf("coverings misses = %d, want 5 (one per distinct signature)", st.Coverings.Misses)
	}
}

// TestPlanManyEmptyAndSerial covers the edges: empty batch, and workers
// clamped to batch size / forced serial.
func TestPlanManyEmptyAndSerial(t *testing.T) {
	p := NewPlanner()
	if got := p.PlanMany(nil, 8); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
	results := p.PlanMany([]Instance{AllToAll(5)}, 1)
	if len(results) != 1 || results[0].Err != nil || results[0].Covering.Size() != 3 {
		t.Fatalf("serial PlanMany broken: %+v", results)
	}
}

// TestPlanManyConcurrentBatches runs several PlanMany calls on one
// planner at once; with -race this checks the fan-out workers against
// the sharded cache.
func TestPlanManyConcurrentBatches(t *testing.T) {
	p := NewPlanner()
	ins := []Instance{AllToAll(9), AllToAll(11), Hub(9, 0), Neighbors(8)}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, res := range p.PlanMany(ins, 0) {
				if res.Err != nil {
					t.Error(res.Err)
				}
			}
		}()
	}
	wg.Wait()
	if st := p.CacheStats(); st.Coverings.Misses != uint64(len(ins)) {
		t.Fatalf("misses = %d, want %d", st.Coverings.Misses, len(ins))
	}
}

// BenchmarkPlanManyWarm is the facade batch path against a warm cache.
func BenchmarkPlanManyWarm(b *testing.B) {
	p := NewPlanner()
	ins := []Instance{
		AllToAll(9), AllToAll(11), AllToAll(13), Hub(12, 0), Neighbors(10),
		AllToAll(9), AllToAll(11), AllToAll(13),
	}
	p.PlanMany(ins, 0) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, res := range p.PlanMany(ins, 0) {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	}
}

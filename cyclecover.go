// Package cyclecover is a Go implementation of survivable WDM ring design
// by DRC cycle covering, reproducing Bermond, Coudert, Chacon and
// Tillerot, "A Note on Cycle Covering", ACM SPAA 2001.
//
// The physical network is an undirected ring C_n; the logical demand is a
// family of symmetric requests (the central case is all-to-all, K_n). A
// design is a covering of the demand edges by cycles, each of which must
// admit an edge-disjoint routing on the ring (the disjoint routing
// constraint, DRC) so that it can be protected independently: each cycle
// gets a working and a spare wavelength, and any single link failure is
// recovered by switching traffic around the rest of its cycle.
//
// The package exposes:
//
//   - Rho, LowerBound, TheoremComposition — the paper's closed forms;
//   - CoverAllToAll, CoverInstance — constructors (Theorem 1's
//     construction for odd n is exactly optimal; even n is
//     search-certified optimal up to the documented limit and
//     asymptotically optimal beyond);
//   - Verify — independent validity checking of any covering;
//   - PlanWDM, NewSimulator — the optical layer and failure simulation;
//   - Planner — the cached planning facade: verified coverings and WDM
//     plans memoized per instance signature with single-flight
//     deduplication, the same path the cycled HTTP service
//     (cmd/cycled) serves.
//
// See DESIGN.md for the architecture (§5 covers the planner service and
// cache semantics) and EXPERIMENTS.md for the reproduction results.
package cyclecover

import (
	"fmt"

	"github.com/cyclecover/cyclecover/internal/construct"
	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/instance"
	"github.com/cyclecover/cyclecover/internal/ring"
	"github.com/cyclecover/cyclecover/internal/survive"
	"github.com/cyclecover/cyclecover/internal/wdm"
)

// Re-exported core types. They are defined in internal packages to keep
// the implementation layers private; these aliases are the stable names.
type (
	// Ring is the physical cycle C_n.
	Ring = ring.Ring
	// Cycle is a DRC-routable cycle: a vertex set traversed in ring order.
	Cycle = cover.Cycle
	// Covering is a family of cycles intended to cover a demand.
	Covering = cover.Covering
	// Composition is a C3/C4 cycle mix.
	Composition = cover.Composition
	// Instance is a named demand set.
	Instance = instance.Instance
	// Network is a planned WDM design (subnetworks + wavelengths).
	Network = wdm.Network
	// CostModel weights the paper's cost drivers.
	CostModel = wdm.CostModel
	// Simulator drives failure scenarios.
	Simulator = survive.Simulator
	// FailureReport summarises one failure scenario.
	FailureReport = survive.FailureReport
	// Link identifies a ring link by its lower endpoint.
	Link = ring.Link
)

// NewRing returns the physical ring C_n (n ≥ 3).
func NewRing(n int) (Ring, error) { return ring.New(n) }

// NewCycle builds a DRC cycle on the given ring from a vertex set.
func NewCycle(r Ring, verts ...int) (Cycle, error) { return cover.NewCycle(r, verts...) }

// NewCovering returns an empty covering over r, for hand-built designs.
func NewCovering(r Ring) *Covering { return cover.NewCovering(r) }

// Rho returns ρ(n), the paper's optimal number of cycles for K_n over C_n.
func Rho(n int) int { return cover.Rho(n) }

// LowerBound returns the implemented lower bound on ρ(n) (arc-length
// counting plus the even-p refinement); it coincides with Rho for all n.
func LowerBound(n int) int { return cover.LowerBound(n) }

// TheoremComposition returns the C3/C4 mix stated by the paper's theorems.
func TheoremComposition(n int) (Composition, bool) { return cover.TheoremComposition(n) }

// AllToAll returns the total-exchange instance K_n.
func AllToAll(n int) Instance { return instance.AllToAll(n) }

// LambdaAllToAll returns the λK_n instance.
func LambdaAllToAll(n, lambda int) Instance { return instance.Lambda(n, lambda) }

// Hub returns the hubbed instance (all nodes to one hub).
func Hub(n, hub int) Instance { return instance.Hub(n, hub) }

// Neighbors returns the adjacency instance.
func Neighbors(n int) Instance { return instance.Neighbors(n) }

// RandomInstance samples a reproducible random symmetric demand. Finite
// densities outside [0, 1] are clamped; non-finite densities (NaN, ±Inf)
// are rejected.
func RandomInstance(n int, density float64, seed int64) (Instance, error) {
	return instance.RandomSymmetric(n, density, seed)
}

// ParseInstance builds an instance from the compact demand spec shared by
// the CLI tools and the cycled service: alltoall | lambda:<k> |
// hub:<node> | neighbors | random:<density>:<seed>.
func ParseInstance(n int, spec string) (Instance, error) {
	return instance.Parse(n, spec)
}

// CoverAllToAll constructs a DRC covering of K_n. optimal reports that the
// covering provably has ρ(n) cycles (always true for odd n; true for even
// n within the search range documented in DESIGN.md).
func CoverAllToAll(n int) (cv *Covering, optimal bool, err error) {
	res, err := construct.AllToAll(n)
	if err != nil {
		return nil, false, err
	}
	return res.Covering, res.Optimal, nil
}

// CoverInstance constructs a valid DRC covering for an arbitrary instance
// over C_n (n = instance size): the closed-form machinery when the demand
// is complete, the greedy constructor otherwise.
func CoverInstance(in Instance) (*Covering, error) {
	if in.Demand == nil {
		return nil, fmt.Errorf("cyclecover: instance %q has no demand graph (zero-value instance?)", in.Name)
	}
	n := in.N()
	r, err := ring.New(n)
	if err != nil {
		return nil, err
	}
	// Complete single-multiplicity demand: use the optimal machinery.
	if in.Demand.DistinctEdges() == n*(n-1)/2 {
		allOne := true
		for _, e := range in.Demand.Edges() {
			if in.Demand.Multiplicity(e.U, e.V) != 1 {
				allOne = false
				break
			}
		}
		if allOne {
			res, err := construct.AllToAll(n)
			if err != nil {
				return nil, err
			}
			return res.Covering, nil
		}
	}
	return construct.Greedy(r, in.Demand), nil
}

// Verify checks that cv is a valid DRC covering of the instance: every
// cycle routable edge-disjointly, every request covered at least its
// multiplicity. A nil covering or a zero-value instance (nil demand) is
// reported as an error, never a panic.
func Verify(cv *Covering, in Instance) error {
	return cover.Verify(cv, in.Demand)
}

// VerifyOptimalAllToAll additionally checks |cv| = ρ(n).
func VerifyOptimalAllToAll(cv *Covering) error { return cover.VerifyOptimal(cv) }

// PlanWDM builds the optical design: one subnetwork per cycle with working
// and spare wavelengths, demand assignment, and cost accounting. Nil
// coverings and zero-value instances are errors, not panics.
func PlanWDM(cv *Covering, in Instance) (*Network, error) {
	return wdm.Plan(cv, in.Demand)
}

// DefaultCostModel is the default weighting of the paper's cost drivers.
func DefaultCostModel() CostModel { return wdm.DefaultCostModel }

// NewSimulator wraps a planned network for failure drills.
func NewSimulator(nw *Network) *Simulator { return survive.NewSimulator(nw) }

// Describe returns a short human-readable summary of a covering.
func Describe(cv *Covering) string {
	s := cv.Summarize()
	return fmt.Sprintf("covering of C_%d: %d cycles (%d C3, %d C4, %d longer), %d slots, slack %d",
		s.N, s.Cycles, s.Triangles, s.Quads, s.Longer, s.Slots, s.Slack)
}

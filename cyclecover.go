// Package cyclecover is a Go implementation of survivable WDM ring design
// by DRC cycle covering, reproducing Bermond, Coudert, Chacon and
// Tillerot, "A Note on Cycle Covering", ACM SPAA 2001.
//
// The physical network is an undirected ring C_n; the logical demand is a
// family of symmetric requests (the central case is all-to-all, K_n). A
// design is a covering of the demand edges by cycles, each of which must
// admit an edge-disjoint routing on the ring (the disjoint routing
// constraint, DRC) so that it can be protected independently: each cycle
// gets a working and a spare wavelength, and any single link failure is
// recovered by switching traffic around the rest of its cycle.
//
// The package exposes:
//
//   - Rho, LowerBound, TheoremComposition — the paper's closed forms;
//   - CoverAllToAll, CoverInstance — constructors (Theorem 1's
//     construction for odd n is exactly optimal; even n is
//     search-certified optimal up to the documented limit and
//     asymptotically optimal beyond), with context-aware variants
//     CoverAllToAllCtx and CoverInstanceCtx whose searches abort
//     promptly when the context fires;
//   - Strategies, CoverInstanceStrategy — the pluggable solver engine:
//     every construction path (closed-form, exact, repair, greedy) is
//     independently selectable by name, and "portfolio" races them
//     under one context with deterministic winner selection;
//   - Verify — independent validity checking of any covering, running
//     on the flat dense graph core (DESIGN.md §7): link loads and
//     coverage are tallied over pooled scratch in one pass, so repeated
//     verification is allocation-free in steady state;
//   - PlanWDM, NewSimulator — the optical layer and failure simulation,
//     including the parallel k-failure sweep engine (SweepOptions /
//     SweepResult): exhaustive single- and double-failure sweeps,
//     deterministically sampled k ≥ 3 sweeps, per-scenario reports and
//     critical-link attribution, cancellable mid-sweep;
//   - Planner — the cached planning facade: verified coverings and WDM
//     plans memoized per instance signature with single-flight
//     deduplication, the same path the cycled HTTP service (cmd/cycled)
//     serves. Its CoverInstanceCtx, PlanWDMCtx and PlanManyCtx methods
//     propagate cancellation and deadlines all the way into
//     branch-and-bound: a caller that gives up detaches immediately and
//     the search is cancelled once nobody wants it, without poisoning
//     the cache. Planner.Simulate plans through the cache and sweeps
//     the result — plan once, sweep many — the same path POST /simulate
//     serves.
//
// See DESIGN.md for the architecture (§3 covers the strategy registry,
// §5 the planner service, §5.5 the context and deadline semantics, §6
// the survivability subsystem) and EXPERIMENTS.md for the reproduction
// results.
package cyclecover

import (
	"context"
	"fmt"

	"github.com/cyclecover/cyclecover/internal/construct"
	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/instance"
	"github.com/cyclecover/cyclecover/internal/ring"
	"github.com/cyclecover/cyclecover/internal/survive"
	"github.com/cyclecover/cyclecover/internal/wdm"
)

// Re-exported core types. They are defined in internal packages to keep
// the implementation layers private; these aliases are the stable names.
type (
	// Ring is the physical cycle C_n.
	Ring = ring.Ring
	// Cycle is a DRC-routable cycle: a vertex set traversed in ring order.
	Cycle = cover.Cycle
	// Covering is a family of cycles intended to cover a demand.
	Covering = cover.Covering
	// Composition is a C3/C4 cycle mix.
	Composition = cover.Composition
	// Instance is a named demand set.
	Instance = instance.Instance
	// Network is a planned WDM design (subnetworks + wavelengths).
	Network = wdm.Network
	// CostModel weights the paper's cost drivers.
	CostModel = wdm.CostModel
	// Simulator drives failure scenarios.
	Simulator = survive.Simulator
	// FailureReport summarises one failure scenario.
	FailureReport = survive.FailureReport
	// SweepOptions configures a k-failure sweep (multiplicity, workers,
	// sampling, budget).
	SweepOptions = survive.SweepOptions
	// SweepResult aggregates a k-failure sweep.
	SweepResult = survive.SweepResult
	// ScenarioReport is the structured outcome of one failure scenario.
	ScenarioReport = survive.ScenarioReport
	// LinkCriticality attributes sweep loss to a physical link.
	LinkCriticality = survive.LinkCriticality
	// Link identifies a ring link by its lower endpoint.
	Link = ring.Link
	// Delta is one bounded change to an instance's demand (add/remove a
	// request, fail a pair, set a multiplicity) — the unit of incremental
	// replanning consumed by Planner.PlanDelta.
	Delta = instance.Delta
)

// NewRing returns the physical ring C_n (n ≥ 3).
func NewRing(n int) (Ring, error) { return ring.New(n) }

// NewCycle builds a DRC cycle on the given ring from a vertex set.
func NewCycle(r Ring, verts ...int) (Cycle, error) { return cover.NewCycle(r, verts...) }

// NewCovering returns an empty covering over r, for hand-built designs.
func NewCovering(r Ring) *Covering { return cover.NewCovering(r) }

// Rho returns ρ(n), the paper's optimal number of cycles for K_n over C_n.
func Rho(n int) int { return cover.Rho(n) }

// LowerBound returns the implemented lower bound on ρ(n) (arc-length
// counting plus the even-p refinement); it coincides with Rho for all n.
func LowerBound(n int) int { return cover.LowerBound(n) }

// TheoremComposition returns the C3/C4 mix stated by the paper's theorems.
func TheoremComposition(n int) (Composition, bool) { return cover.TheoremComposition(n) }

// AllToAll returns the total-exchange instance K_n.
func AllToAll(n int) Instance { return instance.AllToAll(n) }

// LambdaAllToAll returns the λK_n instance.
func LambdaAllToAll(n, lambda int) Instance { return instance.Lambda(n, lambda) }

// Hub returns the hubbed instance (all nodes to one hub).
func Hub(n, hub int) Instance { return instance.Hub(n, hub) }

// Neighbors returns the adjacency instance.
func Neighbors(n int) Instance { return instance.Neighbors(n) }

// RandomInstance samples a reproducible random symmetric demand. Finite
// densities outside [0, 1] are clamped; non-finite densities (NaN, ±Inf)
// are rejected.
func RandomInstance(n int, density float64, seed int64) (Instance, error) {
	return instance.RandomSymmetric(n, density, seed)
}

// ParseInstance builds an instance from the compact demand spec shared by
// the CLI tools and the cycled service. Ring families: alltoall |
// lambda:<k> | hub:<node> | neighbors | random:<density>:<seed>.
// General-topology families (bridgeless host graphs covered under the
// shortest-cycle-cover objective): petersen | blanusa:<1|2> |
// flower:<k> | prism:<k> | cubic:<seed> | edges:<u-v,...> |
// adj:<nbrs;...>.
func ParseInstance(n int, spec string) (Instance, error) {
	return instance.Parse(n, spec)
}

// ParseDelta parses the compact delta spec shared by the CLI tools and
// the cycled service: add:<u>:<v> | remove:<u>:<v> | fail:<u>:<v> |
// set:<u>:<v>:<m>.
func ParseDelta(spec string) (Delta, error) { return instance.ParseDelta(spec) }

// CoverAllToAll constructs a DRC covering of K_n. optimal reports that the
// covering provably has ρ(n) cycles (always true for odd n; true for even
// n within the search range documented in DESIGN.md).
func CoverAllToAll(n int) (cv *Covering, optimal bool, err error) {
	return CoverAllToAllCtx(context.Background(), n)
}

// CoverAllToAllCtx is CoverAllToAll under a context: the even-n repair
// and exact searches poll ctx and abort promptly (within one branch
// expansion) when it fires, returning ctx's error.
func CoverAllToAllCtx(ctx context.Context, n int) (cv *Covering, optimal bool, err error) {
	res, err := construct.AllToAllCtx(ctx, n)
	if err != nil {
		return nil, false, err
	}
	return res.Covering, res.Optimal, nil
}

// CoverInstance constructs a valid covering for an arbitrary instance:
// over C_n, the closed-form machinery for uniform λK_n demands (the
// paper's optimal constructions for K_n, the λ-composition beyond) and
// the greedy constructor otherwise — the same dispatch the cached
// Planner and the cycled service use. General-topology instances
// (petersen, blanusa:<w>, flower:<k>, prism:<k>, cubic:<seed>,
// edges:<...>, adj:<...>) are covered by the shortest-cycle-cover
// pipeline instead, minimising total edge count.
func CoverInstance(in Instance) (*Covering, error) {
	return CoverInstanceCtx(context.Background(), in)
}

// CoverInstanceCtx is CoverInstance under a context: cancellation or a
// deadline aborts the underlying construction search promptly and
// returns ctx's error, never a partial covering.
func CoverInstanceCtx(ctx context.Context, in Instance) (*Covering, error) {
	if in.Demand == nil {
		return nil, fmt.Errorf("cyclecover: instance %q has no demand graph (zero-value instance?)", in.Name)
	}
	if in.IsGeneral() {
		out, err := construct.GeneralSCCCtx(ctx, in, construct.Options{})
		if err != nil {
			return nil, err
		}
		return out.Covering, nil
	}
	n := in.N()
	r, err := ring.New(n)
	if err != nil {
		return nil, err
	}
	if lam, ok := construct.UniformLambda(in.Demand); ok {
		var res construct.Result
		if lam == 1 {
			res, err = construct.AllToAllCtx(ctx, n)
		} else {
			res, err = construct.LambdaCtx(ctx, n, lam)
		}
		if err != nil {
			return nil, err
		}
		return res.Covering, nil
	}
	return construct.GreedyCtx(ctx, r, in.Demand)
}

// Strategies lists the selectable construction strategy names: the
// registry in priority order ("closed-form", "exact", "repair",
// "greedy") plus "portfolio", which races them under one context and
// returns a deterministic winner (lowest cost, ties toward the earliest
// registry entry — exactly the fixed pipeline's result wherever the
// closed forms apply).
func Strategies() []string { return construct.Strategies() }

// CoverInstanceStrategy constructs a covering with the named strategy
// (see Strategies), uncached. A strategy that does not address the
// instance's demand class (e.g. "exact" on a hub demand) returns an
// error; "portfolio" always succeeds on demands greedy can serve.
// Cancellation semantics match CoverInstanceCtx.
func CoverInstanceStrategy(ctx context.Context, in Instance, strategy string) (*Covering, error) {
	if in.Demand == nil {
		return nil, fmt.Errorf("cyclecover: instance %q has no demand graph (zero-value instance?)", in.Name)
	}
	st, ok := construct.LookupStrategy(strategy)
	if !ok {
		return nil, fmt.Errorf("cyclecover: unknown strategy %q (have %v)", strategy, construct.Strategies())
	}
	out, err := st.Solve(ctx, in, construct.Options{})
	if err != nil {
		return nil, err
	}
	return out.Covering, nil
}

// Verify checks that cv is a valid covering of the instance. For ring
// instances: every cycle routable edge-disjointly on C_n, every request
// covered at least its multiplicity. For general-topology instances the
// walk verifier runs instead: every cycle a closed walk along host
// edges, every host edge covered. A nil covering or a zero-value
// instance (nil demand) is reported as an error, never a panic.
func Verify(cv *Covering, in Instance) error {
	if in.IsGeneral() {
		return cover.VerifyGeneral(cv, in.Host)
	}
	return cover.Verify(cv, in.Demand)
}

// VerifyOptimalAllToAll additionally checks |cv| = ρ(n).
func VerifyOptimalAllToAll(cv *Covering) error { return cover.VerifyOptimal(cv) }

// SCCLowerBound returns the provable shortest-cycle-cover lower bound
// max(m, Σ_v ⌈deg(v)/2⌉) for a general-topology instance's host graph,
// and 0 for ring instances (whose objective is the cycle count, bounded
// by Rho).
func SCCLowerBound(in Instance) int {
	if !in.IsGeneral() {
		return 0
	}
	return cover.SCCLowerBound(in.Host)
}

// SnarkSCCUpperBound returns the literature upper bound 4/3·m + c on the
// shortest cycle cover of a snark with m edges (Brinkmann, Goedgebeur,
// Hägglund, Markström: every snark on ≤ 36 vertices is covered within
// 4/3·m + 1, with the Petersen graph the unique one needing the +1).
func SnarkSCCUpperBound(m int) int { return cover.SnarkSCCUpperBound(m) }

// PlanWDM builds the optical design: one subnetwork per cycle with working
// and spare wavelengths, demand assignment, and cost accounting. Nil
// coverings and zero-value instances are errors, not panics. WDM
// planning assigns wavelengths to ring links; general-topology
// instances are rejected.
func PlanWDM(cv *Covering, in Instance) (*Network, error) {
	if in.IsGeneral() {
		return nil, fmt.Errorf("cyclecover: WDM planning applies to ring instances only, %q is general-topology", in.Name)
	}
	return wdm.Plan(cv, in.Demand)
}

// DefaultCostModel is the default weighting of the paper's cost drivers.
func DefaultCostModel() CostModel { return wdm.DefaultCostModel }

// NewSimulator wraps a planned network for failure drills.
func NewSimulator(nw *Network) *Simulator { return survive.NewSimulator(nw) }

// Describe returns a short human-readable summary of a covering.
func Describe(cv *Covering) string {
	s := cv.Summarize()
	return fmt.Sprintf("covering of C_%d: %d cycles (%d C3, %d C4, %d longer), %d slots, slack %d",
		s.N, s.Cycles, s.Triangles, s.Quads, s.Longer, s.Slots, s.Slack)
}

package main

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/cyclecover/cyclecover/internal/server"
)

// TestPprofListenerServesProfiles boots the daemon with -pprof enabled on
// an ephemeral loopback port and smoke-tests the profiling surface: the
// endpoints answer on the dedicated listener, and the serving mux does
// NOT expose them.
func TestPprofListenerServesProfiles(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	type addrs struct{ api, pprof string }
	ready := make(chan addrs, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, "127.0.0.1:0", "127.0.0.1:0", server.Config{Workers: 1, Queue: 4},
			"", 5*time.Second, io.Discard, func(addr, pprofAddr string) { ready <- addrs{addr, pprofAddr} })
	}()

	var a addrs
	select {
	case a = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	if a.pprof == "" {
		t.Fatal("onReady reported no pprof address with -pprof set")
	}

	resp, err := http.Get("http://" + a.pprof + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status = %d (%s)", resp.StatusCode, body)
	}
	if len(body) == 0 {
		t.Fatal("/debug/pprof/cmdline returned an empty body")
	}

	resp, err = http.Get("http://" + a.pprof + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	index, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(index), "goroutine") {
		t.Fatalf("/debug/pprof/ index bogus: status=%d body=%.80s", resp.StatusCode, index)
	}

	// The serving mux must not expose the profiling surface.
	resp, err = http.Get("http://" + a.api + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("profiling endpoints leaked onto the serving listener")
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("shutdown returned %v, want nil", err)
	}
}

// TestPprofRejectsNonLoopback pins the safety contract: a wildcard
// profiling address fails startup instead of exposing pprof off-host.
func TestPprofRejectsNonLoopback(t *testing.T) {
	err := run(context.Background(), "127.0.0.1:0", ":0", server.Config{Workers: 1},
		"", time.Second, io.Discard, nil)
	if err == nil || !strings.Contains(err.Error(), "loopback") {
		t.Fatalf("run with wildcard pprof addr = %v, want loopback refusal", err)
	}
}

package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/cyclecover/cyclecover/internal/server"
)

// bootDaemon starts run() with the given snapshot path and waits for the
// listener, returning the base URL and channels to stop it.
func bootDaemon(t *testing.T, snapshot string) (base string, logs *strings.Builder, stop func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	var sb strings.Builder
	go func() {
		done <- run(ctx, "127.0.0.1:0", "", server.Config{CacheSize: 16, Workers: 2, Queue: 8},
			snapshot, 5*time.Second, &sb, func(addr, _ string) { ready <- addr })
	}()
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		cancel()
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("daemon never became ready")
	}
	return base, &sb, func() error {
		cancel()
		select {
		case err := <-done:
			return err
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not shut down")
			return nil
		}
	}
}

func planN(t *testing.T, base string, n int) (size int, hit bool) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/plan?n=%d", base, n))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	hit = resp.Header.Get("X-Cache") == "HIT"
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/plan?n=%d status = %d (%s)", n, resp.StatusCode, body)
	}
	var plan struct {
		Size int `json:"size"`
	}
	if err := json.Unmarshal(body, &plan); err != nil {
		t.Fatalf("bad plan body %s: %v", body, err)
	}
	return plan.Size, hit
}

// TestDaemonSnapshotRoundTrip plans through one daemon, shuts it down, and
// expects a second daemon pointed at the same snapshot file to answer the
// same request from cache.
func TestDaemonSnapshotRoundTrip(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "plans.snap")

	base, _, stop := bootDaemon(t, snap)
	size1, _ := planN(t, base, 9)
	if err := stop(); err != nil {
		t.Fatalf("first daemon shutdown: %v", err)
	}
	if fi, err := os.Stat(snap); err != nil || fi.Size() == 0 {
		t.Fatalf("snapshot not persisted: %v", err)
	}
	// No stray temp files from the atomic write.
	matches, _ := filepath.Glob(snap + ".tmp*")
	if len(matches) != 0 {
		t.Fatalf("atomic save left temp files behind: %v", matches)
	}

	base, logs, stop := bootDaemon(t, snap)
	defer stop()
	// The snapshot carries coverings, not WDM networks, so the response's
	// X-Cache header (covering AND network) still reads MISS here; the
	// warm-load log line is what proves the covering came from the file.
	if !strings.Contains(logs.String(), "warmed 1 plans") {
		t.Fatalf("daemon did not report warming; logs:\n%s", logs.String())
	}
	size2, _ := planN(t, base, 9)
	if size2 != size1 {
		t.Fatalf("snapshot round-trip changed plan size: %d != %d", size2, size1)
	}
}

// TestDaemonSkipsTruncatedSnapshot is the crash-recovery regression: a
// snapshot cut off mid-file (the failure mode the atomic writer prevents,
// but an operator can still hand us one) must be logged and skipped — the
// daemon starts, serves, and overwrites the bad file on shutdown.
func TestDaemonSkipsTruncatedSnapshot(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "plans.snap")

	base, _, stop := bootDaemon(t, snap)
	planN(t, base, 9)
	planN(t, base, 10)
	if err := stop(); err != nil {
		t.Fatalf("first daemon shutdown: %v", err)
	}

	// Truncate mid-file, as a crash during a non-atomic write would have.
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 10 {
		t.Fatalf("snapshot implausibly small: %d bytes", len(data))
	}
	if err := os.WriteFile(snap, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	base, logs, stop := bootDaemon(t, snap)
	size, _ := planN(t, base, 9)
	if size == 0 {
		t.Fatal("daemon with truncated snapshot served a bogus plan")
	}
	if err := stop(); err != nil {
		t.Fatalf("shutdown after truncated snapshot: %v", err)
	}
	// Whether the cut fell mid-line (load error, logged as a skip) or on a
	// line boundary (partial load), startup must not have failed — and the
	// log must say what happened.
	if l := logs.String(); !strings.Contains(l, "snapshot") {
		t.Fatalf("no snapshot activity logged; logs:\n%s", l)
	}
}

// Command cycled is the long-running planner daemon: it serves DRC cycle
// coverings and WDM plans over HTTP/JSON, memoizing every verified result
// so repeated traffic for the same ring is answered from cache.
//
// Endpoints (see DESIGN.md §5 for the full API):
//
//	GET  /plan?n=13&demand=alltoall   plan a covering + WDM design
//	POST /plan/batch                  NDJSON bulk planning: one request per
//	                                  line in, results streamed per line as
//	                                  they complete (join on "index")
//	GET  /simulate?n=13&k=2           plan (cached) + k-failure sweep:
//	                                  restoration rates, worst scenarios,
//	                                  critical links; k ≥ 3 sampled by
//	                                  &sample= and &seed=
//	POST /verify                      verify a covering against a demand
//	GET  /healthz                     liveness + cache/pool counters
//	GET  /metrics                     Prometheus text exposition
//
// Usage:
//
//	cycled                        # listen on :8337
//	cycled -addr 127.0.0.1:9000 -workers 8 -cache 512 -queue 128
//	cycled -plan-timeout 2s       # bound each plan request; expiry → 504
//	cycled -snapshot plans.snap   # warm the cache at boot, persist on exit
//	cycled -pprof 127.0.0.1:6060  # profiling endpoints on a second listener
//
// With -pprof set, the daemon exposes the net/http/pprof endpoints
// (/debug/pprof/...) on a second, dedicated listener so live planning
// traffic can be profiled without routing profile downloads through the
// serving mux. The flag is off by default and the listener must resolve
// to a loopback address — the profiling surface dumps goroutine stacks
// and heap contents and is never meant to be reachable off-host.
//
// With -snapshot set, the daemon warms its covering cache from the named
// snapshot file at startup (a missing file starts cold; an unreadable or
// corrupt one is logged and skipped, never fatal — every entry that does
// load is re-verified before admission) and persists the cache back to
// the same path on graceful shutdown. The save is atomic (temp file +
// fsync + rename), so a crash mid-save leaves the previous snapshot
// intact rather than a truncated file.
//
// With -plan-timeout set, every /plan and /plan/batch request runs under
// that deadline: on expiry the client receives 504 with a structured
// body, and the construction search itself is cancelled mid-search
// (branch-and-bound stops within one node expansion) unless another
// in-flight request still wants the result. Strategy selection is per
// request via ?strategy= (closed-form, exact, repair, greedy,
// portfolio); the default is the fixed pipeline.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener stops,
// in-flight requests drain (bounded by -drain), then the worker pool
// stops.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/cyclecover/cyclecover/internal/server"
)

func main() {
	addr := flag.String("addr", ":8337", "listen address")
	workers := flag.Int("workers", 0, "planner worker pool size (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache", 0, "covering cache capacity per store (0 = default)")
	queue := flag.Int("queue", 64, "planner queue bound")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
	planTimeout := flag.Duration("plan-timeout", 0, "per-request plan deadline; expiry answers 504 and cancels the search (0 = none)")
	snapshot := flag.String("snapshot", "", "cache snapshot file: warm at boot, persist atomically on shutdown (empty = disabled)")
	pprofAddr := flag.String("pprof", "", "loopback address for net/http/pprof profiling endpoints (empty = disabled)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := server.Config{CacheSize: *cacheSize, Workers: *workers, Queue: *queue, PlanTimeout: *planTimeout}
	if err := run(ctx, *addr, *pprofAddr, cfg, *snapshot, *drain, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "cycled:", err)
		os.Exit(1)
	}
}

// run serves until ctx is cancelled, then drains and returns. onReady, if
// non-nil, receives the bound addresses once the listeners are up (the
// tests use it with ":0" addresses; pprofAddr is "" when profiling is
// disabled). A non-empty snapshot path warms the cache before listening —
// load failures are logged and skipped, never fatal, so a corrupt
// snapshot cannot poison startup — and persists it after the drain.
func run(ctx context.Context, addr, pprofAddr string, cfg server.Config, snapshot string, drain time.Duration, logw io.Writer, onReady func(addr, pprofAddr string)) error {
	srv := server.New(cfg)
	if snapshot != "" {
		if loaded, skipped, err := srv.Plans().LoadSnapshotFile(snapshot); err != nil {
			fmt.Fprintf(logw, "cycled: skipping snapshot %s: %v\n", snapshot, err)
		} else if loaded > 0 || skipped > 0 {
			fmt.Fprintf(logw, "cycled: warmed %d plans from %s (%d skipped)\n", loaded, snapshot, skipped)
		}
	}
	var pln net.Listener
	if pprofAddr != "" {
		var err error
		if pln, err = listenPprof(pprofAddr); err != nil {
			srv.Close()
			return err
		}
		defer pln.Close()
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		srv.Close()
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	boundPprof := ""
	if pln != nil {
		ps := &http.Server{Handler: pprofMux()}
		// The profiling server lives and dies with the daemon: no drain on
		// shutdown (an interrupted profile download is harmless), just the
		// deferred listener close.
		go ps.Serve(pln)
		boundPprof = pln.Addr().String()
		fmt.Fprintf(logw, "cycled: pprof on http://%s/debug/pprof/\n", boundPprof)
	}
	fmt.Fprintf(logw, "cycled: listening on %s (workers=%d cache=%d queue=%d plan-timeout=%s)\n",
		ln.Addr(), cfg.Workers, cfg.CacheSize, cfg.Queue, cfg.PlanTimeout)
	if onReady != nil {
		onReady(ln.Addr().String(), boundPprof)
	}

	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-ctx.Done():
	}

	// Drain in-flight requests before stopping the pool, so no handler is
	// left waiting on a worker that will never run.
	fmt.Fprintln(logw, "cycled: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	shutErr := hs.Shutdown(shutCtx)
	<-errc // Serve has returned (http.ErrServerClosed)
	srv.Close()
	if snapshot != "" {
		if err := srv.Plans().SaveSnapshotFile(snapshot); err != nil {
			fmt.Fprintf(logw, "cycled: saving snapshot: %v\n", err)
			if shutErr == nil {
				shutErr = err
			}
		} else {
			fmt.Fprintf(logw, "cycled: snapshot saved to %s\n", snapshot)
		}
	}
	return shutErr
}

// listenPprof binds the profiling listener and enforces the loopback-only
// contract: the bound address (not the requested string, which may name
// an interface indirectly) must be a loopback IP, or the listener is
// closed and startup fails. Profiling endpoints expose goroutine stacks
// and heap contents, so an off-host binding is always a misconfiguration.
func listenPprof(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pprof listen: %w", err)
	}
	tcp, ok := ln.Addr().(*net.TCPAddr)
	if !ok || !tcp.IP.IsLoopback() {
		ln.Close()
		return nil, fmt.Errorf("pprof address %s is not loopback; refusing to expose profiling off-host", ln.Addr())
	}
	return ln, nil
}

// pprofMux routes the standard net/http/pprof surface on a dedicated
// mux. Registration is explicit rather than via the package's
// DefaultServeMux side effect, so the profiling surface exists only on
// the -pprof listener and can never leak onto the serving handler.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

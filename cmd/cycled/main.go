// Command cycled is the long-running planner daemon: it serves DRC cycle
// coverings and WDM plans over HTTP/JSON, memoizing every verified result
// so repeated traffic for the same ring is answered from cache.
//
// Endpoints (see DESIGN.md §5 for the full API):
//
//	GET  /plan?n=13&demand=alltoall   plan a covering + WDM design
//	POST /plan/batch                  NDJSON bulk planning: one request per
//	                                  line in, results streamed per line as
//	                                  they complete (join on "index")
//	GET  /simulate?n=13&k=2           plan (cached) + k-failure sweep:
//	                                  restoration rates, worst scenarios,
//	                                  critical links; k ≥ 3 sampled by
//	                                  &sample= and &seed=
//	POST /verify                      verify a covering against a demand
//	GET  /livez                       liveness (aliased by /healthz) +
//	                                  cache/pool counters
//	GET  /readyz                      readiness: 503 while starting up or
//	                                  draining for shutdown
//	GET  /metrics                     Prometheus text exposition
//
// Usage:
//
//	cycled                        # listen on :8337
//	cycled -addr 127.0.0.1:9000 -workers 8 -cache 512 -queue 128
//	cycled -plan-timeout 2s       # bound each plan request; expiry → 504
//	cycled -snapshot plans.snap   # warm the cache at boot, persist on exit
//	cycled -pprof 127.0.0.1:6060  # profiling endpoints on a second listener
//	cycled -max-inflight 64 -max-queue 128   # admission control: shed → 429
//	cycled -plan-timeout 2s -degrade         # demote to anytime under pressure
//
// With -max-inflight and/or -max-queue set, the work endpoints shed
// excess load with a structured 429 and a Retry-After hint derived from
// the observed job-latency EWMA, instead of queueing without bound. With
// -degrade set (meaningful together with -plan-timeout), a request whose
// remaining deadline budget is smaller than the measured full-pipeline
// cost is planned by the anytime portfolio instead — verified, marked
// degraded:true, cached under a separate signature dimension — and when
// even that cannot fit, a verified stale cache hit is served with
// X-Degraded: stale. The -fault/-fault-seed flags arm the deterministic
// failpoints of internal/faultinject and exist only in builds made with
// -tags faultinject; production binaries refuse a non-empty -fault.
//
// With -pprof set, the daemon exposes the net/http/pprof endpoints
// (/debug/pprof/...) on a second, dedicated listener so live planning
// traffic can be profiled without routing profile downloads through the
// serving mux. The flag is off by default and the listener must resolve
// to a loopback address — the profiling surface dumps goroutine stacks
// and heap contents and is never meant to be reachable off-host.
//
// With -snapshot set, the daemon warms its covering cache from the named
// snapshot file at startup (a missing file starts cold; an unreadable or
// corrupt one is logged and skipped, never fatal — every entry that does
// load is re-verified before admission) and persists the cache back to
// the same path on graceful shutdown. The save is atomic (temp file +
// fsync + rename), so a crash mid-save leaves the previous snapshot
// intact rather than a truncated file.
//
// With -plan-timeout set, every /plan and /plan/batch request runs under
// that deadline: on expiry the client receives 504 with a structured
// body, and the construction search itself is cancelled mid-search
// (branch-and-bound stops within one node expansion) unless another
// in-flight request still wants the result. Strategy selection is per
// request via ?strategy= (closed-form, exact, repair, greedy,
// portfolio); the default is the fixed pipeline.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener stops,
// in-flight requests drain (bounded by -drain), then the worker pool
// stops.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/cyclecover/cyclecover/internal/faultinject"
	"github.com/cyclecover/cyclecover/internal/server"
)

func main() {
	addr := flag.String("addr", ":8337", "listen address")
	workers := flag.Int("workers", 0, "planner worker pool size (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache", 0, "covering cache capacity per store (0 = default)")
	queue := flag.Int("queue", 64, "planner queue bound")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
	planTimeout := flag.Duration("plan-timeout", 0, "per-request plan deadline; expiry answers 504 and cancels the search (0 = none)")
	snapshot := flag.String("snapshot", "", "cache snapshot file: warm at boot, persist atomically on shutdown (empty = disabled)")
	pprofAddr := flag.String("pprof", "", "loopback address for net/http/pprof profiling endpoints (empty = disabled)")
	maxInflight := flag.Int("max-inflight", 0, "per-endpoint in-flight admission cap; past it requests shed with 429 (0 = unlimited)")
	maxQueue := flag.Int("max-queue", 0, "shed new work when the pool queue is this deep (0 = unlimited)")
	degrade := flag.Bool("degrade", false, "deadline-aware degradation: demote to the anytime portfolio when the measured full-pipeline cost exceeds the remaining budget")
	fault := flag.String("fault", "", "failpoint spec site=verb[(arg)][@prob][#limit];... (requires a -tags faultinject build)")
	faultSeed := flag.Int64("fault-seed", 1, "seed keying the deterministic failpoint schedule")
	flag.Parse()

	if *fault != "" {
		if err := faultinject.Configure(*fault, *faultSeed); err != nil {
			// On a production (compiled-out) build Configure always errors;
			// refusing to start beats silently ignoring a chaos spec.
			fmt.Fprintln(os.Stderr, "cycled: -fault:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "cycled: failpoints armed: %s (seed %d)\n", *fault, *faultSeed)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := server.Config{
		CacheSize:   *cacheSize,
		Workers:     *workers,
		Queue:       *queue,
		PlanTimeout: *planTimeout,
		MaxInflight: *maxInflight,
		MaxQueue:    *maxQueue,
		Degrade:     *degrade,
	}
	if err := run(ctx, *addr, *pprofAddr, cfg, *snapshot, *drain, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "cycled:", err)
		os.Exit(1)
	}
}

// run serves until ctx is cancelled, then drains and returns. onReady, if
// non-nil, receives the bound addresses once the listeners are up (the
// tests use it with ":0" addresses; pprofAddr is "" when profiling is
// disabled). A non-empty snapshot path warms the cache before listening —
// load failures are logged and skipped, never fatal, so a corrupt
// snapshot cannot poison startup — and persists it after the drain.
func run(ctx context.Context, addr, pprofAddr string, cfg server.Config, snapshot string, drain time.Duration, logw io.Writer, onReady func(addr, pprofAddr string)) error {
	srv := server.New(cfg)
	// Not ready until startup work is done: /readyz answers 503 while the
	// snapshot warms, so a load balancer never routes traffic at a cache
	// that is mid-warm.
	srv.SetReady(false)
	if snapshot != "" {
		if loaded, skipped, err := srv.Plans().LoadSnapshotFile(snapshot); err != nil {
			fmt.Fprintf(logw, "cycled: skipping snapshot %s: %v\n", snapshot, err)
		} else if loaded > 0 || skipped > 0 {
			fmt.Fprintf(logw, "cycled: warmed %d plans from %s (%d skipped)\n", loaded, snapshot, skipped)
		}
	}
	var pln net.Listener
	if pprofAddr != "" {
		var err error
		if pln, err = listenPprof(pprofAddr); err != nil {
			srv.Close()
			return err
		}
		defer pln.Close()
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		srv.Close()
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	boundPprof := ""
	if pln != nil {
		ps := &http.Server{Handler: pprofMux()}
		// The profiling server lives and dies with the daemon: no drain on
		// shutdown (an interrupted profile download is harmless), just the
		// deferred listener close.
		go ps.Serve(pln)
		boundPprof = pln.Addr().String()
		fmt.Fprintf(logw, "cycled: pprof on http://%s/debug/pprof/\n", boundPprof)
	}
	fmt.Fprintf(logw, "cycled: listening on %s (workers=%d cache=%d queue=%d plan-timeout=%s)\n",
		ln.Addr(), cfg.Workers, cfg.CacheSize, cfg.Queue, cfg.PlanTimeout)
	srv.SetReady(true)
	if onReady != nil {
		onReady(ln.Addr().String(), boundPprof)
	}

	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-ctx.Done():
	}

	// Drain in-flight requests before stopping the pool, so no handler is
	// left waiting on a worker that will never run. StartDrain first:
	// /readyz flips to 503 so load balancers route away while the drain
	// completes the requests already here.
	fmt.Fprintln(logw, "cycled: shutting down")
	srv.StartDrain()
	shutCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	shutErr := hs.Shutdown(shutCtx)
	<-errc // Serve has returned (http.ErrServerClosed)
	srv.Close()
	if snapshot != "" {
		if err := srv.Plans().SaveSnapshotFile(snapshot); err != nil {
			fmt.Fprintf(logw, "cycled: saving snapshot: %v\n", err)
			if shutErr == nil {
				shutErr = err
			}
		} else {
			fmt.Fprintf(logw, "cycled: snapshot saved to %s\n", snapshot)
		}
	}
	return shutErr
}

// listenPprof binds the profiling listener and enforces the loopback-only
// contract: the bound address (not the requested string, which may name
// an interface indirectly) must be a loopback IP, or the listener is
// closed and startup fails. Profiling endpoints expose goroutine stacks
// and heap contents, so an off-host binding is always a misconfiguration.
func listenPprof(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pprof listen: %w", err)
	}
	tcp, ok := ln.Addr().(*net.TCPAddr)
	if !ok || !tcp.IP.IsLoopback() {
		ln.Close()
		return nil, fmt.Errorf("pprof address %s is not loopback; refusing to expose profiling off-host", ln.Addr())
	}
	return ln, nil
}

// pprofMux routes the standard net/http/pprof surface on a dedicated
// mux. Registration is explicit rather than via the package's
// DefaultServeMux side effect, so the profiling surface exists only on
// the -pprof listener and can never leak onto the serving handler.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

//go:build faultinject

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/cyclecover/cyclecover/internal/faultinject"
	"github.com/cyclecover/cyclecover/internal/server"
)

// TestChaosGracefulShutdownWithInjectedLatency: SIGTERM (context
// cancellation) arriving while a fault-slowed job is in flight must
// drain cleanly — the slow request completes, the snapshot is written
// atomically, and the daemon exits nil without deadlocking.
func TestChaosGracefulShutdownWithInjectedLatency(t *testing.T) {
	if err := faultinject.Configure("pool.dispatch=delay(300ms)", 5); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.Reset)

	snap := filepath.Join(t.TempDir(), "plans.snap")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, "127.0.0.1:0", "", server.Config{CacheSize: 16, Workers: 1, Queue: 4},
			snap, 10*time.Second, io.Discard, func(addr, _ string) { ready <- addr })
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + addr

	// Kick off the slow request, then deliver the shutdown while its
	// injected dispatch delay is still running.
	reqDone := make(chan int, 1)
	go func() {
		resp, err := http.Get(base + "/plan?n=9")
		if err != nil {
			reqDone <- 0
			return
		}
		resp.Body.Close()
		reqDone <- resp.StatusCode
	}()
	time.Sleep(100 * time.Millisecond) // inside the 300ms injected delay
	cancel()

	if code := <-reqDone; code != http.StatusOK {
		t.Fatalf("in-flight request during shutdown = %d, want 200 (drained, not dropped)", code)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v, want nil", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon deadlocked during drain")
	}
	if got := faultinject.Fired(faultinject.SitePoolDispatch); got == 0 {
		t.Fatal("the dispatch delay failpoint never fired")
	}

	// The snapshot written on the way out is complete and loadable: a
	// fresh daemon warms the covering from it (the WDM network is
	// derived, not snapshotted, so warmth shows in the load log and a
	// valid plan — not in X-Cache).
	faultinject.Reset()
	var logs bytes.Buffer
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	ready2 := make(chan string, 1)
	done2 := make(chan error, 1)
	go func() {
		done2 <- run(ctx2, "127.0.0.1:0", "", server.Config{CacheSize: 16, Workers: 1, Queue: 4},
			snap, 5*time.Second, &logs, func(addr, _ string) { ready2 <- addr })
	}()
	select {
	case addr = <-ready2:
	case err := <-done2:
		t.Fatalf("second daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("second daemon never became ready")
	}
	resp, err := http.Get("http://" + addr + "/plan?n=9")
	if err != nil {
		t.Fatal(err)
	}
	var plan struct {
		Size    int  `json:"size"`
		Optimal bool `json:"optimal"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&plan); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if plan.Size == 0 || !plan.Optimal {
		t.Fatalf("warmed daemon served a bogus plan: %+v", plan)
	}
	cancel2()
	if err := <-done2; err != nil {
		t.Fatalf("second shutdown returned %v", err)
	}
	if !strings.Contains(logs.String(), "warmed 1 plans") {
		t.Fatalf("second daemon did not warm from the shutdown snapshot; logs:\n%s", logs.String())
	}
}

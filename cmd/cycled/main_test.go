package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/cyclecover/cyclecover/internal/server"
)

// TestDaemonServesAndShutsDownGracefully boots the daemon on an ephemeral
// port, drives a plan request through it, then cancels the context and
// expects a clean exit.
func TestDaemonServesAndShutsDownGracefully(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, "127.0.0.1:0", "", server.Config{CacheSize: 16, Workers: 2, Queue: 8},
			"", 5*time.Second, io.Discard, func(addr, _ string) { ready <- addr })
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status = %d", resp.StatusCode)
	}

	resp, err = http.Get(base + "/plan?n=9")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/plan status = %d (%s)", resp.StatusCode, body)
	}
	var plan struct {
		N       int     `json:"n"`
		Size    int     `json:"size"`
		Rho     int     `json:"rho"`
		Optimal bool    `json:"optimal"`
		Cycles  [][]int `json:"cycles"`
	}
	if err := json.Unmarshal(body, &plan); err != nil {
		t.Fatalf("bad plan body %s: %v", body, err)
	}
	if plan.N != 9 || !plan.Optimal || plan.Size != plan.Rho || len(plan.Cycles) != plan.Size {
		t.Fatalf("daemon served a bogus plan: %+v", plan)
	}

	// The NDJSON batch surface end to end: two plans and one per-item
	// failure through the running daemon.
	resp, err = http.Post(base+"/plan/batch", "application/x-ndjson",
		strings.NewReader("{\"n\": 9}\n{\"n\": 7, \"demand\": \"lambda:2\"}\n{\"n\": 2}\n"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/plan/batch status = %d (%s)", resp.StatusCode, body)
	}
	var got [3]bool
	for _, ln := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		var line struct {
			Index int             `json:"index"`
			Plan  json.RawMessage `json:"plan"`
			Error string          `json:"error"`
		}
		if err := json.Unmarshal([]byte(ln), &line); err != nil {
			t.Fatalf("bad batch line %q: %v", ln, err)
		}
		if line.Index < 0 || line.Index > 2 || got[line.Index] {
			t.Fatalf("unexpected or duplicate index in %q", ln)
		}
		got[line.Index] = true
		if wantErr := line.Index == 2; wantErr != (line.Error != "") {
			t.Fatalf("index %d: error mismatch in %q", line.Index, ln)
		}
	}
	if !got[0] || !got[1] || !got[2] {
		t.Fatalf("batch answered %v, want all three indexes", got)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}

	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("daemon still serving after shutdown")
	}
}

// TestDaemonRejectsBusyAddress exercises the listen-failure path.
func TestDaemonRejectsBusyAddress(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, "127.0.0.1:0", "", server.Config{Workers: 1}, "", time.Second, io.Discard,
			func(addr, _ string) { ready <- addr })
	}()
	addr := <-ready
	if err := run(ctx, addr, "", server.Config{Workers: 1}, "", time.Second, io.Discard, nil); err == nil {
		t.Fatal("second daemon bound an occupied address")
	} else if !strings.Contains(err.Error(), "address") && !strings.Contains(err.Error(), "in use") {
		t.Logf("listen error (accepted): %v", err)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

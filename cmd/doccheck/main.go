// Command doccheck enforces the repository's documentation contract as
// part of the build (CI runs it next to go vet):
//
//   - every Go package in the module — including every internal/*
//     package and every command — carries a package-level godoc
//     comment;
//   - every exported identifier of the root cyclecover package (the
//     public API surface: planner.go, cyclecover.go, …) carries a doc
//     comment.
//
// Usage:
//
//	doccheck [module-root]
//
// The argument defaults to the current directory. Exit status 1 lists
// every violation; 0 means the contract holds.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	problems, err := check(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(2)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d documentation problem(s)\n", len(problems))
		os.Exit(1)
	}
}

// check walks every package directory under root and returns the list
// of contract violations, deterministically ordered.
func check(root string) ([]string, error) {
	// WalkDir yields cleaned paths; root must be cleaned too or the
	// `dir == root` comparison (which gates the exported-docs check for
	// the module's public package) silently never matches — e.g. for a
	// tab-completed trailing slash.
	root = filepath.Clean(root)
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, dir := range dirs {
		ps, err := checkDir(root, dir)
		if err != nil {
			return nil, err
		}
		problems = append(problems, ps...)
	}
	return problems, nil
}

// packageDirs lists the directories under root holding non-test Go
// files, skipping hidden directories and testdata.
func packageDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			seen[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// checkDir verifies one package directory: the package comment always,
// and per-identifier doc comments when the directory is the module root
// (the public API).
func checkDir(root, dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, pkg := range pkgs {
		if !hasPackageDoc(pkg) {
			problems = append(problems, fmt.Sprintf("%s: package %s has no package-level godoc comment", dir, pkg.Name))
		}
		if dir == root {
			problems = append(problems, undocumentedExports(fset, pkg)...)
		}
	}
	sort.Strings(problems)
	return problems, nil
}

// hasPackageDoc reports whether any file of the package carries a
// package comment.
func hasPackageDoc(pkg *ast.Package) bool {
	for _, f := range pkg.Files {
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return true
		}
	}
	return false
}

// undocumentedExports lists every exported top-level identifier of the
// package that has no doc comment — functions, methods, and the names
// of type/const/var declarations (a group doc on the declaration block
// covers its specs; a per-spec doc or trailing comment also counts).
func undocumentedExports(fset *token.FileSet, pkg *ast.Package) []string {
	var problems []string
	flag := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s is undocumented", p.Filename, p.Line, kind, name))
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil {
					flag(d.Pos(), "function", d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
							flag(sp.Pos(), "type", sp.Name.Name)
						}
					case *ast.ValueSpec:
						if d.Doc != nil || sp.Doc != nil || sp.Comment != nil {
							continue
						}
						for _, name := range sp.Names {
							if name.IsExported() {
								flag(sp.Pos(), "value", name.Name)
							}
						}
					}
				}
			}
		}
	}
	return problems
}

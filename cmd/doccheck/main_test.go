package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write lays a file into the temp module tree.
func write(t *testing.T, root, rel, content string) {
	t.Helper()
	path := filepath.Join(root, rel)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckFlagsViolations(t *testing.T) {
	root := t.TempDir()
	// Root package: documented package, one documented and one
	// undocumented export, one undocumented exported type.
	write(t, root, "lib.go", `// Package lib is documented.
package lib

// Documented is fine.
func Documented() {}

func Undocumented() {}

type Exposed struct{}

// grouped decl doc covers its specs.
const (
	A = 1
	B = 2
)
`)
	// Internal package without a package comment.
	write(t, root, "internal/bare/bare.go", `package bare

// Exported docs are NOT required outside the root package.
func Fine() {}

func AlsoFine() {}
`)
	// testdata and _test.go files are ignored.
	write(t, root, "internal/bare/testdata/ignored.go", `package ignored`)
	write(t, root, "lib_test.go", `package lib

func TestHelperNoDoc() {}
`)

	problems, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(problems, "\n")
	for _, want := range []string{
		"package bare has no package-level godoc comment",
		"exported function Undocumented is undocumented",
		"exported type Exposed is undocumented",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing violation %q in:\n%s", want, joined)
		}
	}
	for _, reject := range []string{"Documented", "Fine", "ignored", "A is", "B is"} {
		if strings.Contains(joined, reject) {
			t.Errorf("false positive mentioning %q in:\n%s", reject, joined)
		}
	}
	if len(problems) != 3 {
		t.Errorf("want exactly 3 problems, got %d:\n%s", len(problems), joined)
	}

	// A non-canonical root (trailing slash, dot segments) must enforce
	// the same contract — the root-package comparison is path-cleaned.
	slashed, err := check(root + string(filepath.Separator))
	if err != nil {
		t.Fatal(err)
	}
	if len(slashed) != len(problems) {
		t.Errorf("trailing-slash root found %d problems, want %d", len(slashed), len(problems))
	}
}

// TestCheckRepo is the self-test CI leans on: the repository this
// command ships in must satisfy its own documentation contract.
func TestCheckRepo(t *testing.T) {
	problems, err := check("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) > 0 {
		t.Errorf("repository violates the documentation contract:\n%s", strings.Join(problems, "\n"))
	}
}
